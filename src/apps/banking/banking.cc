#include "apps/banking/banking.h"

#include <cinttypes>
#include <cstdio>

namespace encompass::apps::banking {

using storage::Record;

std::string AccountKey(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "acct%05d", i);
  return buf;
}

Bytes BankRequest(const std::string& op, const std::string& acct,
                  int64_t amount) {
  Record r;
  r.Set("op", op).Set("acct", acct).Set("amount", std::to_string(amount));
  return r.Encode();
}

void BankServer::HandleRequest(const net::Message& msg) {
  auto req = Record::Decode(Slice(msg.payload));
  if (!req.ok()) {
    Respond(msg, req.status());
    return;
  }
  const std::string op = req->Get("op");
  const std::string acct = req->Get("acct");
  const int64_t amount = strtoll(req->Get("amount").c_str(), nullptr, 10);

  if (op == "open") {
    Record rec;
    rec.Set("balance", std::to_string(amount));
    net::Message request = msg;
    fs().Insert(file_, Slice(acct), Slice(rec.Encode()),
                [this, request](const Status& s, const Bytes&) {
                  Respond(request, s);
                });
    return;
  }
  if (op == "credit") {
    ApplyDelta(msg, acct, amount);
    return;
  }
  if (op == "debit") {
    ApplyDelta(msg, acct, -amount);
    return;
  }
  if (op == "read") {
    net::Message request = msg;
    fs().Read(file_, Slice(acct), /*lock=*/true,
              [this, request](const Status& s, const Bytes& payload) {
                if (s.IsTimeout()) {
                  // Possible deadlock: tell the terminal program to execute
                  // RESTART-TRANSACTION.
                  Respond(request, Status::RestartRequested("lock timeout"));
                  return;
                }
                Respond(request, s, payload);
              });
    return;
  }
  Respond(msg, Status::InvalidArgument("unknown op: " + op));
}

void BankServer::ApplyDelta(const net::Message& msg, const std::string& acct,
                            int64_t delta) {
  net::Message request = msg;
  // Lock at read time (explicit request), then update under the lock.
  fs().Read(file_, Slice(acct), /*lock=*/true,
            [this, request, acct, delta](const Status& s, const Bytes& payload) {
              if (s.IsTimeout()) {
                Respond(request, Status::RestartRequested("lock timeout"));
                return;
              }
              if (!s.ok()) {
                Respond(request, s);
                return;
              }
              auto rec = Record::Decode(Slice(payload));
              if (!rec.ok()) {
                Respond(request, rec.status());
                return;
              }
              int64_t balance =
                  strtoll(rec->Get("balance").c_str(), nullptr, 10) + delta;
              Record updated = *rec;
              updated.Set("balance", std::to_string(balance));
              fs().Update(file_, Slice(acct), Slice(updated.Encode()),
                          [this, request, balance](const Status& s,
                                                   const Bytes&) {
                            if (s.IsTimeout()) {
                              Respond(request,
                                      Status::RestartRequested("lock timeout"));
                              return;
                            }
                            Record reply;
                            reply.Set("balance", std::to_string(balance));
                            Respond(request, s, reply.Encode());
                          });
            });
}

app::ServerClassRouter* AddBankServerClass(app::Deployment* deploy,
                                           net::NodeId node,
                                           const std::string& class_name,
                                           const std::string& account_file,
                                           app::ServerClassConfig base) {
  app::NodeDeployment* nd = deploy->GetNode(node);
  if (nd == nullptr) return nullptr;
  base.name = class_name;
  const storage::Catalog* catalog = &deploy->catalog();
  base.factory = [catalog, account_file](os::Node* n, int cpu) -> net::Pid {
    auto* server = n->Spawn<BankServer>(cpu, catalog, account_file);
    return server == nullptr ? 0 : server->id().pid;
  };
  // Router pair: primary on the node's last CPU, backup on CPU 0. Guardians
  // keep the pair redundant across failures.
  int cpu = nd->spec().node_config.num_cpus - 1;
  auto* router = app::SpawnServerClass(nd->node(), base, cpu, 0);
  nd->RegisterRepairablePair<app::ServerClassRouter>(base.name, base);
  return router;
}

app::ScreenProgram MakeTransferProgram(net::NodeId server_node,
                                       const std::string& server_class,
                                       int num_accounts, int64_t max_amount,
                                       double skew) {
  app::ScreenProgram p("transfer");
  p.Accept([num_accounts, max_amount, skew](app::Fields& f, Random& rng) {
     int from, to;
     if (skew > 0) {
       from = static_cast<int>(rng.Skewed(num_accounts, skew));
       to = static_cast<int>(rng.Skewed(num_accounts, skew));
     } else {
       from = static_cast<int>(rng.Uniform(num_accounts));
       to = static_cast<int>(rng.Uniform(num_accounts));
     }
     if (to == from) to = (from + 1) % num_accounts;
     f["from"] = AccountKey(from);
     f["to"] = AccountKey(to);
     f["amount"] = std::to_string(1 + rng.Uniform(max_amount));
   })
      .BeginTransaction()
      .Send(server_node, server_class,
            [](const app::Fields& f) {
              return BankRequest("debit", f.at("from"),
                                 strtoll(f.at("amount").c_str(), nullptr, 10));
            })
      .Send(server_node, server_class,
            [](const app::Fields& f) {
              return BankRequest("credit", f.at("to"),
                                 strtoll(f.at("amount").c_str(), nullptr, 10));
            })
      .EndTransaction();
  return p;
}

void SeedAccounts(storage::Volume* volume, const std::string& file, int n,
                  int64_t initial) {
  for (int i = 0; i < n; ++i) {
    Record rec;
    rec.Set("balance", std::to_string(initial));
    volume->Mutate(file, storage::MutationOp::kInsert, Slice(AccountKey(i)),
                   Slice(rec.Encode()));
  }
  volume->Flush();
}

int64_t SumBalances(storage::Volume* volume, const std::string& file) {
  int64_t sum = 0;
  storage::StructuredFile* f = volume->Find(file);
  if (f == nullptr) return 0;
  f->ForEach([&sum](const Slice&, const Slice& value) {
    auto rec = Record::Decode(value);
    if (rec.ok()) sum += strtoll(rec->Get("balance").c_str(), nullptr, 10);
  });
  return sum;
}

}  // namespace encompass::apps::banking
