// Unit tests for the Network layer: routing determinism, reachability
// computation under link changes, isolate/reconnect, delivery and
// retransmission behaviour, and undeliverable notification.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <set>
#include <utility>
#include <vector>

#include "net/network.h"

namespace encompass::net {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : sim_(17), network_(&sim_) {}

  /// Adds `n` nodes (1..n) whose deliveries are recorded per node.
  void AddNodes(int n) {
    delivered_.resize(n + 1);
    for (int i = 1; i <= n; ++i) {
      NodeId id = static_cast<NodeId>(i);
      network_.AddNode(id, [this, id](Message msg) {
        delivered_[id].push_back(std::move(msg));
      });
    }
  }

  Message Make(NodeId from, NodeId to, uint64_t request_id = 0) {
    Message msg;
    msg.src = ProcessId{from, 1};
    msg.dst = Address(ProcessId{to, 1});
    msg.tag = kTagApp;
    msg.request_id = request_id;
    return msg;
  }

  sim::Simulation sim_;
  Network network_;
  std::vector<std::vector<Message>> delivered_;
};

TEST_F(NetworkTest, MinHopRouting) {
  AddNodes(4);
  // Square: 1-2, 2-3, 3-4, 4-1 plus diagonal 1-3.
  network_.AddLink(1, 2);
  network_.AddLink(2, 3);
  network_.AddLink(3, 4);
  network_.AddLink(4, 1);
  network_.AddLink(1, 3);
  EXPECT_EQ(network_.Route(1, 3).size(), 2u);  // direct via diagonal
  network_.SetLinkUp(1, 3, false);
  EXPECT_EQ(network_.Route(1, 3).size(), 3u);  // around the square
  network_.SetLinkUp(1, 2, false);
  auto route = network_.Route(1, 3);
  ASSERT_EQ(route.size(), 3u);  // 1-4-3 is the only path left
  EXPECT_EQ(route[1], 4);
}

TEST_F(NetworkTest, RoutingIsDeterministic) {
  AddNodes(4);
  network_.AddLink(1, 2);
  network_.AddLink(1, 3);
  network_.AddLink(2, 4);
  network_.AddLink(3, 4);
  auto r1 = network_.Route(1, 4);
  auto r2 = network_.Route(1, 4);
  EXPECT_EQ(r1, r2);
  ASSERT_EQ(r1.size(), 3u);
  EXPECT_EQ(r1[1], 2u);  // ordered link map breaks the tie toward node 2
}

TEST_F(NetworkTest, ReachabilityEventsFireOncePerTransition) {
  AddNodes(3);
  network_.AddLink(1, 2);
  network_.AddLink(2, 3);
  std::vector<std::string> events;
  network_.SetReachabilityListener([&](NodeId obs, NodeId peer, bool up) {
    events.push_back(std::to_string(obs) + (up ? "+" : "-") +
                     std::to_string(peer));
  });
  network_.SetLinkUp(2, 3, false);
  // Node 3 lost both 1 and 2; nodes 1 and 2 each lost 3.
  EXPECT_EQ(events.size(), 4u);
  events.clear();
  network_.SetLinkUp(2, 3, false);  // already down: no events
  EXPECT_TRUE(events.empty());
  network_.SetLinkUp(2, 3, true);
  EXPECT_EQ(events.size(), 4u);
}

TEST_F(NetworkTest, IsolateAndReconnect) {
  AddNodes(3);
  network_.AddLink(1, 2);
  network_.AddLink(1, 3);
  network_.AddLink(2, 3);
  network_.IsolateNode(3);
  EXPECT_FALSE(network_.Reachable(1, 3));
  EXPECT_FALSE(network_.Reachable(2, 3));
  EXPECT_TRUE(network_.Reachable(1, 2));
  network_.ReconnectNode(3);
  EXPECT_TRUE(network_.Reachable(1, 3));
}

TEST_F(NetworkTest, DeliversAcrossMultipleHops) {
  AddNodes(3);
  network_.AddLink(1, 2);
  network_.AddLink(2, 3);
  network_.Send(Make(1, 3));
  sim_.Run();
  ASSERT_EQ(delivered_[3].size(), 1u);
  EXPECT_EQ(delivered_[3][0].src.node, 1);
}

TEST_F(NetworkTest, UndeliverableRequestNotifiesSender) {
  AddNodes(2);
  network_.AddLink(1, 2);
  network_.SetLinkUp(1, 2, false);
  network_.Send(Make(1, 2, /*request_id=*/42));
  sim_.Run();
  EXPECT_TRUE(delivered_[2].empty());
  ASSERT_EQ(delivered_[1].size(), 1u);  // send-failed notice
  EXPECT_EQ(delivered_[1][0].tag, kTagSendFailed);
  EXPECT_EQ(delivered_[1][0].reply_to, 42u);
  EXPECT_EQ(delivered_[1][0].status, Status::Code::kPartitioned);
  EXPECT_GT(sim_.GetStats().Counter("net.undeliverable"), 0);
}

TEST_F(NetworkTest, OneWayUndeliverableIsDroppedSilently) {
  AddNodes(2);
  network_.AddLink(1, 2);
  network_.SetLinkUp(1, 2, false);
  network_.Send(Make(1, 2, /*request_id=*/0));
  sim_.Run();
  EXPECT_TRUE(delivered_[1].empty());
  EXPECT_TRUE(delivered_[2].empty());
}

TEST_F(NetworkTest, TransientFlapHealedByRetransmission) {
  AddNodes(2);
  network_.AddLink(1, 2);
  network_.SetLinkUp(1, 2, false);
  network_.Send(Make(1, 2, 7));
  // Restore before the retry budget runs out.
  sim_.After(Millis(120), [this] { network_.SetLinkUp(1, 2, true); });
  sim_.Run();
  ASSERT_EQ(delivered_[2].size(), 1u);
  EXPECT_GT(sim_.GetStats().Counter("net.retransmits"), 0);
}

TEST_F(NetworkTest, LossyLinkEventuallyDelivers) {
  NetworkConfig cfg;
  cfg.loss_probability = 0.5;
  sim::Simulation sim(23);
  Network net(&sim, cfg);
  int got = 0;
  net.AddNode(1, [](Message) {});
  net.AddNode(2, [&got](Message) { ++got; });
  net.AddLink(1, 2);
  for (int i = 0; i < 50; ++i) {
    Message msg;
    msg.src = ProcessId{1, 1};
    msg.dst = Address(ProcessId{2, 1});
    msg.request_id = static_cast<uint64_t>(i + 1);
    net.Send(std::move(msg));
  }
  sim.Run();
  // With 6 retries at 50% loss, effectively everything arrives.
  EXPECT_GE(got, 49);
}

TEST_F(NetworkTest, PerLinkLatencyHonoured) {
  AddNodes(2);
  network_.AddLink(1, 2, Millis(42));
  network_.Send(Make(1, 2));
  SimTime before = sim_.Now();
  sim_.Run();
  EXPECT_EQ(sim_.Now() - before, Millis(42));
}

// Reference implementation for the route-cache tests: a fresh breadth-first
// search per query over the same deterministic link order the Network uses.
std::vector<NodeId> ReferenceBfs(std::vector<std::pair<NodeId, NodeId>> up_links,
                                 NodeId from, NodeId to) {
  if (from == to) return {from};
  // Match the Network's deterministic tie-break: links are visited in the
  // order of its normalized (min, max) ordered link map.
  for (auto& [a, b] : up_links) {
    if (a > b) std::swap(a, b);
  }
  std::sort(up_links.begin(), up_links.end());
  std::map<NodeId, NodeId> parent;
  std::deque<NodeId> frontier{from};
  parent[from] = from;
  while (!frontier.empty()) {
    NodeId cur = frontier.front();
    frontier.pop_front();
    for (const auto& [a, b] : up_links) {
      NodeId next;
      if (a == cur) next = b;
      else if (b == cur) next = a;
      else continue;
      if (parent.count(next)) continue;
      parent[next] = cur;
      frontier.push_back(next);
    }
  }
  if (!parent.count(to)) return {};
  std::vector<NodeId> path{to};
  for (NodeId n = to; n != from; n = parent[n]) path.push_back(parent[n]);
  std::reverse(path.begin(), path.end());
  return path;
}

TEST_F(NetworkTest, RouteCacheSurvivesLinkFlaps) {
  AddNodes(5);
  // Two squares sharing the 2-3 edge, plus a 1-5 long-way edge: rich enough
  // that partitions reroute rather than disconnect.
  std::vector<std::pair<NodeId, NodeId>> links = {
      {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 5}, {2, 4}};
  for (const auto& [a, b] : links) network_.AddLink(a, b);

  auto up_links = [&](const std::set<std::pair<NodeId, NodeId>>& down) {
    std::vector<std::pair<NodeId, NodeId>> up;
    for (const auto& l : links) {
      if (!down.count(l)) up.push_back(l);
    }
    return up;
  };
  auto check_all_pairs = [&](const std::set<std::pair<NodeId, NodeId>>& down) {
    auto up = up_links(down);
    for (NodeId from = 1; from <= 5; ++from) {
      for (NodeId to = 1; to <= 5; ++to) {
        EXPECT_EQ(network_.Route(from, to), ReferenceBfs(up, from, to))
            << "route " << from << "->" << to;
        EXPECT_EQ(network_.Reachable(from, to),
                  !ReferenceBfs(up, from, to).empty());
      }
    }
  };

  check_all_pairs({});
  // Partition the 2-3 bridge mid-run, re-query everything, then flap more
  // links, heal, and re-verify: cached tables must always match a fresh BFS.
  network_.SetLinkUp(2, 3, false);
  check_all_pairs({{2, 3}});
  network_.SetLinkUp(1, 2, false);
  check_all_pairs({{2, 3}, {1, 2}});
  network_.SetLinkUp(2, 3, true);
  check_all_pairs({{1, 2}});
  network_.SetLinkUp(1, 2, true);
  check_all_pairs({});
  // Repeated queries against an unchanged topology are cache hits.
  int64_t misses_before = sim_.GetStats().Counter("net.route_cache_misses");
  for (int i = 0; i < 100; ++i) network_.Route(1, 4);
  EXPECT_EQ(sim_.GetStats().Counter("net.route_cache_misses"), misses_before);
  EXPECT_GT(sim_.GetStats().Counter("net.route_cache_hits"), 100);
}

TEST_F(NetworkTest, RouteCacheInvalidatesOnIsolateAndReconnect) {
  AddNodes(4);
  network_.AddLink(1, 2);
  network_.AddLink(2, 3);
  network_.AddLink(3, 4);
  network_.AddLink(4, 1);
  uint64_t v0 = network_.topology_version();
  ASSERT_EQ(network_.Route(1, 3).size(), 3u);  // warm the cache
  network_.IsolateNode(2);
  EXPECT_GT(network_.topology_version(), v0);
  auto route = network_.Route(1, 3);
  ASSERT_EQ(route.size(), 3u);  // re-routed around the isolated node
  EXPECT_EQ(route[1], 4);
  EXPECT_FALSE(network_.Reachable(1, 2));
  network_.ReconnectNode(2);
  EXPECT_TRUE(network_.Reachable(1, 2));
  EXPECT_EQ(network_.Route(1, 2).size(), 2u);
  // Isolating again without any change in between is a no-op: no version
  // bump, cache stays valid.
  uint64_t v1 = network_.topology_version();
  network_.ReconnectNode(2);  // already connected
  EXPECT_EQ(network_.topology_version(), v1);
}

}  // namespace
}  // namespace encompass::net
