// Wire protocol of the DISCPROCESS: request encoding shared by the file
// system (server side), TMF (state changes), and the BACKOUTPROCESS (undo).

#ifndef ENCOMPASS_DISCPROCESS_DISC_PROTOCOL_H_
#define ENCOMPASS_DISCPROCESS_DISC_PROTOCOL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "common/slice.h"
#include "common/transid.h"
#include "net/message.h"
#include "storage/file.h"

namespace encompass::discprocess {

/// DISCPROCESS message tags.
enum DiscTag : uint32_t {
  kDiscRead = net::kTagDisc + 1,        ///< point read, optional record lock
  kDiscSeek = net::kTagDisc + 2,        ///< positioned read (>= / > key)
  kDiscInsert = net::kTagDisc + 3,      ///< insert (auto-locks the new key)
  kDiscUpdate = net::kTagDisc + 4,      ///< update (ensures the record lock)
  kDiscDelete = net::kTagDisc + 5,      ///< delete (ensures the record lock)
  kDiscReadAlt = net::kTagDisc + 6,     ///< alternate-key lookup
  kDiscLockFile = net::kTagDisc + 7,    ///< file-granularity lock
  kDiscTxnStateChange = net::kTagDisc + 8,  ///< from TMF: txn state broadcast
  kDiscUndo = net::kTagDisc + 9,        ///< from BACKOUTPROCESS: compensate
  kDiscFlushVolume = net::kTagDisc + 10,///< force cached data blocks to disc
  kDiscScan = net::kTagDisc + 11,       ///< batched range scan (browse read)
  /// From TMF: enumerate the transactions currently holding locks here. The
  /// TMP's orphan-lock sweep compares the reply against its transaction
  /// table and resolves unknown holders with the home TMP — locks acquired
  /// by an operation retry that raced a node crash/recovery would otherwise
  /// be held forever (no TMP tracks the transid any more).
  kDiscListLockOwners = net::kTagDisc + 12,
  /// From the QueuePlanner: one lane batch of pre-ordered operations to
  /// execute without lock acquisition. Conflicts were already resolved by
  /// plan order — a record's operations all ride the same lane, in plan
  /// order, with one batch in flight per lane.
  kDiscPlannedOps = net::kTagDisc + 13,
};

/// Transaction states a DISCPROCESS reacts to (subset of the TMF states).
enum class DiscTxnState : uint8_t {
  kAborting = 0,  ///< stop accepting work for the transaction; hold locks
  kEnded = 1,     ///< commit complete: release the transaction's locks
  kAborted = 2,   ///< backout complete: release the transaction's locks
};

/// One DISCPROCESS request. Field use depends on the tag; unused fields stay
/// empty and cost one varint each on the wire.
struct DiscRequest {
  std::string file;
  Bytes key;
  Bytes record;           ///< insert/update image; kDiscUndo: before-image
  std::string field;      ///< kDiscReadAlt
  std::string value;      ///< kDiscReadAlt
  bool lock = false;      ///< kDiscRead: acquire the record lock first
  bool inclusive = true;  ///< kDiscSeek / kDiscScan
  storage::MutationOp undo_op = storage::MutationOp::kInsert;  ///< kDiscUndo
  SimDuration lock_timeout = 0;  ///< 0 = DISCPROCESS default
  uint32_t max_records = 0;      ///< kDiscScan batch size (0 = server default)

  Bytes Encode() const;
  static Result<DiscRequest> Decode(const Slice& payload);
};

/// Reply payload of kDiscSeek.
struct SeekReply {
  Bytes key;
  Bytes value;

  Bytes Encode() const;
  static Result<SeekReply> Decode(const Slice& payload);
};

/// Reply payload of kDiscScan: a batch of records in key order, plus
/// whether the scan reached the end of this partition's file.
struct ScanReply {
  std::vector<SeekReply> entries;
  bool at_end = false;

  Bytes Encode() const;
  static Result<ScanReply> Decode(const Slice& payload);
};

/// Reply payload of kDiscListLockOwners: transactions holding >= 1 lock.
struct LockOwnersReply {
  std::vector<Transid> owners;

  Bytes Encode() const;
  static Result<LockOwnersReply> Decode(const Slice& payload);
};

/// One operation inside a kDiscPlannedOps lane batch. Each op carries its
/// own transaction id: a lane interleaves operations of many transactions,
/// and every mutation is audited (and undone on abort) under its owner.
struct PlannedOp {
  enum class Kind : uint8_t {
    kRead = 0,    ///< point read, no lock
    kInsert = 1,
    kUpdate = 2,  ///< full-image update
    kDelete = 3,
    kDelta = 4,   ///< read-modify-write: add `delta` to integer field `field`
  };

  Kind kind = Kind::kRead;
  Transid transid;
  std::string file;
  Bytes key;
  Bytes record;       ///< kInsert / kUpdate image
  std::string field;  ///< kDelta: name of the integer record field
  int64_t delta = 0;  ///< kDelta: signed amount to add
};

/// Payload of kDiscPlannedOps: one lane's next batch, in plan order.
struct PlannedBatch {
  uint64_t epoch = 0;  ///< planner epoch that sealed these ops (reporting)
  uint32_t lane = 0;   ///< lane id (reporting; ordering is the message order)
  std::vector<PlannedOp> ops;

  Bytes Encode() const;
  static Result<PlannedBatch> Decode(const Slice& payload);
};

/// Reply payload of kDiscPlannedOps: one entry per op, in batch order.
struct PlannedBatchReply {
  struct OpResult {
    Status::Code status = Status::Code::kOk;
    Bytes value;  ///< kRead: the record image (when found)
  };
  std::vector<OpResult> results;

  Bytes Encode() const;
  static Result<PlannedBatchReply> Decode(const Slice& payload);
};

/// Payload of kDiscTxnStateChange.
struct TxnStateChange {
  Transid transid;
  DiscTxnState state = DiscTxnState::kEnded;

  Bytes Encode() const;
  static Result<TxnStateChange> Decode(const Slice& payload);
};

}  // namespace encompass::discprocess

#endif  // ENCOMPASS_DISCPROCESS_DISC_PROTOCOL_H_
