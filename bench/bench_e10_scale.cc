// E10 — parallel simulation engine scaling. The PDES engine partitions the
// event schedule across per-node loops and runs them on a worker pool under
// conservative synchronization (lookahead = minimum link latency), with the
// guarantee that every engine — the legacy single queue (workers=0), the
// single-threaded PDES oracle (workers=1), and any worker pool (workers=N) —
// produces byte-identical same-seed results. This binary measures what the
// parallelism buys: events/second on a synthetic multi-node workload at
// 2/4/8/16 nodes, single-threaded vs a worker pool sized to the host.
//
// The workload is engine-shaped, not application-shaped: each node runs
// several self-rescheduling timer chains (local work, ~50us apart, jittered
// from the node's own PRNG stream) and every 8th step posts a message one
// node around the ring with >= lookahead delay (cross-node work). Per-node
// accumulators are summed at the end into an order-independent checksum the
// bench asserts is identical across all engines, so the speedup table can
// never be quoted from runs that diverged.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sim/simulation.h"

namespace encompass::bench {
namespace {

// Worker-pool size for the "parallel" rows: host threads capped at 8, or the
// ENCOMPASS_BENCH_WORKERS override (handy for exercising the round machinery
// and its sim.* metrics on hosts whose core count would collapse the pool
// to the single-thread oracle).
int PoolWorkers() {
  if (const char* env = std::getenv("ENCOMPASS_BENCH_WORKERS")) {
    const int v = std::atoi(env);
    if (v >= 1 && v <= 8) return v;
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return static_cast<int>(std::min(hw, 8u));
}

constexpr int kChainsPerNode = 4;
constexpr uint64_t kPostEvery = 8;  // every 8th chain step posts to the ring

// One step of a chain pinned to `node`: local PRNG work, an occasional
// cross-node post, then re-arm. Free function so the recursion needs no
// heap-allocated self-reference.
void ChainStep(sim::Simulation* sim, std::vector<uint64_t>* acc, uint16_t node,
               int nodes, uint64_t step) {
  Random& rng = sim->RngFor(node);
  (*acc)[node] += rng.Uniform(1000);
  if (step % kPostEvery == 0) {
    // Ring neighbor; the receiving side only bumps a counter (it must not
    // draw from the destination's PRNG stream, which belongs to that node's
    // local chains). Delay is at least the lookahead, like any real link.
    auto dst = static_cast<uint16_t>(node % nodes + 1);
    sim->PostToNode(dst, Millis(15) + Micros(node * 7),
                    [acc, dst]() { (*acc)[dst] += 1; });
  }
  sim->AfterOn(node, Micros(40 + rng.Uniform(20)),
               [sim, acc, node, nodes, step]() {
                 ChainStep(sim, acc, node, nodes, step + 1);
               });
}

struct EngineRun {
  uint64_t executed = 0;
  uint64_t checksum = 0;
  double wall_s = 0;
  double events_per_sec = 0;
  // Coordinator breakdown (parallel engines only; from sim.* metrics).
  int64_t rounds = 0;
  int64_t ready_loops = 0;
  int64_t posts = 0;
  int64_t horizon_p50 = 0;
  int64_t horizon_p95 = 0;
};

// Publishes the engine's coordinator metrics into the run's Stats and copies
// them into `r`; with `prefix` set, also surfaces them in BENCH_e10 JSON.
void CaptureEngineMetrics(sim::Simulation& sim, EngineRun& r,
                          const std::string& prefix) {
  sim.PublishEngineMetrics();
  sim::Stats& stats = sim.GetStats();
  r.rounds = stats.Counter("sim.rounds");
  r.ready_loops = stats.Counter("sim.ready_loops");
  r.posts = stats.Counter("sim.inbox_posts");
  if (const sim::Histogram* h = stats.FindHistogram("sim.horizon_width")) {
    r.horizon_p50 = h->Percentile(50);
    r.horizon_p95 = h->Percentile(95);
  }
  if (!prefix.empty()) ReportSimStats(prefix, stats);
}

EngineRun RunSynthetic(int nodes, int workers, SimDuration span,
                       const std::string& stats_prefix = "") {
  sim::Simulation sim(/*seed=*/42, workers);
  // No Network in this bench, so declare the "link latency" ourselves: it is
  // the engine's conservative lookahead, and the floor for every post above.
  sim.NoteLinkLatency(Millis(15));
  std::vector<uint64_t> acc(static_cast<size_t>(nodes) + 1, 0);
  for (int n = 1; n <= nodes; ++n) {
    sim.EnsureNode(static_cast<uint16_t>(n));
  }
  for (int n = 1; n <= nodes; ++n) {
    for (int c = 0; c < kChainsPerNode; ++c) {
      sim.AfterOn(static_cast<uint16_t>(n), Micros(10 + 13 * c),
                  [&sim, &acc, n, nodes]() {
                    ChainStep(&sim, &acc, static_cast<uint16_t>(n), nodes, 1);
                  });
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  sim.RunUntil(span);
  const auto t1 = std::chrono::steady_clock::now();
  EngineRun r;
  r.executed = sim.ExecutedEvents();
  for (int n = 1; n <= nodes; ++n) r.checksum += acc[static_cast<size_t>(n)];
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  if (r.wall_s > 0) {
    r.events_per_sec = static_cast<double>(r.executed) / r.wall_s;
  }
  CaptureEngineMetrics(sim, r, stats_prefix);
  return r;
}

// --- E10.c: heterogeneous-latency topology ---------------------------------
//
// The topology the per-link lookahead exists for: nodes 1 and 2 are a
// "metro" pair joined by a 100us LAN link, exchanging sparse control
// heartbeats (~25ms apart); nodes 3..8 are WAN satellites, 50ms from
// everything, each running dense local chains (~50us apart). Under the old
// global-min lookahead the 100us LAN link is everyone's lookahead, so every
// satellite's horizon collapses to ~100us — a coordinator round per handful
// of events. With per-link lookahead the satellites' horizons are bounded by
// 50ms links instead, so rounds batch thousands of events. Both
// configurations — and the legacy/oracle engines — must produce the same
// executed count and checksum: the lookahead table changes batching, never
// history.

constexpr int kHeteroNodes = 8;     // 1,2 = metro pair; 3..8 = satellites
constexpr int kSatChains = 4;       // dense chains per satellite
constexpr uint64_t kSatPostEvery = 64;

void MetroStep(sim::Simulation* sim, std::vector<uint64_t>* acc,
               uint16_t node) {
  Random& rng = sim->RngFor(node);
  (*acc)[node] += rng.Uniform(1000);
  // Heartbeat to the other metro node over the 100us LAN link.
  auto peer = static_cast<uint16_t>(node == 1 ? 2 : 1);
  sim->PostToNode(peer, Micros(100 + node * 3),
                  [acc, peer]() { (*acc)[peer] += 1; });
  sim->AfterOn(node, Millis(20) + Micros(rng.Uniform(10000)),
               [sim, acc, node]() { MetroStep(sim, acc, node); });
}

void SatStep(sim::Simulation* sim, std::vector<uint64_t>* acc, uint16_t node,
             uint64_t step) {
  Random& rng = sim->RngFor(node);
  (*acc)[node] += rng.Uniform(1000);
  if (step % kSatPostEvery == 0) {
    // Ring around the satellites over the 50ms WAN links.
    auto dst = static_cast<uint16_t>(node == kHeteroNodes ? 3 : node + 1);
    sim->PostToNode(dst, Millis(50) + Micros(node * 7),
                    [acc, dst]() { (*acc)[dst] += 1; });
  }
  sim->AfterOn(node, Micros(40 + rng.Uniform(20)),
               [sim, acc, node, step]() { SatStep(sim, acc, node, step + 1); });
}

EngineRun RunHetero(int workers, bool per_link, SimDuration span,
                    const std::string& stats_prefix = "") {
  sim::Simulation sim(/*seed=*/4242, workers);
  for (int n = 1; n <= kHeteroNodes; ++n) {
    sim.EnsureNode(static_cast<uint16_t>(n));
  }
  if (per_link) {
    // Declare the actual topology: the engine derives pairwise lookaheads.
    sim.NoteLinkLatency(1, 2, Micros(100));
    for (int s = 3; s <= kHeteroNodes; ++s) {
      for (int o = 1; o <= kHeteroNodes; ++o) {
        if (o != s) {
          sim.NoteLinkLatency(static_cast<uint16_t>(s),
                              static_cast<uint16_t>(o), Millis(50));
        }
      }
    }
  } else {
    // Pre-PR engine emulation: one scalar lookahead, the global minimum
    // link latency — the metro pair's 100us LAN link throttles everyone.
    sim.NoteLinkLatency(Micros(100));
  }
  std::vector<uint64_t> acc(kHeteroNodes + 1, 0);
  for (uint16_t n = 1; n <= 2; ++n) {
    sim.AfterOn(n, Millis(1) + Micros(37 * n),
                [&sim, &acc, n]() { MetroStep(&sim, &acc, n); });
  }
  for (uint16_t n = 3; n <= kHeteroNodes; ++n) {
    for (int c = 0; c < kSatChains; ++c) {
      sim.AfterOn(n, Micros(10 + 13 * c),
                  [&sim, &acc, n]() { SatStep(&sim, &acc, n, 1); });
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  sim.RunUntil(span);
  const auto t1 = std::chrono::steady_clock::now();
  EngineRun r;
  r.executed = sim.ExecutedEvents();
  for (int n = 1; n <= kHeteroNodes; ++n) r.checksum += acc[static_cast<size_t>(n)];
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  if (r.wall_s > 0) {
    r.events_per_sec = static_cast<double>(r.executed) / r.wall_s;
  }
  CaptureEngineMetrics(sim, r, stats_prefix);
  return r;
}

void TableHetero() {
  const int pool = PoolWorkers();
  const SimDuration span = Seconds(1);
  Header("E10.c heterogeneous topology: per-link vs global-min lookahead "
         "(metro pair @100us + 6 WAN satellites @50ms, seed 4242, 1 sim-sec)");
  EngineRun legacy = RunHetero(0, true, span);
  EngineRun oracle = RunHetero(1, true, span, "hetero.oracle");
  EngineRun perlink = RunHetero(pool, true, span, "hetero.perlink");
  EngineRun globalmin = RunHetero(pool, false, span, "hetero.globalmin");
  EngineRun oracle_gm = RunHetero(1, false, span);
  const bool identical =
      legacy.executed == oracle.executed && oracle.executed == perlink.executed &&
      perlink.executed == globalmin.executed &&
      globalmin.executed == oracle_gm.executed &&
      legacy.checksum == oracle.checksum && oracle.checksum == perlink.checksum &&
      perlink.checksum == globalmin.checksum &&
      globalmin.checksum == oracle_gm.checksum;
  if (!identical) {
    printf("ENGINE DIVERGENCE on hetero topology: legacy %llu/%llu oracle "
           "%llu/%llu perlink %llu/%llu globalmin %llu/%llu oracle-gm %llu/%llu\n",
           (unsigned long long)legacy.executed, (unsigned long long)legacy.checksum,
           (unsigned long long)oracle.executed, (unsigned long long)oracle.checksum,
           (unsigned long long)perlink.executed, (unsigned long long)perlink.checksum,
           (unsigned long long)globalmin.executed,
           (unsigned long long)globalmin.checksum,
           (unsigned long long)oracle_gm.executed,
           (unsigned long long)oracle_gm.checksum);
    ReportValue("divergence", 1);
    return;
  }
  printf("%22s %14s %9s %12s %12s %14s\n", "engine", "events/s", "rounds",
         "ready/round", "horizon p50", "horizon p95");
  printf("%22s %14.0f %9s %12s %12s %14s\n", "legacy (workers=0)",
         legacy.events_per_sec, "-", "-", "-", "-");
  printf("%22s %14.0f %9s %12s %12s %14s\n", "oracle (workers=1)",
         oracle.events_per_sec, "-", "-", "-", "-");
  auto row = [](const char* name, const EngineRun& r) {
    printf("%22s %14.0f %9lld %12.2f %10lldus %12lldus\n", name,
           r.events_per_sec, (long long)r.rounds,
           r.rounds > 0 ? static_cast<double>(r.ready_loops) /
                              static_cast<double>(r.rounds)
                        : 0.0,
           (long long)r.horizon_p50, (long long)r.horizon_p95);
  };
  row("global-min lookahead", globalmin);
  row("per-link lookahead", perlink);
  const double speedup = globalmin.events_per_sec > 0
                             ? perlink.events_per_sec / globalmin.events_per_sec
                             : 0;
  printf("per-link speedup over global-min engine: %.2fx\n", speedup);
  ReportValue("hetero.events", static_cast<double>(perlink.executed));
  ReportValue("hetero.legacy_eps", legacy.events_per_sec);
  ReportValue("hetero.single_eps", oracle.events_per_sec);
  ReportValue("hetero.parallel_eps", perlink.events_per_sec);
  ReportValue("hetero.globalmin_eps", globalmin.events_per_sec);
  ReportValue("hetero.speedup", speedup);
}

void TableScaling() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int pool = PoolWorkers();
  Header("E10.a events/second by node count and engine (seed 42, 1 sim-sec)");
  printf("host threads: %u (worker pool: %d)\n", hw, pool);
  printf("%6s %14s %14s %14s %9s\n", "nodes", "legacy eps", "oracle eps",
         "parallel eps", "speedup");
  for (int nodes : {2, 4, 8, 16}) {
    const SimDuration span = Seconds(1);
    EngineRun legacy = RunSynthetic(nodes, 0, span);
    EngineRun oracle = RunSynthetic(nodes, 1, span);
    // The 8-node parallel run surfaces its coordinator metrics in the JSON.
    EngineRun par =
        RunSynthetic(nodes, pool, span, nodes == 8 ? "nodes8.par" : "");
    // The determinism contract, enforced before any number is reported:
    // same seed, any engine, identical history.
    if (legacy.executed != oracle.executed || oracle.executed != par.executed ||
        legacy.checksum != oracle.checksum || oracle.checksum != par.checksum) {
      printf("ENGINE DIVERGENCE at %d nodes: legacy %llu/%llu oracle %llu/%llu "
             "parallel %llu/%llu (executed/checksum)\n",
             nodes, (unsigned long long)legacy.executed,
             (unsigned long long)legacy.checksum,
             (unsigned long long)oracle.executed,
             (unsigned long long)oracle.checksum,
             (unsigned long long)par.executed,
             (unsigned long long)par.checksum);
      ReportValue("divergence", 1);
      continue;
    }
    const double speedup =
        oracle.events_per_sec > 0 ? par.events_per_sec / oracle.events_per_sec
                                  : 0;
    printf("%6d %14.0f %14.0f %14.0f %8.2fx\n", nodes, legacy.events_per_sec,
           oracle.events_per_sec, par.events_per_sec, speedup);
    const std::string k = "nodes" + std::to_string(nodes);
    ReportValue(k + ".events", static_cast<double>(par.executed));
    ReportValue(k + ".legacy_eps", legacy.events_per_sec);
    ReportValue(k + ".single_eps", oracle.events_per_sec);
    ReportValue(k + ".parallel_eps", par.events_per_sec);
    ReportValue(k + ".speedup", speedup);
  }
  ReportValue("hw_threads", static_cast<double>(hw));
  ReportValue("pool_workers", static_cast<double>(pool));
  // Speedup claims are only meaningful with real cores to run the pool on;
  // CI gates on nodes8.speedup >= 2 only when hw_limited is 0.
  ReportValue("hw_limited", hw < 4 ? 1 : 0);
}

void TableWorkerSweep() {
  Header("E10.b 8 nodes: events/second by worker count");
  printf("%9s %14s\n", "workers", "events/s");
  for (int workers : {0, 1, 2, 4, 8}) {
    EngineRun r = RunSynthetic(8, workers, Seconds(1));
    printf("%9d %14.0f\n", workers, r.events_per_sec);
    ReportValue("sweep.workers" + std::to_string(workers) + ".eps",
                r.events_per_sec);
  }
}

void BM_SyntheticEngine(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  uint64_t executed = 0;
  for (auto _ : state) {
    EngineRun r = RunSynthetic(nodes, workers, Millis(200));
    benchmark::DoNotOptimize(r.checksum);
    executed += r.executed;
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(executed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SyntheticEngine)
    ->Args({8, 1})
    ->Args({8, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace encompass::bench

int main(int argc, char** argv) {
  encompass::bench::InitReport("e10_scale");
  encompass::bench::ReportMeta(/*seed=*/42);
  printf("E10: conservative-PDES engine scaling — per-node event loops on a "
         "worker pool\n");
  encompass::bench::TableScaling();
  encompass::bench::TableWorkerSweep();
  encompass::bench::TableHetero();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  encompass::bench::WriteReport();
  return 0;
}
