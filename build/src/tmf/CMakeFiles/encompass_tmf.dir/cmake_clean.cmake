file(REMOVE_RECURSE
  "CMakeFiles/encompass_tmf.dir/backout_process.cc.o"
  "CMakeFiles/encompass_tmf.dir/backout_process.cc.o.d"
  "CMakeFiles/encompass_tmf.dir/file_system.cc.o"
  "CMakeFiles/encompass_tmf.dir/file_system.cc.o.d"
  "CMakeFiles/encompass_tmf.dir/rollforward.cc.o"
  "CMakeFiles/encompass_tmf.dir/rollforward.cc.o.d"
  "CMakeFiles/encompass_tmf.dir/tmp_process.cc.o"
  "CMakeFiles/encompass_tmf.dir/tmp_process.cc.o.d"
  "CMakeFiles/encompass_tmf.dir/transaction_state.cc.o"
  "CMakeFiles/encompass_tmf.dir/transaction_state.cc.o.d"
  "libencompass_tmf.a"
  "libencompass_tmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encompass_tmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
