// Integration tests for TMF: the transaction verbs, the Figure-3 state
// machine, single-node and distributed two-phase commit, unilateral abort
// on partition, in-doubt lock retention, safe-delivery after heal, TMP
// takeover, and ROLLFORWARD after total node failure.
//
// Service CPU placement on a 4-CPU single-volume node (deployment order):
//   $AUD.<vol> pair on (0,1), <vol> DISCPROCESS pair on (1,2),
//   $BACKOUT pair on (2,3), $TMP pair on (3,0).

#include <gtest/gtest.h>

#include "encompass/deployment.h"
#include "tmf/file_system.h"
#include "tmf/rollforward.h"
#include "tmf/tmf_protocol.h"
#include "test_util.h"

namespace encompass::tmf {
namespace {

using app::Deployment;
using app::FileSpec;
using app::NodeDeployment;
using app::NodeSpec;
using app::VolumeSpec;
using testutil::TestClient;

class TmfTest : public ::testing::Test {
 protected:
  TmfTest() : sim_(23), deploy_(&sim_) {
    NodeSpec n1;
    n1.id = 1;
    n1.volumes = {VolumeSpec{
        "$DATA1",
        {FileSpec{"acct"}},
        {}}};
    node1_ = deploy_.AddNode(n1);

    NodeSpec n2;
    n2.id = 2;
    n2.volumes = {VolumeSpec{"$DATA2", {FileSpec{"stock"}}, {}}};
    node2_ = deploy_.AddNode(n2);

    deploy_.LinkAll();
    EXPECT_TRUE(deploy_.DefineFile("acct", 1, "$DATA1").ok());
    EXPECT_TRUE(deploy_.DefineFile("stock", 2, "$DATA2").ok());

    client_ = node1_->node()->Spawn<TestClient>(2);
    fs_ = std::make_unique<FileSystem>(client_, &deploy_.catalog());
    sim_.Run();
  }

  net::Address Tmp1() { return net::Address(1, "$TMP"); }

  uint64_t Begin() {
    auto* o = client_->CallRaw(Tmp1(), kTmfBegin, {});
    sim_.Run();
    EXPECT_TRUE(o->done && o->status.ok());
    auto t = DecodeTransidPayload(Slice(o->payload));
    EXPECT_TRUE(t.ok());
    return t->Pack();
  }

  Status End(uint64_t transid) {
    auto* o = client_->CallRaw(Tmp1(), kTmfEnd,
                               EncodeTransidPayload(Transid::Unpack(transid)),
                               transid);
    sim_.Run();
    EXPECT_TRUE(o->done);
    return o->status;
  }

  Status Abort(uint64_t transid) {
    auto* o = client_->CallRaw(Tmp1(), kTmfAbort,
                               EncodeTransidPayload(Transid::Unpack(transid)),
                               transid);
    sim_.Run();
    EXPECT_TRUE(o->done);
    return o->status;
  }

  /// Synchronous wrapper around an asynchronous FileSystem call.
  Status FsOp(uint64_t transid,
              const std::function<void(FileSystem::Callback)>& op,
              Bytes* payload = nullptr) {
    Status result = Status::Timeout("no callback");
    bool done = false;
    client_->set_current_transid(transid);
    op([&](const Status& s, const Bytes& p) {
      result = s;
      if (payload != nullptr) *payload = p;
      done = true;
    });
    client_->set_current_transid(0);
    sim_.Run();
    EXPECT_TRUE(done);
    return result;
  }

  Status Insert(uint64_t transid, const std::string& file, const std::string& key,
                const std::string& value) {
    return FsOp(transid, [&](FileSystem::Callback cb) {
      fs_->Insert(file, Slice(key), Slice(value), std::move(cb));
    });
  }
  Status Update(uint64_t transid, const std::string& file, const std::string& key,
                const std::string& value) {
    return FsOp(transid, [&](FileSystem::Callback cb) {
      fs_->Update(file, Slice(key), Slice(value), std::move(cb));
    });
  }
  Status ReadLocked(uint64_t transid, const std::string& file,
                    const std::string& key, std::string* value) {
    Bytes payload;
    Status s = FsOp(transid, [&](FileSystem::Callback cb) {
      fs_->Read(file, Slice(key), /*lock=*/true, std::move(cb));
    }, &payload);
    if (value != nullptr) *value = ToString(payload);
    return s;
  }

  std::string DiscValue(NodeDeployment* nd, const std::string& volume,
                        const std::string& file, const std::string& key) {
    auto r = nd->storage().volumes.at(volume)->ReadRecord(file, Slice(key));
    return r.status.ok() ? ToString(r.value) : "<" + r.status.ToString() + ">";
  }

  sim::Simulation sim_;
  Deployment deploy_;
  NodeDeployment* node1_;
  NodeDeployment* node2_;
  TestClient* client_;
  std::unique_ptr<FileSystem> fs_;
};

// ---------------------------------------------------------------------------
// Single-node transactions
// ---------------------------------------------------------------------------

TEST_F(TmfTest, CommitMakesUpdatesPermanentAndReleasesLocks) {
  uint64_t t = Begin();
  EXPECT_TRUE(Insert(t, "acct", "a1", "100").ok());
  EXPECT_TRUE(Insert(t, "acct", "a2", "200").ok());
  EXPECT_TRUE(End(t).ok());

  EXPECT_EQ(DiscValue(node1_, "$DATA1", "acct", "a1"), "100");
  EXPECT_EQ(node1_->disc("$DATA1")->locks().held_count(), 0u);
  // The commit record is in the Monitor Audit Trail.
  EXPECT_EQ(node1_->storage().monitor_trail.Lookup(Transid::Unpack(t)), 1);
  // Phase 1 forced the audit trail: both images are durable.
  auto* trail = node1_->storage().trails.at("$DATA1.AT").get();
  EXPECT_GE(trail->durable_lsn(), 2u);
  // The transid has left the system.
  EXPECT_EQ(node1_->tmp()->ActiveTransactionCount(), 0u);
  EXPECT_EQ(sim_.GetStats().Counter("tmf.illegal_transitions"), 0);
}

TEST_F(TmfTest, VoluntaryAbortBacksOutAllUpdates) {
  uint64_t t0 = Begin();
  EXPECT_TRUE(Insert(t0, "acct", "a1", "100").ok());
  EXPECT_TRUE(End(t0).ok());

  uint64_t t = Begin();
  EXPECT_TRUE(Update(t, "acct", "a1", "999").ok());
  EXPECT_TRUE(Insert(t, "acct", "a2", "50").ok());
  EXPECT_EQ(DiscValue(node1_, "$DATA1", "acct", "a1"), "999");  // dirty
  EXPECT_TRUE(Abort(t).ok());

  EXPECT_EQ(DiscValue(node1_, "$DATA1", "acct", "a1"), "100");  // restored
  EXPECT_TRUE(node1_->storage()
                  .volumes.at("$DATA1")
                  ->ReadRecord("acct", Slice("a2"))
                  .status.IsNotFound());
  EXPECT_EQ(node1_->disc("$DATA1")->locks().held_count(), 0u);
  EXPECT_EQ(node1_->storage().monitor_trail.Lookup(Transid::Unpack(t)), 0);
}

TEST_F(TmfTest, EndAfterAbortIsRejected) {
  uint64_t t = Begin();
  EXPECT_TRUE(Insert(t, "acct", "a1", "1").ok());
  EXPECT_TRUE(Abort(t).ok());
  EXPECT_TRUE(End(t).IsAborted());
}

TEST_F(TmfTest, MultipleUpdatesOfOneRecordUnwindInOrder) {
  uint64_t t0 = Begin();
  EXPECT_TRUE(Insert(t0, "acct", "a1", "v0").ok());
  EXPECT_TRUE(End(t0).ok());
  uint64_t t = Begin();
  EXPECT_TRUE(Update(t, "acct", "a1", "v1").ok());
  EXPECT_TRUE(Update(t, "acct", "a1", "v2").ok());
  EXPECT_TRUE(Update(t, "acct", "a1", "v3").ok());
  EXPECT_TRUE(Abort(t).ok());
  EXPECT_EQ(DiscValue(node1_, "$DATA1", "acct", "a1"), "v0");
}

TEST_F(TmfTest, StateTransitionsFollowFigure3) {
  uint64_t t1 = Begin();
  Insert(t1, "acct", "a1", "1");
  End(t1);
  uint64_t t2 = Begin();
  Insert(t2, "acct", "a2", "2");
  Abort(t2);
  auto& stats = sim_.GetStats();
  EXPECT_GE(stats.Counter("tmf.transition.active->ending"), 1);
  EXPECT_GE(stats.Counter("tmf.transition.ending->ended"), 1);
  EXPECT_GE(stats.Counter("tmf.transition.active->aborting"), 1);
  EXPECT_GE(stats.Counter("tmf.transition.aborting->aborted"), 1);
  EXPECT_EQ(stats.Counter("tmf.illegal_transitions"), 0);
  EXPECT_GT(stats.Counter("tmf.state_broadcasts"), 0);
}

TEST_F(TmfTest, LockedReadIsRepeatableUntilCommit) {
  uint64_t t0 = Begin();
  Insert(t0, "acct", "a1", "100");
  End(t0);

  uint64_t reader = Begin();
  std::string v;
  EXPECT_TRUE(ReadLocked(reader, "acct", "a1", &v).ok());
  EXPECT_EQ(v, "100");

  // A concurrent writer times out rather than dirtying the locked record.
  uint64_t writer = Begin();
  fs_->set_lock_timeout(Millis(100));
  EXPECT_TRUE(Update(writer, "acct", "a1", "999").IsTimeout());
  fs_->set_lock_timeout(0);
  EXPECT_TRUE(ReadLocked(reader, "acct", "a1", &v).ok());
  EXPECT_EQ(v, "100");  // repeatable
  EXPECT_TRUE(End(reader).ok());
  Abort(writer);
}

// ---------------------------------------------------------------------------
// Distributed transactions
// ---------------------------------------------------------------------------

TEST_F(TmfTest, DistributedCommitUpdatesBothNodes) {
  uint64_t t = Begin();
  EXPECT_TRUE(Insert(t, "acct", "a1", "100").ok());
  EXPECT_TRUE(Insert(t, "stock", "s1", "55").ok());  // remote node 2
  EXPECT_TRUE(End(t).ok());

  EXPECT_EQ(DiscValue(node1_, "$DATA1", "acct", "a1"), "100");
  EXPECT_EQ(DiscValue(node2_, "$DATA2", "stock", "s1"), "55");
  // Remote locks released after phase 2 propagates.
  sim_.Run();
  EXPECT_EQ(node2_->disc("$DATA2")->locks().held_count(), 0u);
  // Both nodes recorded the commit.
  EXPECT_EQ(node1_->storage().monitor_trail.Lookup(Transid::Unpack(t)), 1);
  EXPECT_EQ(node2_->storage().monitor_trail.Lookup(Transid::Unpack(t)), 1);
  auto& stats = sim_.GetStats();
  EXPECT_GE(stats.Counter("tmf.remote_begins"), 1);
  EXPECT_GE(stats.Counter("tmf.phase1_sent"), 1);
  EXPECT_GE(stats.Counter("tmf.phase1_received"), 1);
  EXPECT_GE(stats.Counter("tmf.phase2_received"), 1);
  EXPECT_EQ(stats.Counter("tmf.illegal_transitions"), 0);
}

TEST_F(TmfTest, DistributedAbortBacksOutBothNodes) {
  uint64_t t0 = Begin();
  Insert(t0, "acct", "a1", "100");
  Insert(t0, "stock", "s1", "10");
  End(t0);

  uint64_t t = Begin();
  EXPECT_TRUE(Update(t, "acct", "a1", "0").ok());
  EXPECT_TRUE(Update(t, "stock", "s1", "0").ok());
  EXPECT_TRUE(Abort(t).ok());
  sim_.Run();

  EXPECT_EQ(DiscValue(node1_, "$DATA1", "acct", "a1"), "100");
  EXPECT_EQ(DiscValue(node2_, "$DATA2", "stock", "s1"), "10");
  EXPECT_EQ(node2_->disc("$DATA2")->locks().held_count(), 0u);
  EXPECT_EQ(node2_->storage().monitor_trail.Lookup(Transid::Unpack(t)), 0);
}

TEST_F(TmfTest, PartitionBeforeCommitAbortsEverywhere) {
  uint64_t t0 = Begin();
  Insert(t0, "stock", "s1", "10");
  End(t0);

  uint64_t t = Begin();
  EXPECT_TRUE(Insert(t, "acct", "a1", "100").ok());
  EXPECT_TRUE(Update(t, "stock", "s1", "77").ok());
  deploy_.cluster().CutLink(1, 2);
  sim_.RunFor(Seconds(1));

  // Both sides abort autonomously: node 1 lost a participant; node 2 lost
  // the node that introduced the transid.
  EXPECT_EQ(node1_->tmp()->ActiveTransactionCount(), 0u);
  EXPECT_EQ(node2_->tmp()->ActiveTransactionCount(), 0u);
  EXPECT_TRUE(node1_->storage()
                  .volumes.at("$DATA1")
                  ->ReadRecord("acct", Slice("a1"))
                  .status.IsNotFound());
  EXPECT_EQ(DiscValue(node2_, "$DATA2", "stock", "s1"), "10");
  EXPECT_GE(sim_.GetStats().Counter("tmf.unilateral_aborts"), 1);
  // END-TRANSACTION is rejected after the automatic abort.
  deploy_.cluster().RestoreLink(1, 2);
  EXPECT_TRUE(End(t).IsAborted());
}

TEST_F(TmfTest, PartitionDuringPhase2HoldsRemoteLocksUntilHeal) {
  uint64_t t = Begin();
  EXPECT_TRUE(Insert(t, "acct", "a1", "100").ok());
  EXPECT_TRUE(Insert(t, "stock", "s1", "55").ok());

  // Cut the link the moment the commit record is written (phase 2 is then
  // at most in flight, not yet processed by node 2).
  auto* o = client_->CallRaw(Tmp1(), kTmfEnd,
                             EncodeTransidPayload(Transid::Unpack(t)), t);
  for (int i = 0; i < 1000 &&
                  node1_->storage().monitor_trail.Lookup(Transid::Unpack(t)) != 1;
       ++i) {
    sim_.RunFor(Micros(500));
  }
  deploy_.cluster().CutLink(1, 2);
  sim_.RunFor(Seconds(1));

  // The home node's END completed despite the inaccessible participant.
  EXPECT_TRUE(o->done);
  EXPECT_TRUE(o->status.ok());
  EXPECT_EQ(node1_->storage().monitor_trail.Lookup(Transid::Unpack(t)), 1);
  // The remote node is in doubt: locks held, phase 2 queued at home.
  EXPECT_GT(node2_->disc("$DATA2")->locks().held_count(), 0u);
  EXPECT_GT(node1_->tmp()->PendingSafeDeliveries(), 0u);

  // Heal: safe-delivery completes phase 2; remote locks release.
  deploy_.cluster().RestoreLink(1, 2);
  sim_.RunFor(Seconds(5));
  EXPECT_EQ(node2_->disc("$DATA2")->locks().held_count(), 0u);
  EXPECT_EQ(node2_->storage().monitor_trail.Lookup(Transid::Unpack(t)), 1);
  EXPECT_EQ(node1_->tmp()->PendingSafeDeliveries(), 0u);
  EXPECT_EQ(DiscValue(node2_, "$DATA2", "stock", "s1"), "55");
}

TEST_F(TmfTest, InDoubtTransactionResolvedByManualOverride) {
  uint64_t t = Begin();
  EXPECT_TRUE(Insert(t, "stock", "s1", "55").ok());
  client_->CallRaw(Tmp1(), kTmfEnd, EncodeTransidPayload(Transid::Unpack(t)), t);
  for (int i = 0; i < 1000 &&
                  node1_->storage().monitor_trail.Lookup(Transid::Unpack(t)) != 1;
       ++i) {
    sim_.RunFor(Micros(500));
  }
  deploy_.cluster().CutLink(1, 2);
  sim_.RunFor(Seconds(1));

  // Node 2 is in doubt and holds locks.
  EXPECT_GT(node2_->disc("$DATA2")->locks().held_count(), 0u);

  // The operator determines the disposition on the home node (committed)
  // and forces it on the isolated node — the paper's manual override.
  auto* op_client = node2_->node()->Spawn<TestClient>(2);
  sim_.RunFor(Millis(1));
  auto* forced = op_client->CallRaw(
      net::Address(2, "$TMP"), kTmfForceDisposition,
      EncodeForceDisposition(Transid::Unpack(t), Disposition::kCommitted));
  sim_.RunFor(Seconds(1));
  EXPECT_TRUE(forced->done && forced->status.ok());
  EXPECT_EQ(node2_->disc("$DATA2")->locks().held_count(), 0u);
  EXPECT_EQ(DiscValue(node2_, "$DATA2", "stock", "s1"), "55");
}

// ---------------------------------------------------------------------------
// TMP takeover
// ---------------------------------------------------------------------------

TEST_F(TmfTest, TmpTakeoverResumesCommit) {
  uint64_t t = Begin();
  EXPECT_TRUE(Insert(t, "acct", "a1", "100").ok());
  os::CallOptions opt;
  opt.timeout = Seconds(2);
  opt.retries = 3;
  auto* o = client_->CallRaw(Tmp1(), kTmfEnd,
                             EncodeTransidPayload(Transid::Unpack(t)), t, opt);
  // Kill the TMP primary's CPU (cpu 3) while the commit is in flight.
  sim_.RunFor(Millis(2));
  node1_->node()->FailCpu(3);
  sim_.RunFor(Seconds(8));
  ASSERT_TRUE(o->done);
  EXPECT_TRUE(o->status.ok());
  EXPECT_EQ(DiscValue(node1_, "$DATA1", "acct", "a1"), "100");
  EXPECT_EQ(node1_->storage().monitor_trail.Lookup(Transid::Unpack(t)), 1);
  EXPECT_GE(sim_.GetStats().Counter("os.takeovers"), 1);
}

TEST_F(TmfTest, DiscTakeoverTransparentToTransaction) {
  uint64_t t = Begin();
  EXPECT_TRUE(Insert(t, "acct", "a1", "100").ok());
  // DISCPROCESS pair for $DATA1 is on CPUs (1,2); kill the primary.
  node1_->node()->FailCpu(1);
  sim_.RunFor(Millis(50));
  EXPECT_TRUE(Update(t, "acct", "a1", "150").ok());
  EXPECT_TRUE(End(t).ok());
  EXPECT_EQ(DiscValue(node1_, "$DATA1", "acct", "a1"), "150");
}

// ---------------------------------------------------------------------------
// ROLLFORWARD
// ---------------------------------------------------------------------------

TEST_F(TmfTest, RollforwardRecoversCommittedWorkAfterTotalNodeFailure) {
  // Commit a baseline, archive the volume.
  uint64_t t0 = Begin();
  EXPECT_TRUE(Insert(t0, "acct", "a1", "100").ok());
  EXPECT_TRUE(End(t0).ok());
  auto* vol = node1_->storage().volumes.at("$DATA1").get();
  auto* trail = node1_->storage().trails.at("$DATA1.AT").get();
  vol->Flush();
  Bytes archive = vol->Archive();
  uint64_t archive_lsn = trail->durable_lsn();

  // More committed work, plus an uncommitted transaction in flight.
  uint64_t t1 = Begin();
  EXPECT_TRUE(Update(t1, "acct", "a1", "200").ok());
  EXPECT_TRUE(Insert(t1, "acct", "a2", "42").ok());
  EXPECT_TRUE(End(t1).ok());
  uint64_t t2 = Begin();
  EXPECT_TRUE(Update(t2, "acct", "a1", "666").ok());  // never commits

  // Total node failure: unforced data and audit state are lost.
  deploy_.CrashNode(1);
  sim_.RunFor(Millis(100));
  deploy_.RestartNode(1);
  sim_.RunFor(Millis(100));

  RollforwardInput input;
  input.volume = vol;
  input.archive = &archive;
  input.trail = trail;
  input.archive_lsn = archive_lsn;
  input.monitor_trail = &node1_->storage().monitor_trail;
  auto report = Rollforward(input);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->redo_applied, 2u);   // t1's two images
  EXPECT_GE(report->txns_committed, 1u);
  EXPECT_GE(report->txns_discarded, 0u);

  EXPECT_EQ(DiscValue(node1_, "$DATA1", "acct", "a1"), "200");
  EXPECT_EQ(DiscValue(node1_, "$DATA1", "acct", "a2"), "42");
  (void)t2;
}

TEST_F(TmfTest, RollforwardNegotiatesEndingTransactions) {
  // A distributed transaction reaches phase 1 on node 2 (audit forced),
  // commits at home, but node 2 dies before phase 2: after restart,
  // rollforward must ask other nodes for the disposition.
  uint64_t t = Begin();
  EXPECT_TRUE(Insert(t, "stock", "s1", "55").ok());
  client_->CallRaw(Tmp1(), kTmfEnd, EncodeTransidPayload(Transid::Unpack(t)), t);
  for (int i = 0; i < 1000 &&
                  node1_->storage().monitor_trail.Lookup(Transid::Unpack(t)) != 1;
       ++i) {
    sim_.RunFor(Micros(500));
  }
  EXPECT_EQ(node1_->storage().monitor_trail.Lookup(Transid::Unpack(t)), 1);

  auto* vol2 = node2_->storage().volumes.at("$DATA2").get();
  auto* trail2 = node2_->storage().trails.at("$DATA2.AT").get();
  Bytes archive = Bytes();
  {
    // Archive node 2 from before the transaction: rebuild everything.
    storage::Volume empty("$DATA2");
    storage::FileOptions opt;
    opt.audited = true;
    empty.CreateFile("stock", storage::FileOrganization::kKeySequenced, opt);
    archive = empty.Archive();
  }
  deploy_.CrashNode(2);
  sim_.RunFor(Millis(100));
  deploy_.RestartNode(2);
  // Keep node 2 cut off while it recovers: rollforward must resolve the
  // in-"ending" transaction by negotiation, not by receiving the home
  // node's (still queued) phase-2 message first.
  deploy_.cluster().CutLink(1, 2);
  sim_.RunFor(Millis(100));

  // Negotiation: consult node 1's Monitor Audit Trail.
  size_t negotiations = 0;
  RollforwardInput input;
  input.volume = vol2;
  input.archive = &archive;
  input.trail = trail2;
  input.archive_lsn = 0;
  input.monitor_trail = &node2_->storage().monitor_trail;
  input.resolve_remote = [&](const Transid& transid) {
    ++negotiations;
    int r = node1_->storage().monitor_trail.Lookup(transid);
    if (r == 1) return Disposition::kCommitted;
    if (r == 0) return Disposition::kAborted;
    return Disposition::kUnknown;
  };
  auto report = Rollforward(input);
  ASSERT_TRUE(report.ok());
  // Node 2 never wrote its own commit record (phase 2 didn't arrive), so
  // the disposition had to be negotiated.
  EXPECT_GE(negotiations, 1u);
  EXPECT_EQ(report->txns_committed, 1u);
  EXPECT_EQ(DiscValue(node2_, "$DATA2", "stock", "s1"), "55");
}

}  // namespace
}  // namespace encompass::tmf
