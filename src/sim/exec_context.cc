#include "sim/exec_context.h"

namespace encompass::sim::internal {

namespace {
thread_local ExecContext* g_exec = nullptr;
}  // namespace

ExecContext* Exec() { return g_exec; }
void SetExec(ExecContext* ctx) { g_exec = ctx; }

}  // namespace encompass::sim::internal
