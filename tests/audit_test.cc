// Tests for audit records, audit trails (force/volatility/purge), the
// Monitor Audit Trail, and group commit in the AUDITPROCESS.

#include <gtest/gtest.h>

#include "audit/audit_process.h"
#include "audit/audit_record.h"
#include "audit/audit_trail.h"
#include "os/cluster.h"
#include "os/process_pair.h"
#include "test_util.h"

namespace encompass::audit {
namespace {

using testutil::TestClient;

AuditRecord MakeRecord(uint64_t seq, const std::string& key) {
  AuditRecord rec;
  rec.transid = Transid{1, 0, seq};
  rec.volume = "$DATA1";
  rec.file = "acct";
  rec.op = storage::MutationOp::kUpdate;
  rec.key = ToBytes(key);
  rec.before = ToBytes("old");
  rec.after = ToBytes("new");
  return rec;
}

TEST(AuditRecordTest, EncodeDecodeRoundTrip) {
  AuditRecord rec = MakeRecord(42, "acct-7");
  rec.lsn = 99;
  Bytes encoded = rec.Encode();
  Slice in(encoded);
  auto decoded = AuditRecord::Decode(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(decoded->transid, rec.transid);
  EXPECT_EQ(decoded->volume, "$DATA1");
  EXPECT_EQ(decoded->file, "acct");
  EXPECT_EQ(decoded->op, storage::MutationOp::kUpdate);
  EXPECT_EQ(decoded->key, rec.key);
  EXPECT_EQ(decoded->before, rec.before);
  EXPECT_EQ(decoded->after, rec.after);
  EXPECT_EQ(decoded->lsn, 99u);
}

TEST(AuditRecordTest, DecodeRejectsTruncation) {
  Bytes encoded = MakeRecord(1, "k").Encode();
  encoded.resize(encoded.size() / 2);
  Slice in(encoded);
  EXPECT_FALSE(AuditRecord::Decode(&in).ok());
}

TEST(CompletionRecordTest, RoundTrip) {
  CompletionRecord rec{Transid{3, 2, 17}, Completion::kAborted};
  Bytes encoded = rec.Encode();
  Slice in(encoded);
  auto decoded = CompletionRecord::Decode(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->transid, rec.transid);
  EXPECT_EQ(decoded->completion, Completion::kAborted);
}

TEST(AuditBatchTest, RoundTripAndCorruption) {
  std::vector<AuditRecord> batch{MakeRecord(1, "a"), MakeRecord(2, "b")};
  Bytes encoded = EncodeAuditBatch(batch);
  auto decoded = DecodeAuditBatch(Slice(encoded));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[1].transid.seq, 2u);
  encoded.resize(3);
  EXPECT_FALSE(DecodeAuditBatch(Slice(encoded)).ok());
}

TEST(AuditTrailTest, AppendAssignsMonotoneLsns) {
  AuditTrail trail("AT1");
  EXPECT_EQ(trail.Append(MakeRecord(1, "a")), 1u);
  EXPECT_EQ(trail.Append(MakeRecord(1, "b")), 2u);
  EXPECT_EQ(trail.Append(MakeRecord(2, "c")), 3u);
  EXPECT_EQ(trail.record_count(), 3u);
  EXPECT_EQ(trail.next_lsn(), 4u);
}

TEST(AuditTrailTest, ForceMovesDurableBoundary) {
  AuditTrail trail("AT1");
  trail.Append(MakeRecord(1, "a"));
  trail.Append(MakeRecord(1, "b"));
  EXPECT_EQ(trail.durable_lsn(), 0u);
  EXPECT_EQ(trail.Force(), 2u);
  EXPECT_EQ(trail.durable_lsn(), 2u);
  EXPECT_EQ(trail.Force(), 0u);  // nothing new
}

TEST(AuditTrailTest, DropVolatileLosesUnforcedSuffix) {
  AuditTrail trail("AT1");
  trail.Append(MakeRecord(1, "a"));
  trail.Force();
  trail.Append(MakeRecord(1, "b"));
  trail.Append(MakeRecord(1, "c"));
  trail.DropVolatile();
  EXPECT_EQ(trail.record_count(), 1u);
  EXPECT_EQ(trail.next_lsn(), 2u);
  // New appends continue from the durable boundary.
  EXPECT_EQ(trail.Append(MakeRecord(1, "d")), 2u);
}

TEST(AuditTrailTest, RecordsForTransactionFiltersByTransid) {
  AuditTrail trail("AT1");
  trail.Append(MakeRecord(1, "a"));
  trail.Append(MakeRecord(2, "b"));
  trail.Append(MakeRecord(1, "c"));
  auto recs = trail.RecordsForTransaction(Transid{1, 0, 1});
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(ToString(recs[0].key), "a");
  EXPECT_EQ(ToString(recs[1].key), "c");
}

TEST(AuditTrailTest, DurableRecordsAfterScansForwardOnly) {
  AuditTrail trail("AT1");
  for (int i = 0; i < 5; ++i) trail.Append(MakeRecord(1, std::to_string(i)));
  trail.Force();
  trail.Append(MakeRecord(1, "volatile"));
  auto recs = trail.DurableRecordsAfter(2);
  ASSERT_EQ(recs.size(), 3u);  // lsns 3,4,5; the unforced 6th is excluded
  EXPECT_EQ(recs[0].lsn, 3u);
  EXPECT_EQ(recs[2].lsn, 5u);
}

TEST(AuditTrailTest, FileRolloverAndPurge) {
  AuditTrailConfig cfg;
  cfg.records_per_file = 10;
  AuditTrail trail("AT1", cfg);
  for (int i = 0; i < 35; ++i) trail.Append(MakeRecord(1, std::to_string(i)));
  EXPECT_EQ(trail.file_count(), 4u);
  trail.Force();
  // Purge everything up to LSN 25: the first two full files (1-10, 11-20) go.
  size_t purged = trail.Purge(25);
  EXPECT_EQ(purged, 2u);
  EXPECT_EQ(trail.file_count(), 2u);
  EXPECT_EQ(trail.first_file_number(), 3u);
  // Remaining records still scannable.
  EXPECT_EQ(trail.DurableRecordsAfter(0).size(), 15u);
}

TEST(AuditTrailTest, PurgeKeepsUnforcedFiles) {
  AuditTrailConfig cfg;
  cfg.records_per_file = 5;
  AuditTrail trail("AT1", cfg);
  for (int i = 0; i < 12; ++i) trail.Append(MakeRecord(1, std::to_string(i)));
  // Nothing forced: nothing purgeable.
  EXPECT_EQ(trail.Purge(100), 0u);
}

TEST(MonitorAuditTrailTest, CommitAndAbortLookup) {
  MonitorAuditTrail mat;
  EXPECT_EQ(mat.Lookup(Transid{1, 0, 1}), -1);
  mat.AppendForced(CompletionRecord{Transid{1, 0, 1}, Completion::kCommitted});
  mat.AppendForced(CompletionRecord{Transid{1, 0, 2}, Completion::kAborted});
  EXPECT_EQ(mat.Lookup(Transid{1, 0, 1}), 1);
  EXPECT_EQ(mat.Lookup(Transid{1, 0, 2}), 0);
  EXPECT_EQ(mat.Lookup(Transid{1, 0, 3}), -1);
  EXPECT_EQ(mat.size(), 2u);
}

TEST(MonitorAuditTrailTest, FirstCompletionWinsOverDuplicates) {
  MonitorAuditTrail mat;
  // Idempotent re-commits (phase-2 retries, takeover replays) append
  // duplicate records; the disposition answered must never change.
  mat.AppendForced(CompletionRecord{Transid{1, 0, 5}, Completion::kCommitted});
  mat.AppendForced(CompletionRecord{Transid{1, 0, 5}, Completion::kCommitted});
  EXPECT_EQ(mat.Lookup(Transid{1, 0, 5}), 1);
  EXPECT_EQ(mat.size(), 2u);  // the log keeps both, the index keeps one
}

// -- AUDITPROCESS group commit ----------------------------------------------

class AuditGroupCommitTest : public ::testing::Test {
 protected:
  void Start(SimDuration window) {
    sim_ = std::make_unique<sim::Simulation>(11);
    cluster_ = std::make_unique<os::Cluster>(sim_.get());
    node_ = cluster_->AddNode(1);
    AuditProcessConfig acfg;
    acfg.trail = &trail_;
    acfg.group_commit_window = window;
    os::SpawnPair<AuditProcess>(node_, "$AUDIT", 0, 1, acfg);
    client_ = node_->Spawn<TestClient>(2);
    sim_->Run();
  }

  net::Address Audit() { return net::Address(1, "$AUDIT"); }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<os::Cluster> cluster_;
  os::Node* node_ = nullptr;
  AuditTrail trail_{"AT1"};
  TestClient* client_ = nullptr;
};

TEST_F(AuditGroupCommitTest, ConcurrentForcesCoalesce) {
  Start(/*window=*/0);
  // Four force requests in flight together: the first starts a physical
  // write; the other three arrive while it is in flight and share the next
  // one. Two writes total, batch sizes exactly {1, 3}.
  auto* a = client_->CallRaw(Audit(), kAuditForce, {});
  auto* b = client_->CallRaw(Audit(), kAuditForce, {});
  auto* c = client_->CallRaw(Audit(), kAuditForce, {});
  auto* d = client_->CallRaw(Audit(), kAuditForce, {});
  sim_->Run();
  for (auto* out : {a, b, c, d}) {
    ASSERT_TRUE(out->done);
    EXPECT_TRUE(out->status.ok());
  }
  EXPECT_EQ(sim_->GetStats().Counter("audit.forces"), 2);
  const auto* sizes = sim_->GetStats().FindHistogram("audit.group_commit_size");
  ASSERT_NE(sizes, nullptr);
  EXPECT_EQ(sizes->count(), 2u);
  EXPECT_EQ(sizes->Sum(), 4);
  EXPECT_EQ(sizes->Min(), 1);
  EXPECT_EQ(sizes->Max(), 3);
}

TEST_F(AuditGroupCommitTest, BatchingWindowMergesIntoOneWrite) {
  Start(Millis(1));
  // With a batching window longer than the arrival spread, all four forces
  // land in one physical write.
  auto* a = client_->CallRaw(Audit(), kAuditForce, {});
  auto* b = client_->CallRaw(Audit(), kAuditForce, {});
  auto* c = client_->CallRaw(Audit(), kAuditForce, {});
  auto* d = client_->CallRaw(Audit(), kAuditForce, {});
  sim_->Run();
  for (auto* out : {a, b, c, d}) {
    ASSERT_TRUE(out->done);
    EXPECT_TRUE(out->status.ok());
  }
  EXPECT_EQ(sim_->GetStats().Counter("audit.forces"), 1);
  const auto* sizes = sim_->GetStats().FindHistogram("audit.group_commit_size");
  ASSERT_NE(sizes, nullptr);
  EXPECT_EQ(sizes->count(), 1u);
  EXPECT_EQ(sizes->Max(), 4);
}

TEST_F(AuditGroupCommitTest, SequentialForcesDoNotCoalesce) {
  Start(/*window=*/0);
  // Forces separated in time keep the pre-group-commit behaviour: one
  // physical write each.
  for (int i = 0; i < 3; ++i) {
    auto* out = client_->CallRaw(Audit(), kAuditForce, {});
    sim_->Run();
    ASSERT_TRUE(out->done);
    EXPECT_TRUE(out->status.ok());
  }
  EXPECT_EQ(sim_->GetStats().Counter("audit.forces"), 3);
  const auto* sizes = sim_->GetStats().FindHistogram("audit.group_commit_size");
  ASSERT_NE(sizes, nullptr);
  EXPECT_EQ(sizes->count(), 3u);
  EXPECT_EQ(sizes->Max(), 1);
}

TEST_F(AuditGroupCommitTest, ForceCoversRecordsAppendedBeforeWriteStart) {
  Start(/*window=*/0);
  // A record appended before the physical write starts is durable once the
  // force's reply arrives, even when the force coalesced into a batch.
  trail_.Append(AuditRecord{});
  auto* a = client_->CallRaw(Audit(), kAuditForce, {});
  auto* b = client_->CallRaw(Audit(), kAuditForce, {});
  sim_->Run();
  ASSERT_TRUE(a->done && b->done);
  EXPECT_TRUE(a->status.ok());
  EXPECT_TRUE(b->status.ok());
  EXPECT_EQ(trail_.durable_lsn(), 1u);
}

}  // namespace
}  // namespace encompass::audit
