#include "discprocess/disc_process.h"

#include <cstdlib>

#include "audit/audit_process.h"
#include "common/coding.h"
#include "common/logging.h"
#include "storage/record.h"

namespace encompass::discprocess {

namespace {

// Checkpoint entry types.
constexpr uint8_t kCkptGrantEntry = 1;
constexpr uint8_t kCkptReleaseEntry = 2;
constexpr uint8_t kCkptAbortingEntry = 3;
constexpr uint8_t kCkptReplyEntry = 4;
constexpr uint8_t kCkptClearAbortingEntry = 5;
constexpr uint8_t kCkptAuditPush = 6;
constexpr uint8_t kCkptAuditPop = 7;

void PutLockKey(Bytes* out, const LockKey& key) {
  PutLengthPrefixed(out, Slice(key.file));
  PutLengthPrefixed(out, Slice(key.record));
}

bool GetLockKey(Slice* in, LockKey* key) {
  return GetLengthPrefixedString(in, &key->file) &&
         GetLengthPrefixedBytes(in, &key->record);
}

// Deterministic 32-bit FNV-1a over lock-key bytes, used to tag lock trace
// events without storing strings in the ring.
uint32_t LockHash(const std::string& file, const Bytes& record) {
  uint32_t h = 2166136261u;
  for (char c : file) h = (h ^ static_cast<uint8_t>(c)) * 16777619u;
  for (uint8_t c : record) h = (h ^ c) * 16777619u;
  return h;
}

}  // namespace

void DiscProcess::OnPairAttach() {
  sim::Stats& stats = this->stats();
  m_.ops = stats.RegisterCounter("disc.ops");
  m_.dedup_replays = stats.RegisterCounter("disc.dedup_replays");
  m_.dedup_inflight_drops = stats.RegisterCounter("disc.dedup_inflight_drops");
  m_.lock_waits = stats.RegisterCounter("disc.lock_waits");
  m_.lock_timeouts = stats.RegisterCounter("disc.lock_timeouts");
  m_.lock_releases = stats.RegisterCounter("disc.lock_releases");
  m_.lock_conflict_aborts = stats.RegisterCounter("lock.conflict_aborts");
  m_.lock_timeout_aborts = stats.RegisterCounter("lock.timeout_aborts");
  m_.lock_wait_time = stats.RegisterHistogram("lock.wait_time");
  m_.planned_batches = stats.RegisterCounter("disc.planned_batches");
  m_.planned_ops = stats.RegisterCounter("disc.planned_ops");
  m_.planned_rejects = stats.RegisterCounter("disc.planned_rejects");
  m_.scan_batches = stats.RegisterCounter("disc.scan_batches");
  m_.scan_records = stats.RegisterCounter("disc.scan_records");
  m_.undo_ops = stats.RegisterCounter("disc.undo_ops");
  m_.flush_writes = stats.RegisterCounter("disc.flush_writes");
  m_.audit_records = stats.RegisterCounter("disc.audit_records");
  m_.audit_redelivery = stats.RegisterCounter("disc.audit_redelivery");
  m_.ckpt_messages = stats.RegisterCounter("disc.ckpt_messages");
  m_.ckpt_entries = stats.RegisterCounter("disc.ckpt_entries");
  m_.op_ios = stats.RegisterHistogram("disc.op_ios");
  m_.queue_depth = stats.RegisterHistogram("disc.queue_depth");
  m_.op_latency = stats.RegisterHistogram("disc.op_latency");
}

void DiscProcess::OnRequest(const net::Message& msg) {
  if (!IsPrimary()) {
    // The backup is passive; a request landing here is a routing accident
    // during the takeover window — the sender's retry will find the primary.
    Reply(msg, Status::Unavailable("backup disc process"));
    return;
  }
  if (msg.tag == kDiscTxnStateChange) {
    HandleStateChange(msg);
    return;
  }
  if (msg.tag == kDiscListLockOwners) {
    LockOwnersReply rep;
    rep.owners = locks_.Holders();
    Reply(msg, Status::Ok(), rep.Encode());
    return;
  }

  if (msg.tag == kDiscPlannedOps) {
    // Queue-lane lane batch: same duplicate suppression as the lock path
    // (the planner's Call retries reuse the request id, and after takeover
    // the mirrored reply cache answers retried batches without re-applying
    // their mutations).
    RequestKey rk{msg.src, msg.request_id};
    if (msg.request_id != 0) {
      auto cached = reply_cache_.find(rk);
      if (cached != reply_cache_.end()) {
        stats().Incr(m_.dedup_replays);
        SendReply(msg.src, cached->second.tag, msg.request_id,
                  Status(cached->second.status, cached->second.message),
                  *cached->second.payload);
        return;
      }
      if (in_flight_.count(rk)) {
        stats().Incr(m_.dedup_inflight_drops);
        return;
      }
      in_flight_.insert(rk);
    }
    HandlePlannedBatch(msg);
    return;
  }

  auto req = DiscRequest::Decode(Slice(msg.payload));
  if (!req.ok()) {
    Reply(msg, req.status());
    return;
  }

  // Duplicate suppression: answered requests are replayed from the cache;
  // requests still being processed (e.g. parked on a lock) are dropped —
  // the eventual reply answers the retry too (same request id).
  RequestKey rk{msg.src, msg.request_id};
  if (msg.request_id != 0) {
    auto cached = reply_cache_.find(rk);
    if (cached != reply_cache_.end()) {
      stats().Incr(m_.dedup_replays);
      SendReply(msg.src, cached->second.tag, msg.request_id,
                Status(cached->second.status, cached->second.message),
                *cached->second.payload);
      return;
    }
    if (in_flight_.count(rk)) {
      stats().Incr(m_.dedup_inflight_drops);
      return;
    }
    in_flight_.insert(rk);
  }
  HandleOperation(msg, *req);
}

void DiscProcess::HandleOperation(const net::Message& msg, const DiscRequest& req) {
  stats().Incr(m_.ops);
  const Transid transid = Transid::Unpack(msg.transid);

  // Work for a transaction that has begun aborting is rejected — its effects
  // would be backed out anyway. Backout's own undo ops are exempt. Work for
  // an already *resolved* transaction (a zombie retransmission delivered
  // after commit/backout completed) is likewise rejected: granting it locks
  // would leak them forever.
  if (transid.valid() && msg.tag != kDiscUndo &&
      (aborting_.count(transid) || IsResolved(transid))) {
    stats().Incr(m_.lock_conflict_aborts);
    FinishWithReply(msg, Status::Aborted("transaction is aborting or resolved"),
                    {}, 0, nullptr);
    return;
  }

  // Audited files may only be modified under a transaction.
  const bool is_mutation = msg.tag == kDiscInsert || msg.tag == kDiscUpdate ||
                           msg.tag == kDiscDelete;
  if (is_mutation) {
    storage::StructuredFile* file = config_.volume->Find(req.file);
    if (file != nullptr && file->audited() && !transid.valid()) {
      FinishWithReply(msg,
                      Status::InvalidArgument(
                          "audited file requires a transaction: " + req.file),
                      {}, 0, nullptr);
      return;
    }
  }

  // Locking. Updates and deletes must hold the record lock ("TMF ensures
  // that all records updated or deleted ... have been previously locked");
  // if the application did not lock at read time the lock is acquired here.
  // Reads lock only on explicit request. Inserts auto-lock the new key
  // (known keys only; entry-sequenced appends lock after assignment).
  if (transid.valid()) {
    switch (msg.tag) {
      case kDiscRead:
        if (req.lock &&
            !EnsureLock(msg, req, transid, LockKey{req.file, req.key})) {
          return;
        }
        break;
      case kDiscUpdate:
      case kDiscDelete:
        if (!EnsureLock(msg, req, transid, LockKey{req.file, req.key})) return;
        break;
      case kDiscInsert:
        if (!req.key.empty() &&
            !EnsureLock(msg, req, transid, LockKey{req.file, req.key})) {
          return;
        }
        break;
      case kDiscLockFile:
        if (!EnsureLock(msg, req, transid, LockKey{req.file, {}})) return;
        break;
      default:
        break;
    }
  } else if (msg.tag == kDiscLockFile || (msg.tag == kDiscRead && req.lock)) {
    FinishWithReply(msg, Status::InvalidArgument("locking requires a transaction"),
                    {}, 0, nullptr);
    return;
  }

  Execute(msg, req);
}

bool DiscProcess::EnsureLock(const net::Message& msg, const DiscRequest& req,
                             const Transid& owner, LockKey key) {
  if (locks_.Holds(owner, key)) return true;
  auto result = locks_.Acquire(owner, key);
  if (result == LockManager::AcquireResult::kGranted) {
    Trace(sim::TraceEventKind::kLockAcquire, owner.Pack(),
          LockHash(key.file, key.record));
    CheckpointBatch batch;
    CkptGrant(&batch, owner, key);
    FlushCheckpoint(&batch);
    return true;
  }
  stats().Incr(m_.lock_waits);
  SimDuration timeout =
      req.lock_timeout > 0 ? req.lock_timeout : config_.default_lock_timeout;
  ParkRequest(msg, owner, std::move(key), timeout);
  return false;
}

void DiscProcess::ParkRequest(const net::Message& msg, const Transid& owner,
                              LockKey key, SimDuration timeout) {
  parked_.push_back(ParkedOp{msg, owner, std::move(key), 0, sim()->Now()});
  auto it = std::prev(parked_.end());
  it->timer = SetTimer(timeout, [this, it]() {
    // Deadlock detection is by timeout: abandon the wait and tell the
    // requester, which typically triggers RESTART-TRANSACTION upstream.
    stats().Incr(m_.lock_timeouts);
    stats().Incr(m_.lock_timeout_aborts);
    stats().Record(m_.lock_wait_time, sim()->Now() - it->parked_at);
    locks_.CancelWait(it->owner, it->key);
    net::Message msg = std::move(it->msg);
    std::string file = it->key.file;
    parked_.erase(it);
    FinishWithReply(msg, Status::Timeout("lock wait timeout: " + file), {}, 0,
                    nullptr);
  });
}

void DiscProcess::ResumeGranted(const std::vector<LockGrant>& grants) {
  for (const auto& grant : grants) {
    for (auto it = parked_.begin(); it != parked_.end(); ++it) {
      if (it->owner == grant.owner && it->key == grant.key) {
        CancelTimer(it->timer);
        stats().Record(m_.lock_wait_time, sim()->Now() - it->parked_at);
        net::Message msg = std::move(it->msg);
        parked_.erase(it);
        Trace(sim::TraceEventKind::kLockAcquire, grant.owner.Pack(),
              LockHash(grant.key.file, grant.key.record));
        CheckpointBatch batch;
        CkptGrant(&batch, grant.owner, grant.key);
        FlushCheckpoint(&batch);
        auto req = DiscRequest::Decode(Slice(msg.payload));
        if (req.ok()) Execute(msg, *req);
        break;
      }
    }
  }
}

void DiscProcess::Execute(const net::Message& msg, const DiscRequest& req) {
  const Transid transid = Transid::Unpack(msg.transid);
  storage::Volume* vol = config_.volume;
  CheckpointBatch batch;

  switch (msg.tag) {
    case kDiscRead: {
      auto r = vol->ReadRecord(req.file, Slice(req.key));
      // A locked read of a missing record keeps the key lock (protects the
      // key for a subsequent insert) and reports NotFound.
      FinishWithReply(msg, r.status, std::move(r.value), r.disc_ios, &batch);
      return;
    }
    case kDiscSeek: {
      auto r = vol->SeekRecord(req.file, Slice(req.key), req.inclusive);
      SeekReply rep;
      rep.key = std::move(r.key);
      rep.value = std::move(r.value);
      FinishWithReply(msg, r.status, rep.Encode(), r.disc_ios, &batch);
      return;
    }
    case kDiscScan: {
      // Batched browse read: up to max_records from the given position, in
      // key order, without locking (the paper's unlocked-read mode).
      uint32_t limit = req.max_records == 0 ? 64 : req.max_records;
      if (limit > 1024) limit = 1024;
      ScanReply rep;
      int total_ios = 0;
      Bytes pos = req.key;
      bool inclusive = req.inclusive;
      while (rep.entries.size() < limit) {
        auto r = vol->SeekRecord(req.file, Slice(pos), inclusive);
        if (r.status.IsEndOfFile()) {
          rep.at_end = true;
          break;
        }
        if (!r.status.ok()) {
          FinishWithReply(msg, r.status, {}, total_ios, &batch);
          return;
        }
        total_ios += r.disc_ios;
        pos = r.key;
        inclusive = false;
        SeekReply entry;
        entry.key = std::move(r.key);
        entry.value = std::move(r.value);
        rep.entries.push_back(std::move(entry));
      }
      stats().Incr(m_.scan_batches);
      stats().Incr(m_.scan_records,
                             static_cast<int64_t>(rep.entries.size()));
      // Sequential access: charge one physical read per distinct block-sized
      // group instead of per record (sequential reads amortize).
      int charged = total_ios > 0 ? 1 + static_cast<int>(rep.entries.size() / 16)
                                  : 0;
      FinishWithReply(msg, Status::Ok(), rep.Encode(), charged, &batch);
      return;
    }
    case kDiscReadAlt: {
      auto r = vol->ReadAlternate(req.file, req.field, req.value);
      FinishWithReply(msg, r.status, std::move(r.value), r.disc_ios, &batch);
      return;
    }
    case kDiscLockFile: {
      FinishWithReply(msg, Status::Ok(), {}, 0, &batch);
      return;
    }
    case kDiscInsert: {
      auto r = vol->Mutate(req.file, storage::MutationOp::kInsert, Slice(req.key),
                           Slice(req.record));
      if (r.status.ok()) {
        if (transid.valid() && req.key.empty()) {
          // Entry-sequenced append: lock the assigned key now. The key is
          // fresh, so the grant cannot conflict.
          locks_.ForceGrant(transid, LockKey{req.file, r.key});
          CkptGrant(&batch, transid, LockKey{req.file, r.key});
        }
        EmitAudit(transid, storage::MutationOp::kInsert, Slice(r.key), r,
                  Slice(req.record), req.file);
      }
      Bytes assigned = r.key;
      FinishWithReply(msg, r.status, std::move(assigned), r.disc_ios, &batch);
      return;
    }
    case kDiscUpdate: {
      auto r = vol->Mutate(req.file, storage::MutationOp::kUpdate, Slice(req.key),
                           Slice(req.record));
      if (r.status.ok()) {
        EmitAudit(transid, storage::MutationOp::kUpdate, Slice(req.key), r,
                  Slice(req.record), req.file);
      }
      FinishWithReply(msg, r.status, {}, r.disc_ios, &batch);
      return;
    }
    case kDiscDelete: {
      auto r = vol->Mutate(req.file, storage::MutationOp::kDelete, Slice(req.key),
                           Slice());
      if (r.status.ok()) {
        EmitAudit(transid, storage::MutationOp::kDelete, Slice(req.key), r,
                  Slice(), req.file);
      }
      FinishWithReply(msg, r.status, {}, r.disc_ios, &batch);
      return;
    }
    case kDiscUndo: {
      auto r = vol->ApplyUndo(req.file, req.undo_op, Slice(req.key),
                              Slice(req.record));
      stats().Incr(m_.undo_ops);
      FinishWithReply(msg, r.status, {}, r.disc_ios, &batch);
      return;
    }
    case kDiscFlushVolume: {
      int writes = vol->Flush();
      stats().Incr(m_.flush_writes, writes);
      FinishWithReply(msg, Status::Ok(), {}, writes > 0 ? 1 : 0, &batch);
      return;
    }
    default:
      FinishWithReply(msg, Status::InvalidArgument("unknown disc tag"), {}, 0,
                      &batch);
  }
}

void DiscProcess::HandlePlannedBatch(const net::Message& msg) {
  auto batch = PlannedBatch::Decode(Slice(msg.payload));
  if (!batch.ok()) {
    if (msg.request_id != 0) in_flight_.erase(RequestKey{msg.src, msg.request_id});
    Reply(msg, batch.status());
    return;
  }
  stats().Incr(m_.planned_batches);
  stats().Incr(m_.planned_ops, static_cast<int64_t>(batch->ops.size()));

  PlannedBatchReply rep;
  rep.results.reserve(batch->ops.size());
  int total_ios = 0;
  for (const PlannedOp& op : batch->ops) {
    rep.results.push_back(ExecutePlannedOp(op, &total_ios));
  }
  CheckpointBatch ckpt;
  FinishWithReply(msg, Status::Ok(), rep.Encode(), total_ios, &ckpt);
}

PlannedBatchReply::OpResult DiscProcess::ExecutePlannedOp(const PlannedOp& op,
                                                          int* disc_ios) {
  PlannedBatchReply::OpResult out;
  if (!op.transid.valid()) {
    out.status = Status::Code::kInvalidArgument;
    return out;
  }
  // A transaction already aborting or resolved (the planner lost it, or the
  // TMP auto-aborted a stalled one) must not touch the volume again: plan
  // order protects live transactions only.
  if (aborting_.count(op.transid) || IsResolved(op.transid)) {
    stats().Incr(m_.planned_rejects);
    out.status = Status::Code::kAborted;
    return out;
  }

  storage::Volume* vol = config_.volume;
  switch (op.kind) {
    case PlannedOp::Kind::kRead: {
      auto r = vol->ReadRecord(op.file, Slice(op.key));
      *disc_ios += r.disc_ios;
      out.status = r.status.code();
      out.value = std::move(r.value);
      return out;
    }
    case PlannedOp::Kind::kInsert: {
      auto r = vol->Mutate(op.file, storage::MutationOp::kInsert, Slice(op.key),
                           Slice(op.record));
      *disc_ios += r.disc_ios;
      out.status = r.status.code();
      if (r.status.ok()) {
        EmitAudit(op.transid, storage::MutationOp::kInsert, Slice(r.key), r,
                  Slice(op.record), op.file);
        out.value = r.key;  // entry-sequenced files: the assigned key
      }
      return out;
    }
    case PlannedOp::Kind::kUpdate: {
      auto r = vol->Mutate(op.file, storage::MutationOp::kUpdate, Slice(op.key),
                           Slice(op.record));
      *disc_ios += r.disc_ios;
      out.status = r.status.code();
      if (r.status.ok()) {
        EmitAudit(op.transid, storage::MutationOp::kUpdate, Slice(op.key), r,
                  Slice(op.record), op.file);
      }
      return out;
    }
    case PlannedOp::Kind::kDelete: {
      auto r = vol->Mutate(op.file, storage::MutationOp::kDelete, Slice(op.key),
                           Slice());
      *disc_ios += r.disc_ios;
      out.status = r.status.code();
      if (r.status.ok()) {
        EmitAudit(op.transid, storage::MutationOp::kDelete, Slice(op.key), r,
                  Slice(), op.file);
      }
      return out;
    }
    case PlannedOp::Kind::kDelta: {
      // Read-modify-write resolved here, under plan order: by construction a
      // record's operations all ride one lane with a single batch in flight,
      // so this read cannot race another writer of the same record.
      auto r = vol->ReadRecord(op.file, Slice(op.key));
      *disc_ios += r.disc_ios;
      if (!r.status.ok()) {
        out.status = r.status.code();
        return out;
      }
      auto rec = storage::Record::Decode(Slice(r.value));
      if (!rec.ok()) {
        out.status = rec.status().code();
        return out;
      }
      const int64_t current = strtoll(rec->Get(op.field).c_str(), nullptr, 10);
      rec->Set(op.field, std::to_string(current + op.delta));
      Bytes image = rec->Encode();
      auto m = vol->Mutate(op.file, storage::MutationOp::kUpdate, Slice(op.key),
                           Slice(image));
      *disc_ios += m.disc_ios;
      out.status = m.status.code();
      if (m.status.ok()) {
        EmitAudit(op.transid, storage::MutationOp::kUpdate, Slice(op.key), m,
                  Slice(image), op.file);
        out.value = std::move(image);
      }
      return out;
    }
  }
  out.status = Status::Code::kInvalidArgument;
  return out;
}

void DiscProcess::EmitAudit(const Transid& transid, storage::MutationOp op,
                            const Slice& key, const storage::OpResult& result,
                            const Slice& after, const std::string& file) {
  if (!transid.valid() || config_.audit_process.empty()) return;
  storage::StructuredFile* f = config_.volume->Find(file);
  if (f == nullptr || !f->audited()) return;
  audit::AuditRecord rec;
  rec.transid = transid;
  rec.volume = config_.volume->name();
  rec.file = file;
  rec.op = op;
  rec.key = key.ToBytes();
  rec.before = result.before;
  rec.after = after.ToBytes();
  stats().Incr(m_.audit_records);
  // Unforced (the trail is forced by TMF at phase one of commit) but
  // *reliable and ordered*: the record joins a checkpointed FIFO that is
  // delivered to the AUDITPROCESS with acknowledgement and retry — a lost
  // before-image would make a later backout silently incomplete.
  Bytes encoded = rec.Encode();
  if (HasBackup()) {
    CheckpointBatch batch;
    CkptAuditPushEntry(&batch, encoded);
    FlushCheckpoint(&batch);
  }
  audit_queue_.push_back(std::move(encoded));
  PumpAuditQueue();
}

void DiscProcess::PumpAuditQueue() {
  if (audit_in_flight_ || audit_queue_.empty() || !IsPrimary()) return;
  audit_in_flight_ = true;
  Slice head(audit_queue_.front());
  auto rec = audit::AuditRecord::Decode(&head);
  if (!rec.ok()) {  // cannot happen; drop defensively
    audit_queue_.pop_front();
    audit_in_flight_ = false;
    PumpAuditQueue();
    return;
  }
  os::CallOptions opt;
  opt.timeout = Millis(500);
  opt.retries = 4;
  Call(net::Address(node()->id(), config_.audit_process), audit::kAuditAppend,
       audit::EncodeAuditBatch({*rec}),
       [this](const Status& s, const net::Message&) {
         audit_in_flight_ = false;
         if (s.ok()) {
           audit_queue_.pop_front();
           if (HasBackup()) {
             CheckpointBatch batch;
             CkptAuditPopEntry(&batch);
             FlushCheckpoint(&batch);
           }
           PumpAuditQueue();
         } else {
           // The audit pair is mid-takeover; keep the record and retry.
           stats().Incr(m_.audit_redelivery);
           SetTimer(Millis(100), [this]() { PumpAuditQueue(); });
         }
       },
       opt);
}

void DiscProcess::HandleStateChange(const net::Message& msg) {
  auto change = TxnStateChange::Decode(Slice(msg.payload));
  if (!change.ok()) {
    if (msg.request_id != 0) Reply(msg, change.status());
    return;
  }
  CheckpointBatch batch;
  switch (change->state) {
    case DiscTxnState::kAborting:
      aborting_.insert(change->transid);
      CkptAborting(&batch, change->transid);
      break;
    case DiscTxnState::kEnded:
    case DiscTxnState::kAborted: {
      // Phase two (or backout completion): release the transaction's locks
      // and resume any waiters they unblock.
      aborting_.erase(change->transid);
      MarkResolved(change->transid);
      auto grants = locks_.ReleaseAll(change->transid);
      Trace(sim::TraceEventKind::kLockRelease, change->transid.Pack(),
            static_cast<uint32_t>(grants.size()));
      CkptRelease(&batch, change->transid);
      FlushCheckpoint(&batch);
      stats().Incr(m_.lock_releases);
      ResumeGranted(grants);
      if (msg.request_id != 0) Reply(msg, Status::Ok());
      return;
    }
  }
  FlushCheckpoint(&batch);
  if (msg.request_id != 0) Reply(msg, Status::Ok());
}

void DiscProcess::FinishWithReply(const net::Message& msg, const Status& status,
                                  Bytes payload, int disc_ios,
                                  CheckpointBatch* batch) {
  RequestKey rk{msg.src, msg.request_id};
  CheckpointBatch local;
  if (batch == nullptr) batch = &local;

  // One shared copy of the payload serves the reply cache, the checkpoint
  // encoding, and the delayed reply.
  auto shared = std::make_shared<const Bytes>(std::move(payload));
  if (msg.request_id != 0) {
    CacheReply(rk, msg.tag, status, shared);
    CkptReply(batch, rk, msg.tag, status.code(), status.message(), *shared);
    in_flight_.erase(rk);
  }
  FlushCheckpoint(batch);

  stats().Record(m_.op_ios, disc_ios);
  SimDuration latency;
  if (config_.overlap_mirror_reads && disc_ios > 0) {
    // Charge from the drive model: reads take the mirror that frees first
    // (read-either), volume flushes occupy both drives (write-both).
    const SimTime now = sim()->Now();
    const SimDuration service = disc_ios * config_.io_latency;
    storage::DriveSchedule sched = (msg.tag == kDiscFlushVolume)
                                       ? config_.volume->ScheduleWrite(now, service)
                                       : config_.volume->ScheduleRead(now, service);
    stats().Record(m_.queue_depth, sched.queue_depth);
    latency = config_.base_latency + (sched.complete - now);
  } else {
    latency = config_.base_latency + disc_ios * config_.io_latency;
  }
  stats().Record(m_.op_latency, latency);
  net::ProcessId requester = msg.src;
  uint64_t reply_to = msg.request_id;
  uint32_t tag = msg.tag;
  if (reply_to == 0) return;
  SetTimer(latency, [this, requester, tag, reply_to, status,
                     shared = std::move(shared)]() {
    SendReply(requester, tag, reply_to, status, *shared);
  });
}

void DiscProcess::MarkResolved(const Transid& transid) {
  if (resolved_.insert(transid.Pack()).second) {
    resolved_order_.push_back(transid.Pack());
    while (resolved_order_.size() > 8192) {
      resolved_.erase(resolved_order_.front());
      resolved_order_.pop_front();
    }
  }
}

void DiscProcess::CacheReply(const RequestKey& rk, uint32_t tag,
                             const Status& status,
                             std::shared_ptr<const Bytes> payload) {
  if (reply_cache_.count(rk)) return;
  reply_cache_[rk] =
      CachedReply{tag, status.code(), status.message(), std::move(payload)};
  reply_cache_order_.push_back(rk);
  while (reply_cache_order_.size() > config_.reply_cache_capacity) {
    reply_cache_.erase(reply_cache_order_.front());
    reply_cache_order_.pop_front();
  }
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

void DiscProcess::CkptGrant(CheckpointBatch* batch, const Transid& owner,
                            const LockKey& key) {
  PutFixed8(&batch->delta, kCkptGrantEntry);
  PutFixed64(&batch->delta, owner.Pack());
  PutLockKey(&batch->delta, key);
  ++batch->entries;
}

void DiscProcess::CkptRelease(CheckpointBatch* batch, const Transid& owner) {
  PutFixed8(&batch->delta, kCkptReleaseEntry);
  PutFixed64(&batch->delta, owner.Pack());
  ++batch->entries;
}

void DiscProcess::CkptAborting(CheckpointBatch* batch, const Transid& owner) {
  PutFixed8(&batch->delta, kCkptAbortingEntry);
  PutFixed64(&batch->delta, owner.Pack());
  ++batch->entries;
}

void DiscProcess::CkptReply(CheckpointBatch* batch, const RequestKey& rk,
                            uint32_t tag, Status::Code status,
                            const std::string& message, const Bytes& payload) {
  PutFixed8(&batch->delta, kCkptReplyEntry);
  PutFixed16(&batch->delta, rk.first.node);
  PutFixed32(&batch->delta, rk.first.pid);
  PutFixed64(&batch->delta, rk.second);
  PutFixed32(&batch->delta, tag);
  PutFixed8(&batch->delta, static_cast<uint8_t>(status));
  PutLengthPrefixed(&batch->delta, Slice(message));
  PutLengthPrefixed(&batch->delta, Slice(payload));
  ++batch->entries;
}

void DiscProcess::CkptAuditPushEntry(CheckpointBatch* batch,
                                     const Bytes& encoded) {
  PutFixed8(&batch->delta, kCkptAuditPush);
  PutLengthPrefixed(&batch->delta, Slice(encoded));
  ++batch->entries;
}

void DiscProcess::CkptAuditPopEntry(CheckpointBatch* batch) {
  PutFixed8(&batch->delta, kCkptAuditPop);
  ++batch->entries;
}

void DiscProcess::FlushCheckpoint(CheckpointBatch* batch) {
  if (batch->entries == 0 || !HasBackup()) {
    batch->delta.clear();
    batch->entries = 0;
    return;
  }
  stats().Incr(m_.ckpt_entries, batch->entries);
  if (config_.ckpt_coalesce_window <= 0) {
    stats().Incr(m_.ckpt_messages);
    SendCheckpoint(std::move(batch->delta));
    batch->delta.clear();
    batch->entries = 0;
    return;
  }
  // Coalesce: append to the pending buffer; one message carries everything
  // accumulated when the window closes. Entry order across operations is
  // preserved, so the backup applies exactly the per-op sequence.
  pending_ckpt_.delta.insert(pending_ckpt_.delta.end(), batch->delta.begin(),
                             batch->delta.end());
  pending_ckpt_.entries += batch->entries;
  batch->delta.clear();
  batch->entries = 0;
  if (!ckpt_timer_armed_) {
    ckpt_timer_armed_ = true;
    ckpt_timer_ = SetTimer(config_.ckpt_coalesce_window, [this]() {
      ckpt_timer_armed_ = false;
      FlushPendingCheckpoint();
    });
  }
}

void DiscProcess::FlushPendingCheckpoint() {
  if (ckpt_timer_armed_) {
    CancelTimer(ckpt_timer_);
    ckpt_timer_armed_ = false;
  }
  if (pending_ckpt_.entries == 0) return;
  if (HasBackup()) {
    stats().Incr(m_.ckpt_messages);
    SendCheckpoint(std::move(pending_ckpt_.delta));
  }
  pending_ckpt_.delta.clear();
  pending_ckpt_.entries = 0;
}

void DiscProcess::OnCheckpoint(const Slice& delta) {
  Slice in = delta;
  while (!in.empty()) {
    uint8_t type;
    if (!GetFixed8(&in, &type)) return;
    switch (type) {
      case kCkptGrantEntry: {
        uint64_t packed;
        LockKey key;
        if (!GetFixed64(&in, &packed) || !GetLockKey(&in, &key)) return;
        locks_.ForceGrant(Transid::Unpack(packed), key);
        break;
      }
      case kCkptReleaseEntry: {
        uint64_t packed;
        if (!GetFixed64(&in, &packed)) return;
        Transid t = Transid::Unpack(packed);
        aborting_.erase(t);
        MarkResolved(t);
        locks_.ReleaseAll(t);
        break;
      }
      case kCkptAbortingEntry: {
        uint64_t packed;
        if (!GetFixed64(&in, &packed)) return;
        aborting_.insert(Transid::Unpack(packed));
        break;
      }
      case kCkptClearAbortingEntry: {
        uint64_t packed;
        if (!GetFixed64(&in, &packed)) return;
        aborting_.erase(Transid::Unpack(packed));
        break;
      }
      case kCkptReplyEntry: {
        uint16_t node;
        uint32_t pid, tag;
        uint64_t rid;
        uint8_t status;
        std::string message;
        Bytes payload;
        if (!GetFixed16(&in, &node) || !GetFixed32(&in, &pid) ||
            !GetFixed64(&in, &rid) || !GetFixed32(&in, &tag) ||
            !GetFixed8(&in, &status) ||
            !GetLengthPrefixedString(&in, &message) ||
            !GetLengthPrefixedBytes(&in, &payload)) {
          return;
        }
        CacheReply(RequestKey{net::ProcessId{node, pid}, rid}, tag,
                   Status(static_cast<Status::Code>(status), std::move(message)),
                   std::make_shared<const Bytes>(std::move(payload)));
        break;
      }
      case kCkptAuditPush: {
        Bytes encoded;
        if (!GetLengthPrefixedBytes(&in, &encoded)) return;
        audit_queue_.push_back(std::move(encoded));
        break;
      }
      case kCkptAuditPop: {
        if (!audit_queue_.empty()) audit_queue_.pop_front();
        break;
      }
      default:
        return;  // unknown entry: stop parsing this delta
    }
  }
}

void DiscProcess::OnTakeover() {
  // Deliver any audit records the old primary had not yet gotten
  // acknowledged (redelivery is safe: backout and rollforward tolerate
  // duplicate images).
  audit_in_flight_ = false;
  PumpAuditQueue();
}

void DiscProcess::OnBackupAttached() {
  // Deltas coalesced for a previous backup are superseded by this full-state
  // resynchronization; drop them rather than replaying stale entries.
  if (ckpt_timer_armed_) {
    CancelTimer(ckpt_timer_);
    ckpt_timer_armed_ = false;
  }
  pending_ckpt_.delta.clear();
  pending_ckpt_.entries = 0;

  // Full-state resynchronization: replay every held lock, the aborting set,
  // and the reply cache as one checkpoint (sent immediately — a fresh backup
  // must not sit unsynchronized for a coalescing window).
  CheckpointBatch batch;
  for (const auto& [rk, cached] : reply_cache_) {
    CkptReply(&batch, rk, cached.tag, cached.status, cached.message,
              *cached.payload);
  }
  for (const auto& t : aborting_) {
    CkptAborting(&batch, t);
  }
  for (const auto& grant : locks_.AllHeld()) {
    CkptGrant(&batch, grant.owner, grant.key);
  }
  if (batch.entries > 0 && HasBackup()) {
    stats().Incr(m_.ckpt_entries, batch.entries);
    stats().Incr(m_.ckpt_messages);
    SendCheckpoint(std::move(batch.delta));
  }
  for (const auto& encoded : audit_queue_) {
    CheckpointBatch push;
    CkptAuditPushEntry(&push, encoded);
    if (HasBackup()) {
      stats().Incr(m_.ckpt_entries, push.entries);
      stats().Incr(m_.ckpt_messages);
      SendCheckpoint(std::move(push.delta));
    }
  }
}

}  // namespace encompass::discprocess
