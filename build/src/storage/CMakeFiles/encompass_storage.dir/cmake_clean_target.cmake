file(REMOVE_RECURSE
  "libencompass_storage.a"
)
