#include "storage/partition.h"

namespace encompass::storage {

Status PartitionMap::Validate() const {
  if (entries_.empty()) return Status::InvalidArgument("no partitions");
  for (size_t i = 0; i + 1 < entries_.size(); ++i) {
    if (entries_[i].upper_bound.empty()) {
      return Status::InvalidArgument("infinite bound before last partition");
    }
    if (i > 0 && !(Slice(entries_[i - 1].upper_bound) <
                   Slice(entries_[i].upper_bound))) {
      return Status::InvalidArgument("partition bounds not ascending");
    }
  }
  if (!entries_.back().upper_bound.empty()) {
    return Status::InvalidArgument("last partition must have infinite bound");
  }
  return Status::Ok();
}

size_t PartitionMap::LocateIndex(const Slice& key) const {
  for (size_t i = 0; i + 1 < entries_.size(); ++i) {
    if (key.Compare(Slice(entries_[i].upper_bound)) < 0) return i;
  }
  return entries_.size() - 1;
}

const PartitionEntry& PartitionMap::Locate(const Slice& key) const {
  return entries_[LocateIndex(key)];
}

Status Catalog::DefineFile(FileDefinition def) {
  ENCOMPASS_RETURN_IF_ERROR(def.partitions.Validate());
  if (files_.count(def.name)) {
    return Status::AlreadyExists("file defined: " + def.name);
  }
  files_[def.name] = std::move(def);
  return Status::Ok();
}

const FileDefinition* Catalog::Find(const std::string& name) const {
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::FileNames() const {
  std::vector<std::string> names;
  for (const auto& [n, d] : files_) {
    (void)d;
    names.push_back(n);
  }
  return names;
}

}  // namespace encompass::storage
