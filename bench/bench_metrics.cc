// Microbenchmark for the Stats hot path: interned MetricId handles (a bounds
// check + vector index) against the legacy string-keyed interface (hash +
// string compare on every call). Every per-message counter in the simulator
// sits on this path, so the handle/string ratio bounds how much bookkeeping
// the refactor removed from the per-event cost.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "sim/stats.h"

namespace encompass::bench {
namespace {

// A realistic registry: the hot counter lives among many others, as in a
// full deployment, so the string path pays a representative hash-map probe.
sim::MetricId PopulateStats(sim::Stats* stats) {
  for (int i = 0; i < 64; ++i) {
    stats->RegisterCounter("subsystem.counter_" + std::to_string(i));
    stats->RegisterHistogram("subsystem.hist_" + std::to_string(i));
  }
  return stats->RegisterCounter("tmf.transition.active->ending");
}

void BM_IncrString(benchmark::State& state) {
  sim::Stats stats;
  PopulateStats(&stats);
  for (auto _ : state) {
    stats.Incr("tmf.transition.active->ending");
  }
  benchmark::DoNotOptimize(stats.Counter("tmf.transition.active->ending"));
}
BENCHMARK(BM_IncrString);

void BM_IncrHandle(benchmark::State& state) {
  sim::Stats stats;
  sim::MetricId id = PopulateStats(&stats);
  for (auto _ : state) {
    benchmark::DoNotOptimize(id);
    stats.Incr(id);
  }
  benchmark::DoNotOptimize(stats.Counter("tmf.transition.active->ending"));
}
BENCHMARK(BM_IncrHandle);

void BM_RecordString(benchmark::State& state) {
  sim::Stats stats;
  PopulateStats(&stats);
  int64_t v = 0;
  for (auto _ : state) {
    stats.Record("subsystem.hist_0", ++v & 1023);
  }
}
BENCHMARK(BM_RecordString);

void BM_RecordHandle(benchmark::State& state) {
  sim::Stats stats;
  PopulateStats(&stats);
  sim::MetricId id = stats.RegisterHistogram("subsystem.hist_0");
  int64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(id);
    stats.Record(id, ++v & 1023);
  }
}
BENCHMARK(BM_RecordHandle);

// Hand-timed ratio for the JSON report: google-benchmark's per-case tables
// are human output; this distils the one number the refactor is judged on.
double TimedRatio(void (*slow)(sim::Stats&, int), void (*fast)(sim::Stats&, int)) {
  constexpr int kIters = 2'000'000;
  sim::Stats stats_slow, stats_fast;
  PopulateStats(&stats_slow);
  PopulateStats(&stats_fast);
  using clock = std::chrono::steady_clock;
  auto t0 = clock::now();
  slow(stats_slow, kIters);
  auto t1 = clock::now();
  fast(stats_fast, kIters);
  auto t2 = clock::now();
  double slow_ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  double fast_ns = std::chrono::duration<double, std::nano>(t2 - t1).count();
  return fast_ns > 0 ? slow_ns / fast_ns : 0;
}

// DoNotOptimize on the handle keeps the compiler from folding the whole
// loop into one addition, so both paths pay their real per-call cost.
void IncrStringLoop(sim::Stats& stats, int n) {
  for (int i = 0; i < n; ++i) stats.Incr("tmf.transition.active->ending");
}
void IncrHandleLoop(sim::Stats& stats, int n) {
  sim::MetricId id = stats.RegisterCounter("tmf.transition.active->ending");
  for (int i = 0; i < n; ++i) {
    benchmark::DoNotOptimize(id);
    stats.Incr(id);
  }
}
void RecordStringLoop(sim::Stats& stats, int n) {
  for (int i = 0; i < n; ++i) stats.Record("subsystem.hist_0", i & 1023);
}
void RecordHandleLoop(sim::Stats& stats, int n) {
  sim::MetricId id = stats.RegisterHistogram("subsystem.hist_0");
  for (int i = 0; i < n; ++i) {
    benchmark::DoNotOptimize(id);
    stats.Record(id, i & 1023);
  }
}

}  // namespace
}  // namespace encompass::bench

int main(int argc, char** argv) {
  encompass::bench::InitReport("metrics");
  encompass::bench::ReportMeta(/*seed=*/0);
  printf("Stats hot path: interned MetricId handles vs string keys\n");
  double incr = encompass::bench::TimedRatio(encompass::bench::IncrStringLoop,
                                             encompass::bench::IncrHandleLoop);
  double record = encompass::bench::TimedRatio(
      encompass::bench::RecordStringLoop, encompass::bench::RecordHandleLoop);
  printf("Incr   speedup (string/handle): %.1fx\n", incr);
  printf("Record speedup (string/handle): %.1fx\n", record);
  encompass::bench::ReportValue("speedup_incr", incr);
  encompass::bench::ReportValue("speedup_record", record);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  encompass::bench::WriteReport();
  return 0;
}
