// Randomized fault-injection soak tests: a multi-node banking workload runs
// while CPUs fail and reload, network links cut and heal, and disc drives
// die and revive — on a randomized schedule derived from the test seed.
// After the storm ends and the system drains, the invariants that define
// the paper's guarantees are checked:
//   * atomicity: the sum of all balances is unchanged (every debit's credit
//     either both applied or both backed out),
//   * no transaction leaks: the TMPs' transaction tables are empty and no
//     DISCPROCESS holds a lock,
//   * the Figure-3 state machine never took an illegal transition,
//   * progress: a healthy majority of programs completed.

#include <gtest/gtest.h>

#include "apps/banking/banking.h"
#include "encompass/deployment.h"
#include "encompass/tcp.h"
#include "sim/fault_injector.h"

namespace encompass {
namespace {

using namespace encompass::app;
using namespace encompass::apps::banking;

struct SoakConfig {
  uint64_t seed = 1;
  int nodes = 2;
  int terminals_per_node = 4;
  uint64_t iterations = 15;
  int fault_events = 10;
  SimDuration storm_length = Seconds(8);
  bool cpu_faults = true;
  bool link_faults = true;
  bool drive_faults = true;
};

struct SoakResult {
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t restarts = 0;
  long long balance_sum = 0;
  long long expected_sum = 0;
  size_t leaked_locks = 0;
  size_t leaked_txns = 0;
  int64_t illegal_transitions = 0;
  size_t pending_safe = 0;
};

SoakResult RunSoak(const SoakConfig& cfg) {
  constexpr int kAccountsPerNode = 25;
  constexpr int64_t kInitial = 1000;

  sim::Simulation sim(cfg.seed);
  Deployment deploy(&sim);
  for (int n = 1; n <= cfg.nodes; ++n) {
    NodeSpec spec;
    spec.id = static_cast<net::NodeId>(n);
    spec.node_config.num_cpus = 4;
    spec.disc_config.default_lock_timeout = Millis(300);
    // Abandoned transactions (requester died, abort lost in a takeover
    // window) are reaped so their locks cannot wedge the system.
    spec.tmp_config.auto_abort_timeout = Seconds(10);
    spec.volumes = {VolumeSpec{"$DATA" + std::to_string(n), {FileSpec{"acct"}}, {}}};
    deploy.AddNode(spec);
  }
  deploy.LinkAll();

  // One partitioned accounts file spanning all nodes.
  storage::FileDefinition def;
  def.name = "acct";
  for (int n = 1; n < cfg.nodes; ++n) {
    def.partitions.AddPartition(ToBytes(AccountKey(n * kAccountsPerNode)),
                                static_cast<net::NodeId>(n),
                                "$DATA" + std::to_string(n));
  }
  def.partitions.AddPartition({}, static_cast<net::NodeId>(cfg.nodes),
                              "$DATA" + std::to_string(cfg.nodes));
  EXPECT_TRUE(deploy.DefinePartitionedFile(def).ok());

  const int total_accounts = cfg.nodes * kAccountsPerNode;
  for (int n = 1; n <= cfg.nodes; ++n) {
    auto* vol = deploy.GetNode(static_cast<net::NodeId>(n))
                    ->storage()
                    .volumes.at("$DATA" + std::to_string(n))
                    .get();
    for (int i = (n - 1) * kAccountsPerNode; i < n * kAccountsPerNode; ++i) {
      storage::Record rec;
      rec.Set("balance", std::to_string(kInitial));
      vol->Mutate("acct", storage::MutationOp::kInsert, Slice(AccountKey(i)),
                  Slice(rec.Encode()));
    }
    vol->Flush();
  }

  // One server class and TCP per node; each terminal transfers between
  // random accounts anywhere in the network (distributed transactions).
  std::vector<std::unique_ptr<ScreenProgram>> programs;
  auto find_tcp = [&deploy](int n) -> Tcp* {
    os::Node* node = deploy.GetNode(static_cast<net::NodeId>(n))->node();
    net::Pid pid = node->LookupName("$TCP" + std::to_string(n));
    return pid == 0 ? nullptr : dynamic_cast<Tcp*>(node->Find(pid));
  };
  for (int n = 1; n <= cfg.nodes; ++n) {
    AddBankServerClass(&deploy, static_cast<net::NodeId>(n), "$SC.BANK", "acct");
    programs.push_back(std::make_unique<ScreenProgram>(MakeTransferProgram(
        static_cast<net::NodeId>(n), "$SC.BANK", total_accounts, 50)));
    TcpConfig tcfg;
    tcfg.programs = {{"transfer", programs.back().get()}};
    tcfg.restart_limit = 5000;
    auto pair = os::SpawnPair<Tcp>(
        deploy.GetNode(static_cast<net::NodeId>(n))->node(),
        "$TCP" + std::to_string(n), 2, 3, tcfg);
    deploy.GetNode(static_cast<net::NodeId>(n))
        ->RegisterRepairablePair<Tcp>("$TCP" + std::to_string(n), tcfg);
    sim.RunFor(Millis(1));
    for (int t = 0; t < cfg.terminals_per_node; ++t) {
      EXPECT_TRUE(pair.primary->AttachTerminal(
          "t" + std::to_string(n) + "-" + std::to_string(t), "transfer",
          cfg.iterations));
    }
  }

  // ---- the storm: randomized faults, each healed a bit later -------------
  // CPU faults on one node never overlap: the paper's guarantee is
  // tolerance of SINGLE-module failures ("the failure of a single module
  // does not disable any other module"); simultaneous failure of both CPUs
  // of a process-pair is the multiple-module case that ROLLFORWARD exists
  // for (exercised by the recovery tests, not this soak).
  sim::FaultInjector injector(&sim);
  Random fault_rng(cfg.seed * 7919 + 3);
  std::map<net::NodeId, SimTime> node_free;
  for (int e = 0; e < cfg.fault_events; ++e) {
    SimTime when = Millis(100) + static_cast<SimTime>(fault_rng.Uniform(
                                     static_cast<uint64_t>(cfg.storm_length)));
    SimDuration heal_after = Millis(200) + static_cast<SimDuration>(
                                               fault_rng.Uniform(2000)) * 1000;
    auto node_id = static_cast<net::NodeId>(1 + fault_rng.Uniform(cfg.nodes));
    switch (fault_rng.Uniform(3)) {
      case 0: {
        if (!cfg.cpu_faults) break;
        if (when < node_free[node_id]) when = node_free[node_id];
        node_free[node_id] = when + heal_after + Millis(100);
        int cpu = static_cast<int>(fault_rng.Uniform(4));
        injector.InjectAt(when, "fail cpu", [&deploy, node_id, cpu]() {
          deploy.GetNode(node_id)->node()->FailCpu(cpu);
        });
        injector.InjectAt(when + heal_after, "reload cpu",
                          [&deploy, node_id, cpu]() {
                            deploy.GetNode(node_id)->node()->ReloadCpu(cpu);
                          });
        break;
      }
      case 1: {
        if (!cfg.link_faults || cfg.nodes < 2) break;
        auto other = static_cast<net::NodeId>(1 + fault_rng.Uniform(cfg.nodes));
        if (other == node_id) other = (node_id % cfg.nodes) + 1;
        injector.InjectAt(when, "cut link", [&deploy, node_id, other]() {
          deploy.cluster().CutLink(node_id, other);
        });
        injector.InjectAt(when + heal_after, "restore link",
                          [&deploy, node_id, other]() {
                            deploy.cluster().RestoreLink(node_id, other);
                          });
        break;
      }
      case 2: {
        if (!cfg.drive_faults) break;
        injector.InjectAt(when, "fail drive", [&deploy, node_id]() {
          deploy.GetNode(node_id)
              ->storage()
              .volumes.begin()
              ->second->FailDrive(0);
        });
        injector.InjectAt(when + heal_after, "revive drive",
                          [&deploy, node_id]() {
                            deploy.GetNode(node_id)
                                ->storage()
                                .volumes.begin()
                                ->second->ReviveDrive(0);
                          });
        break;
      }
    }
  }

  // Run the storm, then give the system generous time to drain.
  sim.RunFor(cfg.storm_length + Seconds(2));
  for (int spin = 0; spin < 600; ++spin) {
    uint64_t done = 0;
    for (int n = 1; n <= cfg.nodes; ++n) {
      Tcp* tcp = find_tcp(n);
      if (tcp != nullptr) {
        done += tcp->programs_completed() + tcp->programs_failed();
      }
    }
    if (done >= static_cast<uint64_t>(cfg.nodes) * cfg.terminals_per_node *
                    cfg.iterations) {
      break;
    }
    sim.RunFor(Seconds(1));
  }
  sim.RunFor(Seconds(10));  // trailing safe deliveries, lock releases

  // ---- invariants ----------------------------------------------------------
  SoakResult result;
  result.expected_sum = static_cast<long long>(total_accounts) * kInitial;
  for (int n = 1; n <= cfg.nodes; ++n) {
    Tcp* tcp = find_tcp(n);
    if (tcp == nullptr) continue;
    result.completed += tcp->programs_completed();
    result.failed += tcp->programs_failed();
    result.restarts += tcp->transactions_restarted();
  }
  for (int n = 1; n <= cfg.nodes; ++n) {
    auto* nd = deploy.GetNode(static_cast<net::NodeId>(n));
    result.balance_sum += SumBalances(
        nd->storage().volumes.at("$DATA" + std::to_string(n)).get(), "acct");
    auto* disc = nd->disc("$DATA" + std::to_string(n));
    if (disc != nullptr) result.leaked_locks += disc->locks().held_count();
    auto* tmp = nd->tmp();
    if (tmp != nullptr) {
      result.leaked_txns += tmp->ActiveTransactionCount();
      result.pending_safe += tmp->PendingSafeDeliveries();
    }
  }
  result.illegal_transitions = sim.GetStats().Counter("tmf.illegal_transitions");
  return result;
}

class FaultSoakTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultSoakTest, InvariantsHoldThroughRandomFaultStorm) {
  SoakConfig cfg;
  cfg.seed = GetParam();
  cfg.nodes = 2;
  SoakResult r = RunSoak(cfg);

  EXPECT_EQ(r.balance_sum, r.expected_sum) << "atomicity violated";
  EXPECT_EQ(r.leaked_locks, 0u) << "locks leaked";
  EXPECT_EQ(r.leaked_txns, 0u) << "transactions leaked";
  EXPECT_EQ(r.illegal_transitions, 0);
  EXPECT_EQ(r.pending_safe, 0u) << "safe deliveries stuck";
  // Progress: every program eventually finished; the vast majority
  // committed (a few may exhaust restarts during long partitions).
  uint64_t total = static_cast<uint64_t>(cfg.nodes) * cfg.terminals_per_node *
                   cfg.iterations;
  EXPECT_EQ(r.completed + r.failed, total) << "programs hung";
  EXPECT_GE(r.completed * 10, total * 9) << "too many failures";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSoakTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(FaultSoakTest, ThreeNodeStorm) {
  SoakConfig cfg;
  cfg.seed = 4242;
  cfg.nodes = 3;
  cfg.terminals_per_node = 3;
  cfg.fault_events = 14;
  SoakResult r = RunSoak(cfg);
  EXPECT_EQ(r.balance_sum, r.expected_sum);
  EXPECT_EQ(r.leaked_locks, 0u);
  EXPECT_EQ(r.leaked_txns, 0u);
  EXPECT_EQ(r.illegal_transitions, 0);
}

TEST(FaultSoakTest, CpuOnlyStormIsInvisible) {
  // With only CPU faults (never the last CPU), NonStop should mask
  // everything: zero failed programs.
  SoakConfig cfg;
  cfg.seed = 777;
  cfg.link_faults = false;
  cfg.drive_faults = false;
  cfg.fault_events = 8;
  SoakResult r = RunSoak(cfg);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.balance_sum, r.expected_sum);
  EXPECT_EQ(r.leaked_locks, 0u);
}

}  // namespace
}  // namespace encompass
