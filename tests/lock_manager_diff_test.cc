// Randomized differential test: the production LockManager (interned file
// ids, per-file hash tables, O(1) grant checks) against the original
// map-scan implementation kept in reference_lock_manager.h. Both receive
// identical operation streams from fixed seeds; every step must agree on
// acquire results, grant sequences (order included — grant order feeds the
// simulation's deterministic traces), held/waiter counts, Holds answers,
// and the full AllHeld table.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "discprocess/lock_manager.h"
#include "reference_lock_manager.h"

namespace encompass::discprocess {
namespace {

using AR = LockManager::AcquireResult;

Transid T(uint64_t seq) { return Transid{1, 0, seq}; }

std::string DumpGrants(const std::vector<LockGrant>& grants) {
  std::string out;
  for (const auto& g : grants) {
    out += g.owner.ToString() + ":" + g.key.ToString() + ";";
  }
  return out;
}

std::string DumpHeld(const std::vector<LockGrant>& held) {
  // AllHeld order: production emits (file, record)-sorted; the reference's
  // std::map iteration is the same order by construction.
  return DumpGrants(held);
}

class Harness {
 public:
  explicit Harness(uint64_t seed) : rng_(seed) {}

  void Run(int steps) {
    for (int i = 0; i < steps; ++i) Step();
    // Drain: release everything and confirm the endgame agrees too.
    for (uint64_t t = 1; t <= kTxns; ++t) {
      auto got = lm_.ReleaseAll(T(t));
      auto want = ref_.ReleaseAll(T(t));
      ASSERT_EQ(DumpGrants(got), DumpGrants(want)) << "drain txn " << t;
    }
    EXPECT_EQ(lm_.held_count(), 0u);
    EXPECT_EQ(lm_.waiter_count(), 0u);
  }

 private:
  static constexpr uint64_t kTxns = 8;
  static constexpr int kFiles = 3;
  static constexpr int kRecords = 6;

  LockKey RandomKey() {
    std::string file = "f" + std::to_string(rng_.Uniform(kFiles));
    if (rng_.Uniform(5) == 0) return LockKey{file, {}};  // file-level
    return LockKey{file, ToBytes("r" + std::to_string(rng_.Uniform(kRecords)))};
  }

  void Step() {
    const Transid owner = T(1 + rng_.Uniform(kTxns));
    const uint64_t dice = rng_.Uniform(100);
    if (dice < 55) {
      LockKey key = RandomKey();
      AR got = lm_.Acquire(owner, key);
      AR want = ref_.Acquire(owner, key);
      ASSERT_EQ(got, want) << owner.ToString() << " acquire " << key.ToString();
    } else if (dice < 75) {
      auto got = lm_.ReleaseAll(owner);
      auto want = ref_.ReleaseAll(owner);
      ASSERT_EQ(DumpGrants(got), DumpGrants(want))
          << "release " << owner.ToString();
    } else if (dice < 85) {
      LockKey key = RandomKey();
      bool got = lm_.CancelWait(owner, key);
      bool want = ref_.CancelWait(owner, key);
      ASSERT_EQ(got, want) << "cancel " << key.ToString();
    } else if (dice < 92) {
      // Backup-style unconditional grant on a fresh or own unit. Restrict to
      // unheld keys: the reference overwrites blindly and leaks the old
      // holder's accounting, which a primary never does (ForceGrant mirrors
      // grants the primary actually made).
      LockKey key = RandomKey();
      if (!lm_.Holds(owner, key) && lm_.Acquire(owner, key) == AR::kGranted) {
        // Production path granted; mirror it in the reference.
        AR want = ref_.Acquire(owner, key);
        ASSERT_EQ(want, AR::kGranted) << "mirror " << key.ToString();
      } else {
        lm_.CancelWait(owner, key);
        ref_.CancelWait(owner, key);
      }
    } else {
      // Read-only probes.
      LockKey key = RandomKey();
      ASSERT_EQ(lm_.Holds(owner, key), ref_.Holds(owner, key));
    }
    ASSERT_EQ(lm_.held_count(), ref_.held_count());
    ASSERT_EQ(lm_.waiter_count(), ref_.waiter_count());
    if (rng_.Uniform(10) == 0) {
      ASSERT_EQ(DumpHeld(lm_.AllHeld()), DumpHeld(ref_.AllHeld()));
    }
  }

  Random rng_;
  LockManager lm_;
  ReferenceLockManager ref_;
};

TEST(LockManagerDiffTest, Seed1) { Harness(1).Run(4000); }
TEST(LockManagerDiffTest, Seed42) { Harness(42).Run(4000); }
TEST(LockManagerDiffTest, Seed1981) { Harness(1981).Run(4000); }
TEST(LockManagerDiffTest, Seed7777) { Harness(7777).Run(4000); }

// Wider key space: fewer collisions, exercises interning and table growth.
class WideHarness {
 public:
  static void Run(uint64_t seed) {
    Random rng(seed);
    LockManager lm;
    ReferenceLockManager ref;
    for (int i = 0; i < 2000; ++i) {
      Transid owner = T(1 + rng.Uniform(16));
      std::string file = "file" + std::to_string(rng.Uniform(20));
      LockKey key =
          rng.Uniform(8) == 0
              ? LockKey{file, {}}
              : LockKey{file, ToBytes("k" + std::to_string(rng.Uniform(50)))};
      if (rng.Uniform(10) < 7) {
        ASSERT_EQ(lm.Acquire(owner, key), ref.Acquire(owner, key));
      } else {
        ASSERT_EQ(DumpGrants(lm.ReleaseAll(owner)),
                  DumpGrants(ref.ReleaseAll(owner)));
      }
    }
    ASSERT_EQ(DumpGrants(lm.AllHeld()), DumpGrants(ref.AllHeld()));
    ASSERT_EQ(lm.held_count(), ref.held_count());
    ASSERT_EQ(lm.waiter_count(), ref.waiter_count());
  }
};

TEST(LockManagerDiffTest, WideKeySpaceSeed5) { WideHarness::Run(5); }
TEST(LockManagerDiffTest, WideKeySpaceSeed97) { WideHarness::Run(97); }

}  // namespace
}  // namespace encompass::discprocess
