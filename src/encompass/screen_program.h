// ScreenProgram: the Screen COBOL analogue — a scripted sequence of verbs
// interpreted by the TCP for each terminal. Programs are immutable and
// shared; all per-terminal state (the "screen fields", program counter,
// transaction mode) lives in the TCP's terminal context, which is
// checkpointed to the TCP's backup.

#ifndef ENCOMPASS_ENCOMPASS_SCREEN_PROGRAM_H_
#define ENCOMPASS_ENCOMPASS_SCREEN_PROGRAM_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "net/address.h"

namespace encompass::app {

/// The terminal's screen data: named fields, as mapped by the program.
using Fields = std::map<std::string, std::string>;

/// What a SEND reply handler tells the TCP to do next.
enum class SendDirective {
  kContinue,            ///< proceed to the next verb
  kRestartTransaction,  ///< RESTART-TRANSACTION: back out, retry from BEGIN
  kAbortTransaction,    ///< ABORT-TRANSACTION: back out, continue after END
  kFailProgram,         ///< unrecoverable: count a failure, end the program
};

/// Default reply policy: OK continues; lock timeouts, restart requests and
/// system aborts restart the transaction; anything else fails the program.
SendDirective DefaultReplyPolicy(Fields& fields, const Status& status,
                                 const Slice& reply);

/// One Screen COBOL program (a verb list). Build fluently:
///
///   ScreenProgram p("transfer");
///   p.Accept([](Fields& f, Random& rng) { f["from"] = ...; })
///    .BeginTransaction()
///    .Send(1, "$SC.DEBIT", BuildDebit, OnDebitReply)
///    .Send(1, "$SC.CREDIT", BuildCredit)
///    .EndTransaction();
class ScreenProgram {
 public:
  enum class VerbType : uint8_t {
    kAccept,   ///< read terminal input into screen fields
    kCompute,  ///< local data mapping / validation
    kBegin,    ///< BEGIN-TRANSACTION
    kSend,     ///< SEND to an application server class
    kEnd,      ///< END-TRANSACTION
    kAbort,    ///< ABORT-TRANSACTION (unconditional)
    kRestart,  ///< RESTART-TRANSACTION (unconditional)
  };

  struct Verb {
    VerbType type;
    std::function<void(Fields&, encompass::Random&)> accept;
    std::function<void(Fields&)> compute;
    // kSend:
    net::NodeId server_node = 0;
    std::string server_class;
    std::function<Bytes(const Fields&)> build_request;
    std::function<SendDirective(Fields&, const Status&, const Slice&)> on_reply;
  };

  explicit ScreenProgram(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<Verb>& verbs() const { return verbs_; }

  ScreenProgram& Accept(std::function<void(Fields&, encompass::Random&)> fn) {
    Verb v;
    v.type = VerbType::kAccept;
    v.accept = std::move(fn);
    verbs_.push_back(std::move(v));
    return *this;
  }

  ScreenProgram& Compute(std::function<void(Fields&)> fn) {
    Verb v;
    v.type = VerbType::kCompute;
    v.compute = std::move(fn);
    verbs_.push_back(std::move(v));
    return *this;
  }

  ScreenProgram& BeginTransaction() {
    Verb v;
    v.type = VerbType::kBegin;
    verbs_.push_back(std::move(v));
    return *this;
  }

  /// SEND a request built from the screen fields to a server class. The
  /// reply handler may map reply data back into fields and chooses what
  /// happens next (default policy if omitted).
  ScreenProgram& Send(
      net::NodeId node, std::string server_class,
      std::function<Bytes(const Fields&)> build_request,
      std::function<SendDirective(Fields&, const Status&, const Slice&)>
          on_reply = DefaultReplyPolicy) {
    Verb v;
    v.type = VerbType::kSend;
    v.server_node = node;
    v.server_class = std::move(server_class);
    v.build_request = std::move(build_request);
    v.on_reply = std::move(on_reply);
    verbs_.push_back(std::move(v));
    return *this;
  }

  ScreenProgram& EndTransaction() {
    Verb v;
    v.type = VerbType::kEnd;
    verbs_.push_back(std::move(v));
    return *this;
  }

  ScreenProgram& AbortTransaction() {
    Verb v;
    v.type = VerbType::kAbort;
    verbs_.push_back(std::move(v));
    return *this;
  }

  ScreenProgram& RestartTransaction() {
    Verb v;
    v.type = VerbType::kRestart;
    verbs_.push_back(std::move(v));
    return *this;
  }

 private:
  std::string name_;
  std::vector<Verb> verbs_;
};

}  // namespace encompass::app

#endif  // ENCOMPASS_ENCOMPASS_SCREEN_PROGRAM_H_
