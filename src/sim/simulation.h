// Simulation: the deterministic run context shared by every simulated
// component — clocks, per-node event loops, PRNG streams, and statistics.
//
// The engine is a conservative parallel discrete-event simulator (PDES) with
// an exact single-threaded oracle. Every simulated node owns an event loop
// (clock + event queue + PRNG stream); loop 0 is the global loop for setup
// code, fault injection, and topology events. Events carry a total-order key
// (time, origin node, origin sequence) assigned at schedule time, so "the
// order events fire in" is a property of the simulation's history, not of
// the thread interleaving that executes it.
//
// `parallel_workers` selects among three engines that produce byte-identical
// same-seed traces and metrics:
//   0  — the classic single-queue engine: every event lands on loop 0 in one
//        global schedule order (the pre-PDES behavior, bit-for-bit);
//   1  — per-node loops multiplexed on the calling thread in canonical key
//        order (the PDES oracle);
//   N  — a pool of N threads executing node loops round-by-round under
//        conservative synchronization: a loop may run up to
//        min_{other loops j}(next event time of j) + lookahead, where
//        lookahead is the minimum cross-node link latency. No rollback is
//        ever needed because a node can only affect another node at least
//        one link latency in the future (Network posts cross-node work via
//        PostToNode, never with a shorter delay).

#ifndef ENCOMPASS_SIM_SIMULATION_H_
#define ENCOMPASS_SIM_SIMULATION_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/sim_time.h"
#include "sim/event_queue.h"
#include "sim/exec_context.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace encompass::sim {

/// One per-node event loop: its own clock, event queue, and PRNG stream.
/// In parallel mode a locked inbox buffers cross-node posts made while the
/// owner may be running on another thread; the coordinator drains inboxes
/// between rounds (safe because a cross-node post is always at least one
/// lookahead in the future, past every horizon granted in the round).
struct NodeLoop {
  NodeLoop(uint16_t node_id, uint32_t shard_index, uint64_t rng_seed)
      : node(node_id), shard(shard_index), queue(node_id), rng(rng_seed) {}

  const uint16_t node;
  const uint32_t shard;  // index into Simulation::loops_ and the stat shards
  SimTime now = 0;
  EventQueue queue;
  encompass::Random rng;
  uint64_t executed = 0;
  SimTime horizon = kNoDeadline;  // exclusive execution bound, current round

  struct Post {
    EventKey key;
    uint16_t exec_node;
    std::function<void()> fn;
  };
  std::mutex inbox_mu;
  std::vector<Post> inbox;
};

/// One deterministic simulated world. All simulated components hold a
/// pointer to their Simulation; nothing in the library touches wall-clock
/// time or global randomness.
class Simulation {
 public:
  /// `parallel_workers` selects the engine; see the file comment. All modes
  /// produce byte-identical same-seed output.
  explicit Simulation(uint64_t seed = 1, int parallel_workers = 0);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Inside event execution: the executing event's time (the owning loop's
  /// clock). Outside: the global high-water clock.
  SimTime Now() const {
    const internal::ExecContext* ec = internal::Exec();
    if (ec != nullptr && ec->sim == this) return ec->key.time;
    return now_;
  }
  encompass::Random& Rng() { return rng_; }

  /// Per-node PRNG stream, derived deterministically from (seed, node).
  /// Components attribute their draws to the node the drawing work belongs
  /// to, so the values a node sees depend only on that node's local draw
  /// order — never on how events from different nodes interleave globally.
  encompass::Random& RngFor(uint16_t node) { return EnsureLoop(node)->rng; }

  Stats& GetStats() { return stats_; }
  TraceLog& GetTrace() { return trace_; }

  /// Appends one causal trace event stamped with the current simulated time.
  /// No-op when tracing is disabled or the context carries no transaction.
  void RecordTrace(TraceEventKind kind, const TraceContext& ctx, uint16_t node,
                   uint32_t a = 0, uint32_t b = 0, uint32_t parent = 0) {
    if (!trace_.enabled() || !ctx.active()) return;
    TraceEvent e;
    e.time = Now();
    e.transid = ctx.transid;
    e.span = ctx.span;
    e.parent = parent;
    e.kind = kind;
    e.node = node;
    e.a = a;
    e.b = b;
    trace_.Record(e);
  }

  /// Schedules `fn` to run `delay` microseconds from now (>= 0), on the
  /// loop of the node whose event is executing (loop 0 outside events).
  EventId After(SimDuration delay, std::function<void()> fn);

  /// Schedules `fn` at an absolute time (clamped to now); same loop
  /// attribution as After.
  EventId At(SimTime when, std::function<void()> fn);

  /// Schedules `fn` on `node`'s loop explicitly. Used where the OS layer
  /// schedules work for a node from outside that node's own event (process
  /// adoption, CPU regroup, message delivery hand-off).
  EventId AfterOn(uint16_t node, SimDuration delay, std::function<void()> fn);
  EventId AtOn(uint16_t node, SimTime when, std::function<void()> fn);

  /// Cross-node channel edge: schedules `fn` on `dst`'s loop, keyed with the
  /// *sender's* (origin, seq) stamp so deliveries fire in send order at any
  /// worker count. The only legal way for one node's event to schedule onto
  /// another running loop; `delay` must be at least the lookahead (true for
  /// every network latency by construction). Not cancellable.
  void PostToNode(uint16_t dst, SimDuration delay, std::function<void()> fn);

  void Cancel(EventId id);

  /// Runs one event in canonical order. Returns false if no event pending.
  bool Step();

  /// Runs events until none are pending or `max_events` have fired.
  /// Returns the number of events processed.
  size_t Run(size_t max_events = SIZE_MAX);

  /// Runs all events with time <= deadline, then advances every clock to
  /// exactly `deadline` (even if no event fired).
  void RunUntil(SimTime deadline);

  /// RunUntil(Now() + d).
  void RunFor(SimDuration d) { RunUntil(Now() + d); }

  bool Idle() const;
  size_t PendingEvents() const;
  uint64_t ExecutedEvents() const;

  int parallel_workers() const { return parallel_workers_; }

  /// Creates `node`'s loop (idempotent). Called by Network::AddNode so every
  /// simulated node has its loop before traffic starts.
  void EnsureNode(uint16_t node) { EnsureLoop(node); }

  /// Shrinks the conservative lookahead to `latency` if smaller. Called by
  /// Network::AddLink; the lookahead is the minimum cross-node link latency.
  void NoteLinkLatency(SimDuration latency) {
    if (latency > 0 && latency < lookahead_) lookahead_ = latency;
  }
  SimDuration lookahead() const { return lookahead_; }

 private:
  enum class Mode { kLegacy, kSingleLoop, kParallel };

  // EventIds pack (loop shard << kSeqBits) | local seq; legacy mode keeps
  // shard 0 so ids equal the pre-PDES global sequence numbers.
  static constexpr int kSeqBits = 40;

  NodeLoop* EnsureLoop(uint16_t node);
  uint16_t CtxNode() const;
  EventId ScheduleOn(uint16_t node, SimTime when, std::function<void()> fn);
  void ExecOne(NodeLoop* loop);
  void DrainInboxes();
  void RunUntilSerial(SimTime deadline);
  void RunUntilParallel(SimTime deadline);
  void RunLoopTo(NodeLoop* loop, SimTime horizon);
  void StartWorkers();
  void WorkerMain();
  void ClaimLoop(uint64_t round);

  Mode mode_;
  SimTime now_ = 0;
  uint64_t seed_;
  int parallel_workers_;
  encompass::Random rng_;
  SimDuration lookahead_ = kNoDeadline;

  std::vector<std::unique_ptr<NodeLoop>> loops_;  // [0] is the global loop
  std::unordered_map<uint16_t, uint32_t> loop_index_;  // node id -> shard

  Stats stats_;
  TraceLog trace_;

  // --- worker pool (kParallel only; threads start lazily) -----------------
  std::vector<std::thread> threads_;
  std::mutex pool_mu_;  // guards round_seq_/next_/pending_, in_round_, stop_
  std::condition_variable pool_cv_;   // round published / stop
  std::condition_variable done_cv_;   // round_pending_ reached zero
  // ready_ is rebuilt by the coordinator between rounds; workers only read
  // it inside ClaimLoop with in_round_ set, checked under pool_mu_.
  std::vector<NodeLoop*> ready_;      // loops of the current round
  size_t round_next_ = 0;             // next unclaimed ready_ index
  size_t round_pending_ = 0;
  uint64_t round_seq_ = 0;
  bool stop_ = false;
  bool in_round_ = false;  // written only while workers are quiescent
};

}  // namespace encompass::sim

#endif  // ENCOMPASS_SIM_SIMULATION_H_
