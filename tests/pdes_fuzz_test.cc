// Randomized cross-engine fuzz for the PDES core: random topologies (spanning
// tree + extra edges), random per-link latencies spanning LAN-to-WAN scales,
// and mixed dense/sparse per-node traffic. Every trial runs the same seeded
// workload on the single-thread oracle (workers=1) and byte-compares the full
// per-node logs against worker pools {2, 4, 8}.
// This is the test that hunts horizon bugs: a per-pair lookahead that is one
// microsecond too generous shows up as a reordered or missing log line.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "sim/simulation.h"

namespace encompass::sim {
namespace {

struct LinkSpec {
  uint16_t a;
  uint16_t b;
  SimDuration latency;
};

struct Plan {
  int nodes = 0;
  std::vector<LinkSpec> links;
  std::vector<std::vector<uint16_t>> neighbors;  // by node id
  std::vector<SimDuration> spacing;              // per-node chain cadence
};

Plan MakePlan(uint32_t trial) {
  std::mt19937 rng(0xFC0A + trial);
  Plan p;
  p.nodes = 3 + static_cast<int>(rng() % 4);  // 3..6 nodes
  const SimDuration kLatencies[] = {Micros(300), Millis(1), Millis(5),
                                    Millis(40)};
  p.neighbors.resize(static_cast<size_t>(p.nodes) + 1);
  auto add_link = [&](uint16_t a, uint16_t b) {
    for (uint16_t n : p.neighbors[a]) {
      if (n == b) return;  // already linked
    }
    p.links.push_back(LinkSpec{a, b, kLatencies[rng() % 4]});
    p.neighbors[a].push_back(b);
    p.neighbors[b].push_back(a);
  };
  // Random spanning tree keeps every node reachable, then extra chords.
  for (uint16_t n = 2; n <= p.nodes; ++n) {
    add_link(n, static_cast<uint16_t>(1 + rng() % (n - 1)));
  }
  const int extra = static_cast<int>(rng() % 3);
  for (int e = 0; e < extra; ++e) {
    auto a = static_cast<uint16_t>(1 + rng() % p.nodes);
    auto b = static_cast<uint16_t>(1 + rng() % p.nodes);
    if (a != b) add_link(a, b);
  }
  // Mix of dense and sparse nodes: heterogeneous event rates are exactly
  // where per-pair horizons differ most from the old global-min ones.
  const SimDuration kSpacing[] = {Micros(200), Micros(700), Millis(2),
                                  Millis(9)};
  p.spacing.resize(static_cast<size_t>(p.nodes) + 1, 0);
  for (int n = 1; n <= p.nodes; ++n) p.spacing[n] = kSpacing[rng() % 4];
  return p;
}

void ChainStep(Simulation* sim, const Plan* plan,
               std::vector<std::vector<std::string>>* logs, uint16_t node,
               int steps_left) {
  Random& rng = sim->RngFor(node);
  const uint64_t draw = rng.Uniform(1000);
  (*logs)[node].push_back("t=" + std::to_string(sim->Now()) +
                          " d=" + std::to_string(draw));
  if (draw % 3 == 0 && !(*plan).neighbors[node].empty()) {
    // Post over a randomly chosen incident link; the delay is that link's
    // latency plus jitter, which is always >= the pair's lookahead (the
    // least-path bound can only be shorter than the direct link).
    const auto& nbrs = plan->neighbors[node];
    const uint16_t dst = nbrs[rng.Uniform(static_cast<uint32_t>(nbrs.size()))];
    SimDuration lat = 0;
    for (const LinkSpec& l : plan->links) {
      if ((l.a == node && l.b == dst) || (l.b == node && l.a == dst)) {
        lat = l.latency;
        break;
      }
    }
    sim->PostToNode(dst, lat + Micros(rng.Uniform(40)), [sim, logs, dst]() {
      (*logs)[dst].push_back("t=" + std::to_string(sim->Now()) + " recv");
    });
  }
  if (draw % 7 == 0) {
    // Arm-and-cancel from the owning node: must never fire on any engine.
    EventId id = sim->AfterOn(node, Millis(3), [logs, node]() {
      (*logs)[node].push_back("CANCELLED-FIRED");
    });
    sim->Cancel(id);
  }
  if (steps_left > 1) {
    const SimDuration gap = plan->spacing[node] + Micros(rng.Uniform(50));
    sim->AfterOn(node, gap, [sim, plan, logs, node, steps_left]() {
      ChainStep(sim, plan, logs, node, steps_left - 1);
    });
  }
}

std::vector<std::string> RunPlan(const Plan& plan, uint32_t trial,
                                 int workers) {
  Simulation sim(/*seed=*/1000 + trial, workers);
  for (int n = 1; n <= plan.nodes; ++n) {
    sim.EnsureNode(static_cast<uint16_t>(n));
  }
  for (const LinkSpec& l : plan.links) {
    sim.NoteLinkLatency(l.a, l.b, l.latency);
  }
  std::vector<std::vector<std::string>> logs(static_cast<size_t>(plan.nodes) +
                                             1);
  for (uint16_t n = 1; n <= plan.nodes; ++n) {
    for (int c = 0; c < 2; ++c) {
      sim.AfterOn(n, Micros(15 + 11 * c), [&sim, &plan, &logs, n]() {
        ChainStep(&sim, &plan, &logs, n, 64);
      });
    }
  }
  sim.RunUntil(Millis(150));
  std::vector<std::string> flat;
  for (int n = 1; n <= plan.nodes; ++n) {
    flat.push_back("--- node " + std::to_string(n));
    for (const auto& line : logs[n]) flat.push_back(line);
  }
  return flat;
}

TEST(PdesFuzzTest, RandomTopologiesAgreeAcrossEngines) {
  for (uint32_t trial = 0; trial < 8; ++trial) {
    const Plan plan = MakePlan(trial);
    const std::vector<std::string> oracle = RunPlan(plan, trial, 1);
    ASSERT_GT(oracle.size(), static_cast<size_t>(plan.nodes))
        << "trial " << trial << " produced no events";
    for (const std::string& line : oracle) {
      ASSERT_NE(line, "CANCELLED-FIRED") << "trial " << trial;
    }
    // Worker pools must match the oracle byte-for-byte: they share its
    // (time, origin, seq) total order. The legacy engine (workers=0) is
    // excluded by design: it orders same-time ties by global schedule
    // sequence instead, which can differ when a cross-node post and a local
    // event collide on the same microsecond — the application workloads
    // pinned by the goldens never hit that, but this fuzz deliberately does.
    for (int workers : {2, 4, 8}) {
      EXPECT_EQ(RunPlan(plan, trial, workers), oracle)
          << "trial " << trial << " workers=" << workers;
    }
  }
}

// The per-pair table must agree with hand-computed least-path latencies.
TEST(PdesFuzzTest, LookaheadTableMatchesLeastPaths) {
  Simulation sim(1, 1);
  for (uint16_t n = 1; n <= 5; ++n) sim.EnsureNode(n);
  sim.NoteLinkLatency(1, 2, Millis(1));
  sim.NoteLinkLatency(2, 3, Millis(2));
  sim.NoteLinkLatency(3, 4, Millis(50));
  EXPECT_EQ(sim.LookaheadBetween(1, 2), Millis(1));
  EXPECT_EQ(sim.LookaheadBetween(2, 1), Millis(1));     // symmetric
  EXPECT_EQ(sim.LookaheadBetween(1, 3), Millis(3));     // via node 2
  EXPECT_EQ(sim.LookaheadBetween(1, 4), Millis(53));    // chain sum
  EXPECT_EQ(sim.LookaheadBetween(1, 5), kNoDeadline);   // unlinked pair
  EXPECT_EQ(sim.LookaheadBetween(5, 3), kNoDeadline);
  // A later shortcut relaxes existing pairs...
  sim.NoteLinkLatency(1, 3, Millis(1));
  EXPECT_EQ(sim.LookaheadBetween(1, 3), Millis(1));
  EXPECT_EQ(sim.LookaheadBetween(1, 4), Millis(51));
  EXPECT_EQ(sim.LookaheadBetween(2, 3), Millis(2));     // direct still best
  // ...and the uniform scalar acts as an all-pairs floor.
  sim.NoteLinkLatency(Micros(400));
  EXPECT_EQ(sim.LookaheadBetween(1, 2), Micros(400));
  EXPECT_EQ(sim.LookaheadBetween(1, 5), Micros(400));
  EXPECT_EQ(sim.lookahead(), Micros(400));
}

}  // namespace
}  // namespace encompass::sim
