#include "sim/stats.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace encompass::sim {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

uint32_t Histogram::BucketFor(int64_t v) {
  if (v < static_cast<int64_t>(kSub)) {
    return v < 0 ? 0u : static_cast<uint32_t>(v);
  }
  const auto u = static_cast<uint64_t>(v);
  const int e = std::bit_width(u) - 1;  // e in [kSubBits, 62]
  const int shift = e - kSubBits;
  const auto sub = static_cast<uint32_t>((u - (uint64_t{1} << e)) >> shift);
  return kSub + static_cast<uint32_t>(shift) * kSub + sub;
}

int64_t Histogram::BucketMidpoint(uint32_t b) {
  if (b < kSub) return static_cast<int64_t>(b);
  const uint32_t rel = b - kSub;
  const int shift = static_cast<int>(rel >> kSubBits);  // octave index == shift
  const int e = kSubBits + shift;
  const uint32_t sub = rel & (kSub - 1);
  const int64_t low = (int64_t{1} << e) + (static_cast<int64_t>(sub) << shift);
  const int64_t width = int64_t{1} << shift;
  return low + (width >> 1);
}

void Histogram::Add(int64_t v) {
  buckets_[BucketFor(v)]++;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  count_++;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (uint32_t b = 0; b < kNumBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0) return min_;
  if (p >= 100) return max_;
  const auto rank =
      static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_ - 1));
  uint64_t cum = 0;
  for (uint32_t b = 0; b < kNumBuckets; ++b) {
    cum += buckets_[b];
    if (cum > rank) {
      return std::clamp(BucketMidpoint(b), min_, max_);
    }
  }
  return max_;
}

void Histogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

Stats::Stats() { EnsureShards(1); }

MetricId Stats::RegisterCounter(const std::string& name) {
  std::lock_guard<std::mutex> lk(reg_mu_);
  auto [it, inserted] =
      counter_ids_.emplace(name, static_cast<uint32_t>(counter_names_.size()));
  if (inserted) counter_names_.push_back(name);
  return MetricId(it->second);
}

MetricId Stats::RegisterHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(reg_mu_);
  auto [it, inserted] = histogram_ids_.emplace(
      name, static_cast<uint32_t>(histogram_names_.size()));
  if (inserted) histogram_names_.push_back(name);
  return MetricId(it->second);
}

int64_t Stats::Counter(MetricId id) const {
  if (!id.valid()) return 0;
  int64_t total = 0;
  for (const auto& s : shards_) {
    if (id.index_ < s->counters.size()) total += s->counters[id.index_];
  }
  return total;
}

int64_t Stats::Counter(const std::string& name) const {
  uint32_t index;
  {
    std::lock_guard<std::mutex> lk(reg_mu_);
    auto it = counter_ids_.find(name);
    if (it == counter_ids_.end()) return 0;
    index = it->second;
  }
  return Counter(MetricId(index));
}

const Histogram& Stats::MergedAt(uint32_t index) const {
  while (merged_.size() <= index) merged_.emplace_back();
  Histogram& m = merged_[index];
  m.Clear();
  for (const auto& s : shards_) {
    auto it = s->histograms.find(index);
    if (it != s->histograms.end()) m.Merge(it->second);
  }
  return m;
}

const Histogram* Stats::FindHistogram(const std::string& name) const {
  uint32_t index;
  {
    std::lock_guard<std::mutex> lk(reg_mu_);
    auto it = histogram_ids_.find(name);
    if (it == histogram_ids_.end()) return nullptr;
    index = it->second;
  }
  return &MergedAt(index);
}

std::map<std::string, int64_t> Stats::counters() const {
  std::map<std::string, int64_t> out;
  std::lock_guard<std::mutex> lk(reg_mu_);
  for (size_t i = 0; i < counter_names_.size(); ++i) {
    const int64_t total = Counter(MetricId(static_cast<uint32_t>(i)));
    if (total != 0) out.emplace(counter_names_[i], total);
  }
  return out;
}

std::map<std::string, const Histogram*> Stats::histograms() const {
  std::map<std::string, const Histogram*> out;
  std::lock_guard<std::mutex> lk(reg_mu_);
  for (size_t i = 0; i < histogram_names_.size(); ++i) {
    const Histogram& m = MergedAt(static_cast<uint32_t>(i));
    if (m.count() > 0) out.emplace(histogram_names_[i], &m);
  }
  return out;
}

void Stats::Clear() {
  for (auto& s : shards_) {
    std::fill(s->counters.begin(), s->counters.end(), 0);
    s->histograms.clear();
  }
  for (auto& m : merged_) m.Clear();
}

void Stats::EnsureShards(size_t n) {
  while (shards_.size() < n) shards_.push_back(std::make_unique<Shard>());
}

std::string Stats::ToString() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters()) {
    out << name << " = " << value << "\n";
  }
  for (const auto& [name, hist] : histograms()) {
    out << name << ": n=" << hist->count() << " min=" << hist->Min()
        << " mean=" << hist->Mean() << " p50=" << hist->Percentile(50)
        << " p95=" << hist->Percentile(95) << " p99=" << hist->Percentile(99)
        << " max=" << hist->Max() << "\n";
  }
  return out.str();
}

}  // namespace encompass::sim
