#include "sim/fault_injector.h"

#include "common/logging.h"

namespace encompass::sim {

void FaultInjector::InjectAt(SimTime when, std::string description,
                             std::function<void()> action) {
  ++scheduled_;
  sim_->At(when, [this, description = std::move(description),
                  action = std::move(action)]() {
    LOG_INFO << "fault @" << sim_->Now() << "us: " << description;
    // Count the firing and journal it *before* running the action: the
    // action may re-entrantly schedule (or Note) further faults, and the
    // books must already reflect this firing when it does.
    ++fired_;
    journal_.push_back(FaultEvent{sim_->Now(), description});
    action();
  });
}

void FaultInjector::InjectAfter(SimDuration delay, std::string description,
                                std::function<void()> action) {
  InjectAt(sim_->Now() + delay, std::move(description), std::move(action));
}

void FaultInjector::Note(std::string description) {
  journal_.push_back(FaultEvent{sim_->Now(), std::move(description)});
}

}  // namespace encompass::sim
