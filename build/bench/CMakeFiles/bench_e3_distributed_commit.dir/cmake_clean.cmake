file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_distributed_commit.dir/bench_e3_distributed_commit.cc.o"
  "CMakeFiles/bench_e3_distributed_commit.dir/bench_e3_distributed_commit.cc.o.d"
  "bench_e3_distributed_commit"
  "bench_e3_distributed_commit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_distributed_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
