// ProcessPair: the NonStop fault-tolerance mechanism. Two cooperating
// instances of the same process class run in two different CPUs; the primary
// serves requests and sends checkpoints to the passive backup, which takes
// over when the primary's CPU fails. The pair's symbolic name always
// resolves to the current primary, so takeover is transparent to requesters
// (who at most see one transparent retry).

#ifndef ENCOMPASS_OS_PROCESS_PAIR_H_
#define ENCOMPASS_OS_PROCESS_PAIR_H_

#include <cassert>
#include <string>

#include "os/node.h"
#include "os/process.h"

namespace encompass::os {

/// Base class for processes that run as a NonStop pair. Subclasses override
/// the pair hooks instead of OnStart/OnMessage/OnCpuDown.
class PairedProcess : public Process {
 public:
  enum class Role { kPrimary, kBackup };

  /// Pair wiring; called by SpawnPair/AttachBackup before OnStart runs.
  void ConfigurePair(const std::string& name, Role role);
  void SetPeer(net::ProcessId peer);

  Role role() const { return role_; }
  bool IsPrimary() const { return role_ == Role::kPrimary; }
  const std::string& pair_name() const { return pair_name_; }
  net::ProcessId peer() const { return peer_; }
  bool HasBackup() const { return IsPrimary() && peer_.valid(); }

  std::string DebugName() const override {
    return pair_name_ + (IsPrimary() ? "(P)" : "(B)");
  }

  // Final overrides of the raw process hooks; subclasses use the pair hooks.
  void OnAttach() final;
  void OnStart() final;
  void OnMessage(const net::Message& msg) final;
  void OnCpuDown(int cpu) final;

  /// Used by AttachBackup: tells the primary a fresh backup has joined so it
  /// can send a full-state checkpoint.
  void NotifyBackupAttached();

 protected:
  /// Primary -> backup state delta over the interprocessor bus. No-op when
  /// there is no backup (the pair then runs exposed, like post-takeover).
  void SendCheckpoint(Bytes delta);

  // -- Pair hooks (override points) -------------------------------------------

  /// Called once from Attach on both members; register metric handles here.
  virtual void OnPairAttach() {}
  /// Called once at spawn on both members.
  virtual void OnPairStart() {}
  /// Backup side: apply a checkpoint delta from the primary.
  virtual void OnCheckpoint(const Slice& delta) { (void)delta; }
  /// Backup side: this member just became primary after the old primary's
  /// CPU failed. Complete any checkpointed in-flight work here.
  virtual void OnTakeover() {}
  /// Primary side: the backup's CPU failed — the pair now runs exposed.
  virtual void OnBackupLost() {}
  /// Primary side: a new backup joined; send it a full-state checkpoint.
  virtual void OnBackupAttached() {}
  /// Non-checkpoint message (request or one-way) addressed to this member.
  virtual void OnRequest(const net::Message& msg) { (void)msg; }
  /// Forwarded CPU-failure notice (after pair bookkeeping ran).
  virtual void OnPairCpuDown(int cpu) { (void)cpu; }

 private:
  std::string pair_name_;
  Role role_ = Role::kPrimary;
  net::ProcessId peer_;
  sim::MetricId m_checkpoints_sent_, m_checkpoints_received_;
  sim::MetricId m_takeovers_, m_backup_lost_;
};

/// Handles to the two members of a freshly spawned pair. After takeover the
/// surviving member keeps working; these raw pointers are only valid while
/// the respective CPU is up (tests re-find processes via the node).
template <typename T>
struct PairHandles {
  T* primary = nullptr;
  T* backup = nullptr;
};

/// Spawns a process-pair of T on two distinct CPUs and registers `name` to
/// the primary. Extra args are forwarded to both constructors.
template <typename T, typename... Args>
PairHandles<T> SpawnPair(Node* node, const std::string& name, int cpu_primary,
                         int cpu_backup, Args&&... args) {
  assert(cpu_primary != cpu_backup && "pair members must live on distinct CPUs");
  PairHandles<T> handles;
  handles.primary = node->Spawn<T>(cpu_primary, std::forward<Args>(args)...);
  handles.backup = node->Spawn<T>(cpu_backup, std::forward<Args>(args)...);
  if (handles.primary != nullptr) {
    handles.primary->ConfigurePair(name, PairedProcess::Role::kPrimary);
    node->RegisterName(name, handles.primary->id().pid);
  }
  if (handles.backup != nullptr) {
    handles.backup->ConfigurePair(name, PairedProcess::Role::kBackup);
  }
  if (handles.primary != nullptr && handles.backup != nullptr) {
    handles.primary->SetPeer(handles.backup->id());
    handles.backup->SetPeer(handles.primary->id());
  }
  return handles;
}

/// Revives fault tolerance after a takeover: spawns a new backup of T on
/// `cpu` and attaches it to the (currently exposed) primary, which then gets
/// OnBackupAttached to resynchronize state.
template <typename T, typename... Args>
T* AttachBackup(Node* node, T* primary, int cpu, Args&&... args) {
  assert(primary->IsPrimary());
  assert(cpu != primary->cpu());
  T* backup = node->Spawn<T>(cpu, std::forward<Args>(args)...);
  if (backup == nullptr) return nullptr;
  backup->ConfigurePair(primary->pair_name(), PairedProcess::Role::kBackup);
  backup->SetPeer(primary->id());
  primary->SetPeer(backup->id());
  primary->NotifyBackupAttached();
  return backup;
}

}  // namespace encompass::os

#endif  // ENCOMPASS_OS_PROCESS_PAIR_H_
