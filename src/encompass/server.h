// Application servers. "The structure of an application server program is
// simple and single-threaded: (1) read the transaction request message;
// (2) perform the data base function requested; (3) reply. A server must be
// 'context free' in the sense that it retains no memory from the servicing
// of one request to the next."
//
// Subclasses implement HandleRequest and finish with Respond. The current
// process transid is set from the incoming message before HandleRequest
// runs, so data base calls made through the FileSystem automatically carry
// the transaction.

#ifndef ENCOMPASS_ENCOMPASS_SERVER_H_
#define ENCOMPASS_ENCOMPASS_SERVER_H_

#include <memory>

#include "os/process.h"
#include "storage/partition.h"
#include "tmf/file_system.h"

namespace encompass::app {

/// Server protocol tags.
enum ServerTag : uint32_t {
  kServerRequest = net::kTagServer + 1,
};

/// Base class for application server programs.
class ServerProcess : public os::Process {
 public:
  explicit ServerProcess(const storage::Catalog* catalog) : catalog_(catalog) {}

  void OnMessage(const net::Message& msg) final {
    if (msg.tag != kServerRequest) return;
    // "When the application server reads the transaction request message,
    // the terminal's current transid becomes the current process transid."
    set_current_transid(msg.transid);
    busy_ = true;
    HandleRequest(msg);
  }

  bool busy() const { return busy_; }

 protected:
  /// Performs the data base function for one request; must end with a call
  /// to Respond(msg, ...). May issue asynchronous FileSystem calls first.
  virtual void HandleRequest(const net::Message& msg) = 0;

  /// Sends the reply and returns the server to the idle (context-free)
  /// state. A RestartRequested status tells the terminal program to execute
  /// RESTART-TRANSACTION (e.g. after a lock-wait timeout / deadlock).
  void Respond(const net::Message& request, const Status& status,
               Bytes reply = {}) {
    Reply(request, status, std::move(reply));
    set_current_transid(0);
    busy_ = false;
  }

  /// Lazily constructed file-system access layer.
  tmf::FileSystem& fs() {
    if (!fs_) fs_ = std::make_unique<tmf::FileSystem>(this, catalog_);
    return *fs_;
  }

  const storage::Catalog* catalog() const { return catalog_; }

 private:
  const storage::Catalog* catalog_;
  std::unique_ptr<tmf::FileSystem> fs_;
  bool busy_ = false;
};

}  // namespace encompass::app

#endif  // ENCOMPASS_ENCOMPASS_SERVER_H_
