// The event queue at the heart of the deterministic simulation: a priority
// queue of (time, sequence) -> callback, with cancellation support.

#ifndef ENCOMPASS_SIM_EVENT_QUEUE_H_
#define ENCOMPASS_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/sim_time.h"

namespace encompass::sim {

/// Handle for a scheduled event; used to cancel timers.
using EventId = uint64_t;

/// Min-heap of timed callbacks. Ties at the same timestamp fire in schedule
/// order (sequence number), which is what makes the simulation deterministic.
class EventQueue {
 public:
  /// Schedules `fn` to fire at absolute time `when`. Returns a handle.
  EventId Schedule(SimTime when, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled,
  /// or unknown event is a true no-op (no tombstone, no accounting change).
  /// O(1): a pending event is tombstoned and skipped on pop.
  void Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  /// Time of the earliest pending event; kNoDeadline if empty.
  SimTime NextTime() const;

  /// Pops and returns the earliest event's callback, setting *when to its
  /// scheduled time. Precondition: !empty().
  std::function<void()> PopNext(SimTime* when);

 private:
  struct Event {
    SimTime when;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  void SkipCancelled() const;

  mutable std::priority_queue<Event, std::vector<Event>, Later> heap_;
  // Ids currently scheduled and not yet fired or cancelled. Cancel consults
  // this set so a cancel racing an already-fired event cannot insert a
  // permanent tombstone or corrupt live_count_.
  std::unordered_set<EventId> pending_;
  mutable std::unordered_set<EventId> cancelled_;
  size_t live_count_ = 0;
  EventId next_id_ = 1;
};

}  // namespace encompass::sim

#endif  // ENCOMPASS_SIM_EVENT_QUEUE_H_
