#include "sim/simulation.h"

#include <algorithm>
#include <cassert>

namespace encompass::sim {

namespace {

// Seed derivation for per-node PRNG streams: golden-ratio mixing keeps the
// streams of adjacent node ids far apart. The formula is load-bearing: it is
// baked into the golden trace files.
uint64_t NodeSeed(uint64_t seed, uint16_t node) {
  return seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(node) + 1));
}

SimTime SatAdd(SimTime a, SimTime b) {
  return (a >= kNoDeadline - b) ? kNoDeadline : a + b;
}

}  // namespace

Simulation::Simulation(uint64_t seed, int parallel_workers)
    : mode_(parallel_workers <= 0  ? Mode::kLegacy
            : parallel_workers == 1 ? Mode::kSingleLoop
                                    : Mode::kParallel),
      seed_(seed),
      parallel_workers_(parallel_workers),
      rng_(seed) {
  loops_.push_back(std::make_unique<NodeLoop>(0, 0, NodeSeed(seed, 0)));
  loop_index_.emplace(0, 0);
}

Simulation::~Simulation() {
  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      stop_ = true;
    }
    pool_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }
}

NodeLoop* Simulation::EnsureLoop(uint16_t node) {
  auto it = loop_index_.find(node);
  if (it != loop_index_.end()) return loops_[it->second].get();
  // Loop creation mutates shared tables; it happens during topology setup
  // and serial phases, never inside a parallel round.
  assert(!in_round_);
  const auto shard = static_cast<uint32_t>(loops_.size());
  loops_.push_back(std::make_unique<NodeLoop>(node, shard, NodeSeed(seed_, node)));
  loop_index_.emplace(node, shard);
  loops_.back()->now = now_;
  stats_.EnsureShards(loops_.size());
  trace_.EnsureShards(loops_.size());
  trace_.EnsureNodeSpans(node);
  return loops_.back().get();
}

uint16_t Simulation::CtxNode() const {
  const internal::ExecContext* ec = internal::Exec();
  return (ec != nullptr && ec->sim == this) ? ec->node : 0;
}

EventId Simulation::ScheduleOn(uint16_t node, SimTime when,
                               std::function<void()> fn) {
  NodeLoop* loop =
      mode_ == Mode::kLegacy ? loops_[0].get() : EnsureLoop(node);
  // During a parallel round only the loop's own worker may touch its queue;
  // cross-node work must go through PostToNode.
  assert(!in_round_ || (internal::Exec() != nullptr &&
                        internal::Exec()->shard == loop->shard));
  const EventId seq = loop->queue.Schedule(when, node, std::move(fn));
  return (static_cast<EventId>(loop->shard) << kSeqBits) | seq;
}

EventId Simulation::After(SimDuration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return ScheduleOn(CtxNode(), Now() + delay, std::move(fn));
}

EventId Simulation::At(SimTime when, std::function<void()> fn) {
  const SimTime now = Now();
  return ScheduleOn(CtxNode(), when < now ? now : when, std::move(fn));
}

EventId Simulation::AfterOn(uint16_t node, SimDuration delay,
                            std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return ScheduleOn(node, Now() + delay, std::move(fn));
}

EventId Simulation::AtOn(uint16_t node, SimTime when,
                         std::function<void()> fn) {
  const SimTime now = Now();
  return ScheduleOn(node, when < now ? now : when, std::move(fn));
}

void Simulation::PostToNode(uint16_t dst, SimDuration delay,
                            std::function<void()> fn) {
  if (delay < 0) delay = 0;
  const SimTime when = Now() + delay;
  if (mode_ == Mode::kLegacy) {
    loops_[0]->queue.Schedule(when, dst, std::move(fn));
    return;
  }
  const internal::ExecContext* ec = internal::Exec();
  NodeLoop* src = (ec != nullptr && ec->sim == this) ? loops_[ec->shard].get()
                                                     : loops_[0].get();
  NodeLoop* dl = EnsureLoop(dst);
  // The key carries the sender's stamp: deliveries fire in send order, the
  // same order the legacy engine's global sequence produces.
  const EventKey key{when, src->node, src->queue.IssueSeq()};
  if (dl == src || !in_round_) {
    dl->queue.ScheduleKeyed(key, dst, std::move(fn));
    return;
  }
  // The receiver may be running on another thread: buffer the post. It
  // cannot be due within the receiver's current horizon — the horizon is at
  // most (sender's round start + lookahead), the post is at least lookahead
  // after the sender's current (>= round start) event — so draining inboxes
  // between rounds loses nothing.
  assert(delay >= lookahead_);
  std::lock_guard<std::mutex> lk(dl->inbox_mu);
  dl->inbox.push_back(NodeLoop::Post{key, dst, std::move(fn)});
}

void Simulation::Cancel(EventId id) {
  const auto shard = static_cast<uint32_t>(id >> kSeqBits);
  if (shard >= loops_.size()) return;
  NodeLoop* loop = loops_[shard].get();
  assert(!in_round_ || (internal::Exec() != nullptr &&
                        internal::Exec()->shard == loop->shard));
  loop->queue.Cancel(id & ((EventId{1} << kSeqBits) - 1));
}

void Simulation::ExecOne(NodeLoop* loop) {
  EventKey key;
  uint16_t exec_node = 0;
  std::function<void()> fn = loop->queue.PopNext(&key, &exec_node);
  loop->now = key.time;
  internal::ExecContext ctx;
  ctx.sim = this;
  ctx.stats = &stats_;
  ctx.trace = &trace_;
  ctx.shard = loop->shard;
  ctx.node = exec_node;
  ctx.key = key;
  internal::ExecContext* prev = internal::Exec();
  internal::SetExec(&ctx);
  fn();
  internal::SetExec(prev);
  ++loop->executed;
}

void Simulation::DrainInboxes() {
  for (auto& l : loops_) {
    std::lock_guard<std::mutex> lk(l->inbox_mu);
    for (NodeLoop::Post& p : l->inbox) {
      l->queue.ScheduleKeyed(p.key, p.exec_node, std::move(p.fn));
    }
    l->inbox.clear();
  }
}

bool Simulation::Step() {
  if (mode_ == Mode::kParallel) DrainInboxes();
  NodeLoop* best = nullptr;
  const EventKey* bk = nullptr;
  for (const auto& l : loops_) {
    const EventKey* k = l->queue.NextKey();
    if (k != nullptr && (bk == nullptr || *k < *bk)) {
      best = l.get();
      bk = k;
    }
  }
  if (best == nullptr) return false;
  ExecOne(best);
  if (best->now > now_) now_ = best->now;
  return true;
}

size_t Simulation::Run(size_t max_events) {
  if (mode_ == Mode::kParallel && max_events == SIZE_MAX) {
    const uint64_t before = ExecutedEvents();
    RunUntilParallel(kNoDeadline - 1);
    return static_cast<size_t>(ExecutedEvents() - before);
  }
  size_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

void Simulation::RunUntilSerial(SimTime deadline) {
  for (;;) {
    NodeLoop* best = nullptr;
    const EventKey* bk = nullptr;
    for (const auto& l : loops_) {
      const EventKey* k = l->queue.NextKey();
      if (k != nullptr && (bk == nullptr || *k < *bk)) {
        best = l.get();
        bk = k;
      }
    }
    if (best == nullptr || bk->time > deadline) break;
    ExecOne(best);
    if (best->now > now_) now_ = best->now;
  }
}

void Simulation::RunUntil(SimTime deadline) {
  if (mode_ == Mode::kParallel) {
    RunUntilParallel(deadline);
  } else {
    RunUntilSerial(deadline);
  }
  if (now_ < deadline) now_ = deadline;
  for (auto& l : loops_) {
    if (l->now < deadline) l->now = deadline;
  }
}

void Simulation::RunUntilParallel(SimTime deadline) {
  StartWorkers();
  for (;;) {
    DrainInboxes();

    // Serial phase: global-loop events sort before any node's events at the
    // same time, so run them while none of the node loops has earlier work.
    for (;;) {
      const EventKey* k0 = loops_[0]->queue.NextKey();
      if (k0 == nullptr || k0->time > deadline) break;
      SimTime tn = kNoDeadline;
      for (size_t i = 1; i < loops_.size(); ++i) {
        tn = std::min(tn, loops_[i]->queue.NextTime());
      }
      if (k0->time > tn) break;
      ExecOne(loops_[0].get());
      if (loops_[0]->now > now_) now_ = loops_[0]->now;
    }

    // Round setup: every loop may run strictly below
    //   min(cap, min over other loops of their next event time + lookahead)
    // where cap stops at the next global-loop event or the deadline. The
    // loop holding the globally minimal next event is always ready, so every
    // iteration makes progress.
    const SimTime t0 = loops_[0]->queue.NextTime();
    const SimTime cap = std::min(SatAdd(deadline, 1), t0);
    SimTime min1 = kNoDeadline, min2 = kNoDeadline;
    for (size_t i = 1; i < loops_.size(); ++i) {
      const SimTime e = loops_[i]->queue.NextTime();
      if (e < min1) {
        min2 = min1;
        min1 = e;
      } else if (e < min2) {
        min2 = e;
      }
    }
    if (min1 > deadline) break;  // no node work left within the deadline

    ready_.clear();
    for (size_t i = 1; i < loops_.size(); ++i) {
      NodeLoop* l = loops_[i].get();
      const SimTime e = l->queue.NextTime();
      if (e == kNoDeadline) continue;
      const SimTime others = (e == min1) ? min2 : min1;
      const SimTime h = std::min(cap, SatAdd(others, lookahead_));
      if (e < h) {
        l->horizon = h;
        ready_.push_back(l);
      }
    }
    assert(!ready_.empty());

    if (ready_.size() == 1 || threads_.empty()) {
      // Nothing to overlap: run on this thread without the round barrier.
      // Direct queue access elsewhere stays safe — workers are quiescent.
      for (NodeLoop* l : ready_) RunLoopTo(l, l->horizon);
    } else {
      uint64_t round;
      {
        std::lock_guard<std::mutex> lk(pool_mu_);
        round = ++round_seq_;
        round_next_ = 0;
        round_pending_ = ready_.size();
        in_round_ = true;
      }
      pool_cv_.notify_all();
      ClaimLoop(round);
      {
        std::unique_lock<std::mutex> lk(pool_mu_);
        done_cv_.wait(lk, [this] { return round_pending_ == 0; });
        // Workers only touch ready_ while in_round_ is set (checked under
        // the same mutex), so clearing it here fences the vector for the
        // next round's rebuild even against stragglers.
        in_round_ = false;
      }
    }
    for (NodeLoop* l : ready_) {
      if (l->now > now_) now_ = l->now;
    }
  }
}

void Simulation::RunLoopTo(NodeLoop* loop, SimTime horizon) {
  for (;;) {
    const EventKey* k = loop->queue.NextKey();
    if (k == nullptr || k->time >= horizon) break;
    ExecOne(loop);
  }
}

void Simulation::StartWorkers() {
  if (!threads_.empty() || parallel_workers_ < 2) return;
  const int n = parallel_workers_ - 1;  // the coordinator participates
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

void Simulation::WorkerMain() {
  uint64_t last_seen = 0;
  for (;;) {
    uint64_t round;
    {
      std::unique_lock<std::mutex> lk(pool_mu_);
      pool_cv_.wait(lk, [&] { return stop_ || round_seq_ != last_seen; });
      if (stop_) return;
      round = round_seq_;
      last_seen = round;
    }
    ClaimLoop(round);
  }
}

void Simulation::ClaimLoop(uint64_t round) {
  for (;;) {
    NodeLoop* l = nullptr;
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      // The round check precedes any access to ready_: a thread that
      // lagged into a later round must not touch the vector the
      // coordinator rebuilds between rounds (it only does so with
      // in_round_ clear, under this mutex).
      if (!in_round_ || round_seq_ != round) return;
      if (round_next_ >= ready_.size()) return;
      l = ready_[round_next_++];
    }
    RunLoopTo(l, l->horizon);
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (--round_pending_ == 0) done_cv_.notify_all();
  }
}

bool Simulation::Idle() const {
  for (const auto& l : loops_) {
    if (!l->queue.empty()) return false;
  }
  return true;  // inboxes are empty whenever no round is executing
}

size_t Simulation::PendingEvents() const {
  size_t n = 0;
  for (const auto& l : loops_) n += l->queue.size();
  return n;
}

uint64_t Simulation::ExecutedEvents() const {
  uint64_t n = 0;
  for (const auto& l : loops_) n += l->executed;
  return n;
}

}  // namespace encompass::sim
