// The paper's distributed data base application (Section "A Distributed
// Data Base Application", Figure 4): Tandem Manufacturing's four-site
// system. Each node holds a *copy* of the global files (Item Master, Bill
// of Materials, Purchase Order Header) and its own local files (Stock,
// Work-in-Progress, Transaction History, PO Detail).
//
// Design compromise reproduced here: replica consistency is traded for
// node autonomy. Reads always use the local copy. Each global record has a
// *master node* (stored in the record); an update runs as a TMF transaction
// at the master, which updates the master copy and enqueues deferred
// updates for the other copies in a local *suspense file*. A dedicated
// *suspense monitor* process drains the suspense file in order, sending
// each deferred update (in its own TMF transaction that also deletes the
// suspense entry) to the non-master node when that node is accessible.
// When a partition heals and all accumulated updates are applied, the
// copies converge.

#ifndef ENCOMPASS_APPS_MANUFACTURING_MANUFACTURING_H_
#define ENCOMPASS_APPS_MANUFACTURING_MANUFACTURING_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "encompass/deployment.h"
#include "encompass/screen_program.h"
#include "encompass/server.h"
#include "encompass/server_class.h"

namespace encompass::apps::manufacturing {

/// The global (replicated) files of Figure 4.
extern const std::vector<std::string> kGlobalFiles;
/// The local (per-site) files of Figure 4.
extern const std::vector<std::string> kLocalFiles;

/// Catalog/physical name of node `n`'s copy of a file.
std::string CopyName(const std::string& file, net::NodeId n);
/// Name of node `n`'s suspense file.
std::string SuspenseName(net::NodeId n);
/// Name of node `n`'s manufacturing volume.
std::string MfgVolume(net::NodeId n);
/// Name of node `n`'s global-update server class.
std::string GlobalServerClass();

/// Creates the manufacturing volumes/files on already-added nodes and
/// registers every copy in the catalog. Call after Deployment::AddNode for
/// each node in `nodes`.
Status DeployManufacturing(app::Deployment* deploy,
                           const std::vector<net::NodeId>& nodes);

/// Seeds one global record (value + master) on every node's copy, directly
/// into the volumes (setup convenience).
void SeedGlobalRecord(app::Deployment* deploy,
                      const std::vector<net::NodeId>& nodes,
                      const std::string& file, const std::string& key,
                      const std::string& value, net::NodeId master);

/// Seeds one local record on one node.
void SeedLocalRecord(app::Deployment* deploy, net::NodeId node,
                     const std::string& file, const std::string& key,
                     const std::string& value);

/// Reads node `n`'s copy of a global record's "val" field straight from the
/// volume (verification helper). Empty optional if missing.
std::optional<std::string> CopyValue(app::Deployment* deploy, net::NodeId n,
                                     const std::string& file,
                                     const std::string& key);

/// Number of queued deferred updates in node `n`'s suspense file.
size_t SuspenseDepth(app::Deployment* deploy, net::NodeId n);

/// True when every node's copy of file/key carries the same "val".
bool Converged(app::Deployment* deploy, const std::vector<net::NodeId>& nodes,
               const std::string& file, const std::string& key);

/// The global-file application server. Ops (request = storage::Record):
///   gread   {file,key}             read the local copy
///   gupdate {file,key,val}         update via the record's master node
///   dupdate {file,key,val}         apply a deferred update to the local copy
///   lupdate {file,key,val}         update a local (non-replicated) file
///   lread   {file,key}             read a local file
class MfgServer : public app::ServerProcess {
 public:
  MfgServer(const storage::Catalog* catalog, std::vector<net::NodeId> nodes)
      : ServerProcess(catalog), nodes_(std::move(nodes)) {}

 protected:
  void HandleRequest(const net::Message& msg) override;

 private:
  void HandleGlobalUpdate(const net::Message& msg, const storage::Record& req);
  void MasterApply(const net::Message& msg, const storage::Record& req,
                   const storage::Record& current);
  /// Enqueues deferred updates for every non-master copy, one at a time
  /// (the suspense sequence counter serializes the order).
  void EnqueueDeferred(const net::Message& msg, const storage::Record& req,
                       const std::string& master, std::vector<net::NodeId> rest);

  std::vector<net::NodeId> nodes_;
};

/// Registers the MfgServer class on a node.
app::ServerClassRouter* AddMfgServerClass(app::Deployment* deploy,
                                          net::NodeId node,
                                          const std::vector<net::NodeId>& nodes);

/// Configuration of the suspense monitor.
struct SuspenseMonitorConfig {
  std::vector<net::NodeId> nodes;
  SimDuration scan_interval = Millis(250);
};

/// The suspense monitor: "a dedicated process ... scans the suspense file
/// looking for work to do." One per node; drains deferred updates in
/// suspense-file order to each accessible node.
class SuspenseMonitor : public os::Process {
 public:
  explicit SuspenseMonitor(const storage::Catalog* catalog,
                           SuspenseMonitorConfig config)
      : catalog_(catalog), config_(std::move(config)) {}

  void OnStart() override;
  void OnNodeDown(net::NodeId peer) override { unreachable_.insert(peer); }
  void OnNodeUp(net::NodeId peer) override {
    unreachable_.erase(peer);
    if (!scanning_) Scan();
  }

  uint64_t applied() const { return applied_; }

 private:
  void Scan();
  /// Processes the first pending entry at or after `from_key`; reschedules.
  void ProcessNext(const Bytes& from_key);
  void ApplyEntry(const Bytes& entry_key, const storage::Record& entry);
  void FinishScan();

  const storage::Catalog* catalog_;
  SuspenseMonitorConfig config_;
  std::unique_ptr<tmf::FileSystem> fs_;
  std::set<net::NodeId> unreachable_;
  bool scanning_ = false;
  uint64_t applied_ = 0;
};

/// Spawns a suspense monitor on the node (CPU 1 by convention).
SuspenseMonitor* AddSuspenseMonitor(app::Deployment* deploy, net::NodeId node,
                                    const std::vector<net::NodeId>& nodes,
                                    SimDuration scan_interval = Millis(250));

/// Terminal program for local work at a site: update a stock record.
app::ScreenProgram MakeLocalStockProgram(net::NodeId node, int num_items);

/// Terminal program for a (rare) global update: set a new value on a global
/// record through the master-node protocol.
app::ScreenProgram MakeGlobalUpdateProgram(net::NodeId node,
                                           const std::string& file,
                                           const std::string& key);

}  // namespace encompass::apps::manufacturing

#endif  // ENCOMPASS_APPS_MANUFACTURING_MANUFACTURING_H_
