// Tests for audit records, audit trails (force/volatility/purge), and the
// Monitor Audit Trail.

#include <gtest/gtest.h>

#include "audit/audit_process.h"
#include "audit/audit_record.h"
#include "audit/audit_trail.h"

namespace encompass::audit {
namespace {

AuditRecord MakeRecord(uint64_t seq, const std::string& key) {
  AuditRecord rec;
  rec.transid = Transid{1, 0, seq};
  rec.volume = "$DATA1";
  rec.file = "acct";
  rec.op = storage::MutationOp::kUpdate;
  rec.key = ToBytes(key);
  rec.before = ToBytes("old");
  rec.after = ToBytes("new");
  return rec;
}

TEST(AuditRecordTest, EncodeDecodeRoundTrip) {
  AuditRecord rec = MakeRecord(42, "acct-7");
  rec.lsn = 99;
  Bytes encoded = rec.Encode();
  Slice in(encoded);
  auto decoded = AuditRecord::Decode(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(decoded->transid, rec.transid);
  EXPECT_EQ(decoded->volume, "$DATA1");
  EXPECT_EQ(decoded->file, "acct");
  EXPECT_EQ(decoded->op, storage::MutationOp::kUpdate);
  EXPECT_EQ(decoded->key, rec.key);
  EXPECT_EQ(decoded->before, rec.before);
  EXPECT_EQ(decoded->after, rec.after);
  EXPECT_EQ(decoded->lsn, 99u);
}

TEST(AuditRecordTest, DecodeRejectsTruncation) {
  Bytes encoded = MakeRecord(1, "k").Encode();
  encoded.resize(encoded.size() / 2);
  Slice in(encoded);
  EXPECT_FALSE(AuditRecord::Decode(&in).ok());
}

TEST(CompletionRecordTest, RoundTrip) {
  CompletionRecord rec{Transid{3, 2, 17}, Completion::kAborted};
  Bytes encoded = rec.Encode();
  Slice in(encoded);
  auto decoded = CompletionRecord::Decode(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->transid, rec.transid);
  EXPECT_EQ(decoded->completion, Completion::kAborted);
}

TEST(AuditBatchTest, RoundTripAndCorruption) {
  std::vector<AuditRecord> batch{MakeRecord(1, "a"), MakeRecord(2, "b")};
  Bytes encoded = EncodeAuditBatch(batch);
  auto decoded = DecodeAuditBatch(Slice(encoded));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[1].transid.seq, 2u);
  encoded.resize(3);
  EXPECT_FALSE(DecodeAuditBatch(Slice(encoded)).ok());
}

TEST(AuditTrailTest, AppendAssignsMonotoneLsns) {
  AuditTrail trail("AT1");
  EXPECT_EQ(trail.Append(MakeRecord(1, "a")), 1u);
  EXPECT_EQ(trail.Append(MakeRecord(1, "b")), 2u);
  EXPECT_EQ(trail.Append(MakeRecord(2, "c")), 3u);
  EXPECT_EQ(trail.record_count(), 3u);
  EXPECT_EQ(trail.next_lsn(), 4u);
}

TEST(AuditTrailTest, ForceMovesDurableBoundary) {
  AuditTrail trail("AT1");
  trail.Append(MakeRecord(1, "a"));
  trail.Append(MakeRecord(1, "b"));
  EXPECT_EQ(trail.durable_lsn(), 0u);
  EXPECT_EQ(trail.Force(), 2u);
  EXPECT_EQ(trail.durable_lsn(), 2u);
  EXPECT_EQ(trail.Force(), 0u);  // nothing new
}

TEST(AuditTrailTest, DropVolatileLosesUnforcedSuffix) {
  AuditTrail trail("AT1");
  trail.Append(MakeRecord(1, "a"));
  trail.Force();
  trail.Append(MakeRecord(1, "b"));
  trail.Append(MakeRecord(1, "c"));
  trail.DropVolatile();
  EXPECT_EQ(trail.record_count(), 1u);
  EXPECT_EQ(trail.next_lsn(), 2u);
  // New appends continue from the durable boundary.
  EXPECT_EQ(trail.Append(MakeRecord(1, "d")), 2u);
}

TEST(AuditTrailTest, RecordsForTransactionFiltersByTransid) {
  AuditTrail trail("AT1");
  trail.Append(MakeRecord(1, "a"));
  trail.Append(MakeRecord(2, "b"));
  trail.Append(MakeRecord(1, "c"));
  auto recs = trail.RecordsForTransaction(Transid{1, 0, 1});
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(ToString(recs[0].key), "a");
  EXPECT_EQ(ToString(recs[1].key), "c");
}

TEST(AuditTrailTest, DurableRecordsAfterScansForwardOnly) {
  AuditTrail trail("AT1");
  for (int i = 0; i < 5; ++i) trail.Append(MakeRecord(1, std::to_string(i)));
  trail.Force();
  trail.Append(MakeRecord(1, "volatile"));
  auto recs = trail.DurableRecordsAfter(2);
  ASSERT_EQ(recs.size(), 3u);  // lsns 3,4,5; the unforced 6th is excluded
  EXPECT_EQ(recs[0].lsn, 3u);
  EXPECT_EQ(recs[2].lsn, 5u);
}

TEST(AuditTrailTest, FileRolloverAndPurge) {
  AuditTrailConfig cfg;
  cfg.records_per_file = 10;
  AuditTrail trail("AT1", cfg);
  for (int i = 0; i < 35; ++i) trail.Append(MakeRecord(1, std::to_string(i)));
  EXPECT_EQ(trail.file_count(), 4u);
  trail.Force();
  // Purge everything up to LSN 25: the first two full files (1-10, 11-20) go.
  size_t purged = trail.Purge(25);
  EXPECT_EQ(purged, 2u);
  EXPECT_EQ(trail.file_count(), 2u);
  EXPECT_EQ(trail.first_file_number(), 3u);
  // Remaining records still scannable.
  EXPECT_EQ(trail.DurableRecordsAfter(0).size(), 15u);
}

TEST(AuditTrailTest, PurgeKeepsUnforcedFiles) {
  AuditTrailConfig cfg;
  cfg.records_per_file = 5;
  AuditTrail trail("AT1", cfg);
  for (int i = 0; i < 12; ++i) trail.Append(MakeRecord(1, std::to_string(i)));
  // Nothing forced: nothing purgeable.
  EXPECT_EQ(trail.Purge(100), 0u);
}

TEST(MonitorAuditTrailTest, CommitAndAbortLookup) {
  MonitorAuditTrail mat;
  EXPECT_EQ(mat.Lookup(Transid{1, 0, 1}), -1);
  mat.AppendForced(CompletionRecord{Transid{1, 0, 1}, Completion::kCommitted});
  mat.AppendForced(CompletionRecord{Transid{1, 0, 2}, Completion::kAborted});
  EXPECT_EQ(mat.Lookup(Transid{1, 0, 1}), 1);
  EXPECT_EQ(mat.Lookup(Transid{1, 0, 2}), 0);
  EXPECT_EQ(mat.Lookup(Transid{1, 0, 3}), -1);
  EXPECT_EQ(mat.size(), 2u);
}

}  // namespace
}  // namespace encompass::audit
