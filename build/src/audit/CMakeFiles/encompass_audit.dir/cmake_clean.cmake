file(REMOVE_RECURSE
  "CMakeFiles/encompass_audit.dir/audit_process.cc.o"
  "CMakeFiles/encompass_audit.dir/audit_process.cc.o.d"
  "CMakeFiles/encompass_audit.dir/audit_record.cc.o"
  "CMakeFiles/encompass_audit.dir/audit_record.cc.o.d"
  "CMakeFiles/encompass_audit.dir/audit_trail.cc.o"
  "CMakeFiles/encompass_audit.dir/audit_trail.cc.o.d"
  "libencompass_audit.a"
  "libencompass_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encompass_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
