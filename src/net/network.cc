#include "net/network.h"

#include <cassert>
#include <deque>

#include "common/logging.h"

namespace encompass::net {

Network::Metrics::Metrics(sim::Stats& stats)
    : sent(stats.RegisterCounter("net.sent")),
      delivered(stats.RegisterCounter("net.delivered")),
      retransmits(stats.RegisterCounter("net.retransmits")),
      undeliverable(stats.RegisterCounter("net.undeliverable")),
      link_cut(stats.RegisterCounter("net.link_cut")),
      link_restored(stats.RegisterCounter("net.link_restored")),
      node_isolated(stats.RegisterCounter("net.node_isolated")),
      node_reconnected(stats.RegisterCounter("net.node_reconnected")),
      route_cache_hits(stats.RegisterCounter("net.route_cache_hits")),
      route_cache_misses(stats.RegisterCounter("net.route_cache_misses")),
      route_hops(stats.RegisterHistogram("net.route_hops")) {}

void Network::AddNode(NodeId id, DeliverFn deliver) {
  nodes_[id] = std::move(deliver);
  sim_->EnsureNode(id);  // the node's event loop exists before any traffic
  // Pre-create the per-source routing table entry: after setup the map's
  // structure is frozen, so node events (possibly on worker threads) only
  // ever touch their own node's mapped value.
  route_tables_[id];
  ++topology_version_;
}

void Network::AddLink(NodeId a, NodeId b, SimDuration latency) {
  assert(nodes_.count(a) && nodes_.count(b) && a != b);
  const SimDuration l = latency > 0 ? latency : config_.link_latency;
  links_[Key(a, b)] = Link{l, true};
  // Feed the conservative engine's per-pair lookahead table: no cross-node
  // interaction between two nodes can take effect sooner than the least
  // declared-link path between them.
  sim_->NoteLinkLatency(a, b, l);
  ++topology_version_;
}

void Network::SetLinkUp(NodeId a, NodeId b, bool up) {
  auto it = links_.find(Key(a, b));
  if (it == links_.end() || it->second.up == up) return;
  auto before = ReachableSets();
  it->second.up = up;
  ++topology_version_;
  sim_->GetStats().Incr(up ? metrics_.link_restored : metrics_.link_cut);
  NotifyReachabilityChanges(before);
}

void Network::IsolateNode(NodeId id) {
  auto before = ReachableSets();
  bool changed = false;
  for (auto& [key, link] : links_) {
    if ((key.a == id || key.b == id) && link.up) {
      link.up = false;
      changed = true;
    }
  }
  if (changed) {
    ++topology_version_;
    sim_->GetStats().Incr(metrics_.node_isolated);
    NotifyReachabilityChanges(before);
  }
}

void Network::ReconnectNode(NodeId id) {
  auto before = ReachableSets();
  bool changed = false;
  for (auto& [key, link] : links_) {
    if ((key.a == id || key.b == id) && !link.up) {
      link.up = true;
      changed = true;
    }
  }
  if (changed) {
    ++topology_version_;
    sim_->GetStats().Incr(metrics_.node_reconnected);
    NotifyReachabilityChanges(before);
  }
}

bool Network::LinkUp(NodeId a, NodeId b) const {
  auto it = links_.find(Key(a, b));
  return it != links_.end() && it->second.up;
}

bool Network::Reachable(NodeId from, NodeId to) const {
  if (from == to) return nodes_.count(from) > 0;
  if (!nodes_.count(from) || !nodes_.count(to)) return false;
  return TableFor(from).parent.count(to) > 0;
}

const Network::RouteTable& Network::TableFor(NodeId from) const {
  RouteTable& table = route_tables_[from];
  if (table.version == topology_version_) {
    sim_->GetStats().Incr(metrics_.route_cache_hits);
    return table;
  }
  sim_->GetStats().Incr(metrics_.route_cache_misses);
  // Full BFS over up links builds the min-hop parent forest rooted at `from`;
  // ties break toward smaller node ids because links_ is an ordered map —
  // deterministic routing. Parents are assigned at first discovery, so the
  // forest yields the same paths a per-query BFS would.
  table.parent.clear();
  table.parent[from] = from;
  std::deque<NodeId> frontier{from};
  while (!frontier.empty()) {
    NodeId cur = frontier.front();
    frontier.pop_front();
    for (const auto& [key, link] : links_) {
      if (!link.up) continue;
      NodeId next;
      if (key.a == cur) next = key.b;
      else if (key.b == cur) next = key.a;
      else continue;
      if (table.parent.count(next)) continue;
      table.parent[next] = cur;
      frontier.push_back(next);
    }
  }
  table.version = topology_version_;
  return table;
}

std::vector<NodeId> Network::Route(NodeId from, NodeId to) const {
  if (!nodes_.count(from) || !nodes_.count(to)) return {};
  if (from == to) return {from};
  const RouteTable& table = TableFor(from);
  auto it = table.parent.find(to);
  if (it == table.parent.end()) return {};
  std::vector<NodeId> path{to};
  for (NodeId n = to; n != from; n = table.parent.at(n)) {
    path.push_back(table.parent.at(n));
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void Network::Send(Message msg) {
  sim_->GetStats().Incr(metrics_.sent);
  if (config_.track_messages) {
    // Counted at first send, not per retransmit: this prices the protocol's
    // message complexity, not the loss schedule. Attribution prefers the
    // explicit transid stamp and falls back to the causal trace context.
    const uint64_t transid = msg.transid != 0 ? msg.transid : msg.trace.transid;
    std::lock_guard<std::mutex> lock(track_mutex_);
    ++per_tag_msgs_[msg.tag];
    if (transid != 0) ++per_txn_msgs_[transid];
  }
  Transmit(std::move(msg), 0);
}

std::map<uint64_t, uint64_t> Network::PerTxnMessages() const {
  std::lock_guard<std::mutex> lock(track_mutex_);
  return per_txn_msgs_;
}

std::map<uint32_t, uint64_t> Network::PerTagMessages() const {
  std::lock_guard<std::mutex> lock(track_mutex_);
  return per_tag_msgs_;
}

void Network::Transmit(Message msg, int attempt) {
  // Transmit always runs at the source node: the loss draw comes from the
  // source's PRNG stream and retries are source-local timers, so a message's
  // fate depends only on source-local state (plus the shared topology).
  auto path = Route(msg.src.node, msg.dst.node);
  if (path.empty() ||
      (config_.loss_probability > 0 &&
       sim_->RngFor(msg.src.node).Bernoulli(config_.loss_probability))) {
    // No route now (or the transmission was lost): the end-to-end protocol
    // retries with pacing; after max_retries the sender is notified.
    if (attempt >= config_.max_retries) {
      sim_->GetStats().Incr(metrics_.undeliverable);
      if (msg.request_id != 0) {
        Message fail;
        fail.src = ProcessId{msg.dst.node, 0};
        fail.dst = Address(msg.src);
        fail.tag = kTagSendFailed;
        fail.reply_to = msg.request_id;
        fail.status = Status::Code::kPartitioned;
        auto it = nodes_.find(msg.src.node);
        if (it != nodes_.end()) {
          // Local notification at the sender's node: no network traversal.
          sim_->After(Micros(1), [deliver = it->second, fail]() { deliver(fail); });
        }
      }
      return;
    }
    sim_->GetStats().Incr(metrics_.retransmits);
    sim_->After(config_.retry_interval,
                [this, msg = std::move(msg), attempt]() mutable {
                  Transmit(std::move(msg), attempt + 1);
                });
    return;
  }

  SimDuration latency = 0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    auto it = links_.find(Key(path[i], path[i + 1]));
    latency += (it != links_.end()) ? it->second.latency : config_.link_latency;
  }
  sim_->GetStats().Record(metrics_.route_hops, static_cast<int64_t>(path.size() - 1));

  NodeId dst_node = msg.dst.node;
  // End-to-end verification is split between the two endpoints so that each
  // side only touches its own node's state:
  //   * the packet itself is delivered at the destination iff the topology
  //     still connects the endpoints at arrival time (checked against the
  //     destination's routing table — reachability is symmetric);
  //   * a source-local probe fires at the same instant and, if the path is
  //     gone, treats the attempt as failed and drives the retransmit (the
  //     pre-split code ran this retransmit logic at the destination).
  // Both events see the same topology version: topology mutations at the
  // same timestamp are global events that order before node events.
  sim_->PostToNode(dst_node, latency, [this, msg, dst_node]() mutable {
    if (!Reachable(dst_node, msg.src.node)) return;  // dead packet
    sim_->GetStats().Incr(metrics_.delivered);
    auto it = nodes_.find(dst_node);
    if (it != nodes_.end()) it->second(std::move(msg));
  });
  sim_->After(latency, [this, msg = std::move(msg), attempt]() mutable {
    if (!Route(msg.src.node, msg.dst.node).empty()) return;  // delivered
    Transmit(std::move(msg), attempt + 1);
  });
}

std::map<NodeId, std::set<NodeId>> Network::ReachableSets() const {
  std::map<NodeId, std::set<NodeId>> result;
  for (const auto& [id, fn] : nodes_) {
    (void)fn;
    for (const auto& [other, fn2] : nodes_) {
      (void)fn2;
      if (id != other && Reachable(id, other)) result[id].insert(other);
    }
  }
  return result;
}

void Network::NotifyReachabilityChanges(
    const std::map<NodeId, std::set<NodeId>>& before) {
  if (!reachability_fn_) return;
  auto after = ReachableSets();
  for (const auto& [id, fn] : nodes_) {
    (void)fn;
    const auto& was = before.count(id) ? before.at(id) : std::set<NodeId>{};
    const auto& now = after.count(id) ? after.at(id) : std::set<NodeId>{};
    for (NodeId peer : was) {
      if (!now.count(peer)) reachability_fn_(id, peer, false);
    }
    for (NodeId peer : now) {
      if (!was.count(peer)) reachability_fn_(id, peer, true);
    }
  }
}

}  // namespace encompass::net
