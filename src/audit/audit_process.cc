#include "audit/audit_process.h"

#include "common/coding.h"
#include "common/logging.h"

namespace encompass::audit {

Bytes EncodeAuditBatch(const std::vector<AuditRecord>& records) {
  Bytes out;
  PutVarint32(&out, static_cast<uint32_t>(records.size()));
  for (const auto& rec : records) {
    PutLengthPrefixed(&out, Slice(rec.Encode()));
  }
  return out;
}

Result<std::vector<AuditRecord>> DecodeAuditBatch(const Slice& payload) {
  Slice in = payload;
  uint32_t n;
  if (!GetVarint32(&in, &n)) return DecodeError("audit batch count");
  // Every record is length-prefixed (>= 1 byte each): a count exceeding the
  // remaining payload is malformed, and reserving it would be an allocation
  // bomb on a corrupt message.
  if (static_cast<uint64_t>(n) > in.size()) {
    return DecodeError("audit batch count exceeds payload");
  }
  std::vector<AuditRecord> records;
  records.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Slice body;
    if (!GetLengthPrefixed(&in, &body)) return DecodeError("audit batch entry");
    auto rec = AuditRecord::Decode(&body);
    if (!rec.ok()) return rec.status();
    records.push_back(std::move(*rec));
  }
  return records;
}

void AuditProcess::OnPairAttach() {
  m_.appended = stats().RegisterCounter("audit.appended");
  m_.forces = stats().RegisterCounter("audit.forces");
  m_.forced_records = stats().RegisterCounter("audit.forced_records");
  m_.files_purged = stats().RegisterCounter("audit.files_purged");
}

void AuditProcess::OnRequest(const net::Message& msg) {
  // The backup is passive: it only mirrors via checkpoints. (The trail
  // itself is shared disc state, so there is nothing to mirror here beyond
  // the name registration handled by the pair base class.)
  if (!IsPrimary()) {
    Reply(msg, Status::Unavailable("backup audit process"));
    return;
  }
  switch (msg.tag) {
    case kAuditAppend: HandleAppend(msg); break;
    case kAuditForce: HandleForce(msg); break;
    case kAuditFetchTxn: HandleFetch(msg); break;
    case kAuditPurge: {
      // Purging is safe only for audit written before the last archive
      // point; the caller (operations / the archive utility) owns that
      // decision, as in real TMF.
      Slice in(msg.payload);
      uint64_t up_to_lsn;
      if (!GetFixed64(&in, &up_to_lsn)) {
        Reply(msg, Status::InvalidArgument("bad purge payload"));
        break;
      }
      size_t purged = config_.trail->Purge(up_to_lsn);
      stats().Incr(m_.files_purged, static_cast<int64_t>(purged));
      Bytes reply;
      PutVarint64(&reply, purged);
      Reply(msg, Status::Ok(), reply);
      break;
    }
    default:
      Reply(msg, Status::InvalidArgument("unknown audit tag"));
  }
}

void AuditProcess::HandleAppend(const net::Message& msg) {
  auto batch = DecodeAuditBatch(Slice(msg.payload));
  if (!batch.ok()) {
    LOG_WARN << DebugName() << ": bad append batch: " << batch.status().ToString();
    Reply(msg, batch.status());
    return;
  }
  for (auto& rec : *batch) {
    config_.trail->Append(std::move(rec));
  }
  stats().Incr(m_.appended, static_cast<int64_t>(batch->size()));
  if (msg.request_id != 0) Reply(msg, Status::Ok());
}

void AuditProcess::HandleForce(const net::Message& msg) {
  size_t forced = config_.trail->Force();
  stats().Incr(m_.forces);
  stats().Incr(m_.forced_records, static_cast<int64_t>(forced));
  // The force is a physical sequential write; reply when it completes.
  net::ProcessId requester = msg.src;
  uint64_t reply_to = msg.request_id;
  uint32_t tag = msg.tag;
  SetTimer(config_.force_latency, [this, requester, reply_to, tag]() {
    SendReply(requester, tag, reply_to, Status::Ok());
  });
}

void AuditProcess::HandleFetch(const net::Message& msg) {
  Slice in(msg.payload);
  uint64_t packed;
  if (!GetFixed64(&in, &packed)) {
    Reply(msg, Status::InvalidArgument("bad fetch payload"));
    return;
  }
  auto records = config_.trail->RecordsForTransaction(Transid::Unpack(packed));
  Reply(msg, Status::Ok(), EncodeAuditBatch(records));
}

}  // namespace encompass::audit
