file(REMOVE_RECURSE
  "libencompass_common.a"
)
