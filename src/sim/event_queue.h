// The event queue at the heart of the deterministic simulation: a priority
// queue of EventKey -> callback, with cancellation support.
//
// Events are totally ordered by EventKey = (time, origin, seq):
//   * time   — the simulated firing time;
//   * origin — the node whose schedule sequence stamped the event (0 for
//     global/serial work). Ties at the same time order by origin, so global
//     events run before any node's events at the same instant;
//   * seq    — the origin's monotone schedule counter; ties within one
//     origin fire in schedule order.
// The key is assigned when the event is scheduled, by the scheduling node —
// never by the executing thread — so the total order is a property of the
// simulation's history, identical no matter how execution is interleaved.
//
// Hot-path representation: callbacks are EventFn (inline small-buffer
// storage, no heap allocation for typical captures), and cancellation uses
// generation-stamped slots instead of hashed id sets. Every locally
// scheduled event borrows a slot from a free list; its EventId packs
// (generation << kSlotBits) | slot. Cancel and fire both retire the slot by
// bumping its generation, so a stale id — already fired, already cancelled,
// or plain garbage — can never match a live slot: the no-op guarantees cost
// one array load instead of two hash probes per schedule/cancel/pop.

#ifndef ENCOMPASS_SIM_EVENT_QUEUE_H_
#define ENCOMPASS_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "common/sim_time.h"
#include "sim/event_fn.h"

namespace encompass::sim {

/// Handle for a scheduled event; used to cancel timers. Opaque; never 0 for
/// a live event (generations start at 1), so 0 can serve as "no timer".
using EventId = uint64_t;

/// Total order on simulation events; see file comment.
struct EventKey {
  SimTime time = 0;
  uint16_t origin = 0;
  uint64_t seq = 0;

  friend bool operator<(const EventKey& a, const EventKey& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.origin != b.origin) return a.origin < b.origin;
    return a.seq < b.seq;
  }
};

/// Min-heap of timed callbacks ordered by EventKey. One EventQueue belongs
/// to one event loop (one node, or the global loop); `origin` stamps the
/// keys of locally scheduled events.
class EventQueue {
 public:
  /// EventId layout: low kSlotBits = slot index, rest = that slot's
  /// generation at schedule time. Simulation packs the owning loop's shard
  /// above these, so local ids must stay within kSlotBits + kGenBits.
  static constexpr int kSlotBits = 20;
  static constexpr int kGenBits = 28;

  explicit EventQueue(uint16_t origin = 0) : origin_(origin) {}

  uint16_t origin() const { return origin_; }

  /// Schedules `fn` to fire at absolute time `when`, stamped with this
  /// queue's origin and next sequence number. `exec_node` attributes the
  /// work to a node for PRNG/stats/trace purposes (defaults to the origin).
  /// Returns a handle for Cancel.
  EventId Schedule(SimTime when, EventFn fn) {
    return Schedule(when, origin_, std::move(fn));
  }
  EventId Schedule(SimTime when, uint16_t exec_node, EventFn fn);

  /// Inserts an event carrying a foreign key (a cross-node post stamped by
  /// its sender). Keyed events are not cancellable: their seq lives in the
  /// sender's numbering and they carry no local slot.
  void ScheduleKeyed(const EventKey& key, uint16_t exec_node, EventFn fn);

  /// Draws the next local sequence number; used to stamp keys of cross-node
  /// posts originating here.
  uint64_t IssueSeq() { return next_seq_++; }

  /// Cancels a pending locally-scheduled event. Cancelling an already-fired,
  /// already-cancelled, or unknown event is a true no-op (no tombstone, no
  /// accounting change): the id's generation no longer matches its slot.
  /// O(1); the dead heap entry is dropped when it reaches the top.
  void Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  /// Key of the earliest pending event; nullptr if empty.
  const EventKey* NextKey() const;

  /// Time of the earliest pending event; kNoDeadline if empty.
  SimTime NextTime() const;

  /// Pops and returns the earliest event's callback, setting *key to its
  /// event key and *exec_node to its attribution. Precondition: !empty().
  EventFn PopNext(EventKey* key, uint16_t* exec_node);

  /// Back-compat pop that only reports the firing time.
  EventFn PopNext(SimTime* when) {
    EventKey key;
    uint16_t exec_node;
    EventFn fn = PopNext(&key, &exec_node);
    *when = key.time;
    return fn;
  }

 private:
  static constexpr uint32_t kNoSlot = 0xffffffffu;
  static constexpr uint32_t kGenMask = (1u << kGenBits) - 1;

  struct Event {
    EventKey key;
    uint32_t slot;  // kNoSlot for keyed (non-cancellable) inserts
    uint32_t gen;   // the slot's generation when scheduled
    uint16_t exec_node;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const { return b.key < a.key; }
  };

  bool Dead(const Event& e) const {
    return e.slot != kNoSlot && slots_[e.slot] != e.gen;
  }
  void SkipCancelled() const;
  void RetireSlot(uint32_t slot) {
    slots_[slot] = (slots_[slot] + 1) & kGenMask;
    if (slots_[slot] == 0) slots_[slot] = 1;  // gen 0 is reserved for "never"
    free_slots_.push_back(slot);
  }

  uint16_t origin_;
  mutable std::priority_queue<Event, std::vector<Event>, Later> heap_;
  // slots_[s] is slot s's current generation; an id (or heap entry) is live
  // iff its stamped generation equals it. Generations start at 1 and bump on
  // fire and on cancel, so id 0 and recycled ids never match.
  std::vector<uint32_t> slots_;
  std::vector<uint32_t> free_slots_;
  size_t live_count_ = 0;
  uint64_t next_seq_ = 1;
};

}  // namespace encompass::sim

#endif  // ENCOMPASS_SIM_EVENT_QUEUE_H_
