// ReferenceLockManager: the original O(records-in-file) lock table, kept
// verbatim as an executable specification. The production LockManager was
// restructured for O(1) grant checks; the randomized differential test
// (lock_manager_diff_test.cc) drives both with identical operation streams
// and asserts identical observable behavior — acquire results, grant order,
// held/waiter counts, Holds answers, and AllHeld contents.

#ifndef ENCOMPASS_TESTS_REFERENCE_LOCK_MANAGER_H_
#define ENCOMPASS_TESTS_REFERENCE_LOCK_MANAGER_H_

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "discprocess/lock_manager.h"

namespace encompass::discprocess {

class ReferenceLockManager {
 public:
  using AcquireResult = LockManager::AcquireResult;

  AcquireResult Acquire(const Transid& owner, const LockKey& key) {
    if (!key.file_level()) {
      auto fit = units_.find(LockKey{key.file, {}});
      if (fit != units_.end() && fit->second.holder == owner) {
        return AcquireResult::kGranted;
      }
    }

    Unit& unit = units_[key];
    if (unit.holder == owner) return AcquireResult::kGranted;

    bool grantable;
    if (key.file_level()) {
      grantable = !unit.holder.valid() && unit.waiters.empty() &&
                  !AnyRecordLockedByOther(key.file, owner);
    } else {
      grantable = !unit.holder.valid() && unit.waiters.empty() &&
                  !FileLockedByOther(key.file, owner);
    }

    if (grantable) {
      unit.holder = owner;
      owned_[owner].insert(key);
      return AcquireResult::kGranted;
    }
    for (const auto& w : unit.waiters) {
      if (w == owner) return AcquireResult::kQueued;
    }
    unit.waiters.push_back(owner);
    return AcquireResult::kQueued;
  }

  void ForceGrant(const Transid& owner, const LockKey& key) {
    Unit& unit = units_[key];
    unit.holder = owner;
    owned_[owner].insert(key);
  }

  std::vector<LockGrant> ReleaseAll(const Transid& owner) {
    std::vector<LockGrant> grants;
    auto oit = owned_.find(owner);
    std::set<std::string> touched_files;

    if (oit != owned_.end()) {
      for (const auto& key : oit->second) {
        auto uit = units_.find(key);
        if (uit != units_.end() && uit->second.holder == owner) {
          uit->second.holder = Transid{};
          touched_files.insert(key.file);
        }
      }
      owned_.erase(oit);
    }
    for (auto& [key, unit] : units_) {
      (void)key;
      for (auto wit = unit.waiters.begin(); wit != unit.waiters.end();) {
        if (*wit == owner) wit = unit.waiters.erase(wit);
        else ++wit;
      }
    }

    for (const auto& file : touched_files) {
      PromoteWaiters(file, &grants);
    }
    for (auto it = units_.begin(); it != units_.end();) {
      if (!it->second.holder.valid() && it->second.waiters.empty()) {
        it = units_.erase(it);
      } else {
        ++it;
      }
    }
    return grants;
  }

  bool CancelWait(const Transid& owner, const LockKey& key) {
    auto it = units_.find(key);
    if (it == units_.end()) return false;
    for (auto wit = it->second.waiters.begin();
         wit != it->second.waiters.end(); ++wit) {
      if (*wit == owner) {
        it->second.waiters.erase(wit);
        return true;
      }
    }
    return false;
  }

  bool Holds(const Transid& owner, const LockKey& key) const {
    if (!key.file_level()) {
      auto fit = units_.find(LockKey{key.file, {}});
      if (fit != units_.end() && fit->second.holder == owner) return true;
    }
    auto it = units_.find(key);
    return it != units_.end() && it->second.holder == owner;
  }

  size_t held_count() const {
    size_t n = 0;
    for (const auto& [key, unit] : units_) {
      (void)key;
      n += unit.holder.valid() ? 1 : 0;
    }
    return n;
  }

  size_t waiter_count() const {
    size_t n = 0;
    for (const auto& [key, unit] : units_) {
      (void)key;
      n += unit.waiters.size();
    }
    return n;
  }

  std::vector<LockGrant> AllHeld() const {
    std::vector<LockGrant> out;
    for (const auto& [key, unit] : units_) {
      if (unit.holder.valid()) out.push_back(LockGrant{unit.holder, key});
    }
    return out;
  }

 private:
  struct Unit {
    Transid holder;
    std::deque<Transid> waiters;
  };

  bool FileLockedByOther(const std::string& file, const Transid& owner) const {
    auto it = units_.find(LockKey{file, {}});
    return it != units_.end() && it->second.holder.valid() &&
           !(it->second.holder == owner);
  }

  bool AnyRecordLockedByOther(const std::string& file,
                              const Transid& owner) const {
    for (auto it = units_.upper_bound(LockKey{file, {}});
         it != units_.end() && it->first.file == file; ++it) {
      if (it->second.holder.valid() && !(it->second.holder == owner)) {
        return true;
      }
    }
    return false;
  }

  void PromoteWaiters(const std::string& file, std::vector<LockGrant>* grants) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto it = units_.lower_bound(LockKey{file, {}});
           it != units_.end() && it->first.file == file; ++it) {
        Unit& unit = it->second;
        if (unit.holder.valid() || unit.waiters.empty()) continue;
        const Transid& candidate = unit.waiters.front();
        bool grantable;
        if (it->first.file_level()) {
          grantable = !AnyRecordLockedByOther(file, candidate);
        } else {
          grantable = !FileLockedByOther(file, candidate);
        }
        if (grantable) {
          unit.holder = candidate;
          owned_[candidate].insert(it->first);
          grants->push_back(LockGrant{candidate, it->first});
          unit.waiters.pop_front();
          progress = true;
        }
      }
    }
  }

  std::map<LockKey, Unit> units_;
  std::map<Transid, std::set<LockKey>> owned_;
};

}  // namespace encompass::discprocess

#endif  // ENCOMPASS_TESTS_REFERENCE_LOCK_MANAGER_H_
