// Chaos recovery campaign tests: randomized fault schedules (CPU kills, bus
// cuts, drive drops, link flaps, partitions, total node crashes) run against
// a three-node transfer workload, with the cluster-wide atomicity oracle
// checked after every storm. Each seed must survive: zero oracle violations,
// conserved balances, no leaked locks/transactions, and every crashed node
// recovered through ROLLFORWARD. A failing seed writes its schedule dump to
// chaos_failing_seed_<n>.schedule so CI can archive it and anyone can replay
// the exact storm with ReplayChaosCampaign.

#include <gtest/gtest.h>

#include <fstream>

#include "encompass/chaos.h"
#include "tmf/tmf_protocol.h"
#include "test_util.h"

namespace encompass::app {
namespace {

using testutil::TestClient;

ChaosCampaignConfig CampaignConfig(uint64_t seed) {
  ChaosCampaignConfig cfg;
  cfg.seed = seed;
  cfg.nodes = 3;
  cfg.accounts_per_node = 20;
  cfg.clients_per_node = 2;
  cfg.schedule.faults = 8;
  cfg.schedule.min_node_crashes = 1;
  return cfg;
}

/// Asserts every survival invariant; on any failure, writes the schedule
/// dump next to the test binary for archival/replay.
void ExpectSurvived(const ChaosCampaignResult& r, uint64_t seed) {
  bool clean = r.quiesced && r.violations.empty() &&
               r.balance_sum == r.expected_sum && r.leaked_locks == 0 &&
               r.leaked_txns == 0 && r.pending_safe == 0 &&
               r.illegal_transitions == 0 &&
               r.recoveries_completed == r.node_crashes;
  if (!clean) {
    std::ofstream out("chaos_failing_seed_" + std::to_string(seed) +
                      ".schedule");
    out << r.schedule_dump;
    out.close();
    for (const auto& line : r.journal) {
      ADD_FAILURE() << "journal: " << line;
    }
  }
  EXPECT_TRUE(r.quiesced) << "seed " << seed << " did not quiesce";
  for (const auto& v : r.violations) {
    ADD_FAILURE() << "seed " << seed << " txn " << v.transid << ": "
                  << v.detail;
  }
  EXPECT_EQ(r.balance_sum, r.expected_sum) << "seed " << seed;
  EXPECT_EQ(r.leaked_locks, 0u) << "seed " << seed;
  EXPECT_EQ(r.leaked_txns, 0u) << "seed " << seed;
  EXPECT_EQ(r.pending_safe, 0u) << "seed " << seed;
  EXPECT_EQ(r.illegal_transitions, 0) << "seed " << seed;
  EXPECT_EQ(r.recoveries_completed, r.node_crashes) << "seed " << seed;
}

class ChaosCampaignTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosCampaignTest, SurvivesSeed) {
  const uint64_t seed = GetParam();
  ChaosCampaignResult r = RunChaosCampaign(CampaignConfig(seed));

  // The schedule itself must meet the campaign floor: at least 5 faults,
  // at least one total node crash (so ROLLFORWARD + negotiation run).
  EXPECT_GE(r.schedule.faults.size(), 5u) << "seed " << seed;
  EXPECT_GE(r.node_crashes, 1u) << "seed " << seed;
  EXPECT_GE(r.faults_fired, r.schedule.faults.size()) << "seed " << seed;

  // The workload must have actually exercised the system.
  EXPECT_GT(r.txns_started, 0u) << "seed " << seed;
  EXPECT_GT(r.txns_committed, 0u) << "seed " << seed;

  ExpectSurvived(r, seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosCampaignTest,
                         ::testing::Range<uint64_t>(1, 21));

// A failing (or any) seed replays deterministically from its dumped
// schedule: Dump -> Parse round-trips exactly, and the replayed campaign
// reproduces the original run event for event.
TEST(ChaosReplayTest, DumpedScheduleReplaysDeterministically) {
  ChaosCampaignConfig cfg = CampaignConfig(42);
  ChaosCampaignResult first = RunChaosCampaign(cfg);

  sim::FaultSchedule parsed;
  ASSERT_TRUE(sim::FaultSchedule::Parse(first.schedule_dump, &parsed));
  ASSERT_EQ(parsed.faults.size(), first.schedule.faults.size());
  EXPECT_EQ(parsed.seed, first.schedule.seed);
  for (size_t i = 0; i < parsed.faults.size(); ++i) {
    EXPECT_TRUE(parsed.faults[i] == first.schedule.faults[i]) << "fault " << i;
  }

  ChaosCampaignResult replay = ReplayChaosCampaign(cfg, parsed);
  EXPECT_EQ(replay.txns_started, first.txns_started);
  EXPECT_EQ(replay.txns_committed, first.txns_committed);
  EXPECT_EQ(replay.txns_aborted, first.txns_aborted);
  EXPECT_EQ(replay.txns_unknown, first.txns_unknown);
  EXPECT_EQ(replay.balance_sum, first.balance_sum);
  EXPECT_EQ(replay.recoveries_completed, first.recoveries_completed);
  EXPECT_EQ(replay.journal, first.journal);
}

// The same storm on the parallel engine: every PDES worker count yields the
// same history — journal, transaction counts, balances — and survives the
// same invariants. The per-node PRNG streams and key-ordered journal are
// what make this hold; a regression in either shows up as a diff here.
TEST(ChaosParallelTest, SameSeedSameStormAtAnyWorkerCount) {
  ChaosCampaignConfig cfg = CampaignConfig(7);
  cfg.parallel_workers = 1;
  ChaosCampaignResult oracle = RunChaosCampaign(cfg);
  ExpectSurvived(oracle, 7);
  for (int workers : {2, 4}) {
    cfg.parallel_workers = workers;
    ChaosCampaignResult r = RunChaosCampaign(cfg);
    EXPECT_EQ(r.journal, oracle.journal) << "workers=" << workers;
    EXPECT_EQ(r.txns_started, oracle.txns_started) << "workers=" << workers;
    EXPECT_EQ(r.txns_committed, oracle.txns_committed)
        << "workers=" << workers;
    EXPECT_EQ(r.txns_aborted, oracle.txns_aborted) << "workers=" << workers;
    EXPECT_EQ(r.txns_unknown, oracle.txns_unknown) << "workers=" << workers;
    EXPECT_EQ(r.balance_sum, oracle.balance_sum) << "workers=" << workers;
    EXPECT_EQ(r.recoveries_completed, oracle.recoveries_completed)
        << "workers=" << workers;
    EXPECT_EQ(r.faults_fired, oracle.faults_fired) << "workers=" << workers;
  }
}

// The same storm with every node on the queue execution lane: clients
// submit whole predeclared transactions to $QPLAN instead of running the
// lock-lane verb sequence. A queue-lane commit is a normal TMF commit, so
// the atomicity oracle, balance conservation, leak checks, and ROLLFORWARD
// floor all hold unchanged.
TEST(ChaosQueueLaneTest, QueueLaneStormHoldsOracle) {
  ChaosCampaignConfig cfg = CampaignConfig(9);
  cfg.queue_lane = true;
  ChaosCampaignResult r = RunChaosCampaign(cfg);
  EXPECT_GE(r.node_crashes, 1u);
  EXPECT_GT(r.txns_started, 0u);
  EXPECT_GT(r.txns_committed, 0u);
  ExpectSurvived(r, 9);
}

// The generator's structural guarantees hold for many seeds: every fault
// heals, heavy faults never overlap, and the crash floor is honored.
TEST(FaultScheduleTest, StructuralGuaranteesAcrossSeeds) {
  sim::FaultScheduleConfig cfg;
  cfg.nodes = 3;
  cfg.faults = 10;
  cfg.min_node_crashes = 2;
  sim::FaultScheduleGenerator gen(cfg);
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    sim::FaultSchedule s = gen.Generate(seed);
    EXPECT_EQ(s.faults.size(), 10u);
    EXPECT_GE(s.CountOf(sim::FaultClass::kNodeCrash), 2u);
    SimTime heavy_free = 0;
    for (const auto& f : s.faults) {
      EXPECT_GT(f.heal_after, 0) << "seed " << seed;  // everything heals
      if (f.fault == sim::FaultClass::kNodeCrash ||
          f.fault == sim::FaultClass::kPartition) {
        EXPECT_GE(f.at, heavy_free) << "seed " << seed;
        heavy_free = f.at + f.heal_after;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Satellite: partition between phase 1 and phase 2 of a distributed commit,
// convergence asserted through the oracle.
// ---------------------------------------------------------------------------

TEST(ChaosOracleTest, PartitionBetweenPhasesConvergesAfterHeal) {
  sim::Simulation sim(7);
  Deployment deploy(&sim);
  for (int n = 1; n <= 2; ++n) {
    NodeSpec spec;
    spec.id = static_cast<net::NodeId>(n);
    std::string vol = "$DATA" + std::to_string(n);
    spec.volumes = {VolumeSpec{
        vol, {FileSpec{"mark" + std::to_string(n)}}, {}}};
    deploy.AddNode(spec);
  }
  deploy.LinkAll();
  ASSERT_TRUE(deploy.DefineFile("mark1", 1, "$DATA1").ok());
  ASSERT_TRUE(deploy.DefineFile("mark2", 2, "$DATA2").ok());

  auto* client = deploy.GetNode(1)->node()->Spawn<TestClient>(2);
  tmf::FileSystem fs(client, &deploy.catalog());
  sim.Run();

  // Begin, write the marker on both nodes.
  auto* b = client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfBegin, {});
  sim.Run();
  ASSERT_TRUE(b->done && b->status.ok());
  uint64_t t = tmf::DecodeTransidPayload(Slice(b->payload))->Pack();

  AtomicityOracle oracle;
  oracle.RegisterIntent(t, "m1",
                        {{1, "$DATA1", "mark1"}, {2, "$DATA2", "mark2"}});

  auto insert = [&](const std::string& file) {
    bool done = false;
    Status st;
    client->set_current_transid(t);
    fs.Insert(file, Slice(std::string("m1")), Slice(std::string("x")),
              [&](const Status& s, const Bytes&) {
                st = s;
                done = true;
              });
    client->set_current_transid(0);
    sim.Run();
    EXPECT_TRUE(done);
    return st;
  };
  ASSERT_TRUE(insert("mark1").ok());
  ASSERT_TRUE(insert("mark2").ok());

  // END; cut the link the instant the commit record hits the home MAT —
  // after phase 1 (node 2 is prepared, in doubt) and before its phase 2.
  auto* e = client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                            tmf::EncodeTransidPayload(Transid::Unpack(t)), t);
  for (int i = 0;
       i < 2000 &&
       deploy.GetNode(1)->storage().monitor_trail.Lookup(Transid::Unpack(t)) != 1;
       ++i) {
    sim.RunFor(Micros(500));
  }
  ASSERT_EQ(deploy.GetNode(1)->storage().monitor_trail.Lookup(Transid::Unpack(t)), 1);
  deploy.cluster().CutLink(1, 2);
  sim.RunFor(Seconds(1));

  // Home committed; the participant side is partitioned away in doubt.
  ASSERT_TRUE(e->done);
  ASSERT_TRUE(e->status.ok());
  oracle.RecordOutcome(t, AtomicityOracle::Outcome::kCommitted);
  EXPECT_GT(deploy.GetNode(2)->disc("$DATA2")->locks().held_count(), 0u);
  EXPECT_GT(deploy.GetNode(1)->tmp()->PendingSafeDeliveries(), 0u);

  // Heal; safe delivery finishes phase 2 and both sides converge.
  deploy.cluster().RestoreLink(1, 2);
  sim.RunFor(Seconds(5));

  auto violations = oracle.Check(&deploy);
  for (const auto& v : violations) {
    ADD_FAILURE() << "txn " << v.transid << ": " << v.detail;
  }
  EXPECT_EQ(deploy.GetNode(2)->disc("$DATA2")->locks().held_count(), 0u);
  EXPECT_EQ(deploy.GetNode(1)->tmp()->PendingSafeDeliveries(), 0u);
  EXPECT_EQ(deploy.GetNode(2)->storage().monitor_trail.Lookup(Transid::Unpack(t)), 1);
}

// Same window, but the partitioned participant then loses the whole node:
// its volatile marker insert is gone, and only ROLLFORWARD + negotiation
// with the home TMP can restore the committed write. The oracle must still
// see the marker on both volumes afterwards.
TEST(ChaosOracleTest, CrashedInDoubtParticipantRecoversCommittedWrite) {
  sim::Simulation sim(11);
  Deployment deploy(&sim);
  for (int n = 1; n <= 2; ++n) {
    NodeSpec spec;
    spec.id = static_cast<net::NodeId>(n);
    std::string vol = "$DATA" + std::to_string(n);
    spec.volumes = {VolumeSpec{
        vol, {FileSpec{"mark" + std::to_string(n)}}, {}}};
    deploy.AddNode(spec);
  }
  deploy.LinkAll();
  ASSERT_TRUE(deploy.DefineFile("mark1", 1, "$DATA1").ok());
  ASSERT_TRUE(deploy.DefineFile("mark2", 2, "$DATA2").ok());
  deploy.GetNode(1)->ArchiveVolumes();
  deploy.GetNode(2)->ArchiveVolumes();

  auto* client = deploy.GetNode(1)->node()->Spawn<TestClient>(2);
  tmf::FileSystem fs(client, &deploy.catalog());
  sim.Run();

  auto* b = client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfBegin, {});
  sim.Run();
  ASSERT_TRUE(b->done && b->status.ok());
  uint64_t t = tmf::DecodeTransidPayload(Slice(b->payload))->Pack();

  AtomicityOracle oracle;
  oracle.RegisterIntent(t, "m1",
                        {{1, "$DATA1", "mark1"}, {2, "$DATA2", "mark2"}});

  auto insert = [&](const std::string& file) {
    bool done = false;
    Status st;
    client->set_current_transid(t);
    fs.Insert(file, Slice(std::string("m1")), Slice(std::string("x")),
              [&](const Status& s, const Bytes&) {
                st = s;
                done = true;
              });
    client->set_current_transid(0);
    sim.Run();
    EXPECT_TRUE(done);
    return st;
  };
  ASSERT_TRUE(insert("mark1").ok());
  ASSERT_TRUE(insert("mark2").ok());

  auto* e = client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                            tmf::EncodeTransidPayload(Transid::Unpack(t)), t);
  for (int i = 0;
       i < 2000 &&
       deploy.GetNode(1)->storage().monitor_trail.Lookup(Transid::Unpack(t)) != 1;
       ++i) {
    sim.RunFor(Micros(500));
  }
  deploy.cluster().CutLink(1, 2);
  sim.RunFor(Seconds(1));
  ASSERT_TRUE(e->done && e->status.ok());
  oracle.RecordOutcome(t, AtomicityOracle::Outcome::kCommitted);

  // Total failure of the in-doubt participant: volatile state (including
  // the unforced marker insert... but NOT its phase-1-forced after-image)
  // is lost.
  deploy.CrashNode(2);
  sim.RunFor(Seconds(1));

  bool recovered = false;
  deploy.RecoverNode(2, [&](const std::vector<tmf::RollforwardReport>&) {
    recovered = true;
  });
  sim.RunFor(Seconds(10));
  ASSERT_TRUE(recovered);

  auto violations = oracle.Check(&deploy);
  for (const auto& v : violations) {
    ADD_FAILURE() << "txn " << v.transid << ": " << v.detail;
  }
  EXPECT_EQ(deploy.GetNode(2)->storage().monitor_trail.Lookup(Transid::Unpack(t)), 1);
}

}  // namespace
}  // namespace encompass::app
