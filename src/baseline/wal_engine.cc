#include "baseline/wal_engine.h"

#include <cassert>

namespace encompass::baseline {

TxnId WalEngine::Begin() {
  assert(!halted_ && "system is halted");
  TxnId txn = next_txn_++;
  active_.insert(txn);
  return txn;
}

Result<std::string> WalEngine::Read(TxnId txn, const std::string& key,
                                    SimDuration* cost) {
  if (halted_) return Status::Unavailable("system halted");
  if (!active_.count(txn)) return Status::InvalidArgument("unknown txn");
  *cost += config_.record_cpu_cost;
  if (deleted_in_buffer_.count(key)) return Status::NotFound();
  auto it = buffer_.find(key);
  if (it != buffer_.end()) return it->second;
  auto dit = disk_.find(key);
  if (dit == disk_.end()) return Status::NotFound();
  *cost += config_.page_io_latency;  // page fault
  buffer_[key] = dit->second;        // cache it
  return dit->second;
}

Status WalEngine::Update(TxnId txn, const std::string& key,
                         const std::string& value, SimDuration* cost) {
  if (halted_) return Status::Unavailable("system halted");
  if (!active_.count(txn)) return Status::InvalidArgument("unknown txn");

  LogRecord rec;
  rec.txn = txn;
  rec.kind = LogRecord::Kind::kUpdate;
  rec.key = key;
  rec.after = value;
  if (!deleted_in_buffer_.count(key)) {
    auto it = buffer_.find(key);
    if (it != buffer_.end()) {
      rec.before = it->second;
      rec.had_before = true;
    } else {
      auto dit = disk_.find(key);
      if (dit != disk_.end()) {
        rec.before = dit->second;
        rec.had_before = true;
      }
    }
  }
  Append(std::move(rec));
  buffer_[key] = value;
  deleted_in_buffer_.erase(key);
  *cost += config_.record_cpu_cost;
  if (config_.force_log_each_update) {
    *cost += ForceLog();
  }
  return Status::Ok();
}

Status WalEngine::Commit(TxnId txn, SimDuration* cost) {
  if (halted_) return Status::Unavailable("system halted");
  if (!active_.count(txn)) return Status::InvalidArgument("unknown txn");
  LogRecord rec;
  rec.txn = txn;
  rec.kind = LogRecord::Kind::kCommit;
  Append(std::move(rec));
  // The commit point: force the log.
  *cost += ForceLog();
  active_.erase(txn);
  return Status::Ok();
}

Status WalEngine::Abort(TxnId txn, SimDuration* cost) {
  if (halted_) return Status::Unavailable("system halted");
  if (!active_.count(txn)) return Status::InvalidArgument("unknown txn");
  // Apply before-images newest-first from the in-memory log.
  auto undo_one = [this](const LogRecord& rec) {
    if (rec.had_before) {
      buffer_[rec.key] = rec.before;
      deleted_in_buffer_.erase(rec.key);
    } else {
      buffer_.erase(rec.key);
      deleted_in_buffer_.insert(rec.key);
    }
  };
  for (auto it = log_buffer_.rbegin(); it != log_buffer_.rend(); ++it) {
    if (it->txn == txn && it->kind == LogRecord::Kind::kUpdate) {
      undo_one(*it);
      *cost += config_.record_cpu_cost;
    }
  }
  for (auto it = durable_log_.rbegin(); it != durable_log_.rend(); ++it) {
    if (it->txn == txn && it->kind == LogRecord::Kind::kUpdate) {
      undo_one(*it);
      *cost += config_.record_cpu_cost;
    }
  }
  LogRecord rec;
  rec.txn = txn;
  rec.kind = LogRecord::Kind::kAbort;
  Append(std::move(rec));
  active_.erase(txn);
  return Status::Ok();
}

void WalEngine::Append(LogRecord record) { log_buffer_.push_back(std::move(record)); }

SimDuration WalEngine::ForceLog() {
  if (log_buffer_.empty()) return 0;
  for (auto& rec : log_buffer_) durable_log_.push_back(std::move(rec));
  log_buffer_.clear();
  ++forces_;
  return config_.log_force_latency;
}

SimDuration WalEngine::TakeCheckpoint() {
  SimDuration cost = ForceLog();
  // Flush-all checkpoint: disk mirrors the committed buffer state. Dirty
  // pages of in-flight transactions are flushed too (a "steal" policy),
  // which is safe because their before-images are in the forced log.
  size_t dirty = 0;
  for (const auto& [key, value] : buffer_) {
    auto it = disk_.find(key);
    if (it == disk_.end() || it->second != value) {
      disk_[key] = value;
      ++dirty;
    }
  }
  for (const auto& key : deleted_in_buffer_) {
    dirty += disk_.erase(key);
  }
  deleted_in_buffer_.clear();
  cost += static_cast<SimDuration>(dirty) * config_.page_io_latency;

  LogRecord rec;
  rec.txn = 0;
  rec.kind = LogRecord::Kind::kCheckpoint;
  rec.active_at_checkpoint.assign(active_.begin(), active_.end());
  durable_log_.push_back(std::move(rec));
  checkpoint_index_ = durable_log_.size();
  ++forces_;
  cost += config_.log_force_latency;
  return cost;
}

void WalEngine::Crash() {
  halted_ = true;
  buffer_.clear();
  deleted_in_buffer_.clear();
  log_buffer_.clear();  // unforced log lost
  active_.clear();      // every in-flight transaction dies with the system
}

SimDuration WalEngine::Restart() {
  assert(halted_);
  SimDuration cost = 0;

  // Analysis: winners, aborted, and the set of potential losers — every
  // transaction active at the checkpoint (its stolen dirty pages may be on
  // disk) plus every transaction that logged after it.
  std::set<TxnId> committed, aborted, seen;
  if (checkpoint_index_ > 0) {
    const LogRecord& ckpt = durable_log_[checkpoint_index_ - 1];
    if (ckpt.kind == LogRecord::Kind::kCheckpoint) {
      seen.insert(ckpt.active_at_checkpoint.begin(),
                  ckpt.active_at_checkpoint.end());
    }
  }
  for (size_t i = checkpoint_index_; i < durable_log_.size(); ++i) {
    const LogRecord& rec = durable_log_[i];
    cost += config_.record_cpu_cost;
    if (rec.kind == LogRecord::Kind::kCommit) committed.insert(rec.txn);
    if (rec.kind == LogRecord::Kind::kAbort) aborted.insert(rec.txn);
    if (rec.kind == LogRecord::Kind::kUpdate) seen.insert(rec.txn);
  }
  std::set<TxnId> losers;
  for (TxnId t : seen) {
    if (!committed.count(t) && !aborted.count(t)) losers.insert(t);
  }

  // Redo (repeat history): reapply EVERY logged update since the checkpoint
  // in order, winners and losers alike, so before-images line up for undo.
  std::set<std::string> touched;
  for (size_t i = checkpoint_index_; i < durable_log_.size(); ++i) {
    const LogRecord& rec = durable_log_[i];
    if (rec.kind != LogRecord::Kind::kUpdate) continue;
    cost += config_.record_cpu_cost;
    disk_[rec.key] = rec.after;
    touched.insert(rec.key);
  }
  // Undo losers newest-first over the whole durable log (a loser active at
  // the checkpoint may have updates before it).
  for (auto it = durable_log_.rbegin(); it != durable_log_.rend(); ++it) {
    if (it->kind != LogRecord::Kind::kUpdate || !losers.count(it->txn)) continue;
    cost += config_.record_cpu_cost;
    if (it->had_before) disk_[it->key] = it->before;
    else disk_.erase(it->key);
    touched.insert(it->key);
  }
  cost += static_cast<SimDuration>(touched.size()) * config_.page_io_latency;

  // Recovery complete: warm state is gone, but the system is available.
  buffer_.clear();
  deleted_in_buffer_.clear();
  halted_ = false;
  TakeCheckpoint();
  return cost;
}

Result<std::string> WalEngine::DurableValue(const std::string& key) const {
  auto it = disk_.find(key);
  if (it == disk_.end()) return Status::NotFound();
  return it->second;
}

}  // namespace encompass::baseline
