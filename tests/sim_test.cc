// Unit tests for the discrete-event simulation kernel.

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/fault_injector.h"
#include "sim/simulation.h"
#include "sim/stats.h"

namespace encompass::sim {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    SimTime when;
    q.PopNext(&when)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    SimTime when;
    q.PopNext(&when)();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  EventId id = q.Schedule(10, [&] { fired = true; });
  q.Cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.NextTime(), kNoDeadline);
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelUnknownIsNoop) {
  EventQueue q;
  q.Cancel(0);
  q.Cancel(12345);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelAfterFireIsTrueNoop) {
  EventQueue q;
  int fired = 0;
  EventId id = q.Schedule(10, [&] { ++fired; });
  SimTime when;
  q.PopNext(&when)();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
  // Cancelling the already-fired event must not tombstone future state or
  // decrement the live count below the truth.
  q.Cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  q.Schedule(20, [&] { ++fired; });
  q.Schedule(30, [&] { ++fired; });
  EXPECT_EQ(q.size(), 2u);
  EXPECT_FALSE(q.empty());
  while (!q.empty()) q.PopNext(&when)();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, DoubleCancelKeepsAccountingExact) {
  EventQueue q;
  EventId a = q.Schedule(10, [] {});
  q.Schedule(20, [] {});
  q.Cancel(a);
  q.Cancel(a);  // second cancel of the same id is a no-op
  EXPECT_EQ(q.size(), 1u);
  SimTime when;
  q.PopNext(&when);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.NextTime(), kNoDeadline);
}

TEST(EventQueueTest, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(1, [&] { order.push_back(1); });
  EventId mid = q.Schedule(2, [&] { order.push_back(2); });
  q.Schedule(3, [&] { order.push_back(3); });
  q.Cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) {
    SimTime when;
    q.PopNext(&when)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(SimulationTest, ClockAdvancesToEventTime) {
  Simulation sim;
  SimTime seen = -1;
  sim.After(Millis(5), [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, Millis(5));
  EXPECT_EQ(sim.Now(), Millis(5));
}

TEST(SimulationTest, NestedScheduling) {
  Simulation sim;
  std::vector<SimTime> times;
  sim.After(10, [&] {
    times.push_back(sim.Now());
    sim.After(10, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 20}));
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.After(10, [&] { ++fired; });
  sim.After(20, [&] { ++fired; });
  sim.After(30, [&] { ++fired; });
  sim.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 20);
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 3);
}

TEST(SimulationTest, RunUntilAdvancesClockWithoutEvents) {
  Simulation sim;
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(sim.Now(), Seconds(1));
}

TEST(SimulationTest, NegativeDelayClampsToNow) {
  Simulation sim;
  sim.RunUntil(100);
  SimTime seen = -1;
  sim.After(-50, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, 100);
}

TEST(SimulationTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulation sim(seed);
    std::vector<uint64_t> draws;
    for (int i = 0; i < 10; ++i) {
      sim.After(sim.Rng().Uniform(100), [&] { draws.push_back(sim.Rng().Next()); });
    }
    sim.Run();
    return draws;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(SimulationTest, CancelScheduledEvent) {
  Simulation sim;
  bool fired = false;
  auto id = sim.After(10, [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(HistogramTest, PercentilesAndMoments) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.Min(), 1);
  EXPECT_EQ(h.Max(), 100);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_NEAR(h.Percentile(50), 50, 1);
  EXPECT_NEAR(h.Percentile(99), 99, 1);
  EXPECT_EQ(h.Percentile(0), 1);
  EXPECT_EQ(h.Percentile(100), 100);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(StatsTest, CountersAccumulate) {
  Stats s;
  s.Incr("a");
  s.Incr("a", 4);
  s.Incr("b", -2);
  EXPECT_EQ(s.Counter("a"), 5);
  EXPECT_EQ(s.Counter("b"), -2);
  EXPECT_EQ(s.Counter("missing"), 0);
}

TEST(StatsTest, HistogramsAndDump) {
  Stats s;
  s.Record("lat", 10);
  s.Record("lat", 20);
  ASSERT_NE(s.FindHistogram("lat"), nullptr);
  EXPECT_EQ(s.FindHistogram("lat")->count(), 2u);
  EXPECT_EQ(s.FindHistogram("none"), nullptr);
  s.Incr("ops", 3);
  std::string dump = s.ToString();
  EXPECT_NE(dump.find("ops = 3"), std::string::npos);
  EXPECT_NE(dump.find("lat:"), std::string::npos);
  s.Clear();
  EXPECT_EQ(s.Counter("ops"), 0);
}

TEST(FaultInjectorTest, FiresAndJournals) {
  Simulation sim;
  FaultInjector fi(&sim);
  int hits = 0;
  fi.InjectAt(Millis(10), "cpu 2 down", [&] { ++hits; });
  fi.InjectAfter(Millis(20), "link cut", [&] { ++hits; });
  EXPECT_EQ(fi.pending(), 2u);
  sim.Run();
  EXPECT_EQ(hits, 2);
  ASSERT_EQ(fi.journal().size(), 2u);
  EXPECT_EQ(fi.journal()[0].description, "cpu 2 down");
  EXPECT_EQ(fi.journal()[0].when, Millis(10));
  EXPECT_EQ(fi.journal()[1].description, "link cut");
  EXPECT_EQ(fi.pending(), 0u);
}

TEST(FaultInjectorTest, ReentrantSchedulingKeepsCountsExact) {
  // A firing action that schedules follow-up faults (the crash/heal pattern
  // every chaos campaign uses) must observe exact counters mid-firing: its
  // own firing is already counted, the newly scheduled one is pending.
  Simulation sim;
  FaultInjector fi(&sim);
  int fired_chain = 0;
  std::function<void(int)> chain = [&](int depth) {
    ++fired_chain;
    EXPECT_EQ(fi.fired(), static_cast<size_t>(fired_chain));
    if (depth > 0) {
      fi.InjectAfter(Millis(1), "chain " + std::to_string(depth - 1),
                     [&chain, depth] { chain(depth - 1); });
      // The re-entrant schedule is visible immediately.
      EXPECT_EQ(fi.pending(), 1u);
      EXPECT_EQ(fi.scheduled(), static_cast<size_t>(fired_chain) + 1);
    } else {
      EXPECT_EQ(fi.pending(), 0u);
    }
  };
  fi.InjectAt(Millis(1), "chain 3", [&chain] { chain(3); });
  EXPECT_EQ(fi.scheduled(), 1u);
  sim.Run();
  EXPECT_EQ(fired_chain, 4);
  EXPECT_EQ(fi.scheduled(), 4u);
  EXPECT_EQ(fi.fired(), 4u);
  EXPECT_EQ(fi.pending(), 0u);
  // Notes interleaved with re-entrant firing never skew the fault counters
  // but do land in the journal.
  fi.Note("annotation");
  EXPECT_EQ(fi.journal().size(), 5u);
  EXPECT_EQ(fi.fired(), 4u);
}


TEST(MetricIdTest, RegistrationIsIdempotentAndSurvivesClear) {
  Stats s;
  MetricId a = s.RegisterCounter("ops");
  MetricId a2 = s.RegisterCounter("ops");
  EXPECT_TRUE(a.valid());
  s.Incr(a, 2);
  s.Incr(a2, 3);
  EXPECT_EQ(s.Counter(a), 5);
  EXPECT_EQ(s.Counter("ops"), 5);
  // Clear zeroes values but keeps registrations: cached handles stay valid.
  s.Clear();
  EXPECT_EQ(s.Counter(a), 0);
  s.Incr(a);
  EXPECT_EQ(s.Counter("ops"), 1);
  // Default-constructed (invalid) handles are ignored, not fatal.
  MetricId invalid;
  EXPECT_FALSE(invalid.valid());
  s.Incr(invalid);
  EXPECT_EQ(s.Counter(invalid), 0);
}

TEST(MetricIdTest, HandleAndStringPathsShareStorage) {
  Stats s;
  s.Incr("x", 7);
  MetricId x = s.RegisterCounter("x");
  s.Incr(x, 1);
  EXPECT_EQ(s.Counter("x"), 8);
  MetricId h = s.RegisterHistogram("lat");
  s.Record(h, 5);
  s.Record("lat", 15);
  ASSERT_NE(s.FindHistogram("lat"), nullptr);
  EXPECT_EQ(s.FindHistogram("lat")->count(), 2u);
  EXPECT_EQ(&s.GetHistogram(h), s.FindHistogram("lat"));
}

TEST(HistogramTest, EmptyEdgeCases) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Sum(), 0);
  EXPECT_EQ(h.Percentile(0), 0);
  EXPECT_EQ(h.Percentile(100), 0);
  EXPECT_EQ(h.Percentile(-5), 0);
  EXPECT_EQ(h.Percentile(200), 0);
  h.Add(42);
  EXPECT_EQ(h.Percentile(0), 42);
  EXPECT_EQ(h.Percentile(50), 42);
  EXPECT_EQ(h.Percentile(100), 42);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0);
}

TEST(HistogramTest, LogBucketsExactBelow128) {
  Histogram h;
  for (int v = 0; v < 128; ++v) h.Add(v);
  // With 64 sub-buckets per octave every value below 128 maps to its own
  // bucket, so percentiles are exact.
  EXPECT_EQ(h.Percentile(50), 63);  // rank floor(0.5 * 127) = 63
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 127);
}

TEST(HistogramTest, LargeValuesApproximateWithinBucketWidth) {
  Histogram h;
  const int64_t v = 1'000'000;
  h.Add(v);
  h.Add(v);
  h.Add(3 * v);
  // Percentiles land in the right bucket; midpoints are clamped to the
  // observed [min, max], and relative error is bounded by 1/64 per octave.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), static_cast<double>(v),
              static_cast<double>(v) / 64.0);
  EXPECT_EQ(h.Percentile(100), 3 * v);
  EXPECT_EQ(h.Min(), v);
  EXPECT_EQ(h.Max(), 3 * v);
  EXPECT_EQ(h.Sum(), 5 * v);
  Histogram neg;
  neg.Add(-17);  // negative samples clamp into the first bucket
  EXPECT_EQ(neg.Min(), -17);
  EXPECT_EQ(neg.count(), 1u);
}

TEST(StatsTest, ToStringShowsPercentiles) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.Record("lat", i);
  std::string dump = s.ToString();
  EXPECT_NE(dump.find("p50"), std::string::npos);
  EXPECT_NE(dump.find("p95"), std::string::npos);
  EXPECT_NE(dump.find("p99"), std::string::npos);
  // Empty histograms are omitted rather than printed as garbage.
  s.RegisterHistogram("never_recorded");
  dump = s.ToString();
  EXPECT_EQ(dump.find("never_recorded"), std::string::npos);
}

TEST(TraceLogTest, RecordAndDumpPerTransaction) {
  TraceLog log(16);
  TraceEvent e;
  e.time = 5;
  e.transid = 42;
  e.span = log.NewSpan();
  e.kind = TraceEventKind::kMsgSend;
  e.node = 1;
  e.a = 7;
  log.Record(e);
  e.time = 9;
  e.kind = TraceEventKind::kMsgDeliver;
  e.node = 2;
  log.Record(e);
  TraceEvent other;
  other.transid = 99;
  other.kind = TraceEventKind::kTxnState;
  log.Record(other);
  EXPECT_EQ(log.size(), 3u);
  auto events = log.Events(42);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kMsgSend);
  EXPECT_EQ(events[1].kind, TraceEventKind::kMsgDeliver);
  std::string dump = log.Dump(42);
  EXPECT_NE(dump.find("transid=42"), std::string::npos);
  EXPECT_NE(dump.find("msg.send"), std::string::npos);
  EXPECT_NE(dump.find("msg.deliver"), std::string::npos);
  EXPECT_EQ(dump.find("txn.state"), std::string::npos);
}

TEST(TraceLogTest, RingOverwritesOldestAndCountsDropped) {
  TraceLog log(4);
  for (uint64_t i = 1; i <= 6; ++i) {
    TraceEvent e;
    e.transid = i;
    log.Record(e);
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_TRUE(log.Events(1).empty());   // overwritten
  EXPECT_TRUE(log.Events(2).empty());   // overwritten
  EXPECT_EQ(log.Events(3).size(), 1u);  // oldest survivor
  EXPECT_EQ(log.Events(6).size(), 1u);
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.Events(6).empty());
}

TEST(TraceLogTest, DisabledLogRecordsNothing) {
  TraceLog log;
  log.set_enabled(false);
  Simulation sim;
  sim.GetTrace().set_enabled(false);
  TraceContext ctx{42, 1};
  sim.RecordTrace(TraceEventKind::kMsgSend, ctx, 1);
  EXPECT_EQ(sim.GetTrace().size(), 0u);
  sim.GetTrace().set_enabled(true);
  sim.RecordTrace(TraceEventKind::kMsgSend, ctx, 1);
  EXPECT_EQ(sim.GetTrace().size(), 1u);
  // Inactive contexts (transid 0) never record.
  sim.RecordTrace(TraceEventKind::kMsgSend, TraceContext{}, 1);
  EXPECT_EQ(sim.GetTrace().size(), 1u);
}

}  // namespace
}  // namespace encompass::sim
