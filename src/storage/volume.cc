#include "storage/volume.h"

#include <algorithm>

#include "common/coding.h"

namespace encompass::storage {

Volume::Volume(std::string name, VolumeConfig config)
    : name_(std::move(name)), config_(config) {}

void Volume::BindStats(sim::Stats* stats) {
  stats_ = stats;
  if (stats_ == nullptr) return;
  const std::string prefix = "storage." + name_ + ".";
  m_cache_hits_ = stats_->RegisterCounter(prefix + "cache_hits");
  m_cache_misses_ = stats_->RegisterCounter(prefix + "cache_misses");
  m_physical_reads_ = stats_->RegisterCounter(prefix + "physical_reads");
  m_physical_writes_ = stats_->RegisterCounter(prefix + "physical_writes");
}

Status Volume::CreateFile(const std::string& fname, FileOrganization org,
                          FileOptions options) {
  if (files_.count(fname)) return Status::AlreadyExists("file exists: " + fname);
  options.block_size = config_.block_size;
  files_[fname] = MakeFile(org, fname, std::move(options));
  return Status::Ok();
}

Status Volume::DropFile(const std::string& fname) {
  if (files_.erase(fname) == 0) return Status::NotFound("no file: " + fname);
  // Ledger entries for the dropped file can no longer be undone; purge them.
  std::vector<UndoEntry> kept;
  for (auto& e : undo_ledger_) {
    if (e.file != fname) kept.push_back(std::move(e));
  }
  undo_ledger_ = std::move(kept);
  // Resident records of the dropped file must not satisfy reads of a later
  // file reusing the name. The interned id survives (and is reused), so a
  // re-created file starts cold but keeps O(1) lookups.
  auto it = cache_file_ids_.find(fname);
  if (it != cache_file_ids_.end()) CacheDropFile(it->second);
  return Status::Ok();
}

StructuredFile* Volume::Find(const std::string& fname) const {
  auto it = files_.find(fname);
  return it == files_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Volume::FileNames() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [n, f] : files_) {
    (void)f;
    names.push_back(n);
  }
  return names;
}

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

uint32_t Volume::CacheFileId(const std::string& fname) {
  auto it = cache_file_ids_.find(fname);
  if (it != cache_file_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(cache_file_ids_.size());
  cache_file_ids_.emplace(fname, id);
  return id;
}

bool Volume::CacheHit(uint32_t file_id, const Slice& key) {
  auto it = cache_.find(CacheRef{file_id, key});
  if (it == cache_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return true;
}

void Volume::CacheTouch(uint32_t file_id, const Slice& key) {
  auto it = cache_.find(CacheRef{file_id, key});
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(CacheEntry{file_id, key.ToBytes()});
  // The index key views the bytes owned by the node it points at.
  cache_.emplace(CacheRef{file_id, Slice(lru_.front().key)}, lru_.begin());
  if (cache_.size() > config_.cache_capacity) {
    const CacheEntry& victim = lru_.back();
    cache_.erase(CacheRef{victim.file_id, Slice(victim.key)});
    lru_.pop_back();
  }
}

void Volume::CacheErase(uint32_t file_id, const Slice& key) {
  auto it = cache_.find(CacheRef{file_id, key});
  if (it == cache_.end()) return;
  lru_.erase(it->second);
  cache_.erase(it);
}

void Volume::CacheDropFile(uint32_t file_id) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->file_id == file_id) {
      cache_.erase(CacheRef{it->file_id, Slice(it->key)});
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void Volume::CacheClear() {
  cache_.clear();
  lru_.clear();
}

// ---------------------------------------------------------------------------
// Record operations
// ---------------------------------------------------------------------------

OpResult Volume::Mutate(const std::string& fname, MutationOp op, const Slice& key,
                        const Slice& record) {
  OpResult out;
  if (!Usable()) {
    out.status = Status::IoError("volume " + name_ + ": all drives down");
    return out;
  }
  StructuredFile* file = Find(fname);
  if (file == nullptr) {
    out.status = Status::NotFound("no file: " + fname);
    return out;
  }
  const uint32_t fid = CacheFileId(fname);

  // Capture the before-image (needed for audit and for the volatile ledger).
  if (op != MutationOp::kInsert && !key.empty()) {
    auto prior = file->Read(key);
    if (prior.ok()) {
      out.before = std::move(*prior);
      out.existed = true;
    }
  }

  UndoEntry undo;
  undo.file = fname;
  undo.op = op;
  undo.before = out.before;
  undo.existed = out.existed;

  switch (op) {
    case MutationOp::kInsert: {
      Bytes assigned;
      out.status = file->Insert(key, record, &assigned);
      if (out.status.ok()) {
        out.key = assigned;
        undo.key = assigned;
        CacheTouch(fid, Slice(assigned));
      }
      break;
    }
    case MutationOp::kUpdate:
      out.status = file->Update(key, record);
      if (out.status.ok()) {
        out.key = key.ToBytes();
        undo.key = key.ToBytes();
        CacheTouch(fid, key);
      }
      break;
    case MutationOp::kDelete:
      out.status = file->Delete(key);
      if (out.status.ok()) {
        out.key = key.ToBytes();
        undo.key = key.ToBytes();
        CacheErase(fid, key);
      }
      break;
  }

  if (out.status.ok()) {
    // Write-back: the update lives in cache/memory only until Flush. This is
    // the paper's "audit records need not be written to disc prior to
    // updating the data base" — nothing is forced here.
    undo_ledger_.push_back(std::move(undo));
    // A drive that is down misses this write and becomes stale.
    for (int d = 0; d < drive_count(); ++d) {
      if (!drive_up_[d]) drive_stale_[d] = true;
    }
  }
  return out;
}

OpResult Volume::ApplyUndo(const std::string& fname, MutationOp original_op,
                           const Slice& key, const Slice& before) {
  OpResult out;
  if (!Usable()) {
    out.status = Status::IoError("volume " + name_ + ": all drives down");
    return out;
  }
  StructuredFile* file = Find(fname);
  if (file == nullptr) {
    out.status = Status::NotFound("no file: " + fname);
    return out;
  }
  const uint32_t fid = CacheFileId(fname);
  auto current = file->Read(key);

  UndoEntry undo;
  undo.file = fname;
  undo.key = key.ToBytes();

  switch (original_op) {
    case MutationOp::kInsert:
      if (!current.ok()) {
        out.status = Status::Ok();  // already compensated
        return out;
      }
      undo.op = MutationOp::kDelete;
      undo.before = std::move(*current);
      undo.existed = true;
      out.status = PhysicalRemove(file, key);
      if (out.status.ok()) CacheErase(fid, key);
      break;
    case MutationOp::kUpdate:
      if (!current.ok()) {
        out.status = current.status();
        return out;
      }
      if (Slice(*current) == before) {
        out.status = Status::Ok();  // already compensated
        return out;
      }
      undo.op = MutationOp::kUpdate;
      undo.before = std::move(*current);
      undo.existed = true;
      out.status = file->Update(key, before);
      if (out.status.ok()) CacheTouch(fid, key);
      break;
    case MutationOp::kDelete:
      if (current.ok()) {
        out.status = Status::Ok();  // already compensated
        return out;
      }
      undo.op = MutationOp::kInsert;
      out.status = file->Insert(key, before, nullptr);
      if (out.status.ok()) CacheTouch(fid, key);
      break;
  }
  if (out.status.ok()) {
    undo_ledger_.push_back(std::move(undo));
    for (int d = 0; d < drive_count(); ++d) {
      if (!drive_up_[d]) drive_stale_[d] = true;
    }
  }
  return out;
}

OpResult Volume::ReadRecord(const std::string& fname, const Slice& key) {
  OpResult out;
  if (!Usable()) {
    out.status = Status::IoError("volume " + name_ + ": all drives down");
    return out;
  }
  StructuredFile* file = Find(fname);
  if (file == nullptr) {
    out.status = Status::NotFound("no file: " + fname);
    return out;
  }
  auto r = file->Read(key);
  out.status = r.ok() ? Status::Ok() : r.status();
  if (r.ok()) {
    out.value = std::move(*r);
    out.key = key.ToBytes();
    const uint32_t fid = CacheFileId(fname);
    if (CacheHit(fid, key)) {
      ++cache_hits_;
      if (stats_ != nullptr) stats_->Incr(m_cache_hits_);
    } else {
      ++cache_misses_;
      if (stats_ != nullptr) stats_->Incr(m_cache_misses_);
      out.disc_ios = file->access_depth();
      physical_reads_ += out.disc_ios;
      if (stats_ != nullptr) stats_->Incr(m_physical_reads_, out.disc_ios);
      CacheTouch(fid, key);
    }
  }
  return out;
}

OpResult Volume::SeekRecord(const std::string& fname, const Slice& key,
                            bool inclusive) {
  OpResult out;
  if (!Usable()) {
    out.status = Status::IoError("volume " + name_ + ": all drives down");
    return out;
  }
  StructuredFile* file = Find(fname);
  if (file == nullptr) {
    out.status = Status::NotFound("no file: " + fname);
    return out;
  }
  auto r = file->Seek(key, inclusive);
  out.status = r.ok() ? Status::Ok() : r.status();
  if (r.ok()) {
    out.key = std::move(r->key);
    out.value = std::move(r->value);
    const uint32_t fid = CacheFileId(fname);
    if (CacheHit(fid, Slice(out.key))) {
      ++cache_hits_;
      if (stats_ != nullptr) stats_->Incr(m_cache_hits_);
    } else {
      ++cache_misses_;
      if (stats_ != nullptr) stats_->Incr(m_cache_misses_);
      out.disc_ios = file->access_depth();
      physical_reads_ += out.disc_ios;
      if (stats_ != nullptr) stats_->Incr(m_physical_reads_, out.disc_ios);
      CacheTouch(fid, Slice(out.key));
    }
  }
  return out;
}

OpResult Volume::ReadAlternate(const std::string& fname, const std::string& field,
                               const std::string& value) {
  OpResult out;
  if (!Usable()) {
    out.status = Status::IoError("volume " + name_ + ": all drives down");
    return out;
  }
  StructuredFile* file = Find(fname);
  if (file == nullptr) {
    out.status = Status::NotFound("no file: " + fname);
    return out;
  }
  auto r = file->LookupAlternate(field, value);
  out.status = r.ok() ? Status::Ok() : r.status();
  if (r.ok()) {
    for (const auto& pk : *r) PutLengthPrefixed(&out.value, Slice(pk));
    out.disc_ios = 1;  // one index probe
    ++physical_reads_;
    if (stats_ != nullptr) stats_->Incr(m_physical_reads_);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Durability boundary
// ---------------------------------------------------------------------------

int Volume::Flush() {
  int writes = static_cast<int>(undo_ledger_.size()) * UpDrives();
  physical_writes_ += writes;
  if (stats_ != nullptr) stats_->Incr(m_physical_writes_, writes);
  undo_ledger_.clear();
  return writes;
}

Status Volume::PhysicalRemove(StructuredFile* file, const Slice& key) {
  if (file->organization() == FileOrganization::kEntrySequenced) {
    return static_cast<EntrySequencedFile*>(file)->RemoveEntry(key);
  }
  return file->Delete(key);
}

void Volume::DropVolatile() {
  for (auto it = undo_ledger_.rbegin(); it != undo_ledger_.rend(); ++it) {
    StructuredFile* file = Find(it->file);
    if (file == nullptr) continue;
    switch (it->op) {
      case MutationOp::kInsert:
        PhysicalRemove(file, Slice(it->key));
        break;
      case MutationOp::kUpdate:
        if (it->existed) file->Update(Slice(it->key), Slice(it->before));
        break;
      case MutationOp::kDelete:
        if (it->existed) file->Insert(Slice(it->key), Slice(it->before), nullptr);
        break;
    }
  }
  undo_ledger_.clear();
  // Main memory is gone with the node: the cache is cold. Interned file ids
  // survive — they name files, not contents.
  CacheClear();
}

// ---------------------------------------------------------------------------
// Mirrored drives
// ---------------------------------------------------------------------------

bool Volume::DriveUp(int drive) const {
  return drive >= 0 && drive < drive_count() && drive_up_[drive];
}

void Volume::FailDrive(int drive) {
  if (drive < 0 || drive >= drive_count()) return;
  drive_up_[drive] = false;
}

Result<size_t> Volume::ReviveDrive(int drive) {
  if (drive < 0 || drive >= drive_count()) {
    return Status::InvalidArgument("no such drive");
  }
  if (drive_up_[drive]) return size_t{0};
  if (!Usable()) return Status::IoError("no survivor to copy from");
  size_t copied = 0;
  if (drive_stale_[drive]) {
    for (const auto& [n, f] : files_) {
      (void)n;
      copied += f->record_count();
    }
    physical_writes_ += static_cast<int64_t>(copied);
    if (stats_ != nullptr) {
      stats_->Incr(m_physical_writes_, static_cast<int64_t>(copied));
    }
    drive_stale_[drive] = false;
  }
  drive_up_[drive] = true;
  return copied;
}

bool Volume::Usable() const { return UpDrives() > 0; }

int Volume::UpDrives() const {
  int n = 0;
  for (int d = 0; d < drive_count(); ++d) n += drive_up_[d] ? 1 : 0;
  return n;
}

// ---------------------------------------------------------------------------
// Drive schedule
// ---------------------------------------------------------------------------

DriveSchedule Volume::ScheduleRead(SimTime now, SimDuration service) {
  // Read-either: place the transfer on the up drive that frees first
  // (ties -> lower index), so back-to-back reads land on alternate drives
  // and overlap in time.
  int best = -1;
  SimTime best_start = 0;
  for (int d = 0; d < drive_count(); ++d) {
    if (!drive_up_[d]) continue;
    SimTime start = std::max(now, drive_busy_until_[d]);
    if (best < 0 || start < best_start) {
      best = d;
      best_start = start;
    }
  }
  DriveSchedule s;
  if (best < 0) {  // no drive up; callers guard with Usable()
    s.complete = now + service;
    return s;
  }
  auto& inflight = drive_inflight_[best];
  while (!inflight.empty() && inflight.front() <= now) inflight.pop_front();
  s.drive = best;
  s.queue_depth = static_cast<int>(inflight.size());
  s.complete = best_start + service;
  drive_busy_until_[best] = s.complete;
  drive_busy_time_[best] += service;
  ++drive_reads_[best];
  inflight.push_back(s.complete);
  return s;
}

DriveSchedule Volume::ScheduleWrite(SimTime now, SimDuration service) {
  // Write-both: the transfer occupies every up drive; it completes when the
  // slowest copy finishes.
  DriveSchedule s;
  s.drive = -1;
  SimTime latest = now + service;
  for (int d = 0; d < drive_count(); ++d) {
    if (!drive_up_[d]) continue;
    auto& inflight = drive_inflight_[d];
    while (!inflight.empty() && inflight.front() <= now) inflight.pop_front();
    if (s.drive < 0) {
      s.drive = d;
      s.queue_depth = static_cast<int>(inflight.size());
    }
    SimTime start = std::max(now, drive_busy_until_[d]);
    SimTime complete = start + service;
    drive_busy_until_[d] = complete;
    drive_busy_time_[d] += service;
    inflight.push_back(complete);
    latest = std::max(latest, complete);
  }
  if (s.drive < 0) s.drive = 0;
  s.complete = latest;
  return s;
}

int64_t Volume::drive_busy_time(int drive) const {
  if (drive < 0 || drive >= drive_count()) return 0;
  return drive_busy_time_[drive];
}

int64_t Volume::drive_reads(int drive) const {
  if (drive < 0 || drive >= drive_count()) return 0;
  return drive_reads_[drive];
}

// ---------------------------------------------------------------------------
// Archive
// ---------------------------------------------------------------------------

Bytes Volume::Archive() const {
  Bytes out;
  PutLengthPrefixed(&out, Slice(name_));
  PutVarint64(&out, files_.size());
  for (const auto& [fname, file] : files_) {
    PutLengthPrefixed(&out, Slice(fname));
    PutFixed8(&out, static_cast<uint8_t>(file->organization()));
    PutFixed8(&out, file->audited() ? 1 : 0);
    PutVarint32(&out, static_cast<uint32_t>(file->schema().alternate_keys.size()));
    for (const auto& f : file->schema().alternate_keys) {
      PutLengthPrefixed(&out, Slice(f));
    }
    file->ArchiveTo(&out);
  }
  return out;
}

Status Volume::RestoreFromArchive(const Slice& archive) {
  Slice in = archive;
  std::string archived_name;
  if (!GetLengthPrefixedString(&in, &archived_name)) {
    return DecodeError("volume name");
  }
  uint64_t nfiles;
  if (!GetVarint64(&in, &nfiles)) return DecodeError("file count");

  std::map<std::string, std::unique_ptr<StructuredFile>> restored;
  for (uint64_t i = 0; i < nfiles; ++i) {
    std::string fname;
    uint8_t org_byte, audited;
    if (!GetLengthPrefixedString(&in, &fname) || !GetFixed8(&in, &org_byte) ||
        !GetFixed8(&in, &audited)) {
      return DecodeError("file header");
    }
    uint32_t nalt;
    if (!GetVarint32(&in, &nalt)) return DecodeError("schema");
    FileOptions options;
    options.audited = audited != 0;
    options.block_size = config_.block_size;
    for (uint32_t k = 0; k < nalt; ++k) {
      std::string field;
      if (!GetLengthPrefixedString(&in, &field)) return DecodeError("alt key");
      options.schema.alternate_keys.push_back(field);
    }
    auto file = MakeFile(static_cast<FileOrganization>(org_byte), fname,
                         std::move(options));
    if (file == nullptr) return Status::Corruption("bad file organization");
    ENCOMPASS_RETURN_IF_ERROR(file->RestoreFrom(&in));
    restored[fname] = std::move(file);
  }
  files_ = std::move(restored);
  undo_ledger_.clear();
  CacheClear();
  return Status::Ok();
}

}  // namespace encompass::storage
