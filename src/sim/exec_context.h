// Thread-local execution context: what the executing thread knows about the
// simulation event it is currently running.
//
// The engine publishes a context around every event callback. Three consumers
// read it:
//   * Stats and TraceLog route writes to the executing loop's shard, so
//     parallel node loops never contend on (or race over) shared storage;
//   * trace records are stamped with the running event's total-order key, so
//     a k-way merge of the shards reproduces the canonical event order;
//   * the scheduling API (Simulation::After / At) attributes follow-up events
//     to the node whose work is executing.
// Outside event execution (setup code, tests, tools) the context is null and
// everything falls back to shard 0 / the global loop.

#ifndef ENCOMPASS_SIM_EXEC_CONTEXT_H_
#define ENCOMPASS_SIM_EXEC_CONTEXT_H_

#include <cstdint>

#include "sim/event_queue.h"

namespace encompass::sim {

class Stats;
class TraceLog;

namespace internal {

struct ExecContext {
  const void* sim = nullptr;  // owning Simulation, compared by identity only
  Stats* stats = nullptr;     // that simulation's Stats
  TraceLog* trace = nullptr;  // that simulation's TraceLog
  uint32_t shard = 0;         // executing loop's shard index
  uint16_t node = 0;          // node the running event is attributed to
  EventKey key;               // total-order key of the running event
};

/// Context of the event the calling thread is executing; null outside event
/// execution.
ExecContext* Exec();
void SetExec(ExecContext* ctx);

}  // namespace internal
}  // namespace encompass::sim

#endif  // ENCOMPASS_SIM_EXEC_CONTEXT_H_
