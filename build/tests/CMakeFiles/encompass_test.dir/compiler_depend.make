# Empty compiler generated dependencies file for encompass_test.
# This may be replaced when dependencies are built.
