// Focused tests of the TCP's verb semantics: RESTART-TRANSACTION, the
// transaction restart limit, think time, END outside transaction mode,
// terminal capacity, and unknown programs.

#include <gtest/gtest.h>

#include "apps/banking/banking.h"
#include "encompass/deployment.h"
#include "encompass/tcp.h"

namespace encompass::app {
namespace {

using apps::banking::AccountKey;
using apps::banking::AddBankServerClass;
using apps::banking::BankRequest;
using apps::banking::SeedAccounts;

class TcpVerbsTest : public ::testing::Test {
 protected:
  TcpVerbsTest() : sim_(73), deploy_(&sim_) {
    NodeSpec spec;
    spec.id = 1;
    spec.node_config.num_cpus = 4;
    spec.volumes = {VolumeSpec{"$DATA1", {FileSpec{"acct"}}, {}}};
    node_ = deploy_.AddNode(spec);
    deploy_.DefineFile("acct", 1, "$DATA1");
    SeedAccounts(node_->storage().volumes.at("$DATA1").get(), "acct", 4, 100);
    AddBankServerClass(&deploy_, 1, "$SC.BANK", "acct");
    sim_.Run();
  }

  Tcp* SpawnTcp(const ScreenProgram* program, TcpConfig cfg = {}) {
    cfg.programs["p"] = program;
    auto pair = os::SpawnPair<Tcp>(node_->node(), "$TCPV", 2, 3, cfg);
    sim_.Run();
    return pair.primary;
  }

  sim::Simulation sim_;
  Deployment deploy_;
  NodeDeployment* node_;
};

TEST_F(TcpVerbsTest, RestartVerbRetriesFromBegin) {
  // The program credits an account, then on the first attempt reports a
  // transient condition (RESTART-TRANSACTION); the retry runs to commit.
  // The restarted attempt's credit must have been backed out: exactly one
  // credit survives. The attempt counter lives OUTSIDE the screen fields
  // because restart deliberately restores the checkpointed input.
  auto attempts = std::make_shared<int>(0);
  ScreenProgram program("restart-once");
  program.BeginTransaction()
      .Send(1, "$SC.BANK",
            [](const Fields&) { return BankRequest("credit", AccountKey(0), 7); },
            [attempts](Fields&, const Status& s, const Slice&) {
              if (!s.ok()) return SendDirective::kFailProgram;
              return ++*attempts == 1 ? SendDirective::kRestartTransaction
                                      : SendDirective::kContinue;
            })
      .EndTransaction();
  Tcp* tcp = SpawnTcp(&program);
  ASSERT_TRUE(tcp->AttachTerminal("t", "p", 1));
  sim_.Run();
  EXPECT_EQ(tcp->programs_completed(), 1u);
  EXPECT_EQ(tcp->transactions_restarted(), 1u);
  EXPECT_EQ(*attempts, 2);
  auto r = node_->storage().volumes.at("$DATA1")->ReadRecord(
      "acct", Slice(AccountKey(0)));
  auto rec = storage::Record::Decode(Slice(r.value));
  EXPECT_EQ(rec->Get("balance"), "107");
}

TEST_F(TcpVerbsTest, RestartLimitFailsProgram) {
  // A program that always restarts exhausts the configurable limit.
  ScreenProgram program("always-restart");
  program.BeginTransaction()
      .Send(1, "$SC.BANK",
            [](const Fields&) { return BankRequest("credit", AccountKey(0), 1); })
      .RestartTransaction();
  TcpConfig cfg;
  cfg.restart_limit = 3;
  Tcp* tcp = SpawnTcp(&program, cfg);
  ASSERT_TRUE(tcp->AttachTerminal("t", "p", 1));
  sim_.Run();
  EXPECT_EQ(tcp->programs_completed(), 0u);
  EXPECT_EQ(tcp->programs_failed(), 1u);
  EXPECT_EQ(tcp->transactions_restarted(), 3u);
  EXPECT_GT(sim_.GetStats().Counter("tcp.restart_limit_exceeded"), 0);
  // All attempts backed out: balance unchanged.
  auto r = node_->storage().volumes.at("$DATA1")->ReadRecord(
      "acct", Slice(AccountKey(0)));
  auto rec = storage::Record::Decode(Slice(r.value));
  EXPECT_EQ(rec->Get("balance"), "100");
}

TEST_F(TcpVerbsTest, EndOutsideTransactionModeIsNoop) {
  ScreenProgram program("bare-end");
  program.Compute([](Fields& f) { f["x"] = "1"; }).EndTransaction();
  Tcp* tcp = SpawnTcp(&program);
  ASSERT_TRUE(tcp->AttachTerminal("t", "p", 2));
  sim_.Run();
  EXPECT_EQ(tcp->programs_completed(), 2u);
  EXPECT_EQ(tcp->transactions_committed(), 0u);
}

TEST_F(TcpVerbsTest, ThinkTimePacesIterations) {
  ScreenProgram program("noop");
  program.Compute([](Fields&) {});
  TcpConfig cfg;
  cfg.think_time = Millis(100);
  Tcp* tcp = SpawnTcp(&program, cfg);
  ASSERT_TRUE(tcp->AttachTerminal("t", "p", 5));
  sim_.Run();
  EXPECT_EQ(tcp->programs_completed(), 5u);
  // 4 think pauses between 5 iterations.
  EXPECT_GE(sim_.Now(), Millis(400));
}

TEST_F(TcpVerbsTest, TerminalCapacityAndUnknownProgram) {
  ScreenProgram program("noop");
  program.Compute([](Fields&) {});
  TcpConfig cfg;
  cfg.max_terminals = 2;
  Tcp* tcp = SpawnTcp(&program, cfg);
  EXPECT_TRUE(tcp->AttachTerminal("t1", "p", 1));
  EXPECT_TRUE(tcp->AttachTerminal("t2", "p", 1));
  EXPECT_FALSE(tcp->AttachTerminal("t3", "p", 1));  // full ("up to 32")
  EXPECT_FALSE(tcp->AttachTerminal("t4", "nope", 1));
  sim_.Run();
  EXPECT_EQ(tcp->programs_completed(), 2u);
}

TEST_F(TcpVerbsTest, AbortVerbEndsIterationSuccessfully) {
  ScreenProgram program("abort-only");
  program.BeginTransaction()
      .Send(1, "$SC.BANK",
            [](const Fields&) { return BankRequest("credit", AccountKey(0), 50); })
      .AbortTransaction();
  Tcp* tcp = SpawnTcp(&program);
  ASSERT_TRUE(tcp->AttachTerminal("t", "p", 3));
  sim_.Run();
  EXPECT_EQ(tcp->programs_completed(), 3u);
  EXPECT_EQ(tcp->transactions_committed(), 0u);
  auto r = node_->storage().volumes.at("$DATA1")->ReadRecord(
      "acct", Slice(AccountKey(0)));
  auto rec = storage::Record::Decode(Slice(r.value));
  EXPECT_EQ(rec->Get("balance"), "100");  // every credit backed out
}

}  // namespace
}  // namespace encompass::app
