#include "sim/stats.h"

#include <cmath>
#include <sstream>

namespace encompass::sim {

void Histogram::Sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

int64_t Histogram::Min() const {
  if (samples_.empty()) return 0;
  Sort();
  return samples_.front();
}

int64_t Histogram::Max() const {
  if (samples_.empty()) return 0;
  Sort();
  return samples_.back();
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (int64_t v : samples_) sum += static_cast<double>(v);
  return sum / static_cast<double>(samples_.size());
}

int64_t Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0;
  Sort();
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto idx = static_cast<size_t>(rank);
  return samples_[idx];
}

std::string Stats::ToString() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters_) {
    out << name << " = " << value << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    out << name << ": n=" << hist.count() << " min=" << hist.Min()
        << " mean=" << hist.Mean() << " p50=" << hist.Percentile(50)
        << " p99=" << hist.Percentile(99) << " max=" << hist.Max() << "\n";
  }
  return out.str();
}

}  // namespace encompass::sim
