// E4 — decentralized concurrency control. Sweeps contention (access skew /
// hot-record ratio) and the deadlock-detection timeout, reporting
// throughput, lock waits, timeouts, and RESTART-TRANSACTION cycles. The
// shape: throughput degrades and restarts climb as contention concentrates;
// shorter timeouts resolve deadlocks faster at the cost of false restarts.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace encompass::bench {
namespace {

void TableContentionSweep() {
  Header("E4.a throughput vs contention (8 terminals, 100 accounts)");
  printf("%8s %12s %12s %14s %12s\n", "skew", "txn/s(sim)", "lock waits",
         "lock timeouts", "restarts");
  for (double skew : {0.0, 0.5, 0.9, 0.99}) {
    BankRig rig = MakeBankRig(/*seed=*/81, /*cpus=*/8, /*accounts=*/100,
                              /*terminals=*/8, /*iterations=*/40, skew,
                              /*lock_timeout=*/Millis(200),
                              /*restart_limit=*/1000);
    SimTime makespan = RunUntilProgramsDone(rig, 8 * 40);
    auto& stats = rig.sim->GetStats();
    printf("%8.2f %12.1f %12lld %14lld %12llu\n", skew,
           TxnPerSec(rig.Primary()->transactions_committed(), makespan),
           (long long)stats.Counter("disc.lock_waits"),
           (long long)stats.Counter("disc.lock_timeouts"),
           (unsigned long long)rig.Primary()->transactions_restarted());
    if (skew == 0.99) ReportSimStats("e4a.skew99", rig.sim->GetStats());
  }
}

void TableHotAccountSweep() {
  Header("E4.b throughput vs table size (8 terminals, uniform access)");
  printf("%10s %12s %14s %12s\n", "accounts", "txn/s(sim)", "lock timeouts",
         "restarts");
  for (int accounts : {4, 8, 20, 100, 1000}) {
    BankRig rig = MakeBankRig(/*seed=*/83, /*cpus=*/8, accounts,
                              /*terminals=*/8, /*iterations=*/40, 0.0,
                              Millis(200), /*restart_limit=*/1000);
    SimTime makespan = RunUntilProgramsDone(rig, 8 * 40);
    printf("%10d %12.1f %14lld %12llu\n", accounts,
           TxnPerSec(rig.Primary()->transactions_committed(), makespan),
           (long long)rig.sim->GetStats().Counter("disc.lock_timeouts"),
           (unsigned long long)rig.Primary()->transactions_restarted());
  }
}

void TableTimeoutSweep() {
  Header("E4.c deadlock-detection timeout sweep (4 accounts, 8 terminals)");
  printf("%14s %12s %14s %12s %12s\n", "timeout (ms)", "txn/s(sim)",
         "lock timeouts", "restarts", "failed");
  for (SimDuration timeout : {Millis(50), Millis(200), Millis(1000),
                              Millis(3000)}) {
    BankRig rig = MakeBankRig(/*seed=*/87, /*cpus=*/8, /*accounts=*/4,
                              /*terminals=*/8, /*iterations=*/25, 0.0, timeout,
                              /*restart_limit=*/2000);
    SimTime makespan = RunUntilProgramsDone(rig, 8 * 25, Seconds(7200));
    printf("%14lld %12.1f %14lld %12llu %12llu\n",
           static_cast<long long>(timeout / 1000),
           TxnPerSec(rig.Primary()->transactions_committed(), makespan),
           (long long)rig.sim->GetStats().Counter("disc.lock_timeouts"),
           (unsigned long long)rig.Primary()->transactions_restarted(),
           (unsigned long long)rig.Primary()->programs_failed());
  }
  printf("(deadlock detection is BY TIMEOUT — no wait-for graph exists;\n"
         " the timeout trades detection latency against false restarts)\n");
}

void BM_ContendedTransfer(benchmark::State& state) {
  const int accounts = static_cast<int>(state.range(0));
  uint64_t committed = 0;
  SimTime elapsed = 0;
  for (auto _ : state) {
    BankRig rig = MakeBankRig(/*seed=*/89, 8, accounts, 8, 15, 0.0,
                              Millis(200), 2000);
    rig.sim->RunFor(Seconds(1800));
    rig.sim->Run();
    committed += rig.Primary()->transactions_committed();
    elapsed += rig.sim->Now();
  }
  state.counters["sim_txn_per_s"] =
      benchmark::Counter(TxnPerSec(committed, elapsed));
  state.SetItemsProcessed(static_cast<int64_t>(committed));
}
BENCHMARK(BM_ContendedTransfer)->Arg(4)->Arg(100);

}  // namespace
}  // namespace encompass::bench

int main(int argc, char** argv) {
  encompass::bench::InitReport("e4_locking");
  encompass::bench::ReportMeta(/*seed=*/81);
  printf("E4: decentralized locking and timeout deadlock resolution\n");
  encompass::bench::TableContentionSweep();
  encompass::bench::TableHotAccountSweep();
  encompass::bench::TableTimeoutSweep();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  encompass::bench::WriteReport();
  return 0;
}
