#include "storage/file.h"

#include "common/coding.h"

namespace encompass::storage {

const char* FileOrganizationName(FileOrganization org) {
  switch (org) {
    case FileOrganization::kKeySequenced: return "key-sequenced";
    case FileOrganization::kRelative: return "relative";
    case FileOrganization::kEntrySequenced: return "entry-sequenced";
  }
  return "unknown";
}

Bytes EncodeRecnum(uint64_t n) {
  Bytes key(8);
  for (int i = 0; i < 8; ++i) key[i] = static_cast<uint8_t>(n >> (8 * (7 - i)));
  return key;
}

bool DecodeRecnum(const Slice& key, uint64_t* n) {
  if (key.size() != 8) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) r = (r << 8) | key[i];
  *n = r;
  return true;
}

// ---------------------------------------------------------------------------
// StructuredFile: alternate-key index maintenance
// ---------------------------------------------------------------------------

void StructuredFile::MaintainIndices(const Slice& key, const Slice& before,
                                     const Slice& after) {
  if (!HasIndices()) return;
  Record before_rec, after_rec;
  if (!before.empty()) {
    auto r = Record::Decode(before);
    if (r.ok()) before_rec = *r;
  }
  if (!after.empty()) {
    auto r = Record::Decode(after);
    if (r.ok()) after_rec = *r;
  }
  for (const auto& field : options_.schema.alternate_keys) {
    const std::string old_val = before.empty() ? "" : before_rec.Get(field);
    const std::string new_val = after.empty() ? "" : after_rec.Get(field);
    if (!before.empty() && (after.empty() || old_val != new_val)) {
      auto& idx = indices_[field];
      auto range = idx.equal_range(old_val);
      for (auto it = range.first; it != range.second; ++it) {
        if (Slice(it->second) == key) {
          idx.erase(it);
          break;
        }
      }
    }
    if (!after.empty() && (before.empty() || old_val != new_val)) {
      indices_[field].emplace(new_val, key.ToBytes());
    }
  }
}

void StructuredFile::RebuildIndices() {
  indices_.clear();
  if (!HasIndices()) return;
  ForEach([this](const Slice& key, const Slice& record) {
    MaintainIndices(key, Slice(), record);
  });
}

Result<std::vector<Bytes>> StructuredFile::LookupAlternate(
    const std::string& field, const std::string& value) const {
  bool declared = false;
  for (const auto& f : options_.schema.alternate_keys) declared |= (f == field);
  if (!declared) {
    return Status::InvalidArgument("field '" + field + "' is not an alternate key");
  }
  std::vector<Bytes> pks;
  auto idx_it = indices_.find(field);
  if (idx_it != indices_.end()) {
    auto range = idx_it->second.equal_range(value);
    for (auto it = range.first; it != range.second; ++it) pks.push_back(it->second);
    std::sort(pks.begin(), pks.end(),
              [](const Bytes& a, const Bytes& b) { return Slice(a) < Slice(b); });
  }
  return pks;
}

// ---------------------------------------------------------------------------
// KeySequencedFile
// ---------------------------------------------------------------------------

KeySequencedFile::KeySequencedFile(std::string name, FileOptions options)
    : StructuredFile(std::move(name), options), tree_(options.block_size) {}

Status KeySequencedFile::Insert(const Slice& key, const Slice& record,
                                Bytes* assigned_key) {
  if (key.empty()) return Status::InvalidArgument("key-sequenced insert needs a key");
  ENCOMPASS_RETURN_IF_ERROR(tree_.Insert(key, record));
  if (assigned_key != nullptr) *assigned_key = key.ToBytes();
  MaintainIndices(key, Slice(), record);
  return Status::Ok();
}

Status KeySequencedFile::Update(const Slice& key, const Slice& record) {
  Bytes before;
  if (HasIndices()) {
    auto r = tree_.Get(key);
    if (!r.ok()) return r.status();
    before = std::move(*r);
  }
  ENCOMPASS_RETURN_IF_ERROR(tree_.Update(key, record));
  MaintainIndices(key, Slice(before), record);
  return Status::Ok();
}

Status KeySequencedFile::Delete(const Slice& key) {
  Bytes before;
  if (HasIndices()) {
    auto r = tree_.Get(key);
    if (!r.ok()) return r.status();
    before = std::move(*r);
  }
  ENCOMPASS_RETURN_IF_ERROR(tree_.Delete(key));
  MaintainIndices(key, Slice(before), Slice());
  return Status::Ok();
}

Result<Bytes> KeySequencedFile::Read(const Slice& key) const {
  return tree_.Get(key);
}

Result<TreeEntry> KeySequencedFile::Seek(const Slice& key, bool inclusive) const {
  return inclusive ? tree_.Seek(key) : tree_.SeekAfter(key);
}

void KeySequencedFile::ForEach(
    const std::function<void(const Slice&, const Slice&)>& fn) const {
  tree_.ForEach(fn);
}

void KeySequencedFile::ArchiveTo(Bytes* out) const { tree_.SerializeTo(out); }

Status KeySequencedFile::RestoreFrom(Slice* in) {
  auto restored = BPlusTree::Deserialize(in, options_.block_size);
  if (!restored.ok()) return restored.status();
  tree_ = std::move(**restored);
  RebuildIndices();
  return Status::Ok();
}

double KeySequencedFile::CompressionRatio() const {
  size_t raw = tree_.UncompressedDataSize();
  if (raw == 0) return 1.0;
  Bytes compressed;
  tree_.SerializeTo(&compressed);
  return static_cast<double>(compressed.size()) / static_cast<double>(raw);
}

// ---------------------------------------------------------------------------
// RelativeFile
// ---------------------------------------------------------------------------

namespace {

Status BadRecnum() { return Status::InvalidArgument("bad record-number key"); }

void ArchiveSlots(const std::map<uint64_t, Bytes>& slots, Bytes* out) {
  PutVarint64(out, slots.size());
  for (const auto& [num, rec] : slots) {
    PutVarint64(out, num);
    PutLengthPrefixed(out, Slice(rec));
  }
}

Status RestoreSlots(Slice* in, std::map<uint64_t, Bytes>* slots) {
  uint64_t n;
  if (!GetVarint64(in, &n)) return DecodeError("slot count");
  slots->clear();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t num;
    Bytes rec;
    if (!GetVarint64(in, &num) || !GetLengthPrefixedBytes(in, &rec)) {
      return DecodeError("slot entry");
    }
    (*slots)[num] = std::move(rec);
  }
  return Status::Ok();
}

Result<TreeEntry> SeekSlots(const std::map<uint64_t, Bytes>& slots,
                            const Slice& key, bool inclusive) {
  uint64_t n;
  if (key.empty()) n = 0;
  else if (!DecodeRecnum(key, &n)) return BadRecnum();
  auto it = inclusive ? slots.lower_bound(n) : slots.upper_bound(n);
  if (it == slots.end()) return Status::EndOfFile();
  return TreeEntry{EncodeRecnum(it->first), it->second};
}

}  // namespace

Status RelativeFile::Insert(const Slice& key, const Slice& record,
                            Bytes* assigned_key) {
  uint64_t n;
  if (!DecodeRecnum(key, &n)) return BadRecnum();
  if (slots_.count(n)) return Status::AlreadyExists("slot occupied");
  slots_[n] = record.ToBytes();
  if (assigned_key != nullptr) *assigned_key = key.ToBytes();
  MaintainIndices(key, Slice(), record);
  return Status::Ok();
}

Status RelativeFile::Update(const Slice& key, const Slice& record) {
  uint64_t n;
  if (!DecodeRecnum(key, &n)) return BadRecnum();
  auto it = slots_.find(n);
  if (it == slots_.end()) return Status::NotFound("empty slot");
  Bytes before = std::move(it->second);
  it->second = record.ToBytes();
  MaintainIndices(key, Slice(before), record);
  return Status::Ok();
}

Status RelativeFile::Delete(const Slice& key) {
  uint64_t n;
  if (!DecodeRecnum(key, &n)) return BadRecnum();
  auto it = slots_.find(n);
  if (it == slots_.end()) return Status::NotFound("empty slot");
  Bytes before = std::move(it->second);
  slots_.erase(it);
  MaintainIndices(key, Slice(before), Slice());
  return Status::Ok();
}

Result<Bytes> RelativeFile::Read(const Slice& key) const {
  uint64_t n;
  if (!DecodeRecnum(key, &n)) return BadRecnum();
  auto it = slots_.find(n);
  if (it == slots_.end()) return Status::NotFound("empty slot");
  return it->second;
}

Result<TreeEntry> RelativeFile::Seek(const Slice& key, bool inclusive) const {
  return SeekSlots(slots_, key, inclusive);
}

void RelativeFile::ForEach(
    const std::function<void(const Slice&, const Slice&)>& fn) const {
  for (const auto& [num, rec] : slots_) {
    fn(Slice(EncodeRecnum(num)), Slice(rec));
  }
}

void RelativeFile::ArchiveTo(Bytes* out) const { ArchiveSlots(slots_, out); }

Status RelativeFile::RestoreFrom(Slice* in) {
  ENCOMPASS_RETURN_IF_ERROR(RestoreSlots(in, &slots_));
  RebuildIndices();
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// EntrySequencedFile
// ---------------------------------------------------------------------------

Status EntrySequencedFile::Insert(const Slice& key, const Slice& record,
                                  Bytes* assigned_key) {
  uint64_t n;
  if (key.empty()) {
    n = next_seq_++;
  } else {
    // Re-insert under a previously assigned key (used when a backout of a
    // deletion-compensating path must restore an entry).
    if (!DecodeRecnum(key, &n)) return BadRecnum();
    if (entries_.count(n)) return Status::AlreadyExists("entry exists");
    if (n >= next_seq_) next_seq_ = n + 1;
  }
  Bytes k = EncodeRecnum(n);
  entries_[n] = record.ToBytes();
  if (assigned_key != nullptr) *assigned_key = k;
  MaintainIndices(Slice(k), Slice(), record);
  return Status::Ok();
}

Status EntrySequencedFile::Update(const Slice& key, const Slice& record) {
  uint64_t n;
  if (!DecodeRecnum(key, &n)) return BadRecnum();
  auto it = entries_.find(n);
  if (it == entries_.end()) return Status::NotFound("no such entry");
  Bytes before = std::move(it->second);
  it->second = record.ToBytes();
  MaintainIndices(key, Slice(before), record);
  return Status::Ok();
}

Status EntrySequencedFile::Delete(const Slice&) {
  return Status::NotSupported("entry-sequenced files do not support deletion");
}

Status EntrySequencedFile::RemoveEntry(const Slice& key) {
  uint64_t n;
  if (!DecodeRecnum(key, &n)) return BadRecnum();
  auto it = entries_.find(n);
  if (it == entries_.end()) return Status::NotFound("no such entry");
  Bytes before = std::move(it->second);
  entries_.erase(it);
  MaintainIndices(key, Slice(before), Slice());
  return Status::Ok();
}

Result<Bytes> EntrySequencedFile::Read(const Slice& key) const {
  uint64_t n;
  if (!DecodeRecnum(key, &n)) return BadRecnum();
  auto it = entries_.find(n);
  if (it == entries_.end()) return Status::NotFound("no such entry");
  return it->second;
}

Result<TreeEntry> EntrySequencedFile::Seek(const Slice& key, bool inclusive) const {
  return SeekSlots(entries_, key, inclusive);
}

void EntrySequencedFile::ForEach(
    const std::function<void(const Slice&, const Slice&)>& fn) const {
  for (const auto& [num, rec] : entries_) {
    fn(Slice(EncodeRecnum(num)), Slice(rec));
  }
}

void EntrySequencedFile::ArchiveTo(Bytes* out) const {
  Bytes body;
  ArchiveSlots(entries_, &body);
  PutVarint64(&body, next_seq_);
  out->insert(out->end(), body.begin(), body.end());
}

Status EntrySequencedFile::RestoreFrom(Slice* in) {
  ENCOMPASS_RETURN_IF_ERROR(RestoreSlots(in, &entries_));
  if (!GetVarint64(in, &next_seq_)) return DecodeError("entry next_seq");
  RebuildIndices();
  return Status::Ok();
}

std::unique_ptr<StructuredFile> MakeFile(FileOrganization org, std::string name,
                                         FileOptions options) {
  switch (org) {
    case FileOrganization::kKeySequenced:
      return std::make_unique<KeySequencedFile>(std::move(name), std::move(options));
    case FileOrganization::kRelative:
      return std::make_unique<RelativeFile>(std::move(name), std::move(options));
    case FileOrganization::kEntrySequenced:
      return std::make_unique<EntrySequencedFile>(std::move(name),
                                                  std::move(options));
  }
  return nullptr;
}

}  // namespace encompass::storage
