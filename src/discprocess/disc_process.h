// DiscProcess: the I/O process-pair controlling one disc volume. It is the
// single point of access to the volume's files and the keeper of their lock
// state ("each DISCPROCESS maintains the locking control information for
// those records and files resident on its volume only").
//
// Fault-tolerance per the paper's design:
//  * The primary checkpoints each completed operation (lock grants, the
//    reply, transaction release events) to its backup. The checkpoint is
//    the functional equivalent of Write-Ahead Log — no disc force happens
//    on the update path.
//  * After takeover the backup answers retried requests from its mirrored
//    reply cache, so requesters never observe a duplicate application.
//  * Audit images of updates to audited files are sent (unforced) to the
//    volume's AUDITPROCESS; TMF forces them at phase one of commit.

#ifndef ENCOMPASS_DISCPROCESS_DISC_PROCESS_H_
#define ENCOMPASS_DISCPROCESS_DISC_PROCESS_H_

#include <deque>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "discprocess/disc_protocol.h"
#include "discprocess/lock_manager.h"
#include "os/process_pair.h"
#include "storage/volume.h"

namespace encompass::discprocess {

/// Configuration of one DISCPROCESS pair.
struct DiscProcessConfig {
  storage::Volume* volume = nullptr;   ///< shared durable volume (the discs)
  std::string audit_process;           ///< AUDITPROCESS name; "" = unaudited volume
  SimDuration base_latency = Micros(300);   ///< request processing cost
  SimDuration io_latency = Millis(10);      ///< per physical disc read
  SimDuration default_lock_timeout = Seconds(1);  ///< deadlock detection
  size_t reply_cache_capacity = 4096;
  /// Charge read latency from the volume's per-drive schedule (the paper's
  /// write-both / read-either rule: concurrent reads overlap across the
  /// mirror) instead of a flat disc_ios * io_latency. Default off preserves
  /// the legacy timing exactly (same convention as group_commit_window=0).
  bool overlap_mirror_reads = false;
  /// Piggyback consecutive operations' checkpoint deltas into one backup
  /// message flushed after this window. 0 = flush per operation (today's
  /// behavior). A nonzero window trades a bounded takeover-replay gap for
  /// far fewer interprocessor messages — the acknowledged main cost of
  /// process pairs.
  SimDuration ckpt_coalesce_window = 0;
};

/// The DISCPROCESS pair.
class DiscProcess : public os::PairedProcess {
 public:
  explicit DiscProcess(DiscProcessConfig config) : config_(config) {}

  std::string DebugName() const override { return pair_name() + "/disc"; }

  const LockManager& locks() const { return locks_; }
  storage::Volume* volume() const { return config_.volume; }

 protected:
  void OnPairAttach() override;
  void OnRequest(const net::Message& msg) override;
  void OnCheckpoint(const Slice& delta) override;
  void OnBackupAttached() override;
  void OnTakeover() override;

 private:
  struct CachedReply {
    uint32_t tag;
    Status::Code status;
    std::string message;  ///< full Status text, replayed verbatim on retries
    /// Shared with the in-flight delayed reply — caching never copies the
    /// payload bytes.
    std::shared_ptr<const Bytes> payload;
  };
  using RequestKey = std::pair<net::ProcessId, uint64_t>;

  /// Accumulates one operation's checkpoint entries, flushed as one message
  /// (or folded into the coalescing buffer when ckpt_coalesce_window > 0).
  struct CheckpointBatch {
    Bytes delta;
    int entries = 0;
  };

  void HandleOperation(const net::Message& msg, const DiscRequest& req);
  /// Queue-lane path: executes one lane batch in plan order, without lock
  /// acquisition. Mutations are audited per-op under the op's own transid,
  /// so abort backout and ROLLFORWARD see queue-lane work exactly like
  /// lock-lane work.
  void HandlePlannedBatch(const net::Message& msg);
  PlannedBatchReply::OpResult ExecutePlannedOp(const PlannedOp& op,
                                               int* disc_ios);
  /// Runs the operation body once required locks are held.
  void Execute(const net::Message& msg, const DiscRequest& req);
  /// Lock step: returns true when held/granted; false when parked or failed
  /// (failure already replied).
  bool EnsureLock(const net::Message& msg, const DiscRequest& req,
                  const Transid& owner, LockKey key);
  void ParkRequest(const net::Message& msg, const Transid& owner, LockKey key,
                   SimDuration timeout);
  void ResumeGranted(const std::vector<LockGrant>& grants);
  void HandleStateChange(const net::Message& msg);
  void FinishWithReply(const net::Message& msg, const Status& status,
                       Bytes payload, int disc_ios, CheckpointBatch* batch);
  void EmitAudit(const Transid& transid, storage::MutationOp op, const Slice& key,
                 const storage::OpResult& result, const Slice& after,
                 const std::string& file);
  /// Drives the reliable, ordered delivery of queued audit records to the
  /// AUDITPROCESS (one in-flight batch; retried until acknowledged).
  void PumpAuditQueue();
  void CacheReply(const RequestKey& rk, uint32_t tag, const Status& status,
                  std::shared_ptr<const Bytes> payload);

  // Checkpoint encoding helpers.
  void CkptGrant(CheckpointBatch* batch, const Transid& owner, const LockKey& key);
  void CkptRelease(CheckpointBatch* batch, const Transid& owner);
  void CkptAborting(CheckpointBatch* batch, const Transid& owner);
  void CkptReply(CheckpointBatch* batch, const RequestKey& rk, uint32_t tag,
                 Status::Code status, const std::string& message,
                 const Bytes& payload);
  void CkptAuditPushEntry(CheckpointBatch* batch, const Bytes& encoded);
  void CkptAuditPopEntry(CheckpointBatch* batch);
  /// Sends the batch now (window 0) or folds it into the coalescing buffer
  /// and arms the flush timer.
  void FlushCheckpoint(CheckpointBatch* batch);
  /// Sends whatever the coalescing buffer holds, immediately.
  void FlushPendingCheckpoint();

  /// Marks a transaction as resolved (committed or backed out). A request
  /// carrying a resolved transid arriving later — e.g. a retransmission
  /// finally delivered after a partition heals — must not acquire locks for
  /// the dead transaction; it is rejected with Aborted.
  void MarkResolved(const Transid& transid);
  bool IsResolved(const Transid& transid) const {
    return resolved_.count(transid.Pack()) != 0;
  }

  struct Metrics {
    sim::MetricId ops, dedup_replays, dedup_inflight_drops;
    sim::MetricId lock_waits, lock_timeouts, lock_releases;
    sim::MetricId lock_conflict_aborts, lock_timeout_aborts;
    sim::MetricId scan_batches, scan_records, undo_ops, flush_writes;
    sim::MetricId planned_batches, planned_ops, planned_rejects;
    sim::MetricId audit_records, audit_redelivery;
    sim::MetricId ckpt_messages, ckpt_entries;
    sim::MetricId op_ios, queue_depth, op_latency, lock_wait_time;  // histograms
  };

  DiscProcessConfig config_;
  Metrics m_;
  LockManager locks_;
  std::set<Transid> aborting_;
  std::set<uint64_t> resolved_;
  std::deque<uint64_t> resolved_order_;

  std::map<RequestKey, CachedReply> reply_cache_;
  std::deque<RequestKey> reply_cache_order_;
  std::set<RequestKey> in_flight_;

  struct ParkedOp {
    net::Message msg;
    Transid owner;
    LockKey key;
    uint64_t timer = 0;
    SimTime parked_at = 0;  ///< for the lock.wait_time histogram
  };
  std::list<ParkedOp> parked_;

  // Audit records awaiting acknowledged delivery. Mirrored to the backup so
  // a takeover never loses a before-image (the checkpoint IS the paper's
  // WAL-equivalent). FIFO with one batch in flight preserves LSN order.
  std::deque<Bytes> audit_queue_;  // encoded AuditRecords
  bool audit_in_flight_ = false;

  // Coalescing buffer (ckpt_coalesce_window > 0): deltas accumulated since
  // the last backup message, flushed by timer, by a fresh backup attaching,
  // or discarded when the backup is lost (the full-state resync supersedes).
  CheckpointBatch pending_ckpt_;
  uint64_t ckpt_timer_ = 0;
  bool ckpt_timer_armed_ = false;
};

}  // namespace encompass::discprocess

#endif  // ENCOMPASS_DISCPROCESS_DISC_PROCESS_H_
