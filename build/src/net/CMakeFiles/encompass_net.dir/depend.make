# Empty dependencies file for encompass_net.
# This may be replaced when dependencies are built.
