// AuditTrail: "a numbered sequence of disc files whose ... creation and
// purging is managed by TMF". Like a Volume, an AuditTrail is durable
// hardware state that outlives the processes writing it — but appended
// records are volatile until forced to disc (the force happens during phase
// one of commit). On total node failure the unforced suffix is lost.

#ifndef ENCOMPASS_AUDIT_AUDIT_TRAIL_H_
#define ENCOMPASS_AUDIT_AUDIT_TRAIL_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "audit/audit_record.h"

namespace encompass::audit {

/// Configuration of one audit trail.
struct AuditTrailConfig {
  size_t records_per_file = 4096;  ///< audit file (segment) capacity
};

/// Durable, numbered sequence of audit files holding AuditRecords.
class AuditTrail {
 public:
  explicit AuditTrail(std::string name, AuditTrailConfig config = {});

  const std::string& name() const { return name_; }

  /// Appends a record (volatile until Force). Returns the assigned LSN
  /// (monotone from 1).
  uint64_t Append(AuditRecord record);

  /// Forces all appended records to disc. Returns how many became durable.
  size_t Force();

  /// Total node failure: the unforced suffix is lost.
  void DropVolatile();

  /// All records (durable or not) of the given transaction.
  std::vector<AuditRecord> RecordsForTransaction(const Transid& transid) const;

  /// All durable records with lsn > after_lsn, in LSN order (ROLLFORWARD
  /// reads only what made it to disc).
  std::vector<AuditRecord> DurableRecordsAfter(uint64_t after_lsn) const;

  /// Drops whole audit files whose records all have lsn <= up_to_lsn and
  /// are durable. Returns the number of files purged.
  size_t Purge(uint64_t up_to_lsn);

  /// Raises the undo floor: records with lsn <= `lsn` are excluded from
  /// backout fetches. Set by recovery after a volume is rebuilt from its
  /// archive plus committed redo — the surviving pre-crash images are not
  /// reflected in the rebuilt volume, and applying their before-images
  /// during a later backout would clobber writes committed since.
  void SetUndoFloor(uint64_t lsn) {
    if (lsn > undo_floor_) undo_floor_ = lsn;
  }
  uint64_t undo_floor() const { return undo_floor_; }

  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t durable_lsn() const { return durable_lsn_; }
  size_t record_count() const;
  /// Number of audit files currently retained.
  size_t file_count() const { return files_.size(); }
  /// Sequence number of the first retained audit file.
  uint64_t first_file_number() const { return first_file_number_; }

 private:
  struct AuditFile {
    uint64_t number;
    std::vector<AuditRecord> records;
  };

  std::string name_;
  AuditTrailConfig config_;
  std::deque<AuditFile> files_;
  uint64_t next_lsn_ = 1;
  uint64_t durable_lsn_ = 0;  // highest LSN forced to disc
  uint64_t undo_floor_ = 0;   // see SetUndoFloor
  uint64_t first_file_number_ = 1;
  uint64_t next_file_number_ = 1;
};

/// Monitor Audit Trail: per-node history of transaction completion statuses.
/// Writing (and forcing) a commit record here IS the commit point.
class MonitorAuditTrail {
 public:
  /// Appends and forces a completion record; returns its sequence number.
  uint64_t AppendForced(const CompletionRecord& record);

  /// Completion status if known: 1 = committed, 0 = aborted, -1 = unknown.
  /// O(1): served from a transid-keyed index (this sits on the
  /// disposition-query path of every in-doubt resolution).
  int Lookup(const Transid& transid) const;

  const std::vector<CompletionRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }

 private:
  std::vector<CompletionRecord> records_;
  // First completion recorded per transaction wins (idempotent re-commits
  // append duplicate records; the disposition never changes).
  std::unordered_map<uint64_t, Completion> index_;
};

}  // namespace encompass::audit

#endif  // ENCOMPASS_AUDIT_AUDIT_TRAIL_H_
