// EventFn: the callback type carried by every simulation event.
//
// A drop-in replacement for std::function<void()> on the engine's hottest
// path. Callables whose state fits kInlineCapacity bytes (and is nothrow
// move-constructible) live inside the EventFn itself — scheduling a typical
// timer chain or message hand-off performs no heap allocation. Larger or
// throwing-move captures fall back to a single heap cell, which is what
// std::function did for anything past its (much smaller) SSO buffer anyway.
//
// Move-only by design: an event's callback has exactly one owner (the queue
// slot holding it), moves loop-to-loop through the cross-node channels, and
// is consumed by the single call that fires it. Copyability is what forces
// std::function to type-erase through a heavier control block; dropping it
// is most of the win.

#ifndef ENCOMPASS_SIM_EVENT_FN_H_
#define ENCOMPASS_SIM_EVENT_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace encompass::sim {

class EventFn {
 public:
  /// Captures up to this many bytes are stored inline (no allocation).
  /// Sized for the engine's own lambdas: a this-pointer, a couple of values,
  /// a context struct. Bigger closures (a Message in flight) go to the heap.
  static constexpr size_t kInlineCapacity = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): callable adaptor
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineCapacity &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vtable_ = &kInlineVTable<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      vtable_ = &kHeapVTable<D>;
    }
  }

  EventFn(EventFn&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_ != nullptr) {
      vtable_->relocate(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      if (vtable_ != nullptr) vtable_->destroy(storage_);
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) {
        vtable_->relocate(storage_, other.storage_);
        other.vtable_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() {
    if (vtable_ != nullptr) vtable_->destroy(storage_);
  }

  explicit operator bool() const { return vtable_ != nullptr; }

  void operator()() { vtable_->invoke(storage_); }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    // Move-constructs into dst from src and destroys src's residue; the
    // source EventFn is then vacant. noexcept by construction (inline
    // storage requires nothrow move; heap storage relocates a pointer).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename D>
  static constexpr VTable kInlineVTable = {
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* dst, void* src) {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) { std::launder(reinterpret_cast<D*>(s))->~D(); },
  };

  template <typename D>
  static constexpr VTable kHeapVTable = {
      [](void* s) { (**reinterpret_cast<D**>(s))(); },
      [](void* dst, void* src) {
        *reinterpret_cast<D**>(dst) = *reinterpret_cast<D**>(src);
      },
      [](void* s) { delete *reinterpret_cast<D**>(s); },
  };

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const VTable* vtable_ = nullptr;
};

}  // namespace encompass::sim

#endif  // ENCOMPASS_SIM_EVENT_FN_H_
