// E11 — hotspot contention: lock lane vs queue lane. The queue execution
// lane (QueuePlanner, after the QueCC paradigm) batches predeclared
// transactions into epochs and executes them lock-free in plan order, so a
// hot-record transaction cannot abort on lock conflict or deadlock timeout.
// This binary drives the same skewed transfer workloads against both lanes
// of an identical two-node deployment and reports abort rate, p50/p99
// client latency (simulated), and committed transactions/second:
//   * uniform      — uniform picks over the node's accounts (the control:
//                    both lanes should be within noise of each other);
//   * zipf         — both ends Zipfian (theta 1.1) over the accounts;
//   * hot          — 50% of debits hit one hot account;
//   * tpcb         — uniform transfer plus a delta on the node's single
//                    branch record (TPC-B idiom: every transaction crosses
//                    one ultra-hot row).
// A determinism sweep re-runs the hot shape on both lanes at engine worker
// counts {0,1,2,4} and refuses to report a "divergence"-free JSON unless
// commits, aborts, and the balance checksum are identical everywhere.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "encompass/deployment.h"
#include "storage/record.h"
#include "tmf/file_system.h"
#include "tmf/queue_lane.h"
#include "tmf/tmf_protocol.h"

namespace encompass::bench {
namespace {

constexpr uint64_t kSeed = 42;
constexpr int kNodes = 2;
constexpr int kAccountsPerNode = 32;
constexpr int kDriversPerNode = 6;
constexpr double kZipfTheta = 1.1;

enum class Shape { kUniform, kZipf, kHot, kTpcb };

const char* ShapeName(Shape s) {
  switch (s) {
    case Shape::kUniform: return "uniform";
    case Shape::kZipf: return "zipf";
    case Shape::kHot: return "hot";
    case Shape::kTpcb: return "tpcb";
  }
  return "?";
}

std::string AcctKey(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "acct%05d", i);
  return buf;
}

std::string BranchFile(int n) { return "branch" + std::to_string(n); }

int64_t ParseBalance(const Bytes& image) {
  auto rec = storage::Record::Decode(Slice(image));
  if (!rec.ok()) return 0;
  return strtoll(rec->Get("balance").c_str(), nullptr, 10);
}

/// Run-wide tally shared by every driver. Drivers on different nodes report
/// from different engine loops when the run is parallel, hence the mutex.
struct Tally {
  std::mutex mu;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  std::vector<SimDuration> latencies;
};

struct DriverConfig {
  const storage::Catalog* catalog = nullptr;
  Tally* tally = nullptr;
  uint64_t seed = 1;
  bool queue = false;
  Shape shape = Shape::kUniform;
  int accounts_per_node = kAccountsPerNode;
  SimTime stop_at = 0;
};

/// One closed-loop terminal: transfer transactions back to back against its
/// own node (the queue lane is node-local; the lock lane gets the same
/// node-local picks so the comparison is apples to apples).
class Driver : public os::Process {
 public:
  explicit Driver(DriverConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}
  std::string DebugName() const override { return "e11-driver"; }

 protected:
  void OnStart() override {
    fs_ = std::make_unique<tmf::FileSystem>(this, cfg_.catalog);
    SetTimer(Micros(rng_.Uniform(200)), [this]() { Next(); });
  }

 private:
  int PickAccount() {
    const uint64_t n = static_cast<uint64_t>(cfg_.accounts_per_node);
    switch (cfg_.shape) {
      case Shape::kUniform:
      case Shape::kTpcb:
        return static_cast<int>(rng_.Uniform(n));
      case Shape::kZipf:
        return static_cast<int>(rng_.Skewed(n, kZipfTheta));
      case Shape::kHot:
        return rng_.Bernoulli(0.5) ? 0 : static_cast<int>(rng_.Uniform(n));
    }
    return 0;
  }

  void Next() {
    set_current_transid(0);
    if (sim()->Now() >= cfg_.stop_at) return;
    const int base =
        (static_cast<int>(node()->id()) - 1) * cfg_.accounts_per_node;
    int f = PickAccount();
    int t = PickAccount();
    for (int guard = 0; t == f && guard < 64; ++guard) {
      t = static_cast<int>(
          rng_.Uniform(static_cast<uint64_t>(cfg_.accounts_per_node)));
    }
    from_ = base + f;
    to_ = base + t;
    amount_ = 1 + static_cast<int64_t>(rng_.Uniform(100));
    start_ = sim()->Now();
    if (cfg_.queue) {
      SubmitQueue();
    } else {
      BeginLock();
    }
  }

  void Finish(bool committed) {
    {
      std::lock_guard<std::mutex> lk(cfg_.tally->mu);
      if (committed) {
        ++cfg_.tally->commits;
      } else {
        ++cfg_.tally->aborts;
      }
      cfg_.tally->latencies.push_back(sim()->Now() - start_);
    }
    set_current_transid(0);
    SetTimer(Micros(10 + rng_.Uniform(40)), [this]() { Next(); });
  }

  // -- queue lane -------------------------------------------------------------

  void SubmitQueue() {
    tmf::QueueTxn txn;
    txn.declared = {"acct"};
    tmf::QueueOp debit;
    debit.kind = tmf::QueueOp::Kind::kDelta;
    debit.file = "acct";
    debit.key = ToBytes(AcctKey(from_));
    debit.field = "balance";
    debit.delta = -amount_;
    tmf::QueueOp credit = debit;
    credit.key = ToBytes(AcctKey(to_));
    credit.delta = amount_;
    txn.ops = {debit, credit};
    if (cfg_.shape == Shape::kTpcb) {
      const std::string branch = BranchFile(static_cast<int>(node()->id()));
      txn.declared.push_back(branch);
      tmf::QueueOp b = debit;
      b.file = branch;
      b.key = ToBytes(std::string("b"));
      b.delta = amount_;
      txn.ops.push_back(b);
    }
    os::CallOptions opt;
    opt.timeout = Seconds(8);
    opt.retries = 0;
    Call(net::Address(node()->id(), "$QPLAN"), tmf::kTmfQueueSubmit,
         txn.Encode(),
         [this](const Status& s, const net::Message&) { Finish(s.ok()); },
         opt);
  }

  // -- lock lane --------------------------------------------------------------

  void BeginLock() {
    os::CallOptions opt;
    opt.timeout = Seconds(2);
    opt.retries = 2;
    Call(net::Address(node()->id(), "$TMP"), tmf::kTmfBegin, {},
         [this](const Status& s, const net::Message& m) {
           if (!s.ok()) {
             // No transaction existed: nothing committed or aborted; retry.
             SetTimer(Millis(1), [this]() { Next(); });
             return;
           }
           auto t = tmf::DecodeTransidPayload(Slice(m.payload));
           if (!t.ok()) {
             SetTimer(Millis(1), [this]() { Next(); });
             return;
           }
           txn_ = t->Pack();
           set_current_transid(txn_);
           // Lock in account order so deadlocks (resolved by timeout) do not
           // dominate the measurement; the transfer direction is preserved.
           lo_ = from_ < to_ ? from_ : to_;
           hi_ = from_ < to_ ? to_ : from_;
           fs_->Read("acct", Slice(AcctKey(lo_)), /*lock=*/true,
                     [this](const Status& s1, const Bytes& v1) {
                       if (!s1.ok()) return AbortLock();
                       bal_lo_ = ParseBalance(v1);
                       ReadHi();
                     });
         },
         opt);
  }

  void ReadHi() {
    fs_->Read("acct", Slice(AcctKey(hi_)), /*lock=*/true,
              [this](const Status& s, const Bytes& v) {
                if (!s.ok()) return AbortLock();
                bal_hi_ = ParseBalance(v);
                storage::Record r;
                r.Set("balance",
                      std::to_string(bal_lo_ +
                                     (lo_ == from_ ? -amount_ : amount_)));
                fs_->Update("acct", Slice(AcctKey(lo_)), Slice(r.Encode()),
                            [this](const Status& s2, const Bytes&) {
                              if (!s2.ok()) return AbortLock();
                              UpdateHi();
                            });
              });
  }

  void UpdateHi() {
    storage::Record r;
    r.Set("balance",
          std::to_string(bal_hi_ + (hi_ == to_ ? amount_ : -amount_)));
    fs_->Update("acct", Slice(AcctKey(hi_)), Slice(r.Encode()),
                [this](const Status& s, const Bytes&) {
                  if (!s.ok()) return AbortLock();
                  if (cfg_.shape == Shape::kTpcb) {
                    TouchBranch();
                  } else {
                    EndLock();
                  }
                });
  }

  void TouchBranch() {
    const std::string branch = BranchFile(static_cast<int>(node()->id()));
    fs_->Read(branch, Slice(std::string("b")), /*lock=*/true,
              [this, branch](const Status& s, const Bytes& v) {
                if (!s.ok()) return AbortLock();
                storage::Record r;
                r.Set("balance", std::to_string(ParseBalance(v) + amount_));
                fs_->Update(branch, Slice(std::string("b")), Slice(r.Encode()),
                            [this](const Status& s2, const Bytes&) {
                              if (!s2.ok()) return AbortLock();
                              EndLock();
                            });
              });
  }

  void EndLock() {
    os::CallOptions opt;
    opt.timeout = Seconds(8);
    Call(net::Address(node()->id(), "$TMP"), tmf::kTmfEnd,
         tmf::EncodeTransidPayload(Transid::Unpack(txn_)),
         [this](const Status& s, const net::Message&) { Finish(s.ok()); },
         opt);
  }

  void AbortLock() {
    os::CallOptions opt;
    opt.timeout = Seconds(8);
    Call(net::Address(node()->id(), "$TMP"), tmf::kTmfAbort,
         tmf::EncodeTransidPayload(Transid::Unpack(txn_)),
         [this](const Status&, const net::Message&) { Finish(false); },
         opt);
  }

  DriverConfig cfg_;
  Random rng_;
  std::unique_ptr<tmf::FileSystem> fs_;
  uint64_t txn_ = 0;
  int from_ = 0, to_ = 0, lo_ = 0, hi_ = 0;
  int64_t amount_ = 0, bal_lo_ = 0, bal_hi_ = 0;
  SimTime start_ = 0;
};

struct LaneRun {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  double abort_rate = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double tps = 0;             ///< committed txns / simulated second
  double events_per_sec = 0;  ///< engine events / simulated second
  uint64_t checksum = 0;      ///< FNV over final balances + counts
  int64_t lock_timeout_aborts = 0;
  int64_t lock_conflict_aborts = 0;
  int64_t queue_commits = 0;
  int64_t queue_aborts = 0;
};

uint64_t Fnv64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (i * 8)) & 0xFF)) * 1099511628211ULL;
  }
  return h;
}

LaneRun RunLane(Shape shape, bool queue, int workers, SimDuration span) {
  sim::Simulation sim(kSeed, workers);
  app::Deployment deploy(&sim);
  for (int n = 1; n <= kNodes; ++n) {
    app::NodeSpec spec;
    spec.id = static_cast<net::NodeId>(n);
    spec.node_config.num_cpus = 4;
    // Tight enough that queueing behind a hot-row lock chain times out (the
    // real-world admission-control setting), long enough that an isolated
    // wait on a uniform collision still succeeds.
    spec.disc_config.default_lock_timeout = Millis(60);
    spec.exec_lane = queue ? app::ExecLane::kQueue : app::ExecLane::kLocks;
    spec.volumes = {app::VolumeSpec{
        "$DATA" + std::to_string(n),
        {app::FileSpec{"acct"}, app::FileSpec{BranchFile(n)}},
        {}}};
    deploy.AddNode(spec);
  }
  deploy.LinkAll();
  storage::FileDefinition def;
  def.name = "acct";
  def.partitions.AddPartition(ToBytes(AcctKey(kAccountsPerNode)), 1, "$DATA1");
  def.partitions.AddPartition({}, 2, "$DATA2");
  deploy.DefinePartitionedFile(def);
  for (int n = 1; n <= kNodes; ++n) {
    deploy.DefineFile(BranchFile(n), static_cast<net::NodeId>(n),
                      "$DATA" + std::to_string(n));
    auto* vol = deploy.GetNode(static_cast<net::NodeId>(n))
                    ->storage().volumes.at("$DATA" + std::to_string(n))
                    .get();
    for (int i = (n - 1) * kAccountsPerNode; i < n * kAccountsPerNode; ++i) {
      storage::Record rec;
      rec.Set("balance", "1000");
      vol->Mutate("acct", storage::MutationOp::kInsert, Slice(AcctKey(i)),
                  Slice(rec.Encode()));
    }
    storage::Record rec;
    rec.Set("balance", "0");
    vol->Mutate(BranchFile(n), storage::MutationOp::kInsert,
                Slice(std::string("b")), Slice(rec.Encode()));
    vol->Flush();
  }
  sim.RunFor(Millis(10));  // service pairs settle

  Tally tally;
  const SimTime stop_at = sim.Now() + span;
  for (int n = 1; n <= kNodes; ++n) {
    for (int c = 0; c < kDriversPerNode; ++c) {
      DriverConfig dcfg;
      dcfg.catalog = &deploy.catalog();
      dcfg.tally = &tally;
      dcfg.seed = kSeed * 1000003 + static_cast<uint64_t>(n) * 101 +
                  static_cast<uint64_t>(c) * 17;
      dcfg.queue = queue;
      dcfg.shape = shape;
      dcfg.stop_at = stop_at;
      deploy.GetNode(static_cast<net::NodeId>(n))
          ->node()
          ->Spawn<Driver>(1 + c % 3, dcfg);
    }
  }

  sim.RunUntil(stop_at);
  sim.RunFor(Seconds(10));  // drain in-flight transactions and lock waits

  LaneRun r;
  r.commits = tally.commits;
  r.aborts = tally.aborts;
  const uint64_t total = r.commits + r.aborts;
  r.abort_rate = total > 0 ? static_cast<double>(r.aborts) /
                                 static_cast<double>(total)
                           : 0;
  r.p50_ms = PercentileMs(tally.latencies, 50);
  r.p99_ms = PercentileMs(tally.latencies, 99);
  r.tps = TxnPerSec(r.commits, span);
  const double sim_secs =
      static_cast<double>(span) / static_cast<double>(Seconds(1));
  if (sim_secs > 0) {
    r.events_per_sec = static_cast<double>(sim.ExecutedEvents()) / sim_secs;
  }
  uint64_t h = 14695981039346656037ULL;
  for (int n = 1; n <= kNodes; ++n) {
    auto* vol = deploy.GetNode(static_cast<net::NodeId>(n))
                    ->storage().volumes.at("$DATA" + std::to_string(n))
                    .get();
    for (int i = (n - 1) * kAccountsPerNode; i < n * kAccountsPerNode; ++i) {
      auto rd = vol->ReadRecord("acct", Slice(AcctKey(i)));
      h = Fnv64(h, rd.status.ok()
                       ? static_cast<uint64_t>(ParseBalance(rd.value))
                       : 0xDEAD);
    }
    auto rd = vol->ReadRecord(BranchFile(n), Slice(std::string("b")));
    h = Fnv64(h, rd.status.ok()
                     ? static_cast<uint64_t>(ParseBalance(rd.value))
                     : 0xDEAD);
  }
  h = Fnv64(h, r.commits);
  h = Fnv64(h, r.aborts);
  r.checksum = h;
  r.lock_timeout_aborts = sim.GetStats().Counter("lock.timeout_aborts");
  r.lock_conflict_aborts = sim.GetStats().Counter("lock.conflict_aborts");
  r.queue_commits = sim.GetStats().Counter("queue.commits");
  r.queue_aborts = sim.GetStats().Counter("queue.aborts");
  return r;
}

void TableHotspot() {
  Header("E11.a abort rate and latency by workload shape and lane "
         "(seed 42, 2 nodes, 3 sim-sec)");
  printf("%8s %6s %9s %8s %8s %9s %9s %10s\n", "shape", "lane", "commits",
         "aborts", "abort%", "p50 ms", "p99 ms", "txn/s");
  for (Shape shape :
       {Shape::kUniform, Shape::kZipf, Shape::kHot, Shape::kTpcb}) {
    for (bool queue : {false, true}) {
      LaneRun r = RunLane(shape, queue, 0, Seconds(3));
      const char* lane = queue ? "queue" : "locks";
      printf("%8s %6s %9llu %8llu %7.2f%% %9.2f %9.2f %10.1f\n",
             ShapeName(shape), lane, (unsigned long long)r.commits,
             (unsigned long long)r.aborts, 100.0 * r.abort_rate, r.p50_ms,
             r.p99_ms, r.tps);
      const std::string k = std::string(ShapeName(shape)) + "." + lane;
      ReportValue(k + ".commits", static_cast<double>(r.commits));
      ReportValue(k + ".aborts", static_cast<double>(r.aborts));
      ReportValue(k + ".abort_rate", r.abort_rate);
      ReportValue(k + ".p50_ms", r.p50_ms);
      ReportValue(k + ".p99_ms", r.p99_ms);
      ReportValue(k + ".tps", r.tps);
      ReportValue(k + ".events_per_sec", r.events_per_sec);
      if (queue) {
        ReportValue(k + ".queue_commits",
                    static_cast<double>(r.queue_commits));
        ReportValue(k + ".queue_aborts", static_cast<double>(r.queue_aborts));
      } else {
        ReportValue(k + ".lock_timeout_aborts",
                    static_cast<double>(r.lock_timeout_aborts));
        ReportValue(k + ".lock_conflict_aborts",
                    static_cast<double>(r.lock_conflict_aborts));
      }
    }
  }
}

void TableDeterminism() {
  Header("E11.b determinism: hot shape, both lanes, engine workers "
         "{0,1,2,4} (2 sim-sec)");
  printf("%6s %9s %9s %8s %18s %6s\n", "lane", "workers", "commits", "aborts",
         "checksum", "match");
  int divergence = 0;
  for (bool queue : {false, true}) {
    LaneRun base;
    for (int workers : {0, 1, 2, 4}) {
      LaneRun r = RunLane(Shape::kHot, queue, workers, Seconds(2));
      bool match = true;
      if (workers == 0) {
        base = r;
      } else {
        match = r.commits == base.commits && r.aborts == base.aborts &&
                r.checksum == base.checksum;
        if (!match) divergence = 1;
      }
      printf("%6s %9d %9llu %8llu %18llx %6s\n", queue ? "queue" : "locks",
             workers, (unsigned long long)r.commits,
             (unsigned long long)r.aborts, (unsigned long long)r.checksum,
             match ? "yes" : "NO");
    }
  }
  if (divergence != 0) {
    printf("ENGINE DIVERGENCE: same-seed runs differ across worker counts\n");
  }
  ReportValue("divergence", divergence);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  ReportValue("hw_threads", static_cast<double>(hw));
  ReportValue("hw_limited", hw < 4 ? 1 : 0);
}

void BM_HotspotLane(benchmark::State& state) {
  const bool queue = state.range(0) != 0;
  uint64_t commits = 0;
  for (auto _ : state) {
    LaneRun r = RunLane(Shape::kHot, queue, 0, Millis(300));
    benchmark::DoNotOptimize(r.checksum);
    commits += r.commits;
  }
  state.counters["txn/s"] = benchmark::Counter(static_cast<double>(commits),
                                               benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HotspotLane)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace encompass::bench

int main(int argc, char** argv) {
  encompass::bench::InitReport("e11_hotspot");
  encompass::bench::ReportMeta(/*seed=*/42);
  printf("E11: queue-oriented execution lane vs record locks under hotspot "
         "contention\n");
  encompass::bench::TableHotspot();
  encompass::bench::TableDeterminism();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  encompass::bench::WriteReport();
  return 0;
}
