// LockManager: the per-volume concurrency-control state. "Each DISCPROCESS
// maintains the locking control information for those records and files
// resident on its volume only" — concurrency control is decentralized; no
// central lock manager exists. Two granularities (file and record), all
// locks exclusive, FIFO waiting, deadlock resolution by timeout (the
// timeout itself lives in the DISCPROCESS, which cancels the wait).

#ifndef ENCOMPASS_DISCPROCESS_LOCK_MANAGER_H_
#define ENCOMPASS_DISCPROCESS_LOCK_MANAGER_H_

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/transid.h"

namespace encompass::discprocess {

/// Identity of one lockable unit: a whole file, or one record (by primary
/// key) within a file.
struct LockKey {
  std::string file;
  Bytes record;  ///< empty = file-level lock

  bool file_level() const { return record.empty(); }
  std::string ToString() const;

  friend bool operator<(const LockKey& a, const LockKey& b) {
    if (a.file != b.file) return a.file < b.file;
    return Slice(a.record) < Slice(b.record);
  }
  friend bool operator==(const LockKey& a, const LockKey& b) {
    return a.file == b.file && Slice(a.record) == Slice(b.record);
  }
};

/// A lock grant handed out when a release unblocks a waiter.
struct LockGrant {
  Transid owner;
  LockKey key;
};

/// Exclusive two-granularity lock table for one volume.
class LockManager {
 public:
  enum class AcquireResult {
    kGranted,  ///< caller now holds the lock (or already did)
    kQueued,   ///< caller waits in FIFO order
  };

  /// Requests the lock. A file-level lock conflicts with every record lock
  /// in that file held by another transaction, and vice versa. Re-acquiring
  /// a held lock (or a record covered by the caller's file lock) grants.
  AcquireResult Acquire(const Transid& owner, const LockKey& key);

  /// Grants unconditionally — used by a process-pair backup to mirror the
  /// primary's grants from checkpoints. Never queues.
  void ForceGrant(const Transid& owner, const LockKey& key);

  /// Releases every lock held by `owner` (commit phase two, or abort
  /// completion) and removes it from all wait queues. Returns the waiters
  /// that acquired locks as a result, in grant order.
  std::vector<LockGrant> ReleaseAll(const Transid& owner);

  /// Removes `owner` from the wait queue of `key` (lock-wait timeout).
  /// Returns true if a waiting entry was removed.
  bool CancelWait(const Transid& owner, const LockKey& key);

  /// True if `owner` holds `key` itself or a covering file lock.
  bool Holds(const Transid& owner, const LockKey& key) const;

  size_t held_count() const;
  size_t waiter_count() const;
  /// Transactions currently holding at least one lock.
  std::vector<Transid> Holders() const;
  /// Every held (owner, key) pair — used for full-state checkpoints when a
  /// fresh backup attaches.
  std::vector<LockGrant> AllHeld() const;

 private:
  struct Unit {
    Transid holder;                // !valid() = free
    std::deque<Transid> waiters;   // FIFO
  };

  bool FileLockedByOther(const std::string& file, const Transid& owner) const;
  bool AnyRecordLockedByOther(const std::string& file, const Transid& owner) const;
  /// Promotes waiters on units within `file` whose grant conditions now
  /// hold; appends grants.
  void PromoteWaiters(const std::string& file, std::vector<LockGrant>* grants);

  std::map<LockKey, Unit> units_;
  std::map<Transid, std::set<LockKey>> owned_;
};

}  // namespace encompass::discprocess

#endif  // ENCOMPASS_DISCPROCESS_LOCK_MANAGER_H_
