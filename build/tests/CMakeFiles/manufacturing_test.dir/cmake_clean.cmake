file(REMOVE_RECURSE
  "CMakeFiles/manufacturing_test.dir/manufacturing_test.cc.o"
  "CMakeFiles/manufacturing_test.dir/manufacturing_test.cc.o.d"
  "manufacturing_test"
  "manufacturing_test.pdb"
  "manufacturing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manufacturing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
