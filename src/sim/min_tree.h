// MinTree: a tournament (winner) tree over the per-loop next-event keys.
//
// The coordinator needs "which loop holds the earliest pending event" after
// every serial-phase event and at every round boundary. Rescanning all loops
// costs O(loops) per query through a pointer-chasing virtual-ish path
// (queue heads live in separate allocations); the tree keeps a leaf per loop
// shard in one contiguous array and repairs only the root path of leaves
// whose queue actually changed — O(log loops) per update, O(1) for the min
// and O(log loops) for the runner-up.
//
// Leaves hold full EventKeys (not just times) so serial execution can break
// time ties in canonical (time, origin, seq) order across loops, exactly as
// the old full scan did. An empty queue parks its leaf at the +infinity
// sentinel key.

#ifndef ENCOMPASS_SIM_MIN_TREE_H_
#define ENCOMPASS_SIM_MIN_TREE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/event_queue.h"

namespace encompass::sim {

class MinTree {
 public:
  static constexpr uint32_t kNone = 0xffffffffu;

  /// Grows to `n` leaves (never shrinks). New leaves start empty. Existing
  /// leaf keys survive; internal nodes are rebuilt.
  void Resize(size_t n) {
    if (n <= size_) return;
    size_t cap = cap_ == 0 ? 1 : cap_;
    while (cap < n) cap *= 2;
    size_ = n;
    if (cap != cap_) {
      cap_ = cap;
      keys_.resize(cap_, InfKey());
      win_.assign(2 * cap_, 0);
      for (uint32_t i = 0; i < cap_; ++i) win_[cap_ + i] = i;
      for (size_t j = cap_ - 1; j >= 1; --j) Repair(j);
    }
  }

  size_t size() const { return size_; }

  /// Sets leaf `i` to `key` (nullptr = empty) and repairs its root path.
  void Set(size_t i, const EventKey* key) {
    assert(i < size_);
    keys_[i] = key != nullptr ? *key : InfKey();
    for (size_t j = (cap_ + i) / 2; j >= 1; j /= 2) Repair(j);
  }

  const EventKey& KeyAt(size_t i) const { return keys_[i]; }

  /// Leaf index holding the smallest key; kNone if every leaf is empty.
  uint32_t MinIndex() const {
    if (cap_ == 0) return kNone;
    const uint32_t w = win_[1];
    return keys_[w].time == kNoDeadline ? kNone : w;
  }

  /// Time of the smallest key; kNoDeadline if every leaf is empty.
  SimTime MinTime() const {
    return cap_ == 0 ? kNoDeadline : keys_[win_[1]].time;
  }

  /// Time of the second-smallest leaf (duplicates count separately: two
  /// leaves at time T yield MinTime == SecondMinTime == T). kNoDeadline if
  /// fewer than two non-empty leaves. O(log n): the runner-up is the best
  /// of the siblings along the winner's root path.
  SimTime SecondMinTime() const {
    if (cap_ < 2) return kNoDeadline;
    size_t j = cap_ + win_[1];  // the winner's leaf position
    SimTime best = kNoDeadline;
    while (j > 1) {
      const SimTime t = keys_[win_[j ^ 1]].time;
      if (t < best) best = t;
      j /= 2;
    }
    return best;
  }

 private:
  static EventKey InfKey() {
    return EventKey{kNoDeadline, 0xffff, UINT64_MAX};
  }

  void Repair(size_t j) {
    const uint32_t l = win_[2 * j], r = win_[2 * j + 1];
    win_[j] = keys_[r] < keys_[l] ? r : l;
  }

  size_t size_ = 0;  // leaves in use
  size_t cap_ = 0;   // power-of-two leaf capacity
  std::vector<EventKey> keys_;
  std::vector<uint32_t> win_;  // win_[1] = root; win_[cap_+i] = i
};

}  // namespace encompass::sim

#endif  // ENCOMPASS_SIM_MIN_TREE_H_
