// ReferenceEventQueue: the pre-overhaul EventQueue implementation, kept
// verbatim as a differential-testing reference. It stores callbacks as
// std::function and tracks cancellation with pending_/cancelled_ hash sets
// keyed by sequence number — the slow but obviously-correct shape the
// production queue's EventFn + generation-stamped slots must match exactly:
// same firing order, same live-size accounting, same no-op cancel semantics.

#ifndef ENCOMPASS_TESTS_REFERENCE_EVENT_QUEUE_H_
#define ENCOMPASS_TESTS_REFERENCE_EVENT_QUEUE_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/event_queue.h"  // for EventKey / SimTime

namespace encompass::sim::testing {

class ReferenceEventQueue {
 public:
  using EventId = uint64_t;

  explicit ReferenceEventQueue(uint16_t origin = 0) : origin_(origin) {}

  EventId Schedule(SimTime when, uint16_t exec_node, std::function<void()> fn) {
    uint64_t seq = next_seq_++;
    heap_.push(Event{EventKey{when, origin_, seq}, exec_node, true, std::move(fn)});
    pending_.insert(seq);
    ++live_count_;
    return seq;
  }

  void ScheduleKeyed(const EventKey& key, uint16_t exec_node,
                     std::function<void()> fn) {
    heap_.push(Event{key, exec_node, false, std::move(fn)});
    ++live_count_;
  }

  uint64_t IssueSeq() { return next_seq_++; }

  /// Only a still-pending event can be cancelled; a fired, cancelled, or
  /// unknown id is a no-op (no tombstone, no live_count_ change). Returns
  /// whether the cancel took effect (for differential comparison).
  bool Cancel(EventId id) {
    if (pending_.erase(id) == 0) return false;
    cancelled_.insert(id);
    --live_count_;
    return true;
  }

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  const EventKey* NextKey() const {
    SkipCancelled();
    return heap_.empty() ? nullptr : &heap_.top().key;
  }

  SimTime NextTime() const {
    SkipCancelled();
    return heap_.empty() ? kNoDeadline : heap_.top().key.time;
  }

  std::function<void()> PopNext(EventKey* key, uint16_t* exec_node) {
    SkipCancelled();
    assert(!heap_.empty());
    auto& top = const_cast<Event&>(heap_.top());
    *key = top.key;
    *exec_node = top.exec_node;
    std::function<void()> fn = std::move(top.fn);
    if (top.local) pending_.erase(top.key.seq);
    heap_.pop();
    --live_count_;
    return fn;
  }

 private:
  struct Event {
    EventKey key;
    uint16_t exec_node;
    bool local;  // cancellable, seq drawn from this queue's numbering
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const { return b.key < a.key; }
  };

  void SkipCancelled() const {
    // Only local events consult the tombstone set: a keyed event's seq lives
    // in its sender's numbering and may collide with a cancelled local id.
    while (!heap_.empty() && heap_.top().local) {
      auto it = cancelled_.find(heap_.top().key.seq);
      if (it == cancelled_.end()) break;
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  uint16_t origin_;
  mutable std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<uint64_t> pending_;
  mutable std::unordered_set<uint64_t> cancelled_;
  size_t live_count_ = 0;
  uint64_t next_seq_ = 1;
};

}  // namespace encompass::sim::testing

#endif  // ENCOMPASS_TESTS_REFERENCE_EVENT_QUEUE_H_
