// Tests for the decentralized per-volume LockManager: exclusive record and
// file granularity, FIFO waiting, cross-granularity conflicts, and the
// release/promotion path.

#include <gtest/gtest.h>

#include "discprocess/lock_manager.h"

namespace encompass::discprocess {
namespace {

using AR = LockManager::AcquireResult;

Transid T(uint64_t seq) { return Transid{1, 0, seq}; }
LockKey Rec(const std::string& file, const std::string& key) {
  return LockKey{file, ToBytes(key)};
}
LockKey File(const std::string& file) { return LockKey{file, {}}; }

TEST(LockManagerTest, GrantAndReacquire) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(T(1), Rec("f", "a")), AR::kGranted);
  EXPECT_EQ(lm.Acquire(T(1), Rec("f", "a")), AR::kGranted);  // re-entrant
  EXPECT_TRUE(lm.Holds(T(1), Rec("f", "a")));
  EXPECT_FALSE(lm.Holds(T(2), Rec("f", "a")));
  EXPECT_EQ(lm.held_count(), 1u);
}

TEST(LockManagerTest, ConflictQueuesFifo) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(T(1), Rec("f", "a")), AR::kGranted);
  EXPECT_EQ(lm.Acquire(T(2), Rec("f", "a")), AR::kQueued);
  EXPECT_EQ(lm.Acquire(T(3), Rec("f", "a")), AR::kQueued);
  EXPECT_EQ(lm.waiter_count(), 2u);
  auto grants = lm.ReleaseAll(T(1));
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].owner, T(2));  // FIFO
  EXPECT_TRUE(lm.Holds(T(2), Rec("f", "a")));
  grants = lm.ReleaseAll(T(2));
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].owner, T(3));
}

TEST(LockManagerTest, DistinctRecordsDoNotConflict) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(T(1), Rec("f", "a")), AR::kGranted);
  EXPECT_EQ(lm.Acquire(T(2), Rec("f", "b")), AR::kGranted);
  EXPECT_EQ(lm.Acquire(T(3), Rec("g", "a")), AR::kGranted);
}

TEST(LockManagerTest, FileLockConflictsWithRecordLocks) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(T(1), Rec("f", "a")), AR::kGranted);
  EXPECT_EQ(lm.Acquire(T(2), File("f")), AR::kQueued);
  // Record locks in other files are unaffected.
  EXPECT_EQ(lm.Acquire(T(2), File("g")), AR::kGranted);
  auto grants = lm.ReleaseAll(T(1));
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].owner, T(2));
  EXPECT_TRUE(grants[0].key.file_level());
}

TEST(LockManagerTest, RecordLockBlockedByOthersFileLock) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(T(1), File("f")), AR::kGranted);
  EXPECT_EQ(lm.Acquire(T(2), Rec("f", "a")), AR::kQueued);
  // The file-lock holder's own record access is covered.
  EXPECT_EQ(lm.Acquire(T(1), Rec("f", "b")), AR::kGranted);
  EXPECT_TRUE(lm.Holds(T(1), Rec("f", "zzz")));  // covered by file lock
  auto grants = lm.ReleaseAll(T(1));
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].owner, T(2));
}

TEST(LockManagerTest, CancelWaitRemovesWaiter) {
  LockManager lm;
  lm.Acquire(T(1), Rec("f", "a"));
  lm.Acquire(T(2), Rec("f", "a"));
  EXPECT_TRUE(lm.CancelWait(T(2), Rec("f", "a")));
  EXPECT_FALSE(lm.CancelWait(T(2), Rec("f", "a")));
  auto grants = lm.ReleaseAll(T(1));
  EXPECT_TRUE(grants.empty());  // nobody left waiting
}

TEST(LockManagerTest, ReleaseAllRemovesOwnerFromWaitQueues) {
  LockManager lm;
  lm.Acquire(T(1), Rec("f", "a"));
  lm.Acquire(T(2), Rec("f", "a"));  // queued
  lm.Acquire(T(2), Rec("f", "b"));  // held
  lm.ReleaseAll(T(2));              // aborting txn leaves the queue too
  auto grants = lm.ReleaseAll(T(1));
  EXPECT_TRUE(grants.empty());
  EXPECT_EQ(lm.held_count(), 0u);
  EXPECT_EQ(lm.waiter_count(), 0u);
}

TEST(LockManagerTest, ForceGrantMirrorsBackupState) {
  LockManager lm;
  lm.ForceGrant(T(5), Rec("f", "x"));
  EXPECT_TRUE(lm.Holds(T(5), Rec("f", "x")));
  auto held = lm.AllHeld();
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(held[0].owner, T(5));
}

TEST(LockManagerTest, DeadlockShapeResolvedByCancel) {
  // T1 holds a, wants b; T2 holds b, wants a. Timeout (modeled by cancel)
  // breaks the cycle.
  LockManager lm;
  EXPECT_EQ(lm.Acquire(T(1), Rec("f", "a")), AR::kGranted);
  EXPECT_EQ(lm.Acquire(T(2), Rec("f", "b")), AR::kGranted);
  EXPECT_EQ(lm.Acquire(T(1), Rec("f", "b")), AR::kQueued);
  EXPECT_EQ(lm.Acquire(T(2), Rec("f", "a")), AR::kQueued);
  // T2 times out and aborts: its lock releases and T1 proceeds.
  EXPECT_TRUE(lm.CancelWait(T(2), Rec("f", "a")));
  auto grants = lm.ReleaseAll(T(2));
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].owner, T(1));
  EXPECT_TRUE(lm.Holds(T(1), Rec("f", "b")));
}

TEST(LockManagerTest, FileLockWaitsForAllRecordLocks) {
  LockManager lm;
  lm.Acquire(T(1), Rec("f", "a"));
  lm.Acquire(T(2), Rec("f", "b"));
  EXPECT_EQ(lm.Acquire(T(3), File("f")), AR::kQueued);
  lm.ReleaseAll(T(1));
  EXPECT_FALSE(lm.Holds(T(3), File("f")));  // T2 still holds a record
  auto grants = lm.ReleaseAll(T(2));
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].owner, T(3));
  EXPECT_TRUE(lm.Holds(T(3), File("f")));
}

TEST(LockManagerTest, HoldersListsActiveOwners) {
  LockManager lm;
  lm.Acquire(T(1), Rec("f", "a"));
  lm.Acquire(T(2), Rec("f", "b"));
  EXPECT_EQ(lm.Holders().size(), 2u);
  lm.ReleaseAll(T(1));
  EXPECT_EQ(lm.Holders().size(), 1u);
}

}  // namespace
}  // namespace encompass::discprocess
