// Deployment: operational bootstrap of an ENCOMPASS network — the piece a
// site's system manager would configure. It owns, per node, the *durable*
// hardware state (disc volumes, audit trails, the Monitor Audit Trail) that
// survives CPU and process failures, and spawns the service process-pairs
// (DISCPROCESSes, AUDITPROCESSes, BACKOUTPROCESS, TMP) on the node's CPUs.
// It also provides whole-node crash (storage drops unforced state) and
// restart (services respawn against the surviving discs) for recovery
// experiments.

#ifndef ENCOMPASS_ENCOMPASS_DEPLOYMENT_H_
#define ENCOMPASS_ENCOMPASS_DEPLOYMENT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "audit/audit_process.h"
#include "discprocess/disc_process.h"
#include "os/cluster.h"
#include "storage/partition.h"
#include "storage/volume.h"
#include "tmf/backout_process.h"
#include "tmf/queue_lane.h"
#include "tmf/rollforward.h"
#include "tmf/tmp_process.h"

namespace encompass::app {

/// A file to create on a volume at deployment time.
struct FileSpec {
  std::string name;
  storage::FileOrganization organization = storage::FileOrganization::kKeySequenced;
  bool audited = true;
  storage::FileSchema schema;
};

/// A disc volume (and its DISCPROCESS pair) to deploy on a node. The volume
/// name doubles as the DISCPROCESS pair name ("$DATA1").
struct VolumeSpec {
  std::string name;
  std::vector<FileSpec> files;
  storage::VolumeConfig volume_config;
};

/// Which execution lane a node's transactions take. The lock lane is the
/// paper's path (per-record locks at the DISCPROCESS); the queue lane adds
/// a QueuePlanner pair ($QPLAN) that plans predeclared transactions into
/// epochs and executes them lock-free in plan order. Both lanes share the
/// audit trail, MAT, backout, and ROLLFORWARD.
enum class ExecLane { kLocks, kQueue };

/// One node of the deployment.
struct NodeSpec {
  net::NodeId id = 1;
  os::NodeConfig node_config;
  std::vector<VolumeSpec> volumes;
  tmf::TmpConfig tmp_config;                   // service lists filled in
  discprocess::DiscProcessConfig disc_config;  // volume/audit filled in
  audit::AuditProcessConfig audit_config;      // trail filled in
  ExecLane exec_lane = ExecLane::kLocks;       ///< kQueue also spawns $QPLAN
  tmf::QueuePlannerConfig queue_config;        // catalog/tmp filled in
};

/// An archived copy of one volume, the base ROLLFORWARD rebuilds from.
struct VolumeArchive {
  Bytes image;               ///< Volume::Archive() snapshot
  uint64_t archive_lsn = 0;  ///< the volume trail's LSN at archive time
};

/// Durable state of one node (survives anything except media loss).
struct NodeStorage {
  std::map<std::string, std::unique_ptr<storage::Volume>> volumes;
  std::map<std::string, std::unique_ptr<audit::AuditTrail>> trails;
  std::map<std::string, VolumeArchive> archives;  ///< by volume name
  audit::MonitorAuditTrail monitor_trail;
  /// Paxos Commit acceptor log (forced; every granting mutation is charged
  /// a force latency before the acceptor replies). Durable like the MAT:
  /// DropVolatile must NOT clear it — the whole point of replicating the
  /// commit decision is surviving node crashes.
  tmf::CommitAcceptorLog acceptor_log;
  /// Fast-path acceptor logs, one per co-located $ACCEPT.<k> pair (a node
  /// may host several when commit_replication exceeds the node count).
  /// Durable for the same reason as acceptor_log.
  std::map<std::string, tmf::CommitAcceptorLog> acceptor_logs;
  /// Durable count of TMP (re)starts on this node — the paper's crash-count
  /// analogue. Folded into TmpConfig::seq_base so no transid of an earlier
  /// incarnation is ever reissued after a total node failure.
  uint64_t tmp_incarnation = 0;

  /// Total node failure: every unforced write (data and audit) is lost.
  void DropVolatile();
};

class Deployment;

/// A deployed node: durable storage plus (re)spawnable service processes.
class NodeDeployment {
 public:
  NodeDeployment(Deployment* deployment, os::Node* node, NodeSpec spec);

  /// Spawns all service pairs. Called at bootstrap and again after a
  /// whole-node restart.
  void StartServices();

  /// Archives every volume at a transaction-consistent point (flushes the
  /// volume, forces its trail, and snapshots), giving ROLLFORWARD a base to
  /// rebuild from. Call while no transactions are in flight.
  void ArchiveVolumes();

  /// Registers a process-pair for automatic repair by the node's service
  /// guardians: an exposed pair (one member lost) gets a fresh backup
  /// attached on a spare CPU; a fully dead pair is respawned (fresh state).
  void RegisterRepairable(const std::string& name,
                          std::function<void(int cpu)> attach_backup,
                          std::function<void(int cpu_a, int cpu_b)> respawn);

  /// Template convenience for RegisterRepairable: T is the pair class; the
  /// constructor arguments are captured by value and reused.
  template <typename T, typename... Args>
  void RegisterRepairablePair(const std::string& name, Args... args) {
    RegisterRepairable(
        name,
        [this, name, args...](int cpu) {
          net::Pid pid = node_->LookupName(name);
          auto* p = pid != 0 ? dynamic_cast<T*>(node_->Find(pid)) : nullptr;
          if (p != nullptr && p->IsPrimary() && !p->HasBackup() &&
              cpu != p->cpu()) {
            os::AttachBackup<T>(node_, p, cpu, args...);
          }
        },
        [this, name, args...](int cpu_a, int cpu_b) {
          os::SpawnPair<T>(node_, name, cpu_a, cpu_b, args...);
        });
  }

  /// Inspects every registered pair and repairs what failure broke. Driven
  /// by the ServiceGuardian processes (the PMON analogue); also callable
  /// directly from tests.
  void RepairServices();

  os::Node* node() const { return node_; }
  NodeStorage& storage() { return storage_; }
  const NodeSpec& spec() const { return spec_; }

  /// Current TMP primary (resolved by name), or nullptr while down.
  tmf::TmpProcess* tmp() const;
  /// Current DISCPROCESS primary for a volume, or nullptr.
  discprocess::DiscProcess* disc(const std::string& volume) const;
  /// Audit-trail name for a volume.
  static std::string TrailName(const std::string& volume) { return volume + ".AT"; }

 private:
  struct Repairable {
    std::string name;
    std::function<void(int)> attach_backup;
    std::function<void(int, int)> respawn;
  };

  /// Spawns one ServiceGuardian on every alive CPU lacking one.
  void EnsureGuardians();
  friend class ServiceGuardian;

  Deployment* deployment_;
  os::Node* node_;
  NodeSpec spec_;
  sim::MetricId m_pair_respawns_, m_backup_reattached_;
  NodeStorage storage_;
  std::vector<Repairable> repairables_;
  std::vector<net::Pid> guardians_;
};

/// ServiceGuardian: the PMON analogue — one per CPU. After any CPU failure
/// or reload, the surviving guardian with the lowest pid triggers service
/// repair (backup re-attachment / pair respawn) once takeovers settle.
class ServiceGuardian : public os::Process {
 public:
  explicit ServiceGuardian(NodeDeployment* nd) : nd_(nd) {}
  void OnCpuDown(int cpu) override;
  void OnCpuUp(int cpu) override;

 private:
  void ScheduleRepair();
  NodeDeployment* nd_;
};

/// The whole simulated ENCOMPASS network.
class Deployment {
 public:
  explicit Deployment(sim::Simulation* sim, net::NetworkConfig net_config = {});

  sim::Simulation* sim() const { return sim_; }
  os::Cluster& cluster() { return cluster_; }
  storage::Catalog& catalog() { return catalog_; }

  /// Creates a node, its durable storage, and its services.
  NodeDeployment* AddNode(NodeSpec spec);
  NodeDeployment* GetNode(net::NodeId id) const;

  /// Adds a link between two deployed nodes.
  void Link(net::NodeId a, net::NodeId b, SimDuration latency = 0) {
    cluster_.Link(a, b, latency);
  }
  /// Fully meshes all deployed nodes.
  void LinkAll(SimDuration latency = 0);

  /// Registers a single-partition file in the data dictionary. The physical
  /// file must exist in the target volume's FileSpec list (or be created by
  /// the caller).
  Status DefineFile(const std::string& fname, net::NodeId node,
                    const std::string& volume);
  /// Registers a partitioned file definition (physical partitions must
  /// already exist on their volumes).
  Status DefinePartitionedFile(const storage::FileDefinition& def);

  /// Total node failure: every CPU fails, the node is network-isolated, and
  /// unforced storage state is lost.
  void CrashNode(net::NodeId id);
  /// Reloads the CPUs, reconnects the node, and respawns services against
  /// the surviving durable storage. Data base recovery (ROLLFORWARD) is the
  /// caller's decision, as in a real site.
  void RestartNode(net::NodeId id);
  /// Full crash recovery: reloads the node, runs ROLLFORWARD on every
  /// archived volume — negotiating "ending" transactions with surviving
  /// TMPs over the network — and only then restarts the services (so no
  /// DISCPROCESS serves pre-recovery data). `done` fires with the
  /// per-volume reports once the node is back in service.
  void RecoverNode(
      net::NodeId id,
      std::function<void(const std::vector<tmf::RollforwardReport>&)> done = {});

 private:
  sim::Simulation* sim_;
  sim::MetricId m_node_crashes_, m_node_restarts_;
  os::Cluster cluster_;
  storage::Catalog catalog_;
  std::map<net::NodeId, std::unique_ptr<NodeDeployment>> nodes_;
};

}  // namespace encompass::app

#endif  // ENCOMPASS_ENCOMPASS_DEPLOYMENT_H_
