// Chaos recovery campaign: a seeded, replayable storm of faults (generated
// by sim::FaultScheduleGenerator) over a multi-node ENCOMPASS deployment
// running a transfer workload, with a machine-checked atomicity/durability
// oracle evaluated after the cluster quiesces and every crashed node has
// recovered through ROLLFORWARD.
//
// Oracle methodology. Every transaction, at BEGIN time, registers its
// *intent*: the set of volumes it is about to write, plus a unique marker
// record it will insert on each of them alongside the real updates. The
// client then records the outcome it observed (END ok = committed, a
// definite abort = aborted, anything else — timeouts, client death with the
// node — = unknown). After quiesce the oracle inspects the durable volumes:
//   * committed  -> the marker is present on EVERY intended volume
//                   (a missing one is a lost committed update);
//   * aborted    -> the marker is present on NO volume
//                   (a present one is a resurrected aborted update);
//   * unknown    -> all-or-nothing: either every volume has the marker or
//                   none does (a mix is an atomicity violation).
// A global balance-sum conservation check rides along (transfers are
// zero-sum), catching partial redo of the real updates even when markers
// survive.

#ifndef ENCOMPASS_ENCOMPASS_CHAOS_H_
#define ENCOMPASS_ENCOMPASS_CHAOS_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "encompass/deployment.h"
#include "sim/fault_injector.h"
#include "sim/fault_schedule.h"
#include "tmf/file_system.h"

namespace encompass::app {

/// Cluster-wide atomicity/durability oracle (see file comment).
class AtomicityOracle {
 public:
  enum class Outcome { kUnknown = 0, kCommitted = 1, kAborted = 2 };

  /// One volume a transaction intends to write, and where its marker goes.
  struct IntentTarget {
    net::NodeId node;
    std::string volume;
    std::string marker_file;
  };

  struct Violation {
    uint64_t transid;
    std::string detail;
  };

  struct Intent {
    std::string marker_key;
    std::vector<IntentTarget> targets;
    Outcome outcome = Outcome::kUnknown;
    // The transfer behind the markers (for balance-drift attribution).
    int from_acct = -1, to_acct = -1;
    int64_t amount = 0;
  };

  /// Registers a transaction's intended writes (call right after BEGIN,
  /// before the first write). `marker_key` must be unique per transaction.
  void RegisterIntent(uint64_t transid, std::string marker_key,
                      std::vector<IntentTarget> targets);
  /// Records the accounts and amount the transaction moves, so a balance
  /// drift can be attributed to the transactions touching the account.
  void RecordTransfer(uint64_t transid, int from_acct, int to_acct,
                      int64_t amount);
  /// Records the client-observed outcome. Unreported transactions stay
  /// kUnknown (e.g. the client died with its node).
  void RecordOutcome(uint64_t transid, Outcome outcome);

  /// Inspects the durable volumes and returns every violated invariant.
  /// Call only after the cluster has quiesced and every node recovered.
  std::vector<Violation> Check(Deployment* deploy) const;

  size_t intents() const { return intents_.size(); }
  uint64_t count(Outcome o) const;
  const std::map<uint64_t, Intent>& all() const { return intents_; }

 private:
  // Clients on different nodes report concurrently when the campaign runs
  // on the parallel engine; readers (Check/count/all) run post-quiesce.
  mutable std::mutex mu_;
  std::map<uint64_t, Intent> intents_;
};

/// One chaos workload driver: runs sequential transfer transactions with
/// marker inserts through the real client stack (TMP verbs + FileSystem),
/// reporting intents and outcomes to the oracle. Lives on a node like any
/// application process — and dies with it on a crash, leaving its in-flight
/// transaction's outcome unknown (exactly what the oracle verifies).
struct ChaosClientConfig {
  const storage::Catalog* catalog = nullptr;
  AtomicityOracle* oracle = nullptr;
  uint64_t seed = 1;            ///< private PRNG stream for picks
  int nodes = 3;
  int accounts_per_node = 20;
  int64_t max_amount = 50;
  SimDuration think_time = Millis(25);
  SimTime stop_at = 0;          ///< start no new transaction at/after this
  /// Drive the queue lane instead of the lock lane: whole transactions
  /// (predeclared) submitted to the local $QPLAN. The queue lane is
  /// node-local, so transfers stay between accounts of the client's own
  /// node; the oracle methodology is otherwise unchanged.
  bool queue_lane = false;
};

class ChaosClient : public os::Process {
 public:
  explicit ChaosClient(ChaosClientConfig config)
      : config_(config), rng_(config.seed) {}

  std::string DebugName() const override { return "chaos-client"; }

  uint64_t started() const { return started_; }

 protected:
  void OnStart() override;

 private:
  net::Address LocalTmp() const;
  void ScheduleNext();
  void StartTxn();
  void OnBegun(const Status& s, const net::Message& reply);
  void RunOps();
  void InsertNextMarker();
  void EndTxn();
  void AbortTxn();
  void StartQueueTxn();

  ChaosClientConfig config_;
  Random rng_;
  std::unique_ptr<tmf::FileSystem> fs_;
  uint64_t started_ = 0;
  uint64_t queue_seq_ = 0;  ///< per-client sequence for synthetic oracle ids

  // In-flight transaction state (the client is strictly sequential).
  uint64_t txn_ = 0;
  int from_ = 0, to_ = 0;
  int64_t amount_ = 0, bal_from_ = 0, bal_to_ = 0;
  std::string marker_key_;
  std::vector<AtomicityOracle::IntentTarget> targets_;
  size_t marker_idx_ = 0;
};

/// Knobs of one campaign run.
struct ChaosCampaignConfig {
  uint64_t seed = 1;
  int nodes = 3;
  int accounts_per_node = 20;
  int64_t initial_balance = 1000;
  int clients_per_node = 2;
  sim::FaultScheduleConfig schedule;  ///< nodes/cpus overwritten from above
  SimDuration client_think = Millis(25);
  /// Max quiesce time after the storm for transactions, safe deliveries,
  /// and recoveries to drain.
  SimDuration max_drain = Seconds(120);
  /// Engine selector forwarded to sim::Simulation: 0 = legacy single queue,
  /// 1 = PDES oracle, N >= 2 = worker pool. Same-seed results are
  /// byte-identical at every setting.
  int parallel_workers = 0;
  /// Deploy every node with ExecLane::kQueue and run the clients through
  /// the $QPLAN submit path — the same storm and oracle, lock-free lane.
  bool queue_lane = false;
  /// Commit protocol of every node's TMP: the paper's 2PC (default), or
  /// Paxos Commit with `commit_replication` CommitAcceptor pairs placed on
  /// nodes 1..min(commit_replication, nodes).
  tmf::CommitProtocol commit_protocol = tmf::CommitProtocol::kTwoPhase;
  int commit_replication = 3;
  /// Paxos Commit fast path: CommitAcceptor pairs are placed as explicit
  /// `$ACCEPT.<k>` endpoints round-robined over the nodes (so
  /// commit_replication may exceed the node count), every participant votes
  /// its prepared state straight to the F+1 nearest acceptors, and the home
  /// reclaims acceptor instances once phase 2 is acknowledged. Off by
  /// default: pre-PR campaign traces are byte-identical.
  bool paxos_fast_path = false;
  /// Per-transaction / per-verb network message accounting
  /// (ChaosCampaignResult::msgs_per_committed_txn). Off by default.
  bool track_messages = false;
  /// How often an in-doubt participant re-asks for its disposition. The
  /// default (2s) outlasts most storm outages, so pre-PR campaign traces are
  /// unchanged; protocol-comparison runs shrink it below the storm's heal
  /// window (0.3-1.5s) so a dead-home window is actually probed — 2PC then
  /// accrues one blocked tick per interval while Paxos Commit escalates to
  /// the acceptors at the first one.
  SimDuration indoubt_resolve_interval = Seconds(2);
};

/// Everything a test or bench asserts about one campaign run.
struct ChaosCampaignResult {
  sim::FaultSchedule schedule;
  std::string schedule_dump;        ///< replayable (FaultSchedule::Parse)
  std::vector<std::string> journal; ///< fired faults + annotations
  size_t faults_fired = 0;
  size_t node_crashes = 0;
  size_t recoveries_completed = 0;
  /// In-doubt transactions at recovery: participants cluster-wide still
  /// blocked (kEnding) on a crashed home at the instant it returned, summed
  /// over every node recovery in the storm. The headline Paxos-vs-2PC
  /// number — 2PC participants wait out the whole outage, Paxos Commit
  /// participants resolve against the acceptor majority mid-outage.
  size_t indoubt_at_recovery = 0;
  bool quiesced = false;            ///< everything drained within max_drain
  std::vector<AtomicityOracle::Violation> violations;
  long long balance_sum = 0;
  long long expected_sum = 0;
  uint64_t txns_started = 0;
  uint64_t txns_committed = 0;
  uint64_t txns_aborted = 0;
  uint64_t txns_unknown = 0;
  size_t leaked_locks = 0;
  size_t leaked_txns = 0;
  size_t pending_safe = 0;
  int64_t illegal_transitions = 0;
  size_t rollforward_negotiated = 0;  ///< dispositions settled via peers
  size_t rollforward_redo_applied = 0;
  /// In-doubt dispositions that had to come from the home TMP
  /// (tmf.indoubt_resolved_*): 2PC's blocked-window casualties.
  int64_t indoubt_resolved_via_home = 0;
  /// Resolve ticks a participant spent blocked on an unreachable home while
  /// still in-doubt (tmf.indoubt_blocked_on_home). 2PC accrues one per tick
  /// for the whole dead-home window; Paxos Commit escalates to the acceptors
  /// after the first blocked tick, so the count stays near the number of
  /// in-doubt transactions rather than scaling with outage length.
  int64_t indoubt_blocked_on_home = 0;
  /// In-doubt dispositions learned from an acceptor majority while the
  /// home was unreachable (participants + recovering nodes; paxos only).
  int64_t indoubt_resolved_via_acceptors = 0;
  /// Blocked-lock time: how long non-home participants held locks in-doubt
  /// (tmf.indoubt_hold_us), milliseconds.
  int64_t indoubt_hold_count = 0;
  double indoubt_hold_p50_ms = 0;
  double indoubt_hold_p99_ms = 0;
  double indoubt_hold_max_ms = 0;
  /// END-TRANSACTION to commit point at the home TMP
  /// (tmf.commit_latency_us), milliseconds. Prices the protocols against
  /// each other: paxos adds an acceptor round trip before the commit point.
  int64_t commit_latency_count = 0;
  double commit_latency_p50_ms = 0;
  double commit_latency_p99_ms = 0;
  /// High-water of recovery negotiation attempts for any single transid.
  int64_t recovery_max_retry_attempts = 0;
  /// Cross-node messages per committed transaction (config.track_messages
  /// only): total transid-attributed network sends / txns_committed. The
  /// fast-path headline — fewer messages per commit than decision-replication
  /// Paxos because co-located votes never cross the network.
  double msgs_per_committed_txn = 0;
  uint64_t tracked_messages = 0;  ///< transid-attributed cross-node sends
  /// Per-verb breakdown of every cross-node send (track_messages only).
  std::map<uint32_t, uint64_t> msgs_per_tag;
  /// Acceptor-log occupancy (paxos only): the largest instance count any
  /// single acceptor log ever held, and the instances still resident after
  /// the drain. GC keeps both bounded; final should be ~0 on a quiesced run.
  size_t acceptor_log_peak = 0;
  size_t acceptor_log_final = 0;
  /// Replayed phase-2a votes absorbed idempotently (no second force).
  int64_t acceptor_duplicate_votes = 0;
};

/// Generates the fault schedule for `config.seed` and runs the campaign.
ChaosCampaignResult RunChaosCampaign(const ChaosCampaignConfig& config);

/// Runs the campaign against an explicit schedule (e.g. parsed from a
/// failing run's dump). With the schedule that RunChaosCampaign generated
/// for the same config, the run is bit-identical.
ChaosCampaignResult ReplayChaosCampaign(const ChaosCampaignConfig& config,
                                        const sim::FaultSchedule& schedule);

}  // namespace encompass::app

#endif  // ENCOMPASS_ENCOMPASS_CHAOS_H_
