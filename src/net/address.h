// Process addressing. A process is identified by (node, pid); messages may
// also be addressed by symbolic process *name* ("$DATA1", "$TMP"), resolved
// at the destination node on delivery — which is what makes process-pair
// takeover transparent to senders.

#ifndef ENCOMPASS_NET_ADDRESS_H_
#define ENCOMPASS_NET_ADDRESS_H_

#include <cstdint>
#include <functional>
#include <string>

namespace encompass::net {

/// Network node number (a "system" of up to 16 processors).
using NodeId = uint16_t;

/// Node-scoped process number (unique within a node for the life of a run).
using Pid = uint32_t;

/// Fully resolved process identity.
struct ProcessId {
  NodeId node = 0;
  Pid pid = 0;

  bool valid() const { return pid != 0; }
  std::string ToString() const {
    return "\\" + std::to_string(node) + ".#" + std::to_string(pid);
  }
  friend bool operator==(const ProcessId& a, const ProcessId& b) {
    return a.node == b.node && a.pid == b.pid;
  }
  friend bool operator!=(const ProcessId& a, const ProcessId& b) { return !(a == b); }
  friend bool operator<(const ProcessId& a, const ProcessId& b) {
    return a.node != b.node ? a.node < b.node : a.pid < b.pid;
  }
};

/// Message destination: either a concrete pid, or a symbolic name to be
/// resolved by the destination node's name registry at delivery time.
struct Address {
  NodeId node = 0;
  Pid pid = 0;          ///< 0 means "resolve `name` at the node"
  std::string name;     ///< used when pid == 0

  Address() = default;
  Address(ProcessId id)  // NOLINT(runtime/explicit)
      : node(id.node), pid(id.pid) {}
  Address(NodeId n, std::string process_name)
      : node(n), name(std::move(process_name)) {}

  bool by_name() const { return pid == 0; }
  std::string ToString() const {
    if (by_name()) return "\\" + std::to_string(node) + "." + name;
    return ProcessId{node, pid}.ToString();
  }
};

}  // namespace encompass::net

template <>
struct std::hash<encompass::net::ProcessId> {
  size_t operator()(const encompass::net::ProcessId& p) const noexcept {
    return std::hash<uint64_t>()((static_cast<uint64_t>(p.node) << 32) | p.pid);
  }
};

#endif  // ENCOMPASS_NET_ADDRESS_H_
