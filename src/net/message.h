// Message: the single communication unit of the simulated Guardian message
// system. All interprocess communication — same CPU, across the
// interprocessor bus, or across the network — uses this struct.

#ifndef ENCOMPASS_NET_MESSAGE_H_
#define ENCOMPASS_NET_MESSAGE_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "net/address.h"
#include "sim/trace.h"

namespace encompass::net {

/// Message tag namespaces. Each subsystem allocates tags within its block so
/// traces are attributable.
enum TagBlock : uint32_t {
  kTagSystem = 0x0100,      ///< OS-level: regroup, name service, checkpoints
  kTagDisc = 0x0200,        ///< DISCPROCESS requests
  kTagAudit = 0x0300,       ///< AUDITPROCESS requests
  kTagTmf = 0x0400,         ///< TMF/TMP protocol
  kTagServer = 0x0500,      ///< application server requests
  kTagTcp = 0x0600,         ///< terminal control
  kTagApp = 0x0700,         ///< application-defined
};

/// System tags (kTagSystem block).
enum SystemTag : uint32_t {
  kTagCheckpoint = kTagSystem + 1,     ///< primary -> backup state delta
  kTagTakeoverPing = kTagSystem + 2,   ///< pair liveness probe
  kTagSendFailed = kTagSystem + 3,     ///< returned to sender: undeliverable
};

/// One interprocess message.
struct Message {
  ProcessId src;        ///< sender (always a concrete pid)
  Address dst;          ///< receiver (pid or name)
  uint32_t tag = 0;     ///< message type
  uint64_t request_id = 0;  ///< nonzero: sender expects a reply correlated by this
  uint64_t reply_to = 0;    ///< nonzero: this message answers that request_id
  Status::Code status = Status::Code::kOk;  ///< result code on replies
  std::string status_text;  ///< human-readable status message on replies
  uint64_t transid = 0;     ///< packed Transid appended by the file system (0=none)
  sim::TraceContext trace;  ///< causal trace identity (transid may be carried
                            ///< here even when `transid` is 0, e.g. for TMP
                            ///< protocol messages that pack it in the payload)
  Bytes payload;

  bool is_reply() const { return reply_to != 0; }

  std::string ToString() const {
    return "msg[tag=" + std::to_string(tag) + " " + src.ToString() + " -> " +
           dst.ToString() + " req=" + std::to_string(request_id) +
           " reply_to=" + std::to_string(reply_to) + "]";
  }
};

}  // namespace encompass::net

#endif  // ENCOMPASS_NET_MESSAGE_H_
