# Empty dependencies file for encompass_mfg.
# This may be replaced when dependencies are built.
