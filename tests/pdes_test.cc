// Unit tests for the PDES building blocks: the (time, origin, seq) total
// order of EventQueue, cancellation across key kinds, and the per-node PRNG
// streams that make node-local randomness independent of global event
// interleaving.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/simulation.h"

namespace encompass::sim {
namespace {

TEST(EventKeyTest, LexicographicOrder) {
  EXPECT_LT((EventKey{1, 5, 9}), (EventKey{2, 0, 0}));
  EXPECT_LT((EventKey{2, 0, 9}), (EventKey{2, 1, 0}));
  EXPECT_LT((EventKey{2, 1, 3}), (EventKey{2, 1, 4}));
  EXPECT_FALSE((EventKey{2, 1, 4}) < (EventKey{2, 1, 4}));
}

TEST(EventQueueTest, SameTimeEventsFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 8; ++i) {
    q.Schedule(100, [&fired, i]() { fired.push_back(i); });
  }
  while (!q.empty()) {
    SimTime when;
    q.PopNext(&when)();
    EXPECT_EQ(when, 100);
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

// The regression the (time, origin, seq) order pins down: however keyed
// events are *inserted* into the heap, they fire in key order — so the
// firing order is a function of the keys alone, not of heap internals or
// insertion interleaving.
TEST(EventQueueTest, ShuffledSameTimeInsertionsFireInKeyOrder) {
  std::vector<EventKey> keys;
  for (uint16_t origin = 1; origin <= 4; ++origin) {
    for (uint64_t seq = 1; seq <= 5; ++seq) {
      keys.push_back(EventKey{500, origin, seq});  // all at the same time
    }
  }
  std::vector<std::string> reference;
  for (int trial = 0; trial < 20; ++trial) {
    std::mt19937 shuffler(trial);  // a different insertion order per trial
    std::vector<EventKey> shuffled = keys;
    std::shuffle(shuffled.begin(), shuffled.end(), shuffler);

    EventQueue q;
    std::vector<std::string> fired;
    for (const EventKey& k : shuffled) {
      q.ScheduleKeyed(k, k.origin, [&fired, k]() {
        fired.push_back(std::to_string(k.origin) + ":" + std::to_string(k.seq));
      });
    }
    while (!q.empty()) {
      EventKey key;
      uint16_t exec;
      q.PopNext(&key, &exec)();
    }
    if (trial == 0) {
      reference = fired;
      // Sanity: key order is (origin, seq) at equal time.
      EXPECT_EQ(fired.front(), "1:1");
      EXPECT_EQ(fired.back(), "4:5");
    } else {
      EXPECT_EQ(fired, reference) << "insertion order leaked into firing order";
    }
  }
}

TEST(EventQueueTest, GlobalOriginSortsFirstAtEqualTime) {
  EventQueue q;
  std::vector<int> fired;
  q.ScheduleKeyed(EventKey{100, 3, 1}, 3, [&fired]() { fired.push_back(3); });
  q.ScheduleKeyed(EventKey{100, 0, 99}, 0, [&fired]() { fired.push_back(0); });
  q.ScheduleKeyed(EventKey{100, 1, 7}, 1, [&fired]() { fired.push_back(1); });
  while (!q.empty()) {
    EventKey key;
    uint16_t exec;
    q.PopNext(&key, &exec)();
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 3}));
}

TEST(EventQueueTest, CancelOnlyAffectsLocalEvents) {
  EventQueue q(2);
  std::vector<int> fired;
  EventId a = q.Schedule(10, [&fired]() { fired.push_back(1); });
  // A keyed event whose foreign seq collides with the local id being
  // cancelled must not be swallowed by the tombstone.
  q.ScheduleKeyed(EventKey{10, 7, a}, 7, [&fired]() { fired.push_back(2); });
  q.Cancel(a);
  q.Cancel(a);      // double-cancel: no-op
  q.Cancel(12345);  // unknown: no-op
  EXPECT_EQ(q.size(), 1u);
  EventKey key;
  uint16_t exec;
  q.PopNext(&key, &exec)();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(fired, (std::vector<int>{2}));
  EXPECT_EQ(exec, 7);
}

TEST(EventQueueTest, NextKeyReportsEarliest) {
  EventQueue q(1);
  EXPECT_EQ(q.NextKey(), nullptr);
  EXPECT_EQ(q.NextTime(), kNoDeadline);
  q.Schedule(300, []() {});
  q.ScheduleKeyed(EventKey{200, 5, 1}, 5, []() {});
  ASSERT_NE(q.NextKey(), nullptr);
  EXPECT_EQ(q.NextKey()->time, 200);
  EXPECT_EQ(q.NextKey()->origin, 5);
  EXPECT_EQ(q.NextTime(), 200);
}

// --- EventFn ---------------------------------------------------------------

TEST(EventFnTest, InvokesInlineAndHeapCallables) {
  int hits = 0;
  EventFn small([&hits]() { ++hits; });  // fits inline storage
  EXPECT_TRUE(static_cast<bool>(small));
  small();
  EXPECT_EQ(hits, 1);

  struct Big {
    uint64_t payload[12];  // larger than EventFn::kInlineCapacity
    int* counter;
    void operator()() { *counter += static_cast<int>(payload[11]); }
  };
  Big big{};
  big.payload[11] = 5;
  big.counter = &hits;
  EventFn large(big);  // heap fallback
  large();
  EXPECT_EQ(hits, 6);
}

TEST(EventFnTest, MoveTransfersOwnershipAndEmptiesSource) {
  int hits = 0;
  EventFn a([&hits]() { ++hits; });
  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  EventFn c;
  EXPECT_FALSE(static_cast<bool>(c));
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(EventFnTest, DestroysCaptureExactlyOnce) {
  struct Probe {
    int* ctor;
    int* dtor;
    Probe(int* c, int* d) : ctor(c), dtor(d) { ++*ctor; }
    Probe(const Probe& o) : ctor(o.ctor), dtor(o.dtor) { ++*ctor; }
    Probe(Probe&& o) noexcept : ctor(o.ctor), dtor(o.dtor) { ++*ctor; }
    ~Probe() { ++*dtor; }
  };
  int ctor = 0, dtor = 0;
  {
    Probe p(&ctor, &dtor);
    EventFn f([p]() {});
    EventFn g(std::move(f));  // relocation must destroy the source residue
    g();                      // invoking must not destroy the capture
    EXPECT_TRUE(static_cast<bool>(g));
  }
  EXPECT_EQ(ctor, dtor);  // every constructed capture was destroyed once
  EXPECT_GT(ctor, 0);
}

// --- per-node PRNG streams -------------------------------------------------

TEST(NodeRngTest, StreamsAreDistinctAndSeedStable) {
  Simulation sim_a(42);
  Simulation sim_b(42);
  Simulation sim_c(43);
  // Same seed -> identical per-node sequences; different nodes or different
  // seeds -> different sequences.
  std::vector<uint64_t> n1a, n1b, n2a, n1c;
  for (int i = 0; i < 16; ++i) n1a.push_back(sim_a.RngFor(1).Next());
  for (int i = 0; i < 16; ++i) n1b.push_back(sim_b.RngFor(1).Next());
  for (int i = 0; i < 16; ++i) n2a.push_back(sim_a.RngFor(2).Next());
  for (int i = 0; i < 16; ++i) n1c.push_back(sim_c.RngFor(1).Next());
  EXPECT_EQ(n1a, n1b);
  EXPECT_NE(n1a, n2a);
  EXPECT_NE(n1b, n1c);
  // The node streams are also distinct from the legacy global stream.
  std::vector<uint64_t> global;
  for (int i = 0; i < 16; ++i) global.push_back(sim_b.Rng().Next());
  EXPECT_NE(global, n1a);
}

TEST(NodeRngTest, NodeStreamUnaffectedByOtherNodesDraws) {
  // Draw node 1's values with and without interleaved draws on node 2: the
  // node-1 sequence must be identical. This is the property that lets
  // parallel execution reorder node events without changing any node's
  // randomness.
  Simulation plain(7);
  std::vector<uint64_t> expected;
  for (int i = 0; i < 16; ++i) expected.push_back(plain.RngFor(1).Next());

  Simulation interleaved(7);
  std::vector<uint64_t> got;
  for (int i = 0; i < 16; ++i) {
    interleaved.RngFor(2).Next();
    got.push_back(interleaved.RngFor(1).Next());
    interleaved.RngFor(3).Next();
  }
  EXPECT_EQ(got, expected);
}

// --- cross-engine identity -------------------------------------------------

namespace engine_test {

// A micro-workload exercising everything the engines must agree on: per-node
// timer chains (AfterOn), ring traffic with lookahead-respecting delays
// (PostToNode), per-node PRNG draws, and a cancellation. Each node appends to
// its own log (only that node's events touch it, so logging is race-free on
// the worker pool); the per-node logs must be identical across engines.
std::vector<std::string> RunMicroWorkload(int workers) {
  constexpr int kNodes = 4;
  Simulation sim(/*seed=*/99, workers);
  sim.NoteLinkLatency(Millis(2));
  for (int n = 1; n <= kNodes; ++n) sim.EnsureNode(static_cast<uint16_t>(n));

  std::vector<std::vector<std::string>> logs(kNodes + 1);
  struct Chain {
    static void Step(Simulation* sim, std::vector<std::vector<std::string>>* logs,
                     uint16_t node, int steps_left) {
      uint64_t draw = sim->RngFor(node).Uniform(100);
      (*logs)[node].push_back("t=" + std::to_string(sim->Now()) + " step d=" +
                              std::to_string(draw));
      if (steps_left % 3 == 0) {
        auto dst = static_cast<uint16_t>(node % 4 + 1);
        sim->PostToNode(dst, Millis(2) + Micros(node * 11),
                        [sim, logs, dst]() {
                          (*logs)[dst].push_back(
                              "t=" + std::to_string(sim->Now()) + " recv");
                        });
      }
      if (steps_left > 1) {
        sim->AfterOn(node, Micros(150 + draw),
                     [sim, logs, node, steps_left]() {
                       Step(sim, logs, node, steps_left - 1);
                     });
      }
    }
  };
  for (int n = 1; n <= kNodes; ++n) {
    sim.AfterOn(static_cast<uint16_t>(n), Micros(20 + n * 5),
                [&sim, &logs, n]() {
                  Chain::Step(&sim, &logs, static_cast<uint16_t>(n), 12);
                });
  }
  // A timer armed then cancelled from the owning node must never fire,
  // on any engine.
  for (int n = 1; n <= kNodes; ++n) {
    sim.AfterOn(static_cast<uint16_t>(n), Micros(30),
                [&sim, &logs, n]() {
                  EventId id = sim.AfterOn(
                      static_cast<uint16_t>(n), Millis(1),
                      [&logs, n]() { logs[n].push_back("CANCELLED?"); });
                  sim.Cancel(id);
                });
  }
  sim.RunUntil(Millis(30));
  std::vector<std::string> flat;
  for (int n = 1; n <= kNodes; ++n) {
    flat.push_back("--- node " + std::to_string(n));
    for (const auto& line : logs[n]) flat.push_back(line);
  }
  return flat;
}

TEST(EngineTest, AllEnginesAgreeOnMicroWorkload) {
  const std::vector<std::string> legacy = RunMicroWorkload(0);
  ASSERT_FALSE(legacy.empty());
  EXPECT_EQ(std::count(legacy.begin(), legacy.end(), "CANCELLED?"), 0);
  for (int workers : {1, 2, 8}) {
    EXPECT_EQ(RunMicroWorkload(workers), legacy) << "workers=" << workers;
  }
}

TEST(EngineTest, RunUntilAdvancesClockWithoutEvents) {
  for (int workers : {0, 1, 2}) {
    Simulation sim(1, workers);
    sim.NoteLinkLatency(Millis(5));
    sim.EnsureNode(1);
    sim.EnsureNode(2);
    sim.RunUntil(Millis(10));
    EXPECT_EQ(sim.Now(), Millis(10)) << "workers=" << workers;
    bool fired = false;
    sim.AfterOn(1, Micros(1), [&fired]() { fired = true; });
    sim.RunFor(Micros(5));
    EXPECT_TRUE(fired) << "workers=" << workers;
    EXPECT_EQ(sim.Now(), Millis(10) + Micros(5)) << "workers=" << workers;
  }
}

TEST(EngineTest, ExecutedEventsCountsAcrossLoops) {
  for (int workers : {0, 1, 4}) {
    Simulation sim(1, workers);
    sim.NoteLinkLatency(Millis(5));
    for (uint16_t n = 1; n <= 3; ++n) {
      sim.EnsureNode(n);
      sim.AfterOn(n, Micros(n), []() {});
      sim.AfterOn(n, Micros(100 + n), []() {});
    }
    sim.Run();
    EXPECT_EQ(sim.ExecutedEvents(), 6u) << "workers=" << workers;
    EXPECT_TRUE(sim.Idle());
    EXPECT_EQ(sim.PendingEvents(), 0u);
  }
}

// A two-tier topology exercising per-link horizons: nodes 1-2 joined by a
// fast link trade frequent traffic, nodes 3-4 hang off 20ms WAN links and
// run their own dense chains. Per-pair lookahead lets 3 and 4 batch far
// ahead of the 1-2 pair; the logs must still match every engine exactly.
std::vector<std::string> RunHeteroWorkload(int workers) {
  Simulation sim(/*seed=*/123, workers);
  for (uint16_t n = 1; n <= 4; ++n) sim.EnsureNode(n);
  sim.NoteLinkLatency(1, 2, Micros(250));
  sim.NoteLinkLatency(2, 3, Millis(20));
  sim.NoteLinkLatency(3, 4, Millis(20));

  std::vector<std::vector<std::string>> logs(5);
  struct Chain {
    static void Step(Simulation* sim, std::vector<std::vector<std::string>>* logs,
                     uint16_t node, int steps_left) {
      uint64_t draw = sim->RngFor(node).Uniform(100);
      (*logs)[node].push_back("t=" + std::to_string(sim->Now()) + " d=" +
                              std::to_string(draw));
      if (node <= 2) {  // fast pair: chatter across the 250us link
        auto peer = static_cast<uint16_t>(node == 1 ? 2 : 1);
        sim->PostToNode(peer, Micros(250 + draw), [sim, logs, peer]() {
          (*logs)[peer].push_back("t=" + std::to_string(sim->Now()) + " recv");
        });
      } else if (draw % 4 == 0) {  // WAN nodes: occasional 20ms+ posts
        auto peer = static_cast<uint16_t>(node == 3 ? 4 : 3);
        sim->PostToNode(peer, Millis(20) + Micros(draw), [sim, logs, peer]() {
          (*logs)[peer].push_back("t=" + std::to_string(sim->Now()) + " recv");
        });
      }
      if (steps_left > 1) {
        const SimDuration gap =
            node <= 2 ? Millis(1) + Micros(draw) : Micros(80 + draw);
        sim->AfterOn(node, gap, [sim, logs, node, steps_left]() {
          Step(sim, logs, node, steps_left - 1);
        });
      }
    }
  };
  for (uint16_t n = 1; n <= 4; ++n) {
    sim.AfterOn(n, Micros(10 + n * 3), [&sim, &logs, n]() {
      Chain::Step(&sim, &logs, n, n <= 2 ? 10 : 60);
    });
  }
  sim.RunUntil(Millis(25));
  std::vector<std::string> flat;
  for (int n = 1; n <= 4; ++n) {
    flat.push_back("--- node " + std::to_string(n));
    for (const auto& line : logs[n]) flat.push_back(line);
  }
  return flat;
}

TEST(EngineTest, PerLinkLookaheadPreservesIdentityOnHeteroTopology) {
  const std::vector<std::string> legacy = RunHeteroWorkload(0);
  ASSERT_GT(legacy.size(), 8u);
  for (int workers : {1, 2, 4, 8}) {
    EXPECT_EQ(RunHeteroWorkload(workers), legacy) << "workers=" << workers;
  }
}

}  // namespace engine_test

}  // namespace
}  // namespace encompass::sim
