// Minimal leveled logger. Quiet by default so tests and benchmarks stay
// readable; raise the level to trace protocol decisions.

#ifndef ENCOMPASS_COMMON_LOGGING_H_
#define ENCOMPASS_COMMON_LOGGING_H_

#include <cstdio>
#include <sstream>
#include <string>

namespace encompass {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global log configuration (process-wide; the simulation is single-threaded).
class Logger {
 public:
  static LogLevel level() { return level_; }
  static void SetLevel(LogLevel level) { level_ = level; }

  /// Emits one line to stderr: "[LEVEL] message".
  static void Write(LogLevel level, const std::string& msg);

 private:
  static LogLevel level_;
};

namespace log_internal {

class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  ~LineBuilder() { Logger::Write(level_, stream_.str()); }
  template <typename T>
  LineBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace encompass

#define ENCOMPASS_LOG(severity)                                        \
  if (::encompass::LogLevel::severity < ::encompass::Logger::level()) \
    ;                                                                  \
  else                                                                 \
    ::encompass::log_internal::LineBuilder(::encompass::LogLevel::severity)

#define LOG_TRACE ENCOMPASS_LOG(kTrace)
#define LOG_DEBUG ENCOMPASS_LOG(kDebug)
#define LOG_INFO ENCOMPASS_LOG(kInfo)
#define LOG_WARN ENCOMPASS_LOG(kWarn)
#define LOG_ERROR ENCOMPASS_LOG(kError)

#endif  // ENCOMPASS_COMMON_LOGGING_H_
