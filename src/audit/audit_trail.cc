#include "audit/audit_trail.h"

namespace encompass::audit {

AuditTrail::AuditTrail(std::string name, AuditTrailConfig config)
    : name_(std::move(name)), config_(config) {
  files_.push_back(AuditFile{next_file_number_++, {}});
}

uint64_t AuditTrail::Append(AuditRecord record) {
  record.lsn = next_lsn_++;
  if (files_.back().records.size() >= config_.records_per_file) {
    files_.push_back(AuditFile{next_file_number_++, {}});
  }
  uint64_t lsn = record.lsn;
  files_.back().records.push_back(std::move(record));
  return lsn;
}

size_t AuditTrail::Force() {
  uint64_t new_durable = next_lsn_ - 1;
  size_t forced = static_cast<size_t>(new_durable - durable_lsn_);
  durable_lsn_ = new_durable;
  return forced;
}

void AuditTrail::DropVolatile() {
  while (!files_.empty()) {
    auto& records = files_.back().records;
    while (!records.empty() && records.back().lsn > durable_lsn_) {
      records.pop_back();
    }
    if (records.empty() && files_.size() > 1) {
      --next_file_number_;
      files_.pop_back();
    } else {
      break;
    }
  }
  next_lsn_ = durable_lsn_ + 1;
}

std::vector<AuditRecord> AuditTrail::RecordsForTransaction(
    const Transid& transid) const {
  std::vector<AuditRecord> out;
  for (const auto& file : files_) {
    for (const auto& rec : file.records) {
      if (rec.transid == transid) out.push_back(rec);
    }
  }
  return out;
}

std::vector<AuditRecord> AuditTrail::DurableRecordsAfter(uint64_t after_lsn) const {
  std::vector<AuditRecord> out;
  for (const auto& file : files_) {
    for (const auto& rec : file.records) {
      if (rec.lsn > after_lsn && rec.lsn <= durable_lsn_) out.push_back(rec);
    }
  }
  return out;
}

size_t AuditTrail::Purge(uint64_t up_to_lsn) {
  size_t purged = 0;
  while (files_.size() > 1) {
    const auto& records = files_.front().records;
    if (records.empty() ||
        (records.back().lsn <= up_to_lsn && records.back().lsn <= durable_lsn_)) {
      ++first_file_number_;
      files_.pop_front();
      ++purged;
    } else {
      break;
    }
  }
  return purged;
}

size_t AuditTrail::record_count() const {
  size_t n = 0;
  for (const auto& f : files_) n += f.records.size();
  return n;
}

uint64_t MonitorAuditTrail::AppendForced(const CompletionRecord& record) {
  records_.push_back(record);
  index_.emplace(record.transid.Pack(), record.completion);
  return records_.size();
}

int MonitorAuditTrail::Lookup(const Transid& transid) const {
  auto it = index_.find(transid.Pack());
  if (it == index_.end()) return -1;
  return it->second == Completion::kCommitted ? 1 : 0;
}

}  // namespace encompass::audit
