#include "common/random.h"

#include <cmath>

namespace encompass {

uint64_t Random::Skewed(uint64_t n, double theta) {
  if (n <= 1) return 0;
  // Inverse-CDF sampling of a truncated power law. Accurate enough for
  // workload skew; not an exact Zipf but monotone in theta.
  const double u = NextDouble();
  const double exponent = 1.0 - theta;
  double idx;
  if (exponent > 1e-9 || exponent < -1e-9) {
    const double max = std::pow(static_cast<double>(n), exponent);
    idx = std::pow(u * (max - 1.0) + 1.0, 1.0 / exponent) - 1.0;
  } else {
    idx = std::exp(u * std::log(static_cast<double>(n))) - 1.0;
  }
  auto r = static_cast<uint64_t>(idx);
  return r >= n ? n - 1 : r;
}

}  // namespace encompass
