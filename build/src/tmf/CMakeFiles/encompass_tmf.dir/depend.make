# Empty dependencies file for encompass_tmf.
# This may be replaced when dependencies are built.
