// Process: the actor base class of the simulated Guardian operating system.
// A process lives on one CPU of one node, communicates only by messages,
// and may set timers. Request/reply correlation, timeouts, and transparent
// retries (the "file system" behaviour of the paper) are provided here.

#ifndef ENCOMPASS_OS_PROCESS_H_
#define ENCOMPASS_OS_PROCESS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/sim_time.h"
#include "common/status.h"
#include "net/message.h"
#include "sim/simulation.h"

namespace encompass::os {

class Node;
class Cluster;

/// Options for Process::Call.
struct CallOptions {
  SimDuration timeout = Seconds(5);
  /// Transparent resends after a timeout or send-failure, re-resolving the
  /// destination name each time — this is what makes process-pair takeover
  /// invisible to requesters (Tandem file-system retry).
  int retries = 0;
  /// Pause before resending after a fast send-failure (lets regroup finish
  /// and the pair's name rebind to the new primary).
  SimDuration retry_backoff = Millis(10);
};

/// Actor base class. Subclasses override OnMessage and the failure hooks.
class Process {
 public:
  Process() = default;
  virtual ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Infrastructure wiring; called exactly once by Node::Spawn.
  void Attach(Node* node, int cpu, net::Pid pid);

  net::ProcessId id() const;
  int cpu() const { return cpu_; }
  Node* node() const { return node_; }
  Cluster* cluster() const;
  sim::Simulation* sim() const;

  /// Human-readable identity for logs ("$DATA1(P)", "tcp-3", ...).
  virtual std::string DebugName() const;

  // -- Messaging ------------------------------------------------------------

  /// One-way send. The process's current transid is stamped on the message
  /// (the paper's "the File System automatically appends the ... transid").
  void Send(const net::Address& dst, uint32_t tag, Bytes payload = {});

  /// Reply callback: status is derived from the reply's status code; msg is
  /// the reply message (payload valid only when status is OK or app-defined).
  using RpcCallback = std::function<void(const Status&, const net::Message&)>;

  /// Request expecting a reply. Returns the request id (usable with
  /// CancelCall). The callback fires exactly once: with the reply, with a
  /// Timeout status, or with Unavailable/Partitioned on delivery failure.
  uint64_t Call(const net::Address& dst, uint32_t tag, Bytes payload,
                RpcCallback cb, CallOptions options = {});

  /// Answers a request.
  void Reply(const net::Message& request, const Status& status, Bytes payload = {});

  /// Answers a request identified only by requester and request id — used
  /// when replaying a cached reply after a process-pair takeover (the
  /// original Message object died with the old primary).
  void SendReply(net::ProcessId requester, uint32_t tag, uint64_t reply_to,
                 const Status& status, Bytes payload = {});

  /// Cancels a pending Call; its callback will not fire.
  void CancelCall(uint64_t request_id);

  // -- Transaction identity (set by TMF / server layer) ----------------------

  uint64_t current_transid() const { return current_transid_; }
  void set_current_transid(uint64_t packed) { current_transid_ = packed; }

  // -- Timers ---------------------------------------------------------------

  /// Runs fn after `delay` unless cancelled or this process dies first.
  uint64_t SetTimer(SimDuration delay, std::function<void()> fn);
  void CancelTimer(uint64_t timer_id);

  // -- Causal tracing --------------------------------------------------------

  /// The trace context of the message or timer currently being handled.
  /// Transaction-less work has an inactive context.
  const sim::TraceContext& current_trace() const { return active_trace_; }

  // -- Event hooks (override points) -----------------------------------------

  /// Called once from Attach, before OnStart, when sim()/node() are valid —
  /// the place to register metric handles.
  virtual void OnAttach() {}
  /// Called once, shortly after spawn, when messaging is available.
  virtual void OnStart() {}
  /// Called for every non-reply message addressed to this process.
  virtual void OnMessage(const net::Message& msg) { (void)msg; }
  /// A CPU of this node failed (regroup broadcast; fires on survivors only).
  virtual void OnCpuDown(int cpu) { (void)cpu; }
  /// A previously failed CPU of this node was reloaded.
  virtual void OnCpuUp(int cpu) { (void)cpu; }
  /// A remote node became unreachable from this node.
  virtual void OnNodeDown(net::NodeId peer) { (void)peer; }
  /// A remote node became reachable again.
  virtual void OnNodeUp(net::NodeId peer) { (void)peer; }

  /// Message entry point called by the node; routes replies to pending
  /// calls, everything else to OnMessage. Takes the message by value (the
  /// node moves it in — the last hop of the copy-free delivery path).
  /// Not an override point.
  void DeliverToProcess(net::Message msg);

 protected:
  /// The simulation's stats registry (valid from OnAttach on).
  sim::Stats& stats() const { return *stats_; }

  /// Runs fn with `ctx` installed as the active trace context, restoring the
  /// previous context afterwards (robust to fn destroying this process).
  /// Used when one physical event completes work for several causal chains —
  /// e.g. replying to each waiter of a coalesced group-commit batch under
  /// that waiter's own span instead of the batch leader's.
  void WithTraceContext(const sim::TraceContext& ctx,
                        const std::function<void()>& fn);

  /// Appends a trace event for `transid` at this node, under the span of the
  /// message/timer being handled. No-op when transid is 0 or tracing is off.
  void Trace(sim::TraceEventKind kind, uint64_t transid, uint32_t a = 0,
             uint32_t b = 0) const;

 private:
  void DispatchMessage(const net::Message& msg);
  /// Stamps a fresh causal span (and a kMsgSend event) onto an outgoing
  /// message when it belongs to a transaction.
  void StampTrace(net::Message& msg);
  void ResolveCall(uint64_t request_id, const Status& status,
                   const net::Message& msg);
  void StartCallTimer(uint64_t request_id);

  Node* node_ = nullptr;
  int cpu_ = -1;
  net::Pid pid_ = 0;
  uint64_t current_transid_ = 0;
  uint64_t next_request_id_ = 1;
  sim::Stats* stats_ = nullptr;
  sim::MetricId m_call_retries_;
  sim::TraceContext active_trace_;

  struct PendingCall {
    net::Message original;  // for transparent retries
    RpcCallback cb;
    uint64_t timer = 0;
    int retries_left = 0;
    SimDuration timeout = 0;
    SimDuration retry_backoff = 0;
  };
  std::unordered_map<uint64_t, PendingCall> pending_calls_;

  // Liveness guard: timers capture a weak_ptr to this so callbacks scheduled
  // before a CPU failure cannot touch a destroyed process.
  std::shared_ptr<Process*> self_ = std::make_shared<Process*>(this);
};

}  // namespace encompass::os

#endif  // ENCOMPASS_OS_PROCESS_H_
