file(REMOVE_RECURSE
  "CMakeFiles/encompass_storage.dir/bplus_tree.cc.o"
  "CMakeFiles/encompass_storage.dir/bplus_tree.cc.o.d"
  "CMakeFiles/encompass_storage.dir/file.cc.o"
  "CMakeFiles/encompass_storage.dir/file.cc.o.d"
  "CMakeFiles/encompass_storage.dir/partition.cc.o"
  "CMakeFiles/encompass_storage.dir/partition.cc.o.d"
  "CMakeFiles/encompass_storage.dir/record.cc.o"
  "CMakeFiles/encompass_storage.dir/record.cc.o.d"
  "CMakeFiles/encompass_storage.dir/volume.cc.o"
  "CMakeFiles/encompass_storage.dir/volume.cc.o.d"
  "libencompass_storage.a"
  "libencompass_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encompass_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
