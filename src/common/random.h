// Deterministic PRNG (xoshiro256**). Every stochastic choice in the
// simulation draws from a seeded instance of this generator so that runs are
// bit-reproducible.

#ifndef ENCOMPASS_COMMON_RANDOM_H_
#define ENCOMPASS_COMMON_RANDOM_H_

#include <cstdint>

namespace encompass {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, and deterministic
/// across platforms (unlike std::mt19937 distributions).
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 to expand the seed into the four state words.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Uniform(hi - lo + 1); }

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Zipf-like skewed pick in [0, n): probability of item i proportional to
  /// 1/(i+1)^theta. Used for hot-record contention workloads.
  uint64_t Skewed(uint64_t n, double theta);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace encompass

#endif  // ENCOMPASS_COMMON_RANDOM_H_
