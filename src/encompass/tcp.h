// Tcp: the Terminal Control Process — a process-pair that supervises "the
// interleaved execution of Screen COBOL programs, each associated with one
// of the terminals under control of the TCP". It implements the TMF verbs
// (BEGIN-/END-/ABORT-/RESTART-TRANSACTION), SEND with automatic transid
// propagation and remote-transaction-begin, automatic restart at
// BEGIN-TRANSACTION (bounded by the transaction restart limit), and
// checkpointing of screen input so a restart "may not require re-entering
// the input screen(s)".

#ifndef ENCOMPASS_ENCOMPASS_TCP_H_
#define ENCOMPASS_ENCOMPASS_TCP_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "encompass/screen_program.h"
#include "os/process_pair.h"
#include "tmf/tmf_protocol.h"

namespace encompass::app {

/// TCP configuration.
struct TcpConfig {
  /// Programs this TCP can run, by name (the checkpointed terminal context
  /// references programs by name, never by pointer).
  std::map<std::string, const ScreenProgram*> programs;
  int restart_limit = 3;          ///< configurable transaction restart limit
  SimDuration send_timeout = Seconds(10);
  SimDuration verb_timeout = Seconds(10);   ///< BEGIN/END/ABORT round trips
  SimDuration think_time = 0;     ///< pause between program iterations
  size_t max_terminals = 32;      ///< per the paper
};

/// The Terminal Control Process pair.
class Tcp : public os::PairedProcess {
 public:
  explicit Tcp(TcpConfig config) : config_(std::move(config)) {}

  std::string DebugName() const override { return pair_name() + "/tcp"; }

  /// Attaches a terminal that runs `program_name` `iterations` times
  /// (UINT64_MAX = until the simulation stops). Returns false if the TCP is
  /// full or the program is unknown. Call on the primary after spawn.
  bool AttachTerminal(const std::string& terminal_name,
                      const std::string& program_name, uint64_t iterations);

  // Aggregate statistics (valid on the current primary).
  uint64_t transactions_committed() const { return committed_; }
  uint64_t transactions_restarted() const { return restarts_; }
  uint64_t programs_completed() const { return programs_completed_; }
  uint64_t programs_failed() const { return programs_failed_; }
  size_t terminal_count() const { return terminals_.size(); }
  /// Terminals that have finished all iterations.
  size_t idle_terminals() const;

 protected:
  void OnPairAttach() override;
  void OnCheckpoint(const Slice& delta) override;
  void OnTakeover() override;
  void OnBackupAttached() override;

 private:
  struct Terminal {
    std::string name;
    std::string program_name;
    const ScreenProgram* program = nullptr;
    uint64_t remaining = 0;
    Fields fields;
    Fields begin_snapshot;   ///< screen input checkpointed at BEGIN
    size_t pc = 0;
    size_t begin_pc = 0;
    int restarts = 0;
    uint64_t transid = 0;
    bool done = false;
    bool waiting = false;    ///< an async verb is outstanding
  };

  void Step(size_t idx);
  void RunBegin(size_t idx);
  void RunSend(size_t idx, const ScreenProgram::Verb& verb);
  void RunEnd(size_t idx);
  void RunAbort(size_t idx, bool then_restart, bool voluntary);
  /// Back out (if needed) and resume at BEGIN with the snapshotted input,
  /// or fail the program when the restart limit is exceeded.
  void RestartTransaction(size_t idx);
  void FinishIteration(size_t idx, bool success);
  void ApplyDirective(size_t idx, SendDirective directive);
  void CheckpointTerminal(const Terminal& term);
  void CheckpointCounters();
  net::Address Tmp() const { return net::Address(node()->id(), "$TMP"); }

  struct Metrics {
    sim::MetricId terminals_attached, commits, voluntary_aborts, failed_aborts;
    sim::MetricId restart_limit_exceeded, txn_restarts;
    sim::MetricId programs_completed, programs_failed, terminals_done;
    sim::MetricId takeover_restarts;
  };

  TcpConfig config_;
  Metrics m_;
  std::vector<Terminal> terminals_;
  uint64_t committed_ = 0;
  uint64_t restarts_ = 0;
  uint64_t programs_completed_ = 0;
  uint64_t programs_failed_ = 0;
};

}  // namespace encompass::app

#endif  // ENCOMPASS_ENCOMPASS_TCP_H_
