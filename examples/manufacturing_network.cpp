// The paper's Figure-4 application: Tandem Manufacturing's four-site
// distributed data base. Global files are replicated at every site with a
// master node per record; updates at the master enqueue deferred updates in
// a suspense file which a suspense monitor drains to the other sites. A
// site is disconnected mid-run: it keeps doing local work (node autonomy),
// deferred updates accumulate, and after reconnection every copy converges.
//
// Build & run:  ./build/examples/manufacturing_network

#include <cstdio>

#include "apps/manufacturing/manufacturing.h"
#include "encompass/deployment.h"
#include "encompass/tcp.h"

using namespace encompass;
using namespace encompass::app;
using namespace encompass::apps::manufacturing;

namespace {

const std::vector<net::NodeId> kNodes = {1, 2, 3, 4};
const char* kSiteNames[] = {"", "cupertino", "santa-clara", "reston",
                            "neufahrn"};

void PrintCopies(Deployment* deploy, const char* when) {
  printf("%-28s", when);
  for (net::NodeId n : kNodes) {
    auto v = CopyValue(deploy, n, "item-master", "X100");
    printf("  %-12s=%-8s", kSiteNames[n], v ? v->c_str() : "?");
  }
  printf("  suspense@master=%zu\n", SuspenseDepth(deploy, 1));
}

}  // namespace

int main() {
  sim::Simulation sim(99);
  Deployment deploy(&sim);
  for (net::NodeId n : kNodes) {
    NodeSpec spec;
    spec.id = n;
    spec.node_config.num_cpus = 4;
    spec.volumes = {VolumeSpec{MfgVolume(n), {}, {}}};
    deploy.AddNode(spec);
  }
  deploy.LinkAll();
  Status s = DeployManufacturing(&deploy, kNodes);
  if (!s.ok()) {
    printf("deploy failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::vector<SuspenseMonitor*> monitors;
  for (net::NodeId n : kNodes) {
    AddMfgServerClass(&deploy, n, kNodes);
    monitors.push_back(AddSuspenseMonitor(&deploy, n, kNodes));
  }
  SeedGlobalRecord(&deploy, kNodes, "item-master", "X100", "rev1",
                   /*master=*/1);
  sim.RunFor(Millis(10));
  PrintCopies(&deploy, "initial");

  // Disconnect Neufahrn, then update the item at its master (Cupertino)
  // twice, via a terminal at Reston (forwarded to the master).
  deploy.cluster().IsolateNode(4);
  sim.RunFor(Millis(50));
  printf("\n[neufahrn disconnected from the network]\n\n");

  auto update = [&](net::NodeId via, const std::string& val) {
    auto program = std::make_unique<ScreenProgram>(
        MakeGlobalUpdateProgram(via, "item-master", "X100"));
    // Run one deterministic update by overriding the Accept-generated value.
    ScreenProgram fixed("fixed-update");
    fixed.Compute([val](Fields& f) { f["val"] = val; })
        .BeginTransaction()
        .Send(via, GlobalServerClass(),
              [val](const Fields&) {
                storage::Record r;
                r.Set("op", "gupdate")
                    .Set("file", "item-master")
                    .Set("key", "X100")
                    .Set("val", val);
                return r.Encode();
              })
        .EndTransaction();
    TcpConfig cfg;
    cfg.programs = {{"u", &fixed}};
    auto tcp = os::SpawnPair<Tcp>(deploy.GetNode(via)->node(),
                                  "$TCPU" + val, 2, 3, cfg);
    sim.RunFor(Millis(5));
    tcp.primary->AttachTerminal("t", "u", 1);
    sim.RunFor(Seconds(5));
  };

  update(3, "rev2");
  PrintCopies(&deploy, "after rev2 (via reston)");
  update(3, "rev3");
  PrintCopies(&deploy, "after rev3 (via reston)");

  printf("\n[reconnecting neufahrn]\n\n");
  deploy.cluster().ReconnectNode(4);
  sim.RunFor(Seconds(20));
  PrintCopies(&deploy, "after reconnection");

  bool converged = Converged(&deploy, kNodes, "item-master", "X100");
  auto final_value = CopyValue(&deploy, 4, "item-master", "X100");
  size_t depth = SuspenseDepth(&deploy, 1);
  printf("\nconverged=%s  neufahrn=%s  suspense-depth=%zu\n",
         converged ? "yes" : "no",
         final_value ? final_value->c_str() : "?", depth);
  bool ok = converged && final_value && *final_value == "rev3" && depth == 0;
  printf("\n%s\n", ok ? "MANUFACTURING NETWORK OK" : "MANUFACTURING NETWORK FAILED");
  return ok ? 0 : 1;
}
