file(REMOVE_RECURSE
  "CMakeFiles/encompass_mfg.dir/manufacturing.cc.o"
  "CMakeFiles/encompass_mfg.dir/manufacturing.cc.o.d"
  "libencompass_mfg.a"
  "libencompass_mfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encompass_mfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
