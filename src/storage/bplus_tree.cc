#include "storage/bplus_tree.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"

namespace encompass::storage {

/// Tree node. Leaves hold parallel keys/values; internal nodes hold children
/// with keys[i] = smallest key in children[i+1] (so children.size() ==
/// keys.size() + 1).
struct BPlusTree::Node {
  bool leaf = true;
  std::vector<Bytes> keys;
  std::vector<Bytes> values;                    // leaf only
  std::vector<std::unique_ptr<Node>> children;  // internal only
  Node* next = nullptr;                         // leaf chain
  size_t byte_size = 0;                         // approx. serialized size

  /// Index of the child to descend into for `key`.
  size_t ChildIndex(const Slice& key) const {
    // First key strictly greater than `key` bounds the child on the right.
    size_t lo = 0, hi = keys.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (key.Compare(Slice(keys[mid])) < 0) hi = mid;
      else lo = mid + 1;
    }
    return lo;
  }

  /// Index of the first key >= `key` in a leaf.
  size_t LowerBound(const Slice& key) const {
    size_t lo = 0, hi = keys.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (Slice(keys[mid]).Compare(key) < 0) lo = mid + 1;
      else hi = mid;
    }
    return lo;
  }
};

struct BPlusTree::SplitResult {
  Bytes separator;  // smallest key of the new right sibling
  std::unique_ptr<Node> right;
};

BPlusTree::BPlusTree(size_t block_size)
    : block_size_(block_size < 256 ? 256 : block_size),
      root_(std::make_unique<Node>()) {}

BPlusTree::~BPlusTree() = default;
BPlusTree::BPlusTree(BPlusTree&&) noexcept = default;
BPlusTree& BPlusTree::operator=(BPlusTree&&) noexcept = default;

size_t BPlusTree::EntrySize(const Slice& key, const Slice& value) const {
  return key.size() + value.size() + 8;  // 8: length + bookkeeping overhead
}

BPlusTree::Node* BPlusTree::FindLeaf(const Slice& key) const {
  Node* node = root_.get();
  while (!node->leaf) {
    node = node->children[node->ChildIndex(key)].get();
  }
  return node;
}

Status BPlusTree::Insert(const Slice& key, const Slice& value) {
  bool replaced = false;
  std::unique_ptr<SplitResult> split;
  if (!InsertRec(root_.get(), key, value, /*allow_replace=*/false, &replaced,
                 &split)) {
    return Status::AlreadyExists("key exists");
  }
  if (split != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->keys.push_back(std::move(split->separator));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    new_root->byte_size = new_root->keys[0].size() + 16;
    root_ = std::move(new_root);
    ++height_;
    ++node_count_;
  }
  ++size_;
  return Status::Ok();
}

Status BPlusTree::Update(const Slice& key, const Slice& value) {
  Node* leaf = FindLeaf(key);
  size_t idx = leaf->LowerBound(key);
  if (idx >= leaf->keys.size() || Slice(leaf->keys[idx]) != key) {
    return Status::NotFound("no such key");
  }
  leaf->byte_size -= leaf->values[idx].size();
  leaf->values[idx] = value.ToBytes();
  leaf->byte_size += value.size();
  // An oversize leaf after a grow-in-place is tolerated until the next
  // insert splits it; lookups are unaffected.
  return Status::Ok();
}

Status BPlusTree::Upsert(const Slice& key, const Slice& value) {
  Status s = Update(key, value);
  if (s.IsNotFound()) return Insert(key, value);
  return s;
}

Status BPlusTree::Delete(const Slice& key) {
  Node* leaf = FindLeaf(key);
  size_t idx = leaf->LowerBound(key);
  if (idx >= leaf->keys.size() || Slice(leaf->keys[idx]) != key) {
    return Status::NotFound("no such key");
  }
  leaf->byte_size -= EntrySize(Slice(leaf->keys[idx]), Slice(leaf->values[idx]));
  leaf->keys.erase(leaf->keys.begin() + idx);
  leaf->values.erase(leaf->values.begin() + idx);
  --size_;
  // Collapse a root with a single child so height reflects reality.
  while (!root_->leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children[0]);
    --height_;
    --node_count_;
  }
  return Status::Ok();
}

Result<Bytes> BPlusTree::Get(const Slice& key) const {
  Node* leaf = FindLeaf(key);
  size_t idx = leaf->LowerBound(key);
  if (idx >= leaf->keys.size() || Slice(leaf->keys[idx]) != key) {
    return Status::NotFound("no such key");
  }
  return leaf->values[idx];
}

Result<TreeEntry> BPlusTree::Seek(const Slice& key) const {
  Node* leaf = FindLeaf(key);
  size_t idx = leaf->LowerBound(key);
  while (leaf != nullptr && idx >= leaf->keys.size()) {
    leaf = leaf->next;
    idx = 0;
  }
  if (leaf == nullptr) return Status::EndOfFile();
  return TreeEntry{leaf->keys[idx], leaf->values[idx]};
}

Result<TreeEntry> BPlusTree::SeekAfter(const Slice& key) const {
  auto r = Seek(key);
  if (!r.ok()) return r;
  if (Slice(r->key) != key) return r;
  // Advance one position past the exact match.
  Node* leaf = FindLeaf(key);
  size_t idx = leaf->LowerBound(key) + 1;
  while (leaf != nullptr && idx >= leaf->keys.size()) {
    leaf = leaf->next;
    idx = 0;
  }
  if (leaf == nullptr) return Status::EndOfFile();
  return TreeEntry{leaf->keys[idx], leaf->values[idx]};
}

Result<TreeEntry> BPlusTree::First() const {
  if (size_ == 0) return Status::EndOfFile();
  Node* node = root_.get();
  while (!node->leaf) node = node->children[0].get();
  return TreeEntry{node->keys[0], node->values[0]};
}

void BPlusTree::ForEach(
    const std::function<void(const Slice&, const Slice&)>& fn) const {
  const Node* node = root_.get();
  while (!node->leaf) node = node->children[0].get();
  for (; node != nullptr; node = node->next) {
    for (size_t i = 0; i < node->keys.size(); ++i) {
      fn(Slice(node->keys[i]), Slice(node->values[i]));
    }
  }
}

bool BPlusTree::InsertRec(Node* node, const Slice& key, const Slice& value,
                          bool allow_replace, bool* replaced,
                          std::unique_ptr<SplitResult>* split) {
  if (node->leaf) {
    size_t idx = node->LowerBound(key);
    if (idx < node->keys.size() && Slice(node->keys[idx]) == key) {
      if (!allow_replace) return false;
      node->values[idx] = value.ToBytes();
      *replaced = true;
      return true;
    }
    node->keys.insert(node->keys.begin() + idx, key.ToBytes());
    node->values.insert(node->values.begin() + idx, value.ToBytes());
    node->byte_size += EntrySize(key, value);
    if (node->byte_size > block_size_ && node->keys.size() > 1) {
      SplitNode(node, split);
    }
    return true;
  }

  size_t child_idx = node->ChildIndex(key);
  std::unique_ptr<SplitResult> child_split;
  if (!InsertRec(node->children[child_idx].get(), key, value, allow_replace,
                 replaced, &child_split)) {
    return false;
  }
  if (child_split != nullptr) {
    node->byte_size += child_split->separator.size() + 16;
    node->keys.insert(node->keys.begin() + child_idx,
                      std::move(child_split->separator));
    node->children.insert(node->children.begin() + child_idx + 1,
                          std::move(child_split->right));
    if (node->byte_size > block_size_ && node->keys.size() > 2) {
      SplitNode(node, split);
    }
  }
  return true;
}

void BPlusTree::SplitNode(Node* node, std::unique_ptr<SplitResult>* split) {
  auto result = std::make_unique<SplitResult>();
  auto right = std::make_unique<Node>();
  right->leaf = node->leaf;

  if (node->leaf) {
    size_t mid = node->keys.size() / 2;
    result->separator = node->keys[mid];
    right->keys.assign(std::make_move_iterator(node->keys.begin() + mid),
                       std::make_move_iterator(node->keys.end()));
    right->values.assign(std::make_move_iterator(node->values.begin() + mid),
                         std::make_move_iterator(node->values.end()));
    node->keys.resize(mid);
    node->values.resize(mid);
    right->next = node->next;
    node->next = right.get();
  } else {
    size_t mid = node->keys.size() / 2;
    result->separator = std::move(node->keys[mid]);
    right->keys.assign(std::make_move_iterator(node->keys.begin() + mid + 1),
                       std::make_move_iterator(node->keys.end()));
    right->children.assign(
        std::make_move_iterator(node->children.begin() + mid + 1),
        std::make_move_iterator(node->children.end()));
    node->keys.resize(mid);
    node->children.resize(mid + 1);
  }

  // Recompute byte sizes exactly after the move.
  auto recompute = [this](Node* n) {
    n->byte_size = 0;
    if (n->leaf) {
      for (size_t i = 0; i < n->keys.size(); ++i) {
        n->byte_size += EntrySize(Slice(n->keys[i]), Slice(n->values[i]));
      }
    } else {
      for (const auto& k : n->keys) n->byte_size += k.size() + 16;
    }
  };
  recompute(node);
  recompute(right.get());

  result->right = std::move(right);
  *split = std::move(result);
  ++node_count_;
}

void BPlusTree::SerializeTo(Bytes* out) const {
  PutVarint64(out, size_);
  Bytes prev;
  ForEach([&](const Slice& key, const Slice& value) {
    size_t shared = SharedPrefixLength(Slice(prev), key);
    PutVarint64(out, shared);
    PutVarint64(out, key.size() - shared);
    out->insert(out->end(), key.data() + shared, key.data() + key.size());
    PutLengthPrefixed(out, value);
    prev = key.ToBytes();
  });
}

size_t BPlusTree::UncompressedDataSize() const {
  size_t total = 0;
  ForEach([&](const Slice& key, const Slice& value) {
    total += key.size() + value.size();
  });
  return total;
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::Deserialize(Slice* in,
                                                          size_t block_size) {
  uint64_t count;
  if (!GetVarint64(in, &count)) return DecodeError("tree entry count");
  auto tree = std::make_unique<BPlusTree>(block_size);
  Bytes prev;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t shared, unshared;
    if (!GetVarint64(in, &shared) || !GetVarint64(in, &unshared)) {
      return DecodeError("tree key lengths");
    }
    if (shared > prev.size() || in->size() < unshared) {
      return DecodeError("tree key bytes");
    }
    Bytes key(prev.begin(), prev.begin() + shared);
    key.insert(key.end(), in->data(), in->data() + unshared);
    in->RemovePrefix(unshared);
    Bytes value;
    if (!GetLengthPrefixedBytes(in, &value)) return DecodeError("tree value");
    Status s = tree->Insert(Slice(key), Slice(value));
    if (!s.ok()) return Status::Corruption("duplicate key in serialized tree");
    prev = std::move(key);
  }
  return tree;
}

}  // namespace encompass::storage
