// FaultInjector: a scripted schedule of named fault actions applied at
// simulated times, with a journal of what fired. Concrete fault effects
// (failing a CPU, cutting a link, dropping a disc path) are provided by the
// OS and network layers as callbacks; this class owns *when* and *what was
// logged*, keeping experiments declarative and reproducible.

#ifndef ENCOMPASS_SIM_FAULT_INJECTOR_H_
#define ENCOMPASS_SIM_FAULT_INJECTOR_H_

#include <functional>
#include <string>
#include <vector>

#include "sim/simulation.h"

namespace encompass::sim {

/// A record of one injected fault.
struct FaultEvent {
  SimTime when;
  std::string description;
};

/// Declarative fault schedule bound to a Simulation.
class FaultInjector {
 public:
  explicit FaultInjector(Simulation* sim) : sim_(sim) {}

  /// Schedules `action` at absolute simulated time `when`, journaling it
  /// under `description` when it fires.
  void InjectAt(SimTime when, std::string description, std::function<void()> action);

  /// Schedules `action` `delay` microseconds from now.
  void InjectAfter(SimDuration delay, std::string description,
                   std::function<void()> action);

  /// Journal of faults that have actually fired, in firing order.
  const std::vector<FaultEvent>& journal() const { return journal_; }

  /// Number of scheduled faults that have not yet fired.
  size_t pending() const { return scheduled_ - journal_.size(); }

 private:
  Simulation* sim_;
  std::vector<FaultEvent> journal_;
  size_t scheduled_ = 0;
};

}  // namespace encompass::sim

#endif  // ENCOMPASS_SIM_FAULT_INJECTOR_H_
