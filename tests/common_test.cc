// Unit tests for the common module: Status/Result, Slice, coding, CRC32,
// Random, Transid.

#include <gtest/gtest.h>

#include <limits>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/transid.h"

namespace encompass {
namespace {

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryAndPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Timeout().IsTimeout());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::Partitioned().IsPartitioned());
  EXPECT_TRUE(Status::InDoubt().IsInDoubt());
  EXPECT_FALSE(Status::NotFound().ok());
}

TEST(StatusTest, MessagePreserved) {
  Status s = Status::IoError("disc 3 path down");
  EXPECT_EQ(s.message(), "disc 3 path down");
  EXPECT_EQ(s.ToString(), "IoError: disc 3 path down");
}

TEST(StatusTest, EqualityIgnoresMessage) {
  EXPECT_EQ(Status::Busy("a"), Status::Busy("b"));
  EXPECT_FALSE(Status::Busy() == Status::Timeout());
}

TEST(StatusTest, CodeNamesCoverAllCodes) {
  for (int c = 0; c <= 16; ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<Status::Code>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status {
    ENCOMPASS_RETURN_IF_ERROR(Status::NotFound("inner"));
    return Status::Ok();
  };
  EXPECT_TRUE(fails().IsNotFound());
  auto passes = []() -> Status {
    ENCOMPASS_RETURN_IF_ERROR(Status::Ok());
    return Status::Aborted();
  };
  EXPECT_TRUE(passes().IsAborted());
}

// ---------------------------------------------------------------------------
// Result<T>
// ---------------------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Busy();
    return 7;
  };
  auto outer = [&](bool fail) -> Status {
    int v = 0;
    ENCOMPASS_ASSIGN_OR_RETURN(v, inner(fail));
    return v == 7 ? Status::Ok() : Status::Corruption();
  };
  EXPECT_TRUE(outer(false).ok());
  EXPECT_TRUE(outer(true).IsBusy());
}

// ---------------------------------------------------------------------------
// Slice
// ---------------------------------------------------------------------------

TEST(SliceTest, BasicViewsAndCompare) {
  std::string s = "hello";
  Slice a(s);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_EQ(a.Compare(Slice("hello")), 0);
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);  // prefix sorts first
  EXPECT_GT(Slice("b").Compare(Slice("ab")), 0);
}

TEST(SliceTest, RemovePrefixAndStartsWith) {
  Slice a("transaction");
  EXPECT_TRUE(a.StartsWith(Slice("trans")));
  a.RemovePrefix(5);
  EXPECT_EQ(a.ToString(), "action");
  EXPECT_FALSE(a.StartsWith(Slice("trans")));
}

TEST(SliceTest, SharedPrefixLength) {
  EXPECT_EQ(SharedPrefixLength(Slice("abcde"), Slice("abcxy")), 3u);
  EXPECT_EQ(SharedPrefixLength(Slice(""), Slice("a")), 0u);
  EXPECT_EQ(SharedPrefixLength(Slice("same"), Slice("same")), 4u);
}

TEST(SliceTest, BytesRoundTrip) {
  Bytes b = ToBytes("payload");
  EXPECT_EQ(ToString(b), "payload");
  Slice s(b);
  EXPECT_EQ(s.ToBytes(), b);
}

// ---------------------------------------------------------------------------
// Coding
// ---------------------------------------------------------------------------

TEST(CodingTest, FixedRoundTrip) {
  Bytes buf;
  PutFixed8(&buf, 0xab);
  PutFixed16(&buf, 0x1234);
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefULL);
  Slice in(buf);
  uint8_t v8;
  uint16_t v16;
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed8(&in, &v8));
  ASSERT_TRUE(GetFixed16(&in, &v16));
  ASSERT_TRUE(GetFixed32(&in, &v32));
  ASSERT_TRUE(GetFixed64(&in, &v64));
  EXPECT_EQ(v8, 0xab);
  EXPECT_EQ(v16, 0x1234);
  EXPECT_EQ(v32, 0xdeadbeefu);
  EXPECT_EQ(v64, 0x0123456789abcdefULL);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  const uint64_t values[] = {0,    1,        127,        128,
                             300,  16383,    16384,      (1ULL << 32) - 1,
                             1ULL << 32, std::numeric_limits<uint64_t>::max()};
  Bytes buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Slice in(buf);
  for (uint64_t v : values) {
    uint64_t decoded;
    ASSERT_TRUE(GetVarint64(&in, &decoded));
    EXPECT_EQ(decoded, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Varint32RejectsOverflow) {
  Bytes buf;
  PutVarint64(&buf, 1ULL << 33);
  Slice in(buf);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&in, &v));
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  Bytes buf;
  PutLengthPrefixed(&buf, Slice("alpha"));
  PutLengthPrefixed(&buf, Slice(""));
  PutLengthPrefixed(&buf, Slice("gamma"));
  Slice in(buf);
  std::string a, b, c;
  ASSERT_TRUE(GetLengthPrefixedString(&in, &a));
  ASSERT_TRUE(GetLengthPrefixedString(&in, &b));
  ASSERT_TRUE(GetLengthPrefixedString(&in, &c));
  EXPECT_EQ(a, "alpha");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, "gamma");
}

TEST(CodingTest, DecodeUnderflowFails) {
  Bytes buf;
  PutFixed32(&buf, 7);
  Slice in(buf);
  uint64_t v64;
  EXPECT_FALSE(GetFixed64(&in, &v64));
  Bytes truncated;
  PutVarint64(&truncated, 1000000);
  truncated.pop_back();
  Slice in2(truncated);
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&in2, &v));
}

TEST(CodingTest, LengthPrefixTruncationFails) {
  Bytes buf;
  PutVarint64(&buf, 100);  // claims 100 bytes follow
  buf.push_back('x');
  Slice in(buf);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // CRC32C("123456789") = 0xE3069283 (well-known check value).
  EXPECT_EQ(Crc32c(Slice("123456789")), 0xE3069283u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32c(Slice("")), 0u); }

TEST(Crc32Test, Incremental) {
  Slice full("transaction monitoring");
  uint32_t whole = Crc32c(full);
  uint32_t part = Crc32c(0, full.data(), 11);
  part = Crc32c(part, full.data() + 11, full.size() - 11);
  EXPECT_EQ(whole, part);
}

TEST(Crc32Test, DetectsCorruption) {
  Bytes data = ToBytes("audit record body");
  uint32_t before = Crc32c(Slice(data));
  data[5] ^= 0x01;
  EXPECT_NE(before, Crc32c(Slice(data)));
}

// ---------------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------------

TEST(RandomTest, DeterministicForSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RandomTest, UniformInRange) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.Range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random r(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(RandomTest, SkewedFavorsSmallIndices) {
  Random r(9);
  int64_t low = 0, high = 0;
  const uint64_t n = 1000;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = r.Skewed(n, 0.99);
    EXPECT_LT(v, n);
    if (v < n / 10) ++low;
    if (v >= 9 * n / 10) ++high;
  }
  EXPECT_GT(low, high * 2);
}

TEST(RandomTest, SkewedDegenerateN) {
  Random r(3);
  EXPECT_EQ(r.Skewed(0, 0.5), 0u);
  EXPECT_EQ(r.Skewed(1, 0.5), 0u);
}

// ---------------------------------------------------------------------------
// Transid
// ---------------------------------------------------------------------------

TEST(TransidTest, PackUnpackRoundTrip) {
  Transid t{/*home_node=*/300, /*cpu=*/15, /*seq=*/(1ULL << 40) - 1};
  Transid u = Transid::Unpack(t.Pack());
  EXPECT_EQ(u.home_node, 300);
  EXPECT_EQ(u.cpu, 15);
  EXPECT_EQ(u.seq, (1ULL << 40) - 1);
  EXPECT_EQ(t, u);
}

TEST(TransidTest, InvalidHasSeqZero) {
  Transid t;
  EXPECT_FALSE(t.valid());
  EXPECT_EQ(t.ToString(), "txn(none)");
  Transid v{1, 0, 5};
  EXPECT_TRUE(v.valid());
}

TEST(TransidTest, OrderingFollowsPack) {
  Transid a{1, 0, 5}, b{1, 0, 6}, c{2, 0, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(TransidTest, HashDistinct) {
  std::hash<Transid> h;
  EXPECT_NE(h(Transid{1, 0, 1}), h(Transid{1, 0, 2}));
}

}  // namespace
}  // namespace encompass
