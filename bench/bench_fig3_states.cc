// F3 — Figure 3 (transaction state transitions). Runs a mixed workload that
// exercises every edge of the state machine (commit, voluntary abort,
// deadlock-timeout restart, failure-induced abort) and prints the observed
// transition census — every edge present, zero illegal transitions — plus
// the latency of each protocol phase.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "test_util.h"
#include "tmf/file_system.h"
#include "tmf/transaction_state.h"

namespace encompass::bench {
namespace {

void TableTransitionCensus() {
  Header("F3.a state-transition census under a mixed workload");
  // High contention (skewed access to few accounts) to provoke deadlock
  // restarts, plus a voluntary-abort program and a CPU failure.
  BankRig rig = MakeBankRig(/*seed=*/5, /*cpus=*/4, /*accounts=*/6,
                            /*terminals=*/8, /*iterations=*/30, /*skew=*/0.9,
                            /*lock_timeout=*/Millis(100),
                            /*restart_limit=*/500);
  rig.sim->RunFor(Millis(100));
  rig.node->node()->FailCpu(1);  // failure-induced aborts
  rig.sim->RunFor(Seconds(900));
  rig.sim->Run();

  // The ending->aborting edge needs a phase-1 failure: run a distributed
  // transaction whose participant is cut exactly at END-TRANSACTION time.
  sim::Simulation sim2(77);
  {
    app::Deployment deploy(&sim2);
    for (net::NodeId id : {1, 2}) {
      app::NodeSpec spec;
      spec.id = id;
      spec.node_config.num_cpus = 4;
      spec.volumes = {app::VolumeSpec{
          "$D" + std::to_string(id), {app::FileSpec{"f" + std::to_string(id)}},
          {}}};
      deploy.AddNode(spec);
    }
    deploy.LinkAll();
    deploy.DefineFile("f2", 2, "$D2");
    auto* client =
        deploy.GetNode(1)->node()->Spawn<testutil::TestClient>(2);
    tmf::FileSystem fs(client, &deploy.catalog());
    sim2.Run();
    auto* begin = client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfBegin, {});
    sim2.Run();
    auto transid = tmf::DecodeTransidPayload(Slice(begin->payload));
    client->set_current_transid(transid->Pack());
    fs.Insert("f2", Slice("k"), Slice("v"), [](const Status&, const Bytes&) {});
    client->set_current_transid(0);
    sim2.Run();
    client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                    tmf::EncodeTransidPayload(*transid), transid->Pack());
    // Cut the link while phase 1 is in flight: the critical-response
    // message fails and the transaction moves ending -> aborting.
    sim2.RunFor(Millis(1));
    deploy.cluster().CutLink(1, 2);
    sim2.RunFor(Seconds(20));
  }

  auto& stats = rig.sim->GetStats();
  auto& stats2 = sim2.GetStats();
  printf("%-34s %10s\n", "transition (Figure 3 edge)", "count");
  const char* edges[] = {
      "tmf.transition.active->ending",    // END-TRANSACTION (phase one)
      "tmf.transition.ending->ended",     // phase two (commit)
      "tmf.transition.active->aborting",  // failure / abort verb
      "tmf.transition.ending->aborting",  // phase-one failure
      "tmf.transition.aborting->aborted", // backout complete
  };
  for (const char* e : edges) {
    printf("%-34s %10lld\n", e + 15,
           (long long)(stats.Counter(e) + stats2.Counter(e)));
  }
  printf("%-34s %10lld  (must be 0)\n", "ILLEGAL transitions",
         (long long)(stats.Counter("tmf.illegal_transitions") +
                     stats2.Counter("tmf.illegal_transitions")));
  printf("\ncommits=%lld backouts=%lld restarts=%lld broadcasts=%lld\n",
         (long long)stats.Counter("tmf.commits"),
         (long long)stats.Counter("tmf.backouts"),
         (long long)stats.Counter("tcp.txn_restarts"),
         (long long)stats.Counter("tmf.state_broadcasts"));
  long long sum = apps::banking::SumBalances(rig.volume, "acct");
  printf("money conserved: %s ($%lld)\n", sum == 6 * 1000 ? "yes" : "NO", sum);
}

void TableStateMachineExhaustive() {
  Header("F3.b legality matrix (LegalTransition)");
  using tmf::TxnState;
  const TxnState all[] = {TxnState::kActive, TxnState::kEnding, TxnState::kEnded,
                          TxnState::kAborting, TxnState::kAborted};
  printf("%-10s", "from\\to");
  for (TxnState to : all) printf(" %-9s", tmf::TxnStateName(to));
  printf("\n");
  for (TxnState from : all) {
    printf("%-10s", tmf::TxnStateName(from));
    for (TxnState to : all) {
      printf(" %-9s", tmf::LegalTransition(from, to) ? "yes" : ".");
    }
    printf("\n");
  }
}

void TableCommitAbortLatency() {
  Header("F3.c commit vs abort latency (single terminal, no contention)");
  // Commit path.
  {
    BankRig rig = MakeBankRig(/*seed=*/3, 4, 100, 1, 50);
    rig.sim->Run();
    double per_txn = static_cast<double>(rig.sim->Now()) /
                     static_cast<double>(rig.Primary()->transactions_committed());
    printf("%-42s %10.0f us/txn\n", "BEGIN..2 SENDs..END (commit, phase1 force)",
           per_txn);
  }
  // Abort path: program that always aborts voluntarily.
  {
    BankRig rig = MakeBankRig(/*seed=*/3, 4, 100, 0, 0);
    app::ScreenProgram aborter("aborter");
    aborter.BeginTransaction()
        .Send(1, "$SC.BANK",
              [](const app::Fields&) {
                return apps::banking::BankRequest(
                    "credit", apps::banking::AccountKey(0), 10);
              })
        .AbortTransaction();
    app::TcpConfig cfg;
    cfg.programs = {{"aborter", &aborter}};
    auto tcp = os::SpawnPair<app::Tcp>(rig.node->node(), "$TCPA", 0, 1, cfg);
    rig.sim->Run();
    tcp.primary->AttachTerminal("t", "aborter", 50);
    SimTime start = rig.sim->Now();
    rig.sim->Run();
    double per_txn = static_cast<double>(rig.sim->Now() - start) / 50.0;
    printf("%-42s %10.0f us/txn\n", "BEGIN..SEND..ABORT (backout via images)",
           per_txn);
  }
}

void BM_CommitPath(benchmark::State& state) {
  uint64_t committed = 0;
  SimTime elapsed = 0;
  for (auto _ : state) {
    BankRig rig = MakeBankRig(/*seed=*/3, 4, 100, 1, 20);
    rig.sim->Run();
    committed += rig.Primary()->transactions_committed();
    elapsed += rig.sim->Now();
  }
  state.counters["sim_us_per_commit"] = benchmark::Counter(
      static_cast<double>(elapsed) / static_cast<double>(committed));
  state.SetItemsProcessed(static_cast<int64_t>(committed));
}
BENCHMARK(BM_CommitPath);

}  // namespace
}  // namespace encompass::bench

int main(int argc, char** argv) {
  encompass::bench::InitReport("fig3_states");
  encompass::bench::ReportMeta(/*seed=*/5);
  printf("F3: Figure 3 — transaction state machine\n");
  encompass::bench::TableTransitionCensus();
  encompass::bench::TableStateMachineExhaustive();
  encompass::bench::TableCommitAbortLatency();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  encompass::bench::WriteReport();
  return 0;
}
