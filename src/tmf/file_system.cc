#include "tmf/file_system.h"

namespace encompass::tmf {

namespace {
os::CallOptions DiscCallOptions() {
  os::CallOptions opt;
  opt.timeout = Seconds(3);
  opt.retries = 2;  // transparent across DISCPROCESS takeover
  return opt;
}
}  // namespace

void FileSystem::Read(const std::string& file, const Slice& key, bool lock,
                      Callback cb) {
  discprocess::DiscRequest req;
  req.file = file;
  req.key = key.ToBytes();
  req.lock = lock;
  req.lock_timeout = lock_timeout_;
  DiscOp(discprocess::kDiscRead, file, key, std::move(req), std::move(cb));
}

void FileSystem::Seek(const std::string& file, const Slice& key, bool inclusive,
                      Callback cb) {
  discprocess::DiscRequest req;
  req.file = file;
  req.key = key.ToBytes();
  req.inclusive = inclusive;
  DiscOp(discprocess::kDiscSeek, file, key, std::move(req), std::move(cb));
}

void FileSystem::Scan(const std::string& file, const Slice& key, bool inclusive,
                      uint32_t max_records, Callback cb) {
  discprocess::DiscRequest req;
  req.file = file;
  req.key = key.ToBytes();
  req.inclusive = inclusive;
  req.max_records = max_records;
  DiscOp(discprocess::kDiscScan, file, key, std::move(req), std::move(cb));
}

void FileSystem::Insert(const std::string& file, const Slice& key,
                        const Slice& record, Callback cb) {
  discprocess::DiscRequest req;
  req.file = file;
  req.key = key.ToBytes();
  req.record = record.ToBytes();
  req.lock_timeout = lock_timeout_;
  DiscOp(discprocess::kDiscInsert, file, key, std::move(req), std::move(cb));
}

void FileSystem::Update(const std::string& file, const Slice& key,
                        const Slice& record, Callback cb) {
  discprocess::DiscRequest req;
  req.file = file;
  req.key = key.ToBytes();
  req.record = record.ToBytes();
  req.lock_timeout = lock_timeout_;
  DiscOp(discprocess::kDiscUpdate, file, key, std::move(req), std::move(cb));
}

void FileSystem::Delete(const std::string& file, const Slice& key, Callback cb) {
  discprocess::DiscRequest req;
  req.file = file;
  req.key = key.ToBytes();
  req.lock_timeout = lock_timeout_;
  DiscOp(discprocess::kDiscDelete, file, key, std::move(req), std::move(cb));
}

void FileSystem::ReadAlternate(const std::string& file, const std::string& field,
                               const std::string& value,
                               const Slice& partition_key, Callback cb) {
  discprocess::DiscRequest req;
  req.file = file;
  req.field = field;
  req.value = value;
  DiscOp(discprocess::kDiscReadAlt, file, partition_key, std::move(req),
         std::move(cb));
}

void FileSystem::LockFile(const std::string& file, Callback cb) {
  const storage::FileDefinition* def = catalog_->Find(file);
  if (def == nullptr) {
    cb(Status::NotFound("undefined file: " + file), {});
    return;
  }
  // Lock every partition; report the first failure.
  auto pending = std::make_shared<int>(
      static_cast<int>(def->partitions.entries().size()));
  auto first_error = std::make_shared<Status>();
  auto done = std::make_shared<Callback>(std::move(cb));
  for (const auto& part : def->partitions.entries()) {
    discprocess::DiscRequest req;
    req.file = file;
    req.lock_timeout = lock_timeout_;
    SendToPartition(discprocess::kDiscLockFile, part, std::move(req),
                    [pending, first_error, done](const Status& s, const Bytes& b) {
                      if (!s.ok() && first_error->ok()) *first_error = s;
                      if (--*pending == 0) (*done)(*first_error, b);
                    });
  }
}

void FileSystem::DiscOp(uint32_t tag, const std::string& file,
                        const Slice& routing_key, discprocess::DiscRequest req,
                        Callback cb) {
  const storage::FileDefinition* def = catalog_->Find(file);
  if (def == nullptr) {
    cb(Status::NotFound("undefined file: " + file), {});
    return;
  }
  const storage::PartitionEntry& part = def->partitions.Locate(routing_key);
  SendToPartition(tag, part, std::move(req), std::move(cb));
}

void FileSystem::SendToPartition(uint32_t tag,
                                 const storage::PartitionEntry& part,
                                 discprocess::DiscRequest req, Callback cb) {
  net::Address dst(part.node, part.volume_process);
  auto shared_cb = std::make_shared<Callback>(std::move(cb));
  // Capture the transid now: the call may be issued from a later event
  // (after the remote-begin round trip), when the owner's current transid
  // may have changed.
  uint64_t transid = owner_->current_transid();
  auto issue = [this, dst, tag, req = std::move(req), shared_cb, transid]() {
    uint64_t saved = owner_->current_transid();
    owner_->set_current_transid(transid);
    owner_->Call(dst, tag, req.Encode(),
                 [shared_cb](const Status& s, const net::Message& m) {
                   (*shared_cb)(s, m.payload);
                 },
                 DiscCallOptions());
    owner_->set_current_transid(saved);
  };
  if (part.node == owner_->id().node || owner_->current_transid() == 0) {
    issue();
    return;
  }
  // First transmission of this transid to another node: remote begin.
  EnsureRemote(part.node, [issue = std::move(issue), shared_cb](const Status& s) {
    if (!s.ok()) {
      (*shared_cb)(s, {});
      return;
    }
    issue();
  });
}

void FileSystem::EnsureRemote(net::NodeId dest,
                              std::function<void(const Status&)> cb) {
  uint64_t transid = owner_->current_transid();
  if (transid == 0 || dest == owner_->id().node ||
      ensured_.count({transid, dest})) {
    cb(Status::Ok());
    return;
  }
  os::CallOptions opt;
  opt.timeout = Seconds(3);
  opt.retries = 1;
  owner_->Call(net::Address(owner_->id().node, "$TMP"), kTmfEnsureRemote,
               EncodeEnsureRemote(Transid::Unpack(transid), dest),
               [this, transid, dest, cb = std::move(cb)](const Status& s,
                                                         const net::Message&) {
                 if (s.ok()) ensured_.insert({transid, dest});
                 cb(s);
               },
               opt);
}

}  // namespace encompass::tmf
