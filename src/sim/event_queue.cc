#include "sim/event_queue.h"

#include <cassert>

namespace encompass::sim {

EventId EventQueue::Schedule(SimTime when, uint16_t exec_node,
                             std::function<void()> fn) {
  uint64_t seq = next_seq_++;
  heap_.push(Event{EventKey{when, origin_, seq}, exec_node, true, std::move(fn)});
  pending_.insert(seq);
  ++live_count_;
  return seq;
}

void EventQueue::ScheduleKeyed(const EventKey& key, uint16_t exec_node,
                               std::function<void()> fn) {
  heap_.push(Event{key, exec_node, false, std::move(fn)});
  ++live_count_;
}

void EventQueue::Cancel(EventId id) {
  // Only a still-pending event can be cancelled; a fired, cancelled, or
  // unknown id is a no-op (no tombstone, no live_count_ change).
  if (pending_.erase(id) == 0) return;
  cancelled_.insert(id);
  --live_count_;
}

void EventQueue::SkipCancelled() const {
  // Only local events consult the tombstone set: a keyed event's seq lives
  // in its sender's numbering and may collide with a cancelled local id.
  while (!heap_.empty() && heap_.top().local) {
    auto it = cancelled_.find(heap_.top().key.seq);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

const EventKey* EventQueue::NextKey() const {
  SkipCancelled();
  return heap_.empty() ? nullptr : &heap_.top().key;
}

SimTime EventQueue::NextTime() const {
  SkipCancelled();
  return heap_.empty() ? kNoDeadline : heap_.top().key.time;
}

std::function<void()> EventQueue::PopNext(EventKey* key, uint16_t* exec_node) {
  SkipCancelled();
  assert(!heap_.empty());
  // priority_queue::top() is const; the callback is moved out via const_cast,
  // which is safe because the element is popped immediately after.
  auto& top = const_cast<Event&>(heap_.top());
  *key = top.key;
  *exec_node = top.exec_node;
  std::function<void()> fn = std::move(top.fn);
  if (top.local) pending_.erase(top.key.seq);
  heap_.pop();
  --live_count_;
  return fn;
}

}  // namespace encompass::sim
