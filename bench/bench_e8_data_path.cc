// E8 — the data path under load. Three measurements back the overhaul:
//
//  (a) Wall-clock engine ops/s of the restructured hot path — the interned
//      O(1) lock table plus allocation-free cache probes — against the
//      pre-PR shapes: the map-scan lock table (kept verbatim as
//      tests/reference_lock_manager.h) and the old "file\0key" string-keyed
//      cache, whose probe concatenated a fresh heap string per lookup
//      (recovered from the original Volume). Both sides replay the identical
//      pre-generated operation stream; only the data structures differ.
//  (b) Simulated-time mirror scheduling: with overlap_mirror_reads on,
//      concurrent reads spread over both drives of the mirrored pair. The
//      overlap factor is the makespan ratio of the same read batch on one
//      drive (mirror failed) vs two.
//  (c) Checkpoint coalescing: messages vs entries per operation across a
//      ckpt_coalesce_window sweep — the same state deltas ride in far fewer
//      primary-to-backup messages.
//
// Headline numbers land in BENCH_e8_data_path.json; CI enforces the
// read-heavy speedup floor and the coalescing message-reduction floor.

#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "discprocess/disc_process.h"
#include "discprocess/disc_protocol.h"
#include "discprocess/lock_manager.h"
#include "os/cluster.h"
#include "os/process_pair.h"
#include "reference_lock_manager.h"
#include "storage/volume.h"
#include "test_util.h"

namespace encompass::bench {
namespace {

using discprocess::DiscProcess;
using discprocess::DiscProcessConfig;
using discprocess::DiscRequest;
using discprocess::DiscTxnState;
using discprocess::kDiscInsert;
using discprocess::kDiscRead;
using discprocess::kDiscTxnStateChange;
using discprocess::LockKey;
using discprocess::LockManager;
using discprocess::ReferenceLockManager;
using discprocess::TxnStateChange;
using testutil::TestClient;

Transid T(uint64_t seq) { return Transid{1, 0, seq}; }

// ---------------------------------------------------------------------------
// E8.a — wall-clock engine A/B: new data path vs pre-PR shapes
// ---------------------------------------------------------------------------

/// The pre-PR cache shape: an LRU of "file\0key" strings where every probe
/// builds a fresh key string (one heap allocation + copy) before the hash
/// lookup. This is the exact structure the Volume used before interning.
class LegacyCacheShape {
 public:
  void Insert(const std::string& file, const std::string& key) {
    std::string ck = Concat(file, key);
    auto it = map_.find(ck);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.push_front(ck);
    map_[std::move(ck)] = lru_.begin();
  }

  bool Probe(const std::string& file, const std::string& key) {
    auto it = map_.find(Concat(file, key));
    if (it == map_.end()) return false;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }

 private:
  static std::string Concat(const std::string& file, const std::string& key) {
    std::string ck = file;
    ck.push_back('\0');
    ck.append(key);
    return ck;
  }

  std::list<std::string> lru_;
  std::unordered_map<std::string, std::list<std::string>::iterator> map_;
};

/// The production cache shape: records keyed by (interned file id, key
/// view); a probe hashes a string_view into the resident key — no
/// allocation, no copy. Mirrors storage::Volume's internal cache exactly
/// (the Volume's own is private; DriveScheduleTest and VolumeCacheTest cover
/// it end to end, this standalone copy isolates probe cost).
class InternedCacheShape {
 public:
  uint32_t Intern(const std::string& file) {
    auto [it, inserted] =
        ids_.try_emplace(file, static_cast<uint32_t>(ids_.size()));
    return it->second;
  }

  void Insert(uint32_t fid, const std::string& key) {
    if (Probe(fid, key)) return;
    lru_.push_front(Entry{fid, key});
    map_.emplace(Ref{fid, std::string_view(lru_.front().key)}, lru_.begin());
  }

  bool Probe(uint32_t fid, std::string_view key) {
    auto it = map_.find(Ref{fid, key});
    if (it == map_.end()) return false;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }

 private:
  struct Entry {
    uint32_t fid;
    std::string key;
  };
  struct Ref {
    uint32_t fid;
    std::string_view key;
    bool operator==(const Ref& o) const {
      return fid == o.fid && key == o.key;
    }
  };
  struct RefHash {
    size_t operator()(const Ref& r) const {
      return std::hash<std::string_view>()(r.key) ^
             static_cast<size_t>(r.fid * 0x9e3779b97f4a7c15ULL);
    }
  };

  std::list<Entry> lru_;
  std::unordered_map<Ref, std::list<Entry>::iterator, RefHash> map_;
  std::unordered_map<std::string, uint32_t> ids_;
};

/// One data-path operation of the replayed stream. Lock keys are pre-built
/// so replay measures the engines, not request decoding (which is identical
/// on both sides).
struct DataPathOp {
  enum Kind : uint8_t { kCacheProbe, kLockAcquire, kReleaseAll } kind;
  uint32_t txn = 0;
  uint32_t file = 0;
  uint32_t key = 0;
  LockKey lock_key;
};

struct WorkloadSpec {
  const char* name;
  int probe_pct;      ///< cache probe (read hit path)
  int acquire_pct;    ///< record-lock acquire
  int file_lock_pct;  ///< file-granularity acquire
  // remainder: ReleaseAll (commit)
  int txns;
  int files;
  int keys_per_file;
};

constexpr WorkloadSpec kReadHeavy = {"read-heavy", 64, 31, 1, 48, 8, 768};
constexpr WorkloadSpec kWriteHeavy = {"write-heavy", 25, 55, 2, 32, 8, 512};
constexpr WorkloadSpec kHotFile = {"hot-file", 50, 38, 6, 24, 1, 256};

/// Shared string tables: both engines index into the same pre-built names,
/// as both pre- and post-PR servers held decoded request strings in hand.
struct StringTables {
  std::vector<std::string> files;
  std::vector<std::string> keys;
};

StringTables MakeTables(const WorkloadSpec& spec) {
  StringTables t;
  for (int f = 0; f < spec.files; ++f) t.files.push_back("f" + std::to_string(f));
  for (int k = 0; k < spec.keys_per_file; ++k) {
    t.keys.push_back("key" + std::to_string(k));
  }
  return t;
}

std::vector<DataPathOp> MakeStream(const WorkloadSpec& spec,
                                   const StringTables& tables, uint64_t seed,
                                   int ops) {
  Random rng(seed);
  std::vector<DataPathOp> stream;
  stream.reserve(static_cast<size_t>(ops));
  for (int i = 0; i < ops; ++i) {
    DataPathOp op;
    op.txn = 1 + static_cast<uint32_t>(rng.Uniform(spec.txns));
    op.file = static_cast<uint32_t>(rng.Uniform(spec.files));
    op.key = static_cast<uint32_t>(rng.Uniform(spec.keys_per_file));
    const uint64_t dice = rng.Uniform(100);
    if (dice < static_cast<uint64_t>(spec.probe_pct)) {
      op.kind = DataPathOp::kCacheProbe;
    } else if (dice <
               static_cast<uint64_t>(spec.probe_pct + spec.acquire_pct)) {
      op.kind = DataPathOp::kLockAcquire;
      op.lock_key = LockKey{tables.files[op.file], ToBytes(tables.keys[op.key])};
    } else if (dice < static_cast<uint64_t>(spec.probe_pct + spec.acquire_pct +
                                            spec.file_lock_pct)) {
      op.kind = DataPathOp::kLockAcquire;
      op.lock_key = LockKey{tables.files[op.file], {}};
    } else {
      op.kind = DataPathOp::kReleaseAll;
    }
    stream.push_back(std::move(op));
  }
  return stream;
}

/// Replays the stream on the production engines. Returns a checksum so the
/// optimizer cannot drop the work.
int64_t ReplayNew(const StringTables& tables,
                  const std::vector<DataPathOp>& stream) {
  LockManager lm;
  InternedCacheShape cache;
  std::vector<uint32_t> fids;
  for (const auto& f : tables.files) fids.push_back(cache.Intern(f));
  for (uint32_t fid : fids) {
    for (const auto& k : tables.keys) cache.Insert(fid, k);
  }
  int64_t acc = 0;
  for (const auto& op : stream) {
    switch (op.kind) {
      case DataPathOp::kCacheProbe:
        acc += cache.Probe(fids[op.file], tables.keys[op.key]) ? 1 : 0;
        break;
      case DataPathOp::kLockAcquire:
        acc += lm.Acquire(T(op.txn), op.lock_key) ==
                       LockManager::AcquireResult::kGranted
                   ? 1
                   : 0;
        break;
      case DataPathOp::kReleaseAll:
        acc += static_cast<int64_t>(lm.ReleaseAll(T(op.txn)).size());
        break;
    }
  }
  return acc;
}

/// Replays the stream on the pre-PR shapes.
int64_t ReplayReference(const StringTables& tables,
                        const std::vector<DataPathOp>& stream) {
  ReferenceLockManager lm;
  LegacyCacheShape cache;
  for (const auto& f : tables.files) {
    for (const auto& k : tables.keys) cache.Insert(f, k);
  }
  int64_t acc = 0;
  for (const auto& op : stream) {
    switch (op.kind) {
      case DataPathOp::kCacheProbe:
        acc += cache.Probe(tables.files[op.file], tables.keys[op.key]) ? 1 : 0;
        break;
      case DataPathOp::kLockAcquire:
        acc += lm.Acquire(T(op.txn), op.lock_key) ==
                       ReferenceLockManager::AcquireResult::kGranted
                   ? 1
                   : 0;
        break;
      case DataPathOp::kReleaseAll:
        acc += static_cast<int64_t>(lm.ReleaseAll(T(op.txn)).size());
        break;
    }
  }
  return acc;
}

/// Best-of-`rounds` wall-clock ops/s (best-of damps scheduler noise; CI
/// thresholds ride on the ratio, which is far above the floor).
double OpsPerSec(const std::function<int64_t()>& run, int64_t ops,
                 int rounds = 3) {
  double best = 0;
  for (int r = 0; r < rounds; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    int64_t acc = run();
    benchmark::DoNotOptimize(acc);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0).count();
    if (secs > 0) best = std::max(best, static_cast<double>(ops) / secs);
  }
  return best;
}

void TableEngineAB() {
  Header("E8.a engine ops/s — new data path vs pre-PR shapes (wall clock)");
  printf("%12s %8s %14s %14s %9s\n", "workload", "ops", "new ops/s",
         "pre-PR ops/s", "speedup");
  constexpr int kOps = 300000;
  for (const WorkloadSpec& spec : {kReadHeavy, kWriteHeavy, kHotFile}) {
    StringTables tables = MakeTables(spec);
    std::vector<DataPathOp> stream = MakeStream(spec, tables, 801, kOps);
    double new_ops =
        OpsPerSec([&] { return ReplayNew(tables, stream); }, kOps);
    double ref_ops =
        OpsPerSec([&] { return ReplayReference(tables, stream); }, kOps);
    // Same stream, both engines: the diff test proves behavior identical, so
    // verify the checksums agree here too (free end-to-end cross-check).
    if (ReplayNew(tables, stream) != ReplayReference(tables, stream)) {
      printf("!! %s: engines disagree on the replay checksum\n", spec.name);
    }
    double speedup = ref_ops > 0 ? new_ops / ref_ops : 0;
    printf("%12s %8d %14.0f %14.0f %8.2fx\n", spec.name, kOps, new_ops,
           ref_ops, speedup);
    std::string prefix = "e8." + std::string(spec.name);
    for (auto& c : prefix) {
      if (c == '-') c = '_';
    }
    ReportValue(prefix + ".new_ops_per_sec", new_ops);
    ReportValue(prefix + ".ref_ops_per_sec", ref_ops);
    ReportValue(prefix + ".speedup", speedup);
  }
  printf("(pre-PR = map-scan lock table + \"file\\0key\" string-alloc cache\n"
         " probes; both sides replay the identical operation stream)\n");
}

// ---------------------------------------------------------------------------
// E8.b — mirror read-either scheduling (simulated time)
// ---------------------------------------------------------------------------

/// A single-node DISCPROCESS rig whose volume is pre-seeded with records and
/// flushed, so reads are physical when the cache is sized to miss.
struct ReadRig {
  static constexpr int kRecords = 64;

  ReadRig(size_t cache_capacity, bool overlap, bool single_drive)
      : sim(11), cluster(&sim), volume("$DATA1", CacheCfg(cache_capacity)) {
    node = cluster.AddNode(1);
    EXPECT_OK(volume.CreateFile("acct",
                                storage::FileOrganization::kKeySequenced));
    for (int i = 0; i < kRecords; ++i) {
      volume.Mutate("acct", storage::MutationOp::kInsert, Slice(Key(i)),
                    Slice("balance"));
    }
    volume.Flush();
    if (single_drive) volume.FailDrive(1);
    DiscProcessConfig dcfg;
    dcfg.volume = &volume;
    dcfg.overlap_mirror_reads = overlap;
    disc = os::SpawnPair<DiscProcess>(node, "$DATA1", 0, 1, dcfg);
    client = node->Spawn<TestClient>(2);
    sim.Run();
  }

  static storage::VolumeConfig CacheCfg(size_t capacity) {
    storage::VolumeConfig cfg;
    cfg.cache_capacity = capacity;
    return cfg;
  }

  static std::string Key(int i) { return "r" + std::to_string(i); }

  static void EXPECT_OK(const Status& s) {
    if (!s.ok()) printf("!! rig setup: %s\n", s.ToString().c_str());
  }

  /// Issues the reads pipelined, runs to quiescence, returns the makespan.
  SimDuration RunReads(const std::vector<int>& key_indices) {
    SimTime start = sim.Now();
    std::vector<TestClient::Outcome*> outcomes;
    os::CallOptions opt;
    opt.timeout = Seconds(600);
    for (int idx : key_indices) {
      DiscRequest rd;
      rd.file = "acct";
      rd.key = ToBytes(Key(idx));
      outcomes.push_back(client->CallRaw(net::Address(1, "$DATA1"), kDiscRead,
                                         rd.Encode(), 0, opt));
    }
    sim.Run();
    for (auto* r : outcomes) {
      if (!r->done || !r->status.ok()) {
        printf("!! read failed: %s\n", r->status.ToString().c_str());
        break;
      }
    }
    return sim.Now() - start;
  }

  sim::Simulation sim;
  os::Cluster cluster;
  os::Node* node;
  storage::Volume volume;
  os::PairHandles<DiscProcess> disc;
  TestClient* client;
};

void TableMirrorScheduling() {
  Header("E8.b mirror read-either scheduling (128 pipelined physical reads)");
  std::vector<int> keys;
  for (int i = 0; i < 128; ++i) keys.push_back(i % ReadRig::kRecords);

  // Cache capacity 1: every read of the cycling key sequence is physical.
  ReadRig two_drives(1, /*overlap=*/true, /*single_drive=*/false);
  ReadRig one_drive(1, /*overlap=*/true, /*single_drive=*/true);
  ReadRig legacy(1, /*overlap=*/false, /*single_drive=*/false);

  double ms_two = static_cast<double>(two_drives.RunReads(keys)) / 1e3;
  double ms_one = static_cast<double>(one_drive.RunReads(keys)) / 1e3;
  double ms_legacy = static_cast<double>(legacy.RunReads(keys)) / 1e3;
  double overlap_factor = ms_two > 0 ? ms_one / ms_two : 0;

  printf("%28s %14s\n", "configuration", "makespan(ms)");
  printf("%28s %14.1f\n", "overlap on, both drives", ms_two);
  printf("%28s %14.1f\n", "overlap on, mirror failed", ms_one);
  printf("%28s %14.1f\n", "legacy flat charging", ms_legacy);
  printf("mirror read overlap factor (1-drive / 2-drive makespan): %.2fx\n",
         overlap_factor);
  printf("reads per drive (2-drive rig): drive0=%lld drive1=%lld\n",
         static_cast<long long>(two_drives.volume.drive_reads(0)),
         static_cast<long long>(two_drives.volume.drive_reads(1)));
  printf("(legacy charges a flat per-op latency — load-independent, so its\n"
         " makespan reflects infinite disc parallelism, not a faster disc)\n");

  ReportValue("e8.mirror.makespan_two_drives_ms", ms_two);
  ReportValue("e8.mirror.makespan_one_drive_ms", ms_one);
  ReportValue("e8.mirror.makespan_legacy_ms", ms_legacy);
  ReportValue("e8.mirror.overlap_factor", overlap_factor);
  ReportValue("e8.mirror.drive0_reads",
              static_cast<double>(two_drives.volume.drive_reads(0)));
  ReportValue("e8.mirror.drive1_reads",
              static_cast<double>(two_drives.volume.drive_reads(1)));
  ReportSimStats("e8sim_mirror", two_drives.sim.GetStats());
}

void TableCacheHitRate() {
  Header("E8.c volume cache hit rate (skewed read-heavy, cache 32 of 64)");
  ReadRig rig(32, /*overlap=*/false, /*single_drive=*/false);
  Random rng(97);
  std::vector<int> keys;
  for (int i = 0; i < 1500; ++i) {
    keys.push_back(static_cast<int>(rng.Skewed(ReadRig::kRecords, 0.9)));
  }
  rig.RunReads(keys);
  const double hits = static_cast<double>(rig.volume.cache_hits());
  const double misses = static_cast<double>(rig.volume.cache_misses());
  const double rate = hits + misses > 0 ? hits / (hits + misses) : 0;
  printf("reads=%zu hits=%.0f misses=%.0f hit-rate=%.3f\n", keys.size(), hits,
         misses, rate);
  ReportValue("e8.cache.hits", hits);
  ReportValue("e8.cache.misses", misses);
  ReportValue("e8.cache.hit_rate", rate);
}

// ---------------------------------------------------------------------------
// E8.d — checkpoint coalescing (simulated time)
// ---------------------------------------------------------------------------

/// Self-contained primary/backup rig mirroring the one in
/// disc_process_test.cc, sized for a message-count sweep.
struct CoalesceRig {
  explicit CoalesceRig(SimDuration window)
      : sim(7), cluster(&sim), volume("$DATA9") {
    node = cluster.AddNode(1);
    ReadRig::EXPECT_OK(volume.CreateFile(
        "acct", storage::FileOrganization::kKeySequenced));
    DiscProcessConfig dcfg;
    dcfg.volume = &volume;
    dcfg.ckpt_coalesce_window = window;
    disc = os::SpawnPair<DiscProcess>(node, "$DATA9", 0, 1, dcfg);
    client = node->Spawn<TestClient>(2);
    sim.Run();
  }

  /// Runs `n` pipelined inserts under one transaction, then commits.
  void RunInserts(int n) {
    std::vector<TestClient::Outcome*> outcomes;
    os::CallOptions opt;
    opt.timeout = Seconds(600);
    for (int i = 0; i < n; ++i) {
      DiscRequest ins;
      ins.file = "acct";
      ins.key = ToBytes("k" + std::to_string(i));
      ins.record = ToBytes("v");
      outcomes.push_back(client->CallRaw(net::Address(1, "$DATA9"),
                                         kDiscInsert, ins.Encode(),
                                         Transid{1, 0, 9}.Pack(), opt));
    }
    sim.Run();
    for (auto* r : outcomes) {
      if (!r->done || !r->status.ok()) {
        printf("!! insert failed: %s\n", r->status.ToString().c_str());
        break;
      }
    }
    TxnStateChange change;
    change.transid = Transid{1, 0, 9};
    change.state = DiscTxnState::kEnded;
    client->SendRaw(net::Address(1, "$DATA9"), kDiscTxnStateChange,
                    change.Encode());
    sim.Run();
  }

  int64_t Messages() { return sim.GetStats().Counter("disc.ckpt_messages"); }
  int64_t Entries() { return sim.GetStats().Counter("disc.ckpt_entries"); }

  sim::Simulation sim;
  os::Cluster cluster;
  os::Node* node;
  storage::Volume volume;
  os::PairHandles<DiscProcess> disc;
  TestClient* client;
};

void TableCheckpointCoalescing() {
  Header("E8.d checkpoint coalescing window sweep (200 inserts + commit)");
  constexpr int kInserts = 200;
  printf("%12s %10s %10s %10s %10s\n", "window(ms)", "messages", "entries",
         "msgs/op", "entries/op");
  double msgs_window0 = 0, msgs_window5 = 0;
  int64_t entries_window0 = 0;
  for (SimDuration window : {SimDuration(0), Millis(1), Millis(5)}) {
    CoalesceRig rig(window);
    rig.RunInserts(kInserts);
    const double msgs_per_op =
        static_cast<double>(rig.Messages()) / kInserts;
    printf("%12.1f %10lld %10lld %10.2f %10.2f\n",
           static_cast<double>(window) / 1e3,
           static_cast<long long>(rig.Messages()),
           static_cast<long long>(rig.Entries()), msgs_per_op,
           static_cast<double>(rig.Entries()) / kInserts);
    if (window == 0) {
      msgs_window0 = static_cast<double>(rig.Messages());
      entries_window0 = rig.Entries();
      ReportValue("e8.ckpt.window0.messages", msgs_window0);
      ReportValue("e8.ckpt.window0.entries",
                  static_cast<double>(rig.Entries()));
      ReportValue("e8.ckpt.window0.msgs_per_op", msgs_per_op);
    } else if (window == Millis(5)) {
      msgs_window5 = static_cast<double>(rig.Messages());
      ReportValue("e8.ckpt.window5ms.messages", msgs_window5);
      ReportValue("e8.ckpt.window5ms.entries",
                  static_cast<double>(rig.Entries()));
      ReportValue("e8.ckpt.window5ms.msgs_per_op", msgs_per_op);
      if (rig.Entries() != entries_window0) {
        printf("!! entry counts differ across windows (%lld vs %lld)\n",
               static_cast<long long>(entries_window0),
               static_cast<long long>(rig.Entries()));
      }
    }
  }
  const double reduction =
      msgs_window5 > 0 ? msgs_window0 / msgs_window5 : 0;
  printf("message reduction (window 0 / window 5 ms): %.2fx\n", reduction);
  ReportValue("e8.ckpt.msg_reduction", reduction);
}

// ---------------------------------------------------------------------------
// google-benchmark micro loops (wall clock)
// ---------------------------------------------------------------------------

void BM_DataPathReadHeavy(benchmark::State& state) {
  const bool use_new = state.range(0) == 1;
  StringTables tables = MakeTables(kReadHeavy);
  std::vector<DataPathOp> stream = MakeStream(kReadHeavy, tables, 801, 50000);
  for (auto _ : state) {
    int64_t acc = use_new ? ReplayNew(tables, stream)
                          : ReplayReference(tables, stream);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
  state.SetLabel(use_new ? "new" : "pre-PR");
}
BENCHMARK(BM_DataPathReadHeavy)->Arg(1)->Arg(0);

void BM_DataPathHotFile(benchmark::State& state) {
  const bool use_new = state.range(0) == 1;
  StringTables tables = MakeTables(kHotFile);
  std::vector<DataPathOp> stream = MakeStream(kHotFile, tables, 809, 50000);
  for (auto _ : state) {
    int64_t acc = use_new ? ReplayNew(tables, stream)
                          : ReplayReference(tables, stream);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
  state.SetLabel(use_new ? "new" : "pre-PR");
}
BENCHMARK(BM_DataPathHotFile)->Arg(1)->Arg(0);

}  // namespace
}  // namespace encompass::bench

int main(int argc, char** argv) {
  encompass::bench::InitReport("e8_data_path");
  encompass::bench::ReportMeta(/*seed=*/97);
  printf("E8: data path — lock table, cache, mirror schedule, coalescing\n");
  encompass::bench::TableEngineAB();
  encompass::bench::TableMirrorScheduling();
  encompass::bench::TableCacheHitRate();
  encompass::bench::TableCheckpointCoalescing();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  encompass::bench::WriteReport();
  return 0;
}
