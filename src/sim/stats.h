// Named counters and latency histograms collected during a simulation run.
// Benchmarks and EXPERIMENTS.md rows are generated from these.
//
// Hot paths intern a metric once (RegisterCounter / RegisterHistogram) and
// then update through the returned MetricId, which indexes dense storage —
// no string hashing or map walk per event. The string-keyed calls remain
// for tests, reporting, and one-off call sites; they resolve the name on
// every call and are roughly an order of magnitude slower.

#ifndef ENCOMPASS_SIM_STATS_H_
#define ENCOMPASS_SIM_STATS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace encompass::sim {

class Stats;

/// Opaque handle to one registered metric. Handles stay valid for the
/// lifetime of the Stats object that issued them, across Clear().
class MetricId {
 public:
  MetricId() = default;
  bool valid() const { return index_ != kInvalid; }

 private:
  friend class Stats;
  explicit constexpr MetricId(uint32_t index) : index_(index) {}
  static constexpr uint32_t kInvalid = 0xffffffffu;
  uint32_t index_ = kInvalid;
};

/// Fixed-size log-bucket histogram: 64 linear sub-buckets per power-of-two
/// octave, so values below 128 are represented exactly and larger values
/// with <0.8% relative error. Min, max, mean, and count are exact; only
/// percentiles are bucket-approximate. O(1) Add, O(buckets) Percentile.
class Histogram {
 public:
  Histogram();

  void Add(int64_t v);
  size_t count() const { return count_; }
  int64_t Min() const { return count_ ? min_ : 0; }
  int64_t Max() const { return count_ ? max_ : 0; }
  int64_t Sum() const { return sum_; }
  double Mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }
  /// p in [0, 100]. Returns 0 for an empty histogram; p<=0 yields Min and
  /// p>=100 yields Max, both exact.
  int64_t Percentile(double p) const;

  void Clear();

 private:
  static constexpr int kSubBits = 6;          // 64 sub-buckets per octave
  static constexpr uint32_t kSub = 1u << kSubBits;
  // Values 0..63 land in the linear range; octaves 6..62 cover the rest of
  // the non-negative int64 domain (negatives clamp to bucket 0).
  static constexpr uint32_t kNumBuckets = kSub + (63 - kSubBits) * kSub;

  static uint32_t BucketFor(int64_t v);
  static int64_t BucketMidpoint(uint32_t b);

  std::vector<uint64_t> buckets_;  // sized kNumBuckets
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

/// Registry of counters and histograms, keyed by dotted names
/// ("tmf.commits", "disc.op_ios", ...). Components register names once
/// (typically at attach/construction time) and update via MetricId.
class Stats {
 public:
  // --- Interned fast path -------------------------------------------------

  /// Registers (or finds) a counter; idempotent per name.
  MetricId RegisterCounter(const std::string& name);
  /// Registers (or finds) a histogram; idempotent per name.
  MetricId RegisterHistogram(const std::string& name);

  // Invalid handles (a process whose metrics were never registered) are
  // ignored: the guard is one well-predicted branch on the hot path.
  void Incr(MetricId id, int64_t delta = 1) {
    if (id.valid()) counter_values_[id.index_] += delta;
  }
  void Record(MetricId id, int64_t value) {
    if (id.valid()) histogram_values_[id.index_].Add(value);
  }
  int64_t Counter(MetricId id) const {
    return id.valid() ? counter_values_[id.index_] : 0;
  }
  const Histogram& GetHistogram(MetricId id) const { return histogram_values_[id.index_]; }

  // --- String-keyed compatibility path ------------------------------------

  void Incr(const std::string& name, int64_t delta = 1) { Incr(RegisterCounter(name), delta); }
  void Record(const std::string& name, int64_t value) {
    Record(RegisterHistogram(name), value);
  }
  int64_t Counter(const std::string& name) const;
  /// Returns nullptr if no histogram with that name was ever registered.
  /// The pointer stays valid across later registrations and Clear().
  const Histogram* FindHistogram(const std::string& name) const;

  // --- Reporting ----------------------------------------------------------

  /// Snapshot of all counters with a nonzero value, name-sorted.
  std::map<std::string, int64_t> counters() const;
  /// Snapshot of all non-empty histograms, name-sorted.
  std::map<std::string, const Histogram*> histograms() const;

  /// Zeroes all values. Registrations (and outstanding MetricIds) survive.
  void Clear();

  /// Multi-line human-readable dump: all nonzero counters, then all
  /// non-empty histograms with n/min/mean/p50/p95/p99/max.
  std::string ToString() const;

 private:
  std::unordered_map<std::string, uint32_t> counter_ids_;
  std::vector<std::string> counter_names_;
  std::vector<int64_t> counter_values_;

  std::unordered_map<std::string, uint32_t> histogram_ids_;
  std::vector<std::string> histogram_names_;
  std::deque<Histogram> histogram_values_;  // deque: stable FindHistogram pointers
};

}  // namespace encompass::sim

#endif  // ENCOMPASS_SIM_STATS_H_
