// The inter-node data-communications network (the paper's EXPAND analogue):
// a graph of nodes and point-to-point links with
//   * dynamic best-path (min-hop) message routing,
//   * automatic re-routing when a line fails,
//   * an end-to-end protocol that retransmits until delivery or gives up and
//     notifies the sender (so transient glitches are invisible, partitions
//     are not), and
//   * reachability-change notification, which the OS layer turns into
//     NodeUp/NodeDown events.

#ifndef ENCOMPASS_NET_NETWORK_H_
#define ENCOMPASS_NET_NETWORK_H_

#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "net/message.h"
#include "sim/simulation.h"

namespace encompass::net {

/// Tunables for the simulated network.
struct NetworkConfig {
  SimDuration link_latency = Millis(15);   ///< one-way latency per hop
  SimDuration retry_interval = Millis(50); ///< end-to-end retransmit pacing
  int max_retries = 6;                     ///< retransmits before giving up
  double loss_probability = 0.0;           ///< per-transmission random loss
  /// Per-transaction / per-verb message accounting (PerTxnMessages /
  /// PerTagMessages). Off by default: benches turn it on to price a commit
  /// protocol's message complexity. Only cross-node messages are counted —
  /// same-node traffic never reaches the Network, which is exactly what
  /// makes a co-located acceptor vote free.
  bool track_messages = false;
};

/// Simulated wide-area network connecting Tandem nodes.
class Network {
 public:
  /// Hands an arriving message to its destination node.
  using DeliverFn = std::function<void(Message)>;
  /// observer learns that peer became (un)reachable.
  using ReachabilityFn = std::function<void(NodeId observer, NodeId peer, bool up)>;

  Network(sim::Simulation* sim, NetworkConfig config = {})
      : sim_(sim), config_(config), metrics_(sim->GetStats()) {}

  /// Registers a node and its delivery sink. Must be called before any
  /// link touching `id` is added.
  void AddNode(NodeId id, DeliverFn deliver);

  /// Adds a bidirectional link (initially up). latency <= 0 uses the default.
  void AddLink(NodeId a, NodeId b, SimDuration latency = 0);

  /// Cuts or restores a link, triggering rerouting and reachability events.
  void SetLinkUp(NodeId a, NodeId b, bool up);

  /// Cuts every link touching `id` (models total communication loss or a
  /// whole-node failure from the network's point of view).
  void IsolateNode(NodeId id);
  /// Restores every link touching `id`.
  void ReconnectNode(NodeId id);

  bool LinkUp(NodeId a, NodeId b) const;

  /// True if a path of up links exists between the nodes (a == b is true).
  bool Reachable(NodeId from, NodeId to) const;

  /// Min-hop route from -> to (inclusive of both endpoints); empty if
  /// unreachable or unknown nodes. Served from a per-source routing table
  /// stamped with the topology version; tables recompute lazily after a
  /// link or node state change (`net.route_cache_hits/misses`).
  std::vector<NodeId> Route(NodeId from, NodeId to) const;

  /// Current topology version; bumps on every link/node state change.
  /// A routing table stamped with an older version is stale.
  uint64_t topology_version() const { return topology_version_; }

  /// Sends a message toward dst.node. Delivery is asynchronous; on final
  /// failure the sender receives a kTagSendFailed notice (if it asked for a
  /// reply) and the message is counted as undeliverable.
  void Send(Message msg);

  void SetReachabilityListener(ReachabilityFn fn) { reachability_fn_ = std::move(fn); }

  const NetworkConfig& config() const { return config_; }

  /// Snapshot of the track_messages accounting: cross-node messages per
  /// packed transid (messages with no transid stamp are only in the tag
  /// totals) and per message tag. Empty when tracking is off.
  std::map<uint64_t, uint64_t> PerTxnMessages() const;
  std::map<uint32_t, uint64_t> PerTagMessages() const;

 private:
  struct LinkKey {
    NodeId a, b;  // a < b
    bool operator<(const LinkKey& o) const {
      return a != o.a ? a < o.a : b < o.b;
    }
  };
  struct Link {
    SimDuration latency;
    bool up = true;
  };

  static LinkKey Key(NodeId a, NodeId b) {
    return a < b ? LinkKey{a, b} : LinkKey{b, a};
  }

  void Transmit(Message msg, int attempt);
  void NotifyReachabilityChanges(const std::map<NodeId, std::set<NodeId>>& before);
  std::map<NodeId, std::set<NodeId>> ReachableSets() const;

  /// One source node's view of the topology: the BFS parent forest rooted at
  /// `source`, valid while `version == topology_version_`.
  struct RouteTable {
    uint64_t version = 0;
    std::map<NodeId, NodeId> parent;  ///< discovered node -> parent toward source
  };

  /// Returns the (lazily recomputed) routing table for `from`.
  const RouteTable& TableFor(NodeId from) const;

  struct Metrics {
    explicit Metrics(sim::Stats& stats);
    sim::MetricId sent, delivered, retransmits, undeliverable;
    sim::MetricId link_cut, link_restored, node_isolated, node_reconnected;
    sim::MetricId route_cache_hits, route_cache_misses;
    sim::MetricId route_hops;  // histogram
  };

  sim::Simulation* sim_;
  NetworkConfig config_;
  Metrics metrics_;
  std::map<NodeId, DeliverFn> nodes_;
  std::map<LinkKey, Link> links_;
  ReachabilityFn reachability_fn_;
  uint64_t topology_version_ = 1;
  mutable std::map<NodeId, RouteTable> route_tables_;

  /// track_messages accounting. Sends may run concurrently on node loops
  /// under the parallel engine; increments commute, so the mutex is enough
  /// to keep the totals deterministic for a given message history.
  mutable std::mutex track_mutex_;
  std::map<uint64_t, uint64_t> per_txn_msgs_;
  std::map<uint32_t, uint64_t> per_tag_msgs_;
};

}  // namespace encompass::net

#endif  // ENCOMPASS_NET_NETWORK_H_
