# Empty dependencies file for tcp_verbs_test.
# This may be replaced when dependencies are built.
