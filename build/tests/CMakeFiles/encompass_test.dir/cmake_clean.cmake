file(REMOVE_RECURSE
  "CMakeFiles/encompass_test.dir/encompass_test.cc.o"
  "CMakeFiles/encompass_test.dir/encompass_test.cc.o.d"
  "encompass_test"
  "encompass_test.pdb"
  "encompass_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encompass_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
