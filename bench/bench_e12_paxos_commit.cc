// E12 — Paxos Commit vs 2PC under fault storms. The in-doubt window is
// 2PC's blocking failure mode: a participant of a crashed home holds its
// locks until the home returns. Paxos Commit replicates the commit decision
// across a 2F+1 acceptor group so any live majority can answer in the home's
// stead. This bench prices that trade on the BENCH_e9 storm schedules:
// fewer blocked in-doubt transactions at recovery, shorter blocked-lock
// holds, against an extra acceptor round trip before the commit point.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "encompass/chaos.h"

namespace encompass::bench {
namespace {

// Same storm floor as BENCH_e9 / the PR-4 chaos campaign: three nodes,
// >= 8 faults, at least one total node crash.
app::ChaosCampaignConfig CampaignConfig(uint64_t seed, bool paxos) {
  app::ChaosCampaignConfig cfg;
  cfg.seed = seed;
  cfg.nodes = 3;
  cfg.accounts_per_node = 20;
  cfg.clients_per_node = 2;
  cfg.schedule.faults = 10;
  cfg.schedule.min_node_crashes = 2;
  cfg.schedule.w_crash = 1.5;
  // Long dead-home windows are where the protocols separate: a 2PC
  // participant stranded by the crash stays in-doubt for the whole outage,
  // while Paxos Commit resolves against the acceptor majority ~600ms in
  // (one grace tick + one escalated round). 2-4s outages give escalation
  // room to finish well before the recovery census.
  cfg.schedule.min_heal = 2'000'000;
  cfg.schedule.max_heal = 4'000'000;
  cfg.schedule.crash_recovery_pad = 4'000'000;
  // Probe dead-home windows faster than the storm heals them: under 2PC
  // every tick of an outage is a blocked retry; under Paxos Commit the
  // first post-grace tick escalates to the acceptor majority.
  cfg.indoubt_resolve_interval = Millis(250);
  if (paxos) {
    cfg.commit_protocol = tmf::CommitProtocol::kPaxos;
    cfg.commit_replication = 3;  // 2F+1, F = 1
  }
  return cfg;
}

struct ProtocolTotals {
  size_t runs = 0, survived = 0;
  size_t indoubt_at_recovery = 0;  // headline: stranded at node return
  int64_t blocked = 0;        // tmf.indoubt_blocked_on_home, summed
  int64_t via_acceptors = 0;  // paxos-only resolution path
  int64_t hold_count = 0;
  double hold_p99_ms = 0;   // worst across seeds
  double hold_max_ms = 0;   // worst across seeds
  double commit_p50_ms = 0; // worst across seeds
  double commit_p99_ms = 0; // worst across seeds
};

constexpr uint64_t kFirstSeed = 1, kLastSeed = 8;

ProtocolTotals RunSeeds(bool paxos) {
  ProtocolTotals t;
  printf("%6s %8s %8s %9s %9s %9s %10s %10s %9s %9s\n", "seed", "indoubt",
         "blocked", "via_acc", "hold_n", "hold_p99", "hold_max", "commit_p50",
         "commit_p99", "survived");
  for (uint64_t seed = kFirstSeed; seed <= kLastSeed; ++seed) {
    app::ChaosCampaignResult r =
        app::RunChaosCampaign(CampaignConfig(seed, paxos));
    const bool ok = r.quiesced && r.violations.empty() &&
                    r.balance_sum == r.expected_sum && r.leaked_locks == 0;
    ++t.runs;
    if (ok) ++t.survived;
    t.indoubt_at_recovery += r.indoubt_at_recovery;
    t.blocked += r.indoubt_blocked_on_home;
    t.via_acceptors += r.indoubt_resolved_via_acceptors;
    t.hold_count += r.indoubt_hold_count;
    t.hold_p99_ms = std::max(t.hold_p99_ms, r.indoubt_hold_p99_ms);
    t.hold_max_ms = std::max(t.hold_max_ms, r.indoubt_hold_max_ms);
    t.commit_p50_ms = std::max(t.commit_p50_ms, r.commit_latency_p50_ms);
    t.commit_p99_ms = std::max(t.commit_p99_ms, r.commit_latency_p99_ms);
    printf("%6llu %8zu %8lld %9lld %9lld %9.1f %10.1f %10.2f %9.2f %9s\n",
           static_cast<unsigned long long>(seed), r.indoubt_at_recovery,
           static_cast<long long>(r.indoubt_blocked_on_home),
           static_cast<long long>(r.indoubt_resolved_via_acceptors),
           static_cast<long long>(r.indoubt_hold_count), r.indoubt_hold_p99_ms,
           r.indoubt_hold_max_ms, r.commit_latency_p50_ms,
           r.commit_latency_p99_ms, ok ? "yes" : "NO");
  }
  return t;
}

void TableProtocolComparison() {
  Header("E12.a 2PC vs Paxos Commit across the E9 storm seeds");
  printf("two-phase commit (the paper's protocol):\n");
  ProtocolTotals two = RunSeeds(/*paxos=*/false);
  printf("\npaxos commit, 3 acceptors (F = 1):\n");
  ProtocolTotals pax = RunSeeds(/*paxos=*/true);

  printf("\nin-doubt transactions at recovery (stranded on a dead home when "
         "it returned): 2pc %zu vs paxos %zu\n",
         two.indoubt_at_recovery, pax.indoubt_at_recovery);
  printf("blocked in-doubt resolve ticks: 2pc %lld vs paxos %lld; "
         "paxos resolved %lld dispositions via acceptor majorities\n",
         static_cast<long long>(two.blocked),
         static_cast<long long>(pax.blocked),
         static_cast<long long>(pax.via_acceptors));
  printf("blocked-lock hold (worst seed): 2pc p99 %.1fms max %.1fms vs "
         "paxos p99 %.1fms max %.1fms\n",
         two.hold_p99_ms, two.hold_max_ms, pax.hold_p99_ms, pax.hold_max_ms);
  printf("commit latency at the home (worst seed): 2pc p50 %.2fms p99 %.2fms "
         "vs paxos p50 %.2fms p99 %.2fms — the acceptor round trip\n",
         two.commit_p50_ms, two.commit_p99_ms, pax.commit_p50_ms,
         pax.commit_p99_ms);

  ReportValue("runs_per_protocol", static_cast<double>(two.runs));
  ReportValue("survived_2pc", static_cast<double>(two.survived));
  ReportValue("survived_paxos", static_cast<double>(pax.survived));
  ReportValue("indoubt_at_recovery_2pc",
              static_cast<double>(two.indoubt_at_recovery));
  ReportValue("indoubt_at_recovery_paxos",
              static_cast<double>(pax.indoubt_at_recovery));
  ReportValue("indoubt_blocked_2pc", static_cast<double>(two.blocked));
  ReportValue("indoubt_blocked_paxos", static_cast<double>(pax.blocked));
  ReportValue("via_acceptors_paxos", static_cast<double>(pax.via_acceptors));
  ReportValue("hold_p99_ms_2pc", two.hold_p99_ms);
  ReportValue("hold_p99_ms_paxos", pax.hold_p99_ms);
  ReportValue("hold_max_ms_2pc", two.hold_max_ms);
  ReportValue("hold_max_ms_paxos", pax.hold_max_ms);
  ReportValue("commit_p50_ms_2pc", two.commit_p50_ms);
  ReportValue("commit_p50_ms_paxos", pax.commit_p50_ms);
  ReportValue("commit_p99_ms_2pc", two.commit_p99_ms);
  ReportValue("commit_p99_ms_paxos", pax.commit_p99_ms);
}

void TableEngineIdentity() {
  Header("E12.b same seed, same storm, every engine (both protocols)");
  const int workers[] = {0, 1, 2, 4, 8};
  int divergence = 0;
  for (int paxos = 0; paxos <= 1; ++paxos) {
    app::ChaosCampaignConfig cfg = CampaignConfig(kFirstSeed, paxos != 0);
    app::ChaosCampaignResult base = app::RunChaosCampaign(cfg);
    printf("%-10s", paxos ? "paxos" : "two-phase");
    for (int w : workers) {
      cfg.parallel_workers = w;
      app::ChaosCampaignResult r = app::RunChaosCampaign(cfg);
      const bool same = r.txns_started == base.txns_started &&
                        r.txns_committed == base.txns_committed &&
                        r.txns_aborted == base.txns_aborted &&
                        r.txns_unknown == base.txns_unknown &&
                        r.balance_sum == base.balance_sum &&
                        r.journal == base.journal;
      if (!same) ++divergence;
      printf(" w%d:%s", w, same ? "ok" : "DIVERGED");
    }
    printf("\n");
  }
  printf("(fingerprint: txn counts + balance sum + fault journal)\n");
  ReportValue("divergence", static_cast<double>(divergence));
}

void BM_PaxosChaosCampaign(benchmark::State& state) {
  uint64_t seed = 100;
  for (auto _ : state) {
    app::ChaosCampaignResult r =
        app::RunChaosCampaign(CampaignConfig(seed++, /*paxos=*/true));
    benchmark::DoNotOptimize(r.balance_sum);
    if (!r.quiesced || !r.violations.empty()) {
      state.SkipWithError("campaign failed");
      break;
    }
  }
}
BENCHMARK(BM_PaxosChaosCampaign)->Iterations(2)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace encompass::bench

int main(int argc, char** argv) {
  encompass::bench::InitReport("e12_paxos_commit");
  encompass::bench::ReportMeta(/*seed=*/1);
  printf("E12: Paxos Commit vs 2PC — pricing the in-doubt window\n");
  encompass::bench::TableProtocolComparison();
  encompass::bench::TableEngineIdentity();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  encompass::bench::WriteReport();
  return 0;
}
