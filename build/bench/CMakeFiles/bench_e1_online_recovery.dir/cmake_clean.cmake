file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_online_recovery.dir/bench_e1_online_recovery.cc.o"
  "CMakeFiles/bench_e1_online_recovery.dir/bench_e1_online_recovery.cc.o.d"
  "bench_e1_online_recovery"
  "bench_e1_online_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_online_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
