file(REMOVE_RECURSE
  "CMakeFiles/volume_property_test.dir/volume_property_test.cc.o"
  "CMakeFiles/volume_property_test.dir/volume_property_test.cc.o.d"
  "volume_property_test"
  "volume_property_test.pdb"
  "volume_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volume_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
