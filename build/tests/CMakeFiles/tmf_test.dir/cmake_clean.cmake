file(REMOVE_RECURSE
  "CMakeFiles/tmf_test.dir/tmf_test.cc.o"
  "CMakeFiles/tmf_test.dir/tmf_test.cc.o.d"
  "tmf_test"
  "tmf_test.pdb"
  "tmf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
