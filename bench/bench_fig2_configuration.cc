// F2 — Figure 2 (a typical ENCOMPASS configuration). Reproduces the shape
// of the configuration's scaling story: throughput grows with processors,
// terminals, and dynamically created servers; the server class expands
// under load and contracts when idle.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace encompass::bench {
namespace {

void TableThroughputVsCpus() {
  Header("F2.a throughput vs processors (24 terminals, CPU-bound workload)");
  printf("%6s %12s %12s %12s\n", "cpus", "txn/s(sim)", "committed", "failed");
  for (int cpus : {2, 4, 8, 16}) {
    // A heavy per-message CPU cost makes the processors the bottleneck, as
    // on real hardware of the era.
    BankRig rig = MakeBankRig(/*seed=*/11, cpus, /*accounts=*/200,
                              /*terminals=*/24, /*iterations=*/30,
                              /*skew=*/0.0, Millis(500), 100,
                              /*cpu_service=*/Micros(400));
    SimTime makespan = RunUntilProgramsDone(rig, 24 * 30);
    auto* tcp = rig.Primary();
    printf("%6d %12.1f %12llu %12llu\n", cpus,
           TxnPerSec(tcp->transactions_committed(), makespan),
           (unsigned long long)tcp->transactions_committed(),
           (unsigned long long)tcp->programs_failed());
  }
}

void TableThroughputVsTerminals() {
  Header("F2.b throughput vs terminals (8 cpus, 200 accounts)");
  printf("%10s %12s %14s %16s\n", "terminals", "txn/s(sim)", "peak servers",
         "restarts");
  for (int terminals : {1, 2, 4, 8, 16, 32}) {
    BankRig rig = MakeBankRig(/*seed=*/13, /*cpus=*/8, /*accounts=*/200,
                              terminals, /*iterations=*/30);
    SimTime makespan =
        RunUntilProgramsDone(rig, static_cast<uint64_t>(terminals) * 30);
    auto* tcp = rig.Primary();
    printf("%10d %12.1f %14lld %16llu\n", terminals,
           TxnPerSec(tcp->transactions_committed(), makespan),
           (long long)rig.sim->GetStats().Counter("serverclass.spawned"),
           (unsigned long long)tcp->transactions_restarted());
  }
}

void TableDynamicServerClass() {
  Header("F2.c dynamic server creation/deletion under a load burst");
  BankRig rig = MakeBankRig(/*seed=*/17, /*cpus=*/8, /*accounts=*/200,
                            /*terminals=*/24, /*iterations=*/20);
  rig.sim->RunFor(Seconds(600));
  rig.sim->Run();
  auto& stats = rig.sim->GetStats();
  printf("servers created under load : %lld\n",
         (long long)stats.Counter("serverclass.spawned"));
  // Idle period: the class contracts back to its floor.
  rig.sim->RunFor(Seconds(30));
  printf("servers deleted when idle  : %lld\n",
         (long long)stats.Counter("serverclass.reaped"));
  const auto* depth = stats.FindHistogram("serverclass.queue_depth");
  if (depth != nullptr) {
    printf("request queue depth        : p50=%lld p99=%lld max=%lld\n",
           (long long)depth->Percentile(50), (long long)depth->Percentile(99),
           (long long)depth->Max());
  }
}

void BM_TransferTransaction(benchmark::State& state) {
  const int terminals = static_cast<int>(state.range(0));
  uint64_t committed = 0;
  SimTime sim_elapsed = 0;
  for (auto _ : state) {
    BankRig rig = MakeBankRig(/*seed=*/19, /*cpus=*/8, /*accounts=*/200,
                              terminals, /*iterations=*/10);
    rig.sim->RunFor(Seconds(600));
    rig.sim->Run();
    committed += rig.Primary()->transactions_committed();
    sim_elapsed += rig.sim->Now();
  }
  state.counters["sim_txn_per_s"] =
      benchmark::Counter(TxnPerSec(committed, sim_elapsed));
  state.SetItemsProcessed(static_cast<int64_t>(committed));
}
BENCHMARK(BM_TransferTransaction)->Arg(1)->Arg(8)->Arg(32);

}  // namespace
}  // namespace encompass::bench

int main(int argc, char** argv) {
  encompass::bench::InitReport("fig2_configuration");
  encompass::bench::ReportMeta(/*seed=*/11);
  printf("F2: Figure 2 — ENCOMPASS configuration scaling\n");
  encompass::bench::TableThroughputVsCpus();
  encompass::bench::TableThroughputVsTerminals();
  encompass::bench::TableDynamicServerClass();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  encompass::bench::WriteReport();
  return 0;
}
