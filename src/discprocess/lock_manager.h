// LockManager: the per-volume concurrency-control state. "Each DISCPROCESS
// maintains the locking control information for those records and files
// resident on its volume only" — concurrency control is decentralized; no
// central lock manager exists. Two granularities (file and record), all
// locks exclusive, FIFO waiting, deadlock resolution by timeout (the
// timeout itself lives in the DISCPROCESS, which cancels the wait).
//
// Internally the table is organized for O(1) grant checks: file names are
// interned to dense ids, each file owns a hash table of record units plus a
// maintained count of record units held per owner, so "does any OTHER
// transaction hold a record of this file" is a subtraction instead of a map
// scan. Waiter promotion iterates only units that actually have waiters, in
// the same deterministic order (file-level unit first, then record keys in
// byte order) as the original full-scan implementation, so grant order —
// and therefore every same-seed simulation trace — is unchanged.

#ifndef ENCOMPASS_DISCPROCESS_LOCK_MANAGER_H_
#define ENCOMPASS_DISCPROCESS_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/slice.h"
#include "common/transid.h"

namespace encompass::discprocess {

/// Identity of one lockable unit: a whole file, or one record (by primary
/// key) within a file.
struct LockKey {
  std::string file;
  Bytes record;  ///< empty = file-level lock

  bool file_level() const { return record.empty(); }
  std::string ToString() const;

  friend bool operator<(const LockKey& a, const LockKey& b) {
    if (a.file != b.file) return a.file < b.file;
    return Slice(a.record) < Slice(b.record);
  }
  friend bool operator==(const LockKey& a, const LockKey& b) {
    return a.file == b.file && Slice(a.record) == Slice(b.record);
  }
};

/// A lock grant handed out when a release unblocks a waiter.
struct LockGrant {
  Transid owner;
  LockKey key;
};

/// Exclusive two-granularity lock table for one volume.
class LockManager {
 public:
  enum class AcquireResult {
    kGranted,  ///< caller now holds the lock (or already did)
    kQueued,   ///< caller waits in FIFO order
  };

  /// Requests the lock. A file-level lock conflicts with every record lock
  /// in that file held by another transaction, and vice versa. Re-acquiring
  /// a held lock (or a record covered by the caller's file lock) grants.
  AcquireResult Acquire(const Transid& owner, const LockKey& key);

  /// Grants unconditionally — used by a process-pair backup to mirror the
  /// primary's grants from checkpoints. Never queues.
  void ForceGrant(const Transid& owner, const LockKey& key);

  /// Releases every lock held by `owner` (commit phase two, or abort
  /// completion) and removes it from all wait queues. Returns the waiters
  /// that acquired locks as a result, in grant order.
  std::vector<LockGrant> ReleaseAll(const Transid& owner);

  /// Removes `owner` from the wait queue of `key` (lock-wait timeout).
  /// Returns true if a waiting entry was removed.
  bool CancelWait(const Transid& owner, const LockKey& key);

  /// True if `owner` holds `key` itself or a covering file lock.
  bool Holds(const Transid& owner, const LockKey& key) const;

  size_t held_count() const { return held_count_; }
  size_t waiter_count() const { return waiter_count_; }
  /// Transactions currently holding at least one lock.
  std::vector<Transid> Holders() const;
  /// Every held (owner, key) pair, ordered by (file, record) — used for
  /// full-state checkpoints when a fresh backup attaches.
  std::vector<LockGrant> AllHeld() const;

 private:
  struct Unit {
    Transid holder;                // !valid() = free
    std::deque<Transid> waiters;   // FIFO
  };

  struct BytesHash {
    size_t operator()(const Bytes& b) const {
      return std::hash<std::string_view>{}(std::string_view(
          reinterpret_cast<const char*>(b.data()), b.size()));
    }
  };

  /// All lock state of one file. Record units live in a hash table; the set
  /// of record keys with a nonempty wait queue is kept sorted so promotion
  /// scans only contended units, in deterministic byte order.
  struct FileTable {
    std::string name;
    Unit file_unit;
    std::unordered_map<Bytes, Unit, BytesHash> records;
    size_t held_records = 0;  ///< record units with a valid holder
    /// packed owner -> record units of this file it holds (absent = 0).
    std::unordered_map<uint64_t, size_t> held_by;
    std::set<Bytes> waiting_records;  ///< record keys with waiters, sorted
  };

  FileTable& InternFile(const std::string& file);
  FileTable* FindFile(const std::string& file);
  const FileTable* FindFile(const std::string& file) const;

  /// Record units of `ft` held by transactions other than `owner`. O(1).
  size_t RecordsHeldByOther(const FileTable& ft, const Transid& owner) const;

  /// Promotes waiters of `ft` whose grant conditions now hold; appends
  /// grants in the same order as a sorted full scan would produce.
  void PromoteWaiters(FileTable& ft, std::vector<LockGrant>* grants);

  void AddWait(const Transid& owner, const LockKey& key);
  void RemoveWait(const Transid& owner, const LockKey& key);

  std::unordered_map<std::string, uint32_t> file_ids_;
  std::vector<FileTable> files_;
  /// Keys held per owner, in deterministic (file, record) order — drives
  /// release and promotion ordering. May contain stale entries for units
  /// reassigned by ForceGrant; ReleaseAll checks the live holder.
  std::map<Transid, std::set<LockKey>> owned_;
  /// Queues each owner waits in (for O(queues-of-owner) release scrubbing).
  std::unordered_map<uint64_t, std::vector<LockKey>> waits_;
  size_t held_count_ = 0;
  size_t waiter_count_ = 0;
};

}  // namespace encompass::discprocess

#endif  // ENCOMPASS_DISCPROCESS_LOCK_MANAGER_H_
