// Unit tests for the query/report layer: predicate semantics (numeric vs
// lexicographic comparison, every operator), aggregates, and limits.

#include <gtest/gtest.h>

#include "encompass/query.h"

namespace encompass::app {
namespace {

storage::Record Rec(const std::string& field, const std::string& value) {
  storage::Record r;
  r.Set(field, value);
  return r;
}

TEST(PredicateTest, NumericComparisonWhenBothSidesParse) {
  EXPECT_TRUE(Matches(Rec("qty", "9"), {"qty", CompareOp::kLt, "10"}));
  EXPECT_FALSE(Matches(Rec("qty", "9"), {"qty", CompareOp::kGt, "10"}));
  EXPECT_TRUE(Matches(Rec("qty", "10.5"), {"qty", CompareOp::kGt, "10"}));
  EXPECT_TRUE(Matches(Rec("qty", "10"), {"qty", CompareOp::kGe, "10"}));
  EXPECT_TRUE(Matches(Rec("qty", "10"), {"qty", CompareOp::kLe, "10"}));
  EXPECT_TRUE(Matches(Rec("qty", "-5"), {"qty", CompareOp::kLt, "0"}));
}

TEST(PredicateTest, LexicographicWhenNotNumeric) {
  // Lexicographically "9" > "10"; numerically the opposite. Mixed input
  // falls back to string compare.
  EXPECT_TRUE(Matches(Rec("name", "apple"), {"name", CompareOp::kLt, "banana"}));
  EXPECT_TRUE(Matches(Rec("name", "9x"), {"name", CompareOp::kGt, "10x"}));
  EXPECT_TRUE(Matches(Rec("name", "abc"), {"name", CompareOp::kEq, "abc"}));
  EXPECT_TRUE(Matches(Rec("name", "abc"), {"name", CompareOp::kNe, "abd"}));
}

TEST(PredicateTest, ContainsOperator) {
  EXPECT_TRUE(Matches(Rec("desc", "stainless bolt"),
                      {"desc", CompareOp::kContains, "bolt"}));
  EXPECT_FALSE(Matches(Rec("desc", "stainless bolt"),
                       {"desc", CompareOp::kContains, "nut"}));
  EXPECT_TRUE(Matches(Rec("desc", "x"), {"desc", CompareOp::kContains, ""}));
}

TEST(PredicateTest, MissingFieldComparesAsEmpty) {
  EXPECT_TRUE(Matches(Rec("other", "x"), {"missing", CompareOp::kEq, ""}));
  EXPECT_FALSE(Matches(Rec("other", "x"), {"missing", CompareOp::kEq, "v"}));
  EXPECT_TRUE(Matches(Rec("other", "x"), {"missing", CompareOp::kLt, "a"}));
}

TEST(PredicateTest, AllOperatorsOnEqualValues) {
  auto rec = Rec("f", "5");
  EXPECT_TRUE(Matches(rec, {"f", CompareOp::kEq, "5"}));
  EXPECT_FALSE(Matches(rec, {"f", CompareOp::kNe, "5"}));
  EXPECT_FALSE(Matches(rec, {"f", CompareOp::kLt, "5"}));
  EXPECT_TRUE(Matches(rec, {"f", CompareOp::kLe, "5"}));
  EXPECT_FALSE(Matches(rec, {"f", CompareOp::kGt, "5"}));
  EXPECT_TRUE(Matches(rec, {"f", CompareOp::kGe, "5"}));
}

}  // namespace
}  // namespace encompass::app
