// BPlusTree: the core structure of key-sequenced files — an order-preserving
// map from byte-string keys to byte-string values with block-size-bounded
// nodes, a linked leaf level for range scans, and prefix-compressed
// serialization (used for archiving and for on-disc space accounting).
//
// Deletion does not rebalance (underfull nodes are tolerated, as in many
// production trees); an empty internal root collapses.

#ifndef ENCOMPASS_STORAGE_BPLUS_TREE_H_
#define ENCOMPASS_STORAGE_BPLUS_TREE_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/slice.h"

namespace encompass::storage {

/// A key/value entry returned from lookups and scans.
struct TreeEntry {
  Bytes key;
  Bytes value;
};

/// Byte-ordered B+tree with size-bounded nodes.
class BPlusTree {
 public:
  /// block_size bounds the serialized size of a node before it splits.
  explicit BPlusTree(size_t block_size = 4096);
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;

  /// Inserts a new key. AlreadyExists if present.
  Status Insert(const Slice& key, const Slice& value);
  /// Replaces the value of an existing key. NotFound if absent.
  Status Update(const Slice& key, const Slice& value);
  /// Inserts or replaces.
  Status Upsert(const Slice& key, const Slice& value);
  /// Removes a key. NotFound if absent.
  Status Delete(const Slice& key);

  /// Point lookup.
  Result<Bytes> Get(const Slice& key) const;
  bool Contains(const Slice& key) const { return Get(key).ok(); }

  /// First entry with key >= target; EndOfFile when past the end.
  Result<TreeEntry> Seek(const Slice& key) const;
  /// First entry with key > target; EndOfFile when past the end.
  Result<TreeEntry> SeekAfter(const Slice& key) const;
  /// Smallest entry; EndOfFile when empty.
  Result<TreeEntry> First() const;

  /// In-order visit of every entry.
  void ForEach(const std::function<void(const Slice&, const Slice&)>& fn) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Number of levels (1 for a lone leaf). Drives the disc-access model.
  int height() const { return height_; }
  /// Total node count (leaf + internal).
  size_t node_count() const { return node_count_; }

  /// Serializes all entries with front (prefix) key compression.
  void SerializeTo(Bytes* out) const;
  /// Sum of raw key+value bytes (for compression-ratio accounting).
  size_t UncompressedDataSize() const;
  /// Rebuilds a tree from SerializeTo output, consuming exactly the bytes
  /// the encoding occupies from *in.
  static Result<std::unique_ptr<BPlusTree>> Deserialize(Slice* in,
                                                        size_t block_size);

 private:
  struct Node;
  struct SplitResult;

  size_t EntrySize(const Slice& key, const Slice& value) const;
  Node* FindLeaf(const Slice& key) const;
  bool InsertRec(Node* node, const Slice& key, const Slice& value, bool allow_replace,
                 bool* replaced, std::unique_ptr<SplitResult>* split);
  void SplitNode(Node* node, std::unique_ptr<SplitResult>* split);

  size_t block_size_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  int height_ = 1;
  size_t node_count_ = 1;
};

}  // namespace encompass::storage

#endif  // ENCOMPASS_STORAGE_BPLUS_TREE_H_
