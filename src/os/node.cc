#include "os/node.h"

#include <cassert>

#include "common/logging.h"
#include "os/cluster.h"

namespace encompass::os {

Node::Metrics::Metrics(sim::Stats& stats)
    : cpu_failures(stats.RegisterCounter("os.cpu_failures")),
      cpu_reloads(stats.RegisterCounter("os.cpu_reloads")),
      bus_failed(stats.RegisterCounter("os.bus_failed")),
      bus_restored(stats.RegisterCounter("os.bus_restored")),
      bus_undeliverable(stats.RegisterCounter("os.bus_undeliverable")),
      bus_x_msgs(stats.RegisterCounter("os.bus_x_msgs")),
      bus_y_msgs(stats.RegisterCounter("os.bus_y_msgs")),
      deliver_no_process(stats.RegisterCounter("os.deliver_no_process")) {}

Node::Node(Cluster* cluster, net::NodeId id, NodeConfig config)
    : cluster_(cluster),
      id_(id),
      config_(config),
      metrics_(cluster->sim()->GetStats()) {
  assert(config_.num_cpus >= 1 && config_.num_cpus <= 16);
  cpus_.resize(config_.num_cpus);
  cpu_free_.resize(config_.num_cpus, 0);
}

Node::~Node() = default;

sim::Simulation* Node::sim() const { return cluster_->sim(); }

void Node::AdoptProcess(int cpu, std::unique_ptr<Process> proc) {
  net::Pid pid = next_pid_++;
  Process* raw = proc.get();
  raw->Attach(this, cpu, pid);
  cpus_[cpu].processes.emplace(pid, std::move(proc));
  pid_to_cpu_[pid] = cpu;
  // OnStart runs as a scheduled event so the subclass constructor has fully
  // completed and spawn order does not leak into event order.
  net::Pid captured = pid;
  sim()->AfterOn(id_, Micros(1), [this, captured]() {
    Process* p = Find(captured);
    if (p != nullptr) p->OnStart();
  });
}

void Node::Kill(net::Pid pid) {
  auto it = pid_to_cpu_.find(pid);
  if (it == pid_to_cpu_.end()) return;
  auto& slot = cpus_[it->second];
  slot.processes.erase(pid);
  pid_to_cpu_.erase(it);
  for (auto nit = names_.begin(); nit != names_.end();) {
    if (nit->second == pid) nit = names_.erase(nit);
    else ++nit;
  }
}

Process* Node::Find(net::Pid pid) const {
  auto it = pid_to_cpu_.find(pid);
  if (it == pid_to_cpu_.end()) return nullptr;
  const auto& procs = cpus_[it->second].processes;
  auto pit = procs.find(pid);
  return pit == procs.end() ? nullptr : pit->second.get();
}

std::vector<net::Pid> Node::LivePids() const {
  std::vector<net::Pid> pids;
  pids.reserve(pid_to_cpu_.size());
  for (const auto& [pid, cpu] : pid_to_cpu_) {
    (void)cpu;
    pids.push_back(pid);
  }
  return pids;
}

void Node::RegisterName(const std::string& name, net::Pid pid) {
  names_[name] = pid;
}

void Node::UnregisterName(const std::string& name) { names_.erase(name); }

net::Pid Node::LookupName(const std::string& name) const {
  auto it = names_.find(name);
  return it == names_.end() ? 0 : it->second;
}

bool Node::CpuUp(int cpu) const {
  return cpu >= 0 && cpu < static_cast<int>(cpus_.size()) && cpus_[cpu].up;
}

int Node::AliveCpuCount() const {
  int n = 0;
  for (const auto& slot : cpus_) n += slot.up ? 1 : 0;
  return n;
}

void Node::FailCpu(int cpu) {
  if (!CpuUp(cpu)) return;
  auto& slot = cpus_[cpu];
  slot.up = false;
  // Processes on the failed CPU vanish immediately (memory is gone).
  for (const auto& [pid, proc] : slot.processes) {
    (void)proc;
    pid_to_cpu_.erase(pid);
    for (auto nit = names_.begin(); nit != names_.end();) {
      if (nit->second == pid) nit = names_.erase(nit);
      else ++nit;
    }
  }
  slot.processes.clear();
  sim()->GetStats().Incr(metrics_.cpu_failures);
  // Survivors learn about it after the regroup (failure-detection) delay.
  sim()->AfterOn(id_, config_.regroup_delay, [this, cpu]() {
    Broadcast([cpu](Process* p) { p->OnCpuDown(cpu); });
  });
}

void Node::ReloadCpu(int cpu) {
  if (cpu < 0 || cpu >= static_cast<int>(cpus_.size()) || cpus_[cpu].up) return;
  cpus_[cpu].up = true;
  sim()->GetStats().Incr(metrics_.cpu_reloads);
  sim()->AfterOn(id_, config_.regroup_delay, [this, cpu]() {
    Broadcast([cpu](Process* p) { p->OnCpuUp(cpu); });
  });
}

void Node::SetBusUp(int bus, bool up) {
  bus_up_[bus & 1] = up;
  sim()->GetStats().Incr(up ? metrics_.bus_restored : metrics_.bus_failed);
}

void Node::Broadcast(const std::function<void(Process*)>& fn) {
  // Snapshot pids first: handlers may spawn or kill processes.
  for (net::Pid pid : LivePids()) {
    Process* p = Find(pid);
    if (p != nullptr) fn(p);
  }
}

void Node::Route(net::Message msg) {
  if (msg.dst.node == id_) {
    // Intra-node: same-CPU shortcut or interprocessor bus.
    int src_cpu = pid_to_cpu_.count(msg.src.pid) ? pid_to_cpu_[msg.src.pid] : -1;
    int dst_cpu = -1;
    net::Pid dst_pid = msg.dst.by_name() ? LookupName(msg.dst.name) : msg.dst.pid;
    if (pid_to_cpu_.count(dst_pid)) dst_cpu = pid_to_cpu_[dst_pid];

    SimDuration latency;
    if (dst_cpu >= 0 && dst_cpu == src_cpu) {
      latency = config_.same_cpu_latency;
    } else {
      // Pick the first up bus (X preferred). Both down: cross-CPU messages
      // cannot be delivered — counted, and requests get a failure notice.
      if (!bus_up_[0] && !bus_up_[1]) {
        sim()->GetStats().Incr(metrics_.bus_undeliverable);
        SendFailureNotice(msg, Status::Code::kUnavailable);
        return;
      }
      sim()->GetStats().Incr(bus_up_[0] ? metrics_.bus_x_msgs : metrics_.bus_y_msgs);
      latency = config_.bus_latency;
    }
    ScheduleDelivery(std::move(msg), latency);
    return;
  }
  cluster_->network().Send(std::move(msg));
}

void Node::ScheduleDelivery(net::Message msg, SimDuration latency) {
  // Serialize handler execution on the destination CPU: the message is
  // processed when the CPU frees up, and occupies it for the service time.
  int dst_cpu = -1;
  net::Pid dst_pid = msg.dst.by_name() ? LookupName(msg.dst.name) : msg.dst.pid;
  auto it = pid_to_cpu_.find(dst_pid);
  if (it != pid_to_cpu_.end()) dst_cpu = it->second;

  SimTime arrival = sim()->Now() + latency;
  if (dst_cpu >= 0 && config_.cpu_service_time > 0) {
    SimTime start = arrival > cpu_free_[dst_cpu] ? arrival : cpu_free_[dst_cpu];
    cpu_free_[dst_cpu] = start + config_.cpu_service_time;
    arrival = start + config_.cpu_service_time;
  }
  sim()->AtOn(id_, arrival, [this, msg = std::move(msg)]() mutable {
    DeliverLocal(std::move(msg));
  });
}

void Node::DeliverLocal(net::Message msg) {
  net::Pid pid = msg.dst.by_name() ? LookupName(msg.dst.name) : msg.dst.pid;
  Process* target = (pid != 0) ? Find(pid) : nullptr;
  if (target == nullptr) {
    sim()->GetStats().Incr(metrics_.deliver_no_process);
    SendFailureNotice(msg, Status::Code::kUnavailable);
    return;
  }
  target->DeliverToProcess(std::move(msg));
}

void Node::SendFailureNotice(const net::Message& request, Status::Code code) {
  if (request.request_id == 0 || request.is_reply()) return;
  net::Message fail;
  fail.src = net::ProcessId{id_, 0};
  fail.dst = net::Address(request.src);
  fail.tag = net::kTagSendFailed;
  fail.reply_to = request.request_id;
  fail.status = code;
  if (request.src.node == id_) {
    sim()->AfterOn(id_, config_.same_cpu_latency,
                   [this, fail = std::move(fail)]() mutable {
                     DeliverLocal(std::move(fail));
                   });
  } else {
    cluster_->network().Send(std::move(fail));
  }
}

void Node::PeerReachability(net::NodeId peer, bool up) {
  Broadcast([peer, up](Process* p) {
    if (up) p->OnNodeUp(peer);
    else p->OnNodeDown(peer);
  });
}

}  // namespace encompass::os
