// E2 — "The implementation of the DISCPROCESS as a process-pair ...
// eliminates the necessity for the protocol termed 'Write Ahead Log' ...
// checkpoint is the functional equivalent of Write Ahead Log. ... audit
// records need not be written to disc prior to updating the data base."
//
// Measures the update-path cost of the three designs:
//   (a) TMF: checkpoint-to-backup per update (bus message), audit forced
//       once per transaction at phase 1;
//   (b) conventional WAL: log forced once at commit;
//   (c) strict write-through WAL: log forced on EVERY update (the cost the
//       checkpoint mechanism avoids).

#include <benchmark/benchmark.h>

#include "baseline/wal_engine.h"
#include "bench_util.h"

namespace encompass::bench {
namespace {

void TableUpdatePathCost() {
  Header("E2.a cost per 10-update transaction (simulated time)");
  printf("%-44s %14s %12s\n", "design", "us per txn", "forces/txn");

  // (a) TMF: one terminal issuing 10-update transactions.
  {
    sim::Simulation sim(51);
    app::Deployment deploy(&sim);
    app::NodeSpec spec;
    spec.id = 1;
    spec.node_config.num_cpus = 4;
    spec.volumes = {app::VolumeSpec{"$DATA1", {app::FileSpec{"acct"}}, {}}};
    auto* node = deploy.AddNode(spec);
    deploy.DefineFile("acct", 1, "$DATA1");
    apps::banking::SeedAccounts(node->storage().volumes.at("$DATA1").get(),
                                "acct", 64, 1000);
    apps::banking::AddBankServerClass(&deploy, 1, "$SC.BANK", "acct");
    app::ScreenProgram prog("ten-credits");
    prog.BeginTransaction();
    for (int i = 0; i < 10; ++i) {
      prog.Send(1, "$SC.BANK", [i](const app::Fields&) {
        return apps::banking::BankRequest("credit",
                                          apps::banking::AccountKey(i), 1);
      });
    }
    prog.EndTransaction();
    app::TcpConfig cfg;
    cfg.programs = {{"p", &prog}};
    auto tcp = os::SpawnPair<app::Tcp>(node->node(), "$TCP1", 2, 3, cfg);
    sim.Run();
    const int kTxns = 100;
    tcp.primary->AttachTerminal("t", "p", kTxns);
    SimTime start = sim.Now();
    sim.Run();
    double per_txn = static_cast<double>(sim.Now() - start) / kTxns;
    double forces = static_cast<double>(sim.GetStats().Counter("audit.forces")) /
                    kTxns;
    printf("%-44s %14.0f %12.1f\n",
           "TMF (checkpoint per update, force at phase 1)", per_txn, forces);
    printf("    checkpoints sent: %lld; audit records unforced on update: yes\n",
           (long long)sim.GetStats().Counter("os.checkpoints_sent"));
  }

  // (b) and (c): the WAL engine in its two modes.
  for (bool eager : {false, true}) {
    baseline::WalEngineConfig cfg;
    cfg.force_log_each_update = eager;
    baseline::WalEngine engine(cfg);
    const int kTxns = 100;
    SimDuration total = 0;
    for (int t = 0; t < kTxns; ++t) {
      SimDuration cost = 0;
      baseline::TxnId txn = engine.Begin();
      for (int i = 0; i < 10; ++i) {
        engine.Update(txn, "k" + std::to_string(i), "v", &cost);
      }
      engine.Commit(txn, &cost);
      total += cost;
    }
    printf("%-44s %14.0f %12.1f\n",
           eager ? "strict WAL (force each update)"
                 : "conventional WAL (force at commit)",
           static_cast<double>(total) / kTxns,
           static_cast<double>(engine.forces()) / kTxns);
  }
}

void TableForceBatching() {
  Header("E2.b audit force batching at phase 1 (force count vs txn size)");
  printf("%14s %16s %18s\n", "updates/txn", "audit records", "forces per txn");
  for (int updates : {1, 5, 20, 50}) {
    sim::Simulation sim(53);
    app::Deployment deploy(&sim);
    app::NodeSpec spec;
    spec.id = 1;
    spec.node_config.num_cpus = 4;
    spec.volumes = {app::VolumeSpec{"$DATA1", {app::FileSpec{"acct"}}, {}}};
    auto* node = deploy.AddNode(spec);
    deploy.DefineFile("acct", 1, "$DATA1");
    apps::banking::SeedAccounts(node->storage().volumes.at("$DATA1").get(),
                                "acct", 64, 1000);
    apps::banking::AddBankServerClass(&deploy, 1, "$SC.BANK", "acct");
    app::ScreenProgram prog("n-credits");
    prog.BeginTransaction();
    for (int i = 0; i < updates; ++i) {
      prog.Send(1, "$SC.BANK", [i](const app::Fields&) {
        return apps::banking::BankRequest("credit",
                                          apps::banking::AccountKey(i % 64), 1);
      });
    }
    prog.EndTransaction();
    app::TcpConfig cfg;
    cfg.programs = {{"p", &prog}};
    auto tcp = os::SpawnPair<app::Tcp>(node->node(), "$TCP1", 2, 3, cfg);
    sim.Run();
    const int kTxns = 20;
    tcp.primary->AttachTerminal("t", "p", kTxns);
    sim.Run();
    printf("%14d %16lld %18.1f\n", updates,
           (long long)sim.GetStats().Counter("audit.appended"),
           static_cast<double>(sim.GetStats().Counter("audit.forces")) / kTxns);
  }
  printf("(one force per transaction regardless of size — the WAL-eager\n"
         " design would pay one force per update)\n");
}

void BM_WalCommit(benchmark::State& state) {
  const bool eager = state.range(0) != 0;
  baseline::WalEngineConfig cfg;
  cfg.force_log_each_update = eager;
  baseline::WalEngine engine(cfg);
  SimDuration total = 0;
  int64_t txns = 0;
  for (auto _ : state) {
    SimDuration cost = 0;
    baseline::TxnId t = engine.Begin();
    for (int i = 0; i < 10; ++i) {
      engine.Update(t, "k" + std::to_string(i), "v", &cost);
    }
    engine.Commit(t, &cost);
    total += cost;
    ++txns;
  }
  state.counters["sim_us_per_txn"] = benchmark::Counter(
      static_cast<double>(total) / static_cast<double>(txns));
  state.SetItemsProcessed(txns);
}
BENCHMARK(BM_WalCommit)->Arg(0)->Arg(1);

}  // namespace
}  // namespace encompass::bench

int main(int argc, char** argv) {
  encompass::bench::InitReport("e2_checkpoint_vs_wal");
  encompass::bench::ReportMeta(/*seed=*/51);
  printf("E2: checkpoint-instead-of-WAL on the update path\n");
  encompass::bench::TableUpdatePathCost();
  encompass::bench::TableForceBatching();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  encompass::bench::WriteReport();
  return 0;
}
