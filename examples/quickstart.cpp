// Quickstart: bring up a single NonStop node, run a transaction through
// TMF, and watch a processor failure get absorbed — the in-flight
// transaction is backed out automatically and the retry commits; no system
// halt, no restart, no operator action.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "apps/banking/banking.h"
#include "encompass/deployment.h"
#include "encompass/tcp.h"

using namespace encompass;
using namespace encompass::app;
using namespace encompass::apps::banking;

int main() {
  sim::Simulation sim(/*seed=*/2024);
  Deployment deploy(&sim);

  // One node, four processors, one mirrored disc volume with one audited
  // key-sequenced file.
  NodeSpec spec;
  spec.id = 1;
  spec.node_config.num_cpus = 4;
  spec.volumes = {VolumeSpec{"$DATA1", {FileSpec{"acct"}}, {}}};
  NodeDeployment* node = deploy.AddNode(spec);
  deploy.DefineFile("acct", 1, "$DATA1");

  // Seed 10 accounts with $1000 each and start a bank server class.
  storage::Volume* volume = node->storage().volumes.at("$DATA1").get();
  SeedAccounts(volume, "acct", 10, 1000);
  AddBankServerClass(&deploy, 1, "$SC.BANK", "acct");

  // A terminal program: debit one account, credit another, commit.
  ScreenProgram transfer = MakeTransferProgram(1, "$SC.BANK",
                                               /*accounts=*/10,
                                               /*max_amount=*/100);
  TcpConfig tcp_cfg;
  tcp_cfg.programs = {{"transfer", &transfer}};
  auto tcp = os::SpawnPair<Tcp>(node->node(), "$TCP1", 2, 3, tcp_cfg);
  sim.Run();
  tcp.primary->AttachTerminal("term0", "transfer", /*iterations=*/50);

  // Fail CPU 1 (which hosts the DISCPROCESS primary) while transfers run.
  sim.RunFor(Millis(30));
  printf("t=%6lldms  injecting CPU 1 failure (DISCPROCESS primary dies)\n",
         static_cast<long long>(sim.Now() / 1000));
  node->node()->FailCpu(1);

  sim.RunFor(Seconds(120));
  sim.Run();

  Tcp* primary = tcp.primary->IsPrimary() ? tcp.primary : tcp.backup;
  printf("t=%6lldms  workload finished\n",
         static_cast<long long>(sim.Now() / 1000));
  printf("\n-- results -----------------------------------------------\n");
  printf("programs completed : %llu\n",
         static_cast<unsigned long long>(primary->programs_completed()));
  printf("programs failed    : %llu\n",
         static_cast<unsigned long long>(primary->programs_failed()));
  printf("txns committed     : %llu\n",
         static_cast<unsigned long long>(primary->transactions_committed()));
  printf("txn restarts       : %llu\n",
         static_cast<unsigned long long>(primary->transactions_restarted()));
  printf("process takeovers  : %lld\n",
         static_cast<long long>(sim.GetStats().Counter("os.takeovers")));
  long long total = SumBalances(volume, "acct");
  printf("sum of balances    : $%lld (expected $10000 — money conserved)\n",
         total);
  printf("illegal txn state transitions: %lld\n",
         static_cast<long long>(sim.GetStats().Counter("tmf.illegal_transitions")));

  bool ok = primary->programs_completed() == 50 &&
            primary->programs_failed() == 0 && total == 10000;
  printf("\n%s\n", ok ? "QUICKSTART OK" : "QUICKSTART FAILED");
  return ok ? 0 : 1;
}
