# Empty compiler generated dependencies file for indoubt_override.
# This may be replaced when dependencies are built.
