# Empty compiler generated dependencies file for encompass_app.
# This may be replaced when dependencies are built.
