// Simulated-time types. The simulation clock ticks in microseconds; helpers
// make device latencies in the code read like what they are.

#ifndef ENCOMPASS_COMMON_SIM_TIME_H_
#define ENCOMPASS_COMMON_SIM_TIME_H_

#include <cstdint>

namespace encompass {

/// Absolute simulated time in microseconds since simulation start.
using SimTime = int64_t;

/// Relative simulated duration in microseconds.
using SimDuration = int64_t;

constexpr SimDuration Micros(int64_t n) { return n; }
constexpr SimDuration Millis(int64_t n) { return n * 1000; }
constexpr SimDuration Seconds(int64_t n) { return n * 1000 * 1000; }

/// Sentinel meaning "no deadline".
constexpr SimTime kNoDeadline = INT64_MAX;

}  // namespace encompass

#endif  // ENCOMPASS_COMMON_SIM_TIME_H_
