// QueryEngine: a small non-procedural relational query/report facility (the
// ENCOMPASS query/report language analogue). It scans a (possibly
// partitioned, possibly multi-node) file through the FileSystem, filters by
// predicates over record fields, and computes projections and aggregates.

#ifndef ENCOMPASS_ENCOMPASS_QUERY_H_
#define ENCOMPASS_ENCOMPASS_QUERY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/record.h"
#include "tmf/file_system.h"

namespace encompass::app {

/// Comparison operators for predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kContains };

/// One predicate over a record field. Comparisons are numeric when both
/// sides parse as numbers, lexicographic otherwise.
struct Predicate {
  std::string field;
  CompareOp op = CompareOp::kEq;
  std::string value;
};

/// True if the record satisfies the predicate.
bool Matches(const storage::Record& record, const Predicate& predicate);

/// A selected row: primary key + decoded record.
struct Row {
  Bytes key;
  storage::Record record;
};

/// Aggregate kinds for Compute.
enum class Aggregate { kCount, kSum, kMin, kMax, kAvg };

/// Client-side query engine bound to one process.
class QueryEngine {
 public:
  QueryEngine(os::Process* owner, const storage::Catalog* catalog)
      : fs_(std::make_unique<tmf::FileSystem>(owner, catalog)),
        catalog_(catalog) {}

  using SelectCallback = std::function<void(const Status&, std::vector<Row>)>;
  using ComputeCallback = std::function<void(const Status&, double)>;

  /// SELECT * FROM file WHERE predicates [LIMIT limit]. Scans all
  /// partitions in key order. limit 0 = unlimited.
  void Select(const std::string& file, std::vector<Predicate> predicates,
              size_t limit, SelectCallback cb);

  /// Aggregate `field` over matching records (kCount ignores the field).
  void Compute(const std::string& file, std::vector<Predicate> predicates,
               const std::string& field, Aggregate aggregate, ComputeCallback cb);

 private:
  struct ScanState;
  void ScanStep(std::shared_ptr<ScanState> state);

  std::unique_ptr<tmf::FileSystem> fs_;
  const storage::Catalog* catalog_;
};

}  // namespace encompass::app

#endif  // ENCOMPASS_ENCOMPASS_QUERY_H_
