file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_checkpoint_vs_wal.dir/bench_e2_checkpoint_vs_wal.cc.o"
  "CMakeFiles/bench_e2_checkpoint_vs_wal.dir/bench_e2_checkpoint_vs_wal.cc.o.d"
  "bench_e2_checkpoint_vs_wal"
  "bench_e2_checkpoint_vs_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_checkpoint_vs_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
