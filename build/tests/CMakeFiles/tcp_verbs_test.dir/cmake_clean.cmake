file(REMOVE_RECURSE
  "CMakeFiles/tcp_verbs_test.dir/tcp_verbs_test.cc.o"
  "CMakeFiles/tcp_verbs_test.dir/tcp_verbs_test.cc.o.d"
  "tcp_verbs_test"
  "tcp_verbs_test.pdb"
  "tcp_verbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_verbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
