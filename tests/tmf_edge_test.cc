// Edge-case tests for TMF's failure handling: abandoned-transaction
// auto-abort, orphan phase-2/abort dispositions, duplicate protocol
// messages, disposition queries, and the reliable audit-delivery queue.

#include <gtest/gtest.h>

#include "apps/banking/banking.h"
#include "encompass/deployment.h"
#include "test_util.h"
#include "tmf/file_system.h"

namespace encompass::tmf {
namespace {

using app::Deployment;
using app::FileSpec;
using app::NodeDeployment;
using app::NodeSpec;
using app::VolumeSpec;
using testutil::TestClient;

class TmfEdgeTest : public ::testing::Test {
 protected:
  TmfEdgeTest() : sim_(71), deploy_(&sim_) {
    for (net::NodeId id : {1, 2}) {
      NodeSpec spec;
      spec.id = id;
      spec.node_config.num_cpus = 4;
      spec.tmp_config.auto_abort_timeout = Seconds(5);
      spec.volumes = {VolumeSpec{
          "$DATA" + std::to_string(id),
          {FileSpec{"f" + std::to_string(id)}},
          {}}};
      deploy_.AddNode(spec);
    }
    deploy_.LinkAll();
    deploy_.DefineFile("f1", 1, "$DATA1");
    deploy_.DefineFile("f2", 2, "$DATA2");
    client_ = deploy_.GetNode(1)->node()->Spawn<TestClient>(2);
    fs_ = std::make_unique<FileSystem>(client_, &deploy_.catalog());
    sim_.RunFor(Millis(5));
  }

  uint64_t Begin() {
    auto* o = client_->CallRaw(net::Address(1, "$TMP"), kTmfBegin, {});
    sim_.RunFor(Millis(10));
    EXPECT_TRUE(o->done && o->status.ok());
    auto t = DecodeTransidPayload(Slice(o->payload));
    return t.ok() ? t->Pack() : 0;
  }

  bool Insert(uint64_t transid, const std::string& file, const std::string& key) {
    bool ok = false;
    client_->set_current_transid(transid);
    fs_->Insert(file, Slice(key), Slice("v"),
                [&ok](const Status& s, const Bytes&) { ok = s.ok(); });
    client_->set_current_transid(0);
    sim_.RunFor(Millis(200));
    return ok;
  }

  sim::Simulation sim_;
  Deployment deploy_;
  TestClient* client_;
  std::unique_ptr<FileSystem> fs_;
};

TEST_F(TmfEdgeTest, AbandonedTransactionAutoAborts) {
  uint64_t t = Begin();
  ASSERT_TRUE(Insert(t, "f1", "k1"));
  // The "requester" never commits or aborts (as if its CPU died and the
  // abort was lost). The auto-abort timer reaps it and releases the lock.
  EXPECT_GT(deploy_.GetNode(1)->disc("$DATA1")->locks().held_count(), 0u);
  sim_.RunFor(Seconds(8));
  EXPECT_EQ(deploy_.GetNode(1)->tmp()->ActiveTransactionCount(), 0u);
  EXPECT_EQ(deploy_.GetNode(1)->disc("$DATA1")->locks().held_count(), 0u);
  EXPECT_GT(sim_.GetStats().Counter("tmf.auto_aborts"), 0);
  // The insert was backed out.
  EXPECT_TRUE(deploy_.GetNode(1)
                  ->storage()
                  .volumes.at("$DATA1")
                  ->ReadRecord("f1", Slice("k1"))
                  .status.IsNotFound());
  // END after the auto-abort is rejected.
  auto* end = client_->CallRaw(net::Address(1, "$TMP"), kTmfEnd,
                               EncodeTransidPayload(Transid::Unpack(t)), t);
  sim_.RunFor(Millis(100));
  EXPECT_TRUE(end->done && end->status.IsAborted());
}

TEST_F(TmfEdgeTest, InDoubtTransactionIsNotAutoAborted) {
  // Phase 1 answered affirmatively at node 2, then partition: node 2 must
  // HOLD the locks past any auto-abort timeout (the in-doubt rule).
  uint64_t t = Begin();
  ASSERT_TRUE(Insert(t, "f2", "k1"));
  client_->CallRaw(net::Address(1, "$TMP"), kTmfEnd,
                   EncodeTransidPayload(Transid::Unpack(t)), t);
  auto* mat1 = &deploy_.GetNode(1)->storage().monitor_trail;
  for (int i = 0; i < 2000 && mat1->Lookup(Transid::Unpack(t)) != 1; ++i) {
    sim_.RunFor(Micros(500));
  }
  deploy_.cluster().CutLink(1, 2);
  sim_.RunFor(Seconds(12));  // well past auto_abort_timeout
  EXPECT_GT(deploy_.GetNode(2)->disc("$DATA2")->locks().held_count(), 0u)
      << "in-doubt locks must be held until the disposition arrives";
  deploy_.cluster().RestoreLink(1, 2);
  sim_.RunFor(Seconds(5));
  EXPECT_EQ(deploy_.GetNode(2)->disc("$DATA2")->locks().held_count(), 0u);
  EXPECT_EQ(deploy_.GetNode(2)->storage().monitor_trail.Lookup(
                Transid::Unpack(t)),
            1);
}

TEST_F(TmfEdgeTest, OrphanAbortReleasesUnknownTransactionState) {
  // Simulate the lost-remote-begin race: node 2's DISCPROCESS has locks
  // and data for a transaction its TMP has never heard of. An abort
  // message from the parent must still clean everything up.
  uint64_t t = Begin();
  ASSERT_TRUE(Insert(t, "f2", "k1"));
  // Wipe node 2's TMP entry by killing both TMP CPUs; the guardian
  // respawns a fresh (empty) TMP.
  auto* node2 = deploy_.GetNode(2);
  node2->node()->FailCpu(3);
  sim_.RunFor(Millis(20));
  node2->node()->FailCpu(0);
  sim_.RunFor(Millis(500));
  ASSERT_NE(node2->tmp(), nullptr);
  EXPECT_EQ(node2->tmp()->ActiveTransactionCount(), 0u);
  EXPECT_GT(node2->disc("$DATA2")->locks().held_count(), 0u);

  // Abort at home; the safe-delivery abort reaches node 2's new TMP, which
  // treats the unknown transaction as an orphan and backs it out.
  auto* abort = client_->CallRaw(net::Address(1, "$TMP"), kTmfAbort,
                                 EncodeTransidPayload(Transid::Unpack(t)), t);
  sim_.RunFor(Seconds(10));
  EXPECT_TRUE(abort->done && abort->status.ok());
  EXPECT_EQ(node2->disc("$DATA2")->locks().held_count(), 0u);
  EXPECT_TRUE(node2->storage()
                  .volumes.at("$DATA2")
                  ->ReadRecord("f2", Slice("k1"))
                  .status.IsNotFound());
  EXPECT_GT(sim_.GetStats().Counter("tmf.orphan_aborts"), 0);
}

TEST_F(TmfEdgeTest, DuplicateProtocolMessagesAreIdempotent) {
  uint64_t t = Begin();
  ASSERT_TRUE(Insert(t, "f2", "k1"));
  auto* end = client_->CallRaw(net::Address(1, "$TMP"), kTmfEnd,
                               EncodeTransidPayload(Transid::Unpack(t)), t);
  sim_.Run();
  ASSERT_TRUE(end->done && end->status.ok());
  // Re-deliver phase 2 and an abort for the long-resolved transaction
  // directly to node 2's TMP: both must be acknowledged no-ops.
  auto* p2 = client_->CallRaw(net::Address(2, "$TMP"), kTmfPhase2,
                              EncodeTransidPayload(Transid::Unpack(t)));
  auto* ab = client_->CallRaw(net::Address(2, "$TMP"), kTmfAbortTxn,
                              EncodeTransidPayload(Transid::Unpack(t)));
  sim_.Run();
  EXPECT_TRUE(p2->done && p2->status.ok());
  EXPECT_TRUE(ab->done && ab->status.ok());
  // The record is still there (the stale abort did not undo the commit).
  EXPECT_TRUE(deploy_.GetNode(2)
                  ->storage()
                  .volumes.at("$DATA2")
                  ->ReadRecord("f2", Slice("k1"))
                  .status.ok());
  EXPECT_EQ(deploy_.GetNode(2)->storage().monitor_trail.Lookup(
                Transid::Unpack(t)),
            1);
}

TEST_F(TmfEdgeTest, StatusQueryReportsDispositions) {
  uint64_t t1 = Begin();
  ASSERT_TRUE(Insert(t1, "f1", "k1"));
  auto* end = client_->CallRaw(net::Address(1, "$TMP"), kTmfEnd,
                               EncodeTransidPayload(Transid::Unpack(t1)), t1);
  sim_.Run();
  ASSERT_TRUE(end->status.ok());

  uint64_t t2 = Begin();
  ASSERT_TRUE(Insert(t2, "f1", "k2"));
  auto* abort = client_->CallRaw(net::Address(1, "$TMP"), kTmfAbort,
                                 EncodeTransidPayload(Transid::Unpack(t2)), t2);
  sim_.Run();
  ASSERT_TRUE(abort->status.ok());

  auto query = [&](uint64_t t) {
    auto* o = client_->CallRaw(net::Address(1, "$TMP"), kTmfStatus,
                               EncodeTransidPayload(Transid::Unpack(t)));
    sim_.Run();
    EXPECT_TRUE(o->done && o->status.ok());
    return o->payload.empty() ? 255 : o->payload[0];
  };
  EXPECT_EQ(query(t1), static_cast<uint8_t>(Disposition::kCommitted));
  EXPECT_EQ(query(t2), static_cast<uint8_t>(Disposition::kAborted));
  EXPECT_EQ(query(Transid{1, 0, 999999}.Pack()),
            static_cast<uint8_t>(Disposition::kUnknown));
}

TEST_F(TmfEdgeTest, ListTransactionsShowsInDoubtState) {
  uint64_t t = Begin();
  ASSERT_TRUE(Insert(t, "f2", "k1"));
  client_->CallRaw(net::Address(1, "$TMP"), kTmfEnd,
                   EncodeTransidPayload(Transid::Unpack(t)), t);
  auto* mat1 = &deploy_.GetNode(1)->storage().monitor_trail;
  for (int i = 0; i < 2000 && mat1->Lookup(Transid::Unpack(t)) != 1; ++i) {
    sim_.RunFor(Micros(500));
  }
  deploy_.cluster().CutLink(1, 2);
  sim_.RunFor(Seconds(1));

  auto* op = deploy_.GetNode(2)->node()->Spawn<TestClient>(2);
  sim_.RunFor(Millis(5));
  auto* list = op->CallRaw(net::Address(2, "$TMP"), kTmfListTxns, {});
  sim_.RunFor(Millis(50));
  ASSERT_TRUE(list->done && list->status.ok());
  auto entries = DecodeTxnList(Slice(list->payload));
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].transid, Transid::Unpack(t));
  EXPECT_EQ((*entries)[0].state, static_cast<uint8_t>(TxnState::kEnding));
  EXPECT_FALSE((*entries)[0].is_home);
  EXPECT_EQ((*entries)[0].parent, 1);
  deploy_.cluster().RestoreLink(1, 2);
  sim_.RunFor(Seconds(5));
}

TEST_F(TmfEdgeTest, TxnListCodecRoundTrip) {
  std::vector<TxnListEntry> entries = {
      {Transid{1, 2, 3}, 1, true, 0},
      {Transid{5, 0, 99}, 3, false, 4},
  };
  auto decoded = DecodeTxnList(Slice(EncodeTxnList(entries)));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].transid, (Transid{1, 2, 3}));
  EXPECT_TRUE((*decoded)[0].is_home);
  EXPECT_EQ((*decoded)[1].state, 3);
  EXPECT_EQ((*decoded)[1].parent, 4);
  Bytes garbage = ToBytes("\x05trunc");
  EXPECT_FALSE(DecodeTxnList(Slice(garbage)).ok());
}

TEST_F(TmfEdgeTest, AuditPurgeDropsArchivedFiles) {
  // Fill several audit files, force, then purge through the AUDITPROCESS
  // message interface (as the archive utility would after an archive).
  auto* trail = deploy_.GetNode(1)->storage().trails.at("$DATA1.AT").get();
  for (int i = 0; i < 20; ++i) {
    uint64_t t = Begin();
    ASSERT_TRUE(Insert(t, "f1", "purge-k" + std::to_string(i)));
    auto* end = client_->CallRaw(net::Address(1, "$TMP"), kTmfEnd,
                                 EncodeTransidPayload(Transid::Unpack(t)), t);
    sim_.Run();
    ASSERT_TRUE(end->status.ok());
  }
  uint64_t cutoff = trail->durable_lsn();
  ASSERT_GT(cutoff, 0u);

  // Shrink audit files so there is something to purge: re-check via the
  // message path on the existing trail (files hold 4096 records by default,
  // so purge of a partial file is a no-op — verify both behaviours).
  auto* purge_noop = client_->CallRaw(net::Address(1, "$AUD.$DATA1"),
                                      audit::kAuditPurge, [cutoff] {
                                        Bytes b;
                                        PutFixed64(&b, cutoff);
                                        return b;
                                      }());
  sim_.Run();
  ASSERT_TRUE(purge_noop->done && purge_noop->status.ok());
  Slice in(purge_noop->payload);
  uint64_t purged;
  ASSERT_TRUE(GetVarint64(&in, &purged));
  EXPECT_EQ(purged, 0u);  // single partial file is always retained
  EXPECT_EQ(trail->file_count(), 1u);
}

TEST_F(TmfEdgeTest, AuditQueueRedeliversAcrossAuditTakeover) {
  // Kill the AUDITPROCESS primary's CPU, then immediately run a
  // transaction: the disc's audit records queue and redeliver once the
  // audit backup takes over; the commit still forces them.
  auto* node1 = deploy_.GetNode(1);
  node1->node()->FailCpu(0);  // $AUD.$DATA1 primary
  uint64_t t = Begin();
  ASSERT_TRUE(Insert(t, "f1", "k1"));
  auto* end = client_->CallRaw(net::Address(1, "$TMP"), kTmfEnd,
                               EncodeTransidPayload(Transid::Unpack(t)), t);
  sim_.RunFor(Seconds(10));
  ASSERT_TRUE(end->done);
  EXPECT_TRUE(end->status.ok());
  auto* trail = node1->storage().trails.at("$DATA1.AT").get();
  auto images = trail->RecordsForTransaction(Transid::Unpack(t));
  EXPECT_EQ(images.size(), 1u);
  EXPECT_LE(images[0].lsn, trail->durable_lsn());  // forced at phase 1
}

}  // namespace
}  // namespace encompass::tmf
