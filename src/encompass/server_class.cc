#include "encompass/server_class.h"

#include "common/coding.h"
#include "common/logging.h"

namespace encompass::app {

namespace {
constexpr uint8_t kCkptPoolAdd = 1;
constexpr uint8_t kCkptPoolRemove = 2;
}  // namespace

void ServerClassRouter::OnPairAttach() {
  m_.spawned = stats().RegisterCounter("serverclass.spawned");
  m_.reaped = stats().RegisterCounter("serverclass.reaped");
  m_.queue_depth = stats().RegisterHistogram("serverclass.queue_depth");
}

void ServerClassRouter::OnPairStart() {
  if (!IsPrimary()) return;
  for (int i = 0; i < config_.min_servers; ++i) {
    SpawnServer();
  }
}

void ServerClassRouter::EnsureReapTimer() {
  // Armed only while the class is above its floor, so an idle system
  // quiesces (and the simulation's run-to-idle terminates).
  if (reap_timer_ != 0 ||
      static_cast<int>(servers_.size()) <= config_.min_servers) {
    return;
  }
  reap_timer_ = SetTimer(config_.idle_shutdown, [this]() {
    reap_timer_ = 0;
    ReapIdleServers();
  });
}

net::Pid ServerClassRouter::SpawnServer() {
  for (size_t attempt = 0; attempt < config_.cpus.size(); ++attempt) {
    int cpu = config_.cpus[next_cpu_ % config_.cpus.size()];
    ++next_cpu_;
    if (!node()->CpuUp(cpu)) continue;
    net::Pid pid = config_.factory(node(), cpu);
    if (pid != 0) {
      servers_.push_back(ServerSlot{pid, false, sim()->Now()});
      stats().Incr(m_.spawned);
      CkptPool(pid, /*removed=*/false);
      EnsureReapTimer();
      return pid;
    }
  }
  return 0;
}

void ServerClassRouter::OnRequest(const net::Message& msg) {
  if (msg.tag != kServerRequest) return;
  if (!IsPrimary()) {
    Reply(msg, Status::Unavailable("backup server-class router"));
    return;
  }
  queue_.push_back(msg);
  stats().Record(m_.queue_depth, static_cast<int64_t>(queue_.size()));
  Dispatch();
}

void ServerClassRouter::Dispatch() {
  while (!queue_.empty()) {
    // Find an idle, live server.
    ServerSlot* idle = nullptr;
    for (auto it = servers_.begin(); it != servers_.end();) {
      if (node()->Find(it->pid) == nullptr) {
        CkptPool(it->pid, /*removed=*/true);
        it = servers_.erase(it);  // died with its CPU
        continue;
      }
      if (!it->busy && idle == nullptr) idle = &*it;
      ++it;
    }
    if (idle == nullptr) {
      // All busy: grow the class under load, else leave queued.
      if (queue_.size() >= config_.spawn_queue_depth &&
          static_cast<int>(servers_.size()) < config_.max_servers) {
        if (SpawnServer() != 0) continue;
      }
      return;
    }
    net::Message request = queue_.front();
    queue_.pop_front();
    ForwardTo(idle, request);
  }
}

void ServerClassRouter::ForwardTo(ServerSlot* slot, const net::Message& request) {
  slot->busy = true;
  net::Pid pid = slot->pid;
  set_current_transid(request.transid);
  os::CallOptions opt;
  opt.timeout = config_.request_timeout;
  Call(net::Address(net::ProcessId{node()->id(), pid}), kServerRequest,
       request.payload,
       [this, pid, request](const Status& s, const net::Message& reply) {
         for (auto& slot : servers_) {
           if (slot.pid == pid) {
             slot.busy = false;
             slot.idle_since = sim()->Now();
             break;
           }
         }
         // Proxy the server's reply back to the requester.
         SendReply(request.src, request.tag, request.request_id, s,
                   reply.payload);
         Dispatch();
       },
       opt);
  set_current_transid(0);
}

void ServerClassRouter::ReapIdleServers() {
  SimTime cutoff = sim()->Now() - config_.idle_shutdown;
  for (auto it = servers_.begin();
       it != servers_.end() &&
       static_cast<int>(servers_.size()) > config_.min_servers;) {
    if (!it->busy && it->idle_since < cutoff &&
        node()->Find(it->pid) != nullptr) {
      node()->Kill(it->pid);
      CkptPool(it->pid, /*removed=*/true);
      it = servers_.erase(it);
      stats().Incr(m_.reaped);
    } else {
      ++it;
    }
  }
  EnsureReapTimer();
}

void ServerClassRouter::OnPairCpuDown(int) {
  if (!IsPrimary()) return;
  // Drop dead servers and re-dispatch queued work; in-flight requests to
  // dead servers resolve via their call timeouts.
  Dispatch();
  while (static_cast<int>(servers_.size()) < config_.min_servers &&
         SpawnServer() != 0) {
  }
}

void ServerClassRouter::CkptPool(net::Pid pid, bool removed) {
  if (!HasBackup()) return;
  Bytes out;
  PutFixed8(&out, removed ? kCkptPoolRemove : kCkptPoolAdd);
  PutFixed32(&out, pid);
  SendCheckpoint(std::move(out));
}

void ServerClassRouter::OnCheckpoint(const Slice& delta) {
  Slice in = delta;
  while (!in.empty()) {
    uint8_t type;
    uint32_t pid;
    if (!GetFixed8(&in, &type) || !GetFixed32(&in, &pid)) return;
    if (type == kCkptPoolAdd) {
      servers_.push_back(ServerSlot{pid, false, 0});
    } else {
      for (auto it = servers_.begin(); it != servers_.end(); ++it) {
        if (it->pid == pid) {
          servers_.erase(it);
          break;
        }
      }
    }
  }
}

void ServerClassRouter::OnTakeover() {
  // In-flight forwards died with the old primary (requesters will retry or
  // restart their transactions). Keep the surviving servers; mark all idle.
  for (auto it = servers_.begin(); it != servers_.end();) {
    if (node()->Find(it->pid) == nullptr) {
      it = servers_.erase(it);
    } else {
      it->busy = false;
      it->idle_since = sim()->Now();
      ++it;
    }
  }
  while (static_cast<int>(servers_.size()) < config_.min_servers &&
         SpawnServer() != 0) {
  }
  EnsureReapTimer();
}

void ServerClassRouter::OnBackupAttached() {
  for (const auto& slot : servers_) {
    CkptPool(slot.pid, /*removed=*/false);
  }
}

ServerClassRouter* SpawnServerClass(os::Node* node, ServerClassConfig config,
                                    int cpu_primary, int cpu_backup) {
  auto pair = os::SpawnPair<ServerClassRouter>(node, config.name, cpu_primary,
                                               cpu_backup, config);
  return pair.primary;
}

}  // namespace encompass::app
