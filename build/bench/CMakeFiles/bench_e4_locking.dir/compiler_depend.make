# Empty compiler generated dependencies file for bench_e4_locking.
# This may be replaced when dependencies are built.
