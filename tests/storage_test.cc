// Tests for the storage substrate: records, B+tree, the three file
// organizations, secondary indices, volumes (cache, mirroring, durability
// boundary, archive), and partition maps.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/bplus_tree.h"
#include "storage/file.h"
#include "storage/partition.h"
#include "storage/record.h"
#include "storage/volume.h"

namespace encompass::storage {
namespace {

// ---------------------------------------------------------------------------
// Record
// ---------------------------------------------------------------------------

TEST(RecordTest, SetGetAndEncodeDecode) {
  Record r;
  r.Set("part", "X100").Set("qty", "25").Set("desc", "widget");
  EXPECT_EQ(r.Get("part"), "X100");
  EXPECT_EQ(r.Get("missing"), "");
  EXPECT_TRUE(r.Has("qty"));
  auto decoded = Record::Decode(Slice(r.Encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, r);
}

TEST(RecordTest, EncodeIsDeterministic) {
  Record a, b;
  a.Set("z", "1").Set("a", "2");
  b.Set("a", "2").Set("z", "1");
  EXPECT_EQ(a.Encode(), b.Encode());
}

TEST(RecordTest, DecodeRejectsGarbage) {
  Bytes garbage = ToBytes("\xff\xff\xff\xffnot-a-record");
  EXPECT_FALSE(Record::Decode(Slice(garbage)).ok());
}

TEST(RecordTest, EmptyRecordRoundTrip) {
  Record r;
  auto decoded = Record::Decode(Slice(r.Encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->field_count(), 0u);
}

// ---------------------------------------------------------------------------
// BPlusTree: basic semantics
// ---------------------------------------------------------------------------

TEST(BPlusTreeTest, InsertGetDelete) {
  BPlusTree t;
  EXPECT_TRUE(t.Insert(Slice("k1"), Slice("v1")).ok());
  EXPECT_TRUE(t.Insert(Slice("k2"), Slice("v2")).ok());
  EXPECT_TRUE(t.Insert(Slice("k1"), Slice("dup")).IsAlreadyExists());
  auto g = t.Get(Slice("k1"));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(ToString(*g), "v1");
  EXPECT_TRUE(t.Delete(Slice("k1")).ok());
  EXPECT_TRUE(t.Get(Slice("k1")).status().IsNotFound());
  EXPECT_TRUE(t.Delete(Slice("k1")).IsNotFound());
  EXPECT_EQ(t.size(), 1u);
}

TEST(BPlusTreeTest, UpdateSemantics) {
  BPlusTree t;
  EXPECT_TRUE(t.Update(Slice("k"), Slice("v")).IsNotFound());
  t.Insert(Slice("k"), Slice("v"));
  EXPECT_TRUE(t.Update(Slice("k"), Slice("v2")).ok());
  EXPECT_EQ(ToString(*t.Get(Slice("k"))), "v2");
  EXPECT_EQ(t.size(), 1u);
}

TEST(BPlusTreeTest, UpsertInsertsOrReplaces) {
  BPlusTree t;
  EXPECT_TRUE(t.Upsert(Slice("k"), Slice("a")).ok());
  EXPECT_TRUE(t.Upsert(Slice("k"), Slice("b")).ok());
  EXPECT_EQ(ToString(*t.Get(Slice("k"))), "b");
  EXPECT_EQ(t.size(), 1u);
}

TEST(BPlusTreeTest, SeekSemantics) {
  BPlusTree t;
  for (const char* k : {"b", "d", "f"}) t.Insert(Slice(k), Slice(k));
  auto r = t.Seek(Slice("c"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToString(r->key), "d");
  r = t.Seek(Slice("d"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToString(r->key), "d");  // inclusive
  r = t.SeekAfter(Slice("d"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToString(r->key), "f");  // exclusive
  EXPECT_TRUE(t.Seek(Slice("g")).status().IsEndOfFile());
  r = t.First();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToString(r->key), "b");
}

TEST(BPlusTreeTest, EmptyTreeBehaviour) {
  BPlusTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.height(), 1);
  EXPECT_TRUE(t.Get(Slice("x")).status().IsNotFound());
  EXPECT_TRUE(t.First().status().IsEndOfFile());
  EXPECT_TRUE(t.Seek(Slice("")).status().IsEndOfFile());
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  BPlusTree t(/*block_size=*/256);
  for (int i = 0; i < 500; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%05d", i);
    ASSERT_TRUE(t.Insert(Slice(key, 8), Slice("value")).ok());
  }
  EXPECT_EQ(t.size(), 500u);
  EXPECT_GT(t.height(), 1);
  EXPECT_GT(t.node_count(), 1u);
  // All still retrievable and in order.
  std::string prev;
  size_t seen = 0;
  t.ForEach([&](const Slice& k, const Slice&) {
    EXPECT_LT(Slice(prev).Compare(k), 0);
    prev = k.ToString();
    ++seen;
  });
  EXPECT_EQ(seen, 500u);
}

TEST(BPlusTreeTest, SerializeDeserializeRoundTrip) {
  BPlusTree t(512);
  for (int i = 0; i < 200; ++i) {
    std::string k = "prefix/shared/key" + std::to_string(10000 + i);
    t.Insert(Slice(k), Slice("val" + std::to_string(i)));
  }
  Bytes image;
  t.SerializeTo(&image);
  // Shared prefixes compress well below the raw size.
  EXPECT_LT(image.size(), t.UncompressedDataSize());
  Slice in(image);
  auto restored = BPlusTree::Deserialize(&in, 512);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(in.empty());  // consumed exactly
  EXPECT_EQ((*restored)->size(), 200u);
  for (int i = 0; i < 200; ++i) {
    std::string k = "prefix/shared/key" + std::to_string(10000 + i);
    auto g = (*restored)->Get(Slice(k));
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(ToString(*g), "val" + std::to_string(i));
  }
}

TEST(BPlusTreeTest, DeserializeRejectsCorruption) {
  BPlusTree t;
  t.Insert(Slice("a"), Slice("1"));
  Bytes image;
  t.SerializeTo(&image);
  image.resize(image.size() / 2);  // truncate
  Slice in(image);
  EXPECT_FALSE(BPlusTree::Deserialize(&in, 4096).ok());
}

// Property sweep: random workloads against a std::map reference model, for
// several block sizes (small blocks force deep trees).
class BPlusTreePropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BPlusTreePropertyTest, MatchesReferenceModel) {
  const size_t block_size = GetParam();
  BPlusTree tree(block_size);
  std::map<std::string, std::string> model;
  Random rng(block_size * 7919 + 13);

  for (int step = 0; step < 4000; ++step) {
    std::string key = "k" + std::to_string(rng.Uniform(800));
    std::string value = "v" + std::to_string(rng.Next() % 100000);
    switch (rng.Uniform(4)) {
      case 0: {  // insert
        Status s = tree.Insert(Slice(key), Slice(value));
        if (model.count(key)) {
          EXPECT_TRUE(s.IsAlreadyExists());
        } else {
          EXPECT_TRUE(s.ok());
          model[key] = value;
        }
        break;
      }
      case 1: {  // update
        Status s = tree.Update(Slice(key), Slice(value));
        if (model.count(key)) {
          EXPECT_TRUE(s.ok());
          model[key] = value;
        } else {
          EXPECT_TRUE(s.IsNotFound());
        }
        break;
      }
      case 2: {  // delete
        Status s = tree.Delete(Slice(key));
        if (model.count(key)) {
          EXPECT_TRUE(s.ok());
          model.erase(key);
        } else {
          EXPECT_TRUE(s.IsNotFound());
        }
        break;
      }
      case 3: {  // point read
        auto g = tree.Get(Slice(key));
        if (model.count(key)) {
          ASSERT_TRUE(g.ok());
          EXPECT_EQ(ToString(*g), model[key]);
        } else {
          EXPECT_TRUE(g.status().IsNotFound());
        }
        break;
      }
    }
  }

  // Invariants: size, full in-order agreement, seek agreement.
  EXPECT_EQ(tree.size(), model.size());
  auto mit = model.begin();
  tree.ForEach([&](const Slice& k, const Slice& v) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(k.ToString(), mit->first);
    EXPECT_EQ(v.ToString(), mit->second);
    ++mit;
  });
  EXPECT_EQ(mit, model.end());
  for (int probe = 0; probe < 100; ++probe) {
    std::string key = "k" + std::to_string(rng.Uniform(900));
    auto s = tree.Seek(Slice(key));
    auto lb = model.lower_bound(key);
    if (lb == model.end()) {
      EXPECT_TRUE(s.status().IsEndOfFile());
    } else {
      ASSERT_TRUE(s.ok());
      EXPECT_EQ(ToString(s->key), lb->first);
    }
  }
  // Serialization survives the same workload.
  Bytes image;
  tree.SerializeTo(&image);
  Slice in(image);
  auto restored = BPlusTree::Deserialize(&in, block_size);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, BPlusTreePropertyTest,
                         ::testing::Values(256, 512, 1024, 4096, 16384));

// ---------------------------------------------------------------------------
// File organizations
// ---------------------------------------------------------------------------

TEST(FileTest, RecnumKeyOrderPreserved) {
  EXPECT_LT(Slice(EncodeRecnum(1)), Slice(EncodeRecnum(2)));
  EXPECT_LT(Slice(EncodeRecnum(255)), Slice(EncodeRecnum(256)));
  uint64_t n;
  ASSERT_TRUE(DecodeRecnum(Slice(EncodeRecnum(123456789)), &n));
  EXPECT_EQ(n, 123456789u);
  EXPECT_FALSE(DecodeRecnum(Slice("short"), &n));
}

TEST(FileTest, KeySequencedBasics) {
  auto f = MakeFile(FileOrganization::kKeySequenced, "items", {});
  EXPECT_EQ(f->organization(), FileOrganization::kKeySequenced);
  Bytes assigned;
  EXPECT_TRUE(f->Insert(Slice("A1"), Slice("rec"), &assigned).ok());
  EXPECT_EQ(ToString(assigned), "A1");
  EXPECT_TRUE(f->Insert(Slice(""), Slice("r"), nullptr).IsInvalidArgument());
  EXPECT_EQ(f->record_count(), 1u);
}

TEST(FileTest, RelativeFileSlots) {
  auto f = MakeFile(FileOrganization::kRelative, "slots", {});
  Bytes k5 = EncodeRecnum(5);
  EXPECT_TRUE(f->Insert(Slice(k5), Slice("five"), nullptr).ok());
  EXPECT_TRUE(f->Insert(Slice(k5), Slice("again"), nullptr).IsAlreadyExists());
  EXPECT_EQ(ToString(*f->Read(Slice(k5))), "five");
  EXPECT_TRUE(f->Read(Slice(EncodeRecnum(6))).status().IsNotFound());
  EXPECT_TRUE(f->Update(Slice(k5), Slice("FIVE")).ok());
  EXPECT_TRUE(f->Delete(Slice(k5)).ok());
  EXPECT_EQ(f->record_count(), 0u);
}

TEST(FileTest, EntrySequencedAppendAssignsKeys) {
  auto f = MakeFile(FileOrganization::kEntrySequenced, "log", {});
  Bytes k1, k2;
  EXPECT_TRUE(f->Insert(Slice(), Slice("first"), &k1).ok());
  EXPECT_TRUE(f->Insert(Slice(), Slice("second"), &k2).ok());
  EXPECT_LT(Slice(k1), Slice(k2));
  EXPECT_EQ(ToString(*f->Read(Slice(k1))), "first");
  EXPECT_TRUE(f->Delete(Slice(k1)).IsNotSupported());
  auto* es = static_cast<EntrySequencedFile*>(f.get());
  EXPECT_TRUE(es->RemoveEntry(Slice(k2)).ok());
  EXPECT_EQ(f->record_count(), 1u);
  // Next append does not reuse the removed sequence number.
  Bytes k3;
  EXPECT_TRUE(f->Insert(Slice(), Slice("third"), &k3).ok());
  EXPECT_LT(Slice(k2), Slice(k3));
}

TEST(FileTest, SeekAcrossOrganizations) {
  for (auto org : {FileOrganization::kKeySequenced, FileOrganization::kRelative,
                   FileOrganization::kEntrySequenced}) {
    auto f = MakeFile(org, "f", {});
    for (int i = 1; i <= 5; ++i) {
      Bytes key = org == FileOrganization::kEntrySequenced ? Bytes{}
                                                           : EncodeRecnum(i * 10);
      ASSERT_TRUE(
          f->Insert(Slice(key), Slice("r" + std::to_string(i)), nullptr).ok())
          << FileOrganizationName(org);
    }
    auto first = f->Seek(Slice(), true);
    ASSERT_TRUE(first.ok()) << FileOrganizationName(org);
    auto after = f->Seek(Slice(first->key), false);
    ASSERT_TRUE(after.ok());
    EXPECT_LT(Slice(first->key), Slice(after->key));
    size_t n = 0;
    f->ForEach([&](const Slice&, const Slice&) { ++n; });
    EXPECT_EQ(n, 5u);
  }
}

TEST(FileTest, AlternateKeyMaintenance) {
  FileOptions opt;
  opt.schema.alternate_keys = {"color"};
  auto f = MakeFile(FileOrganization::kKeySequenced, "parts", opt);
  auto rec = [](const std::string& color) {
    return Record().Set("color", color).Encode();
  };
  f->Insert(Slice("p1"), Slice(rec("red")), nullptr);
  f->Insert(Slice("p2"), Slice(rec("blue")), nullptr);
  f->Insert(Slice("p3"), Slice(rec("red")), nullptr);

  auto reds = f->LookupAlternate("color", "red");
  ASSERT_TRUE(reds.ok());
  ASSERT_EQ(reds->size(), 2u);
  EXPECT_EQ(ToString((*reds)[0]), "p1");
  EXPECT_EQ(ToString((*reds)[1]), "p3");

  // Update moves p1 to blue.
  f->Update(Slice("p1"), Slice(rec("blue")));
  EXPECT_EQ(f->LookupAlternate("color", "red")->size(), 1u);
  EXPECT_EQ(f->LookupAlternate("color", "blue")->size(), 2u);

  // Delete removes from the index.
  f->Delete(Slice("p3"));
  EXPECT_EQ(f->LookupAlternate("color", "red")->size(), 0u);

  // Undeclared field rejected.
  EXPECT_TRUE(f->LookupAlternate("size", "L").status().IsInvalidArgument());
}

TEST(FileTest, ArchiveRestoreRebuildsIndices) {
  FileOptions opt;
  opt.schema.alternate_keys = {"site"};
  auto f = MakeFile(FileOrganization::kKeySequenced, "stock", opt);
  for (int i = 0; i < 50; ++i) {
    Record r;
    r.Set("site", i % 2 ? "cupertino" : "reston");
    f->Insert(Slice("item" + std::to_string(100 + i)), Slice(r.Encode()), nullptr);
  }
  Bytes image;
  f->ArchiveTo(&image);

  auto g = MakeFile(FileOrganization::kKeySequenced, "stock", opt);
  Slice in(image);
  ASSERT_TRUE(g->RestoreFrom(&in).ok());
  EXPECT_EQ(g->record_count(), 50u);
  EXPECT_EQ(g->LookupAlternate("site", "reston")->size(), 25u);
}

// ---------------------------------------------------------------------------
// Volume
// ---------------------------------------------------------------------------

class VolumeTest : public ::testing::Test {
 protected:
  VolumeTest() : vol_("$DATA1") {
    FileOptions opt;
    opt.audited = true;
    EXPECT_TRUE(vol_.CreateFile("acct", FileOrganization::kKeySequenced, opt).ok());
  }
  Volume vol_;
};

TEST_F(VolumeTest, MutateCapturesBeforeImages) {
  auto ins = vol_.Mutate("acct", MutationOp::kInsert, Slice("a"), Slice("100"));
  EXPECT_TRUE(ins.status.ok());
  EXPECT_FALSE(ins.existed);
  auto upd = vol_.Mutate("acct", MutationOp::kUpdate, Slice("a"), Slice("200"));
  EXPECT_TRUE(upd.status.ok());
  EXPECT_TRUE(upd.existed);
  EXPECT_EQ(ToString(upd.before), "100");
  auto del = vol_.Mutate("acct", MutationOp::kDelete, Slice("a"), Slice());
  EXPECT_TRUE(del.status.ok());
  EXPECT_EQ(ToString(del.before), "200");
}

TEST_F(VolumeTest, MutateUnknownFileFails) {
  auto r = vol_.Mutate("nope", MutationOp::kInsert, Slice("k"), Slice("v"));
  EXPECT_TRUE(r.status.IsNotFound());
}

TEST_F(VolumeTest, ReadThroughCacheCountsHitsAndMisses) {
  vol_.Mutate("acct", MutationOp::kInsert, Slice("a"), Slice("1"));
  // The insert warmed the cache.
  auto r1 = vol_.ReadRecord("acct", Slice("a"));
  EXPECT_TRUE(r1.status.ok());
  EXPECT_EQ(r1.disc_ios, 0);
  EXPECT_EQ(vol_.cache_hits(), 1);
  // A cold key misses.
  vol_.Mutate("acct", MutationOp::kInsert, Slice("b"), Slice("2"));
  Volume cold("$COLD");
  cold.CreateFile("f", FileOrganization::kKeySequenced);
  cold.Mutate("f", MutationOp::kInsert, Slice("x"), Slice("v"));
  cold.DropVolatile();  // also clears the cache
  cold.Mutate("f", MutationOp::kInsert, Slice("x"), Slice("v"));
  cold.Flush();
  Volume fresh("$F");
  fresh.CreateFile("f", FileOrganization::kKeySequenced);
  fresh.Mutate("f", MutationOp::kInsert, Slice("x"), Slice("v"));
  fresh.Flush();
  // Force a miss by restoring from archive (cold cache).
  Bytes image = fresh.Archive();
  Volume restored("$F");
  ASSERT_TRUE(restored.RestoreFromArchive(Slice(image)).ok());
  auto miss = restored.ReadRecord("f", Slice("x"));
  EXPECT_TRUE(miss.status.ok());
  EXPECT_GT(miss.disc_ios, 0);
  EXPECT_EQ(restored.cache_misses(), 1);
  auto hit = restored.ReadRecord("f", Slice("x"));
  EXPECT_EQ(hit.disc_ios, 0);
}

TEST_F(VolumeTest, LruEvictsOldEntries) {
  VolumeConfig cfg;
  cfg.cache_capacity = 4;
  Volume v("$SMALL", cfg);
  v.CreateFile("f", FileOrganization::kKeySequenced);
  for (int i = 0; i < 10; ++i) {
    v.Mutate("f", MutationOp::kInsert, Slice("k" + std::to_string(i)), Slice("v"));
  }
  // Only the last 4 keys remain cached.
  auto r_old = v.ReadRecord("f", Slice("k0"));
  EXPECT_GT(r_old.disc_ios, 0);
  auto r_new = v.ReadRecord("f", Slice("k9"));
  EXPECT_EQ(r_new.disc_ios, 0);
}

TEST_F(VolumeTest, DropVolatileRevertsUnflushedUpdates) {
  vol_.Mutate("acct", MutationOp::kInsert, Slice("a"), Slice("100"));
  vol_.Flush();  // "a"=100 is durable
  vol_.Mutate("acct", MutationOp::kUpdate, Slice("a"), Slice("999"));
  vol_.Mutate("acct", MutationOp::kInsert, Slice("b"), Slice("50"));
  EXPECT_EQ(vol_.VolatileCount(), 2u);
  vol_.DropVolatile();  // total node failure
  EXPECT_EQ(vol_.VolatileCount(), 0u);
  EXPECT_EQ(ToString(vol_.ReadRecord("acct", Slice("a")).value), "100");
  EXPECT_TRUE(vol_.ReadRecord("acct", Slice("b")).status.IsNotFound());
}

TEST_F(VolumeTest, DropVolatileRevertsDeletes) {
  vol_.Mutate("acct", MutationOp::kInsert, Slice("a"), Slice("100"));
  vol_.Flush();
  vol_.Mutate("acct", MutationOp::kDelete, Slice("a"), Slice());
  vol_.DropVolatile();
  EXPECT_EQ(ToString(vol_.ReadRecord("acct", Slice("a")).value), "100");
}

TEST_F(VolumeTest, DropVolatileRevertsEntrySequencedAppends) {
  vol_.CreateFile("log", FileOrganization::kEntrySequenced);
  vol_.Mutate("log", MutationOp::kInsert, Slice(), Slice("committed"));
  vol_.Flush();
  vol_.Mutate("log", MutationOp::kInsert, Slice(), Slice("lost"));
  vol_.DropVolatile();
  EXPECT_EQ(vol_.Find("log")->record_count(), 1u);
}

TEST_F(VolumeTest, MirroredDriveFailureKeepsService) {
  EXPECT_EQ(vol_.UpDrives(), 2);
  vol_.FailDrive(0);
  EXPECT_TRUE(vol_.Usable());
  auto r = vol_.Mutate("acct", MutationOp::kInsert, Slice("a"), Slice("1"));
  EXPECT_TRUE(r.status.ok());
  vol_.FailDrive(1);
  EXPECT_FALSE(vol_.Usable());
  auto r2 = vol_.Mutate("acct", MutationOp::kInsert, Slice("b"), Slice("2"));
  EXPECT_TRUE(r2.status.IsIoError());
  EXPECT_TRUE(vol_.ReadRecord("acct", Slice("a")).status.IsIoError());
}

TEST_F(VolumeTest, ReviveCopiesStaleDrive) {
  vol_.FailDrive(1);
  for (int i = 0; i < 7; ++i) {
    vol_.Mutate("acct", MutationOp::kInsert, Slice("k" + std::to_string(i)),
                Slice("v"));
  }
  auto copied = vol_.ReviveDrive(1);
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(*copied, 7u);  // whole volume copied back
  EXPECT_EQ(vol_.UpDrives(), 2);
  // Reviving an up drive is a no-op.
  auto again = vol_.ReviveDrive(1);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

TEST_F(VolumeTest, ArchiveRestoreRoundTrip) {
  FileOptions opt;
  opt.audited = true;
  opt.schema.alternate_keys = {"site"};
  vol_.CreateFile("stock", FileOrganization::kKeySequenced, opt);
  vol_.CreateFile("hist", FileOrganization::kEntrySequenced);
  for (int i = 0; i < 20; ++i) {
    Record r;
    r.Set("site", "cupertino");
    vol_.Mutate("stock", MutationOp::kInsert, Slice("s" + std::to_string(i)),
                Slice(r.Encode()));
    vol_.Mutate("hist", MutationOp::kInsert, Slice(), Slice("h" + std::to_string(i)));
  }
  vol_.Flush();
  Bytes image = vol_.Archive();

  Volume restored("$DATA1");
  ASSERT_TRUE(restored.RestoreFromArchive(Slice(image)).ok());
  EXPECT_EQ(restored.FileNames().size(), 3u);  // acct, stock, hist
  EXPECT_EQ(restored.Find("stock")->record_count(), 20u);
  EXPECT_EQ(restored.Find("hist")->record_count(), 20u);
  EXPECT_TRUE(restored.Find("stock")->audited());
  EXPECT_EQ(restored.Find("stock")->LookupAlternate("site", "cupertino")->size(),
            20u);
}

TEST_F(VolumeTest, RestoreRejectsCorruptArchive) {
  Bytes image = vol_.Archive();
  image.resize(image.size() - 1);
  Volume v("$X");
  EXPECT_FALSE(v.RestoreFromArchive(Slice(image)).ok());
}

TEST_F(VolumeTest, AlternateReadThroughVolume) {
  FileOptions opt;
  opt.schema.alternate_keys = {"site"};
  vol_.CreateFile("stock", FileOrganization::kKeySequenced, opt);
  Record r;
  r.Set("site", "neufahrn");
  vol_.Mutate("stock", MutationOp::kInsert, Slice("s1"), Slice(r.Encode()));
  auto res = vol_.ReadAlternate("stock", "site", "neufahrn");
  EXPECT_TRUE(res.status.ok());
  Slice in(res.value);
  Slice pk;
  ASSERT_TRUE(GetLengthPrefixed(&in, &pk));
  EXPECT_EQ(pk.ToString(), "s1");
}

// ---------------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------------

TEST(PartitionTest, SinglePartitionCoversEverything) {
  PartitionMap map(1, "$DATA1");
  ASSERT_TRUE(map.Validate().ok());
  EXPECT_EQ(map.Locate(Slice("")).volume_process, "$DATA1");
  EXPECT_EQ(map.Locate(Slice("\xff\xff")).node, 1);
}

TEST(PartitionTest, RangeRouting) {
  PartitionMap map;
  map.AddPartition(ToBytes("h"), 1, "$DATA1");
  map.AddPartition(ToBytes("p"), 2, "$DATA2");
  map.AddPartition({}, 3, "$DATA3");
  ASSERT_TRUE(map.Validate().ok());
  EXPECT_EQ(map.Locate(Slice("apple")).node, 1);
  EXPECT_EQ(map.Locate(Slice("h")).node, 2);  // bound is exclusive
  EXPECT_EQ(map.Locate(Slice("mango")).node, 2);
  EXPECT_EQ(map.Locate(Slice("zebra")).node, 3);
  EXPECT_EQ(map.LocateIndex(Slice("apple")), 0u);
  EXPECT_EQ(map.LocateIndex(Slice("zzz")), 2u);
}

TEST(PartitionTest, ValidationCatchesBadMaps) {
  PartitionMap empty;
  EXPECT_FALSE(empty.Validate().ok());

  PartitionMap no_tail;
  no_tail.AddPartition(ToBytes("m"), 1, "$D");
  EXPECT_FALSE(no_tail.Validate().ok());

  PartitionMap unsorted;
  unsorted.AddPartition(ToBytes("p"), 1, "$D");
  unsorted.AddPartition(ToBytes("h"), 2, "$E");
  unsorted.AddPartition({}, 3, "$F");
  EXPECT_FALSE(unsorted.Validate().ok());
}

TEST(PartitionTest, CatalogDefinesAndFinds) {
  Catalog cat;
  FileDefinition def;
  def.name = "item-master";
  def.partitions = PartitionMap(1, "$DATA1");
  EXPECT_TRUE(cat.DefineFile(def).ok());
  EXPECT_TRUE(cat.DefineFile(def).IsAlreadyExists());
  ASSERT_NE(cat.Find("item-master"), nullptr);
  EXPECT_EQ(cat.Find("nope"), nullptr);
  EXPECT_EQ(cat.FileNames().size(), 1u);

  FileDefinition bad;
  bad.name = "bad";
  EXPECT_FALSE(cat.DefineFile(bad).ok());  // empty partition map
}

}  // namespace
}  // namespace encompass::storage
