// FaultScheduleGenerator: draws a randomized-but-deterministic sequence of
// fault specifications (CPU kill, bus cut, disc-path drop, link flap,
// network partition, total node crash) for a chaos campaign. The generator
// is pure planning: it emits FaultSpecs — *what* breaks *when* and when it
// heals — and the campaign driver binds each spec to concrete cluster
// actions through a FaultInjector.
//
// Determinism contract: the same (config, seed) always yields the same
// schedule, and a schedule survives a round-trip through Dump()/Parse()
// bit-identically, so any failing campaign seed can be replayed from its
// dumped schedule without re-running the generator.
//
// Structural guarantees (what makes a generated schedule *recoverable* by
// design, mirroring the single-module-failure discipline of the paper):
//   * node crashes and network partitions occupy pairwise-disjoint global
//     windows — at most one such heavy fault is open at any time, so a
//     crashed node always has reachable survivors to negotiate with;
//   * per-node light faults (CPU, bus, drive, link) never overlap each
//     other or a crash window on the same node — one broken module per
//     node at a time;
//   * every fault with a heal action heals: the final state of the
//     schedule is all modules up.

#ifndef ENCOMPASS_SIM_FAULT_SCHEDULE_H_
#define ENCOMPASS_SIM_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace encompass::sim {

enum class FaultClass : uint8_t {
  kCpuFail = 0,   ///< kill one CPU; heal reloads it and re-pairs services
  kBusCut = 1,    ///< cut one of the two interprocessor buses
  kDriveDrop = 2, ///< fail one drive of the node's mirrored volume
  kLinkFlap = 3,  ///< cut the node<->peer network link, restore on heal
  kPartition = 4, ///< split the cluster into mask / ~mask, heal rejoins
  kNodeCrash = 5, ///< total node failure; heal reloads + ROLLFORWARD
};

/// Printable lowercase tag ("cpu", "bus", "drive", "link", "part", "crash").
const char* FaultClassName(FaultClass c);

/// One planned fault: fire at `at`, undo it `heal_after` later.
struct FaultSpec {
  SimTime at = 0;
  SimDuration heal_after = 0;  ///< 0 = no heal action
  FaultClass fault = FaultClass::kCpuFail;
  uint16_t node = 0;   ///< primary node acted on
  uint16_t peer = 0;   ///< link peer / lowest node outside a partition mask
  uint32_t mask = 0;   ///< kPartition: bitmask of node ids on side A
  int unit = 0;        ///< CPU index, bus index, or drive index

  bool operator==(const FaultSpec& o) const {
    return at == o.at && heal_after == o.heal_after && fault == o.fault &&
           node == o.node && peer == o.peer && mask == o.mask && unit == o.unit;
  }
};

/// A complete campaign schedule, ordered by firing time.
struct FaultSchedule {
  uint64_t seed = 0;  ///< generator seed (informational in replays)
  std::vector<FaultSpec> faults;

  size_t CountOf(FaultClass c) const;
  /// Simulated time by which every fault has fired and healed.
  SimTime EndTime() const;

  /// Compact line-oriented text form, one fault per line:
  ///   # fault-schedule v1 seed=<n>
  ///   crash at=2000000 heal=900000 node=2
  ///   cpu at=3100000 heal=400000 node=1 unit=3
  /// Round-trips exactly through Parse().
  std::string Dump() const;
  /// Parses a Dump() string. Returns false on malformed input.
  static bool Parse(const std::string& text, FaultSchedule* out);
};

/// Per-fault-class rate knobs and world geometry for the generator.
struct FaultScheduleConfig {
  int nodes = 3;          ///< node ids are 1..nodes
  int cpus_per_node = 4;
  int buses = 2;
  int drives_per_volume = 2;

  int faults = 8;               ///< total faults to draw
  int min_node_crashes = 1;     ///< floor on kNodeCrash draws
  SimTime start = 1'000'000;    ///< campaign storm begins here
  SimDuration window = 20'000'000;  ///< light faults land in [start, start+window]
  SimDuration min_heal = 300'000;
  SimDuration max_heal = 1'500'000;
  /// Dead time reserved after a node crash before the next heavy fault —
  /// covers reload + ROLLFORWARD negotiation with survivors.
  SimDuration crash_recovery_pad = 3'000'000;

  /// Relative draw weights; a class with weight 0 is never drawn.
  double w_cpu = 1.0;
  double w_bus = 0.5;
  double w_drive = 0.8;
  double w_link = 1.0;
  double w_partition = 0.6;
  double w_crash = 0.6;
};

/// Deterministic schedule generator. Owns its own PRNG stream (seeded per
/// Generate call), so generating a schedule never perturbs the simulation
/// RNG that drives workloads — replaying a parsed schedule and regenerating
/// it produce identical worlds.
class FaultScheduleGenerator {
 public:
  explicit FaultScheduleGenerator(FaultScheduleConfig config)
      : config_(config) {}

  const FaultScheduleConfig& config() const { return config_; }

  FaultSchedule Generate(uint64_t seed) const;

 private:
  FaultScheduleConfig config_;
};

}  // namespace encompass::sim

#endif  // ENCOMPASS_SIM_FAULT_SCHEDULE_H_
