#include "tmf/transaction_state.h"

namespace encompass::tmf {

const char* TxnStateName(TxnState state) {
  switch (state) {
    case TxnState::kActive: return "active";
    case TxnState::kEnding: return "ending";
    case TxnState::kEnded: return "ended";
    case TxnState::kAborting: return "aborting";
    case TxnState::kAborted: return "aborted";
  }
  return "unknown";
}

bool LegalTransition(TxnState from, TxnState to) {
  switch (from) {
    case TxnState::kActive:
      return to == TxnState::kEnding || to == TxnState::kAborting;
    case TxnState::kEnding:
      return to == TxnState::kEnded || to == TxnState::kAborting;
    case TxnState::kAborting:
      return to == TxnState::kAborted;
    case TxnState::kEnded:
    case TxnState::kAborted:
      return false;  // terminal: the transid leaves the system
  }
  return false;
}

}  // namespace encompass::tmf
