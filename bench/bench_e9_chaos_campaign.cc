// E9 — Chaos recovery campaign. "The failure of a single component will not
// disrupt any other component — recovery, not failure masking, is what keeps
// the data base consistent." Runs the seeded fault-storm campaign across
// many seeds and reports survival statistics: atomicity-oracle verdicts,
// quiesce rate, recovery work, and what the storms actually threw at the
// cluster.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "encompass/chaos.h"

namespace encompass::bench {
namespace {

app::ChaosCampaignConfig CampaignConfig(uint64_t seed) {
  app::ChaosCampaignConfig cfg;
  cfg.seed = seed;
  cfg.nodes = 3;
  cfg.accounts_per_node = 20;
  cfg.clients_per_node = 2;
  cfg.schedule.faults = 8;
  cfg.schedule.min_node_crashes = 1;
  return cfg;
}

void TableSurvival() {
  Header("E9.a campaign survival across seeds");
  printf("%6s %7s %8s %7s %9s %9s %9s %8s %9s\n", "seed", "faults", "crashes",
         "txns", "committed", "aborted", "unknown", "quiesced", "violations");
  size_t runs = 0, survived = 0, total_faults = 0, total_crashes = 0;
  uint64_t total_txns = 0, total_committed = 0;
  size_t total_negotiated = 0, total_redo = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    app::ChaosCampaignResult r = app::RunChaosCampaign(CampaignConfig(seed));
    bool ok = r.quiesced && r.violations.empty() &&
              r.balance_sum == r.expected_sum && r.leaked_locks == 0;
    ++runs;
    if (ok) ++survived;
    total_faults += r.faults_fired;
    total_crashes += r.node_crashes;
    total_txns += r.txns_started;
    total_committed += r.txns_committed;
    total_negotiated += r.rollforward_negotiated;
    total_redo += r.rollforward_redo_applied;
    printf("%6llu %7zu %8zu %7llu %9llu %9llu %9llu %8s %9zu\n",
           static_cast<unsigned long long>(seed), r.faults_fired,
           r.node_crashes, static_cast<unsigned long long>(r.txns_started),
           static_cast<unsigned long long>(r.txns_committed),
           static_cast<unsigned long long>(r.txns_aborted),
           static_cast<unsigned long long>(r.txns_unknown),
           r.quiesced ? "yes" : "NO", r.violations.size());
  }
  printf("survived %zu/%zu storms; %zu faults (%zu node crashes), "
         "%llu txns (%llu committed), rollforward negotiated %zu, "
         "redo images %zu\n",
         survived, runs, total_faults, total_crashes,
         static_cast<unsigned long long>(total_txns),
         static_cast<unsigned long long>(total_committed), total_negotiated,
         total_redo);
  ReportValue("runs", static_cast<double>(runs));
  ReportValue("survived", static_cast<double>(survived));
  ReportValue("faults_fired", static_cast<double>(total_faults));
  ReportValue("node_crashes", static_cast<double>(total_crashes));
  ReportValue("txns_started", static_cast<double>(total_txns));
  ReportValue("txns_committed", static_cast<double>(total_committed));
  ReportValue("rollforward_negotiated", static_cast<double>(total_negotiated));
  ReportValue("rollforward_redo_applied", static_cast<double>(total_redo));
}

void TableStormShape() {
  Header("E9.b what one storm throws (seed 1 schedule)");
  app::ChaosCampaignConfig cfg = CampaignConfig(1);
  sim::FaultScheduleConfig scfg = cfg.schedule;
  scfg.nodes = cfg.nodes;
  scfg.cpus_per_node = 4;
  sim::FaultSchedule schedule = sim::FaultScheduleGenerator(scfg).Generate(1);
  printf("%s", schedule.Dump().c_str());
  printf("(every fault heals; heavy faults get disjoint windows; the dump\n"
         " above replays bit-identically via ReplayChaosCampaign)\n");
}

void BM_ChaosCampaign(benchmark::State& state) {
  uint64_t seed = 100;
  for (auto _ : state) {
    app::ChaosCampaignResult r = app::RunChaosCampaign(CampaignConfig(seed++));
    benchmark::DoNotOptimize(r.balance_sum);
    if (!r.quiesced || !r.violations.empty()) {
      state.SkipWithError("campaign failed");
      break;
    }
  }
}
BENCHMARK(BM_ChaosCampaign)->Iterations(2)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace encompass::bench

int main(int argc, char** argv) {
  encompass::bench::InitReport("e9_chaos_campaign");
  encompass::bench::ReportMeta(/*seed=*/1);
  printf("E9: chaos recovery campaign — fault storms vs the atomicity oracle\n");
  encompass::bench::TableSurvival();
  encompass::bench::TableStormShape();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  encompass::bench::WriteReport();
  return 0;
}
