// CommitAcceptor: the acceptor half of Paxos Commit (Gray & Lamport,
// "Consensus on Transaction Commit"), specialised to this codebase's two
// deployment forms. In the decision-replication form (PR 9) each distributed
// transaction is one consensus instance whose value is the home TMP's
// commit/abort decision; the home proposes at ballot (0, home) — its prepare
// phase rode the kTmfPhase1 fan-out for free — and the commit point becomes
// "a majority of acceptors durably accepted kCommitted" instead of the
// home's MAT force. In the fast-path form (the paper's F+1-message
// topology) every participant runs its own instance, keyed (transid, voter
// node): participants send one-way prepared-votes straight to the acceptors
// (the vote to a co-located acceptor never crosses the network), acceptors
// ack forced votes directly to the home, and the transaction commits when
// every voter's instance chose Prepared. Recovery proposers (in-doubt
// participants, ROLLFORWARD, a respawned home) run full prepare+accept
// rounds at ballots (attempt >= 1, proposer), adopting the value of the
// highest accepted ballot a majority reveals and defaulting to abort when
// none was accepted, so any live majority can settle an in-doubt
// transaction without waiting for the home to return. Decided instances are
// garbage-collected once phase 2 landed everywhere; a bounded ring of
// sealed final dispositions answers resolvers that arrive late.

#ifndef ENCOMPASS_TMF_COMMIT_ACCEPTOR_H_
#define ENCOMPASS_TMF_COMMIT_ACCEPTOR_H_

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "os/process_pair.h"
#include "tmf/tmf_protocol.h"

namespace encompass::tmf {

/// Durable acceptor state of one consensus instance. Legacy deployments key
/// one instance per transaction (voter 0); the fast path keys one per
/// (transaction, voter node).
struct CommitAcceptorEntry {
  uint32_t promised = 0;         ///< highest ballot promised
  uint32_t accepted_ballot = 0;  ///< ballot of the accepted value (0 = none)
  bool has_value = false;
  Disposition value = Disposition::kUnknown;
  /// Fast path, home-voter instance only: the participant set the home's
  /// vote carried (what a resolver must settle before declaring commit).
  std::vector<net::NodeId> participants;
  /// When the instance was created (drives the orphan sweep).
  SimTime born = 0;
};

/// The acceptor's forced log. It lives in NodeStorage next to the MAT, so it
/// survives process takeover and total node crashes; every granting mutation
/// is charged a force latency before the reply leaves the acceptor.
struct CommitAcceptorLog {
  /// Live instances, keyed (packed transid, voter node; voter 0 = legacy).
  std::map<std::pair<uint64_t, uint16_t>, CommitAcceptorEntry> entries;

  /// Final transaction dispositions of reclaimed instances, bounded FIFO:
  /// a resolver of a GC'd transaction gets the sealed decision instead of
  /// (unsoundly) re-running consensus against an empty instance.
  std::map<uint64_t, Disposition> sealed;
  std::deque<uint64_t> sealed_order;
  size_t sealed_cap = 4096;

  /// High-water mark of live instances (the boundedness headline).
  size_t peak_instances = 0;

  CommitAcceptorEntry& At(const Transid& t, uint16_t voter = 0) {
    CommitAcceptorEntry& e = entries[{t.Pack(), voter}];
    if (entries.size() > peak_instances) peak_instances = entries.size();
    return e;
  }

  const Disposition* SealedValue(uint64_t packed) const {
    auto it = sealed.find(packed);
    return it == sealed.end() ? nullptr : &it->second;
  }

  /// Drops every instance of `packed` and records its final disposition.
  void Seal(uint64_t packed, Disposition d) {
    auto it = entries.lower_bound({packed, 0});
    while (it != entries.end() && it->first.first == packed) {
      it = entries.erase(it);
    }
    if (sealed.emplace(packed, d).second) {
      sealed_order.push_back(packed);
      while (sealed_order.size() > sealed_cap) {
        sealed.erase(sealed_order.front());
        sealed_order.pop_front();
      }
    }
  }
};

struct CommitAcceptorConfig {
  CommitAcceptorLog* log = nullptr;
  /// Latency of the forced log write preceding every granting reply (the
  /// durability the commit point leans on). Rejections touch no state and
  /// reply immediately.
  SimDuration force_latency = Millis(8);
  /// Index k of this $ACCEPT.<k> pair within the acceptor group — the bit
  /// this acceptor sets in the home's fast-path vote tally.
  uint8_t index = 0;
  /// Orphan sweep: > 0 arms a periodic scan that asks the home TMP for the
  /// disposition of instances older than `sweep_age` (reclaims whose
  /// broadcast this acceptor missed). 0 = off (legacy deployments).
  SimDuration sweep_interval = 0;
  SimDuration sweep_age = Seconds(4);
};

/// The $ACCEPT process pair(s), registered on the acceptor nodes of a paxos
/// deployment — one pair per node in the legacy form, `$ACCEPT.<k>` pairs
/// spread round-robin across all nodes under the fast path (so
/// commit_replication may exceed the node count).
class CommitAcceptor : public os::PairedProcess {
 public:
  explicit CommitAcceptor(CommitAcceptorConfig config) : config_(config) {}

  std::string DebugName() const override { return pair_name() + "/acceptor"; }

 protected:
  void OnPairAttach() override;
  void OnRequest(const net::Message& msg) override;

 private:
  void HandlePrepare(const net::Message& msg);
  void HandleAccept(const net::Message& msg);
  void HandleVote(const net::Message& msg);
  void HandleReclaim(const net::Message& msg);
  void ReplyForced(const net::Message& msg, Bytes payload);
  /// Adds (t, voter) to the per-transaction ack bundle and arms the
  /// same-instant flush: votes whose forces complete together reach the
  /// home as one kTmfPaxosVoteAck.
  void QueueVoteAck(const Transid& t, uint16_t voter);
  void FlushVoteAcks();
  void ArmSweep();
  void Sweep();

  CommitAcceptorConfig config_;
  sim::MetricId m_prepares_, m_accepts_, m_rejections_;
  sim::MetricId m_votes_, m_duplicate_votes_, m_reclaims_, m_sealed_answers_;
  sim::MetricId m_log_instances_;
  std::map<uint64_t, std::set<uint16_t>> pending_acks_;
  bool ack_flush_armed_ = false;
  std::set<uint64_t> sweep_in_flight_;
};

/// Where a proposer finds the acceptor set. `endpoints` (node, process name)
/// wins when non-empty — the fast path's multi-pair placement; otherwise
/// the legacy one-$ACCEPT-per-node derivation from `acceptor_nodes`.
struct PaxosRoundConfig {
  std::vector<net::NodeId> acceptor_nodes;
  std::string acceptor_process = "$ACCEPT";
  std::vector<std::pair<net::NodeId, std::string>> endpoints;
  /// Consensus-instance key this round settles (0 = legacy decision
  /// instance; fast-path rounds name a voter node).
  uint16_t voter = 0;
  SimDuration call_timeout = Seconds(2);

  std::vector<std::pair<net::NodeId, std::string>> Endpoints() const {
    if (!endpoints.empty()) return endpoints;
    std::vector<std::pair<net::NodeId, std::string>> out;
    out.reserve(acceptor_nodes.size());
    for (net::NodeId n : acceptor_nodes) out.emplace_back(n, acceptor_process);
    return out;
  }
};

/// What one Paxos round learned.
struct PaxosRoundOutcome {
  Disposition value = Disposition::kUnknown;
  /// The instance was already reclaimed: `value` is the transaction's final
  /// sealed disposition and no further voter instances need settling.
  bool sealed = false;
  /// Participant set revealed by the home-voter instance's accepted value.
  std::vector<net::NodeId> participants;
};

/// Runs one Paxos round for instance (t, cfg.voter) at ballot
/// MakePaxosBallot(attempt, proc->node()->id()): an optional prepare phase
/// (skipped only for the home's attempt-0 proposal, whose promise rode
/// phase 1), then the accept phase over every acceptor. `done` fires exactly
/// once: kCommitted / kAborted when that value reached a majority of
/// acceptors at this ballot (the chosen value — possibly adopted from an
/// earlier proposer), kUnknown when the round failed (majority unreachable
/// or outpaced by a higher ballot) and the caller should escalate `attempt`.
/// A sealed reply from any acceptor short-circuits the round with the final
/// transaction disposition.
void RunPaxosRoundEx(os::Process* proc, const PaxosRoundConfig& cfg,
                     const Transid& t, uint32_t attempt, Disposition proposed,
                     bool skip_prepare,
                     std::function<void(const PaxosRoundOutcome&)> done);

/// Legacy wrapper: value-only callback.
void RunPaxosRound(os::Process* proc, const PaxosRoundConfig& cfg,
                   const Transid& t, uint32_t attempt, Disposition proposed,
                   bool skip_prepare, std::function<void(Disposition)> done);

/// Universal in-doubt resolution against the acceptors, shared by in-doubt
/// participants, ROLLFORWARD, and respawned homes. Legacy form: one
/// abort-proposing round on the decision instance. Fast path: an
/// abort-proposing round on the home-voter instance first — a chosen
/// Prepared there reveals the participant set, whose voter instances are
/// then settled in parallel (all Prepared => committed, any Aborted =>
/// aborted, any failed round => kUnknown, caller retries at a higher
/// attempt). Sealed answers short-circuit everything.
void ResolvePaxosOutcome(os::Process* proc, const PaxosRoundConfig& cfg,
                         const Transid& t, uint32_t attempt, bool fast_path,
                         std::function<void(Disposition)> done);

}  // namespace encompass::tmf

#endif  // ENCOMPASS_TMF_COMMIT_ACCEPTOR_H_
