file(REMOVE_RECURSE
  "CMakeFiles/distributed_banking.dir/distributed_banking.cpp.o"
  "CMakeFiles/distributed_banking.dir/distributed_banking.cpp.o.d"
  "distributed_banking"
  "distributed_banking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_banking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
