// FileSystem: the client-side library through which application processes
// access the (possibly partitioned, possibly remote) data base. It
//   * routes each operation to the DISCPROCESS owning the key's partition,
//   * stamps the caller's current transid on every request (done by the
//     Process messaging layer), and
//   * performs "remote transaction begin": before the first transmission of
//     a transid to another node, the local TMP is asked to register that
//     node as a participant (a critical-response exchange with the remote
//     TMP).

#ifndef ENCOMPASS_TMF_FILE_SYSTEM_H_
#define ENCOMPASS_TMF_FILE_SYSTEM_H_

#include <functional>
#include <set>
#include <string>

#include "discprocess/disc_protocol.h"
#include "os/process.h"
#include "storage/partition.h"
#include "tmf/tmf_protocol.h"

namespace encompass::tmf {

/// Per-process file-system access layer. Lives inside a Process (server,
/// TCP, ...); all calls are asynchronous.
class FileSystem {
 public:
  /// Completion callback: status plus the raw reply payload (operation
  /// specific; see disc_protocol.h).
  using Callback = std::function<void(const Status&, const Bytes&)>;

  FileSystem(os::Process* owner, const storage::Catalog* catalog)
      : owner_(owner), catalog_(catalog) {}

  /// Point read; `lock` requests the record lock for the current transid.
  void Read(const std::string& file, const Slice& key, bool lock, Callback cb);
  /// Positioned read; reply payload decodes with SeekReply.
  void Seek(const std::string& file, const Slice& key, bool inclusive,
            Callback cb);
  /// Batched browse scan from a position (reply decodes with ScanReply).
  /// Stays within the partition owning `key`; callers cross partitions by
  /// re-issuing from the partition bound. max_records 0 = server default.
  void Scan(const std::string& file, const Slice& key, bool inclusive,
            uint32_t max_records, Callback cb);
  /// Insert; reply payload is the assigned key.
  void Insert(const std::string& file, const Slice& key, const Slice& record,
              Callback cb);
  void Update(const std::string& file, const Slice& key, const Slice& record,
              Callback cb);
  void Delete(const std::string& file, const Slice& key, Callback cb);
  /// Alternate-key lookup on the partition owning `partition_key` (indices
  /// are partition-local); reply payload is length-prefixed primary keys.
  void ReadAlternate(const std::string& file, const std::string& field,
                     const std::string& value, const Slice& partition_key,
                     Callback cb);
  /// File-granularity lock on every partition of the file.
  void LockFile(const std::string& file, Callback cb);

  /// Registers `dest` as a participant of the caller's current transaction
  /// (no-op if local, already registered, or no transaction). Public because
  /// the TCP also needs it before SENDing to a remote server.
  void EnsureRemote(net::NodeId dest, std::function<void(const Status&)> cb);

  /// Lock-wait timeout applied to disc requests (0 = DISCPROCESS default).
  void set_lock_timeout(SimDuration t) { lock_timeout_ = t; }

 private:
  void DiscOp(uint32_t tag, const std::string& file, const Slice& routing_key,
              discprocess::DiscRequest req, Callback cb);
  void SendToPartition(uint32_t tag, const storage::PartitionEntry& part,
                       discprocess::DiscRequest req, Callback cb);

  os::Process* owner_;
  const storage::Catalog* catalog_;
  SimDuration lock_timeout_ = 0;
  /// (transid, node) pairs already registered — avoids repeat TMP round
  /// trips from this process. The TMP itself dedups across processes.
  std::set<std::pair<uint64_t, net::NodeId>> ensured_;
};

}  // namespace encompass::tmf

#endif  // ENCOMPASS_TMF_FILE_SYSTEM_H_
