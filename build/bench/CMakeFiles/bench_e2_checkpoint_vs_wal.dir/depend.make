# Empty dependencies file for bench_e2_checkpoint_vs_wal.
# This may be replaced when dependencies are built.
