#include "sim/fault_schedule.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/random.h"

namespace encompass::sim {

namespace {

constexpr int kNumClasses = 6;

/// A closed interval of simulated time during which a module is unavailable.
struct Interval {
  SimTime begin;
  SimTime end;
};

bool Overlaps(const Interval& iv, SimTime at, SimTime until) {
  return at < iv.end && iv.begin < until;
}

/// Slides `at` forward past every blocked interval that [at, at+busy)
/// overlaps. Terminates: each pass either finds no overlap or moves `at`
/// strictly past one interval's end, and intervals are finite.
SimTime PlaceAvoiding(SimTime at, SimDuration busy,
                      const std::vector<const std::vector<Interval>*>& blocked,
                      Random* rng) {
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto* list : blocked) {
      for (const auto& iv : *list) {
        if (Overlaps(iv, at, at + busy)) {
          at = iv.end + static_cast<SimDuration>(rng->Range(10'000, 100'000));
          moved = true;
        }
      }
    }
  }
  return at;
}

}  // namespace

const char* FaultClassName(FaultClass c) {
  switch (c) {
    case FaultClass::kCpuFail: return "cpu";
    case FaultClass::kBusCut: return "bus";
    case FaultClass::kDriveDrop: return "drive";
    case FaultClass::kLinkFlap: return "link";
    case FaultClass::kPartition: return "part";
    case FaultClass::kNodeCrash: return "crash";
  }
  return "?";
}

size_t FaultSchedule::CountOf(FaultClass c) const {
  size_t n = 0;
  for (const auto& f : faults) {
    if (f.fault == c) ++n;
  }
  return n;
}

SimTime FaultSchedule::EndTime() const {
  SimTime end = 0;
  for (const auto& f : faults) {
    end = std::max(end, f.at + f.heal_after);
  }
  return end;
}

std::string FaultSchedule::Dump() const {
  std::ostringstream out;
  out << "# fault-schedule v1 seed=" << seed << "\n";
  char line[160];
  for (const auto& f : faults) {
    snprintf(line, sizeof(line),
             "%s at=%lld heal=%lld node=%u peer=%u mask=%u unit=%d\n",
             FaultClassName(f.fault), static_cast<long long>(f.at),
             static_cast<long long>(f.heal_after), f.node, f.peer, f.mask,
             f.unit);
    out << line;
  }
  return out.str();
}

bool FaultSchedule::Parse(const std::string& text, FaultSchedule* out) {
  out->seed = 0;
  out->faults.clear();
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      unsigned long long seed = 0;
      if (sscanf(line.c_str(), "# fault-schedule v1 seed=%llu", &seed) == 1) {
        out->seed = seed;
      }
      continue;
    }
    char tag[16];
    long long at = 0;
    long long heal = 0;
    unsigned node = 0;
    unsigned peer = 0;
    unsigned mask = 0;
    int unit = 0;
    if (sscanf(line.c_str(),
               "%15s at=%lld heal=%lld node=%u peer=%u mask=%u unit=%d", tag,
               &at, &heal, &node, &peer, &mask, &unit) != 7) {
      return false;
    }
    FaultSpec spec;
    bool known = false;
    for (int c = 0; c < kNumClasses; ++c) {
      if (strcmp(tag, FaultClassName(static_cast<FaultClass>(c))) == 0) {
        spec.fault = static_cast<FaultClass>(c);
        known = true;
        break;
      }
    }
    if (!known) return false;
    spec.at = at;
    spec.heal_after = heal;
    spec.node = static_cast<uint16_t>(node);
    spec.peer = static_cast<uint16_t>(peer);
    spec.mask = mask;
    spec.unit = unit;
    out->faults.push_back(spec);
  }
  return true;
}

FaultSchedule FaultScheduleGenerator::Generate(uint64_t seed) const {
  // Private PRNG stream: schedule generation must not consume from the
  // simulation RNG, or replaying a parsed schedule (which skips generation)
  // would shift every workload draw.
  Random rng(seed ^ 0xFA57'5CED'0000'0001ULL);
  FaultSchedule sched;
  sched.seed = seed;

  const int nodes = std::max(1, config_.nodes);
  double weights[kNumClasses] = {config_.w_cpu,       config_.w_bus,
                                 config_.w_drive,     config_.w_link,
                                 config_.w_partition, config_.w_crash};
  if (nodes < 2) {
    // Link and partition faults need a peer; crashes need a survivor to
    // negotiate ROLLFORWARD dispositions with.
    weights[static_cast<int>(FaultClass::kLinkFlap)] = 0;
    weights[static_cast<int>(FaultClass::kPartition)] = 0;
    weights[static_cast<int>(FaultClass::kNodeCrash)] = 0;
  }
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) return sched;

  // -- Draw the class multiset ------------------------------------------------
  std::vector<FaultClass> classes;
  classes.reserve(static_cast<size_t>(config_.faults));
  for (int i = 0; i < config_.faults; ++i) {
    double pick = rng.NextDouble() * total;
    int c = 0;
    for (; c < kNumClasses - 1; ++c) {
      pick -= weights[c];
      if (pick < 0) break;
    }
    classes.push_back(static_cast<FaultClass>(c));
  }
  if (nodes >= 2) {
    int crashes = static_cast<int>(
        std::count(classes.begin(), classes.end(), FaultClass::kNodeCrash));
    while (crashes < config_.min_node_crashes) {
      // Convert a deterministic-randomly chosen non-crash draw; append if
      // every draw is already a crash.
      bool converted = false;
      if (!classes.empty()) {
        size_t at = rng.Uniform(classes.size());
        for (size_t probe = 0; probe < classes.size(); ++probe) {
          size_t idx = (at + probe) % classes.size();
          if (classes[idx] != FaultClass::kNodeCrash) {
            classes[idx] = FaultClass::kNodeCrash;
            converted = true;
            break;
          }
        }
      }
      if (!converted) classes.push_back(FaultClass::kNodeCrash);
      ++crashes;
    }
  }

  // -- Place heavy faults (crash, partition) on a disjoint global chain -------
  // Sequential placement with randomized gaps guarantees at most one heavy
  // fault open at a time without rejection sampling.
  std::vector<std::vector<Interval>> crash_windows(
      static_cast<size_t>(nodes) + 1);
  std::vector<std::vector<Interval>> busy(static_cast<size_t>(nodes) + 1);
  SimTime heavy_cursor =
      config_.start + static_cast<SimDuration>(rng.Range(0, 500'000));
  for (auto c : classes) {
    if (c != FaultClass::kNodeCrash && c != FaultClass::kPartition) continue;
    FaultSpec spec;
    spec.fault = c;
    spec.at = heavy_cursor +
              static_cast<SimDuration>(rng.Range(300'000, 1'200'000));
    spec.heal_after = static_cast<SimDuration>(
        rng.Range(static_cast<uint64_t>(config_.min_heal),
                  static_cast<uint64_t>(config_.max_heal)));
    if (c == FaultClass::kNodeCrash) {
      spec.node = static_cast<uint16_t>(rng.Range(1, static_cast<uint64_t>(nodes)));
      Interval window{spec.at,
                      spec.at + spec.heal_after + config_.crash_recovery_pad};
      crash_windows[spec.node].push_back(window);
      heavy_cursor = window.end;
    } else {
      uint32_t mask = 0;
      for (int n = 1; n <= nodes; ++n) {
        if (rng.Bernoulli(0.5)) mask |= 1u << n;
      }
      const uint32_t all = ((1u << nodes) - 1u) << 1;
      if (mask == 0) mask = 2;            // side A at least node 1
      if (mask == all) mask &= ~(1u << nodes);  // side B nonempty
      spec.mask = mask;
      for (int n = 1; n <= nodes; ++n) {
        if (mask & (1u << n)) { spec.node = static_cast<uint16_t>(n); break; }
      }
      for (int n = 1; n <= nodes; ++n) {
        if (!(mask & (1u << n))) { spec.peer = static_cast<uint16_t>(n); break; }
      }
      heavy_cursor = spec.at + spec.heal_after +
                     static_cast<SimDuration>(rng.Range(300'000, 800'000));
    }
    sched.faults.push_back(spec);
  }

  // -- Place light faults avoiding same-node overlap and crash windows --------
  for (auto c : classes) {
    if (c == FaultClass::kNodeCrash || c == FaultClass::kPartition) continue;
    FaultSpec spec;
    spec.fault = c;
    spec.node = static_cast<uint16_t>(rng.Range(1, static_cast<uint64_t>(nodes)));
    spec.heal_after = static_cast<SimDuration>(
        rng.Range(static_cast<uint64_t>(config_.min_heal),
                  static_cast<uint64_t>(config_.max_heal)));
    SimTime at = config_.start +
                 static_cast<SimTime>(rng.Uniform(
                     static_cast<uint64_t>(std::max<SimDuration>(config_.window, 1))));
    std::vector<const std::vector<Interval>*> blocked = {
        &busy[spec.node], &crash_windows[spec.node]};
    switch (c) {
      case FaultClass::kCpuFail:
        spec.unit = static_cast<int>(rng.Uniform(
            static_cast<uint64_t>(std::max(1, config_.cpus_per_node))));
        break;
      case FaultClass::kBusCut:
        spec.unit = static_cast<int>(
            rng.Uniform(static_cast<uint64_t>(std::max(1, config_.buses))));
        break;
      case FaultClass::kDriveDrop:
        spec.unit = static_cast<int>(rng.Uniform(
            static_cast<uint64_t>(std::max(1, config_.drives_per_volume))));
        break;
      case FaultClass::kLinkFlap: {
        uint16_t peer = spec.node;
        while (peer == spec.node) {
          peer = static_cast<uint16_t>(rng.Range(1, static_cast<uint64_t>(nodes)));
        }
        spec.peer = peer;
        blocked.push_back(&busy[peer]);
        blocked.push_back(&crash_windows[peer]);
        break;
      }
      default:
        break;
    }
    // Reserve slack past the heal for repair (CPU reload/pair respawn,
    // drive revive copy) before the next fault hits the same module.
    const SimDuration repair_pad = 500'000;
    spec.at = PlaceAvoiding(at, spec.heal_after + repair_pad, blocked, &rng);
    Interval occupied{spec.at, spec.at + spec.heal_after + repair_pad};
    busy[spec.node].push_back(occupied);
    if (c == FaultClass::kLinkFlap) busy[spec.peer].push_back(occupied);
    sched.faults.push_back(spec);
  }

  std::stable_sort(sched.faults.begin(), sched.faults.end(),
                   [](const FaultSpec& a, const FaultSpec& b) {
                     return a.at < b.at;
                   });
  return sched;
}

}  // namespace encompass::sim
