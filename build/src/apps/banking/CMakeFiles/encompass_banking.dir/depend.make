# Empty dependencies file for encompass_banking.
# This may be replaced when dependencies are built.
