// ROLLFORWARD after total node failure: archive the data base online, run
// more transactions, then kill every processor of the node at once (the
// multi-module failure NonStop cannot mask). Unforced data is lost with the
// node's memory — but phase-1 of commit forced every committed
// transaction's audit images, so restoring the archive and reapplying
// committed after-images reconstructs the data base exactly. A transaction
// left in "ending" state is resolved by negotiating with the other node.
//
// Build & run:  ./build/examples/rollforward_recovery

#include <cstdio>

#include "apps/banking/banking.h"
#include "encompass/deployment.h"
#include "encompass/tcp.h"
#include "tmf/rollforward.h"

using namespace encompass;
using namespace encompass::app;
using namespace encompass::apps::banking;

int main() {
  sim::Simulation sim(3);
  Deployment deploy(&sim);
  for (net::NodeId id : {1, 2}) {
    NodeSpec spec;
    spec.id = id;
    spec.node_config.num_cpus = 4;
    spec.volumes = {
        VolumeSpec{"$DATA" + std::to_string(id), {FileSpec{"acct"}}, {}}};
    deploy.AddNode(spec);
  }
  deploy.LinkAll();
  deploy.DefineFile("acct", 1, "$DATA1");

  auto* vol = deploy.GetNode(1)->storage().volumes.at("$DATA1").get();
  auto* trail = deploy.GetNode(1)->storage().trails.at("$DATA1.AT").get();
  SeedAccounts(vol, "acct", 20, 1000);
  AddBankServerClass(&deploy, 1, "$SC.BANK", "acct");

  // Archive the audited data base (quiescent point).
  Bytes archive = vol->Archive();
  uint64_t archive_lsn = trail->durable_lsn();
  printf("archived $DATA1 (%zu bytes) at audit LSN %llu\n", archive.size(),
         static_cast<unsigned long long>(archive_lsn));

  // Run committed work after the archive.
  ScreenProgram transfer = MakeTransferProgram(1, "$SC.BANK", 20, 100);
  TcpConfig cfg;
  cfg.programs = {{"transfer", &transfer}};
  auto tcp = os::SpawnPair<Tcp>(deploy.GetNode(1)->node(), "$TCP1", 2, 3, cfg);
  sim.Run();
  for (int t = 0; t < 2; ++t) {
    tcp.primary->AttachTerminal("term" + std::to_string(t), "transfer", 15);
  }
  sim.Run();
  long long pre_crash_sum = SumBalances(vol, "acct");
  printf("ran %llu transfers; sum of balances = $%lld\n",
         static_cast<unsigned long long>(tcp.primary->transactions_committed()),
         pre_crash_sum);

  // Total node failure.
  printf("\n[total node failure: all 4 processors of node 1 fail at once]\n");
  deploy.CrashNode(1);
  sim.RunFor(Millis(200));
  printf("unforced volume updates lost: volume reverted to last flush\n");

  // Reload and recover.
  deploy.RestartNode(1);
  sim.RunFor(Millis(200));
  tmf::RollforwardInput input;
  input.volume = vol;
  input.archive = &archive;
  input.trail = trail;
  input.archive_lsn = archive_lsn;
  input.monitor_trail = &deploy.GetNode(1)->storage().monitor_trail;
  input.resolve_remote = [&](const Transid& t) {
    // Negotiate with node 2 about transactions in "ending" state.
    int r = deploy.GetNode(2)->storage().monitor_trail.Lookup(t);
    if (r == 1) return tmf::Disposition::kCommitted;
    if (r == 0) return tmf::Disposition::kAborted;
    return tmf::Disposition::kUnknown;
  };
  auto report = tmf::Rollforward(input);
  if (!report.ok()) {
    printf("rollforward failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  printf("\n-- rollforward report -------------------------------------\n");
  printf("after-images considered : %zu\n", report->redo_considered);
  printf("after-images applied    : %zu\n", report->redo_applied);
  printf("transactions replayed   : %zu\n", report->txns_committed);
  printf("transactions discarded  : %zu\n", report->txns_discarded);

  long long post_sum = SumBalances(vol, "acct");
  printf("sum of balances after recovery = $%lld (before crash: $%lld)\n",
         post_sum, pre_crash_sum);
  bool ok = post_sum == 20000 && pre_crash_sum == 20000 &&
            report->redo_applied > 0;
  printf("\n%s\n", ok ? "ROLLFORWARD OK" : "ROLLFORWARD FAILED");
  return ok ? 0 : 1;
}
