file(REMOVE_RECURSE
  "CMakeFiles/encompass_sim.dir/event_queue.cc.o"
  "CMakeFiles/encompass_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/encompass_sim.dir/fault_injector.cc.o"
  "CMakeFiles/encompass_sim.dir/fault_injector.cc.o.d"
  "CMakeFiles/encompass_sim.dir/simulation.cc.o"
  "CMakeFiles/encompass_sim.dir/simulation.cc.o.d"
  "CMakeFiles/encompass_sim.dir/stats.cc.o"
  "CMakeFiles/encompass_sim.dir/stats.cc.o.d"
  "libencompass_sim.a"
  "libencompass_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encompass_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
