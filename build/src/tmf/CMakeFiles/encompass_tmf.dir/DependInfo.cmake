
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmf/backout_process.cc" "src/tmf/CMakeFiles/encompass_tmf.dir/backout_process.cc.o" "gcc" "src/tmf/CMakeFiles/encompass_tmf.dir/backout_process.cc.o.d"
  "/root/repo/src/tmf/file_system.cc" "src/tmf/CMakeFiles/encompass_tmf.dir/file_system.cc.o" "gcc" "src/tmf/CMakeFiles/encompass_tmf.dir/file_system.cc.o.d"
  "/root/repo/src/tmf/rollforward.cc" "src/tmf/CMakeFiles/encompass_tmf.dir/rollforward.cc.o" "gcc" "src/tmf/CMakeFiles/encompass_tmf.dir/rollforward.cc.o.d"
  "/root/repo/src/tmf/tmp_process.cc" "src/tmf/CMakeFiles/encompass_tmf.dir/tmp_process.cc.o" "gcc" "src/tmf/CMakeFiles/encompass_tmf.dir/tmp_process.cc.o.d"
  "/root/repo/src/tmf/transaction_state.cc" "src/tmf/CMakeFiles/encompass_tmf.dir/transaction_state.cc.o" "gcc" "src/tmf/CMakeFiles/encompass_tmf.dir/transaction_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/encompass_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/encompass_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/encompass_os.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/encompass_audit.dir/DependInfo.cmake"
  "/root/repo/build/src/discprocess/CMakeFiles/encompass_discprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/encompass_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/encompass_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
