// Named counters and latency histograms collected during a simulation run.
// Benchmarks and EXPERIMENTS.md rows are generated from these.

#ifndef ENCOMPASS_SIM_STATS_H_
#define ENCOMPASS_SIM_STATS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace encompass::sim {

/// A simple sample-keeping histogram (the simulation produces at most a few
/// million samples per run, so exact percentiles are affordable).
class Histogram {
 public:
  void Add(int64_t v) {
    samples_.push_back(v);
    sorted_ = false;
  }
  size_t count() const { return samples_.size(); }
  int64_t Min() const;
  int64_t Max() const;
  double Mean() const;
  /// p in [0, 100]. Returns 0 for an empty histogram.
  int64_t Percentile(double p) const;

 private:
  void Sort() const;
  mutable std::vector<int64_t> samples_;
  mutable bool sorted_ = true;
};

/// Registry of counters and histograms, keyed by dotted names
/// ("tmf.commit", "disc.io.read", ...).
class Stats {
 public:
  void Incr(const std::string& name, int64_t delta = 1) { counters_[name] += delta; }
  int64_t Counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  void Record(const std::string& name, int64_t value) { histograms_[name].Add(value); }
  const Histogram* FindHistogram(const std::string& name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }

  const std::map<std::string, int64_t>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  void Clear() {
    counters_.clear();
    histograms_.clear();
  }

  /// Multi-line human-readable dump of all counters and histogram summaries.
  std::string ToString() const;

 private:
  std::map<std::string, int64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace encompass::sim

#endif  // ENCOMPASS_SIM_STATS_H_
