// Tests for the OS layer: processes, messaging, timers, name service, CPU
// failure/regroup, process pairs, takeover, and inter-node routing —
// including the network-layer behaviours of the paper's architecture
// section (rerouting, partitions, reachability events).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/coding.h"
#include "net/network.h"
#include "os/cluster.h"
#include "os/node.h"
#include "os/process.h"
#include "os/process_pair.h"
#include "sim/simulation.h"

namespace encompass::os {
namespace {

constexpr uint32_t kEchoTag = net::kTagApp + 1;
constexpr uint32_t kNoteTag = net::kTagApp + 2;

/// Replies to every request with the same payload.
class EchoProcess : public Process {
 public:
  void OnMessage(const net::Message& msg) override {
    ++requests_seen;
    last_transid = msg.transid;
    Reply(msg, Status::Ok(), msg.payload);
  }
  int requests_seen = 0;
  uint64_t last_transid = 0;
};

/// Records one-way notes and failure events.
class ObserverProcess : public Process {
 public:
  void OnMessage(const net::Message& msg) override {
    notes.push_back(ToString(msg.payload));
  }
  void OnCpuDown(int cpu) override { cpu_down.push_back(cpu); }
  void OnCpuUp(int cpu) override { cpu_up.push_back(cpu); }
  void OnNodeDown(net::NodeId n) override { node_down.push_back(n); }
  void OnNodeUp(net::NodeId n) override { node_up.push_back(n); }

  std::vector<std::string> notes;
  std::vector<int> cpu_down, cpu_up;
  std::vector<net::NodeId> node_down, node_up;
};

class OsTest : public ::testing::Test {
 protected:
  OsTest() : sim_(1234), cluster_(&sim_) {}
  sim::Simulation sim_;
  Cluster cluster_;
};

TEST_F(OsTest, SpawnAssignsIdentity) {
  Node* n = cluster_.AddNode(1);
  auto* p = n->Spawn<EchoProcess>(0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->id().node, 1);
  EXPECT_NE(p->id().pid, 0u);
  EXPECT_EQ(p->cpu(), 0);
  EXPECT_EQ(n->Find(p->id().pid), p);
}

TEST_F(OsTest, SpawnOnDownCpuFails) {
  Node* n = cluster_.AddNode(1);
  n->FailCpu(2);
  sim_.Run();
  EXPECT_EQ(n->Spawn<EchoProcess>(2), nullptr);
}

TEST_F(OsTest, OneWaySendSameNode) {
  Node* n = cluster_.AddNode(1);
  auto* obs = n->Spawn<ObserverProcess>(0);
  auto* src = n->Spawn<EchoProcess>(1);
  sim_.Run();
  src->Send(net::Address(obs->id()), kNoteTag, ToBytes("hi"));
  sim_.Run();
  ASSERT_EQ(obs->notes.size(), 1u);
  EXPECT_EQ(obs->notes[0], "hi");
}

TEST_F(OsTest, CallReplyRoundTrip) {
  Node* n = cluster_.AddNode(1);
  auto* echo = n->Spawn<EchoProcess>(0);
  auto* client = n->Spawn<EchoProcess>(1);
  sim_.Run();
  Status got;
  std::string body;
  client->Call(net::Address(echo->id()), kEchoTag, ToBytes("ping"),
               [&](const Status& s, const net::Message& m) {
                 got = s;
                 body = ToString(m.payload);
               });
  sim_.Run();
  EXPECT_TRUE(got.ok());
  EXPECT_EQ(body, "ping");
  EXPECT_EQ(echo->requests_seen, 1);
}

TEST_F(OsTest, TransidStampedOnMessages) {
  Node* n = cluster_.AddNode(1);
  auto* echo = n->Spawn<EchoProcess>(0);
  auto* client = n->Spawn<EchoProcess>(1);
  sim_.Run();
  client->set_current_transid(0xabcdef);
  client->Call(net::Address(echo->id()), kEchoTag, {},
               [](const Status&, const net::Message&) {});
  sim_.Run();
  EXPECT_EQ(echo->last_transid, 0xabcdefu);
}

TEST_F(OsTest, CallToDeadPidFailsFast) {
  Node* n = cluster_.AddNode(1);
  auto* client = n->Spawn<EchoProcess>(0);
  sim_.Run();
  Status got;
  client->Call(net::Address(net::ProcessId{1, 999}), kEchoTag, {},
               [&](const Status& s, const net::Message&) { got = s; });
  sim_.Run();
  EXPECT_TRUE(got.IsUnavailable());
}

TEST_F(OsTest, CallTimesOutWhenNoReply) {
  // A process that never replies.
  class Silent : public Process {
    void OnMessage(const net::Message&) override {}
  };
  Node* n = cluster_.AddNode(1);
  auto* silent = n->Spawn<Silent>(0);
  auto* client = n->Spawn<EchoProcess>(1);
  sim_.Run();
  Status got;
  CallOptions opt;
  opt.timeout = Millis(100);
  client->Call(net::Address(silent->id()), kEchoTag, {},
               [&](const Status& s, const net::Message&) { got = s; }, opt);
  sim_.Run();
  EXPECT_TRUE(got.IsTimeout());
}

TEST_F(OsTest, CancelCallSuppressesCallback) {
  Node* n = cluster_.AddNode(1);
  auto* echo = n->Spawn<EchoProcess>(0);
  auto* client = n->Spawn<EchoProcess>(1);
  sim_.Run();
  bool fired = false;
  uint64_t rid = client->Call(net::Address(echo->id()), kEchoTag, {},
                              [&](const Status&, const net::Message&) {
                                fired = true;
                              });
  client->CancelCall(rid);
  sim_.Run();
  EXPECT_FALSE(fired);
}

TEST_F(OsTest, TimersFireAndCancel) {
  Node* n = cluster_.AddNode(1);
  auto* p = n->Spawn<EchoProcess>(0);
  sim_.Run();
  int fired = 0;
  p->SetTimer(Millis(1), [&] { ++fired; });
  uint64_t t2 = p->SetTimer(Millis(2), [&] { ++fired; });
  p->CancelTimer(t2);
  sim_.Run();
  EXPECT_EQ(fired, 1);
}

TEST_F(OsTest, TimerOfDeadProcessDoesNotFire) {
  Node* n = cluster_.AddNode(1);
  auto* p = n->Spawn<EchoProcess>(2);
  sim_.Run();
  int fired = 0;
  p->SetTimer(Millis(10), [&] { ++fired; });
  n->FailCpu(2);  // destroys p before the timer fires
  sim_.Run();
  EXPECT_EQ(fired, 0);
}

TEST_F(OsTest, NameResolutionAndReRegistration) {
  Node* n = cluster_.AddNode(1);
  auto* a = n->Spawn<ObserverProcess>(0);
  auto* b = n->Spawn<ObserverProcess>(1);
  auto* src = n->Spawn<EchoProcess>(2);
  sim_.Run();
  n->RegisterName("$SVC", a->id().pid);
  src->Send(net::Address(1, "$SVC"), kNoteTag, ToBytes("one"));
  sim_.Run();
  n->RegisterName("$SVC", b->id().pid);
  src->Send(net::Address(1, "$SVC"), kNoteTag, ToBytes("two"));
  sim_.Run();
  ASSERT_EQ(a->notes.size(), 1u);
  ASSERT_EQ(b->notes.size(), 1u);
  EXPECT_EQ(a->notes[0], "one");
  EXPECT_EQ(b->notes[0], "two");
}

TEST_F(OsTest, UnboundNameFailsRequest) {
  Node* n = cluster_.AddNode(1);
  auto* client = n->Spawn<EchoProcess>(0);
  sim_.Run();
  Status got;
  client->Call(net::Address(1, "$NOSUCH"), kEchoTag, {},
               [&](const Status& s, const net::Message&) { got = s; });
  sim_.Run();
  EXPECT_TRUE(got.IsUnavailable());
}

TEST_F(OsTest, CpuFailureKillsProcessesAndNotifiesSurvivors) {
  Node* n = cluster_.AddNode(1);
  auto* victim = n->Spawn<EchoProcess>(2);
  auto* obs = n->Spawn<ObserverProcess>(0);
  sim_.Run();
  net::Pid vpid = victim->id().pid;
  n->FailCpu(2);
  EXPECT_EQ(n->Find(vpid), nullptr);  // immediate
  sim_.Run();
  ASSERT_EQ(obs->cpu_down.size(), 1u);
  EXPECT_EQ(obs->cpu_down[0], 2);
  EXPECT_EQ(n->AliveCpuCount(), 3);
}

TEST_F(OsTest, CpuReloadNotifies) {
  Node* n = cluster_.AddNode(1);
  auto* obs = n->Spawn<ObserverProcess>(0);
  sim_.Run();
  n->FailCpu(1);
  sim_.Run();
  n->ReloadCpu(1);
  sim_.Run();
  ASSERT_EQ(obs->cpu_up.size(), 1u);
  EXPECT_EQ(obs->cpu_up[0], 1);
  EXPECT_TRUE(n->CpuUp(1));
}

TEST_F(OsTest, NodeDeadWhenAllCpusFail) {
  NodeConfig cfg;
  cfg.num_cpus = 2;
  Node* n = cluster_.AddNode(1, cfg);
  EXPECT_FALSE(n->Dead());
  n->FailCpu(0);
  n->FailCpu(1);
  EXPECT_TRUE(n->Dead());
}

TEST_F(OsTest, DualBusSurvivesSingleBusFailure) {
  Node* n = cluster_.AddNode(1);
  auto* echo = n->Spawn<EchoProcess>(0);
  auto* client = n->Spawn<EchoProcess>(1);
  sim_.Run();
  n->SetBusUp(0, false);  // X bus down; Y carries traffic
  Status got = Status::Timeout();
  client->Call(net::Address(echo->id()), kEchoTag, {},
               [&](const Status& s, const net::Message&) { got = s; });
  sim_.Run();
  EXPECT_TRUE(got.ok());
  EXPECT_GT(sim_.GetStats().Counter("os.bus_y_msgs"), 0);
}

TEST_F(OsTest, BothBusesDownBlocksCrossCpuTraffic) {
  Node* n = cluster_.AddNode(1);
  auto* echo = n->Spawn<EchoProcess>(0);
  auto* client = n->Spawn<EchoProcess>(1);
  auto* local = n->Spawn<EchoProcess>(1);
  sim_.Run();
  n->SetBusUp(0, false);
  n->SetBusUp(1, false);
  Status cross = Status::Ok(), same = Status::Timeout();
  client->Call(net::Address(echo->id()), kEchoTag, {},
               [&](const Status& s, const net::Message&) { cross = s; });
  client->Call(net::Address(local->id()), kEchoTag, {},
               [&](const Status& s, const net::Message&) { same = s; });
  sim_.Run();
  EXPECT_TRUE(cross.IsUnavailable());
  EXPECT_TRUE(same.ok());  // same-CPU traffic does not need the bus
}

// ---------------------------------------------------------------------------
// Inter-node messaging and the network
// ---------------------------------------------------------------------------

TEST_F(OsTest, CrossNodeCall) {
  Node* n1 = cluster_.AddNode(1);
  Node* n2 = cluster_.AddNode(2);
  cluster_.Link(1, 2);
  auto* echo = n2->Spawn<EchoProcess>(0);
  auto* client = n1->Spawn<EchoProcess>(0);
  sim_.Run();
  Status got;
  std::string body;
  client->Call(net::Address(echo->id()), kEchoTag, ToBytes("remote"),
               [&](const Status& s, const net::Message& m) {
                 got = s;
                 body = ToString(m.payload);
               });
  sim_.Run();
  EXPECT_TRUE(got.ok());
  EXPECT_EQ(body, "remote");
}

TEST_F(OsTest, MultiHopRoutingAndReroute) {
  // Triangle 1-2, 2-3 and 1-3; cut 1-3 and traffic reroutes via 2.
  Node* n1 = cluster_.AddNode(1);
  cluster_.AddNode(2);
  Node* n3 = cluster_.AddNode(3);
  cluster_.Link(1, 2);
  cluster_.Link(2, 3);
  cluster_.Link(1, 3);
  auto* echo = n3->Spawn<EchoProcess>(0);
  auto* client = n1->Spawn<EchoProcess>(0);
  sim_.Run();
  EXPECT_EQ(cluster_.network().Route(1, 3).size(), 2u);  // direct
  cluster_.CutLink(1, 3);
  EXPECT_EQ(cluster_.network().Route(1, 3).size(), 3u);  // via node 2
  Status got;
  client->Call(net::Address(echo->id()), kEchoTag, {},
               [&](const Status& s, const net::Message&) { got = s; });
  sim_.Run();
  EXPECT_TRUE(got.ok());
}

TEST_F(OsTest, PartitionFailsCallWithPartitioned) {
  Node* n1 = cluster_.AddNode(1);
  Node* n2 = cluster_.AddNode(2);
  cluster_.Link(1, 2);
  auto* echo = n2->Spawn<EchoProcess>(0);
  auto* client = n1->Spawn<EchoProcess>(0);
  sim_.Run();
  cluster_.CutLink(1, 2);
  Status got;
  CallOptions opt;
  opt.timeout = Seconds(10);
  client->Call(net::Address(echo->id()), kEchoTag, {},
               [&](const Status& s, const net::Message&) { got = s; }, opt);
  sim_.Run();
  EXPECT_TRUE(got.IsPartitioned());
  EXPECT_EQ(echo->requests_seen, 0);
}

TEST_F(OsTest, ReachabilityEventsOnPartitionAndHeal) {
  Node* n1 = cluster_.AddNode(1);
  cluster_.AddNode(2);
  cluster_.Link(1, 2);
  auto* obs = n1->Spawn<ObserverProcess>(0);
  sim_.Run();
  cluster_.CutLink(1, 2);
  sim_.Run();
  ASSERT_EQ(obs->node_down.size(), 1u);
  EXPECT_EQ(obs->node_down[0], 2);
  cluster_.RestoreLink(1, 2);
  sim_.Run();
  ASSERT_EQ(obs->node_up.size(), 1u);
  EXPECT_EQ(obs->node_up[0], 2);
}

TEST_F(OsTest, TransientGlitchHealedByEndToEndRetry) {
  Node* n1 = cluster_.AddNode(1);
  Node* n2 = cluster_.AddNode(2);
  cluster_.Link(1, 2);
  auto* echo = n2->Spawn<EchoProcess>(0);
  auto* client = n1->Spawn<EchoProcess>(0);
  sim_.Run();
  cluster_.CutLink(1, 2);
  // Restore the link before the end-to-end protocol exhausts its retries.
  sim_.After(Millis(80), [&] { cluster_.RestoreLink(1, 2); });
  Status got = Status::Timeout();
  CallOptions opt;
  opt.timeout = Seconds(10);
  client->Call(net::Address(echo->id()), kEchoTag, ToBytes("x"),
               [&](const Status& s, const net::Message&) { got = s; }, opt);
  sim_.Run();
  EXPECT_TRUE(got.ok());
}

TEST_F(OsTest, LossyLinkStillDeliversViaRetransmit) {
  net::NetworkConfig ncfg;
  ncfg.loss_probability = 0.3;
  sim::Simulation sim(77);
  Cluster cluster(&sim, ncfg);
  Node* n1 = cluster.AddNode(1);
  Node* n2 = cluster.AddNode(2);
  cluster.Link(1, 2);
  auto* echo = n2->Spawn<EchoProcess>(0);
  auto* client = n1->Spawn<EchoProcess>(0);
  sim.Run();
  int ok = 0;
  for (int i = 0; i < 20; ++i) {
    CallOptions opt;
    opt.timeout = Seconds(30);
    opt.retries = 3;
    client->Call(net::Address(echo->id()), kEchoTag, {},
                 [&](const Status& s, const net::Message&) { ok += s.ok(); },
                 opt);
  }
  sim.Run();
  EXPECT_EQ(ok, 20);
}

// ---------------------------------------------------------------------------
// Process pairs
// ---------------------------------------------------------------------------

/// A pair that counts requests; the count is checkpointed to the backup so
/// it survives takeover.
class CounterPair : public PairedProcess {
 public:
  void OnRequest(const net::Message& msg) override {
    ++count;
    Bytes ckpt;
    PutFixed64(&ckpt, count);
    SendCheckpoint(std::move(ckpt));
    Reply(msg, Status::Ok(), ToBytes(std::to_string(count)));
  }
  void OnCheckpoint(const Slice& delta) override {
    Slice in = delta;
    GetFixed64(&in, &count);
  }
  void OnTakeover() override { ++takeovers; }
  void OnBackupAttached() override {
    Bytes ckpt;
    PutFixed64(&ckpt, count);
    SendCheckpoint(std::move(ckpt));
  }
  uint64_t count = 0;
  int takeovers = 0;
};

TEST_F(OsTest, PairNameResolvesToPrimary) {
  Node* n = cluster_.AddNode(1);
  auto pair = SpawnPair<CounterPair>(n, "$CTR", 0, 1);
  auto* client = n->Spawn<EchoProcess>(2);
  sim_.Run();
  EXPECT_TRUE(pair.primary->IsPrimary());
  EXPECT_FALSE(pair.backup->IsPrimary());
  std::string body;
  client->Call(net::Address(1, "$CTR"), kEchoTag, {},
               [&](const Status&, const net::Message& m) {
                 body = ToString(m.payload);
               });
  sim_.Run();
  EXPECT_EQ(body, "1");
  EXPECT_EQ(pair.primary->count, 1u);
  EXPECT_EQ(pair.backup->count, 1u);  // checkpoint applied
}

TEST_F(OsTest, TakeoverPreservesCheckpointedState) {
  Node* n = cluster_.AddNode(1);
  auto pair = SpawnPair<CounterPair>(n, "$CTR", 0, 1);
  auto* client = n->Spawn<EchoProcess>(2);
  sim_.Run();
  for (int i = 0; i < 5; ++i) {
    client->Call(net::Address(1, "$CTR"), kEchoTag, {},
                 [](const Status&, const net::Message&) {});
    sim_.Run();
  }
  n->FailCpu(0);  // primary dies
  sim_.Run();
  EXPECT_EQ(pair.backup->takeovers, 1);
  EXPECT_TRUE(pair.backup->IsPrimary());
  // The name now routes to the survivor, with checkpointed count intact.
  std::string body;
  client->Call(net::Address(1, "$CTR"), kEchoTag, {},
               [&](const Status&, const net::Message& m) {
                 body = ToString(m.payload);
               });
  sim_.Run();
  EXPECT_EQ(body, "6");
}

TEST_F(OsTest, RetriedCallSurvivesTakeoverWindow) {
  Node* n = cluster_.AddNode(1);
  auto pair = SpawnPair<CounterPair>(n, "$CTR", 0, 1);
  auto* client = n->Spawn<EchoProcess>(2);
  sim_.Run();
  // Fail the primary, then immediately call (before regroup completes the
  // name may briefly point at the dead pid) — the transparent retry makes
  // the request land on the new primary.
  n->FailCpu(0);
  Status got = Status::Timeout();
  CallOptions opt;
  opt.timeout = Millis(20);
  opt.retries = 3;
  client->Call(net::Address(1, "$CTR"), kEchoTag, {},
               [&](const Status& s, const net::Message&) { got = s; }, opt);
  sim_.Run();
  EXPECT_TRUE(got.ok());
  EXPECT_TRUE(pair.backup->IsPrimary());
}

TEST_F(OsTest, BackupLostLeavesPrimaryExposed) {
  Node* n = cluster_.AddNode(1);
  auto pair = SpawnPair<CounterPair>(n, "$CTR", 0, 1);
  sim_.Run();
  n->FailCpu(1);  // backup dies
  sim_.Run();
  EXPECT_TRUE(pair.primary->IsPrimary());
  EXPECT_FALSE(pair.primary->HasBackup());
  EXPECT_EQ(sim_.GetStats().Counter("os.backup_lost"), 1);
}

TEST_F(OsTest, AttachBackupResynchronizesState) {
  Node* n = cluster_.AddNode(1);
  auto pair = SpawnPair<CounterPair>(n, "$CTR", 0, 1);
  auto* client = n->Spawn<EchoProcess>(2);
  sim_.Run();
  for (int i = 0; i < 3; ++i) {
    client->Call(net::Address(1, "$CTR"), kEchoTag, {},
                 [](const Status&, const net::Message&) {});
  }
  sim_.Run();
  n->FailCpu(1);  // lose backup
  sim_.Run();
  CounterPair* fresh = AttachBackup<CounterPair>(n, pair.primary, 3);
  ASSERT_NE(fresh, nullptr);
  sim_.Run();
  EXPECT_EQ(fresh->count, 3u);  // full-state checkpoint arrived
  EXPECT_TRUE(pair.primary->HasBackup());
  // And the refreshed pair survives another takeover.
  n->FailCpu(0);
  sim_.Run();
  EXPECT_TRUE(fresh->IsPrimary());
  EXPECT_EQ(fresh->count, 3u);
}

TEST_F(OsTest, DoubleFailureKillsPairService) {
  Node* n = cluster_.AddNode(1);
  SpawnPair<CounterPair>(n, "$CTR", 0, 1);
  auto* client = n->Spawn<EchoProcess>(2);
  sim_.Run();
  n->FailCpu(0);
  n->FailCpu(1);  // simultaneous double module failure
  sim_.Run();
  Status got;
  client->Call(net::Address(1, "$CTR"), kEchoTag, {},
               [&](const Status& s, const net::Message&) { got = s; });
  sim_.Run();
  EXPECT_TRUE(got.IsUnavailable());
}

}  // namespace
}  // namespace encompass::os
