file(REMOVE_RECURSE
  "CMakeFiles/rollforward_recovery.dir/rollforward_recovery.cpp.o"
  "CMakeFiles/rollforward_recovery.dir/rollforward_recovery.cpp.o.d"
  "rollforward_recovery"
  "rollforward_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rollforward_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
