# Empty dependencies file for bench_fig4_manufacturing.
# This may be replaced when dependencies are built.
