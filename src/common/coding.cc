#include "common/coding.h"

namespace encompass {

void PutFixed8(Bytes* dst, uint8_t v) { dst->push_back(v); }

void PutFixed16(Bytes* dst, uint16_t v) {
  dst->push_back(static_cast<uint8_t>(v));
  dst->push_back(static_cast<uint8_t>(v >> 8));
}

void PutFixed32(Bytes* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) dst->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutFixed64(Bytes* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) dst->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutVarint32(Bytes* dst, uint32_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  dst->push_back(static_cast<uint8_t>(v));
}

void PutVarint64(Bytes* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  dst->push_back(static_cast<uint8_t>(v));
}

void PutLengthPrefixed(Bytes* dst, const Slice& value) {
  PutVarint64(dst, value.size());
  dst->insert(dst->end(), value.data(), value.data() + value.size());
}

bool GetFixed8(Slice* input, uint8_t* v) {
  if (input->size() < 1) return false;
  *v = (*input)[0];
  input->RemovePrefix(1);
  return true;
}

bool GetFixed16(Slice* input, uint16_t* v) {
  if (input->size() < 2) return false;
  *v = static_cast<uint16_t>((*input)[0]) |
       (static_cast<uint16_t>((*input)[1]) << 8);
  input->RemovePrefix(2);
  return true;
}

bool GetFixed32(Slice* input, uint32_t* v) {
  if (input->size() < 4) return false;
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) r |= static_cast<uint32_t>((*input)[i]) << (8 * i);
  *v = r;
  input->RemovePrefix(4);
  return true;
}

bool GetFixed64(Slice* input, uint64_t* v) {
  if (input->size() < 8) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) r |= static_cast<uint64_t>((*input)[i]) << (8 * i);
  *v = r;
  input->RemovePrefix(8);
  return true;
}

bool GetVarint32(Slice* input, uint32_t* v) {
  uint64_t v64;
  if (!GetVarint64(input, &v64) || v64 > UINT32_MAX) return false;
  *v = static_cast<uint32_t>(v64);
  return true;
}

bool GetVarint64(Slice* input, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint8_t byte = (*input)[0];
    input->RemovePrefix(1);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
  }
  return false;
}

bool GetLengthPrefixed(Slice* input, Slice* value) {
  uint64_t len;
  if (!GetVarint64(input, &len) || input->size() < len) return false;
  *value = Slice(input->data(), static_cast<size_t>(len));
  input->RemovePrefix(static_cast<size_t>(len));
  return true;
}

bool GetLengthPrefixedBytes(Slice* input, Bytes* value) {
  Slice s;
  if (!GetLengthPrefixed(input, &s)) return false;
  *value = s.ToBytes();
  return true;
}

bool GetLengthPrefixedString(Slice* input, std::string* value) {
  Slice s;
  if (!GetLengthPrefixed(input, &s)) return false;
  *value = s.ToString();
  return true;
}

}  // namespace encompass
