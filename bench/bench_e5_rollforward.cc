// E5 — ROLLFORWARD. "NonStop systems allow optimization of normal
// processing at the expense of restart time." Measures total-node-failure
// recovery: redo volume vs audit accumulated since the archive, correctness
// of the rebuilt data base, and the negotiation path for transactions in
// "ending" state at failure time.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "test_util.h"
#include "tmf/rollforward.h"

namespace encompass::bench {
namespace {

/// Runs `txns` committed transfers on a fresh rig, crashes the node, rolls
/// forward from the pre-workload archive, and reports the work done.
struct RollforwardRun {
  size_t redo_applied = 0;
  size_t txns_committed = 0;
  bool correct = false;
  double est_recovery_s = 0;  // records * 1ms redo-io estimate
};

RollforwardRun RunOne(int txns) {
  BankRig rig = MakeBankRig(/*seed=*/91, 4, 50, 0, 0);
  auto* trail = rig.node->storage().trails.at("$DATA1.AT").get();
  rig.volume->Flush();
  Bytes archive = rig.volume->Archive();
  uint64_t archive_lsn = trail->durable_lsn();

  app::TcpConfig cfg;
  cfg.programs = {{"transfer", rig.program.get()}};
  auto tcp = os::SpawnPair<app::Tcp>(rig.node->node(), "$TCPW", 2, 3, cfg);
  rig.sim->Run();
  tcp.primary->AttachTerminal("t", "transfer", txns);
  rig.sim->Run();

  rig.deploy->CrashNode(1);
  rig.sim->RunFor(Millis(100));
  rig.deploy->RestartNode(1);
  rig.sim->RunFor(Millis(100));

  tmf::RollforwardInput input;
  input.volume = rig.volume;
  input.archive = &archive;
  input.trail = trail;
  input.archive_lsn = archive_lsn;
  input.monitor_trail = &rig.node->storage().monitor_trail;
  auto report = tmf::Rollforward(input);

  RollforwardRun out;
  if (report.ok()) {
    out.redo_applied = report->redo_applied;
    out.txns_committed = report->txns_committed;
    out.correct = apps::banking::SumBalances(rig.volume, "acct") == 50 * 1000;
    out.est_recovery_s = static_cast<double>(report->redo_applied) * 1e-3;
  }
  return out;
}

void TableRecoveryVsAuditVolume() {
  Header("E5.a rollforward work vs transactions since the archive");
  printf("%12s %14s %14s %16s %10s\n", "txns", "redo images", "txns replayed",
         "est recovery(s)", "correct");
  for (int txns : {10, 50, 200, 1000}) {
    RollforwardRun run = RunOne(txns);
    printf("%12d %14zu %14zu %16.2f %10s\n", txns, run.redo_applied,
           run.txns_committed, run.est_recovery_s, run.correct ? "yes" : "NO");
  }
  printf("(recovery work is proportional to audit since the archive —\n"
         " the price of never forcing data pages during normal processing)\n");
}

void TableNegotiation() {
  Header("E5.b negotiation for transactions in 'ending' state at failure");
  // Distributed txn: node 2 answers phase 1 (audit forced), home commits,
  // node 2 dies before phase 2 — its MAT has no record; rollforward asks
  // the home node.
  sim::Simulation sim(93);
  app::Deployment deploy(&sim);
  for (net::NodeId id : {1, 2}) {
    app::NodeSpec spec;
    spec.id = id;
    spec.node_config.num_cpus = 4;
    spec.volumes = {app::VolumeSpec{"$DATA" + std::to_string(id),
                                    {app::FileSpec{"f" + std::to_string(id)}},
                                    {}}};
    deploy.AddNode(spec);
  }
  deploy.LinkAll();
  deploy.DefineFile("f2", 2, "$DATA2");
  auto* client = deploy.GetNode(1)->node()->Spawn<testutil::TestClient>(2);
  tmf::FileSystem fs(client, &deploy.catalog());
  sim.Run();

  auto* vol2 = deploy.GetNode(2)->storage().volumes.at("$DATA2").get();
  Bytes archive = vol2->Archive();

  auto* begin = client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfBegin, {});
  sim.Run();
  auto transid = tmf::DecodeTransidPayload(Slice(begin->payload));
  client->set_current_transid(transid->Pack());
  fs.Insert("f2", Slice("key"), Slice("value"), [](const Status&, const Bytes&) {});
  client->set_current_transid(0);
  sim.Run();
  client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                  tmf::EncodeTransidPayload(*transid), transid->Pack());
  auto* mat1 = &deploy.GetNode(1)->storage().monitor_trail;
  for (int i = 0; i < 2000 && mat1->Lookup(*transid) != 1; ++i) {
    sim.RunFor(Micros(500));
  }
  deploy.CrashNode(2);  // dies in "ending" state, before phase 2
  sim.RunFor(Millis(100));
  deploy.RestartNode(2);
  sim.RunFor(Millis(100));

  size_t negotiated = 0;
  tmf::RollforwardInput input;
  input.volume = vol2;
  input.archive = &archive;
  input.trail = deploy.GetNode(2)->storage().trails.at("$DATA2.AT").get();
  input.archive_lsn = 0;
  input.monitor_trail = &deploy.GetNode(2)->storage().monitor_trail;
  input.resolve_remote = [&](const Transid& t) {
    ++negotiated;
    return mat1->Lookup(t) == 1 ? tmf::Disposition::kCommitted
                                : tmf::Disposition::kAborted;
  };
  auto report = tmf::Rollforward(input);
  bool recovered =
      report.ok() && vol2->ReadRecord("f2", Slice("key")).status.ok();
  printf("transaction in 'ending' at node 2 when it failed:\n");
  printf("  local disposition unknown -> negotiated with home : %zu query\n",
         negotiated);
  printf("  committed work recovered                          : %s\n",
         recovered ? "yes" : "NO");
}

void BM_Rollforward(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  size_t redo = 0;
  for (auto _ : state) {
    RollforwardRun run = RunOne(txns);
    redo += run.redo_applied;
  }
  state.counters["redo_images"] = benchmark::Counter(
      static_cast<double>(redo) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_Rollforward)->Arg(50)->Arg(500)->Iterations(3);

}  // namespace
}  // namespace encompass::bench

int main(int argc, char** argv) {
  encompass::bench::InitReport("e5_rollforward");
  encompass::bench::ReportMeta(/*seed=*/91);
  printf("E5: ROLLFORWARD — recovery from total node failure\n");
  encompass::bench::TableRecoveryVsAuditVolume();
  encompass::bench::TableNegotiation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  encompass::bench::WriteReport();
  return 0;
}
