
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/discprocess/disc_process.cc" "src/discprocess/CMakeFiles/encompass_discprocess.dir/disc_process.cc.o" "gcc" "src/discprocess/CMakeFiles/encompass_discprocess.dir/disc_process.cc.o.d"
  "/root/repo/src/discprocess/disc_protocol.cc" "src/discprocess/CMakeFiles/encompass_discprocess.dir/disc_protocol.cc.o" "gcc" "src/discprocess/CMakeFiles/encompass_discprocess.dir/disc_protocol.cc.o.d"
  "/root/repo/src/discprocess/lock_manager.cc" "src/discprocess/CMakeFiles/encompass_discprocess.dir/lock_manager.cc.o" "gcc" "src/discprocess/CMakeFiles/encompass_discprocess.dir/lock_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/encompass_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/encompass_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/encompass_os.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/encompass_audit.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/encompass_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/encompass_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
