file(REMOVE_RECURSE
  "CMakeFiles/encompass_banking.dir/banking.cc.o"
  "CMakeFiles/encompass_banking.dir/banking.cc.o.d"
  "libencompass_banking.a"
  "libencompass_banking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encompass_banking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
