#include "tmf/commit_acceptor.h"

#include <memory>

#include "common/logging.h"

namespace encompass::tmf {

void CommitAcceptor::OnPairAttach() {
  m_prepares_ = stats().RegisterCounter("acceptor.prepares");
  m_accepts_ = stats().RegisterCounter("acceptor.accepts");
  m_rejections_ = stats().RegisterCounter("acceptor.rejections");
}

void CommitAcceptor::OnRequest(const net::Message& msg) {
  if (!IsPrimary()) {
    Reply(msg, Status::Unavailable("backup acceptor"));
    return;
  }
  switch (msg.tag) {
    case kTmfPaxosPrepare:
      HandlePrepare(msg);
      break;
    case kTmfPaxosAccept:
      HandleAccept(msg);
      break;
    default:
      Reply(msg, Status::InvalidArgument("unknown acceptor tag"));
  }
}

void CommitAcceptor::HandlePrepare(const net::Message& msg) {
  Transid t;
  uint32_t ballot;
  if (!DecodePaxosPrepare(Slice(msg.payload), &t, &ballot)) {
    Reply(msg, Status::InvalidArgument("malformed prepare"));
    return;
  }
  stats().Incr(m_prepares_);
  CommitAcceptorEntry& e = config_.log->At(t);
  PaxosPrepareReply r;
  r.granted = ballot > e.promised;
  if (r.granted) e.promised = ballot;
  r.promised = e.promised;
  r.accepted_ballot = e.accepted_ballot;
  r.has_value = e.has_value;
  r.value = e.value;
  if (!r.granted) {
    stats().Incr(m_rejections_);
    Reply(msg, Status::Ok(), EncodePaxosPrepareReply(r));
    return;
  }
  ReplyForced(msg, EncodePaxosPrepareReply(r));
}

void CommitAcceptor::HandleAccept(const net::Message& msg) {
  Transid t;
  uint32_t ballot;
  Disposition value;
  if (!DecodePaxosAccept(Slice(msg.payload), &t, &ballot, &value)) {
    Reply(msg, Status::InvalidArgument("malformed accept"));
    return;
  }
  stats().Incr(m_accepts_);
  CommitAcceptorEntry& e = config_.log->At(t);
  PaxosAcceptReply r;
  // >= admits the idempotent re-accept a home takeover replays at its own
  // ballot; a strictly higher promise (a usurping recovery proposer) wins.
  r.accepted = ballot >= e.promised;
  if (r.accepted) {
    e.promised = ballot;
    e.accepted_ballot = ballot;
    e.has_value = true;
    e.value = value;
  } else {
    stats().Incr(m_rejections_);
  }
  r.promised = e.promised;
  if (!r.accepted) {
    Reply(msg, Status::Ok(), EncodePaxosAcceptReply(r));
    return;
  }
  ReplyForced(msg, EncodePaxosAcceptReply(r));
}

void CommitAcceptor::ReplyForced(const net::Message& msg, Bytes payload) {
  // The log mutation above is already applied — the log object IS the
  // durable medium — so a takeover mid-force loses only the reply; the
  // caller times out and retries against state that never regresses.
  if (config_.force_latency <= 0) {
    Reply(msg, Status::Ok(), std::move(payload));
    return;
  }
  net::Message request = msg;
  SetTimer(config_.force_latency,
           [this, request, payload = std::move(payload)]() mutable {
             Reply(request, Status::Ok(), std::move(payload));
           });
}

namespace {

/// Tally of one phase of a round over n acceptors.
struct PhaseTally {
  int yes = 0;
  int responses = 0;
  uint32_t best_accepted_ballot = 0;
  Disposition adopted = Disposition::kUnknown;
  bool have_adopted = false;
  bool fired = false;
};

}  // namespace

void RunPaxosRound(os::Process* proc, const PaxosRoundConfig& cfg,
                   const Transid& t, uint32_t attempt, Disposition proposed,
                   bool skip_prepare, std::function<void(Disposition)> done) {
  const int n = static_cast<int>(cfg.acceptor_nodes.size());
  const int majority = n / 2 + 1;
  if (n == 0) {
    done(Disposition::kUnknown);
    return;
  }
  const uint32_t ballot = MakePaxosBallot(attempt, proc->node()->id());
  os::CallOptions opt;
  opt.timeout = cfg.call_timeout;

  auto start_accept = [proc, cfg, t, ballot, n, majority, opt,
                       done](Disposition value) {
    auto tally = std::make_shared<PhaseTally>();
    for (net::NodeId a : cfg.acceptor_nodes) {
      proc->Call(net::Address(a, cfg.acceptor_process), kTmfPaxosAccept,
                 EncodePaxosAccept(t, ballot, value),
                 [tally, n, majority, value, done](const Status& s,
                                                   const net::Message& reply) {
                   if (tally->fired) return;
                   ++tally->responses;
                   PaxosAcceptReply r;
                   if (s.ok() && DecodePaxosAcceptReply(Slice(reply.payload),
                                                        &r) &&
                       r.accepted) {
                     ++tally->yes;
                   }
                   if (tally->yes >= majority) {
                     // The value is chosen: a majority holds it durably.
                     tally->fired = true;
                     done(value);
                   } else if (tally->responses == n) {
                     tally->fired = true;
                     done(Disposition::kUnknown);
                   }
                 },
                 opt);
    }
  };

  if (skip_prepare) {
    start_accept(proposed);
    return;
  }

  auto tally = std::make_shared<PhaseTally>();
  for (net::NodeId a : cfg.acceptor_nodes) {
    proc->Call(
        net::Address(a, cfg.acceptor_process), kTmfPaxosPrepare,
        EncodePaxosPrepare(t, ballot),
        [tally, n, majority, proposed, start_accept, done](
            const Status& s, const net::Message& reply) {
          if (tally->fired) return;
          ++tally->responses;
          PaxosPrepareReply r;
          if (s.ok() && DecodePaxosPrepareReply(Slice(reply.payload), &r) &&
              r.granted) {
            ++tally->yes;
            if (r.has_value && r.accepted_ballot >= tally->best_accepted_ballot) {
              tally->best_accepted_ballot = r.accepted_ballot;
              tally->adopted = r.value;
              tally->have_adopted = true;
            }
          }
          if (tally->yes >= majority) {
            // A promise quorum stands; propose the value of the highest
            // accepted ballot it revealed, else our own.
            tally->fired = true;
            start_accept(tally->have_adopted ? tally->adopted : proposed);
          } else if (tally->responses == n) {
            tally->fired = true;
            done(Disposition::kUnknown);
          }
        },
        opt);
  }
}

}  // namespace encompass::tmf
