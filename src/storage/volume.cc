#include "storage/volume.h"

#include "common/coding.h"

namespace encompass::storage {

Volume::Volume(std::string name, VolumeConfig config)
    : name_(std::move(name)), config_(config) {}

void Volume::BindStats(sim::Stats* stats) {
  stats_ = stats;
  if (stats_ == nullptr) return;
  const std::string prefix = "storage." + name_ + ".";
  m_cache_hits_ = stats_->RegisterCounter(prefix + "cache_hits");
  m_cache_misses_ = stats_->RegisterCounter(prefix + "cache_misses");
  m_physical_reads_ = stats_->RegisterCounter(prefix + "physical_reads");
  m_physical_writes_ = stats_->RegisterCounter(prefix + "physical_writes");
}

Status Volume::CreateFile(const std::string& fname, FileOrganization org,
                          FileOptions options) {
  if (files_.count(fname)) return Status::AlreadyExists("file exists: " + fname);
  options.block_size = config_.block_size;
  files_[fname] = MakeFile(org, fname, std::move(options));
  return Status::Ok();
}

Status Volume::DropFile(const std::string& fname) {
  if (files_.erase(fname) == 0) return Status::NotFound("no file: " + fname);
  // Ledger entries for the dropped file can no longer be undone; purge them.
  std::vector<UndoEntry> kept;
  for (auto& e : undo_ledger_) {
    if (e.file != fname) kept.push_back(std::move(e));
  }
  undo_ledger_ = std::move(kept);
  return Status::Ok();
}

StructuredFile* Volume::Find(const std::string& fname) const {
  auto it = files_.find(fname);
  return it == files_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Volume::FileNames() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [n, f] : files_) {
    (void)f;
    names.push_back(n);
  }
  return names;
}

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

namespace {
std::string CacheKey(const std::string& fname, const Slice& key) {
  std::string s = fname;
  s.push_back('\0');
  s.append(reinterpret_cast<const char*>(key.data()), key.size());
  return s;
}
}  // namespace

bool Volume::CacheHit(const std::string& fname, const Slice& key) {
  auto it = cache_.find(CacheKey(fname, key));
  if (it == cache_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return true;
}

void Volume::CacheTouch(const std::string& fname, const Slice& key) {
  std::string ck = CacheKey(fname, key);
  auto it = cache_.find(ck);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(ck);
  cache_[ck] = lru_.begin();
  if (cache_.size() > config_.cache_capacity) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
}

void Volume::CacheErase(const std::string& fname, const Slice& key) {
  auto it = cache_.find(CacheKey(fname, key));
  if (it == cache_.end()) return;
  lru_.erase(it->second);
  cache_.erase(it);
}

// ---------------------------------------------------------------------------
// Record operations
// ---------------------------------------------------------------------------

OpResult Volume::Mutate(const std::string& fname, MutationOp op, const Slice& key,
                        const Slice& record) {
  OpResult out;
  if (!Usable()) {
    out.status = Status::IoError("volume " + name_ + ": all drives down");
    return out;
  }
  StructuredFile* file = Find(fname);
  if (file == nullptr) {
    out.status = Status::NotFound("no file: " + fname);
    return out;
  }

  // Capture the before-image (needed for audit and for the volatile ledger).
  if (op != MutationOp::kInsert && !key.empty()) {
    auto prior = file->Read(key);
    if (prior.ok()) {
      out.before = std::move(*prior);
      out.existed = true;
    }
  }

  UndoEntry undo;
  undo.file = fname;
  undo.op = op;
  undo.before = out.before;
  undo.existed = out.existed;

  switch (op) {
    case MutationOp::kInsert: {
      Bytes assigned;
      out.status = file->Insert(key, record, &assigned);
      if (out.status.ok()) {
        out.key = assigned;
        undo.key = assigned;
        CacheTouch(fname, Slice(assigned));
      }
      break;
    }
    case MutationOp::kUpdate:
      out.status = file->Update(key, record);
      if (out.status.ok()) {
        out.key = key.ToBytes();
        undo.key = key.ToBytes();
        CacheTouch(fname, key);
      }
      break;
    case MutationOp::kDelete:
      out.status = file->Delete(key);
      if (out.status.ok()) {
        out.key = key.ToBytes();
        undo.key = key.ToBytes();
        CacheErase(fname, key);
      }
      break;
  }

  if (out.status.ok()) {
    // Write-back: the update lives in cache/memory only until Flush. This is
    // the paper's "audit records need not be written to disc prior to
    // updating the data base" — nothing is forced here.
    undo_ledger_.push_back(std::move(undo));
    // A drive that is down misses this write and becomes stale.
    for (int d = 0; d < drive_count(); ++d) {
      if (!drive_up_[d]) drive_stale_[d] = true;
    }
  }
  return out;
}

OpResult Volume::ApplyUndo(const std::string& fname, MutationOp original_op,
                           const Slice& key, const Slice& before) {
  OpResult out;
  if (!Usable()) {
    out.status = Status::IoError("volume " + name_ + ": all drives down");
    return out;
  }
  StructuredFile* file = Find(fname);
  if (file == nullptr) {
    out.status = Status::NotFound("no file: " + fname);
    return out;
  }
  auto current = file->Read(key);

  UndoEntry undo;
  undo.file = fname;
  undo.key = key.ToBytes();

  switch (original_op) {
    case MutationOp::kInsert:
      if (!current.ok()) {
        out.status = Status::Ok();  // already compensated
        return out;
      }
      undo.op = MutationOp::kDelete;
      undo.before = std::move(*current);
      undo.existed = true;
      out.status = PhysicalRemove(file, key);
      if (out.status.ok()) CacheErase(fname, key);
      break;
    case MutationOp::kUpdate:
      if (!current.ok()) {
        out.status = current.status();
        return out;
      }
      if (Slice(*current) == before) {
        out.status = Status::Ok();  // already compensated
        return out;
      }
      undo.op = MutationOp::kUpdate;
      undo.before = std::move(*current);
      undo.existed = true;
      out.status = file->Update(key, before);
      if (out.status.ok()) CacheTouch(fname, key);
      break;
    case MutationOp::kDelete:
      if (current.ok()) {
        out.status = Status::Ok();  // already compensated
        return out;
      }
      undo.op = MutationOp::kInsert;
      out.status = file->Insert(key, before, nullptr);
      if (out.status.ok()) CacheTouch(fname, key);
      break;
  }
  if (out.status.ok()) {
    undo_ledger_.push_back(std::move(undo));
    for (int d = 0; d < drive_count(); ++d) {
      if (!drive_up_[d]) drive_stale_[d] = true;
    }
  }
  return out;
}

OpResult Volume::ReadRecord(const std::string& fname, const Slice& key) {
  OpResult out;
  if (!Usable()) {
    out.status = Status::IoError("volume " + name_ + ": all drives down");
    return out;
  }
  StructuredFile* file = Find(fname);
  if (file == nullptr) {
    out.status = Status::NotFound("no file: " + fname);
    return out;
  }
  auto r = file->Read(key);
  out.status = r.ok() ? Status::Ok() : r.status();
  if (r.ok()) {
    out.value = std::move(*r);
    out.key = key.ToBytes();
    if (CacheHit(fname, key)) {
      ++cache_hits_;
      if (stats_ != nullptr) stats_->Incr(m_cache_hits_);
    } else {
      ++cache_misses_;
      if (stats_ != nullptr) stats_->Incr(m_cache_misses_);
      out.disc_ios = file->access_depth();
      physical_reads_ += out.disc_ios;
      if (stats_ != nullptr) stats_->Incr(m_physical_reads_, out.disc_ios);
      CacheTouch(fname, key);
    }
  }
  return out;
}

OpResult Volume::SeekRecord(const std::string& fname, const Slice& key,
                            bool inclusive) {
  OpResult out;
  if (!Usable()) {
    out.status = Status::IoError("volume " + name_ + ": all drives down");
    return out;
  }
  StructuredFile* file = Find(fname);
  if (file == nullptr) {
    out.status = Status::NotFound("no file: " + fname);
    return out;
  }
  auto r = file->Seek(key, inclusive);
  out.status = r.ok() ? Status::Ok() : r.status();
  if (r.ok()) {
    out.key = std::move(r->key);
    out.value = std::move(r->value);
    if (CacheHit(fname, Slice(out.key))) {
      ++cache_hits_;
      if (stats_ != nullptr) stats_->Incr(m_cache_hits_);
    } else {
      ++cache_misses_;
      if (stats_ != nullptr) stats_->Incr(m_cache_misses_);
      out.disc_ios = file->access_depth();
      physical_reads_ += out.disc_ios;
      if (stats_ != nullptr) stats_->Incr(m_physical_reads_, out.disc_ios);
      CacheTouch(fname, Slice(out.key));
    }
  }
  return out;
}

OpResult Volume::ReadAlternate(const std::string& fname, const std::string& field,
                               const std::string& value) {
  OpResult out;
  if (!Usable()) {
    out.status = Status::IoError("volume " + name_ + ": all drives down");
    return out;
  }
  StructuredFile* file = Find(fname);
  if (file == nullptr) {
    out.status = Status::NotFound("no file: " + fname);
    return out;
  }
  auto r = file->LookupAlternate(field, value);
  out.status = r.ok() ? Status::Ok() : r.status();
  if (r.ok()) {
    for (const auto& pk : *r) PutLengthPrefixed(&out.value, Slice(pk));
    out.disc_ios = 1;  // one index probe
    ++physical_reads_;
    if (stats_ != nullptr) stats_->Incr(m_physical_reads_);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Durability boundary
// ---------------------------------------------------------------------------

int Volume::Flush() {
  int writes = static_cast<int>(undo_ledger_.size()) * UpDrives();
  physical_writes_ += writes;
  if (stats_ != nullptr) stats_->Incr(m_physical_writes_, writes);
  undo_ledger_.clear();
  return writes;
}

Status Volume::PhysicalRemove(StructuredFile* file, const Slice& key) {
  if (file->organization() == FileOrganization::kEntrySequenced) {
    return static_cast<EntrySequencedFile*>(file)->RemoveEntry(key);
  }
  return file->Delete(key);
}

void Volume::DropVolatile() {
  for (auto it = undo_ledger_.rbegin(); it != undo_ledger_.rend(); ++it) {
    StructuredFile* file = Find(it->file);
    if (file == nullptr) continue;
    switch (it->op) {
      case MutationOp::kInsert:
        PhysicalRemove(file, Slice(it->key));
        break;
      case MutationOp::kUpdate:
        if (it->existed) file->Update(Slice(it->key), Slice(it->before));
        break;
      case MutationOp::kDelete:
        if (it->existed) file->Insert(Slice(it->key), Slice(it->before), nullptr);
        break;
    }
  }
  undo_ledger_.clear();
  // Main memory is gone with the node: the cache is cold.
  lru_.clear();
  cache_.clear();
}

// ---------------------------------------------------------------------------
// Mirrored drives
// ---------------------------------------------------------------------------

bool Volume::DriveUp(int drive) const {
  return drive >= 0 && drive < drive_count() && drive_up_[drive];
}

void Volume::FailDrive(int drive) {
  if (drive < 0 || drive >= drive_count()) return;
  drive_up_[drive] = false;
}

Result<size_t> Volume::ReviveDrive(int drive) {
  if (drive < 0 || drive >= drive_count()) {
    return Status::InvalidArgument("no such drive");
  }
  if (drive_up_[drive]) return size_t{0};
  if (!Usable()) return Status::IoError("no survivor to copy from");
  size_t copied = 0;
  if (drive_stale_[drive]) {
    for (const auto& [n, f] : files_) {
      (void)n;
      copied += f->record_count();
    }
    physical_writes_ += static_cast<int64_t>(copied);
    if (stats_ != nullptr) {
      stats_->Incr(m_physical_writes_, static_cast<int64_t>(copied));
    }
    drive_stale_[drive] = false;
  }
  drive_up_[drive] = true;
  return copied;
}

bool Volume::Usable() const { return UpDrives() > 0; }

int Volume::UpDrives() const {
  int n = 0;
  for (int d = 0; d < drive_count(); ++d) n += drive_up_[d] ? 1 : 0;
  return n;
}

// ---------------------------------------------------------------------------
// Archive
// ---------------------------------------------------------------------------

Bytes Volume::Archive() const {
  Bytes out;
  PutLengthPrefixed(&out, Slice(name_));
  PutVarint64(&out, files_.size());
  for (const auto& [fname, file] : files_) {
    PutLengthPrefixed(&out, Slice(fname));
    PutFixed8(&out, static_cast<uint8_t>(file->organization()));
    PutFixed8(&out, file->audited() ? 1 : 0);
    PutVarint32(&out, static_cast<uint32_t>(file->schema().alternate_keys.size()));
    for (const auto& f : file->schema().alternate_keys) {
      PutLengthPrefixed(&out, Slice(f));
    }
    file->ArchiveTo(&out);
  }
  return out;
}

Status Volume::RestoreFromArchive(const Slice& archive) {
  Slice in = archive;
  std::string archived_name;
  if (!GetLengthPrefixedString(&in, &archived_name)) {
    return DecodeError("volume name");
  }
  uint64_t nfiles;
  if (!GetVarint64(&in, &nfiles)) return DecodeError("file count");

  std::map<std::string, std::unique_ptr<StructuredFile>> restored;
  for (uint64_t i = 0; i < nfiles; ++i) {
    std::string fname;
    uint8_t org_byte, audited;
    if (!GetLengthPrefixedString(&in, &fname) || !GetFixed8(&in, &org_byte) ||
        !GetFixed8(&in, &audited)) {
      return DecodeError("file header");
    }
    uint32_t nalt;
    if (!GetVarint32(&in, &nalt)) return DecodeError("schema");
    FileOptions options;
    options.audited = audited != 0;
    options.block_size = config_.block_size;
    for (uint32_t k = 0; k < nalt; ++k) {
      std::string field;
      if (!GetLengthPrefixedString(&in, &field)) return DecodeError("alt key");
      options.schema.alternate_keys.push_back(field);
    }
    auto file = MakeFile(static_cast<FileOrganization>(org_byte), fname,
                         std::move(options));
    if (file == nullptr) return Status::Corruption("bad file organization");
    ENCOMPASS_RETURN_IF_ERROR(file->RestoreFrom(&in));
    restored[fname] = std::move(file);
  }
  files_ = std::move(restored);
  undo_ledger_.clear();
  lru_.clear();
  cache_.clear();
  return Status::Ok();
}

}  // namespace encompass::storage
