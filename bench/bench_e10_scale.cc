// E10 — parallel simulation engine scaling. The PDES engine partitions the
// event schedule across per-node loops and runs them on a worker pool under
// conservative synchronization (lookahead = minimum link latency), with the
// guarantee that every engine — the legacy single queue (workers=0), the
// single-threaded PDES oracle (workers=1), and any worker pool (workers=N) —
// produces byte-identical same-seed results. This binary measures what the
// parallelism buys: events/second on a synthetic multi-node workload at
// 2/4/8/16 nodes, single-threaded vs a worker pool sized to the host.
//
// The workload is engine-shaped, not application-shaped: each node runs
// several self-rescheduling timer chains (local work, ~50us apart, jittered
// from the node's own PRNG stream) and every 8th step posts a message one
// node around the ring with >= lookahead delay (cross-node work). Per-node
// accumulators are summed at the end into an order-independent checksum the
// bench asserts is identical across all engines, so the speedup table can
// never be quoted from runs that diverged.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sim/simulation.h"

namespace encompass::bench {
namespace {

constexpr int kChainsPerNode = 4;
constexpr uint64_t kPostEvery = 8;  // every 8th chain step posts to the ring

// One step of a chain pinned to `node`: local PRNG work, an occasional
// cross-node post, then re-arm. Free function so the recursion needs no
// heap-allocated self-reference.
void ChainStep(sim::Simulation* sim, std::vector<uint64_t>* acc, uint16_t node,
               int nodes, uint64_t step) {
  Random& rng = sim->RngFor(node);
  (*acc)[node] += rng.Uniform(1000);
  if (step % kPostEvery == 0) {
    // Ring neighbor; the receiving side only bumps a counter (it must not
    // draw from the destination's PRNG stream, which belongs to that node's
    // local chains). Delay is at least the lookahead, like any real link.
    auto dst = static_cast<uint16_t>(node % nodes + 1);
    sim->PostToNode(dst, Millis(15) + Micros(node * 7),
                    [acc, dst]() { (*acc)[dst] += 1; });
  }
  sim->AfterOn(node, Micros(40 + rng.Uniform(20)),
               [sim, acc, node, nodes, step]() {
                 ChainStep(sim, acc, node, nodes, step + 1);
               });
}

struct EngineRun {
  uint64_t executed = 0;
  uint64_t checksum = 0;
  double wall_s = 0;
  double events_per_sec = 0;
};

EngineRun RunSynthetic(int nodes, int workers, SimDuration span) {
  sim::Simulation sim(/*seed=*/42, workers);
  // No Network in this bench, so declare the "link latency" ourselves: it is
  // the engine's conservative lookahead, and the floor for every post above.
  sim.NoteLinkLatency(Millis(15));
  std::vector<uint64_t> acc(static_cast<size_t>(nodes) + 1, 0);
  for (int n = 1; n <= nodes; ++n) {
    sim.EnsureNode(static_cast<uint16_t>(n));
  }
  for (int n = 1; n <= nodes; ++n) {
    for (int c = 0; c < kChainsPerNode; ++c) {
      sim.AfterOn(static_cast<uint16_t>(n), Micros(10 + 13 * c),
                  [&sim, &acc, n, nodes]() {
                    ChainStep(&sim, &acc, static_cast<uint16_t>(n), nodes, 1);
                  });
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  sim.RunUntil(span);
  const auto t1 = std::chrono::steady_clock::now();
  EngineRun r;
  r.executed = sim.ExecutedEvents();
  for (int n = 1; n <= nodes; ++n) r.checksum += acc[static_cast<size_t>(n)];
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  if (r.wall_s > 0) {
    r.events_per_sec = static_cast<double>(r.executed) / r.wall_s;
  }
  return r;
}

void TableScaling() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int pool = static_cast<int>(std::min(hw, 8u));
  Header("E10.a events/second by node count and engine (seed 42, 1 sim-sec)");
  printf("host threads: %u (worker pool: %d)\n", hw, pool);
  printf("%6s %14s %14s %14s %9s\n", "nodes", "legacy eps", "oracle eps",
         "parallel eps", "speedup");
  for (int nodes : {2, 4, 8, 16}) {
    const SimDuration span = Seconds(1);
    EngineRun legacy = RunSynthetic(nodes, 0, span);
    EngineRun oracle = RunSynthetic(nodes, 1, span);
    EngineRun par = RunSynthetic(nodes, pool, span);
    // The determinism contract, enforced before any number is reported:
    // same seed, any engine, identical history.
    if (legacy.executed != oracle.executed || oracle.executed != par.executed ||
        legacy.checksum != oracle.checksum || oracle.checksum != par.checksum) {
      printf("ENGINE DIVERGENCE at %d nodes: legacy %llu/%llu oracle %llu/%llu "
             "parallel %llu/%llu (executed/checksum)\n",
             nodes, (unsigned long long)legacy.executed,
             (unsigned long long)legacy.checksum,
             (unsigned long long)oracle.executed,
             (unsigned long long)oracle.checksum,
             (unsigned long long)par.executed,
             (unsigned long long)par.checksum);
      ReportValue("divergence", 1);
      continue;
    }
    const double speedup =
        oracle.events_per_sec > 0 ? par.events_per_sec / oracle.events_per_sec
                                  : 0;
    printf("%6d %14.0f %14.0f %14.0f %8.2fx\n", nodes, legacy.events_per_sec,
           oracle.events_per_sec, par.events_per_sec, speedup);
    const std::string k = "nodes" + std::to_string(nodes);
    ReportValue(k + ".events", static_cast<double>(par.executed));
    ReportValue(k + ".legacy_eps", legacy.events_per_sec);
    ReportValue(k + ".single_eps", oracle.events_per_sec);
    ReportValue(k + ".parallel_eps", par.events_per_sec);
    ReportValue(k + ".speedup", speedup);
  }
  ReportValue("hw_threads", static_cast<double>(hw));
  ReportValue("pool_workers", static_cast<double>(pool));
  // Speedup claims are only meaningful with real cores to run the pool on;
  // CI gates on nodes8.speedup >= 2 only when hw_limited is 0.
  ReportValue("hw_limited", hw < 4 ? 1 : 0);
}

void TableWorkerSweep() {
  Header("E10.b 8 nodes: events/second by worker count");
  printf("%9s %14s\n", "workers", "events/s");
  for (int workers : {0, 1, 2, 4, 8}) {
    EngineRun r = RunSynthetic(8, workers, Seconds(1));
    printf("%9d %14.0f\n", workers, r.events_per_sec);
    ReportValue("sweep.workers" + std::to_string(workers) + ".eps",
                r.events_per_sec);
  }
}

void BM_SyntheticEngine(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  uint64_t executed = 0;
  for (auto _ : state) {
    EngineRun r = RunSynthetic(nodes, workers, Millis(200));
    benchmark::DoNotOptimize(r.checksum);
    executed += r.executed;
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(executed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SyntheticEngine)
    ->Args({8, 1})
    ->Args({8, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace encompass::bench

int main(int argc, char** argv) {
  encompass::bench::InitReport("e10_scale");
  encompass::bench::ReportMeta(/*seed=*/42);
  printf("E10: conservative-PDES engine scaling — per-node event loops on a "
         "worker pool\n");
  encompass::bench::TableScaling();
  encompass::bench::TableWorkerSweep();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  encompass::bench::WriteReport();
  return 0;
}
