# Empty compiler generated dependencies file for bench_e1_online_recovery.
# This may be replaced when dependencies are built.
