// F1 — Figure 1 (the NonStop hardware architecture). Validates and measures
// the redundancy properties the architecture section claims: at least two
// paths between any two components, so no single-module failure stops
// service. Tables: message-path latencies; service continuity across each
// single-module failure class; mirrored-disc failover/revive.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "net/network.h"
#include "os/cluster.h"
#include "os/process.h"
#include "test_util.h"

namespace encompass::bench {
namespace {

using testutil::TestClient;

constexpr uint32_t kEcho = net::kTagApp + 1;

class Echo : public os::Process {
 public:
  void OnMessage(const net::Message& msg) override {
    Reply(msg, Status::Ok(), msg.payload);
  }
};

SimDuration MeasureRoundTrip(sim::Simulation* sim, TestClient* client,
                             const net::Address& dst) {
  SimTime start = sim->Now();
  auto* o = client->CallRaw(dst, kEcho, ToBytes("ping"));
  sim->Run();
  return o->done && o->status.ok() ? sim->Now() - start : -1;
}

void TableMessagePaths() {
  Header("F1.a message round-trip latency by path (simulated)");
  sim::Simulation sim(1);
  os::Cluster cluster(&sim);
  os::Node* n1 = cluster.AddNode(1);
  os::Node* n2 = cluster.AddNode(2);
  os::Node* n3 = cluster.AddNode(3);
  cluster.Link(1, 2);
  cluster.Link(2, 3);  // node 3 reachable from 1 only via 2

  auto* same_cpu = n1->Spawn<Echo>(0);
  auto* cross_cpu = n1->Spawn<Echo>(1);
  auto* remote1 = n2->Spawn<Echo>(0);
  auto* remote2 = n3->Spawn<Echo>(0);
  auto* client = n1->Spawn<TestClient>(0);
  sim.Run();

  printf("%-28s %12s\n", "path", "rtt (us)");
  printf("%-28s %12lld\n", "same CPU",
         (long long)MeasureRoundTrip(&sim, client, net::Address(same_cpu->id())));
  printf("%-28s %12lld\n", "cross CPU (IPC bus)",
         (long long)MeasureRoundTrip(&sim, client, net::Address(cross_cpu->id())));
  printf("%-28s %12lld\n", "cross node, 1 hop",
         (long long)MeasureRoundTrip(&sim, client, net::Address(remote1->id())));
  printf("%-28s %12lld\n", "cross node, 2 hops",
         (long long)MeasureRoundTrip(&sim, client, net::Address(remote2->id())));
}

void TableSingleModuleFailures() {
  Header("F1.b single-module failures: service continues (NonStop)");
  printf("%-34s %10s %10s %10s\n", "injected failure", "committed", "failed",
         "conserved");
  struct Case {
    const char* name;
    std::function<void(BankRig&)> inject;
  };
  const Case cases[] = {
      {"none (control)", [](BankRig&) {}},
      {"one CPU (disc primary)",
       [](BankRig& rig) { rig.node->node()->FailCpu(1); }},
      {"one CPU (TMP primary)",
       [](BankRig& rig) { rig.node->node()->FailCpu(3); }},
      {"IPC bus X",
       [](BankRig& rig) { rig.node->node()->SetBusUp(0, false); }},
      {"one mirrored disc drive",
       [](BankRig& rig) { rig.volume->FailDrive(0); }},
  };
  for (const auto& c : cases) {
    BankRig rig = MakeBankRig(/*seed=*/7, /*cpus=*/4, /*accounts=*/50,
                              /*terminals=*/4, /*iterations=*/25);
    rig.sim->RunFor(Millis(50));
    c.inject(rig);
    rig.sim->RunFor(Seconds(300));
    rig.sim->Run();
    long long sum = apps::banking::SumBalances(rig.volume, "acct");
    printf("%-34s %10llu %10llu %10s\n", c.name,
           (unsigned long long)rig.Primary()->transactions_committed(),
           (unsigned long long)rig.Primary()->programs_failed(),
           sum == 50 * 1000 ? "yes" : "NO");
  }
}

void TableMirrorFailoverRevive() {
  Header("F1.c mirrored disc: failover and revive");
  storage::Volume vol("$DATA1");
  vol.CreateFile("f", storage::FileOrganization::kKeySequenced);
  for (int i = 0; i < 5000; ++i) {
    vol.Mutate("f", storage::MutationOp::kInsert,
               Slice("key" + std::to_string(i)), Slice("value"));
  }
  vol.Flush();
  printf("drives up: %d, usable: %s\n", vol.UpDrives(),
         vol.Usable() ? "yes" : "yes");
  vol.FailDrive(0);
  auto r = vol.Mutate("f", storage::MutationOp::kUpdate, Slice("key1"),
                      Slice("v2"));
  printf("after drive-0 failure: usable=%s write=%s (single drive carries on)\n",
         vol.Usable() ? "yes" : "no", r.status.ok() ? "ok" : "failed");
  auto copied = vol.ReviveDrive(0);
  printf("revive drive 0: copied %zu records back to the stale mirror\n",
         copied.ok() ? *copied : 0);
  vol.FailDrive(0);
  vol.FailDrive(1);
  auto r2 = vol.ReadRecord("f", Slice("key1"));
  printf("both drives down: read=%s (dual failure IS a volume outage)\n",
         r2.status.ToString().c_str());
}

void BM_IpcRoundTrip(benchmark::State& state) {
  sim::Simulation sim(1);
  os::Cluster cluster(&sim);
  os::Node* n1 = cluster.AddNode(1);
  auto* echo = n1->Spawn<Echo>(1);
  auto* client = n1->Spawn<TestClient>(0);
  sim.Run();
  int64_t done = 0;
  for (auto _ : state) {
    client->CallRaw(net::Address(echo->id()), kEcho, {});
    sim.Run();
    ++done;
  }
  state.counters["sim_us_per_rtt"] = benchmark::Counter(
      static_cast<double>(sim.Now()) / static_cast<double>(done));
  state.SetItemsProcessed(done);
}
BENCHMARK(BM_IpcRoundTrip);

void BM_NetworkRouteRecompute(benchmark::State& state) {
  sim::Simulation sim(1);
  net::Network network(&sim);
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) network.AddNode(i, [](net::Message) {});
  for (int i = 0; i + 1 < n; ++i) network.AddLink(i, i + 1);
  for (auto _ : state) {
    auto route = network.Route(0, n - 1);
    benchmark::DoNotOptimize(route);
  }
}
BENCHMARK(BM_NetworkRouteRecompute)->Arg(4)->Arg(16)->Arg(50);

}  // namespace
}  // namespace encompass::bench

int main(int argc, char** argv) {
  encompass::bench::InitReport("fig1_architecture");
  encompass::bench::ReportMeta(/*seed=*/7);
  printf("F1: Figure 1 — NonStop architecture redundancy\n");
  encompass::bench::TableMessagePaths();
  encompass::bench::TableSingleModuleFailures();
  encompass::bench::TableMirrorFailoverRevive();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  encompass::bench::WriteReport();
  return 0;
}
