#include "audit/audit_process.h"

#include <algorithm>

#include "common/coding.h"
#include "common/logging.h"

namespace encompass::audit {

Bytes EncodeAuditBatch(const std::vector<AuditRecord>& records) {
  Bytes out;
  PutVarint32(&out, static_cast<uint32_t>(records.size()));
  for (const auto& rec : records) {
    PutLengthPrefixed(&out, Slice(rec.Encode()));
  }
  return out;
}

Result<std::vector<AuditRecord>> DecodeAuditBatch(const Slice& payload) {
  Slice in = payload;
  uint32_t n;
  if (!GetVarint32(&in, &n)) return DecodeError("audit batch count");
  // Every record is length-prefixed (>= 1 byte each): a count exceeding the
  // remaining payload is malformed, and reserving it would be an allocation
  // bomb on a corrupt message.
  if (static_cast<uint64_t>(n) > in.size()) {
    return DecodeError("audit batch count exceeds payload");
  }
  std::vector<AuditRecord> records;
  records.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Slice body;
    if (!GetLengthPrefixed(&in, &body)) return DecodeError("audit batch entry");
    auto rec = AuditRecord::Decode(&body);
    if (!rec.ok()) return rec.status();
    records.push_back(std::move(*rec));
  }
  return records;
}

void AuditProcess::OnPairAttach() {
  m_.appended = stats().RegisterCounter("audit.appended");
  m_.forces = stats().RegisterCounter("audit.forces");
  m_.forced_records = stats().RegisterCounter("audit.forced_records");
  m_.files_purged = stats().RegisterCounter("audit.files_purged");
  m_.group_commit_size = stats().RegisterHistogram("audit.group_commit_size");
}

void AuditProcess::OnRequest(const net::Message& msg) {
  // The backup is passive: it only mirrors via checkpoints. (The trail
  // itself is shared disc state, so there is nothing to mirror here beyond
  // the name registration handled by the pair base class.)
  if (!IsPrimary()) {
    Reply(msg, Status::Unavailable("backup audit process"));
    return;
  }
  switch (msg.tag) {
    case kAuditAppend: HandleAppend(msg); break;
    case kAuditForce: HandleForce(msg); break;
    case kAuditFetchTxn: HandleFetch(msg); break;
    case kAuditPurge: {
      // Purging is safe only for audit written before the last archive
      // point; the caller (operations / the archive utility) owns that
      // decision, as in real TMF.
      Slice in(msg.payload);
      uint64_t up_to_lsn;
      if (!GetFixed64(&in, &up_to_lsn)) {
        Reply(msg, Status::InvalidArgument("bad purge payload"));
        break;
      }
      size_t purged = config_.trail->Purge(up_to_lsn);
      stats().Incr(m_.files_purged, static_cast<int64_t>(purged));
      Bytes reply;
      PutVarint64(&reply, purged);
      Reply(msg, Status::Ok(), reply);
      break;
    }
    default:
      Reply(msg, Status::InvalidArgument("unknown audit tag"));
  }
}

void AuditProcess::HandleAppend(const net::Message& msg) {
  auto batch = DecodeAuditBatch(Slice(msg.payload));
  if (!batch.ok()) {
    LOG_WARN << DebugName() << ": bad append batch: " << batch.status().ToString();
    Reply(msg, batch.status());
    return;
  }
  for (auto& rec : *batch) {
    config_.trail->Append(std::move(rec));
  }
  stats().Incr(m_.appended, static_cast<int64_t>(batch->size()));
  if (msg.request_id != 0) Reply(msg, Status::Ok());
}

void AuditProcess::HandleForce(const net::Message& msg) {
  // Group commit: one physical write satisfies every force request that
  // arrived before it started. A request arriving while a write is already
  // in flight may cover records the running write does not, so it joins the
  // batch for the *next* write.
  waiting_.push_back(
      ForceWaiter{msg.src, msg.request_id, msg.tag, current_trace()});
  if (write_in_flight_ || gathering_) return;
  ArmForceWrite();
}

void AuditProcess::ArmForceWrite() {
  if (config_.group_commit_window > 0) {
    gathering_ = true;
    SetTimer(config_.group_commit_window, [this]() { StartForceWrite(); });
  } else {
    StartForceWrite();
  }
}

void AuditProcess::StartForceWrite() {
  gathering_ = false;
  if (waiting_.empty()) return;
  write_in_flight_ = true;
  std::vector<ForceWaiter> batch = std::move(waiting_);
  waiting_.clear();
  size_t forced = config_.trail->Force();
  stats().Incr(m_.forces);
  stats().Incr(m_.forced_records, static_cast<int64_t>(forced));
  stats().Record(m_.group_commit_size, static_cast<int64_t>(batch.size()));
  // The force is a physical sequential write; reply to the whole batch when
  // it completes — each waiter under its own causal span.
  SetTimer(config_.force_latency, [this, batch = std::move(batch)]() {
    write_in_flight_ = false;
    for (const ForceWaiter& w : batch) {
      WithTraceContext(w.trace, [this, &w]() {
        SendReply(w.requester, w.tag, w.reply_to, Status::Ok());
      });
    }
    if (!waiting_.empty()) ArmForceWrite();
  });
}

void AuditProcess::HandleFetch(const net::Message& msg) {
  Slice in(msg.payload);
  uint64_t packed;
  if (!GetFixed64(&in, &packed)) {
    Reply(msg, Status::InvalidArgument("bad fetch payload"));
    return;
  }
  auto records = config_.trail->RecordsForTransaction(Transid::Unpack(packed));
  // Images at or below the undo floor predate a volume rebuild and are not
  // reflected in the volume; backing them out would apply stale values.
  const uint64_t floor = config_.trail->undo_floor();
  if (floor != 0) {
    records.erase(std::remove_if(records.begin(), records.end(),
                                 [floor](const AuditRecord& r) {
                                   return r.lsn <= floor;
                                 }),
                  records.end());
  }
  Reply(msg, Status::Ok(), EncodeAuditBatch(records));
}

}  // namespace encompass::audit
