#include "tmf/commit_acceptor.h"

#include <memory>

#include "common/logging.h"

namespace encompass::tmf {

void CommitAcceptor::OnPairAttach() {
  m_prepares_ = stats().RegisterCounter("acceptor.prepares");
  m_accepts_ = stats().RegisterCounter("acceptor.accepts");
  m_rejections_ = stats().RegisterCounter("acceptor.rejections");
  m_votes_ = stats().RegisterCounter("acceptor.votes");
  m_duplicate_votes_ = stats().RegisterCounter("tmf.acceptor_duplicate_votes");
  m_reclaims_ = stats().RegisterCounter("acceptor.reclaims");
  m_sealed_answers_ = stats().RegisterCounter("acceptor.sealed_answers");
  m_log_instances_ = stats().RegisterHistogram("tmf.acceptor_log_instances");
  if (config_.sweep_interval > 0 && IsPrimary()) ArmSweep();
}

void CommitAcceptor::OnRequest(const net::Message& msg) {
  // One-way fast-path traffic first: it carries no reply path, so a backup
  // member just drops it (the primary's log is the durable one).
  if (msg.tag == kTmfPaxosVote) {
    if (IsPrimary()) HandleVote(msg);
    return;
  }
  if (msg.tag == kTmfPaxosReclaim) {
    if (IsPrimary()) HandleReclaim(msg);
    return;
  }
  if (!IsPrimary()) {
    Reply(msg, Status::Unavailable("backup acceptor"));
    return;
  }
  switch (msg.tag) {
    case kTmfPaxosPrepare:
      HandlePrepare(msg);
      break;
    case kTmfPaxosAccept:
      HandleAccept(msg);
      break;
    default:
      Reply(msg, Status::InvalidArgument("unknown acceptor tag"));
  }
}

void CommitAcceptor::HandlePrepare(const net::Message& msg) {
  Transid t;
  uint32_t ballot;
  uint16_t voter;
  if (!DecodePaxosPrepare(Slice(msg.payload), &t, &ballot, &voter)) {
    Reply(msg, Status::InvalidArgument("malformed prepare"));
    return;
  }
  stats().Incr(m_prepares_);
  if (const Disposition* s = config_.log->SealedValue(t.Pack())) {
    // The instance was reclaimed: the transaction's final disposition is
    // already everywhere. Answer with the seal instead of resurrecting an
    // empty instance the proposer could steer to a contradictory choice.
    stats().Incr(m_sealed_answers_);
    PaxosPrepareReply r;
    r.sealed = true;
    r.sealed_value = *s;
    Reply(msg, Status::Ok(), EncodePaxosPrepareReply(r));
    return;
  }
  CommitAcceptorEntry& e = config_.log->At(t, voter);
  if (e.born == 0) e.born = sim()->Now();
  PaxosPrepareReply r;
  r.granted = ballot > e.promised;
  if (r.granted) e.promised = ballot;
  r.promised = e.promised;
  r.accepted_ballot = e.accepted_ballot;
  r.has_value = e.has_value;
  r.value = e.value;
  r.participants = e.participants;
  if (!r.granted) {
    stats().Incr(m_rejections_);
    Reply(msg, Status::Ok(), EncodePaxosPrepareReply(r));
    return;
  }
  ReplyForced(msg, EncodePaxosPrepareReply(r));
}

void CommitAcceptor::HandleAccept(const net::Message& msg) {
  Transid t;
  uint32_t ballot;
  Disposition value;
  uint16_t voter;
  std::vector<net::NodeId> participants;
  if (!DecodePaxosAccept(Slice(msg.payload), &t, &ballot, &value, &voter,
                         &participants)) {
    Reply(msg, Status::InvalidArgument("malformed accept"));
    return;
  }
  stats().Incr(m_accepts_);
  if (const Disposition* s = config_.log->SealedValue(t.Pack())) {
    stats().Incr(m_sealed_answers_);
    PaxosAcceptReply r;
    r.sealed = true;
    r.sealed_value = *s;
    Reply(msg, Status::Ok(), EncodePaxosAcceptReply(r));
    return;
  }
  CommitAcceptorEntry& e = config_.log->At(t, voter);
  if (e.born == 0) e.born = sim()->Now();
  PaxosAcceptReply r;
  // A replayed accept at the ballot already holding this exact value (a
  // respawned participant re-casting its vote, a home takeover re-running
  // its round) is answered idempotently: accepted, but without a second
  // force — the first one already made it durable.
  if (e.has_value && e.accepted_ballot == ballot && e.value == value) {
    stats().Incr(m_duplicate_votes_);
    r.accepted = true;
    r.promised = e.promised;
    Reply(msg, Status::Ok(), EncodePaxosAcceptReply(r));
    return;
  }
  // >= admits a re-accept at the promised ballot; a strictly higher promise
  // (a usurping recovery proposer) wins.
  r.accepted = ballot >= e.promised;
  if (r.accepted) {
    e.promised = ballot;
    e.accepted_ballot = ballot;
    e.has_value = true;
    e.value = value;
    if (!participants.empty()) e.participants = participants;
  } else {
    stats().Incr(m_rejections_);
  }
  r.promised = e.promised;
  if (!r.accepted) {
    Reply(msg, Status::Ok(), EncodePaxosAcceptReply(r));
    return;
  }
  ReplyForced(msg, EncodePaxosAcceptReply(r));
}

void CommitAcceptor::HandleVote(const net::Message& msg) {
  Transid t;
  uint32_t ballot;
  Disposition value;
  uint16_t voter;
  std::vector<net::NodeId> participants;
  if (!DecodePaxosAccept(Slice(msg.payload), &t, &ballot, &value, &voter,
                         &participants) ||
      voter == 0) {
    return;  // one-way: malformed votes are dropped
  }
  stats().Incr(m_votes_);
  if (config_.log->SealedValue(t.Pack()) != nullptr) {
    // Already decided and reclaimed; the home no longer tallies this
    // transaction, so there is nobody to ack.
    stats().Incr(m_sealed_answers_);
    return;
  }
  CommitAcceptorEntry& e = config_.log->At(t, voter);
  if (e.born == 0) e.born = sim()->Now();
  // A respawned participant replays its vote: the first force already made
  // it durable, so the reply is idempotent — re-ack (the original ack may
  // have died with the home's old incarnation) without a second force.
  if (e.has_value && e.accepted_ballot == ballot && e.value == value) {
    stats().Incr(m_duplicate_votes_);
    QueueVoteAck(t, voter);
    return;
  }
  if (ballot < e.promised) {
    // A recovery proposer already usurped this instance; the vote is void.
    stats().Incr(m_rejections_);
    return;
  }
  e.promised = ballot > e.promised ? ballot : e.promised;
  e.accepted_ballot = ballot;
  e.has_value = true;
  e.value = value;
  if (!participants.empty()) e.participants = participants;
  if (config_.force_latency <= 0) {
    QueueVoteAck(t, voter);
    return;
  }
  SetTimer(config_.force_latency, [this, t, voter]() { QueueVoteAck(t, voter); });
}

void CommitAcceptor::HandleReclaim(const net::Message& msg) {
  std::vector<std::pair<uint64_t, Disposition>> txns;
  if (!DecodePaxosReclaim(Slice(msg.payload), &txns)) return;
  for (const auto& [packed, d] : txns) {
    config_.log->Seal(packed, d);
    stats().Incr(m_reclaims_);
  }
}

void CommitAcceptor::QueueVoteAck(const Transid& t, uint16_t voter) {
  pending_acks_[t.Pack()].insert(voter);
  if (!ack_flush_armed_) {
    ack_flush_armed_ = true;
    // Delay 0: fires this same instant, after every force completion
    // scheduled for it — so votes forced together ride one ack message.
    SetTimer(0, [this]() { FlushVoteAcks(); });
  }
}

void CommitAcceptor::FlushVoteAcks() {
  ack_flush_armed_ = false;
  auto pending = std::move(pending_acks_);
  pending_acks_.clear();
  for (const auto& [packed, voters] : pending) {
    Transid t = Transid::Unpack(packed);
    PaxosVoteAck ack;
    ack.transid = t;
    ack.acceptor_index = config_.index;
    ack.voters.assign(voters.begin(), voters.end());
    // Stamp the transaction on the one-way send so per-transaction message
    // accounting attributes it.
    set_current_transid(packed);
    Send(net::Address(t.home_node, "$TMP"), kTmfPaxosVoteAck,
         EncodePaxosVoteAck(ack));
    set_current_transid(0);
  }
}

void CommitAcceptor::ArmSweep() {
  SetTimer(config_.sweep_interval, [this]() {
    if (IsPrimary()) Sweep();
    ArmSweep();
  });
}

void CommitAcceptor::Sweep() {
  CommitAcceptorLog& log = *config_.log;
  stats().Record(m_log_instances_, static_cast<int64_t>(log.entries.size()));
  const SimTime now = sim()->Now();
  // Distinct aged transactions; the home answers per transaction.
  uint64_t last = 0;
  bool have_last = false;
  for (const auto& [key, e] : log.entries) {
    const uint64_t packed = key.first;
    if (have_last && packed == last) continue;
    last = packed;
    have_last = true;
    if (e.born == 0 || now - e.born < config_.sweep_age) continue;
    if (!sweep_in_flight_.insert(packed).second) continue;
    Transid t = Transid::Unpack(packed);
    os::CallOptions opt;
    opt.timeout = config_.sweep_interval;
    Call(net::Address(t.home_node, "$TMP"), kTmfResolveTxn,
         EncodeResolveTxn(t, /*recovering=*/false),
         [this, packed](const Status& s, const net::Message& reply) {
           sweep_in_flight_.erase(packed);
           Disposition d;
           if (s.ok() && DecodeDisposition(Slice(reply.payload), &d) &&
               d != Disposition::kUnknown) {
             config_.log->Seal(packed, d);
             stats().Incr(m_reclaims_);
           }
         },
         opt);
  }
}

void CommitAcceptor::ReplyForced(const net::Message& msg, Bytes payload) {
  // The log mutation above is already applied — the log object IS the
  // durable medium — so a takeover mid-force loses only the reply; the
  // caller times out and retries against state that never regresses.
  if (config_.force_latency <= 0) {
    Reply(msg, Status::Ok(), std::move(payload));
    return;
  }
  net::Message request = msg;
  SetTimer(config_.force_latency,
           [this, request, payload = std::move(payload)]() mutable {
             Reply(request, Status::Ok(), std::move(payload));
           });
}

namespace {

/// Tally of one phase of a round over n acceptors.
struct PhaseTally {
  int yes = 0;
  int responses = 0;
  uint32_t best_accepted_ballot = 0;
  Disposition adopted = Disposition::kUnknown;
  bool have_adopted = false;
  int adopted_count = 0;  ///< replies reporting best_accepted_ballot
  std::vector<net::NodeId> participants;
  bool fired = false;
};

}  // namespace

void RunPaxosRoundEx(os::Process* proc, const PaxosRoundConfig& cfg,
                     const Transid& t, uint32_t attempt, Disposition proposed,
                     bool skip_prepare,
                     std::function<void(const PaxosRoundOutcome&)> done) {
  const auto endpoints = cfg.Endpoints();
  const int n = static_cast<int>(endpoints.size());
  const int majority = n / 2 + 1;
  if (n == 0) {
    done(PaxosRoundOutcome{});
    return;
  }
  const uint32_t ballot = MakePaxosBallot(attempt, proc->node()->id());
  const uint16_t voter = cfg.voter;
  os::CallOptions opt;
  opt.timeout = cfg.call_timeout;

  auto start_accept = [proc, endpoints, t, ballot, voter, n, majority, opt,
                       done](Disposition value,
                             std::vector<net::NodeId> participants) {
    auto tally = std::make_shared<PhaseTally>();
    for (const auto& [node, name] : endpoints) {
      proc->Call(net::Address(node, name), kTmfPaxosAccept,
                 EncodePaxosAccept(t, ballot, value, voter, participants),
                 [tally, n, majority, value, participants, done](
                     const Status& s, const net::Message& reply) {
                   if (tally->fired) return;
                   ++tally->responses;
                   PaxosAcceptReply r;
                   if (s.ok() &&
                       DecodePaxosAcceptReply(Slice(reply.payload), &r)) {
                     if (r.sealed) {
                       tally->fired = true;
                       PaxosRoundOutcome o;
                       o.value = r.sealed_value;
                       o.sealed = true;
                       done(o);
                       return;
                     }
                     if (r.accepted) ++tally->yes;
                   }
                   if (tally->yes >= majority) {
                     // The value is chosen: a majority holds it durably.
                     tally->fired = true;
                     PaxosRoundOutcome o;
                     o.value = value;
                     o.participants = participants;
                     done(o);
                   } else if (tally->responses == n) {
                     tally->fired = true;
                     done(PaxosRoundOutcome{});
                   }
                 },
                 opt);
    }
  };

  if (skip_prepare) {
    start_accept(proposed, {});
    return;
  }

  auto tally = std::make_shared<PhaseTally>();
  for (const auto& [node, name] : endpoints) {
    proc->Call(
        net::Address(node, name), kTmfPaxosPrepare,
        EncodePaxosPrepare(t, ballot, voter),
        [tally, n, majority, proposed, start_accept, done](
            const Status& s, const net::Message& reply) {
          if (tally->fired) return;
          ++tally->responses;
          PaxosPrepareReply r;
          if (s.ok() && DecodePaxosPrepareReply(Slice(reply.payload), &r)) {
            if (r.sealed) {
              tally->fired = true;
              PaxosRoundOutcome o;
              o.value = r.sealed_value;
              o.sealed = true;
              done(o);
              return;
            }
            if (r.granted) {
              ++tally->yes;
              if (r.has_value &&
                  r.accepted_ballot >= tally->best_accepted_ballot) {
                if (r.accepted_ballot == tally->best_accepted_ballot &&
                    tally->have_adopted) {
                  ++tally->adopted_count;
                } else {
                  tally->adopted_count = 1;
                }
                tally->best_accepted_ballot = r.accepted_ballot;
                tally->adopted = r.value;
                tally->have_adopted = true;
                if (!r.participants.empty()) {
                  tally->participants = r.participants;
                }
              } else if (!r.participants.empty() &&
                         tally->participants.empty()) {
                tally->participants = r.participants;
              }
            }
          }
          if (tally->yes >= majority) {
            tally->fired = true;
            if (tally->adopted_count >= majority) {
              // The prepare quorum itself proves the value chosen — a
              // majority reports the same accepted ballot (a ballot holds
              // one value, so same ballot at a majority = chosen). No
              // accept phase needed: the resolver is a learner here.
              PaxosRoundOutcome o;
              o.value = tally->adopted;
              o.participants = tally->participants;
              done(o);
              return;
            }
            // A promise quorum stands; propose the value of the highest
            // accepted ballot it revealed, else our own.
            start_accept(tally->have_adopted ? tally->adopted : proposed,
                         tally->participants);
          } else if (tally->responses == n) {
            tally->fired = true;
            done(PaxosRoundOutcome{});
          }
        },
        opt);
  }
}

void RunPaxosRound(os::Process* proc, const PaxosRoundConfig& cfg,
                   const Transid& t, uint32_t attempt, Disposition proposed,
                   bool skip_prepare, std::function<void(Disposition)> done) {
  RunPaxosRoundEx(proc, cfg, t, attempt, proposed, skip_prepare,
                  [done](const PaxosRoundOutcome& o) { done(o.value); });
}

void ResolvePaxosOutcome(os::Process* proc, const PaxosRoundConfig& cfg,
                         const Transid& t, uint32_t attempt, bool fast_path,
                         std::function<void(Disposition)> done) {
  PaxosRoundConfig home_cfg = cfg;
  home_cfg.voter = fast_path ? t.home_node : 0;
  RunPaxosRoundEx(
      proc, home_cfg, t, attempt, Disposition::kAborted, /*skip_prepare=*/false,
      [proc, cfg, t, attempt, fast_path, done](const PaxosRoundOutcome& o) {
        if (o.sealed || o.value != Disposition::kCommitted || !fast_path) {
          done(o.value);
          return;
        }
        // Chosen Prepared on the home-voter instance. The transaction
        // committed iff every participant's instance also chose Prepared;
        // settle them in parallel (still proposing abort — a participant
        // that never voted must not be allowed to later).
        if (o.participants.empty()) {
          done(Disposition::kCommitted);
          return;
        }
        struct VoterTally {
          int remaining = 0;
          bool unknown = false;
          bool fired = false;
        };
        auto tally = std::make_shared<VoterTally>();
        tally->remaining = static_cast<int>(o.participants.size());
        for (net::NodeId p : o.participants) {
          PaxosRoundConfig vcfg = cfg;
          vcfg.voter = p;
          RunPaxosRoundEx(
              proc, vcfg, t, attempt, Disposition::kAborted,
              /*skip_prepare=*/false,
              [tally, done](const PaxosRoundOutcome& vo) {
                if (tally->fired) return;
                if (vo.sealed) {
                  tally->fired = true;
                  done(vo.value);
                  return;
                }
                if (vo.value == Disposition::kAborted) {
                  // One voter's instance chose Aborted: commit is
                  // impossible, the transaction aborted.
                  tally->fired = true;
                  done(Disposition::kAborted);
                  return;
                }
                if (vo.value == Disposition::kUnknown) tally->unknown = true;
                if (--tally->remaining == 0) {
                  tally->fired = true;
                  done(tally->unknown ? Disposition::kUnknown
                                      : Disposition::kCommitted);
                }
              });
        }
      });
}

}  // namespace encompass::tmf
