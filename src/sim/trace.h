// Per-transaction causal tracing.
//
// A TraceContext (packed transid + causal span id) rides on every
// net::Message. The OS layer keeps the context of the event currently being
// handled and stamps a fresh span — parented on the active one — onto each
// outgoing message, so the chain of sends, timer callbacks, and replies that
// realises one transaction forms a causal tree. Subsystems append fixed-size
// TraceEvents (no strings, no allocation beyond the ring) to the simulation's
// bounded TraceLog ring; Dump(transid) renders a deterministic per-transaction
// trace for tests and EXPERIMENTS.md.

#ifndef ENCOMPASS_SIM_TRACE_H_
#define ENCOMPASS_SIM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace encompass::sim {

/// Causal identity of the work a message (or handler) belongs to.
/// transid == 0 means "not associated with any transaction": such work is
/// never traced.
struct TraceContext {
  uint64_t transid = 0;  ///< packed tmf::Transid (home node + sequence)
  uint32_t span = 0;     ///< causal span id, unique per traced message

  bool active() const { return transid != 0; }
};

/// What happened. Values are stable identifiers used in test expectations;
/// append new kinds at the end.
enum class TraceEventKind : uint8_t {
  kMsgSend = 1,     ///< a=tag, b=dst node; parent=sender's active span
  kMsgDeliver = 2,  ///< a=tag; node=receiving node
  kTxnState = 3,    ///< Figure-3 transition: a=from, b=to (tmf::TxnState)
  kPhase1Start = 4,  ///< a=#audit forces requested, b=#remote children
  kPhase1Done = 5,   ///< a=1 if all votes yes, 0 otherwise
  kCommitRecord = 6,  ///< commit record forced to the MAT
  kPhase2Queued = 7,  ///< safe-delivery enqueued: a=tag, b=dst node
  kPhase2Recv = 8,    ///< phase-2 / abort record applied at a child
  kAbortStart = 9,    ///< abort decided; backout begins
  kAbortDone = 10,    ///< backout finished, txn reached kAborted
  kLockAcquire = 11,  ///< a=FNV hash of the lock key
  kLockRelease = 12,  ///< all locks of the txn released; a=#waiters granted
  kAuditForce = 13,   ///< a=#records forced in this force call
};

const char* TraceEventKindName(TraceEventKind kind);

/// One fixed-size trace record. `a` and `b` are kind-specific details as
/// documented on TraceEventKind.
struct TraceEvent {
  SimTime time = 0;
  uint64_t transid = 0;
  uint32_t span = 0;    ///< span this event belongs to
  uint32_t parent = 0;  ///< for kMsgSend: span of the sending context
  TraceEventKind kind = TraceEventKind::kMsgSend;
  uint16_t node = 0;  ///< node where the event happened
  uint32_t a = 0;
  uint32_t b = 0;

  std::string ToString() const;
};

/// Bounded ring of TraceEvents. When full, the oldest events are overwritten
/// (and counted in dropped()); recording is O(1) and allocation-free.
class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 1 << 16);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Issues the next causal span id. Deterministic given a deterministic
  /// event order, so traces are bit-stable across same-seed runs.
  uint32_t NewSpan() { return ++next_span_; }

  void Record(const TraceEvent& e);

  size_t size() const { return count_; }
  size_t dropped() const { return dropped_; }
  void Clear();

  /// All retained events for one transaction, in record (causal) order.
  std::vector<TraceEvent> Events(uint64_t transid) const;

  /// Deterministic multi-line rendering of Events(transid).
  std::string Dump(uint64_t transid) const;

 private:
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;   // next write position
  size_t count_ = 0;  // number of valid events in the ring
  size_t dropped_ = 0;
  uint32_t next_span_ = 0;
  bool enabled_ = true;
};

}  // namespace encompass::sim

#endif  // ENCOMPASS_SIM_TRACE_H_
