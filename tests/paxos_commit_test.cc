// Paxos Commit and in-doubt negotiation tests.
//
// The tentpole: with `commit_protocol = kPaxos` the home TMP replicates its
// commit/abort decision to 2F+1 CommitAcceptor pairs, the commit point
// becomes "a majority durably accepted" instead of the home MAT force, and
// any in-doubt party (participant, ROLLFORWARD, respawned home) can settle
// against a live acceptor majority while the home is down — the classic
// 2PC blocked window. These tests drive the protocol through the same storm
// schedules, worker sweeps, and hand-built crash windows the 2PC campaign
// uses, plus regression tests for the negotiation bugfixes that ride along:
// concurrent (non-head-of-line) recovery negotiation, capped backoff with a
// high-water attempts gauge, and counted (not swallowed) malformed
// resolve-transaction replies.

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "encompass/chaos.h"
#include "tmf/commit_acceptor.h"
#include "tmf/recovery.h"
#include "tmf/tmf_protocol.h"
#include "test_util.h"

namespace encompass::app {
namespace {

using testutil::TestClient;

ChaosCampaignConfig PaxosCampaignConfig(uint64_t seed) {
  // Same storm floor as the 2PC ChaosCampaignTest (PR-4 schedule): >= 8
  // faults, at least one total node crash, three nodes — with every TMP on
  // Paxos Commit and a 2F+1 = 3 acceptor group on nodes 1..3.
  ChaosCampaignConfig cfg;
  cfg.seed = seed;
  cfg.nodes = 3;
  cfg.accounts_per_node = 20;
  cfg.clients_per_node = 2;
  cfg.schedule.faults = 8;
  cfg.schedule.min_node_crashes = 1;
  cfg.commit_protocol = tmf::CommitProtocol::kPaxos;
  cfg.commit_replication = 3;
  return cfg;
}

void ExpectSurvived(const ChaosCampaignResult& r, uint64_t seed) {
  bool clean = r.quiesced && r.violations.empty() &&
               r.balance_sum == r.expected_sum && r.leaked_locks == 0 &&
               r.leaked_txns == 0 && r.pending_safe == 0 &&
               r.illegal_transitions == 0 &&
               r.recoveries_completed == r.node_crashes;
  if (!clean) {
    std::ofstream out("paxos_failing_seed_" + std::to_string(seed) +
                      ".schedule");
    out << r.schedule_dump;
    out.close();
    for (const auto& line : r.journal) {
      ADD_FAILURE() << "journal: " << line;
    }
  }
  EXPECT_TRUE(r.quiesced) << "seed " << seed << " did not quiesce";
  for (const auto& v : r.violations) {
    ADD_FAILURE() << "seed " << seed << " txn " << v.transid << ": "
                  << v.detail;
  }
  EXPECT_EQ(r.balance_sum, r.expected_sum) << "seed " << seed;
  EXPECT_EQ(r.leaked_locks, 0u) << "seed " << seed;
  EXPECT_EQ(r.leaked_txns, 0u) << "seed " << seed;
  EXPECT_EQ(r.pending_safe, 0u) << "seed " << seed;
  EXPECT_EQ(r.illegal_transitions, 0) << "seed " << seed;
  EXPECT_EQ(r.recoveries_completed, r.node_crashes) << "seed " << seed;
}

// Two-phase commit stays the default, byte for byte: a deployment that
// never mentions Paxos must spawn no acceptors, replicate nothing, and
// record nothing new (the pdes_oracle golden pins the full trace+stats
// snapshot of that path against the pre-Paxos tree).
TEST(PaxosDefaultsTest, TwoPhaseRemainsTheDefault) {
  tmf::TmpConfig cfg;
  EXPECT_EQ(cfg.commit_protocol, tmf::CommitProtocol::kTwoPhase);
  EXPECT_EQ(cfg.commit_replication, 3);
  EXPECT_TRUE(cfg.acceptor_nodes.empty());
  EXPECT_EQ(cfg.acceptor_process, "$ACCEPT");
  EXPECT_FALSE(cfg.track_indoubt_hold);
  // PR-10 knobs stay off until asked for: no direct voting, no explicit
  // endpoint placement, no message accounting — pre-PR traces byte-identical.
  EXPECT_FALSE(cfg.paxos_fast_path);
  EXPECT_TRUE(cfg.acceptor_endpoints.empty());
  EXPECT_FALSE(net::NetworkConfig{}.track_messages);

  tmf::NodeRecoveryConfig rcfg;
  EXPECT_TRUE(rcfg.acceptor_nodes.empty());
  EXPECT_EQ(rcfg.retry_backoff_cap, Seconds(8));
  EXPECT_FALSE(rcfg.paxos_fast_path);
  EXPECT_TRUE(rcfg.acceptor_endpoints.empty());

  ChaosCampaignConfig ccfg;
  EXPECT_EQ(ccfg.commit_protocol, tmf::CommitProtocol::kTwoPhase);
  EXPECT_FALSE(ccfg.paxos_fast_path);
  EXPECT_FALSE(ccfg.track_messages);

  // A default (2PC) campaign must never touch the acceptor path.
  ccfg.seed = 5;
  ccfg.nodes = 3;
  ccfg.schedule.faults = 8;
  ccfg.schedule.min_node_crashes = 1;
  ChaosCampaignResult r = RunChaosCampaign(ccfg);
  EXPECT_EQ(r.indoubt_resolved_via_acceptors, 0);
}

// The ballot encoding keeps proposers totally ordered and the home's free
// attempt-0 ballot below every recovery ballot.
TEST(PaxosDefaultsTest, BallotEncoding) {
  EXPECT_EQ(tmf::MakePaxosBallot(0, 1), 1u);
  EXPECT_EQ(tmf::MakePaxosBallot(1, 1), (1u << 16) | 1u);
  EXPECT_LT(tmf::MakePaxosBallot(0, 0xFFFF), tmf::MakePaxosBallot(1, 1));
  // Phase-1 payloads: the paxos form carries the ballot, the 2PC form stays
  // the bare 8-byte transid, and the decoder accepts both.
  Transid t = Transid{3, 1, 42};
  uint32_t ballot = 0;
  EXPECT_FALSE(
      tmf::DecodePhase1Ballot(Slice(tmf::EncodeTransidPayload(t)), &ballot));
  Bytes paxos = tmf::EncodePhase1Paxos(t, tmf::MakePaxosBallot(2, 7));
  EXPECT_TRUE(tmf::DecodePhase1Ballot(Slice(paxos), &ballot));
  EXPECT_EQ(ballot, tmf::MakePaxosBallot(2, 7));
  EXPECT_EQ(tmf::DecodeTransidPayload(Slice(paxos))->Pack(), t.Pack());
}

// The full PR-4 storm schedule under Paxos Commit: every seed must survive
// the same invariants the 2PC campaign pins — zero oracle violations,
// conserved balances, no leaks, every crashed node recovered.
class ChaosPaxosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosPaxosTest, SurvivesSeed) {
  const uint64_t seed = GetParam();
  ChaosCampaignResult r = RunChaosCampaign(PaxosCampaignConfig(seed));
  EXPECT_GE(r.schedule.faults.size(), 5u) << "seed " << seed;
  EXPECT_GE(r.node_crashes, 1u) << "seed " << seed;
  EXPECT_GT(r.txns_started, 0u) << "seed " << seed;
  EXPECT_GT(r.txns_committed, 0u) << "seed " << seed;
  ExpectSurvived(r, seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosPaxosTest,
                         ::testing::Range<uint64_t>(1, 21));

// The same paxos storm is byte-identical at every engine setting: legacy
// single queue (0), the PDES oracle (1), and worker pools of 2, 4, and 8.
TEST(ChaosPaxosParallelTest, SameSeedSameStormAtAnyWorkerCount) {
  ChaosCampaignConfig cfg = PaxosCampaignConfig(7);
  cfg.parallel_workers = 0;
  ChaosCampaignResult base = RunChaosCampaign(cfg);
  ExpectSurvived(base, 7);
  for (int workers : {1, 2, 4, 8}) {
    cfg.parallel_workers = workers;
    ChaosCampaignResult r = RunChaosCampaign(cfg);
    EXPECT_EQ(r.journal, base.journal) << "workers=" << workers;
    EXPECT_EQ(r.txns_started, base.txns_started) << "workers=" << workers;
    EXPECT_EQ(r.txns_committed, base.txns_committed) << "workers=" << workers;
    EXPECT_EQ(r.txns_aborted, base.txns_aborted) << "workers=" << workers;
    EXPECT_EQ(r.txns_unknown, base.txns_unknown) << "workers=" << workers;
    EXPECT_EQ(r.balance_sum, base.balance_sum) << "workers=" << workers;
    EXPECT_EQ(r.recoveries_completed, base.recoveries_completed)
        << "workers=" << workers;
    EXPECT_EQ(r.indoubt_resolved_via_acceptors,
              base.indoubt_resolved_via_acceptors)
        << "workers=" << workers;
  }
}

// The point of the protocol, measured: over the shared storm seeds, Paxos
// Commit settles in-doubt transactions at the acceptors while the home is
// away, so strictly fewer are still stranded when the home returns.
TEST(ChaosPaxosTest, FewerIndoubtBlockedOnHomeThanTwoPhase) {
  // "In-doubt transactions at recovery": participants cluster-wide still
  // blocked on a crashed home at the instant it returns. A 2PC participant
  // waits out the whole outage — however long — so every strand is still
  // there at recovery; a Paxos Commit participant resolves against the
  // acceptor majority ~600ms in (one escalation-grace tick plus one resolve
  // round). The storm must keep dead homes down well past that (2-4s heals)
  // and the resolve tick must undercut the outage, or both protocols read
  // near zero and the comparison is noise.
  auto comparison_storm = [](ChaosCampaignConfig* cfg) {
    cfg->schedule.faults = 10;
    cfg->schedule.min_node_crashes = 2;
    cfg->schedule.w_crash = 1.5;
    cfg->schedule.min_heal = 2'000'000;
    cfg->schedule.max_heal = 4'000'000;
    cfg->schedule.crash_recovery_pad = 4'000'000;
    cfg->indoubt_resolve_interval = Millis(250);
  };
  size_t indoubt_2pc = 0, indoubt_paxos = 0;
  int64_t via_acceptors = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    ChaosCampaignConfig two = PaxosCampaignConfig(seed);
    comparison_storm(&two);
    two.commit_protocol = tmf::CommitProtocol::kTwoPhase;
    indoubt_2pc += RunChaosCampaign(two).indoubt_at_recovery;

    ChaosCampaignConfig pax = PaxosCampaignConfig(seed);
    comparison_storm(&pax);
    ChaosCampaignResult p = RunChaosCampaign(pax);
    indoubt_paxos += p.indoubt_at_recovery;
    via_acceptors += p.indoubt_resolved_via_acceptors;
  }
  EXPECT_GT(indoubt_2pc, 0u) << "storm seeds no longer produce an in-doubt "
                                "window; the comparison is vacuous";
  EXPECT_LT(indoubt_paxos, indoubt_2pc);
  EXPECT_GT(via_acceptors, 0);
}

// ---------------------------------------------------------------------------
// Hand-built crash windows
// ---------------------------------------------------------------------------

struct Rig {
  sim::Simulation sim;
  Deployment deploy;
  TestClient* client = nullptr;
  std::unique_ptr<tmf::FileSystem> fs;

  Rig(uint64_t seed, int nodes, bool paxos, SimDuration resolve_interval = 0,
      bool fast_path = false, int replication = 3, int workers = 0)
      // The fast path's periodic acceptor sweep keeps the event queue alive
      // forever, so those rigs must settle with bounded runs too.
      : sim(seed, workers), deploy(&sim),
        bounded_(resolve_interval > 0 || fast_path) {
    for (int n = 1; n <= nodes; ++n) {
      NodeSpec spec;
      spec.id = static_cast<net::NodeId>(n);
      std::string vol = "$DATA" + std::to_string(n);
      spec.volumes = {
          VolumeSpec{vol, {FileSpec{"mark" + std::to_string(n)}}, {}}};
      spec.tmp_config.indoubt_resolve_interval = resolve_interval;
      if (paxos) {
        spec.tmp_config.commit_protocol = tmf::CommitProtocol::kPaxos;
        if (fast_path) {
          spec.tmp_config.paxos_fast_path = true;
          for (int k = 0; k < replication; ++k) {
            spec.tmp_config.acceptor_endpoints.emplace_back(
                static_cast<net::NodeId>(k % nodes + 1),
                "$ACCEPT." + std::to_string(k));
          }
        } else {
          for (int a = 1; a <= 3 && a <= nodes; ++a) {
            spec.tmp_config.acceptor_nodes.push_back(
                static_cast<net::NodeId>(a));
          }
        }
      }
      deploy.AddNode(spec);
    }
    deploy.LinkAll();
    for (int n = 1; n <= nodes; ++n) {
      std::string mark = "mark" + std::to_string(n);
      std::string vol = "$DATA" + std::to_string(n);
      EXPECT_TRUE(
          deploy.DefineFile(mark, static_cast<net::NodeId>(n), vol).ok());
      deploy.GetNode(static_cast<net::NodeId>(n))->ArchiveVolumes();
    }
  }

  /// Runs until the sim settles — bounded when a periodic resolve timer
  /// keeps the event queue alive forever.
  void Settle() {
    if (bounded_) {
      sim.RunFor(Millis(250));
    } else {
      sim.Run();
    }
  }

  /// Spawns the client on `node` and runs the sim until it settles.
  void SpawnClient(net::NodeId node) {
    client = deploy.GetNode(node)->node()->Spawn<TestClient>(2);
    fs = std::make_unique<tmf::FileSystem>(client, &deploy.catalog());
    Settle();
  }

  /// BEGINs a transaction at `home` and returns its packed transid.
  uint64_t Begin(net::NodeId home) {
    auto* b = client->CallRaw(net::Address(home, "$TMP"), tmf::kTmfBegin, {});
    Settle();
    EXPECT_TRUE(b->done && b->status.ok());
    return tmf::DecodeTransidPayload(Slice(b->payload))->Pack();
  }

  /// Inserts `key` into `file` under transaction `t`.
  void Insert(uint64_t t, const std::string& file, const std::string& key) {
    bool done = false;
    Status st;
    client->set_current_transid(t);
    fs->Insert(file, Slice(key), Slice(std::string("x")),
               [&](const Status& s, const Bytes&) {
                 st = s;
                 done = true;
               });
    client->set_current_transid(0);
    Settle();
    EXPECT_TRUE(done && st.ok()) << st.ToString();
  }

  int64_t MatLookup(net::NodeId node, uint64_t t) {
    return deploy.GetNode(node)->storage().monitor_trail.Lookup(
        Transid::Unpack(t));
  }

 private:
  bool bounded_ = false;
};

// The window Paxos Commit exists for: the coordinator reaches its commit
// point (a majority of acceptors durably accepted kCommitted) and dies
// before any phase-2 message leaves — the exact "crashed between phase 1
// and phase 2" schedule. Under 2PC the participant blocks until the home is
// repaired; here it learns the outcome from the surviving acceptor majority
// while the home is still down, and the home's own recovery later adopts
// the same decision from the acceptors (its MAT never saw the commit).
TEST(PaxosOracleTest, CoordinatorCrashBetweenPhasesResolvesViaAcceptors) {
  Rig rig(11, 3, /*paxos=*/true, /*resolve_interval=*/Millis(500));
  rig.SpawnClient(1);
  uint64_t t = rig.Begin(1);

  AtomicityOracle oracle;
  oracle.RegisterIntent(t, "m1",
                        {{1, "$DATA1", "mark1"}, {2, "$DATA2", "mark2"}});
  rig.Insert(t, "mark1", "m1");
  rig.Insert(t, "mark2", "m1");

  // END; crash the home the moment a majority of acceptors hold the
  // decision (their logs mutate before the force-delayed grant replies, so
  // the home has not even learned of its own commit point yet, let alone
  // sent phase 2).
  rig.client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                      tmf::EncodeTransidPayload(Transid::Unpack(t)), t);
  auto accepted = [&](net::NodeId n) {
    // Decision-replication instances live under voter 0 of the re-keyed log.
    auto& entries =
        rig.deploy.GetNode(n)->storage().acceptor_log.entries;
    auto it = entries.find({t, uint16_t{0}});
    return it != entries.end() && it->second.has_value &&
           it->second.value == tmf::Disposition::kCommitted;
  };
  for (int i = 0; i < 4000 && !(accepted(2) && accepted(3)); ++i) {
    rig.sim.RunFor(Micros(200));
  }
  ASSERT_TRUE(accepted(2) && accepted(3));
  ASSERT_EQ(rig.MatLookup(1, t), -1) << "home reached its MAT before crash; "
                                       "the window closed too late";
  rig.deploy.CrashNode(1);

  // With the coordinator dead, the participant's in-doubt resolve tick
  // fails over to the acceptors and applies the committed outcome.
  rig.sim.RunFor(Seconds(5));
  EXPECT_EQ(rig.MatLookup(2, t), 1);
  EXPECT_EQ(rig.deploy.GetNode(2)->disc("$DATA2")->locks().held_count(), 0u);
  EXPECT_GE(rig.sim.GetStats().Counter("tmf.paxos_resolved_commits"), 1);

  // Home recovery: its MAT has no record, but presumed abort would be
  // unsound now — ROLLFORWARD seals the instance at the acceptors and
  // redoes the home's own forced writes under the adopted commit.
  bool recovered = false;
  rig.deploy.RecoverNode(1, [&](const std::vector<tmf::RollforwardReport>&) {
    recovered = true;
  });
  rig.sim.RunFor(Seconds(10));
  ASSERT_TRUE(recovered);
  EXPECT_EQ(rig.MatLookup(1, t), 1);
  EXPECT_GE(rig.sim.GetStats().Counter("recovery.paxos_resolves"), 1);

  // Unknown to the client (it died with the home): the oracle demands
  // all-or-nothing, and "all" is what the acceptors chose.
  auto violations = oracle.Check(&rig.deploy);
  for (const auto& v : violations) {
    ADD_FAILURE() << "txn " << v.transid << ": " << v.detail;
  }
}

// ---------------------------------------------------------------------------
// Paxos Commit fast path (PR 10)
// ---------------------------------------------------------------------------

ChaosCampaignConfig FastPathCampaignConfig(uint64_t seed) {
  ChaosCampaignConfig cfg = PaxosCampaignConfig(seed);
  cfg.paxos_fast_path = true;
  return cfg;
}

// The fast-path storm suite: the same PR-4 schedules the 2PC and
// decision-replication campaigns survive, now with every participant voting
// its prepared state straight to the acceptors and the home reclaiming the
// instances afterwards. Same invariants, plus the acceptor log must stay
// bounded — its high-water tracks in-flight transactions, not throughput.
class ChaosFastPathTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosFastPathTest, SurvivesSeed) {
  const uint64_t seed = GetParam();
  ChaosCampaignResult r = RunChaosCampaign(FastPathCampaignConfig(seed));
  EXPECT_GE(r.schedule.faults.size(), 5u) << "seed " << seed;
  EXPECT_GE(r.node_crashes, 1u) << "seed " << seed;
  EXPECT_GT(r.txns_started, 0u) << "seed " << seed;
  EXPECT_GT(r.txns_committed, 0u) << "seed " << seed;
  ExpectSurvived(r, seed);
  EXPECT_GT(r.acceptor_log_peak, 0u) << "seed " << seed;
  EXPECT_LT(r.acceptor_log_peak, 100u)
      << "seed " << seed << ": acceptor log grew with throughput, not load";
  EXPECT_LT(r.acceptor_log_final, 32u)
      << "seed " << seed << ": GC left instances behind";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosFastPathTest,
                         ::testing::Range<uint64_t>(1, 11));

// The fast-path storm — coordinator crashes included — replays
// byte-identically across the engine settings.
TEST(ChaosFastPathParallelTest, SameSeedSameStormAtAnyWorkerCount) {
  ChaosCampaignConfig cfg = FastPathCampaignConfig(7);
  cfg.parallel_workers = 0;
  ChaosCampaignResult base = RunChaosCampaign(cfg);
  ExpectSurvived(base, 7);
  for (int workers : {1, 2, 4}) {
    cfg.parallel_workers = workers;
    ChaosCampaignResult r = RunChaosCampaign(cfg);
    EXPECT_EQ(r.journal, base.journal) << "workers=" << workers;
    EXPECT_EQ(r.txns_started, base.txns_started) << "workers=" << workers;
    EXPECT_EQ(r.txns_committed, base.txns_committed) << "workers=" << workers;
    EXPECT_EQ(r.txns_aborted, base.txns_aborted) << "workers=" << workers;
    EXPECT_EQ(r.txns_unknown, base.txns_unknown) << "workers=" << workers;
    EXPECT_EQ(r.balance_sum, base.balance_sum) << "workers=" << workers;
    EXPECT_EQ(r.recoveries_completed, base.recoveries_completed)
        << "workers=" << workers;
    EXPECT_EQ(r.acceptor_log_final, base.acceptor_log_final)
        << "workers=" << workers;
  }
}

// Coordinator crash mid-fast-path, replayed at several engine worker
// counts: the home dies after the participants' votes reached the acceptor
// logs but before its own MAT saw the commit point. The participant's
// in-doubt tick must settle against the surviving acceptors (home instance
// first — it names the voters — then each voter's), and the home's own
// recovery must adopt the same outcome.
class FastPathOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(FastPathOracleTest, CoordinatorCrashMidFastPathResolvesViaAcceptors) {
  const int workers = GetParam();
  Rig rig(11, 3, /*paxos=*/true, /*resolve_interval=*/Millis(500),
          /*fast_path=*/true, /*replication=*/3, workers);
  rig.SpawnClient(1);
  uint64_t t = rig.Begin(1);

  AtomicityOracle oracle;
  oracle.RegisterIntent(t, "m1",
                        {{1, "$DATA1", "mark1"}, {2, "$DATA2", "mark2"}});
  rig.Insert(t, "mark1", "m1");
  rig.Insert(t, "mark2", "m1");

  // END; crash the home once node 2's co-located acceptor holds the
  // prepared votes of both voters (the log mutates before the force-delayed
  // vote ack leaves, so the home cannot have tallied its commit point yet).
  rig.client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                      tmf::EncodeTransidPayload(Transid::Unpack(t)), t);
  auto voted = [&](net::NodeId n, const std::string& name, uint16_t voter) {
    auto& logs = rig.deploy.GetNode(n)->storage().acceptor_logs;
    auto log = logs.find(name);
    if (log == logs.end()) return false;
    auto it = log->second.entries.find({t, voter});
    return it != log->second.entries.end() && it->second.has_value &&
           it->second.value == tmf::Disposition::kCommitted;
  };
  for (int i = 0;
       i < 4000 && !(voted(2, "$ACCEPT.1", 1) && voted(2, "$ACCEPT.1", 2));
       ++i) {
    rig.sim.RunFor(Micros(100));
  }
  ASSERT_TRUE(voted(2, "$ACCEPT.1", 1) && voted(2, "$ACCEPT.1", 2));
  ASSERT_EQ(rig.MatLookup(1, t), -1) << "home reached its MAT before crash; "
                                        "the window closed too late";
  rig.deploy.CrashNode(1);

  // The participant resolves against the surviving acceptor majority.
  rig.sim.RunFor(Seconds(5));
  EXPECT_EQ(rig.MatLookup(2, t), 1);
  EXPECT_EQ(rig.deploy.GetNode(2)->disc("$DATA2")->locks().held_count(), 0u);
  EXPECT_GE(rig.sim.GetStats().Counter("tmf.paxos_resolved_commits"), 1);

  // Home recovery adopts the committed outcome from the acceptors.
  bool recovered = false;
  rig.deploy.RecoverNode(1, [&](const std::vector<tmf::RollforwardReport>&) {
    recovered = true;
  });
  rig.sim.RunFor(Seconds(10));
  ASSERT_TRUE(recovered);
  EXPECT_EQ(rig.MatLookup(1, t), 1);
  EXPECT_GE(rig.sim.GetStats().Counter("recovery.paxos_resolves"), 1);

  auto violations = oracle.Check(&rig.deploy);
  for (const auto& v : violations) {
    ADD_FAILURE() << "txn " << v.transid << ": " << v.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, FastPathOracleTest,
                         ::testing::Values(1, 2, 4));

// GC vs the late resolver: after the home reclaims a committed
// transaction's voter instances, the acceptor logs hold no live instance —
// a resolver arriving later must be answered from the sealed ring, not by
// (unsoundly) abort-fixing a fresh empty instance.
TEST(FastPathGcTest, SealedDecisionAnswersLateResolver) {
  Rig rig(19, 3, /*paxos=*/true, /*resolve_interval=*/Millis(500),
          /*fast_path=*/true);
  rig.SpawnClient(1);
  uint64_t t = rig.Begin(1);
  rig.Insert(t, "mark1", "m1");
  rig.Insert(t, "mark2", "m1");
  auto* e = rig.client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                                tmf::EncodeTransidPayload(Transid::Unpack(t)),
                                t);
  // Commit, phase 2, acks, then the 100ms reclaim flush — 2s covers it all.
  rig.sim.RunFor(Seconds(2));
  ASSERT_TRUE(e->done && e->status.ok()) << e->status.ToString();
  EXPECT_EQ(rig.MatLookup(1, t), 1);
  EXPECT_EQ(rig.MatLookup(2, t), 1);
  EXPECT_GE(rig.sim.GetStats().Counter("tmf.paxos_fast_commit_points"), 1);
  EXPECT_GE(rig.sim.GetStats().Counter("tmf.paxos_reclaims_sent"), 1);

  // Every live voter instance of t is gone; the decision is sealed.
  bool sealed_somewhere = false;
  for (int n = 1; n <= 3; ++n) {
    for (const auto& [name, log] :
         rig.deploy.GetNode(static_cast<net::NodeId>(n))
             ->storage().acceptor_logs) {
      (void)name;
      for (const auto& [key, entry] : log.entries) {
        (void)entry;
        EXPECT_NE(key.first, t) << "live instance survived GC";
      }
      auto it = log.sealed.find(t);
      if (it != log.sealed.end()) {
        sealed_somewhere = true;
        EXPECT_EQ(it->second, tmf::Disposition::kCommitted);
      }
    }
  }
  EXPECT_TRUE(sealed_somewhere);

  // The race's losing side: a resolver that shows up after GC.
  tmf::PaxosRoundConfig cfg;
  for (int k = 0; k < 3; ++k) {
    cfg.endpoints.emplace_back(static_cast<net::NodeId>(k % 3 + 1),
                               "$ACCEPT." + std::to_string(k));
  }
  tmf::Disposition chosen = tmf::Disposition::kUnknown;
  tmf::ResolvePaxosOutcome(rig.client, cfg, Transid::Unpack(t), /*attempt=*/5,
                           /*fast_path=*/true,
                           [&](tmf::Disposition d) { chosen = d; });
  rig.sim.RunFor(Seconds(2));
  EXPECT_EQ(chosen, tmf::Disposition::kCommitted)
      << "late resolver did not get the sealed decision";
}

// Multi-pair placement: a 3-node cluster fields commit_replication = 5 by
// hosting two `$ACCEPT.<k>` pairs on nodes 1 and 2. F+1 = 3 votes per voter
// still reach a co-located-first quorum, the tally still needs a majority
// of all five logs per voter, and GC seals across every pair.
TEST(FastPathPlacementTest, FiveAcceptorsOnThreeNodes) {
  Rig rig(23, 3, /*paxos=*/true, /*resolve_interval=*/Millis(500),
          /*fast_path=*/true, /*replication=*/5);
  // Placement k % 3 + 1: node 1 hosts pairs {0, 3}, node 2 {1, 4}, node 3
  // {2}.
  EXPECT_EQ(rig.deploy.GetNode(1)->storage().acceptor_logs.size(), 2u);
  EXPECT_EQ(rig.deploy.GetNode(2)->storage().acceptor_logs.size(), 2u);
  EXPECT_EQ(rig.deploy.GetNode(3)->storage().acceptor_logs.size(), 1u);
  ASSERT_TRUE(rig.deploy.GetNode(1)->storage().acceptor_logs.count(
      "$ACCEPT.0"));
  ASSERT_TRUE(rig.deploy.GetNode(1)->storage().acceptor_logs.count(
      "$ACCEPT.3"));

  rig.SpawnClient(1);
  uint64_t t = rig.Begin(1);
  rig.Insert(t, "mark1", "m1");
  rig.Insert(t, "mark2", "m1");
  auto* e = rig.client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                                tmf::EncodeTransidPayload(Transid::Unpack(t)),
                                t);
  rig.sim.RunFor(Seconds(2));
  ASSERT_TRUE(e->done && e->status.ok()) << e->status.ToString();
  EXPECT_EQ(rig.MatLookup(1, t), 1);
  EXPECT_EQ(rig.MatLookup(2, t), 1);
  EXPECT_GE(rig.sim.GetStats().Counter("tmf.paxos_fast_commit_points"), 1);
  // Both of node 1's pairs took part and were sealed independently: two
  // distinct durable logs, not one shared one.
  const auto& logs1 = rig.deploy.GetNode(1)->storage().acceptor_logs;
  EXPECT_TRUE(logs1.at("$ACCEPT.0").sealed.count(t));
  EXPECT_TRUE(logs1.at("$ACCEPT.3").sealed.count(t));
  EXPECT_GT(logs1.at("$ACCEPT.0").peak_instances, 0u);
}

// ---------------------------------------------------------------------------
// Negotiation bugfixes
// ---------------------------------------------------------------------------

// Regression: ROLLFORWARD used to negotiate its unresolved transactions one
// at a time in transid order, so a single dead home at the front of the set
// head-of-line blocked every answer a live home could give immediately.
// Two crashed homes, brought back one at a time, expose it: the recovering
// participant must settle home 2's transaction (and durably record it)
// while home 1 — whose transaction sorts first — is still down.
TEST(RecoveryNegotiationTest, TwoCrashedHomesNegotiateConcurrently) {
  Rig rig(13, 4, /*paxos=*/false);
  rig.SpawnClient(1);
  uint64_t ta = rig.Begin(1);
  rig.Insert(ta, "mark1", "ma");
  rig.Insert(ta, "mark4", "ma");

  auto* client2 = rig.deploy.GetNode(2)->node()->Spawn<TestClient>(2);
  tmf::FileSystem fs2(client2, &rig.deploy.catalog());
  rig.sim.Run();
  auto* b = client2->CallRaw(net::Address(2, "$TMP"), tmf::kTmfBegin, {});
  rig.sim.Run();
  ASSERT_TRUE(b->done && b->status.ok());
  uint64_t tb = tmf::DecodeTransidPayload(Slice(b->payload))->Pack();
  auto insert2 = [&](const std::string& file, const std::string& key) {
    bool done = false;
    Status st;
    client2->set_current_transid(tb);
    fs2.Insert(file, Slice(key), Slice(std::string("x")),
               [&](const Status& s, const Bytes&) {
                 st = s;
                 done = true;
               });
    client2->set_current_transid(0);
    rig.sim.Run();
    ASSERT_TRUE(done && st.ok()) << st.ToString();
  };
  insert2("mark2", "mb");
  insert2("mark4", "mb");

  // END both transactions back to back, so both homes pass their commit
  // points within one phase-2 flight time of each other; the instant both
  // home MATs hold the commit records, isolate node 4 completely (the mesh
  // would happily route a phase 2 around any single cut link).
  rig.client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                      tmf::EncodeTransidPayload(Transid::Unpack(ta)), ta);
  client2->CallRaw(net::Address(2, "$TMP"), tmf::kTmfEnd,
                   tmf::EncodeTransidPayload(Transid::Unpack(tb)), tb);
  for (int i = 0;
       i < 2000 && !(rig.MatLookup(1, ta) == 1 && rig.MatLookup(2, tb) == 1);
       ++i) {
    rig.sim.RunFor(Micros(500));
  }
  ASSERT_EQ(rig.MatLookup(1, ta), 1);
  ASSERT_EQ(rig.MatLookup(2, tb), 1);
  for (net::NodeId n : {1, 2, 3}) rig.deploy.cluster().CutLink(n, 4);
  rig.sim.RunFor(Seconds(1));
  ASSERT_EQ(rig.MatLookup(4, ta), -1) << "phase 2 reached node 4 before the "
                                         "partition; no in-doubt window";
  ASSERT_EQ(rig.MatLookup(4, tb), -1);
  ASSERT_GT(rig.deploy.GetNode(4)->disc("$DATA4")->locks().held_count(), 0u);

  // Node 4 holds both transactions in doubt. Lose it — and both homes.
  rig.deploy.CrashNode(4);
  rig.deploy.CrashNode(1);
  rig.deploy.CrashNode(2);
  rig.sim.RunFor(Seconds(1));
  for (net::NodeId n : {1, 2, 3}) rig.deploy.cluster().RestoreLink(n, 4);

  // Recover the participant first: both negotiations start (and back off)
  // against dead homes.
  bool recovered4 = false;
  rig.deploy.RecoverNode(4, [&](const std::vector<tmf::RollforwardReport>&) {
    recovered4 = true;
  });
  rig.sim.RunFor(Seconds(10));
  EXPECT_FALSE(recovered4);
  EXPECT_GT(rig.sim.GetStats().Counter("recovery.negotiation_retries"), 0);
  // The high-water gauge climbs while both homes stay dead.
  EXPECT_GT(rig.sim.GetStats().Counter("recovery.max_retry_attempts"), 0);

  // Home 2 returns. Its transaction must settle on node 4 even though home
  // 1's transaction — first in transid order — is still unanswerable.
  bool recovered2 = false;
  rig.deploy.RecoverNode(2, [&](const std::vector<tmf::RollforwardReport>&) {
    recovered2 = true;
  });
  rig.sim.RunFor(Seconds(20));
  ASSERT_TRUE(recovered2);
  EXPECT_EQ(rig.MatLookup(4, tb), 1)
      << "home 2's answer was head-of-line blocked behind dead home 1";
  EXPECT_EQ(rig.MatLookup(4, ta), -1);
  EXPECT_FALSE(recovered4);

  // Home 1 returns; everything settles and the participant finishes.
  bool recovered1 = false;
  rig.deploy.RecoverNode(1, [&](const std::vector<tmf::RollforwardReport>&) {
    recovered1 = true;
  });
  rig.sim.RunFor(Seconds(30));
  ASSERT_TRUE(recovered1);
  ASSERT_TRUE(recovered4);
  EXPECT_EQ(rig.MatLookup(4, ta), 1);

  AtomicityOracle oracle;
  oracle.RegisterIntent(ta, "ma",
                        {{1, "$DATA1", "mark1"}, {4, "$DATA4", "mark4"}});
  oracle.RegisterIntent(tb, "mb",
                        {{2, "$DATA2", "mark2"}, {4, "$DATA4", "mark4"}});
  oracle.RecordOutcome(ta, AtomicityOracle::Outcome::kCommitted);
  oracle.RecordOutcome(tb, AtomicityOracle::Outcome::kCommitted);
  auto violations = oracle.Check(&rig.deploy);
  for (const auto& v : violations) {
    ADD_FAILURE() << "txn " << v.transid << ": " << v.detail;
  }
}

// The deterministic backoff: same (seed, transid, attempt) -> same delay,
// exponential growth, hard cap.
TEST(RecoveryNegotiationTest, BackoffIsDeterministicCappedAndJittered) {
  tmf::NodeRecoveryConfig cfg;
  cfg.jitter_seed = 99;
  tmf::NodeRecoveryProcess a(cfg), b(cfg);
  Transid t1{1, 0, 7}, t2{2, 0, 7};
  for (uint32_t attempt = 1; attempt <= 12; ++attempt) {
    SimDuration d = a.BackoffDelayForTest(t1, attempt);
    EXPECT_EQ(d, b.BackoffDelayForTest(t1, attempt)) << attempt;
    EXPECT_GE(d, cfg.retry_interval);
    EXPECT_LE(d, cfg.retry_backoff_cap + cfg.retry_interval) << attempt;
  }
  // Different transids de-synchronise: not every attempt waits identically.
  bool differs = false;
  for (uint32_t attempt = 1; attempt <= 12; ++attempt) {
    differs |= a.BackoffDelayForTest(t1, attempt) !=
               a.BackoffDelayForTest(t2, attempt);
  }
  EXPECT_TRUE(differs);
}

/// Impersonates a home $TMP and answers every resolve query with bytes that
/// decode as no disposition at all.
class EvilResolver : public os::Process {
 public:
  std::string DebugName() const override { return "evil-resolver"; }

 protected:
  void OnMessage(const net::Message& msg) override {
    if (msg.tag == tmf::kTmfResolveTxn) {
      Reply(msg, Status::Ok(), Bytes{0x7F, 0xEE, 0xEE});
    }
  }
};

// Regression: a malformed kTmfResolveTxn reply used to be silently dropped
// — the participant stayed in doubt with no trace of why. It still (safely)
// stays in doubt, but the drop is now counted, and the next tick resolves
// once the home answers properly again.
TEST(RecoveryNegotiationTest, MalformedResolveReplyIsCounted) {
  Rig rig(17, 2, /*paxos=*/false, /*resolve_interval=*/Millis(500));
  rig.SpawnClient(1);
  uint64_t t = rig.Begin(1);
  rig.Insert(t, "mark1", "m1");
  rig.Insert(t, "mark2", "m1");
  rig.client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                      tmf::EncodeTransidPayload(Transid::Unpack(t)), t);
  for (int i = 0; i < 2000 && rig.MatLookup(1, t) != 1; ++i) {
    rig.sim.RunFor(Micros(500));
  }
  ASSERT_EQ(rig.MatLookup(1, t), 1);
  rig.deploy.cluster().CutLink(1, 2);
  rig.sim.RunFor(Seconds(1));

  // Kill the home's volatile phase-2 delivery and bring the node back while
  // it is still unreachable; once the respawned TMP pair has started (its
  // OnStart re-registers the $TMP name), point the name at a corrupter, and
  // only then heal the link — every resolve tick from node 2 now lands on
  // the corrupter.
  rig.deploy.CrashNode(1);
  rig.sim.RunFor(Seconds(1));
  rig.deploy.RestartNode(1);
  // The reload reconnected every link of node 1; cut 1-2 again until the
  // corrupter is in place.
  rig.deploy.cluster().CutLink(1, 2);
  rig.sim.RunFor(Millis(100));
  os::Node* n1 = rig.deploy.GetNode(1)->node();
  net::Pid real_tmp = n1->LookupName("$TMP");
  ASSERT_NE(real_tmp, 0u);
  auto* evil = n1->Spawn<EvilResolver>(2);
  n1->RegisterName("$TMP", evil->id().pid);
  rig.deploy.cluster().RestoreLink(1, 2);

  rig.sim.RunFor(Seconds(3));
  EXPECT_GE(rig.sim.GetStats().Counter("tmf.resolve_malformed_replies"), 1);
  EXPECT_EQ(rig.MatLookup(2, t), -1) << "resolved against garbage";
  EXPECT_GT(rig.deploy.GetNode(2)->disc("$DATA2")->locks().held_count(), 0u);

  // Restore the real TMP; its durable MAT record answers the next tick.
  n1->RegisterName("$TMP", real_tmp);
  rig.sim.RunFor(Seconds(3));
  EXPECT_EQ(rig.MatLookup(2, t), 1);
  EXPECT_EQ(rig.deploy.GetNode(2)->disc("$DATA2")->locks().held_count(), 0u);
  EXPECT_GE(rig.sim.GetStats().Counter("tmf.indoubt_resolved_commits"), 1);
}

}  // namespace
}  // namespace encompass::app
