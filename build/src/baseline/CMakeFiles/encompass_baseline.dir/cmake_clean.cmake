file(REMOVE_RECURSE
  "CMakeFiles/encompass_baseline.dir/wal_engine.cc.o"
  "CMakeFiles/encompass_baseline.dir/wal_engine.cc.o.d"
  "libencompass_baseline.a"
  "libencompass_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encompass_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
