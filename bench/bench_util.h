// Shared helpers for the experiment/benchmark binaries. Each binary prints
// the experiment tables that reproduce a figure or claim of the paper
// (simulated-time metrics, deterministic seeds), then runs its
// google-benchmark micro-loops (wall-clock metrics).

#ifndef ENCOMPASS_BENCH_BENCH_UTIL_H_
#define ENCOMPASS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/banking/banking.h"
#include "encompass/deployment.h"
#include "encompass/tcp.h"
#include "net/network.h"
#include "sim/stats.h"
#include "tmf/tmf_protocol.h"

namespace encompass::bench {

/// Headline numbers of one benchmark binary, written as BENCH_<name>.json in
/// the working directory. Keys are emitted in sorted order and the simulated
/// metrics are deterministic, so two runs of the same build diff cleanly; the
/// only wall-clock-dependent field is "wall_ms" (total main() runtime).
class JsonReport {
 public:
  /// Schema version of the emitted JSON. Bump when the envelope changes;
  /// version 2 added the mandatory "seed" / "parallel_workers" fields,
  /// version 3 the "hardware_threads" / "git_rev" host context (perf numbers
  /// without the host and the exact source state are unreviewable),
  /// version 4 the "commit_protocol" / "paxos_fast_path" knobs (protocol
  /// sweeps must be self-describing).
  static constexpr int kSchemaVersion = 4;

  /// Short revision of the sources this binary was run from, resolved at
  /// runtime (the build tree lives inside the repo); "unknown" outside git.
  static std::string GitRev() {
    std::string rev;
    if (FILE* p = popen("git rev-parse --short=12 HEAD 2>/dev/null", "r")) {
      char buf[64];
      if (fgets(buf, sizeof(buf), p) != nullptr) rev.assign(buf);
      pclose(p);
    }
    while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
      rev.pop_back();
    }
    return rev.empty() ? "unknown" : rev;
  }

  explicit JsonReport(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  void Add(const std::string& key, double value) { values_[key] = value; }

  /// Records the run's primary simulation seed and engine worker count.
  /// Every report carries both (0 until set), so downstream tooling can
  /// reproduce any BENCH_*.json without reading the bench source.
  void SetMeta(uint64_t seed, int parallel_workers) {
    seed_ = seed;
    parallel_workers_ = parallel_workers;
  }

  /// Names the commit protocol this bench's headline numbers ran under.
  /// Every envelope carries both fields — benches that never touch the TMF
  /// keep the defaults, protocol sweeps overwrite them per run.
  void SetCommitConfig(std::string protocol, bool fast_path) {
    commit_protocol_ = std::move(protocol);
    paxos_fast_path_ = fast_path;
  }

  /// Snapshots a simulation's Stats registry: every nonzero counter, and
  /// n/p50/p95/p99 for every non-empty histogram, prefixed with `prefix.`.
  void AddSimStats(const std::string& prefix, const sim::Stats& stats) {
    for (const auto& [name, value] : stats.counters()) {
      values_[prefix + "." + name] = static_cast<double>(value);
    }
    for (const auto& [name, hist] : stats.histograms()) {
      const std::string base = prefix + "." + name;
      values_[base + ".n"] = static_cast<double>(hist->count());
      values_[base + ".p50"] = static_cast<double>(hist->Percentile(50));
      values_[base + ".p95"] = static_cast<double>(hist->Percentile(95));
      values_[base + ".p99"] = static_cast<double>(hist->Percentile(99));
    }
  }

  /// Writes BENCH_<name>.json. Call once at the end of main().
  void Write() {
    double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_).count();
    std::string path = "BENCH_" + name_ + ".json";
    FILE* f = fopen(path.c_str(), "w");
    if (f == nullptr) {
      fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    fprintf(f,
            "{\n  \"bench\": \"%s\",\n  \"version\": %d,\n  \"seed\": %llu,\n"
            "  \"parallel_workers\": %d,\n  \"hardware_threads\": %u,\n"
            "  \"git_rev\": \"%s\",\n  \"commit_protocol\": \"%s\",\n"
            "  \"paxos_fast_path\": %d,\n  \"wall_ms\": %.3f",
            name_.c_str(), kSchemaVersion,
            static_cast<unsigned long long>(seed_), parallel_workers_,
            std::thread::hardware_concurrency(), GitRev().c_str(),
            commit_protocol_.c_str(), paxos_fast_path_ ? 1 : 0, wall_ms);
    for (const auto& [key, value] : values_) {
      if (std::fabs(value - std::llround(value)) < 1e-9) {
        fprintf(f, ",\n  \"%s\": %lld", key.c_str(),
                static_cast<long long>(std::llround(value)));
      } else {
        fprintf(f, ",\n  \"%s\": %.3f", key.c_str(), value);
      }
    }
    fprintf(f, "\n}\n");
    fclose(f);
    printf("wrote %s (wall_ms=%.1f)\n", path.c_str(), wall_ms);
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  uint64_t seed_ = 0;
  int parallel_workers_ = 0;
  std::string commit_protocol_ = "2pc";
  bool paxos_fast_path_ = false;
  std::map<std::string, double> values_;
};

/// Process-wide report, so table functions deep inside a benchmark can attach
/// their rig's stats without threading a JsonReport parameter through.
inline JsonReport*& GlobalReport() {
  static JsonReport* report = nullptr;
  return report;
}

/// Creates the process-wide report. Call first in main().
inline void InitReport(const std::string& name) {
  static JsonReport report{name};
  GlobalReport() = &report;
}

inline void ReportValue(const std::string& key, double value) {
  if (GlobalReport() != nullptr) GlobalReport()->Add(key, value);
}

/// Stamps the report's reproducibility envelope (seed, engine workers).
/// Call once per bench main(), right after InitReport.
inline void ReportMeta(uint64_t seed, int parallel_workers = 0) {
  if (GlobalReport() != nullptr) GlobalReport()->SetMeta(seed, parallel_workers);
}

inline void ReportSimStats(const std::string& prefix, const sim::Stats& stats) {
  if (GlobalReport() != nullptr) GlobalReport()->AddSimStats(prefix, stats);
}

/// Stamps the commit-protocol envelope fields ("2pc", "paxos", or
/// "paxos-fast"). Benches that sweep protocols call this per headline run.
inline void ReportCommitConfig(tmf::CommitProtocol protocol, bool fast_path) {
  if (GlobalReport() == nullptr) return;
  const char* name = protocol == tmf::CommitProtocol::kPaxos
                         ? (fast_path ? "paxos-fast" : "paxos")
                         : "2pc";
  GlobalReport()->SetCommitConfig(name, fast_path);
}

/// Human name of a network message tag for the per-verb breakdown; falls
/// back to the raw tag number for verbs this table doesn't know.
inline std::string NetTagName(uint32_t tag) {
  switch (tag) {
    case tmf::kTmfBegin: return "tmf.begin";
    case tmf::kTmfEnd: return "tmf.end";
    case tmf::kTmfAbort: return "tmf.abort";
    case tmf::kTmfEnsureRemote: return "tmf.ensure_remote";
    case tmf::kTmfRemoteBegin: return "tmf.remote_begin";
    case tmf::kTmfPhase1: return "tmf.phase1";
    case tmf::kTmfPhase2: return "tmf.phase2";
    case tmf::kTmfAbortTxn: return "tmf.abort_txn";
    case tmf::kTmfStatus: return "tmf.status";
    case tmf::kTmfResolveTxn: return "tmf.resolve_txn";
    case tmf::kTmfPaxosPrepare: return "tmf.paxos_prepare";
    case tmf::kTmfPaxosAccept: return "tmf.paxos_accept";
    case tmf::kTmfPaxosVote: return "tmf.paxos_vote";
    case tmf::kTmfPaxosVoteAck: return "tmf.paxos_vote_ack";
    case tmf::kTmfPaxosReclaim: return "tmf.paxos_reclaim";
    default: return "tag" + std::to_string(tag);
  }
}

/// Per-transaction / per-verb message accounting of a tracked network
/// (NetworkConfig::track_messages): emits `<prefix>.net.msgs_per_txn` (the
/// fast-path headline) plus a per-verb breakdown of every cross-node send.
inline void ReportNetMessages(const std::string& prefix,
                              const net::Network& network,
                              uint64_t committed_txns) {
  uint64_t tracked = 0;
  for (const auto& [transid, count] : network.PerTxnMessages()) {
    (void)transid;
    tracked += count;
  }
  ReportValue(prefix + ".net.msgs_tracked", static_cast<double>(tracked));
  if (committed_txns > 0) {
    ReportValue(prefix + ".net.msgs_per_txn",
                static_cast<double>(tracked) /
                    static_cast<double>(committed_txns));
  }
  for (const auto& [tag, count] : network.PerTagMessages()) {
    ReportValue(prefix + ".net.msgs." + NetTagName(tag),
                static_cast<double>(count));
  }
}

/// Writes the report. Call last in main().
inline void WriteReport() {
  if (GlobalReport() != nullptr) GlobalReport()->Write();
}

/// A single-node banking world: deployment, accounts seeded, bank server
/// class up. The standard substrate for throughput experiments.
struct BankRig {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<app::Deployment> deploy;
  app::NodeDeployment* node = nullptr;
  storage::Volume* volume = nullptr;
  std::unique_ptr<app::ScreenProgram> program;
  os::PairHandles<app::Tcp> tcp;

  app::Tcp* Primary() {
    return tcp.primary->IsPrimary() ? tcp.primary : tcp.backup;
  }
};

/// Builds a BankRig with `cpus` processors, `accounts` accounts, and
/// `terminals` transfer terminals each running `iterations` programs
/// (UINT64_MAX = until stopped). Contention is set by `skew`.
inline BankRig MakeBankRig(uint64_t seed, int cpus, int accounts, int terminals,
                           uint64_t iterations, double skew = 0.0,
                           SimDuration lock_timeout = Millis(500),
                           int restart_limit = 100,
                           SimDuration cpu_service = Micros(50)) {
  BankRig rig;
  rig.sim = std::make_unique<sim::Simulation>(seed);
  rig.deploy = std::make_unique<app::Deployment>(rig.sim.get());
  app::NodeSpec spec;
  spec.id = 1;
  spec.node_config.num_cpus = cpus;
  spec.node_config.cpu_service_time = cpu_service;
  spec.disc_config.default_lock_timeout = lock_timeout;
  spec.volumes = {app::VolumeSpec{"$DATA1", {app::FileSpec{"acct"}}, {}}};
  rig.node = rig.deploy->AddNode(spec);
  rig.deploy->DefineFile("acct", 1, "$DATA1");
  rig.volume = rig.node->storage().volumes.at("$DATA1").get();
  apps::banking::SeedAccounts(rig.volume, "acct", accounts, 1000);
  app::ServerClassConfig sc;
  sc.max_servers = cpus * 2;
  apps::banking::AddBankServerClass(rig.deploy.get(), 1, "$SC.BANK", "acct", sc);

  rig.program = std::make_unique<app::ScreenProgram>(
      apps::banking::MakeTransferProgram(1, "$SC.BANK", accounts, 100, skew));
  app::TcpConfig tcfg;
  tcfg.programs = {{"transfer", rig.program.get()}};
  tcfg.restart_limit = restart_limit;
  rig.tcp = os::SpawnPair<app::Tcp>(rig.node->node(), "$TCP1", cpus - 2,
                                    cpus - 1, tcfg);
  rig.sim->Run();
  for (int t = 0; t < terminals; ++t) {
    rig.tcp.primary->AttachTerminal("term" + std::to_string(t), "transfer",
                                    iterations);
  }
  return rig;
}

/// Runs the rig until `target` programs finished (completed + failed) or
/// the cap elapses; returns the makespan in simulated microseconds.
inline SimTime RunUntilProgramsDone(BankRig& rig, uint64_t target,
                                    SimDuration cap = Seconds(3600)) {
  SimTime deadline = rig.sim->Now() + cap;
  while (rig.sim->Now() < deadline) {
    app::Tcp* tcp = rig.Primary();
    if (tcp->programs_completed() + tcp->programs_failed() >= target) break;
    rig.sim->RunFor(Millis(100));
  }
  return rig.sim->Now();
}

inline void Header(const std::string& title) {
  printf("\n=== %s ===\n", title.c_str());
}

inline double TxnPerSec(uint64_t committed, SimTime elapsed_us) {
  if (elapsed_us <= 0) return 0;
  return static_cast<double>(committed) * 1e6 / static_cast<double>(elapsed_us);
}

/// Percentile of a sample of simulated durations, in milliseconds.
/// Partially sorts `v` in place (nth_element).
inline double PercentileMs(std::vector<SimDuration>& v, double p) {
  if (v.empty()) return 0;
  size_t idx = static_cast<size_t>(p / 100.0 * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(idx), v.end());
  return static_cast<double>(v[idx]) / 1e3;
}

}  // namespace encompass::bench

#endif  // ENCOMPASS_BENCH_BENCH_UTIL_H_
