// E6 — the data-base manager's storage claims: three file organizations,
// multi-key access with automatic index maintenance, data and index
// (prefix) compression, the main-memory cache, and key-range partitioning.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cinttypes>

#include "bench_util.h"
#include "storage/bplus_tree.h"
#include "storage/file.h"
#include "storage/partition.h"
#include "storage/volume.h"

namespace encompass::bench {
namespace {

using namespace encompass::storage;

void TableOrganizations() {
  Header("E6.a file organizations: 10k inserts + point reads + full scan");
  printf("%-18s %12s %12s %12s\n", "organization", "inserted", "read ok",
         "scanned");
  for (auto org : {FileOrganization::kKeySequenced, FileOrganization::kRelative,
                   FileOrganization::kEntrySequenced}) {
    auto file = MakeFile(org, "f", {});
    int inserted = 0;
    std::vector<Bytes> keys;
    for (int i = 0; i < 10000; ++i) {
      Bytes key = org == FileOrganization::kEntrySequenced
                      ? Bytes{}
                      : EncodeRecnum(static_cast<uint64_t>(i));
      Bytes assigned;
      if (file->Insert(Slice(key), Slice("record-" + std::to_string(i)),
                       &assigned)
              .ok()) {
        ++inserted;
        keys.push_back(assigned);
      }
    }
    int reads = 0;
    for (const auto& key : keys) {
      reads += file->Read(Slice(key)).ok() ? 1 : 0;
    }
    size_t scanned = 0;
    file->ForEach([&scanned](const Slice&, const Slice&) { ++scanned; });
    printf("%-18s %12d %12d %12zu\n", FileOrganizationName(org), inserted,
           reads, scanned);
  }
}

void TableCompression() {
  Header("E6.b prefix compression ratio by key pattern (5k records)");
  printf("%-34s %14s\n", "key pattern", "archive/raw");
  struct Pattern {
    const char* name;
    std::function<std::string(int)> make;
  };
  const Pattern patterns[] = {
      {"long shared prefix (\"order/2026/..\")",
       [](int i) { return "order/2026/region-west/item" + std::to_string(i); }},
      {"short keys, no prefix",
       [](int i) { return std::to_string((i * 2654435761u) % 100000); }},
      {"sequential numeric",
       [](int i) {
         char buf[16];
         snprintf(buf, sizeof(buf), "%010d", i);
         return std::string(buf);
       }},
  };
  for (const auto& p : patterns) {
    KeySequencedFile file("f", {});
    for (int i = 0; i < 5000; ++i) {
      file.Insert(Slice(p.make(i)), Slice("v"), nullptr);
    }
    printf("%-34s %14.2f\n", p.name, file.CompressionRatio());
  }
}

void TableCache() {
  Header("E6.c cache hit rate vs capacity (10k records, zipf reads)");
  printf("%12s %12s %14s\n", "capacity", "hit rate", "physical reads");
  for (size_t capacity : {64, 512, 4096, 16384}) {
    VolumeConfig cfg;
    cfg.cache_capacity = capacity;
    Volume vol("$V", cfg);
    vol.CreateFile("f", FileOrganization::kKeySequenced);
    for (int i = 0; i < 10000; ++i) {
      vol.Mutate("f", MutationOp::kInsert, Slice("k" + std::to_string(i)),
                 Slice("v"));
    }
    vol.Flush();
    // Cold cache, then skewed reads.
    Bytes image = vol.Archive();
    Volume cold("$V", cfg);
    cold.RestoreFromArchive(Slice(image));
    Random rng(97);
    for (int i = 0; i < 50000; ++i) {
      auto k = "k" + std::to_string(rng.Skewed(10000, 0.9));
      cold.ReadRecord("f", Slice(k));
    }
    double hits = static_cast<double>(cold.cache_hits());
    double total = hits + static_cast<double>(cold.cache_misses());
    printf("%12zu %11.1f%% %14lld\n", capacity, 100.0 * hits / total,
           (long long)cold.physical_reads());
  }
}

void TableIndexOverheadAndPartitioning() {
  Header("E6.d alternate keys and partitioning");
  // Index maintenance overhead (wall clock, relative).
  {
    auto t0 = std::chrono::steady_clock::now();
    KeySequencedFile plain("f", {});
    for (int i = 0; i < 20000; ++i) {
      plain.Insert(Slice("k" + std::to_string(i)),
                   Slice(Record().Set("site", "x").Encode()), nullptr);
    }
    auto t1 = std::chrono::steady_clock::now();
    FileOptions opt;
    opt.schema.alternate_keys = {"site"};
    KeySequencedFile indexed("f", opt);
    for (int i = 0; i < 20000; ++i) {
      indexed.Insert(
          Slice("k" + std::to_string(i)),
          Slice(Record().Set("site", "site" + std::to_string(i % 4)).Encode()),
          nullptr);
    }
    auto t2 = std::chrono::steady_clock::now();
    double base = std::chrono::duration<double>(t1 - t0).count();
    double with = std::chrono::duration<double>(t2 - t1).count();
    printf("insert overhead of 1 alternate key : %.2fx\n",
           base > 0 ? with / base : 0.0);
    printf("alternate-key lookup (site1)       : %zu records\n",
           indexed.LookupAlternate("site", "site1")->size());
  }
  // Partition routing.
  {
    PartitionMap map;
    map.AddPartition(ToBytes("h"), 1, "$DATA1");
    map.AddPartition(ToBytes("p"), 2, "$DATA2");
    map.AddPartition({}, 3, "$DATA3");
    int counts[3] = {0, 0, 0};
    Random rng(101);
    for (int i = 0; i < 10000; ++i) {
      std::string key(1, static_cast<char>('a' + rng.Uniform(26)));
      counts[map.LocateIndex(Slice(key))]++;
    }
    printf("partition routing of 10k uniform keys: %d / %d / %d\n", counts[0],
           counts[1], counts[2]);
  }
}

// --------------------------------------------------------------------------
// google-benchmark micro loops (wall-clock)
// --------------------------------------------------------------------------

void BM_BTreeInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    BPlusTree tree(4096);
    for (int i = 0; i < n; ++i) {
      tree.Insert(Slice("key" + std::to_string(i)), Slice("value"));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BTreeGet(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BPlusTree tree(4096);
  for (int i = 0; i < n; ++i) {
    tree.Insert(Slice("key" + std::to_string(i)), Slice("value"));
  }
  Random rng(1);
  for (auto _ : state) {
    auto r = tree.Get(Slice("key" + std::to_string(rng.Uniform(n))));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeGet)->Arg(10000)->Arg(100000);

void BM_BTreeScan(benchmark::State& state) {
  BPlusTree tree(4096);
  for (int i = 0; i < 100000; ++i) {
    tree.Insert(Slice("key" + std::to_string(i)), Slice("value"));
  }
  for (auto _ : state) {
    size_t n = 0;
    tree.ForEach([&n](const Slice&, const Slice&) { ++n; });
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_BTreeScan);

void BM_SerializeCompressed(benchmark::State& state) {
  BPlusTree tree(4096);
  for (int i = 0; i < 50000; ++i) {
    tree.Insert(Slice("shared/prefix/key" + std::to_string(i)), Slice("value"));
  }
  for (auto _ : state) {
    Bytes out;
    tree.SerializeTo(&out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(tree.UncompressedDataSize()));
}
BENCHMARK(BM_SerializeCompressed);

}  // namespace
}  // namespace encompass::bench

int main(int argc, char** argv) {
  encompass::bench::InitReport("e6_storage");
  encompass::bench::ReportMeta(/*seed=*/97);
  printf("E6: storage — organizations, compression, cache, partitioning\n");
  encompass::bench::TableOrganizations();
  encompass::bench::TableCompression();
  encompass::bench::TableCache();
  encompass::bench::TableIndexOverheadAndPartitioning();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  encompass::bench::WriteReport();
  return 0;
}
