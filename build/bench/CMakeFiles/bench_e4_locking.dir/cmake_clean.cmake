file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_locking.dir/bench_e4_locking.cc.o"
  "CMakeFiles/bench_e4_locking.dir/bench_e4_locking.cc.o.d"
  "bench_e4_locking"
  "bench_e4_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
