// The event queue at the heart of the deterministic simulation: a priority
// queue of EventKey -> callback, with cancellation support.
//
// Events are totally ordered by EventKey = (time, origin, seq):
//   * time   — the simulated firing time;
//   * origin — the node whose schedule sequence stamped the event (0 for
//     global/serial work). Ties at the same time order by origin, so global
//     events run before any node's events at the same instant;
//   * seq    — the origin's monotone schedule counter; ties within one
//     origin fire in schedule order.
// The key is assigned when the event is scheduled, by the scheduling node —
// never by the executing thread — so the total order is a property of the
// simulation's history, identical no matter how execution is interleaved.

#ifndef ENCOMPASS_SIM_EVENT_QUEUE_H_
#define ENCOMPASS_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/sim_time.h"

namespace encompass::sim {

/// Handle for a scheduled event; used to cancel timers.
using EventId = uint64_t;

/// Total order on simulation events; see file comment.
struct EventKey {
  SimTime time = 0;
  uint16_t origin = 0;
  uint64_t seq = 0;

  friend bool operator<(const EventKey& a, const EventKey& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.origin != b.origin) return a.origin < b.origin;
    return a.seq < b.seq;
  }
};

/// Min-heap of timed callbacks ordered by EventKey. One EventQueue belongs
/// to one event loop (one node, or the global loop); `origin` stamps the
/// keys of locally scheduled events.
class EventQueue {
 public:
  explicit EventQueue(uint16_t origin = 0) : origin_(origin) {}

  uint16_t origin() const { return origin_; }

  /// Schedules `fn` to fire at absolute time `when`, stamped with this
  /// queue's origin and next sequence number. `exec_node` attributes the
  /// work to a node for PRNG/stats/trace purposes (defaults to the origin).
  /// Returns a handle for Cancel.
  EventId Schedule(SimTime when, std::function<void()> fn) {
    return Schedule(when, origin_, std::move(fn));
  }
  EventId Schedule(SimTime when, uint16_t exec_node, std::function<void()> fn);

  /// Inserts an event carrying a foreign key (a cross-node post stamped by
  /// its sender). Keyed events are not cancellable: their seq lives in the
  /// sender's numbering, which may collide with local ids.
  void ScheduleKeyed(const EventKey& key, uint16_t exec_node,
                     std::function<void()> fn);

  /// Draws the next local sequence number; used to stamp keys of cross-node
  /// posts originating here.
  uint64_t IssueSeq() { return next_seq_++; }

  /// Cancels a pending locally-scheduled event. Cancelling an already-fired,
  /// already-cancelled, or unknown event is a true no-op (no tombstone, no
  /// accounting change). O(1): a pending event is tombstoned and skipped on
  /// pop.
  void Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  /// Key of the earliest pending event; nullptr if empty.
  const EventKey* NextKey() const;

  /// Time of the earliest pending event; kNoDeadline if empty.
  SimTime NextTime() const;

  /// Pops and returns the earliest event's callback, setting *key to its
  /// event key and *exec_node to its attribution. Precondition: !empty().
  std::function<void()> PopNext(EventKey* key, uint16_t* exec_node);

  /// Back-compat pop that only reports the firing time.
  std::function<void()> PopNext(SimTime* when) {
    EventKey key;
    uint16_t exec_node;
    auto fn = PopNext(&key, &exec_node);
    *when = key.time;
    return fn;
  }

 private:
  struct Event {
    EventKey key;
    uint16_t exec_node;
    bool local;  // scheduled here (cancellable) vs keyed insert
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const { return b.key < a.key; }
  };

  void SkipCancelled() const;

  uint16_t origin_;
  mutable std::priority_queue<Event, std::vector<Event>, Later> heap_;
  // Ids currently scheduled and not yet fired or cancelled. Cancel consults
  // this set so a cancel racing an already-fired event cannot insert a
  // permanent tombstone or corrupt live_count_.
  std::unordered_set<EventId> pending_;
  mutable std::unordered_set<EventId> cancelled_;
  size_t live_count_ = 0;
  uint64_t next_seq_ = 1;
};

}  // namespace encompass::sim

#endif  // ENCOMPASS_SIM_EVENT_QUEUE_H_
