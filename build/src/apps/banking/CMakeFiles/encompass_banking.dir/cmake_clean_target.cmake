file(REMOVE_RECURSE
  "libencompass_banking.a"
)
