file(REMOVE_RECURSE
  "CMakeFiles/encompass_discprocess.dir/disc_process.cc.o"
  "CMakeFiles/encompass_discprocess.dir/disc_process.cc.o.d"
  "CMakeFiles/encompass_discprocess.dir/disc_protocol.cc.o"
  "CMakeFiles/encompass_discprocess.dir/disc_protocol.cc.o.d"
  "CMakeFiles/encompass_discprocess.dir/lock_manager.cc.o"
  "CMakeFiles/encompass_discprocess.dir/lock_manager.cc.o.d"
  "libencompass_discprocess.a"
  "libencompass_discprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encompass_discprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
