// Structured files: the three ENCOMPASS file organizations (key-sequenced,
// relative, entry-sequenced) behind a uniform record-oriented interface,
// with automatic maintenance of alternate-key (secondary) indices declared
// in the file's schema.

#ifndef ENCOMPASS_STORAGE_FILE_H_
#define ENCOMPASS_STORAGE_FILE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "storage/bplus_tree.h"
#include "storage/record.h"

namespace encompass::storage {

/// ENCOMPASS file organizations.
enum class FileOrganization : uint8_t {
  kKeySequenced = 0,   ///< B+tree on a byte-string primary key
  kRelative = 1,       ///< records addressed by record number
  kEntrySequenced = 2, ///< append-only; record number assigned at append
};

const char* FileOrganizationName(FileOrganization org);

/// Mutation kinds — shared with audit records and transaction undo.
enum class MutationOp : uint8_t {
  kInsert = 0,
  kUpdate = 1,
  kDelete = 2,
};

/// Encodes a record number as a big-endian key (preserves numeric order).
Bytes EncodeRecnum(uint64_t n);
/// Decodes a big-endian record-number key; false if not 8 bytes.
bool DecodeRecnum(const Slice& key, uint64_t* n);

/// Options fixed at file creation.
struct FileOptions {
  bool audited = false;   ///< TMF protects this file (audit images generated)
  FileSchema schema;      ///< alternate-key declaration
  size_t block_size = 4096;
};

/// Abstract structured file. Keys and records are byte strings; for relative
/// and entry-sequenced files the key is an EncodeRecnum record number.
class StructuredFile {
 public:
  StructuredFile(std::string name, FileOptions options)
      : name_(std::move(name)), options_(std::move(options)) {}
  virtual ~StructuredFile() = default;

  const std::string& name() const { return name_; }
  bool audited() const { return options_.audited; }
  const FileSchema& schema() const { return options_.schema; }
  virtual FileOrganization organization() const = 0;

  // -- Primary-key operations --------------------------------------------------

  /// Inserts a record under an explicit key. For entry-sequenced files pass
  /// an empty key and read the assigned key from *assigned_key.
  virtual Status Insert(const Slice& key, const Slice& record,
                        Bytes* assigned_key = nullptr) = 0;
  virtual Status Update(const Slice& key, const Slice& record) = 0;
  virtual Status Delete(const Slice& key) = 0;
  virtual Result<Bytes> Read(const Slice& key) const = 0;
  /// First entry with key >= (inclusive) or > (exclusive) the given key.
  virtual Result<TreeEntry> Seek(const Slice& key, bool inclusive) const = 0;
  virtual size_t record_count() const = 0;
  /// Depth of the physical access path (index levels); drives the latency
  /// model in the DISCPROCESS.
  virtual int access_depth() const { return 1; }

  /// In-order visit of all entries.
  virtual void ForEach(
      const std::function<void(const Slice&, const Slice&)>& fn) const = 0;

  // -- Alternate keys ----------------------------------------------------------

  /// Primary keys of all records whose `field` equals `value`. The field
  /// must be declared in the schema. Results in primary-key order.
  Result<std::vector<Bytes>> LookupAlternate(const std::string& field,
                                             const std::string& value) const;

  // -- Archival -----------------------------------------------------------------

  /// Appends a self-contained snapshot of the file content.
  virtual void ArchiveTo(Bytes* out) const = 0;
  /// Replaces content from an ArchiveTo image (indices are rebuilt).
  virtual Status RestoreFrom(Slice* in) = 0;

 protected:
  /// Updates alternate-key indices for one record transition. Call with the
  /// record image before (empty slice if inserting) and after (empty slice
  /// if deleting) the mutation.
  void MaintainIndices(const Slice& key, const Slice& before, const Slice& after);
  /// Rebuilds all indices by scanning the file (used after restore).
  void RebuildIndices();
  bool HasIndices() const { return !options_.schema.alternate_keys.empty(); }

  std::string name_;
  FileOptions options_;

 private:
  // field -> (field value -> primary keys). Ordered for deterministic scans.
  std::map<std::string, std::multimap<std::string, Bytes>> indices_;
};

/// Key-sequenced file: B+tree with prefix-compressed archival.
class KeySequencedFile : public StructuredFile {
 public:
  KeySequencedFile(std::string name, FileOptions options);
  FileOrganization organization() const override {
    return FileOrganization::kKeySequenced;
  }
  Status Insert(const Slice& key, const Slice& record, Bytes* assigned_key) override;
  Status Update(const Slice& key, const Slice& record) override;
  Status Delete(const Slice& key) override;
  Result<Bytes> Read(const Slice& key) const override;
  Result<TreeEntry> Seek(const Slice& key, bool inclusive) const override;
  size_t record_count() const override { return tree_.size(); }
  int access_depth() const override { return tree_.height(); }
  void ForEach(
      const std::function<void(const Slice&, const Slice&)>& fn) const override;
  void ArchiveTo(Bytes* out) const override;
  Status RestoreFrom(Slice* in) override;

  /// Compression ratio of the archived form vs raw data (1.0 = none).
  double CompressionRatio() const;

 private:
  BPlusTree tree_;
};

/// Relative file: records addressed by caller-chosen record number.
class RelativeFile : public StructuredFile {
 public:
  RelativeFile(std::string name, FileOptions options)
      : StructuredFile(std::move(name), std::move(options)) {}
  FileOrganization organization() const override {
    return FileOrganization::kRelative;
  }
  Status Insert(const Slice& key, const Slice& record, Bytes* assigned_key) override;
  Status Update(const Slice& key, const Slice& record) override;
  Status Delete(const Slice& key) override;
  Result<Bytes> Read(const Slice& key) const override;
  Result<TreeEntry> Seek(const Slice& key, bool inclusive) const override;
  size_t record_count() const override { return slots_.size(); }
  void ForEach(
      const std::function<void(const Slice&, const Slice&)>& fn) const override;
  void ArchiveTo(Bytes* out) const override;
  Status RestoreFrom(Slice* in) override;

 private:
  std::map<uint64_t, Bytes> slots_;
};

/// Entry-sequenced file: append-only log of records. Appends assign the next
/// record number; updates are allowed (audit compensation needs them
/// internally); user deletes are rejected.
class EntrySequencedFile : public StructuredFile {
 public:
  EntrySequencedFile(std::string name, FileOptions options)
      : StructuredFile(std::move(name), std::move(options)) {}
  FileOrganization organization() const override {
    return FileOrganization::kEntrySequenced;
  }
  /// key must be empty (entries are assigned numbers) — except during
  /// transaction backout, which re-removes by assigned key via RemoveEntry.
  Status Insert(const Slice& key, const Slice& record, Bytes* assigned_key) override;
  Status Update(const Slice& key, const Slice& record) override;
  /// Entry-sequenced files do not support logical deletion.
  Status Delete(const Slice& key) override;
  Result<Bytes> Read(const Slice& key) const override;
  Result<TreeEntry> Seek(const Slice& key, bool inclusive) const override;
  size_t record_count() const override { return entries_.size(); }
  void ForEach(
      const std::function<void(const Slice&, const Slice&)>& fn) const override;
  void ArchiveTo(Bytes* out) const override;
  Status RestoreFrom(Slice* in) override;

  /// Physical removal used only by transaction backout to undo an append.
  Status RemoveEntry(const Slice& key);

 private:
  std::map<uint64_t, Bytes> entries_;
  uint64_t next_seq_ = 1;
};

/// Factory for the three organizations.
std::unique_ptr<StructuredFile> MakeFile(FileOrganization org, std::string name,
                                         FileOptions options);

}  // namespace encompass::storage

#endif  // ENCOMPASS_STORAGE_FILE_H_
