// A small banking application over ENCOMPASS: a context-free account server
// and terminal programs for transfers. Used by the integration tests, the
// examples, and the benchmark workloads (the classic debit/credit workload
// of the paper's era).

#ifndef ENCOMPASS_APPS_BANKING_BANKING_H_
#define ENCOMPASS_APPS_BANKING_BANKING_H_

#include <string>

#include "encompass/deployment.h"
#include "encompass/screen_program.h"
#include "encompass/server.h"
#include "encompass/server_class.h"

namespace encompass::apps::banking {

/// Account server: serves "open", "credit", "debit", and "read" requests on
/// an account file. Request/reply bodies are encoded storage::Records with
/// fields op / acct / amount / balance.
class BankServer : public app::ServerProcess {
 public:
  BankServer(const storage::Catalog* catalog, std::string account_file)
      : ServerProcess(catalog), file_(std::move(account_file)) {}

 protected:
  void HandleRequest(const net::Message& msg) override;

 private:
  void ApplyDelta(const net::Message& msg, const std::string& acct,
                  int64_t delta);

  std::string file_;
};

/// Builds the request record for an account operation.
Bytes BankRequest(const std::string& op, const std::string& acct,
                  int64_t amount = 0);

/// Registers a BankServer server class named `class_name` on `node`.
app::ServerClassRouter* AddBankServerClass(app::Deployment* deploy,
                                           net::NodeId node,
                                           const std::string& class_name,
                                           const std::string& account_file,
                                           app::ServerClassConfig base = {});

/// Terminal program: pick two random accounts and an amount, then run
/// BEGIN / SEND debit / SEND credit / END. Accounts are "acct00000" ..
/// "acct<n-1>"; the skew parameter concentrates traffic on low-numbered
/// accounts (0 = uniform).
app::ScreenProgram MakeTransferProgram(net::NodeId server_node,
                                       const std::string& server_class,
                                       int num_accounts, int64_t max_amount,
                                       double skew = 0.0);

/// Seeds `n` accounts of `initial` balance directly into a volume (setup
/// convenience for tests and benches; bypasses TMF).
void SeedAccounts(storage::Volume* volume, const std::string& file, int n,
                  int64_t initial);

/// Sum of all account balances in a volume file (consistency invariant).
int64_t SumBalances(storage::Volume* volume, const std::string& file);

/// Account key for index i ("acct00042").
std::string AccountKey(int i);

}  // namespace encompass::apps::banking

#endif  // ENCOMPASS_APPS_BANKING_BANKING_H_
