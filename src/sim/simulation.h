// Simulation: the deterministic run context shared by every simulated
// component — clock, event queue, PRNG, and statistics.

#ifndef ENCOMPASS_SIM_SIMULATION_H_
#define ENCOMPASS_SIM_SIMULATION_H_

#include <functional>

#include "common/random.h"
#include "common/sim_time.h"
#include "sim/event_queue.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace encompass::sim {

/// One deterministic simulated world. All simulated components hold a
/// pointer to their Simulation; nothing in the library touches wall-clock
/// time or global randomness.
class Simulation {
 public:
  explicit Simulation(uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime Now() const { return now_; }
  encompass::Random& Rng() { return rng_; }
  Stats& GetStats() { return stats_; }
  TraceLog& GetTrace() { return trace_; }

  /// Appends one causal trace event stamped with the current simulated time.
  /// No-op when tracing is disabled or the context carries no transaction.
  void RecordTrace(TraceEventKind kind, const TraceContext& ctx, uint16_t node,
                   uint32_t a = 0, uint32_t b = 0, uint32_t parent = 0) {
    if (!trace_.enabled() || !ctx.active()) return;
    TraceEvent e;
    e.time = now_;
    e.transid = ctx.transid;
    e.span = ctx.span;
    e.parent = parent;
    e.kind = kind;
    e.node = node;
    e.a = a;
    e.b = b;
    trace_.Record(e);
  }

  /// Schedules `fn` to run `delay` microseconds from now (>= 0).
  EventId After(SimDuration delay, std::function<void()> fn) {
    return queue_.Schedule(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Schedules `fn` at an absolute time (clamped to now).
  EventId At(SimTime when, std::function<void()> fn) {
    return queue_.Schedule(when < now_ ? now_ : when, std::move(fn));
  }

  void Cancel(EventId id) { queue_.Cancel(id); }

  /// Runs one event. Returns false if the queue was empty.
  bool Step();

  /// Runs events until the queue is empty or `max_events` have fired.
  /// Returns the number of events processed.
  size_t Run(size_t max_events = SIZE_MAX);

  /// Runs all events with time <= deadline, then advances the clock to
  /// exactly `deadline` (even if no event fired).
  void RunUntil(SimTime deadline);

  /// RunUntil(Now() + d).
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  bool Idle() const { return queue_.empty(); }
  size_t PendingEvents() const { return queue_.size(); }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
  encompass::Random rng_;
  Stats stats_;
  TraceLog trace_;
};

}  // namespace encompass::sim

#endif  // ENCOMPASS_SIM_SIMULATION_H_
