// E7 — the commit hot path under concurrency. N driver processes each run
// back-to-back distributed transactions (a write on every one of 3 nodes,
// then END-TRANSACTION), so at any instant many transactions sit in phase 1
// / at the commit point together. Measures what the group-commit overhaul
// buys: physical audit/MAT forces per committed transaction (< 1 once
// committers coalesce), the route-cache hit rate of the network layer, and
// commit-latency percentiles. Also sweeps the batching window to show the
// latency/throughput trade.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "tmf/file_system.h"
#include "tmf/tmf_protocol.h"

namespace encompass::bench {
namespace {

/// One concurrent transaction source: begins a transaction, inserts one
/// record per file, commits, and immediately starts the next — keeping the
/// commit pipeline saturated for the whole measurement.
class TxnDriver : public os::Process {
 public:
  struct Config {
    const storage::Catalog* catalog = nullptr;
    std::vector<std::string> files;  ///< one insert per file, per txn
    int id = 0;                      ///< key namespace (avoids lock conflicts)
    int txns = 0;                    ///< transactions to run, back to back
  };

  explicit TxnDriver(Config config) : config_(std::move(config)) {}

  int committed() const { return committed_; }
  int finished() const { return finished_; }
  bool done() const { return finished_ >= config_.txns; }
  const std::vector<SimDuration>& commit_latencies() const {
    return commit_latencies_;
  }

  void OnStart() override {
    fs_ = std::make_unique<tmf::FileSystem>(this, config_.catalog);
    BeginNext();
  }

 private:
  void BeginNext() {
    if (done()) return;
    Call(net::Address(1, "$TMP"), tmf::kTmfBegin, {},
         [this](const Status& s, const net::Message& m) {
           if (!s.ok()) {
             FinishTxn(false);
             return;
           }
           auto transid = tmf::DecodeTransidPayload(Slice(m.payload));
           if (!transid.ok()) {
             FinishTxn(false);
             return;
           }
           transid_ = *transid;
           set_current_transid(transid_.Pack());
           Insert(0);
         });
  }

  void Insert(size_t file_index) {
    if (file_index >= config_.files.size()) {
      Commit();
      return;
    }
    std::string key = "d" + std::to_string(config_.id) + "k" +
                      std::to_string(finished_);
    fs_->Insert(config_.files[file_index], Slice(key), Slice("v"),
                [this, file_index](const Status& s, const Bytes&) {
                  if (!s.ok()) {
                    Abort();
                    return;
                  }
                  Insert(file_index + 1);
                });
  }

  void Commit() {
    SimTime start = sim()->Now();
    Call(net::Address(1, "$TMP"), tmf::kTmfEnd,
         tmf::EncodeTransidPayload(transid_),
         [this, start](const Status& s, const net::Message&) {
           if (s.ok()) commit_latencies_.push_back(sim()->Now() - start);
           FinishTxn(s.ok());
         },
         {.timeout = Seconds(30)});
  }

  void Abort() {
    Call(net::Address(1, "$TMP"), tmf::kTmfAbort,
         tmf::EncodeTransidPayload(transid_),
         [this](const Status&, const net::Message&) { FinishTxn(false); });
  }

  void FinishTxn(bool ok) {
    set_current_transid(0);
    if (ok) ++committed_;
    ++finished_;
    BeginNext();
  }

  Config config_;
  std::unique_ptr<tmf::FileSystem> fs_;
  Transid transid_;
  int committed_ = 0;
  int finished_ = 0;
  std::vector<SimDuration> commit_latencies_;
};

struct E7Rig {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<app::Deployment> deploy;
  std::vector<TxnDriver*> drivers;
};

constexpr int kNodes = 3;

/// 3 nodes, one audited file each; `drivers` concurrent transaction sources
/// spread over node 1's CPUs, each running `txns` distributed transactions.
E7Rig MakeE7Rig(uint64_t seed, int drivers, int txns,
                SimDuration group_commit_window = 0) {
  E7Rig rig;
  rig.sim = std::make_unique<sim::Simulation>(seed);
  rig.deploy = std::make_unique<app::Deployment>(rig.sim.get());
  for (int n = 1; n <= kNodes; ++n) {
    app::NodeSpec spec;
    spec.id = static_cast<net::NodeId>(n);
    spec.node_config.num_cpus = 4;
    spec.volumes = {app::VolumeSpec{
        "$DATA" + std::to_string(n),
        {app::FileSpec{"f" + std::to_string(n)}},
        {}}};
    spec.audit_config.group_commit_window = group_commit_window;
    spec.tmp_config.mat_group_commit_window = group_commit_window;
    rig.deploy->AddNode(spec);
  }
  rig.deploy->LinkAll();
  for (int n = 1; n <= kNodes; ++n) {
    rig.deploy->DefineFile("f" + std::to_string(n), static_cast<net::NodeId>(n),
                           "$DATA" + std::to_string(n));
  }
  rig.sim->Run();  // services settle before the drivers start

  TxnDriver::Config base;
  base.catalog = &rig.deploy->catalog();
  for (int n = 1; n <= kNodes; ++n) base.files.push_back("f" + std::to_string(n));
  base.txns = txns;
  os::Node* home = rig.deploy->GetNode(1)->node();
  for (int d = 0; d < drivers; ++d) {
    TxnDriver::Config cfg = base;
    cfg.id = d;
    rig.drivers.push_back(
        home->Spawn<TxnDriver>(d % home->config().num_cpus, cfg));
  }
  return rig;
}

struct E7Result {
  int committed = 0;
  int finished = 0;
  double elapsed_s = 0;
  double txns_per_sec = 0;
  double audit_forces_per_txn = 0;
  double mat_forces_per_txn = 0;
  double route_cache_hit_rate = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
};

E7Result RunE7(E7Rig& rig) {
  sim::Stats& stats = rig.sim->GetStats();
  int64_t forces0 = stats.Counter("audit.forces");
  int64_t mat0 = stats.Counter("tmf.mat_forces");
  int64_t hits0 = stats.Counter("net.route_cache_hits");
  int64_t misses0 = stats.Counter("net.route_cache_misses");
  SimTime start = rig.sim->Now();

  auto all_done = [&rig]() {
    for (const auto* d : rig.drivers) {
      if (!d->done()) return false;
    }
    return true;
  };
  SimTime deadline = start + Seconds(3600);
  while (!all_done() && rig.sim->Now() < deadline) rig.sim->RunFor(Millis(50));
  rig.sim->Run();  // drain trailing phase-2 deliveries

  E7Result r;
  std::vector<SimDuration> latencies;
  for (const auto* d : rig.drivers) {
    r.committed += d->committed();
    r.finished += d->finished();
    latencies.insert(latencies.end(), d->commit_latencies().begin(),
                     d->commit_latencies().end());
  }
  r.elapsed_s = static_cast<double>(rig.sim->Now() - start) / 1e6;
  r.txns_per_sec = TxnPerSec(static_cast<uint64_t>(r.committed),
                             rig.sim->Now() - start);
  if (r.committed > 0) {
    r.audit_forces_per_txn =
        static_cast<double>(stats.Counter("audit.forces") - forces0) /
        static_cast<double>(r.committed);
    r.mat_forces_per_txn =
        static_cast<double>(stats.Counter("tmf.mat_forces") - mat0) /
        static_cast<double>(r.committed);
  }
  int64_t hits = stats.Counter("net.route_cache_hits") - hits0;
  int64_t misses = stats.Counter("net.route_cache_misses") - misses0;
  if (hits + misses > 0) {
    r.route_cache_hit_rate =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
  r.p50_ms = PercentileMs(latencies, 50);
  r.p95_ms = PercentileMs(latencies, 95);
  r.p99_ms = PercentileMs(latencies, 99);
  return r;
}

void TableThroughputVsConcurrency() {
  Header("E7.a commit throughput vs concurrent transactions (3 nodes)");
  printf("%8s %10s %10s %12s %12s %10s %9s %9s %9s\n", "drivers", "committed",
         "txns/s", "forces/txn", "matfrc/txn", "rthit", "p50ms", "p95ms",
         "p99ms");
  for (int drivers : {1, 2, 4, 8, 16}) {
    E7Rig rig = MakeE7Rig(701, drivers, /*txns=*/25);
    E7Result r = RunE7(rig);
    printf("%8d %10d %10.1f %12.3f %12.3f %10.3f %9.2f %9.2f %9.2f\n", drivers,
           r.committed, r.txns_per_sec, r.audit_forces_per_txn,
           r.mat_forces_per_txn, r.route_cache_hit_rate, r.p50_ms, r.p95_ms,
           r.p99_ms);
    if (drivers == 8) {
      ReportValue("e7.window0.audit_forces_per_txn", r.audit_forces_per_txn);
      ReportValue("e7.window0.mat_forces_per_txn", r.mat_forces_per_txn);
      ReportValue("e7.window0.txns_per_sec", r.txns_per_sec);
    }
  }
  printf("(forces/txn = physical audit-trail forces per committed txn;\n"
         " group commit drives it below 1 once committers overlap)\n");
}

void TableAcceptance() {
  // Headline numbers: 8 concurrent committers with the 2 ms gathering window
  // — the configuration the group-commit knobs exist for. Three audited
  // participant nodes mean three phase-1 forces per commit without
  // coalescing; < 1 per committed transaction is the engaged signature.
  Header("E7.c acceptance configuration (8 drivers, 2 ms window)");
  E7Rig rig = MakeE7Rig(701, /*drivers=*/8, /*txns=*/25, Millis(2));
  E7Result r = RunE7(rig);
  printf("committed=%d txns/s=%.1f audit-forces/txn=%.3f mat-forces/txn=%.3f\n"
         "route-cache-hit-rate=%.3f p50=%.2fms p95=%.2fms p99=%.2fms\n",
         r.committed, r.txns_per_sec, r.audit_forces_per_txn,
         r.mat_forces_per_txn, r.route_cache_hit_rate, r.p50_ms, r.p95_ms,
         r.p99_ms);
  ReportValue("e7.committed", r.committed);
  ReportValue("e7.txns_per_sec", r.txns_per_sec);
  ReportValue("e7.audit_forces_per_txn", r.audit_forces_per_txn);
  ReportValue("e7.mat_forces_per_txn", r.mat_forces_per_txn);
  ReportValue("e7.route_cache_hit_rate", r.route_cache_hit_rate);
  ReportValue("e7.commit_latency_ms.p50", r.p50_ms);
  ReportValue("e7.commit_latency_ms.p95", r.p95_ms);
  ReportValue("e7.commit_latency_ms.p99", r.p99_ms);
  ReportSimStats("e7sim", rig.sim->GetStats());
}

void TableWindowSweep() {
  Header("E7.b batching-window sweep (8 drivers)");
  printf("%12s %10s %12s %12s %9s %9s\n", "window(ms)", "txns/s", "forces/txn",
         "matfrc/txn", "p50ms", "p99ms");
  for (SimDuration window : {SimDuration(0), Millis(1), Millis(2), Millis(4)}) {
    E7Rig rig = MakeE7Rig(709, /*drivers=*/8, /*txns=*/25, window);
    E7Result r = RunE7(rig);
    printf("%12.1f %10.1f %12.3f %12.3f %9.2f %9.2f\n",
           static_cast<double>(window) / 1e3, r.txns_per_sec,
           r.audit_forces_per_txn, r.mat_forces_per_txn, r.p50_ms, r.p99_ms);
    if (window == Millis(2)) {
      ReportValue("e7.window2ms.txns_per_sec", r.txns_per_sec);
      ReportValue("e7.window2ms.audit_forces_per_txn", r.audit_forces_per_txn);
    }
  }
  printf("(a small window trades commit latency for fewer physical writes)\n");
}

void BM_CommitThroughput(benchmark::State& state) {
  const int drivers = static_cast<int>(state.range(0));
  int64_t committed = 0;
  for (auto _ : state) {
    E7Rig rig = MakeE7Rig(719, drivers, /*txns=*/10);
    E7Result r = RunE7(rig);
    committed += r.committed;
    state.counters["sim_txns_per_sec"] =
        benchmark::Counter(r.txns_per_sec);
  }
  state.SetItemsProcessed(committed);
}
BENCHMARK(BM_CommitThroughput)->Arg(1)->Arg(8)->Iterations(2);

}  // namespace
}  // namespace encompass::bench

int main(int argc, char** argv) {
  encompass::bench::InitReport("e7_commit_throughput");
  encompass::bench::ReportMeta(/*seed=*/701);
  printf("E7: commit hot path — group commit, route cache, concurrency\n");
  encompass::bench::TableThroughputVsConcurrency();
  encompass::bench::TableWindowSweep();
  encompass::bench::TableAcceptance();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  encompass::bench::WriteReport();
  return 0;
}
