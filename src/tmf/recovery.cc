#include "tmf/recovery.h"

#include "common/logging.h"
#include "os/node.h"
#include "tmf/tmf_protocol.h"

namespace encompass::tmf {

void NodeRecoveryProcess::OnAttach() {
  m_runs_ = stats().RegisterCounter("recovery.runs");
  m_negotiations_ = stats().RegisterCounter("recovery.negotiations");
  m_negotiation_retries_ = stats().RegisterCounter("recovery.negotiation_retries");
  m_presumed_aborts_ = stats().RegisterCounter("recovery.presumed_aborts");
}

void NodeRecoveryProcess::OnStart() {
  stats().Incr(m_runs_);
  for (const auto& task : config_.tasks) {
    RollforwardInput input;
    input.volume = task.volume;
    input.archive = task.archive;
    input.trail = task.trail;
    input.archive_lsn = task.archive_lsn;
    input.monitor_trail = config_.monitor_trail;
    auto plan = PlanRollforward(input);
    if (!plan.ok()) {
      LOG_ERROR << DebugName() << " cannot plan rollforward of "
                << task.volume->name() << ": " << plan.status().ToString();
      continue;
    }
    planned_.push_back(PlannedVolume{task, std::move(*plan)});
  }

  for (const auto& pv : planned_) {
    for (const Transid& t : pv.plan.unresolved) {
      if (t.home_node == node()->id()) {
        // Home transactions with no durable MAT completion never committed:
        // the forced home MAT record is the commit point, it survives the
        // crash, and it is absent. Record the presumed abort durably so
        // in-doubt participants elsewhere resolve against it instantly.
        if (negotiated_.emplace(t, Disposition::kAborted).second) {
          stats().Incr(m_presumed_aborts_);
          if (config_.monitor_trail != nullptr) {
            config_.monitor_trail->AppendForced(
                audit::CompletionRecord{t, audit::Completion::kAborted});
          }
        }
      } else {
        pending_.insert(t);
      }
    }
  }
  ResolveNext();
}

void NodeRecoveryProcess::ResolveNext() {
  if (pending_.empty()) {
    Finish();
    return;
  }
  const Transid t = *pending_.begin();
  os::CallOptions opt;
  opt.timeout = config_.resolve_timeout;
  Call(net::Address(t.home_node, "$TMP"), kTmfResolveTxn,
       EncodeResolveTxn(t, /*recovering=*/true),
       [this, t](const Status& s, const net::Message& reply) {
         Disposition d = Disposition::kUnknown;
         if (s.ok()) DecodeDisposition(Slice(reply.payload), &d);
         if (d == Disposition::kUnknown) {
           // Home unreachable (or still deciding): negotiation simply waits.
           // The campaign's single-open-heavy-fault discipline guarantees
           // the home comes back; there is no safe unilateral answer here.
           stats().Incr(m_negotiation_retries_);
           SetTimer(config_.retry_interval, [this]() { ResolveNext(); });
           return;
         }
         stats().Incr(m_negotiations_);
         negotiated_[t] = d;
         if (config_.monitor_trail != nullptr) {
           config_.monitor_trail->AppendForced(audit::CompletionRecord{
               t, d == Disposition::kCommitted ? audit::Completion::kCommitted
                                               : audit::Completion::kAborted});
         }
         pending_.erase(t);
         ResolveNext();
       },
       opt);
}

void NodeRecoveryProcess::Finish() {
  std::vector<RollforwardReport> reports;
  for (auto& pv : planned_) {
    for (const Transid& t : pv.plan.unresolved) {
      auto it = negotiated_.find(t);
      if (it != negotiated_.end()) pv.plan.dispositions[t] = it->second;
    }
    RollforwardInput input;
    input.volume = pv.task.volume;
    input.archive = pv.task.archive;
    input.trail = pv.task.trail;
    input.archive_lsn = pv.task.archive_lsn;
    input.monitor_trail = config_.monitor_trail;
    auto report = ExecuteRollforward(input, pv.plan);
    if (!report.ok()) {
      LOG_ERROR << DebugName() << " rollforward of " << pv.task.volume->name()
                << " failed: " << report.status().ToString();
      reports.push_back(RollforwardReport{});
      continue;
    }
    // The rebuilt volume holds exactly archive + committed redo: nothing in
    // the trail up to this point is undoable any more.
    pv.task.trail->SetUndoFloor(pv.task.trail->next_lsn() - 1);
    reports.push_back(*report);
  }
  done_ = true;
  if (config_.on_done) config_.on_done(reports);  // may destroy this process
}

}  // namespace encompass::tmf
