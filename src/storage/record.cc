#include "storage/record.h"

namespace encompass::storage {

Bytes Record::Encode() const {
  Bytes out;
  PutVarint32(&out, static_cast<uint32_t>(fields_.size()));
  for (const auto& [name, value] : fields_) {
    PutLengthPrefixed(&out, Slice(name));
    PutLengthPrefixed(&out, Slice(value));
  }
  return out;
}

Result<Record> Record::Decode(const Slice& data) {
  Slice in = data;
  uint32_t n;
  if (!GetVarint32(&in, &n)) return DecodeError("record field count");
  Record rec;
  for (uint32_t i = 0; i < n; ++i) {
    std::string name, value;
    if (!GetLengthPrefixedString(&in, &name) ||
        !GetLengthPrefixedString(&in, &value)) {
      return DecodeError("record field");
    }
    rec.Set(name, value);
  }
  return rec;
}

}  // namespace encompass::storage
