// The paper's manual override procedure, end to end. "Once a non-home node
// has replied affirmatively to the phase-one message ... it must hold the
// transaction's locks until notification of the transaction's final
// disposition ... If communication is lost at this point, the transaction's
// locks on the inaccessible node will be held until communication is
// restored. The manual override for this situation requires the following
// steps: (1) use of a TMF utility on the home node to determine the
// transaction's disposition; (2) a telephone conversation (for example)
// between operators on the home node and on the inaccessible non-home
// node; and, finally, (3) use of the TMF utility on the non-home node to
// force the disposition of the transaction."
//
// Build & run:  ./build/examples/indoubt_override

#include <cstdio>

#include "encompass/deployment.h"
#include "test_util.h"
#include "tmf/file_system.h"
#include "tmf/transaction_state.h"

using namespace encompass;
using namespace encompass::app;
using encompass::testutil::TestClient;

int main() {
  sim::Simulation sim(8);
  Deployment deploy(&sim);
  for (net::NodeId id : {1, 2}) {
    NodeSpec spec;
    spec.id = id;
    spec.node_config.num_cpus = 4;
    spec.volumes = {VolumeSpec{"$DATA" + std::to_string(id),
                               {FileSpec{"orders"}},
                               {}}};
    deploy.AddNode(spec);
  }
  deploy.LinkAll();
  deploy.DefineFile("orders", 2, "$DATA2");  // the data lives on node 2
  auto* home_op = deploy.GetNode(1)->node()->Spawn<TestClient>(2);
  auto* remote_op = deploy.GetNode(2)->node()->Spawn<TestClient>(2);
  tmf::FileSystem fs(home_op, &deploy.catalog());
  sim.Run();

  // A distributed transaction: home node 1 writes a record on node 2.
  auto* begin = home_op->CallRaw(net::Address(1, "$TMP"), tmf::kTmfBegin, {});
  sim.Run();
  auto transid = tmf::DecodeTransidPayload(Slice(begin->payload));
  home_op->set_current_transid(transid->Pack());
  fs.Insert("orders", Slice("PO-1001"), Slice("approved"),
            [](const Status&, const Bytes&) {});
  home_op->set_current_transid(0);
  sim.Run();

  // END-TRANSACTION; the link dies exactly when the commit record hits the
  // home node's Monitor Audit Trail — node 2 answered phase 1 and is now
  // IN DOUBT, holding its locks.
  home_op->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                   tmf::EncodeTransidPayload(*transid), transid->Pack());
  auto* mat1 = &deploy.GetNode(1)->storage().monitor_trail;
  for (int i = 0; i < 2000 && mat1->Lookup(*transid) != 1; ++i) {
    sim.RunFor(Micros(500));
  }
  deploy.cluster().CutLink(1, 2);
  sim.RunFor(Seconds(2));
  printf("partition! node 2 is in doubt about %s\n",
         transid->ToString().c_str());
  printf("locks held on node 2: %zu\n",
         deploy.GetNode(2)->disc("$DATA2")->locks().held_count());

  // Step 1: the operator on the non-home node lists transactions stuck
  // in "ending" (in doubt).
  auto* list = remote_op->CallRaw(net::Address(2, "$TMP"), tmf::kTmfListTxns, {});
  sim.RunFor(Millis(10));
  auto entries = tmf::DecodeTxnList(Slice(list->payload));
  printf("\n[node 2 operator] TMF utility: LIST TRANSACTIONS\n");
  for (const auto& e : *entries) {
    printf("  %s state=%s home=%s parent=node%u\n", e.transid.ToString().c_str(),
           tmf::TxnStateName(static_cast<tmf::TxnState>(e.state)),
           e.is_home ? "yes" : "no", e.parent);
  }

  // Step 2: the operator on the HOME node determines the disposition.
  auto* status = home_op->CallRaw(net::Address(1, "$TMP"), tmf::kTmfStatus,
                                  tmf::EncodeTransidPayload(*transid));
  sim.RunFor(Millis(10));
  auto disposition = static_cast<tmf::Disposition>(status->payload[0]);
  printf("\n[node 1 operator] TMF utility: STATUS %s -> %s\n",
         transid->ToString().c_str(),
         disposition == tmf::Disposition::kCommitted ? "COMMITTED" : "ABORTED");
  printf("[telephone] node 1 operator tells node 2 operator: COMMITTED\n");

  // Step 3: the operator on the non-home node forces the disposition.
  auto* force = remote_op->CallRaw(
      net::Address(2, "$TMP"), tmf::kTmfForceDisposition,
      tmf::EncodeForceDisposition(*transid, disposition));
  sim.RunFor(Seconds(1));
  printf("\n[node 2 operator] TMF utility: FORCE %s COMMITTED -> %s\n",
         transid->ToString().c_str(), force->status.ToString().c_str());

  size_t locks_after = deploy.GetNode(2)->disc("$DATA2")->locks().held_count();
  auto record = deploy.GetNode(2)
                    ->storage()
                    .volumes.at("$DATA2")
                    ->ReadRecord("orders", Slice("PO-1001"));
  printf("locks held on node 2 after override: %zu\n", locks_after);
  printf("PO-1001 on node 2: %s\n",
         record.status.ok() ? ToString(record.value).c_str() : "missing");

  bool ok = force->status.ok() && locks_after == 0 && record.status.ok() &&
            disposition == tmf::Disposition::kCommitted &&
            !entries->empty();
  printf("\n%s\n", ok ? "IN-DOUBT OVERRIDE OK" : "IN-DOUBT OVERRIDE FAILED");
  return ok ? 0 : 1;
}
