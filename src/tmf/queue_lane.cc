#include "tmf/queue_lane.h"

#include "common/coding.h"
#include "tmf/tmf_protocol.h"

namespace encompass::tmf {

namespace {

// Deterministic 32-bit FNV-1a over key bytes: lane bucketing must not depend
// on std::hash (implementation-defined and not stable across runs/builds).
uint32_t KeyHash(const Bytes& key) {
  uint32_t h = 2166136261u;
  for (uint8_t c : key) h = (h ^ c) * 16777619u;
  return h;
}

}  // namespace

Bytes QueueTxn::Encode() const {
  Bytes out;
  PutVarint32(&out, static_cast<uint32_t>(declared.size()));
  for (const std::string& f : declared) PutLengthPrefixed(&out, Slice(f));
  PutVarint32(&out, static_cast<uint32_t>(ops.size()));
  for (const QueueOp& op : ops) {
    PutFixed8(&out, static_cast<uint8_t>(op.kind));
    PutLengthPrefixed(&out, Slice(op.file));
    PutLengthPrefixed(&out, Slice(op.key));
    PutLengthPrefixed(&out, Slice(op.record));
    PutLengthPrefixed(&out, Slice(op.field));
    PutFixed64(&out, static_cast<uint64_t>(op.delta));
  }
  return out;
}

Result<QueueTxn> QueueTxn::Decode(const Slice& payload) {
  Slice in = payload;
  QueueTxn txn;
  uint32_t n;
  if (!GetVarint32(&in, &n)) return DecodeError("queue txn");
  if (static_cast<uint64_t>(n) > in.size()) {
    return DecodeError("queue txn declared count exceeds payload");
  }
  txn.declared.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string f;
    if (!GetLengthPrefixedString(&in, &f)) return DecodeError("queue txn file");
    txn.declared.push_back(std::move(f));
  }
  if (!GetVarint32(&in, &n)) return DecodeError("queue txn");
  if (static_cast<uint64_t>(n) * 13 > in.size()) {
    return DecodeError("queue txn op count exceeds payload");
  }
  txn.ops.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    QueueOp op;
    uint8_t kind;
    uint64_t delta;
    if (!GetFixed8(&in, &kind) || !GetLengthPrefixedString(&in, &op.file) ||
        !GetLengthPrefixedBytes(&in, &op.key) ||
        !GetLengthPrefixedBytes(&in, &op.record) ||
        !GetLengthPrefixedString(&in, &op.field) || !GetFixed64(&in, &delta)) {
      return DecodeError("queue txn op");
    }
    op.kind = static_cast<QueueOp::Kind>(kind);
    op.delta = static_cast<int64_t>(delta);
    txn.ops.push_back(std::move(op));
  }
  return txn;
}

Bytes QueueTxnReply::Encode() const {
  Bytes out;
  PutFixed64(&out, transid);
  PutVarint32(&out, static_cast<uint32_t>(results.size()));
  for (const auto& r : results) {
    PutFixed8(&out, static_cast<uint8_t>(r.status));
    PutLengthPrefixed(&out, Slice(r.value));
  }
  return out;
}

Result<QueueTxnReply> QueueTxnReply::Decode(const Slice& payload) {
  Slice in = payload;
  QueueTxnReply rep;
  uint32_t n;
  if (!GetFixed64(&in, &rep.transid) || !GetVarint32(&in, &n)) {
    return DecodeError("queue txn reply");
  }
  if (static_cast<uint64_t>(n) * 2 > in.size()) {
    return DecodeError("queue txn reply count exceeds payload");
  }
  rep.results.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    discprocess::PlannedBatchReply::OpResult r;
    uint8_t code;
    if (!GetFixed8(&in, &code) || !GetLengthPrefixedBytes(&in, &r.value)) {
      return DecodeError("queue txn reply entry");
    }
    r.status = static_cast<Status::Code>(code);
    rep.results.push_back(std::move(r));
  }
  return rep;
}

void QueuePlanner::OnPairAttach() {
  sim::Stats& stats = this->stats();
  m_.submits = stats.RegisterCounter("queue.submits");
  m_.plan_violations = stats.RegisterCounter("queue.plan_violations");
  m_.epochs = stats.RegisterCounter("queue.epochs");
  m_.commits = stats.RegisterCounter("queue.commits");
  m_.aborts = stats.RegisterCounter("queue.aborts");
  m_.lane_batches = stats.RegisterCounter("queue.lane_batches");
  m_.epoch_txns = stats.RegisterHistogram("queue.epoch_txns");
  m_.lane_ops = stats.RegisterHistogram("queue.lane_ops");
  m_.txn_latency = stats.RegisterHistogram("queue.txn_latency");
}

void QueuePlanner::OnRequest(const net::Message& msg) {
  if (!IsPrimary()) {
    Reply(msg, Status::Unavailable("backup queue planner"));
    return;
  }
  if (msg.tag != kTmfQueueSubmit) {
    Reply(msg, Status::InvalidArgument("unknown queue lane tag"));
    return;
  }
  auto txn = QueueTxn::Decode(Slice(msg.payload));
  if (!txn.ok()) {
    Reply(msg, txn.status());
    return;
  }
  stats().Incr(m_.submits);

  // Admission: the whole plan is validated before any effect, so a rejected
  // transaction never begins at the TMP and needs no backout.
  Status v = ValidateTxn(*txn);
  if (!v.ok()) {
    if (v.IsPlanViolation()) stats().Incr(m_.plan_violations);
    Reply(msg, v);
    return;
  }

  const uint64_t seq = next_seq_++;
  ActiveTxn& at = txns_[seq];
  at.msg = msg;
  at.txn = std::move(*txn);
  at.submitted_at = sim()->Now();
  at.results.resize(at.txn.ops.size());
  at.outstanding = at.txn.ops.size();
  open_epoch_.push_back(seq);

  if (!epoch_timer_armed_) {
    epoch_timer_armed_ = true;
    SetTimer(config_.epoch_window, [this]() { SealEpoch(); });
  }
}

Status QueuePlanner::ValidateTxn(const QueueTxn& txn) const {
  if (txn.ops.empty()) {
    return Status::InvalidArgument("queue txn has no operations");
  }
  for (const QueueOp& op : txn.ops) {
    bool declared = false;
    for (const std::string& f : txn.declared) {
      if (f == op.file) {
        declared = true;
        break;
      }
    }
    if (!declared) {
      return Status::PlanViolation("file outside declared set: " + op.file);
    }
    const storage::FileDefinition* def = config_.catalog->Find(op.file);
    if (def == nullptr) return Status::NotFound("unknown file: " + op.file);
    const storage::PartitionEntry& part = def->partitions.Locate(Slice(op.key));
    if (part.node != node()->id()) {
      // The queue lane is per-node (QueCC is a single-server design): data
      // on other nodes takes the lock lane.
      return Status::NotSupported("queue lane requires node-local data: " +
                                  op.file);
    }
  }
  return Status::Ok();
}

void QueuePlanner::SealEpoch() {
  epoch_timer_armed_ = false;
  if (open_epoch_.empty()) return;
  const uint64_t epoch = ++epoch_seq_;
  auto seqs = std::make_shared<std::vector<uint64_t>>(std::move(open_epoch_));
  open_epoch_.clear();
  stats().Incr(m_.epochs);
  stats().Record(m_.epoch_txns, static_cast<int64_t>(seqs->size()));

  // BEGIN every transaction of the epoch at the local TMP. Ops enter the
  // lanes only after all begins answered, in plan (admission) order, so lane
  // order never depends on reply interleaving.
  auto pending = std::make_shared<size_t>(seqs->size());
  for (uint64_t seq : *seqs) {
    os::CallOptions opt;
    opt.timeout = config_.tmp_timeout;
    opt.retries = 2;
    Call(net::Address(node()->id(), config_.tmp_process), kTmfBegin, {},
         [this, seq, epoch, pending, seqs](const Status& s,
                                           const net::Message& reply) {
           auto it = txns_.find(seq);
           if (it != txns_.end()) {
             if (s.ok()) {
               auto t = DecodeTransidPayload(Slice(reply.payload));
               if (t.ok()) it->second.transid = *t;
             }
             if (it->second.transid.valid()) {
               it->second.epoch = epoch;
             } else {
               // BEGIN failed: nothing executed, nothing to undo.
               ActiveTxn dead = std::move(it->second);
               txns_.erase(it);
               stats().Incr(m_.aborts);
               Reply(dead.msg,
                     s.ok() ? Status::Unavailable("begin failed") : s);
             }
           }
           if (--*pending == 0) EnqueueEpoch(epoch, *seqs);
         },
         opt);
  }
}

void QueuePlanner::EnqueueEpoch(uint64_t epoch,
                                const std::vector<uint64_t>& seqs) {
  (void)epoch;
  std::set<uint64_t> touched;
  for (uint64_t seq : seqs) {
    auto it = txns_.find(seq);
    if (it == txns_.end()) continue;  // begin failed, already answered
    ActiveTxn& txn = it->second;
    for (uint32_t i = 0; i < txn.txn.ops.size(); ++i) {
      const QueueOp& op = txn.txn.ops[i];
      const uint64_t lane = LaneFor(op.file, op.key);
      lanes_[lane].queue.push_back(LaneOp{seq, i});
      touched.insert(lane);
    }
  }
  for (uint64_t lane : touched) PumpLane(lane);
}

uint64_t QueuePlanner::LaneFor(const std::string& file, const Bytes& key) {
  // Interned in first-use order — plan order, hence deterministic.
  auto [it, inserted] =
      file_ids_.try_emplace(file, static_cast<uint32_t>(file_ids_.size()));
  const uint32_t buckets = config_.lanes_per_file == 0 ? 1 : config_.lanes_per_file;
  return (static_cast<uint64_t>(it->second) << 32) | (KeyHash(key) % buckets);
}

void QueuePlanner::PumpLane(uint64_t lane_id) {
  Lane& lane = lanes_[lane_id];
  if (lane.in_flight || lane.queue.empty()) return;

  // Take the lane's front run of ops that route to one DISCPROCESS (a lane
  // of a partitioned file can span volumes; order within the lane still
  // holds because only one batch is ever in flight).
  discprocess::PlannedBatch batch;
  batch.lane = static_cast<uint32_t>(lane_id ^ (lane_id >> 32));
  std::string dest_volume;
  std::vector<LaneOp> taken;
  while (!lane.queue.empty() && taken.size() < config_.max_batch_ops) {
    const LaneOp lo = lane.queue.front();
    auto it = txns_.find(lo.txn);
    if (it == txns_.end()) {
      lane.queue.pop_front();
      continue;
    }
    ActiveTxn& txn = it->second;
    const QueueOp& op = txn.txn.ops[lo.op];
    const storage::FileDefinition* def = config_.catalog->Find(op.file);
    const storage::PartitionEntry& part = def->partitions.Locate(Slice(op.key));
    if (dest_volume.empty()) {
      dest_volume = part.volume_process;
    } else if (part.volume_process != dest_volume) {
      break;
    }
    batch.epoch = txn.epoch;
    discprocess::PlannedOp pop;
    pop.kind = op.kind;
    pop.transid = txn.transid;
    pop.file = op.file;
    pop.key = op.key;
    pop.record = op.record;
    pop.field = op.field;
    pop.delta = op.delta;
    batch.ops.push_back(std::move(pop));
    taken.push_back(lo);
    lane.queue.pop_front();
  }
  if (batch.ops.empty()) return;

  lane.in_flight = true;
  stats().Incr(m_.lane_batches);
  stats().Record(m_.lane_ops, static_cast<int64_t>(batch.ops.size()));
  os::CallOptions opt;
  opt.timeout = config_.disc_timeout;
  opt.retries = config_.disc_retries;
  auto ops = std::make_shared<std::vector<LaneOp>>(std::move(taken));
  Call(net::Address(node()->id(), dest_volume), discprocess::kDiscPlannedOps,
       batch.Encode(),
       [this, lane_id, ops](const Status& s, const net::Message& reply) {
         OnBatchReply(lane_id, *ops, s, reply);
       },
       opt);
}

void QueuePlanner::OnBatchReply(uint64_t lane_id,
                                const std::vector<LaneOp>& ops,
                                const Status& status,
                                const net::Message& reply) {
  lanes_[lane_id].in_flight = false;

  discprocess::PlannedBatchReply rep;
  bool have_results = false;
  if (status.ok()) {
    auto decoded = discprocess::PlannedBatchReply::Decode(Slice(reply.payload));
    if (decoded.ok() && decoded->results.size() == ops.size()) {
      rep = std::move(*decoded);
      have_results = true;
    }
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    auto it = txns_.find(ops[i].txn);
    if (it == txns_.end()) continue;
    ActiveTxn& txn = it->second;
    discprocess::PlannedBatchReply::OpResult r;
    if (have_results) {
      r = std::move(rep.results[i]);
    } else {
      // The whole batch failed (disc unreachable / malformed reply): every
      // op of it fails with the call status and the owners abort.
      r.status = status.ok() ? Status::Code::kIoError : status.code();
    }
    if (r.status != Status::Code::kOk && !txn.failed) {
      txn.failed = true;
      txn.fail_code = r.status;
    }
    txn.results[ops[i].op] = std::move(r);
    if (--txn.outstanding == 0) FinishTxn(ops[i].txn);
  }
  PumpLane(lane_id);
}

void QueuePlanner::FinishTxn(uint64_t seq) {
  auto it = txns_.find(seq);
  if (it == txns_.end()) return;
  ActiveTxn& txn = it->second;

  // A clean plan commits through the ordinary TMF path (phase-1 audit
  // force, MAT, phase-2 release); a failed op aborts through the ordinary
  // BACKOUTPROCESS undo of the audited images. Either way the reply to the
  // client is sent only once the outcome is settled.
  const uint32_t verb = txn.failed ? kTmfAbort : kTmfEnd;
  const bool failed = txn.failed;
  os::CallOptions opt;
  opt.timeout = config_.tmp_timeout;
  opt.retries = 0;  // an END retry could not distinguish commit from abort
  Call(net::Address(node()->id(), config_.tmp_process), verb,
       EncodeTransidPayload(txn.transid),
       [this, seq, failed](const Status& s, const net::Message&) {
         auto it = txns_.find(seq);
         if (it == txns_.end()) return;
         ActiveTxn done = std::move(it->second);
         txns_.erase(it);
         QueueTxnReply rep;
         rep.transid = done.transid.Pack();
         rep.results = std::move(done.results);
         Status final;
         if (failed) {
           final = Status::Aborted(
               std::string("queue txn aborted: ") +
               StatusCodeName(done.fail_code));
           stats().Incr(m_.aborts);
         } else if (s.ok()) {
           final = Status::Ok();
           stats().Incr(m_.commits);
         } else {
           // END did not confirm (timeout or TMP-side abort): pass the
           // status through — Aborted means backed out; anything else
           // leaves the outcome to a kTmfStatus query.
           final = s;
           stats().Incr(m_.aborts);
         }
         stats().Record(m_.txn_latency, sim()->Now() - done.submitted_at);
         Reply(done.msg, final, rep.Encode());
       },
       opt);
}

void QueuePlanner::OnTakeover() {
  // Planner state is volatile by design: the backup starts with empty
  // epochs and lanes. In-flight submits time out at their clients and the
  // TMP's auto-abort reclaims their transactions; nothing to replay here.
}

}  // namespace encompass::tmf
