// Status: the error-handling currency of the library. No exceptions are
// thrown by library code; every fallible operation returns a Status or a
// Result<T> (see result.h).

#ifndef ENCOMPASS_COMMON_STATUS_H_
#define ENCOMPASS_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace encompass {

/// Outcome of a fallible operation.
///
/// Modeled on the RocksDB/LevelDB Status idiom: a small value type carrying a
/// code plus an optional human-readable message. The default-constructed
/// Status is OK. Statuses are cheap to copy and compare.
class Status {
 public:
  /// Error taxonomy. Codes are stable and serializable (messages are not).
  enum class Code : uint8_t {
    kOk = 0,
    kNotFound = 1,         ///< record / file / process does not exist
    kAlreadyExists = 2,    ///< duplicate key or name
    kInvalidArgument = 3,  ///< malformed request
    kTimeout = 4,          ///< lock wait or message reply timed out
    kAborted = 5,          ///< transaction was (or must be) aborted
    kBusy = 6,             ///< resource held; retry may succeed
    kIoError = 7,          ///< disc or device failure
    kCorruption = 8,       ///< checksum mismatch or invalid on-disc structure
    kNotSupported = 9,     ///< operation not implemented for this file type
    kUnavailable = 10,     ///< process, cpu, or node is down / unreachable
    kPartitioned = 11,     ///< network partition prevents communication
    kLockConflict = 12,    ///< lock denied without wait (bounce mode)
    kRestartRequested = 13,///< server asked the terminal to restart the txn
    kInDoubt = 14,         ///< distributed txn outcome unknown at this node
    kEndOfFile = 15,       ///< cursor or scan exhausted
    kFull = 16,            ///< out of space (file, trail, or volume)
    kPlanViolation = 17,   ///< queue-lane txn touched data outside its declared set
  };

  Status() = default;

  /// Builds a Status with the given code and optional message.
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "") { return {Code::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m = "") {
    return {Code::kAlreadyExists, std::move(m)};
  }
  static Status InvalidArgument(std::string m = "") {
    return {Code::kInvalidArgument, std::move(m)};
  }
  static Status Timeout(std::string m = "") { return {Code::kTimeout, std::move(m)}; }
  static Status Aborted(std::string m = "") { return {Code::kAborted, std::move(m)}; }
  static Status Busy(std::string m = "") { return {Code::kBusy, std::move(m)}; }
  static Status IoError(std::string m = "") { return {Code::kIoError, std::move(m)}; }
  static Status Corruption(std::string m = "") {
    return {Code::kCorruption, std::move(m)};
  }
  static Status NotSupported(std::string m = "") {
    return {Code::kNotSupported, std::move(m)};
  }
  static Status Unavailable(std::string m = "") {
    return {Code::kUnavailable, std::move(m)};
  }
  static Status Partitioned(std::string m = "") {
    return {Code::kPartitioned, std::move(m)};
  }
  static Status LockConflict(std::string m = "") {
    return {Code::kLockConflict, std::move(m)};
  }
  static Status RestartRequested(std::string m = "") {
    return {Code::kRestartRequested, std::move(m)};
  }
  static Status InDoubt(std::string m = "") { return {Code::kInDoubt, std::move(m)}; }
  static Status EndOfFile(std::string m = "") { return {Code::kEndOfFile, std::move(m)}; }
  static Status Full(std::string m = "") { return {Code::kFull, std::move(m)}; }
  static Status PlanViolation(std::string m = "") {
    return {Code::kPlanViolation, std::move(m)};
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsTimeout() const { return code_ == Code::kTimeout; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsPartitioned() const { return code_ == Code::kPartitioned; }
  bool IsLockConflict() const { return code_ == Code::kLockConflict; }
  bool IsRestartRequested() const { return code_ == Code::kRestartRequested; }
  bool IsInDoubt() const { return code_ == Code::kInDoubt; }
  bool IsEndOfFile() const { return code_ == Code::kEndOfFile; }
  bool IsFull() const { return code_ == Code::kFull; }
  bool IsPlanViolation() const { return code_ == Code::kPlanViolation; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Code code_ = Code::kOk;
  std::string msg_;
};

/// Returns the canonical name of a status code ("NotFound", "Timeout", ...).
const char* StatusCodeName(Status::Code code);

}  // namespace encompass

/// Early-returns the enclosing function with the error if `expr` is not OK.
#define ENCOMPASS_RETURN_IF_ERROR(expr)                    \
  do {                                                     \
    ::encompass::Status _st = (expr);                      \
    if (!_st.ok()) return _st;                             \
  } while (0)

#endif  // ENCOMPASS_COMMON_STATUS_H_
