// CommitAcceptor: the acceptor half of Paxos Commit (Gray & Lamport,
// "Consensus on Transaction Commit"), specialised to this codebase's
// decision-replication form. Each distributed transaction is one consensus
// instance whose value is the home TMP's commit/abort decision. The home
// proposes at ballot (0, home) — its prepare phase rode the kTmfPhase1
// fan-out for free — and the commit point becomes "a majority of acceptors
// durably accepted kCommitted" instead of the home's MAT force. Recovery
// proposers (in-doubt participants, ROLLFORWARD, a respawned home) run full
// prepare+accept rounds at ballots (attempt >= 1, proposer), adopting the
// value of the highest accepted ballot a majority reveals and defaulting to
// abort when none was accepted, so any live majority can settle an in-doubt
// transaction without waiting for the home to return.

#ifndef ENCOMPASS_TMF_COMMIT_ACCEPTOR_H_
#define ENCOMPASS_TMF_COMMIT_ACCEPTOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "os/process_pair.h"
#include "tmf/tmf_protocol.h"

namespace encompass::tmf {

/// Durable acceptor state of one consensus instance (one transaction).
struct CommitAcceptorEntry {
  uint32_t promised = 0;         ///< highest ballot promised
  uint32_t accepted_ballot = 0;  ///< ballot of the accepted value (0 = none)
  bool has_value = false;
  Disposition value = Disposition::kUnknown;
};

/// The acceptor's forced log. It lives in NodeStorage next to the MAT, so it
/// survives process takeover and total node crashes; every granting mutation
/// is charged a force latency before the reply leaves the acceptor.
struct CommitAcceptorLog {
  std::map<uint64_t, CommitAcceptorEntry> entries;

  CommitAcceptorEntry& At(const Transid& t) { return entries[t.Pack()]; }
};

struct CommitAcceptorConfig {
  CommitAcceptorLog* log = nullptr;
  /// Latency of the forced log write preceding every granting reply (the
  /// durability the commit point leans on). Rejections touch no state and
  /// reply immediately.
  SimDuration force_latency = Millis(8);
};

/// The $ACCEPT process pair, registered on the 2F+1 acceptor nodes of a
/// paxos deployment.
class CommitAcceptor : public os::PairedProcess {
 public:
  explicit CommitAcceptor(CommitAcceptorConfig config) : config_(config) {}

  std::string DebugName() const override { return pair_name() + "/acceptor"; }

 protected:
  void OnPairAttach() override;
  void OnRequest(const net::Message& msg) override;

 private:
  void HandlePrepare(const net::Message& msg);
  void HandleAccept(const net::Message& msg);
  void ReplyForced(const net::Message& msg, Bytes payload);

  CommitAcceptorConfig config_;
  sim::MetricId m_prepares_, m_accepts_, m_rejections_;
};

/// Where a proposer finds the acceptor set.
struct PaxosRoundConfig {
  std::vector<net::NodeId> acceptor_nodes;
  std::string acceptor_process = "$ACCEPT";
  SimDuration call_timeout = Seconds(2);
};

/// Runs one Paxos round for transaction `t` at ballot
/// MakePaxosBallot(attempt, proc->node()->id()): an optional prepare phase
/// (skipped only for the home's attempt-0 proposal, whose promise rode
/// phase 1), then the accept phase over every acceptor. `done` fires exactly
/// once: kCommitted / kAborted when that value reached a majority of
/// acceptors at this ballot (the chosen value — possibly adopted from an
/// earlier proposer), kUnknown when the round failed (majority unreachable
/// or outpaced by a higher ballot) and the caller should escalate `attempt`.
void RunPaxosRound(os::Process* proc, const PaxosRoundConfig& cfg,
                   const Transid& t, uint32_t attempt, Disposition proposed,
                   bool skip_prepare, std::function<void(Disposition)> done);

}  // namespace encompass::tmf

#endif  // ENCOMPASS_TMF_COMMIT_ACCEPTOR_H_
