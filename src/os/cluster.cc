#include "os/cluster.h"

#include <cassert>

namespace encompass::os {

Cluster::Cluster(sim::Simulation* sim, net::NetworkConfig net_config)
    : sim_(sim), network_(sim, net_config) {
  network_.SetReachabilityListener(
      [this](net::NodeId observer, net::NodeId peer, bool up) {
        Node* node = GetNode(observer);
        if (node != nullptr) node->PeerReachability(peer, up);
      });
}

Node* Cluster::AddNode(net::NodeId id, NodeConfig config) {
  assert(nodes_.find(id) == nodes_.end());
  auto node = std::make_unique<Node>(this, id, config);
  Node* raw = node.get();
  nodes_.emplace(id, std::move(node));
  // Inbound network messages also pass through the destination CPU's
  // service queue.
  network_.AddNode(id, [raw](net::Message msg) {
    raw->ScheduleDelivery(std::move(msg), 0);
  });
  return raw;
}

Node* Cluster::GetNode(net::NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

std::vector<net::NodeId> Cluster::NodeIds() const {
  std::vector<net::NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) {
    (void)node;
    ids.push_back(id);
  }
  return ids;
}

void Cluster::Link(net::NodeId a, net::NodeId b, SimDuration latency) {
  network_.AddLink(a, b, latency);
}

void Cluster::CrashNode(net::NodeId id) {
  Node* node = GetNode(id);
  if (node == nullptr) return;
  for (int cpu = 0; cpu < node->config().num_cpus; ++cpu) {
    node->FailCpu(cpu);
  }
  // A dead node cannot talk to anyone: reflect that in the network so peers
  // observe unreachability.
  network_.IsolateNode(id);
}

void Cluster::ReloadNode(net::NodeId id) {
  Node* node = GetNode(id);
  if (node == nullptr) return;
  for (int cpu = 0; cpu < node->config().num_cpus; ++cpu) {
    if (!node->CpuUp(cpu)) node->ReloadCpu(cpu);
  }
  node->SetBusUp(0, true);
  node->SetBusUp(1, true);
  network_.ReconnectNode(id);
}

}  // namespace encompass::os
