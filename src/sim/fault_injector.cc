#include "sim/fault_injector.h"

#include "common/logging.h"

namespace encompass::sim {

void FaultInjector::InjectAt(SimTime when, std::string description,
                             std::function<void()> action) {
  ++scheduled_;
  sim_->At(when, [this, description = std::move(description),
                  action = std::move(action)]() {
    LOG_INFO << "fault @" << sim_->Now() << "us: " << description;
    journal_.push_back(FaultEvent{sim_->Now(), description});
    action();
  });
}

void FaultInjector::InjectAfter(SimDuration delay, std::string description,
                                std::function<void()> action) {
  InjectAt(sim_->Now() + delay, std::move(description), std::move(action));
}

}  // namespace encompass::sim
