#include "os/process_pair.h"

#include "common/logging.h"

namespace encompass::os {

void PairedProcess::ConfigurePair(const std::string& name, Role role) {
  pair_name_ = name;
  role_ = role;
}

void PairedProcess::SetPeer(net::ProcessId peer) { peer_ = peer; }

void PairedProcess::OnAttach() {
  m_checkpoints_sent_ = stats().RegisterCounter("os.checkpoints_sent");
  m_checkpoints_received_ = stats().RegisterCounter("os.checkpoints_received");
  m_takeovers_ = stats().RegisterCounter("os.takeovers");
  m_backup_lost_ = stats().RegisterCounter("os.backup_lost");
  OnPairAttach();
}

void PairedProcess::OnStart() {
  if (IsPrimary() && !pair_name_.empty()) {
    node()->RegisterName(pair_name_, id().pid);
  }
  OnPairStart();
}

void PairedProcess::OnMessage(const net::Message& msg) {
  if (msg.tag == net::kTagCheckpoint) {
    stats().Incr(m_checkpoints_received_);
    OnCheckpoint(Slice(msg.payload));
    return;
  }
  OnRequest(msg);
}

void PairedProcess::SendCheckpoint(Bytes delta) {
  if (!peer_.valid()) return;
  stats().Incr(m_checkpoints_sent_);
  Send(net::Address(peer_), net::kTagCheckpoint, std::move(delta));
}

void PairedProcess::OnCpuDown(int cpu) {
  if (peer_.valid() && node()->Find(peer_.pid) == nullptr) {
    // Our peer died with that CPU.
    peer_ = net::ProcessId{};
    if (role_ == Role::kBackup) {
      role_ = Role::kPrimary;
      if (!pair_name_.empty()) node()->RegisterName(pair_name_, id().pid);
      stats().Incr(m_takeovers_);
      LOG_INFO << DebugName() << " takeover at " << sim()->Now() << "us";
      OnTakeover();
    } else {
      stats().Incr(m_backup_lost_);
      OnBackupLost();
    }
  }
  OnPairCpuDown(cpu);
}

void PairedProcess::NotifyBackupAttached() {
  // Defer past the backup's OnStart so the full-state checkpoint is not
  // processed before the backup has initialized.
  SetTimer(Micros(2), [this]() { OnBackupAttached(); });
}

}  // namespace encompass::os
