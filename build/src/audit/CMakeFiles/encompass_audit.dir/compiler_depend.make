# Empty compiler generated dependencies file for encompass_audit.
# This may be replaced when dependencies are built.
