#include "common/status.h"

namespace encompass {

const char* StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk: return "OK";
    case Status::Code::kNotFound: return "NotFound";
    case Status::Code::kAlreadyExists: return "AlreadyExists";
    case Status::Code::kInvalidArgument: return "InvalidArgument";
    case Status::Code::kTimeout: return "Timeout";
    case Status::Code::kAborted: return "Aborted";
    case Status::Code::kBusy: return "Busy";
    case Status::Code::kIoError: return "IoError";
    case Status::Code::kCorruption: return "Corruption";
    case Status::Code::kNotSupported: return "NotSupported";
    case Status::Code::kUnavailable: return "Unavailable";
    case Status::Code::kPartitioned: return "Partitioned";
    case Status::Code::kLockConflict: return "LockConflict";
    case Status::Code::kRestartRequested: return "RestartRequested";
    case Status::Code::kInDoubt: return "InDoubt";
    case Status::Code::kEndOfFile: return "EndOfFile";
    case Status::Code::kFull: return "Full";
    case Status::Code::kPlanViolation: return "PlanViolation";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace encompass
