#include "tmf/rollforward.h"

#include <map>
#include <set>

#include "common/logging.h"

namespace encompass::tmf {

namespace {

/// Applies one committed after-image idempotently.
Status RedoApply(storage::Volume* volume, const audit::AuditRecord& rec) {
  switch (rec.op) {
    case storage::MutationOp::kInsert: {
      auto r = volume->Mutate(rec.file, storage::MutationOp::kInsert,
                              Slice(rec.key), Slice(rec.after));
      if (r.status.IsAlreadyExists()) {
        r = volume->Mutate(rec.file, storage::MutationOp::kUpdate, Slice(rec.key),
                           Slice(rec.after));
      }
      return r.status;
    }
    case storage::MutationOp::kUpdate: {
      auto r = volume->Mutate(rec.file, storage::MutationOp::kUpdate,
                              Slice(rec.key), Slice(rec.after));
      if (r.status.IsNotFound()) {
        r = volume->Mutate(rec.file, storage::MutationOp::kInsert, Slice(rec.key),
                           Slice(rec.after));
      }
      return r.status;
    }
    case storage::MutationOp::kDelete: {
      auto r = volume->Mutate(rec.file, storage::MutationOp::kDelete,
                              Slice(rec.key), Slice());
      if (r.status.IsNotFound()) return Status::Ok();  // already gone
      return r.status;
    }
  }
  return Status::InvalidArgument("bad audit op");
}

}  // namespace

Result<RollforwardReport> Rollforward(const RollforwardInput& input) {
  if (input.volume == nullptr || input.archive == nullptr ||
      input.trail == nullptr) {
    return Status::InvalidArgument("rollforward needs volume, archive, trail");
  }
  RollforwardReport report;

  ENCOMPASS_RETURN_IF_ERROR(
      input.volume->RestoreFromArchive(Slice(*input.archive)));

  auto records = input.trail->DurableRecordsAfter(input.archive_lsn);
  report.redo_considered = records.size();

  // Resolve each transaction's disposition once.
  std::map<Transid, Disposition> dispositions;
  for (const auto& rec : records) {
    if (dispositions.count(rec.transid)) continue;
    Disposition d = Disposition::kUnknown;
    if (input.monitor_trail != nullptr) {
      int r = input.monitor_trail->Lookup(rec.transid);
      if (r == 1) d = Disposition::kCommitted;
      else if (r == 0) d = Disposition::kAborted;
    }
    if (d == Disposition::kUnknown && input.resolve_remote) {
      // The transaction was in "ending" (or never resolved locally) at
      // failure time: negotiate with other nodes.
      d = input.resolve_remote(rec.transid);
      ++report.negotiated;
    }
    dispositions[rec.transid] = d;
  }

  std::set<Transid> committed, discarded;
  for (const auto& rec : records) {
    if (dispositions[rec.transid] == Disposition::kCommitted) {
      ENCOMPASS_RETURN_IF_ERROR(RedoApply(input.volume, rec));
      ++report.redo_applied;
      committed.insert(rec.transid);
    } else {
      // Aborted, or unknown even after negotiation: presumed abort — the
      // updates never reappear.
      discarded.insert(rec.transid);
    }
  }
  report.txns_committed = committed.size();
  report.txns_discarded = discarded.size();

  input.volume->Flush();
  return report;
}

}  // namespace encompass::tmf
