// Slice: a non-owning view of a byte range, plus helpers for byte buffers.

#ifndef ENCOMPASS_COMMON_SLICE_H_
#define ENCOMPASS_COMMON_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

namespace encompass {

/// Owning byte buffer used for record payloads, messages, and audit images.
using Bytes = std::vector<uint8_t>;

/// Converts a std::string to Bytes (copy).
inline Bytes ToBytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

/// Converts Bytes to a std::string (copy).
inline std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

/// A pointer + length view over bytes owned elsewhere. The viewed storage
/// must outlive the Slice. Mirrors the LevelDB/RocksDB Slice contract.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const char* data, size_t size)
      : data_(reinterpret_cast<const uint8_t*>(data)), size_(size) {}
  Slice(const std::string& s)  // NOLINT(runtime/explicit)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}
  Slice(const Bytes& b)  // NOLINT(runtime/explicit)
      : data_(b.data()), size_(b.size()) {}
  Slice(const char* cstr)  // NOLINT(runtime/explicit)
      : data_(reinterpret_cast<const uint8_t*>(cstr)), size_(strlen(cstr)) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  /// Drops the first n bytes from the view.
  void RemovePrefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }
  Bytes ToBytes() const { return Bytes(data_, data_ + size_); }

  /// Three-way byte comparison, shorter-is-smaller on common prefix.
  int Compare(const Slice& other) const {
    const size_t n = size_ < other.size_ ? size_ : other.size_;
    int r = (n == 0) ? 0 : memcmp(data_, other.data_, n);
    if (r == 0) {
      if (size_ < other.size_) r = -1;
      else if (size_ > other.size_) r = 1;
    }
    return r;
  }

  bool StartsWith(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) { return a.Compare(b) == 0; }
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) { return a.Compare(b) < 0; }

/// Length of the byte prefix shared by a and b.
inline size_t SharedPrefixLength(const Slice& a, const Slice& b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace encompass

#endif  // ENCOMPASS_COMMON_SLICE_H_
