file(REMOVE_RECURSE
  "libencompass_app.a"
)
