# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/audit_test[1]_include.cmake")
include("/root/repo/build/tests/lock_manager_test[1]_include.cmake")
include("/root/repo/build/tests/disc_process_test[1]_include.cmake")
include("/root/repo/build/tests/tmf_test[1]_include.cmake")
include("/root/repo/build/tests/encompass_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/manufacturing_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
include("/root/repo/build/tests/deployment_test[1]_include.cmake")
include("/root/repo/build/tests/volume_property_test[1]_include.cmake")
include("/root/repo/build/tests/tmf_edge_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_verbs_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
