#include "sim/simulation.h"

#include <algorithm>
#include <cassert>

namespace encompass::sim {

namespace {

// Seed derivation for per-node PRNG streams: golden-ratio mixing keeps the
// streams of adjacent node ids far apart. The formula is load-bearing: it is
// baked into the golden trace files.
uint64_t NodeSeed(uint64_t seed, uint16_t node) {
  return seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(node) + 1));
}

SimTime SatAdd(SimTime a, SimTime b) {
  return (a >= kNoDeadline - b) ? kNoDeadline : a + b;
}

}  // namespace

Simulation::Simulation(uint64_t seed, int parallel_workers)
    : mode_(parallel_workers <= 0  ? Mode::kLegacy
            : parallel_workers == 1 ? Mode::kSingleLoop
                                    : Mode::kParallel),
      seed_(seed),
      parallel_workers_(parallel_workers),
      rng_(seed) {
  loops_.push_back(std::make_unique<NodeLoop>(0, 0, NodeSeed(seed, 0)));
  loop_index_.emplace(0, 0);
  tree_.Resize(1);
  dirty_.resize(1, 0);
}

Simulation::~Simulation() {
  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      stop_ = true;
    }
    pool_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }
}

NodeLoop* Simulation::EnsureLoop(uint16_t node) {
  auto it = loop_index_.find(node);
  if (it != loop_index_.end()) return loops_[it->second].get();
  // Loop creation mutates shared tables; it happens during topology setup
  // and serial phases, never inside a parallel round.
  assert(!in_round_);
  const auto shard = static_cast<uint32_t>(loops_.size());
  loops_.push_back(std::make_unique<NodeLoop>(node, shard, NodeSeed(seed_, node)));
  loop_index_.emplace(node, shard);
  loops_.back()->now = now_;
  tree_.Resize(loops_.size());  // the new leaf starts at +inf: queue is empty
  dirty_.resize(loops_.size(), 0);
  stats_.EnsureShards(loops_.size());
  trace_.EnsureShards(loops_.size());
  trace_.EnsureNodeSpans(node);
  return loops_.back().get();
}

void Simulation::GrowDist(size_t n) {
  if (n <= dist_n_) return;
  std::vector<SimTime> nd(n * n, kNoDeadline);
  for (size_t i = 0; i < n; ++i) nd[i * n + i] = 0;
  for (size_t i = 0; i < dist_n_; ++i) {
    for (size_t j = 0; j < dist_n_; ++j) {
      nd[i * n + j] = dist_[i * dist_n_ + j];
    }
  }
  dist_ = std::move(nd);
  dist_n_ = n;
}

void Simulation::NoteLinkLatency(uint16_t a, uint16_t b, SimDuration latency) {
  if (latency <= 0 || a == b) return;
  const uint32_t sa = EnsureLoop(a)->shard;
  const uint32_t sb = EnsureLoop(b)->shard;
  GrowDist(loops_.size());
  per_link_ = true;
  // Relax the least-path table with the new edge. Any path improved by the
  // edge uses it exactly once (latencies are positive), so one pass over all
  // pairs is complete. The table is a static infimum over declared links:
  // link-down flaps and longer actual routes only increase real latencies,
  // never drop below it.
  for (size_t i = 0; i < dist_n_; ++i) {
    for (size_t j = 0; j < dist_n_; ++j) {
      if (i == j) continue;
      const SimTime via1 =
          SatAdd(SatAdd(DistAt(i, sa), latency), DistAt(sb, j));
      const SimTime via2 =
          SatAdd(SatAdd(DistAt(i, sb), latency), DistAt(sa, j));
      const SimTime best = via1 < via2 ? via1 : via2;
      if (best < Dist(i, j)) Dist(i, j) = best;
    }
  }
  // Rebuild the per-shard echo floor: the least round trip from i out to any
  // peer and back. A loop's round horizon must not exceed its next event by
  // more than this — see the self-echo bound in RunUntilParallel.
  echo_.assign(dist_n_, kNoDeadline);
  for (size_t i = 0; i < dist_n_; ++i) {
    for (size_t j = 0; j < dist_n_; ++j) {
      if (i == j) continue;
      const SimTime rt = SatAdd(DistAt(i, j), DistAt(j, i));
      if (rt < echo_[i]) echo_[i] = rt;
    }
  }
}

SimDuration Simulation::LookaheadBetween(uint16_t src, uint16_t dst) const {
  const auto is = loop_index_.find(src);
  const auto id = loop_index_.find(dst);
  if (is == loop_index_.end() || id == loop_index_.end()) {
    return uniform_lookahead_;
  }
  return LookaheadShard(is->second, id->second);
}

SimDuration Simulation::lookahead() const {
  SimTime m = uniform_lookahead_;
  for (size_t i = 0; i < dist_n_; ++i) {
    for (size_t j = 0; j < dist_n_; ++j) {
      if (i != j && dist_[i * dist_n_ + j] < m) m = dist_[i * dist_n_ + j];
    }
  }
  return m;
}

uint16_t Simulation::CtxNode() const {
  const internal::ExecContext* ec = internal::Exec();
  return (ec != nullptr && ec->sim == this) ? ec->node : 0;
}

EventId Simulation::ScheduleOn(uint16_t node, SimTime when, EventFn fn) {
  NodeLoop* loop =
      mode_ == Mode::kLegacy ? loops_[0].get() : EnsureLoop(node);
  // During a parallel round only the loop's own worker may touch its queue;
  // cross-node work must go through PostToNode. The dirty flag is skipped in
  // that case: the coordinator refreshes every ready loop after the round.
  assert(!in_round_ || (internal::Exec() != nullptr &&
                        internal::Exec()->shard == loop->shard));
  const EventId seq = loop->queue.Schedule(when, node, std::move(fn));
  if (!in_round_) MarkDirty(loop->shard);
  return (static_cast<EventId>(loop->shard) << kSeqBits) | seq;
}

EventId Simulation::After(SimDuration delay, EventFn fn) {
  if (delay < 0) delay = 0;
  return ScheduleOn(CtxNode(), Now() + delay, std::move(fn));
}

EventId Simulation::At(SimTime when, EventFn fn) {
  const SimTime now = Now();
  return ScheduleOn(CtxNode(), when < now ? now : when, std::move(fn));
}

EventId Simulation::AfterOn(uint16_t node, SimDuration delay, EventFn fn) {
  if (delay < 0) delay = 0;
  return ScheduleOn(node, Now() + delay, std::move(fn));
}

EventId Simulation::AtOn(uint16_t node, SimTime when, EventFn fn) {
  const SimTime now = Now();
  return ScheduleOn(node, when < now ? now : when, std::move(fn));
}

void Simulation::PostToNode(uint16_t dst, SimDuration delay, EventFn fn) {
  if (delay < 0) delay = 0;
  const SimTime when = Now() + delay;
  if (mode_ == Mode::kLegacy) {
    loops_[0]->queue.Schedule(when, dst, std::move(fn));
    return;
  }
  const internal::ExecContext* ec = internal::Exec();
  NodeLoop* src = (ec != nullptr && ec->sim == this) ? loops_[ec->shard].get()
                                                     : loops_[0].get();
  NodeLoop* dl = EnsureLoop(dst);
  // The key carries the sender's stamp: deliveries fire in send order, the
  // same order the legacy engine's global sequence produces.
  const EventKey key{when, src->node, src->queue.IssueSeq()};
  if (dl == src || !in_round_) {
    dl->queue.ScheduleKeyed(key, dst, std::move(fn));
    if (!in_round_) MarkDirty(dl->shard);
    return;
  }
  // The receiver may be running on another thread: buffer the post in the
  // sender's outbox lane for dst (single writer — this worker). It cannot be
  // due within the receiver's current horizon — the horizon is at most
  // (receiver's view of src's round-start time + src→dst lookahead), the
  // post is at least that lookahead after the sender's current (>= round
  // start) event — so draining lanes between rounds loses nothing.
  assert(delay >= LookaheadShard(src->shard, dl->shard));
  if (src->outbox.size() < loops_.size()) src->outbox.resize(loops_.size());
  auto& lane = src->outbox[dl->shard];
  if (lane.empty()) src->outbox_dsts.push_back(dl->shard);
  lane.push_back(NodeLoop::Post{key, dst, std::move(fn)});
}

void Simulation::Cancel(EventId id) {
  const auto shard = static_cast<uint32_t>(id >> kSeqBits);
  if (shard >= loops_.size()) return;
  NodeLoop* loop = loops_[shard].get();
  assert(!in_round_ || (internal::Exec() != nullptr &&
                        internal::Exec()->shard == loop->shard));
  loop->queue.Cancel(id & ((EventId{1} << kSeqBits) - 1));
  // A cancelled head can move the loop's next-event time *later*; a stale
  // too-small leaf would leave the round loop unable to find ready work.
  if (!in_round_) MarkDirty(shard);
}

void Simulation::ExecOne(NodeLoop* loop) {
  EventKey key;
  uint16_t exec_node = 0;
  EventFn fn = loop->queue.PopNext(&key, &exec_node);
  loop->now = key.time;
  internal::ExecContext ctx;
  ctx.sim = this;
  ctx.stats = &stats_;
  ctx.trace = &trace_;
  ctx.shard = loop->shard;
  ctx.node = exec_node;
  ctx.key = key;
  internal::ExecContext* prev = internal::Exec();
  internal::SetExec(&ctx);
  fn();
  internal::SetExec(prev);
  ++loop->executed;
}

void Simulation::DrainOutboxes() {
  // Coordinator-only, between rounds; the round barrier (pool_mu_) ordered
  // every worker's lane writes before this read. Insertion order across
  // lanes is irrelevant: heaps pop by the total-order key.
  for (auto& l : loops_) {
    if (l->outbox_dsts.empty()) continue;
    for (uint32_t d : l->outbox_dsts) {
      std::vector<NodeLoop::Post>& lane = l->outbox[d];
      NodeLoop* dl = loops_[d].get();
      for (NodeLoop::Post& p : lane) {
        dl->queue.ScheduleKeyed(p.key, p.exec_node, std::move(p.fn));
      }
      metric_posts_ += lane.size();
      lane.clear();
      MarkDirty(d);
    }
    l->outbox_dsts.clear();
  }
}

bool Simulation::Step() {
  if (mode_ == Mode::kParallel) DrainOutboxes();
  RefreshDirty();
  const EventKey* k0 = loops_[0]->queue.NextKey();
  const uint32_t w = tree_.MinIndex();
  NodeLoop* best;
  // Keys are globally unique, so the k0-vs-tree comparison picks the same
  // event the old full scan did.
  if (k0 != nullptr && (w == MinTree::kNone || *k0 < tree_.KeyAt(w))) {
    best = loops_[0].get();
  } else if (w != MinTree::kNone) {
    best = loops_[w].get();
  } else {
    return false;
  }
  ExecOne(best);
  MarkDirty(best->shard);
  if (best->now > now_) now_ = best->now;
  return true;
}

size_t Simulation::Run(size_t max_events) {
  if (mode_ == Mode::kParallel && max_events == SIZE_MAX) {
    const uint64_t before = ExecutedEvents();
    RunUntilParallel(kNoDeadline - 1);
    return static_cast<size_t>(ExecutedEvents() - before);
  }
  size_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

void Simulation::RunUntilSerial(SimTime deadline) {
  for (;;) {
    RefreshDirty();
    const EventKey* k0 = loops_[0]->queue.NextKey();
    const uint32_t w = tree_.MinIndex();
    NodeLoop* best;
    if (k0 != nullptr && (w == MinTree::kNone || *k0 < tree_.KeyAt(w))) {
      if (k0->time > deadline) return;
      best = loops_[0].get();
    } else if (w != MinTree::kNone) {
      if (tree_.KeyAt(w).time > deadline) return;
      best = loops_[w].get();
    } else {
      return;
    }
    ExecOne(best);
    MarkDirty(best->shard);
    if (best->now > now_) now_ = best->now;
  }
}

void Simulation::RunUntil(SimTime deadline) {
  if (mode_ == Mode::kParallel) {
    RunUntilParallel(deadline);
  } else {
    RunUntilSerial(deadline);
  }
  if (now_ < deadline) now_ = deadline;
  for (auto& l : loops_) {
    if (l->now < deadline) l->now = deadline;
  }
}

void Simulation::RunUntilParallel(SimTime deadline) {
  StartWorkers();
  std::vector<uint32_t> active;  // scratch: shards with pending work
  for (;;) {
    DrainOutboxes();
    RefreshDirty();

    // Serial phase: global-loop events sort before any node's events at the
    // same time, so run them while none of the node loops has earlier work.
    for (;;) {
      const EventKey* k0 = loops_[0]->queue.NextKey();
      if (k0 == nullptr || k0->time > deadline) break;
      if (k0->time > tree_.MinTime()) break;
      ExecOne(loops_[0].get());
      if (loops_[0]->now > now_) now_ = loops_[0]->now;
      RefreshDirty();  // the event may have scheduled onto node loops
    }

    // Round setup: loop i may run strictly below
    //   min(cap, min over other active loops j of E_j + L(j->i),
    //       E_i + echo(i))
    // where cap stops at the next global-loop event or the deadline. The
    // loop holding the globally minimal next event is always ready (all
    // lookaheads are positive and cap exceeds the minimum — the serial
    // phase ran loop 0 past it), so every iteration makes progress.
    //
    // The E_j + L(j->i) terms bound what peers do SPONTANEOUSLY (their own
    // pending events). They do not bound REACTIVE sends: a peer whose next
    // own event is a far-off timer still answers a request that i itself
    // sends mid-round, and that reply lands only one round trip after the
    // send — potentially far below a horizon derived from the peer's idle
    // queue. The E_i + echo(i) term closes that hole: every message chain
    // leaving i returns no sooner than the least round trip out of i
    // (lookaheads form a metric, so multi-hop chains can't beat it), and
    // chains started by another active loop k are already covered by k's
    // E_k + L(k->i) term.
    const SimTime t0 = loops_[0]->queue.NextTime();
    const SimTime cap = std::min(SatAdd(deadline, 1), t0);
    const SimTime min1 = tree_.MinTime();
    if (min1 > deadline) break;  // no node work left within the deadline

    ready_.clear();
    if (!per_link_) {
      // Uniform lookahead: min over others of E_j + L collapses to
      // (second-)smallest E + L, straight off the tree.
      const SimTime min2 = tree_.SecondMinTime();
      // Uniform echo floor: out to any peer and back is two lookaheads.
      const SimTime uecho = SatAdd(uniform_lookahead_, uniform_lookahead_);
      for (size_t i = 1; i < loops_.size(); ++i) {
        const SimTime e = tree_.KeyAt(i).time;
        if (e == kNoDeadline) continue;
        const SimTime others = (e == min1) ? min2 : min1;
        const SimTime h = std::min(
            {cap, SatAdd(others, uniform_lookahead_), SatAdd(e, uecho)});
        if (e < h) {
          loops_[i]->horizon = h;
          ready_.push_back(loops_[i].get());
          if (h != kNoDeadline) horizon_width_.Add(h - e);
        }
      }
    } else {
      active.clear();
      for (size_t i = 1; i < loops_.size(); ++i) {
        if (tree_.KeyAt(i).time != kNoDeadline) {
          active.push_back(static_cast<uint32_t>(i));
        }
      }
      for (uint32_t i : active) {
        const SimTime e = tree_.KeyAt(i).time;
        SimTime h = cap;
        for (uint32_t j : active) {
          if (j == i) continue;
          const SimTime b =
              SatAdd(tree_.KeyAt(j).time, LookaheadShard(j, i));
          if (b < h) h = b;
        }
        const SimTime se = SatAdd(e, i < echo_.size() ? echo_[i] : kNoDeadline);
        if (se < h) h = se;
        if (e < h) {
          loops_[i]->horizon = h;
          ready_.push_back(loops_[i].get());
          if (h != kNoDeadline) horizon_width_.Add(h - e);
        }
      }
    }
    assert(!ready_.empty());
    ++metric_rounds_;
    metric_ready_loops_ += ready_.size();

    if (ready_.size() == 1 || threads_.empty()) {
      // Nothing to overlap: run on this thread without the round barrier.
      // Direct queue access elsewhere stays safe — workers are quiescent.
      for (NodeLoop* l : ready_) RunLoopTo(l, l->horizon);
    } else {
      uint64_t round;
      {
        std::lock_guard<std::mutex> lk(pool_mu_);
        round = ++round_seq_;
        round_next_ = 0;
        round_pending_ = ready_.size();
        in_round_ = true;
      }
      pool_cv_.notify_all();
      ClaimLoop(round);
      {
        std::unique_lock<std::mutex> lk(pool_mu_);
        done_cv_.wait(lk, [this] { return round_pending_ == 0; });
        // Workers only touch ready_ while in_round_ is set (checked under
        // the same mutex), so clearing it here fences the vector for the
        // next round's rebuild even against stragglers.
        in_round_ = false;
      }
    }
    for (NodeLoop* l : ready_) {
      if (l->now > now_) now_ = l->now;
      MarkDirty(l->shard);  // in-round schedules/cancels skipped the flag
    }
  }
}

void Simulation::RunLoopTo(NodeLoop* loop, SimTime horizon) {
  for (;;) {
    const EventKey* k = loop->queue.NextKey();
    if (k == nullptr || k->time >= horizon) break;
    ExecOne(loop);
  }
}

void Simulation::StartWorkers() {
  if (!threads_.empty() || parallel_workers_ < 2) return;
  const int n = parallel_workers_ - 1;  // the coordinator participates
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

void Simulation::WorkerMain() {
  uint64_t last_seen = 0;
  for (;;) {
    uint64_t round;
    {
      std::unique_lock<std::mutex> lk(pool_mu_);
      pool_cv_.wait(lk, [&] { return stop_ || round_seq_ != last_seen; });
      if (stop_) return;
      round = round_seq_;
      last_seen = round;
    }
    ClaimLoop(round);
  }
}

void Simulation::ClaimLoop(uint64_t round) {
  for (;;) {
    NodeLoop* l = nullptr;
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      // The round check precedes any access to ready_: a thread that
      // lagged into a later round must not touch the vector the
      // coordinator rebuilds between rounds (it only does so with
      // in_round_ clear, under this mutex).
      if (!in_round_ || round_seq_ != round) return;
      if (round_next_ >= ready_.size()) return;
      l = ready_[round_next_++];
    }
    RunLoopTo(l, l->horizon);
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (--round_pending_ == 0) done_cv_.notify_all();
  }
}

void Simulation::PublishEngineMetrics() {
  stats_.Incr(stats_.RegisterCounter("sim.rounds"),
              static_cast<int64_t>(metric_rounds_ - published_rounds_));
  stats_.Incr(stats_.RegisterCounter("sim.ready_loops"),
              static_cast<int64_t>(metric_ready_loops_ - published_ready_loops_));
  stats_.Incr(stats_.RegisterCounter("sim.inbox_posts"),
              static_cast<int64_t>(metric_posts_ - published_posts_));
  published_rounds_ = metric_rounds_;
  published_ready_loops_ = metric_ready_loops_;
  published_posts_ = metric_posts_;
  if (!horizon_published_ && horizon_width_.count() > 0) {
    stats_.Merge(stats_.RegisterHistogram("sim.horizon_width"), horizon_width_);
    horizon_published_ = true;
  }
}

bool Simulation::Idle() const {
  for (const auto& l : loops_) {
    if (!l->queue.empty()) return false;
  }
  return true;  // outbox lanes are empty whenever no round is executing
}

size_t Simulation::PendingEvents() const {
  size_t n = 0;
  for (const auto& l : loops_) n += l->queue.size();
  return n;
}

uint64_t Simulation::ExecutedEvents() const {
  uint64_t n = 0;
  for (const auto& l : loops_) n += l->executed;
  return n;
}

}  // namespace encompass::sim
