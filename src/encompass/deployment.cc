#include "encompass/deployment.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "tmf/commit_acceptor.h"
#include "tmf/recovery.h"

namespace encompass::app {

void NodeStorage::DropVolatile() {
  for (auto& [name, volume] : volumes) {
    (void)name;
    volume->DropVolatile();
  }
  for (auto& [name, trail] : trails) {
    (void)name;
    trail->DropVolatile();
  }
}

NodeDeployment::NodeDeployment(Deployment* deployment, os::Node* node,
                               NodeSpec spec)
    : deployment_(deployment), node_(node), spec_(std::move(spec)) {
  sim::Stats& stats = node_->sim()->GetStats();
  m_pair_respawns_ = stats.RegisterCounter("deploy.pair_respawns");
  m_backup_reattached_ = stats.RegisterCounter("deploy.backup_reattached");
  for (const auto& vspec : spec_.volumes) {
    auto volume = std::make_unique<storage::Volume>(vspec.name,
                                                    vspec.volume_config);
    volume->BindStats(&node_->sim()->GetStats());
    for (const auto& fspec : vspec.files) {
      storage::FileOptions opt;
      opt.audited = fspec.audited;
      opt.schema = fspec.schema;
      Status s = volume->CreateFile(fspec.name, fspec.organization, opt);
      assert(s.ok());
      (void)s;
    }
    storage_.volumes[vspec.name] = std::move(volume);
    storage_.trails[TrailName(vspec.name)] =
        std::make_unique<audit::AuditTrail>(TrailName(vspec.name));
  }
}

void NodeDeployment::StartServices() {
  const int cpus = spec_.node_config.num_cpus;
  assert(cpus >= 2 && "a NonStop node needs at least two processors");
  repairables_.clear();
  guardians_.clear();
  int next_cpu = 0;
  auto two_cpus = [&](int* a, int* b) {
    *a = next_cpu % cpus;
    *b = (next_cpu + 1) % cpus;
    ++next_cpu;
  };

  // One AUDITPROCESS + one DISCPROCESS pair per volume.
  std::vector<std::string> disc_names, audit_names;
  for (const auto& vspec : spec_.volumes) {
    const std::string audit_name = "$AUD." + vspec.name;
    audit::AuditProcessConfig acfg = spec_.audit_config;
    acfg.trail = storage_.trails.at(TrailName(vspec.name)).get();
    int a, b;
    two_cpus(&a, &b);
    os::SpawnPair<audit::AuditProcess>(node_, audit_name, a, b, acfg);
    RegisterRepairablePair<audit::AuditProcess>(audit_name, acfg);
    audit_names.push_back(audit_name);

    discprocess::DiscProcessConfig dcfg = spec_.disc_config;
    dcfg.volume = storage_.volumes.at(vspec.name).get();
    dcfg.audit_process = audit_name;
    two_cpus(&a, &b);
    os::SpawnPair<discprocess::DiscProcess>(node_, vspec.name, a, b, dcfg);
    RegisterRepairablePair<discprocess::DiscProcess>(vspec.name, dcfg);
    disc_names.push_back(vspec.name);
  }

  // BACKOUTPROCESS.
  tmf::BackoutConfig bcfg;
  bcfg.audit_processes = audit_names;
  int a, b;
  two_cpus(&a, &b);
  os::SpawnPair<tmf::BackoutProcess>(node_, "$BACKOUT", a, b, bcfg);
  RegisterRepairablePair<tmf::BackoutProcess>("$BACKOUT", bcfg);

  // TMP.
  tmf::TmpConfig tcfg = spec_.tmp_config;
  tcfg.disc_processes = disc_names;
  tcfg.audit_processes = audit_names;
  tcfg.backout_process = "$BACKOUT";
  tcfg.monitor_trail = &storage_.monitor_trail;
  // Each service (re)start is a new TMP incarnation: move the transid
  // sequence floor past everything any earlier incarnation could have
  // issued (seq is 40 bits; 32 bits of headroom per incarnation).
  tcfg.seq_base = storage_.tmp_incarnation++ << 32;
  // Fast path: hand the TMP direct pointers to the $ACCEPT.<k> logs living
  // on this node (created here, spawned with the acceptor pairs below —
  // std::map node pointers are stable). The logs are durable NodeStorage,
  // so they survive pair takeover and node recovery alike; each respawn
  // re-derives the same pointers.
  if (tcfg.commit_protocol == tmf::CommitProtocol::kPaxos &&
      tcfg.paxos_fast_path) {
    for (size_t k = 0; k < tcfg.acceptor_endpoints.size(); ++k) {
      const auto& [accept_node, accept_name] = tcfg.acceptor_endpoints[k];
      if (accept_node != node_->id()) continue;
      tcfg.colocated_acceptors.push_back(
          {k, &storage_.acceptor_logs[accept_name]});
    }
  }
  two_cpus(&a, &b);
  os::SpawnPair<tmf::TmpProcess>(node_, "$TMP", a, b, tcfg);
  RegisterRepairablePair<tmf::TmpProcess>("$TMP", tcfg);

  // Paxos Commit acceptor, on the nodes the deployment designates. Plain
  // 2PC (the default) spawns nothing here, keeping its process layout and
  // traces byte-identical to pre-paxos builds.
  if (tcfg.commit_protocol == tmf::CommitProtocol::kPaxos &&
      tcfg.paxos_fast_path && !tcfg.acceptor_endpoints.empty()) {
    // Fast path: $ACCEPT.<k> pairs placed by explicit endpoint list — a
    // node may host several, so commit_replication can exceed the node
    // count. Each pair keeps its own durable log and knows its tally index.
    for (size_t k = 0; k < tcfg.acceptor_endpoints.size(); ++k) {
      const auto& [accept_node, accept_name] = tcfg.acceptor_endpoints[k];
      if (accept_node != node_->id()) continue;
      tmf::CommitAcceptorConfig ccfg;
      ccfg.log = &storage_.acceptor_logs[accept_name];
      ccfg.force_latency = tcfg.mat_force_latency;
      ccfg.index = static_cast<uint8_t>(k);
      ccfg.sweep_interval = tcfg.acceptor_sweep_interval;
      two_cpus(&a, &b);
      os::SpawnPair<tmf::CommitAcceptor>(node_, accept_name, a, b, ccfg);
      RegisterRepairablePair<tmf::CommitAcceptor>(accept_name, ccfg);
    }
  } else if (tcfg.commit_protocol == tmf::CommitProtocol::kPaxos &&
             std::find(tcfg.acceptor_nodes.begin(), tcfg.acceptor_nodes.end(),
                       node_->id()) != tcfg.acceptor_nodes.end()) {
    tmf::CommitAcceptorConfig ccfg;
    ccfg.log = &storage_.acceptor_log;
    ccfg.force_latency = tcfg.mat_force_latency;
    two_cpus(&a, &b);
    os::SpawnPair<tmf::CommitAcceptor>(node_, tcfg.acceptor_process, a, b, ccfg);
    RegisterRepairablePair<tmf::CommitAcceptor>(tcfg.acceptor_process, ccfg);
  }

  // Queue execution lane: the planner pair rides the same spawn/repair
  // lifecycle as the other services, so node recovery brings it back.
  if (spec_.exec_lane == ExecLane::kQueue) {
    tmf::QueuePlannerConfig qcfg = spec_.queue_config;
    qcfg.catalog = &deployment_->catalog();
    qcfg.tmp_process = "$TMP";
    two_cpus(&a, &b);
    os::SpawnPair<tmf::QueuePlanner>(node_, "$QPLAN", a, b, qcfg);
    RegisterRepairablePair<tmf::QueuePlanner>("$QPLAN", qcfg);
  }

  EnsureGuardians();
}

void NodeDeployment::ArchiveVolumes() {
  for (const auto& vspec : spec_.volumes) {
    storage::Volume* volume = storage_.volumes.at(vspec.name).get();
    audit::AuditTrail* trail = storage_.trails.at(TrailName(vspec.name)).get();
    volume->Flush();
    trail->Force();
    VolumeArchive archive;
    archive.image = volume->Archive();
    archive.archive_lsn = trail->next_lsn() - 1;
    storage_.archives[vspec.name] = std::move(archive);
  }
}

void NodeDeployment::RegisterRepairable(const std::string& name,
                                        std::function<void(int cpu)> attach_backup,
                                        std::function<void(int, int)> respawn) {
  repairables_.push_back(
      Repairable{name, std::move(attach_backup), std::move(respawn)});
}

void NodeDeployment::EnsureGuardians() {
  // Exactly one guardian per alive CPU: any single-CPU failure leaves at
  // least one to drive the repair.
  for (auto it = guardians_.begin(); it != guardians_.end();) {
    if (node_->Find(*it) == nullptr) it = guardians_.erase(it);
    else ++it;
  }
  for (int cpu = 0; cpu < spec_.node_config.num_cpus; ++cpu) {
    if (!node_->CpuUp(cpu)) continue;
    bool covered = false;
    for (net::Pid pid : guardians_) {
      os::Process* p = node_->Find(pid);
      if (p != nullptr && p->cpu() == cpu) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      auto* g = node_->Spawn<ServiceGuardian>(cpu, this);
      if (g != nullptr) guardians_.push_back(g->id().pid);
    }
  }
}

void NodeDeployment::RepairServices() {
  auto pick_cpu = [this](int avoid) {
    for (int cpu = 0; cpu < spec_.node_config.num_cpus; ++cpu) {
      if (cpu != avoid && node_->CpuUp(cpu)) return cpu;
    }
    return -1;
  };
  for (const auto& service : repairables_) {
    net::Pid pid = node_->LookupName(service.name);
    if (pid == 0 || node_->Find(pid) == nullptr) {
      // Both members died (a multiple-module failure): respawn the pair
      // with fresh state. Transactions with state on the old pair resolve
      // through timeouts, backout, and — for data — ROLLFORWARD.
      int a = pick_cpu(-1);
      int b = pick_cpu(a);
      if (a >= 0 && b >= 0) {
        node_->sim()->GetStats().Incr(m_pair_respawns_);
        service.respawn(a, b);
      }
      continue;
    }
    auto* p = dynamic_cast<os::PairedProcess*>(node_->Find(pid));
    if (p != nullptr && p->IsPrimary() && !p->HasBackup()) {
      int cpu = pick_cpu(p->cpu());
      if (cpu >= 0) {
        node_->sim()->GetStats().Incr(m_backup_reattached_);
        service.attach_backup(cpu);
      }
    }
  }
  EnsureGuardians();
}

void ServiceGuardian::OnCpuDown(int) { ScheduleRepair(); }
void ServiceGuardian::OnCpuUp(int) { ScheduleRepair(); }

void ServiceGuardian::ScheduleRepair() {
  // Delay past the regroup/takeover window, then let exactly one guardian
  // (the lowest surviving pid) act.
  SetTimer(Millis(50), [this]() {
    for (net::Pid pid : nd_->guardians_) {
      os::Process* p = nd_->node_->Find(pid);
      if (p != nullptr) {
        if (pid == id().pid) nd_->RepairServices();
        return;
      }
    }
  });
}

tmf::TmpProcess* NodeDeployment::tmp() const {
  net::Pid pid = node_->LookupName("$TMP");
  return pid == 0 ? nullptr : static_cast<tmf::TmpProcess*>(node_->Find(pid));
}

discprocess::DiscProcess* NodeDeployment::disc(const std::string& volume) const {
  net::Pid pid = node_->LookupName(volume);
  return pid == 0 ? nullptr
                  : static_cast<discprocess::DiscProcess*>(node_->Find(pid));
}

Deployment::Deployment(sim::Simulation* sim, net::NetworkConfig net_config)
    : sim_(sim),
      m_node_crashes_(sim->GetStats().RegisterCounter("deploy.node_crashes")),
      m_node_restarts_(sim->GetStats().RegisterCounter("deploy.node_restarts")),
      cluster_(sim, net_config) {}

NodeDeployment* Deployment::AddNode(NodeSpec spec) {
  os::Node* node = cluster_.AddNode(spec.id, spec.node_config);
  auto nd = std::make_unique<NodeDeployment>(this, node, std::move(spec));
  NodeDeployment* raw = nd.get();
  nodes_[node->id()] = std::move(nd);
  raw->StartServices();
  return raw;
}

NodeDeployment* Deployment::GetNode(net::NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

void Deployment::LinkAll(SimDuration latency) {
  std::vector<net::NodeId> ids;
  for (const auto& [id, nd] : nodes_) {
    (void)nd;
    ids.push_back(id);
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      cluster_.Link(ids[i], ids[j], latency);
    }
  }
}

Status Deployment::DefineFile(const std::string& fname, net::NodeId node,
                              const std::string& volume) {
  NodeDeployment* nd = GetNode(node);
  if (nd == nullptr) return Status::NotFound("no such node");
  storage::Volume* vol = nd->storage().volumes.count(volume)
                             ? nd->storage().volumes.at(volume).get()
                             : nullptr;
  if (vol == nullptr || vol->Find(fname) == nullptr) {
    return Status::NotFound("file not deployed on " + volume);
  }
  storage::FileDefinition def;
  def.name = fname;
  def.organization = vol->Find(fname)->organization();
  def.audited = vol->Find(fname)->audited();
  def.schema = vol->Find(fname)->schema();
  def.partitions = storage::PartitionMap(node, volume);
  return catalog_.DefineFile(std::move(def));
}

Status Deployment::DefinePartitionedFile(const storage::FileDefinition& def) {
  return catalog_.DefineFile(def);
}

void Deployment::CrashNode(net::NodeId id) {
  NodeDeployment* nd = GetNode(id);
  if (nd == nullptr) return;
  cluster_.CrashNode(id);
  // Main memory (caches, unforced audit buffers) is gone.
  nd->storage().DropVolatile();
  sim_->GetStats().Incr(m_node_crashes_);
}

void Deployment::RestartNode(net::NodeId id) {
  NodeDeployment* nd = GetNode(id);
  if (nd == nullptr) return;
  cluster_.ReloadNode(id);
  nd->StartServices();
  sim_->GetStats().Incr(m_node_restarts_);
}

void Deployment::RecoverNode(
    net::NodeId id,
    std::function<void(const std::vector<tmf::RollforwardReport>&)> done) {
  NodeDeployment* nd = GetNode(id);
  if (nd == nullptr) return;
  cluster_.ReloadNode(id);
  sim_->GetStats().Incr(m_node_restarts_);

  tmf::NodeRecoveryConfig rcfg;
  for (const auto& vspec : nd->spec().volumes) {
    auto it = nd->storage().archives.find(vspec.name);
    if (it == nd->storage().archives.end()) continue;  // never archived
    tmf::VolumeRecoveryTask task;
    task.volume = nd->storage().volumes.at(vspec.name).get();
    task.trail = nd->storage().trails.at(NodeDeployment::TrailName(vspec.name)).get();
    task.archive = &it->second.image;
    task.archive_lsn = it->second.archive_lsn;
    rcfg.tasks.push_back(task);
  }
  rcfg.monitor_trail = &nd->storage().monitor_trail;
  // Deterministic, seed-derived retry jitter: bit-identical replays per
  // campaign seed, de-synchronised across recovering nodes.
  rcfg.jitter_seed = sim_->seed() ^ (static_cast<uint64_t>(id) << 32) ^ 1;
  const tmf::TmpConfig& tcfg = nd->spec().tmp_config;
  if (tcfg.commit_protocol == tmf::CommitProtocol::kPaxos) {
    rcfg.acceptor_nodes = tcfg.acceptor_nodes;
    rcfg.acceptor_process = tcfg.acceptor_process;
    rcfg.paxos_fast_path = tcfg.paxos_fast_path;
    rcfg.acceptor_endpoints = tcfg.acceptor_endpoints;
  }
  os::Node* node = nd->node();
  rcfg.on_done = [nd, node, done = std::move(done)](
                     const std::vector<tmf::RollforwardReport>& reports) {
    // Services start only now: no DISCPROCESS ever serves pre-ROLLFORWARD
    // data, and the respawned TMP answers in-doubt queries from the MAT the
    // recovery just completed.
    nd->StartServices();
    if (done) done(reports);
    // The recovery process's job is over; release its slot. Deferred: we
    // are running inside its own callback.
    net::Pid self = node->LookupName("$RECOVER");
    if (self != 0) {
      node->sim()->After(0, [node, self]() { node->Kill(self); });
    }
  };
  auto* recover = node->Spawn<tmf::NodeRecoveryProcess>(0, rcfg);
  if (recover != nullptr) node->RegisterName("$RECOVER", recover->id().pid);
}

}  // namespace encompass::app
