// End-to-end tests for per-transaction causal tracing: a three-node cluster
// runs one distributed commit and one unilateral abort, and the TraceLog must
// contain the exact protocol-level event sequence — deterministically, so the
// same seed yields a byte-identical Dump().

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "encompass/deployment.h"
#include "test_util.h"
#include "tmf/file_system.h"
#include "tmf/tmf_protocol.h"

namespace encompass {
namespace {

using app::Deployment;
using app::NodeDeployment;
using testutil::TestClient;

struct Rig {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<Deployment> deploy;
  TestClient* client = nullptr;
  std::unique_ptr<tmf::FileSystem> fs;
};

// Three nodes, one audited file per node; the client lives on node 1.
// `group_commit_window` > 0 opens the MAT/audit batching window (0 keeps the
// default immediate-write behaviour).
Rig MakeRig(uint64_t seed, SimDuration group_commit_window = 0) {
  Rig rig;
  rig.sim = std::make_unique<sim::Simulation>(seed);
  rig.deploy = std::make_unique<Deployment>(rig.sim.get());
  for (int n = 1; n <= 3; ++n) {
    app::NodeSpec spec;
    spec.id = static_cast<net::NodeId>(n);
    spec.node_config.num_cpus = 4;
    spec.volumes = {app::VolumeSpec{"$DATA" + std::to_string(n),
                                    {app::FileSpec{"f" + std::to_string(n)}},
                                    {}}};
    spec.tmp_config.mat_group_commit_window = group_commit_window;
    spec.audit_config.group_commit_window = group_commit_window;
    rig.deploy->AddNode(spec);
  }
  rig.deploy->LinkAll();
  for (int n = 1; n <= 3; ++n) {
    rig.deploy->DefineFile("f" + std::to_string(n), static_cast<net::NodeId>(n),
                           "$DATA" + std::to_string(n));
  }
  rig.client = rig.deploy->GetNode(1)->node()->Spawn<TestClient>(2);
  rig.fs = std::make_unique<tmf::FileSystem>(rig.client, &rig.deploy->catalog());
  rig.sim->Run();
  return rig;
}

uint64_t Begin(Rig& rig) {
  auto* o = rig.client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfBegin, {});
  rig.sim->Run();
  EXPECT_TRUE(o->status.ok());
  auto t = tmf::DecodeTransidPayload(Slice(o->payload));
  EXPECT_TRUE(t.ok());
  return t->Pack();
}

Status Insert(Rig& rig, uint64_t transid, const std::string& file,
              const std::string& key, const std::string& value) {
  Status result = Status::Unavailable("no reply");
  rig.client->set_current_transid(transid);
  rig.fs->Insert(file, Slice(key), Slice(value),
                 [&result](const Status& s, const Bytes&) { result = s; });
  rig.client->set_current_transid(0);
  rig.sim->Run();
  return result;
}

Status End(Rig& rig, uint64_t transid) {
  auto* o = rig.client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                                tmf::EncodeTransidPayload(Transid::Unpack(transid)),
                                transid);
  rig.sim->Run();
  return o->status;
}

// Protocol-level view of a transaction's trace: every event except the
// per-message send/deliver chatter and lock traffic, rendered as
// "kind@node(a,b)". This is the sequence the commit protocol promises.
std::vector<std::string> ProtocolSequence(const Rig& rig, uint64_t transid) {
  std::vector<std::string> out;
  for (const auto& e : rig.sim->GetTrace().Events(transid)) {
    switch (e.kind) {
      case sim::TraceEventKind::kMsgSend:
      case sim::TraceEventKind::kMsgDeliver:
      case sim::TraceEventKind::kLockAcquire:
      case sim::TraceEventKind::kLockRelease:
      case sim::TraceEventKind::kAuditForce:
        continue;
      default:
        break;
    }
    out.push_back(std::string(sim::TraceEventKindName(e.kind)) + "@" +
                  std::to_string(e.node) + "(" + std::to_string(e.a) + "," +
                  std::to_string(e.b) + ")");
  }
  return out;
}

TEST(TraceTest, DistributedCommitCausalSequence) {
  Rig rig = MakeRig(101);
  uint64_t t = Begin(rig);
  ASSERT_TRUE(Insert(rig, t, "f1", "k", "v1").ok());
  ASSERT_TRUE(Insert(rig, t, "f2", "k", "v2").ok());
  ASSERT_TRUE(Insert(rig, t, "f3", "k", "v3").ok());
  ASSERT_TRUE(End(rig, t).ok());

  // Figure 3 forward path, in causal order: the txn becomes known on the
  // remote participants (active), phase one runs (ending, audit forces on
  // all three nodes, remote votes), the commit record is written, and phase
  // two (ended) reaches each participant exactly once.
  const std::string phase2 = std::to_string(tmf::kTmfPhase2);
  std::vector<std::string> expected = {
      "txn.state@1(0,1)",      // home active -> ending
      "phase1.start@1(1,2)",   // phase 1: 1 local force, 2 children
      "txn.state@2(0,1)",      // child 2 active -> ending
      "phase1.start@2(1,0)",   // child 2 forces its audit
      "txn.state@3(0,1)",      // child 3 active -> ending
      "phase1.start@3(1,0)",   // child 3 forces its audit
      "phase1.done@2(1,0)",    // child 2 votes yes
      "phase1.done@3(1,0)",    // child 3 votes yes
      "phase1.done@1(1,0)",    // home: all votes in
      "commit.record@1(0,0)",  // commit point: record forced to the MAT
      "txn.state@1(1,2)",      // home ending -> ended
      "phase2.queued@1(" + phase2 + ",2)",  // phase 2 queued to node 2
      "phase2.queued@1(" + phase2 + ",3)",  // phase 2 queued to node 3
      "phase2.recv@2(0,0)",    // node 2 applies phase 2
      "txn.state@2(1,2)",      // node 2 ending -> ended
      "phase2.recv@3(0,0)",    // node 3 applies phase 2
      "txn.state@3(1,2)",      // node 3 ending -> ended
  };
  std::vector<std::string> actual = ProtocolSequence(rig, t);
  EXPECT_EQ(actual, expected);

  // Causality: every send's parent span is a distinct span that appeared
  // earlier in the trace. (Span ids are per-node — node tag in the high
  // bits, node-local counter below — so numeric order only holds within one
  // node, not along a cross-node causal chain.)
  std::set<uint32_t> seen;
  for (const auto& e : rig.sim->GetTrace().Events(t)) {
    if (e.kind == sim::TraceEventKind::kMsgSend && e.parent != 0) {
      EXPECT_NE(e.parent, e.span);
      EXPECT_TRUE(seen.count(e.parent))
          << "parent span " << e.parent << " never seen before span " << e.span;
    }
    seen.insert(e.span);
    EXPECT_EQ(e.transid, t);
  }
}

TEST(TraceTest, UnilateralAbortCausalSequence) {
  Rig rig = MakeRig(101);
  uint64_t t = Begin(rig);
  ASSERT_TRUE(Insert(rig, t, "f1", "k", "v1").ok());
  ASSERT_TRUE(Insert(rig, t, "f2", "k", "v2").ok());
  // A single cut link would heal by routing through node 3, so fully
  // isolate the participant: both islands must abort autonomously.
  rig.deploy->cluster().IsolateNode(2);
  rig.sim->RunFor(Seconds(2));
  rig.deploy->cluster().ReconnectNode(2);
  rig.sim->Run();

  // Both sides abort autonomously; each island runs its own backout, so the
  // trace shows an abort.start/abort.done pair on node 1 AND on node 2.
  EXPECT_GE(rig.sim->GetStats().Counter("tmf.unilateral_aborts"), 1);
  std::vector<std::string> actual = ProtocolSequence(rig, t);
  const std::string abort_tag = std::to_string(tmf::kTmfAbortTxn);
  std::vector<std::string> expected = {
      "abort.start@1(0,0)",  // home decides: participant unreachable
      "txn.state@1(0,3)",    // home active -> aborting
      // The abort notification to the lost participant parks in the
      // safe-delivery queue (it cannot be delivered while isolated).
      "phase2.queued@1(" + abort_tag + ",2)",
      "abort.start@2(0,0)",  // node 2 decides on its own: home unreachable
      "txn.state@2(0,3)",    // node 2 active -> aborting
      "txn.state@2(3,4)",    // node 2 backout done: aborting -> aborted
      "abort.done@2(0,0)",
      "txn.state@1(3,4)",    // home backout done: aborting -> aborted
      "abort.done@1(0,0)",
  };
  EXPECT_EQ(actual, expected);
  // The write never reached the database on either side.
  EXPECT_TRUE(rig.deploy->GetNode(1)
                  ->storage()
                  .volumes.at("$DATA1")
                  ->ReadRecord("f1", Slice("k"))
                  .status.IsNotFound());
}

TEST(TraceTest, SameSeedSameTrace) {
  auto run = [](uint64_t seed) {
    Rig rig = MakeRig(seed);
    uint64_t t = Begin(rig);
    EXPECT_TRUE(Insert(rig, t, "f1", "k", "v1").ok());
    EXPECT_TRUE(Insert(rig, t, "f2", "k", "v2").ok());
    EXPECT_TRUE(End(rig, t).ok());
    return rig.sim->GetTrace().Dump(t);
  };
  std::string first = run(7);
  std::string second = run(7);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // bit-identical: spans, times, everything
  EXPECT_NE(first.find("msg.send"), std::string::npos);
  EXPECT_NE(first.find("commit.record"), std::string::npos);
  EXPECT_NE(first.find("lock.acquire"), std::string::npos);
  EXPECT_NE(first.find("audit.force"), std::string::npos);
}

TEST(TraceTest, ConcurrentCommitsCoalesceDeterministically) {
  // Two transactions commit concurrently: their commit-point MAT writes (and
  // the audit forces under them) coalesce via group commit. The whole
  // interleaving must stay deterministic — same seed, byte-identical traces —
  // and the batch accounting must be exact.
  struct RunResult {
    std::string dump1, dump2;
    int64_t mat_forces = 0;
    size_t mat_batches = 0;
    int64_t mat_batched_commits = 0;
    int64_t mat_max_batch = 0;
  };
  auto run = [](uint64_t seed) {
    // A window comfortably wider than the phase-1 completion spread (the two
    // audit forces serialize at ~8ms each) guarantees both commit points
    // land in one batch.
    Rig rig = MakeRig(seed, /*group_commit_window=*/Millis(20));
    uint64_t t1 = Begin(rig);
    uint64_t t2 = Begin(rig);
    EXPECT_TRUE(Insert(rig, t1, "f1", "ka", "v").ok());
    EXPECT_TRUE(Insert(rig, t1, "f2", "ka", "v").ok());
    EXPECT_TRUE(Insert(rig, t2, "f1", "kb", "v").ok());
    EXPECT_TRUE(Insert(rig, t2, "f2", "kb", "v").ok());
    // Issue both ENDs back to back so the commits overlap.
    auto* e1 = rig.client->CallRaw(
        net::Address(1, "$TMP"), tmf::kTmfEnd,
        tmf::EncodeTransidPayload(Transid::Unpack(t1)), t1);
    auto* e2 = rig.client->CallRaw(
        net::Address(1, "$TMP"), tmf::kTmfEnd,
        tmf::EncodeTransidPayload(Transid::Unpack(t2)), t2);
    rig.sim->Run();
    EXPECT_TRUE(e1->done && e1->status.ok());
    EXPECT_TRUE(e2->done && e2->status.ok());
    RunResult r;
    r.dump1 = rig.sim->GetTrace().Dump(t1);
    r.dump2 = rig.sim->GetTrace().Dump(t2);
    r.mat_forces = rig.sim->GetStats().Counter("tmf.mat_forces");
    const auto* sizes =
        rig.sim->GetStats().FindHistogram("tmf.mat_group_commit_size");
    if (sizes != nullptr) {
      r.mat_batches = sizes->count();
      r.mat_batched_commits = sizes->Sum();
      r.mat_max_batch = sizes->Max();
    }
    return r;
  };
  RunResult first = run(211);
  RunResult second = run(211);
  EXPECT_FALSE(first.dump1.empty());
  EXPECT_EQ(first.dump1, second.dump1);  // bit-identical across runs
  EXPECT_EQ(first.dump2, second.dump2);
  // Exact accounting: both commit records went through the MAT write path,
  // and every physical write is counted once.
  EXPECT_EQ(first.mat_batched_commits, 2);
  EXPECT_EQ(static_cast<int64_t>(first.mat_batches), first.mat_forces);
  EXPECT_EQ(first.mat_forces, 1);   // the two commit points share one write
  EXPECT_EQ(first.mat_max_batch, 2);
  EXPECT_EQ(first.dump1.find("commit.record") != std::string::npos, true);
  EXPECT_EQ(first.dump2.find("commit.record") != std::string::npos, true);
}

TEST(TraceTest, SafeDeliveryDrainsAfterReconnect) {
  Rig rig = MakeRig(131);
  uint64_t t = Begin(rig);
  ASSERT_TRUE(Insert(rig, t, "f1", "k", "v1").ok());
  ASSERT_TRUE(Insert(rig, t, "f2", "k", "v2").ok());

  // Isolate the child right after the commit record is written: phase 2
  // cannot be delivered, so it parks in the home TMP's safe-delivery queue.
  auto* o = rig.client->CallRaw(net::Address(1, "$TMP"), tmf::kTmfEnd,
                                tmf::EncodeTransidPayload(Transid::Unpack(t)), t);
  NodeDeployment* home = rig.deploy->GetNode(1);
  for (int i = 0; i < 1000 &&
                  home->storage().monitor_trail.Lookup(Transid::Unpack(t)) != 1;
       ++i) {
    rig.sim->RunFor(Micros(500));
  }
  rig.deploy->cluster().IsolateNode(2);
  rig.sim->RunFor(Seconds(1));
  EXPECT_TRUE(o->done);
  EXPECT_TRUE(o->status.ok());  // END never blocks on the partition
  EXPECT_GT(home->tmp()->PendingSafeDeliveries(), 0u);

  // The child rejoins: the queue drains and phase 2 applies exactly once.
  rig.deploy->cluster().ReconnectNode(2);
  rig.sim->RunFor(Seconds(10));
  EXPECT_EQ(home->tmp()->PendingSafeDeliveries(), 0u);
  EXPECT_EQ(rig.sim->GetStats().Counter("tmf.phase2_received"), 1);
  NodeDeployment* child = rig.deploy->GetNode(2);
  EXPECT_EQ(child->storage().monitor_trail.Lookup(Transid::Unpack(t)), 1);
  EXPECT_EQ(child->disc("$DATA2")->locks().held_count(), 0u);

  // The trace shows the queued phase 2 and exactly one receipt at node 2.
  int queued = 0, received = 0;
  for (const auto& e : rig.sim->GetTrace().Events(t)) {
    if (e.kind == sim::TraceEventKind::kPhase2Queued && e.b == 2) ++queued;
    if (e.kind == sim::TraceEventKind::kPhase2Recv && e.node == 2) ++received;
  }
  EXPECT_GE(queued, 1);
  EXPECT_EQ(received, 1);
}

}  // namespace
}  // namespace encompass
