file(REMOVE_RECURSE
  "libencompass_audit.a"
)
