// Queue-oriented execution lane (after the QueCC paradigm): a second way to
// run transactions beside the LockManager path, built for hot-row
// contention. Clients submit whole transactions with predeclared read/write
// file sets; the QueuePlanner collects them into epochs (batch window, the
// group-commit idiom), assigns a deterministic plan order, partitions the
// epoch's operations by interned file id / key range into per-lane FIFO
// queues, and drains each lane with one planned batch in flight — the
// executor half. Because a record's operations all ride one lane in plan
// order, conflicts are resolved by position, never by lock acquisition: a
// hot-row transaction cannot abort on lock conflict or deadlock timeout.
//
// A queue-lane commit is still a normal TMF commit: the planner brackets
// every transaction with kTmfBegin/kTmfEnd at the local TMP, lane batches
// are audited per-operation by the DISCPROCESS (kDiscPlannedOps), and a
// runtime failure aborts through the ordinary BACKOUTPROCESS undo path. The
// audit trail, MAT, ROLLFORWARD, and the chaos atomicity oracle see both
// lanes identically.
//
// Scope: the lane is per-node (QueCC is a single-server design) — every
// operation of a queue transaction must route to the planner's own node.
// Planner state is volatile by design, like the TMP's commit coordination:
// a takeover drops in-flight epochs, the submitting clients time out
// (outcome unknown), and the TMP's auto-abort reclaims their transactions.

#ifndef ENCOMPASS_TMF_QUEUE_LANE_H_
#define ENCOMPASS_TMF_QUEUE_LANE_H_

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "common/transid.h"
#include "discprocess/disc_protocol.h"
#include "net/message.h"
#include "os/process_pair.h"
#include "storage/partition.h"

namespace encompass::tmf {

/// Queue-lane message tags.
enum QueueLaneTag : uint32_t {
  kTmfQueueSubmit = net::kTagTmf + 14,  ///< client -> $QPLAN: whole txn
};

/// One operation of a queue transaction; kinds are shared with the
/// DISCPROCESS planned-op protocol (the planner forwards them verbatim,
/// stamped with the transaction's transid).
struct QueueOp {
  using Kind = discprocess::PlannedOp::Kind;

  Kind kind = Kind::kRead;
  std::string file;
  Bytes key;
  Bytes record;       ///< kInsert / kUpdate image
  std::string field;  ///< kDelta: integer field name
  int64_t delta = 0;  ///< kDelta: signed amount to add
};

/// Payload of kTmfQueueSubmit: a whole transaction with its predeclared
/// file set. Any operation naming a file outside `declared` is rejected
/// with Status::PlanViolation before anything executes.
struct QueueTxn {
  std::vector<std::string> declared;
  std::vector<QueueOp> ops;

  Bytes Encode() const;
  static Result<QueueTxn> Decode(const Slice& payload);
};

/// Reply payload of kTmfQueueSubmit: the TMF transid and per-op outcomes
/// (read values ride along). The message status is the verdict: Ok =
/// committed, Aborted = backed out, PlanViolation = rejected unexecuted.
struct QueueTxnReply {
  uint64_t transid = 0;
  std::vector<discprocess::PlannedBatchReply::OpResult> results;

  Bytes Encode() const;
  static Result<QueueTxnReply> Decode(const Slice& payload);
};

/// Configuration of one QueuePlanner pair.
struct QueuePlannerConfig {
  const storage::Catalog* catalog = nullptr;  ///< routing + locality checks
  std::string tmp_process = "$TMP";
  /// Epoch batch window: submits arriving within it share one plan. 0 seals
  /// on the next event (per-transaction epochs, lowest latency).
  SimDuration epoch_window = Millis(1);
  uint32_t lanes_per_file = 8;   ///< key-range buckets per interned file
  size_t max_batch_ops = 32;     ///< ops per kDiscPlannedOps message
  SimDuration disc_timeout = Seconds(2);
  int disc_retries = 3;
  SimDuration tmp_timeout = Seconds(5);
};

/// The planner/executor pair ($QPLAN).
class QueuePlanner : public os::PairedProcess {
 public:
  explicit QueuePlanner(QueuePlannerConfig config) : config_(config) {}

  std::string DebugName() const override { return pair_name() + "/qplan"; }

 protected:
  void OnPairAttach() override;
  void OnRequest(const net::Message& msg) override;
  void OnTakeover() override;

 private:
  /// One admitted transaction, keyed by its plan-order sequence number.
  struct ActiveTxn {
    net::Message msg;  ///< the submit; replied once committed or backed out
    QueueTxn txn;
    Transid transid;
    uint64_t epoch = 0;
    std::vector<discprocess::PlannedBatchReply::OpResult> results;
    size_t outstanding = 0;  ///< ops not yet acknowledged by a lane batch
    bool failed = false;
    Status::Code fail_code = Status::Code::kOk;
    SimTime submitted_at = 0;
  };

  /// A lane queue entry: (transaction plan seq, op index).
  struct LaneOp {
    uint64_t txn = 0;
    uint32_t op = 0;
  };
  struct Lane {
    std::deque<LaneOp> queue;
    bool in_flight = false;  ///< one batch in flight preserves plan order
  };

  Status ValidateTxn(const QueueTxn& txn) const;
  void SealEpoch();
  void EnqueueEpoch(uint64_t epoch, const std::vector<uint64_t>& seqs);
  uint64_t LaneFor(const std::string& file, const Bytes& key);
  void PumpLane(uint64_t lane_id);
  void OnBatchReply(uint64_t lane_id, const std::vector<LaneOp>& ops,
                    const Status& status, const net::Message& reply);
  void FinishTxn(uint64_t seq);

  struct Metrics {
    sim::MetricId submits, plan_violations, epochs, commits, aborts;
    sim::MetricId lane_batches;
    sim::MetricId epoch_txns, lane_ops, txn_latency;  // histograms
  };

  QueuePlannerConfig config_;
  Metrics m_;

  uint64_t next_seq_ = 1;   ///< plan order: assigned at admission
  uint64_t epoch_seq_ = 0;
  std::map<uint64_t, ActiveTxn> txns_;
  std::vector<uint64_t> open_epoch_;  ///< admitted, awaiting the seal timer
  bool epoch_timer_armed_ = false;

  std::map<std::string, uint32_t> file_ids_;  ///< interned in plan order
  std::map<uint64_t, Lane> lanes_;
};

}  // namespace encompass::tmf

#endif  // ENCOMPASS_TMF_QUEUE_LANE_H_
