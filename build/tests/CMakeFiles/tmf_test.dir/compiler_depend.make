# Empty compiler generated dependencies file for tmf_test.
# This may be replaced when dependencies are built.
