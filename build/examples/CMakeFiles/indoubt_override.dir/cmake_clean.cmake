file(REMOVE_RECURSE
  "CMakeFiles/indoubt_override.dir/indoubt_override.cpp.o"
  "CMakeFiles/indoubt_override.dir/indoubt_override.cpp.o.d"
  "indoubt_override"
  "indoubt_override.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indoubt_override.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
