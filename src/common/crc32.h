// CRC32 (Castagnoli polynomial, software table implementation) used to
// checksum disc blocks and audit records.

#ifndef ENCOMPASS_COMMON_CRC32_H_
#define ENCOMPASS_COMMON_CRC32_H_

#include <cstdint>

#include "common/slice.h"

namespace encompass {

/// Extends a running CRC32C with the given bytes. Start with crc = 0.
uint32_t Crc32c(uint32_t crc, const uint8_t* data, size_t n);

/// One-shot CRC32C over a slice.
inline uint32_t Crc32c(const Slice& s) { return Crc32c(0, s.data(), s.size()); }

}  // namespace encompass

#endif  // ENCOMPASS_COMMON_CRC32_H_
