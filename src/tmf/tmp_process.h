// TmpProcess: the Transaction Monitor Process — "a process-pair which is
// configured for each network node that participates in the distributed
// data base". It implements:
//   * transid generation at BEGIN-TRANSACTION,
//   * the per-node transaction state table with Figure-3 transitions,
//     broadcast (accounted per alive CPU) within the node,
//   * the abbreviated single-node two-phase commit (force audit, write the
//     commit record to the Monitor Audit Trail, release locks),
//   * the distributed commit protocol: remote-transaction-begin and phase
//     one as critical-response messages; phase two and abort as
//     safe-delivery messages retried until deliverable,
//   * unilateral abort on communication loss, in-doubt lock retention after
//     an affirmative phase-1 reply, and the manual disposition override,
//   * coordination of the BACKOUTPROCESS for transaction backout.

#ifndef ENCOMPASS_TMF_TMP_PROCESS_H_
#define ENCOMPASS_TMF_TMP_PROCESS_H_

#include <list>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "audit/audit_trail.h"
#include "os/process_pair.h"
#include "tmf/tmf_protocol.h"
#include "tmf/transaction_state.h"

namespace encompass::tmf {

/// Static configuration of one node's TMP.
struct TmpConfig {
  std::vector<std::string> disc_processes;   ///< local DISCPROCESS names
  std::vector<std::string> audit_processes;  ///< local AUDITPROCESS names
  std::string backout_process = "$BACKOUT";  ///< local BACKOUTPROCESS name
  audit::MonitorAuditTrail* monitor_trail = nullptr;  ///< durable, per node
  SimDuration mat_force_latency = Millis(8);   ///< commit-record force cost
  /// Group commit for the commit-point force: how long the first committer
  /// of a batch waits for company before the physical MAT write starts.
  /// 0 (default) starts immediately; commits arriving while a write is in
  /// flight still coalesce into the next write either way.
  SimDuration mat_group_commit_window = 0;
  SimDuration phase1_timeout = Seconds(2);     ///< critical-response deadline
  SimDuration force_timeout = Seconds(2);      ///< local audit force deadline
  SimDuration safe_retry_interval = Millis(500);  ///< safe-delivery pacing
  /// Per-attempt deadline of one safe-delivery call (the queue as a whole
  /// retries forever; this only bounds how long a single attempt waits).
  SimDuration safe_call_timeout = Seconds(2);
  SimDuration backout_timeout = Seconds(5);
  /// Per-attempt deadline and retry budget for the retried DISCPROCESS
  /// state-change notifications (phase 2 / abort lock release).
  SimDuration disc_notify_timeout = Millis(500);
  int disc_notify_retries = 6;
  /// How often a participant holding in-doubt (ending, non-home)
  /// transactions queries the home TMP for their disposition. Recovers
  /// in-doubt locks after the home TMP lost its volatile state (both pair
  /// members died and the guardian respawned it fresh): the home then
  /// answers from its durable MAT — or presumed abort. 0 (default)
  /// disables the timer.
  SimDuration indoubt_resolve_interval = 0;
  /// A transaction still in "active" state this long after BEGIN is
  /// presumed abandoned (its requester died and the abort request was
  /// lost) and is automatically aborted so its locks release. 0 (default)
  /// disables the timer; production deployments should set it.
  SimDuration auto_abort_timeout = 0;
  /// Floor for the transid sequence counter of a FRESH TMP incarnation —
  /// the paper's crash-count analogue. Takeover within a pair continues the
  /// checkpointed counter, but after a total node failure the respawned TMP
  /// has no volatile state: without a floor it would restart at 1 and REUSE
  /// packed transids of the previous incarnation, corrupting every durable
  /// structure keyed by transid (the first-completion-wins MAT, audit
  /// classification during ROLLFORWARD). Deployments derive this from a
  /// durable per-node restart count, shifted clear of any plausible
  /// single-incarnation sequence (seq is 40 bits; incarnation << 32 leaves
  /// 4G transactions per incarnation).
  uint64_t seq_base = 0;
};

/// The TMP pair.
class TmpProcess : public os::PairedProcess {
 public:
  explicit TmpProcess(TmpConfig config) : config_(std::move(config)) {}

  std::string DebugName() const override { return pair_name() + "/tmp"; }

  /// Number of transactions currently tracked (tests/benches).
  size_t ActiveTransactionCount() const { return txns_.size(); }
  /// State of a tracked transaction; false if unknown.
  bool GetTxnState(const Transid& t, TxnState* state) const;
  /// Pending safe-delivery messages (held for unreachable nodes).
  size_t PendingSafeDeliveries() const { return safe_queue_.size(); }
  /// Snapshot of every tracked transaction (also the kTmfListTxns payload);
  /// tests and campaign diagnostics use this to name what failed to drain.
  std::vector<TxnListEntry> ListTransactions() const;

 protected:
  void OnPairAttach() override;
  void OnRequest(const net::Message& msg) override;
  void OnCheckpoint(const Slice& delta) override;
  void OnTakeover() override;
  void OnBackupAttached() override;
  void OnNodeUp(net::NodeId peer) override;
  void OnNodeDown(net::NodeId peer) override;

 private:
  struct TxnEntry {
    Transid transid;
    TxnState state = TxnState::kActive;
    bool is_home = false;
    net::NodeId parent = 0;            ///< who introduced the transid to us
    std::set<net::NodeId> children;    ///< nodes we directly transmitted to
    // Pending client reply (END-/ABORT-TRANSACTION caller), if any.
    net::ProcessId client;
    uint64_t client_req = 0;
    uint32_t client_tag = 0;
    // Commit coordination (primary-only, not checkpointed: a takeover
    // restarts the phase).
    int pending_acks = 0;
    bool phase_failed = false;
  };

  // -- Verb handlers ----------------------------------------------------------
  void HandleBegin(const net::Message& msg);
  void HandleEnd(const net::Message& msg);
  void HandleAbort(const net::Message& msg);
  void HandleEnsureRemote(const net::Message& msg);
  void HandleRemoteBegin(const net::Message& msg);
  void HandlePhase1(const net::Message& msg);
  void HandlePhase2(const net::Message& msg);
  void HandleAbortTxn(const net::Message& msg);
  void HandleStatus(const net::Message& msg);
  void HandleForceDisposition(const net::Message& msg);
  /// kTmfResolveTxn: disposition query from a recovering node's ROLLFORWARD
  /// or a live in-doubt participant. As the home TMP this may decide the
  /// outcome (presumed abort); elsewhere it only reports the local MAT.
  void HandleResolveTxn(const net::Message& msg);

  // -- Commit machinery ---------------------------------------------------------
  /// Runs phase 1 (force local audit + critical-response to children), then
  /// `done(ok)`.
  void RunPhase1(TxnEntry* txn, std::function<void(bool)> done);
  /// Commit decided: write the MAT record, release locks, propagate phase 2.
  /// Concurrent committers share one physical MAT write (group commit).
  void CompleteCommit(const Transid& transid);
  /// Starts the physical MAT write for every transaction in mat_waiting_.
  void StartMatWrite();
  /// Schedules the next MAT write cycle (honouring the batching window).
  void ArmMatWrite();
  /// The commit record of `transid` is durable: release locks, propagate
  /// phase 2, answer the client.
  void CommitPointReached(const Transid& transid);
  /// A remote decision (phase 2 or a resolved in-doubt query) says the
  /// transaction committed: record it in the MAT, release locks, propagate
  /// phase 2 to our children, drop the entry. Idempotent.
  void ApplyRemoteCommit(const Transid& transid, TxnEntry* txn);
  /// Abort decided: mark aborting, back out, release, propagate abort.
  void StartAbort(const Transid& transid, const std::string& reason);
  void FinishAbort(const Transid& transid);
  void ReplyToClient(TxnEntry* txn, const Status& status, Bytes payload = {});
  void DropTxn(const Transid& transid);
  /// Transition with Figure-3 validation, broadcast accounting, checkpoint.
  void SetState(TxnEntry* txn, TxnState to);

  // -- Safe delivery --------------------------------------------------------------
  void QueueSafeDelivery(net::NodeId dest, uint32_t tag, const Transid& transid);
  void TrySafeDeliveries();

  // -- In-doubt resolution ----------------------------------------------------------
  /// Periodic timer (indoubt_resolve_interval) re-armed on both pair
  /// members; the tick body runs on the primary only.
  void ArmIndoubtResolve();
  /// Queries the home TMP of every in-doubt (ending, non-home) transaction.
  void ResolveIndoubts();

  // -- Orphaned-lock sweep ------------------------------------------------------------
  // A DISCPROCESS can end up holding locks under a transid no TMP tracks:
  // an operation retried transparently across a participant node's crash
  // and recovery re-acquires its lock (and re-applies its mutation) at the
  // recovered DISCPROCESS *after* the transaction's abort was fully
  // processed there — the disposition notification preceded the lock, so
  // nothing ever releases it. The sweep (piggybacked on the in-doubt
  // resolve tick) asks every local DISCPROCESS who holds locks, and any
  // transid unknown to this TMP on two consecutive ticks (grace for
  // in-flight remote-begin registration) is resolved against the durable
  // record — local MAT, else the home TMP — and then run through the
  // ordinary orphan commit/abort pipeline so backout also undoes the
  // re-applied images.
  void SweepOrphanLocks();
  void ResolveOrphanLock(const Transid& t);
  void ApplyOrphanDisposition(const Transid& t, Disposition d);

  // -- Helpers ----------------------------------------------------------------------
  TxnEntry* FindTxn(const Transid& t);
  TxnEntry* CreateTxn(const Transid& t, bool is_home, net::NodeId parent);
  /// Arms the abandonment timer for a freshly created transaction.
  void ArmAutoAbort(const Transid& t);
  void NotifyLocalDiscs(const Transid& t, uint8_t disc_state);
  Disposition LookupDisposition(const Transid& t) const;
  void CheckpointTxn(const TxnEntry& txn, bool removed);
  net::Address Tmp(net::NodeId node) const { return net::Address(node, "$TMP"); }

  /// Interned handles for every TMP metric, registered once at attach. The
  /// transition matrix pre-registers all from->to names so the Figure-3
  /// accounting in SetState is a single indexed increment.
  struct Metrics {
    sim::MetricId state_broadcasts, txns_seen, auto_aborts, illegal_transitions;
    sim::MetricId begins, ends, voluntary_aborts, remote_begins;
    sim::MetricId phase1_received, phase1_sent, audit_forces, commits;
    sim::MetricId mat_forces;
    sim::MetricId mat_group_commit_size;  // histogram
    sim::MetricId phase2_received, orphan_phase2, orphan_aborts;
    sim::MetricId aborts_started, backouts, forced_dispositions;
    sim::MetricId unilateral_aborts, safe_queued, safe_delivered;
    sim::MetricId takeover_resumed_commits, takeover_resumed_aborts;
    sim::MetricId resolves_served, resolves_sent;
    sim::MetricId indoubt_resolved_commits, indoubt_resolved_aborts;
    sim::MetricId orphan_lock_commits, orphan_lock_aborts;
    sim::MetricId transition[kNumTxnStates][kNumTxnStates];
  };

  TmpConfig config_;
  Metrics m_;
  std::map<Transid, TxnEntry> txns_;
  uint64_t next_seq_ = 0;

  struct SafeDelivery {
    net::NodeId dest;
    uint32_t tag;
    Transid transid;
    bool in_flight = false;
  };
  std::list<SafeDelivery> safe_queue_;
  uint64_t safe_timer_ = 0;

  /// Lock-holding transids unknown to this TMP at the last sweep tick
  /// (first strike); acted on if still unknown when seen again.
  std::set<Transid> orphan_suspects_;

  /// One committer waiting for its commit record to reach the MAT.
  struct MatWaiter {
    Transid transid;
    sim::TraceContext trace;  ///< finish the commit under its own span
  };
  // Group-commit state (primary-only, volatile: a takeover re-runs phase 1
  // for ending transactions, which re-enters CompleteCommit).
  std::vector<MatWaiter> mat_waiting_;
  bool mat_gathering_ = false;        ///< window timer armed
  bool mat_write_in_flight_ = false;  ///< mat_force_latency timer armed
};

}  // namespace encompass::tmf

#endif  // ENCOMPASS_TMF_TMP_PROCESS_H_
