// Distributed banking: the accounts file is partitioned by key range across
// two network nodes, so a transfer between accounts on different nodes is a
// distributed transaction coordinated by the TMPs with the two-phase commit
// protocol. Mid-run, the inter-node link is cut and healed: transactions
// caught by the partition abort and restart; committed distributed work is
// never half-applied.
//
// Build & run:  ./build/examples/distributed_banking

#include <cstdio>

#include "apps/banking/banking.h"
#include "encompass/deployment.h"
#include "encompass/tcp.h"

using namespace encompass;
using namespace encompass::app;
using namespace encompass::apps::banking;

int main() {
  sim::Simulation sim(7);
  Deployment deploy(&sim);

  for (net::NodeId id : {1, 2}) {
    NodeSpec spec;
    spec.id = id;
    spec.node_config.num_cpus = 4;
    spec.volumes = {
        VolumeSpec{"$DATA" + std::to_string(id), {FileSpec{"acct"}}, {}}};
    deploy.AddNode(spec);
  }
  deploy.LinkAll();

  // "acct" partitioned: keys < acct00050 on node 1, the rest on node 2.
  storage::FileDefinition def;
  def.name = "acct";
  def.partitions.AddPartition(ToBytes(AccountKey(50)), 1, "$DATA1");
  def.partitions.AddPartition({}, 2, "$DATA2");
  deploy.DefinePartitionedFile(def);

  // Seed 50 accounts on each partition.
  auto* vol1 = deploy.GetNode(1)->storage().volumes.at("$DATA1").get();
  auto* vol2 = deploy.GetNode(2)->storage().volumes.at("$DATA2").get();
  for (int i = 0; i < 100; ++i) {
    storage::Record rec;
    rec.Set("balance", "1000");
    (i < 50 ? vol1 : vol2)
        ->Mutate("acct", storage::MutationOp::kInsert, Slice(AccountKey(i)),
                 Slice(rec.Encode()));
  }
  vol1->Flush();
  vol2->Flush();

  // Bank servers on node 1 reach both partitions through the file system.
  AddBankServerClass(&deploy, 1, "$SC.BANK", "acct");

  ScreenProgram transfer =
      MakeTransferProgram(1, "$SC.BANK", /*accounts=*/100, /*max_amount=*/50);
  TcpConfig tcp_cfg;
  tcp_cfg.programs = {{"transfer", &transfer}};
  // Generous: transactions caught by the 3-second partition may need many
  // restart attempts before the network heals.
  tcp_cfg.restart_limit = 200;
  auto tcp = os::SpawnPair<Tcp>(deploy.GetNode(1)->node(), "$TCP1", 2, 3,
                                tcp_cfg);
  sim.Run();
  for (int t = 0; t < 4; ++t) {
    tcp.primary->AttachTerminal("term" + std::to_string(t), "transfer", 25);
  }

  sim.RunFor(Millis(200));
  printf("t=%6lldms  cutting the node1--node2 link (network partition)\n",
         static_cast<long long>(sim.Now() / 1000));
  deploy.cluster().CutLink(1, 2);
  sim.RunFor(Seconds(3));
  printf("t=%6lldms  healing the link\n",
         static_cast<long long>(sim.Now() / 1000));
  deploy.cluster().RestoreLink(1, 2);

  sim.RunFor(Seconds(300));

  auto& stats = sim.GetStats();
  long long sum = SumBalances(vol1, "acct") + SumBalances(vol2, "acct");
  printf("\n-- results -----------------------------------------------\n");
  printf("programs completed     : %llu\n",
         static_cast<unsigned long long>(tcp.primary->programs_completed()));
  printf("programs failed        : %llu\n",
         static_cast<unsigned long long>(tcp.primary->programs_failed()));
  printf("txn restarts           : %llu\n",
         static_cast<unsigned long long>(tcp.primary->transactions_restarted()));
  printf("distributed phase-1s   : %lld\n",
         static_cast<long long>(stats.Counter("tmf.phase1_sent")));
  printf("remote begins          : %lld\n",
         static_cast<long long>(stats.Counter("tmf.remote_begins")));
  printf("aborts started         : %lld\n",
         static_cast<long long>(stats.Counter("tmf.aborts_started")));
  printf("sum of balances        : $%lld (expected $100000)\n", sum);

  bool ok = tcp.primary->programs_completed() == 100 &&
            tcp.primary->programs_failed() == 0 && sum == 100000 &&
            stats.Counter("tmf.phase1_sent") > 0;
  printf("\n%s\n", ok ? "DISTRIBUTED BANKING OK" : "DISTRIBUTED BANKING FAILED");
  return ok ? 0 : 1;
}
