file(REMOVE_RECURSE
  "libencompass_os.a"
)
