# Empty compiler generated dependencies file for encompass_os.
# This may be replaced when dependencies are built.
