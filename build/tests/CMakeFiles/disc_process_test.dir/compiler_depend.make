# Empty compiler generated dependencies file for disc_process_test.
# This may be replaced when dependencies are built.
