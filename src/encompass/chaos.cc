#include "encompass/chaos.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <utility>

#include "storage/record.h"
#include "tmf/queue_lane.h"
#include "tmf/tmf_protocol.h"

namespace encompass::app {

namespace {

std::string VolName(int n) { return "$DATA" + std::to_string(n); }
std::string MarkerFile(int n) { return "mark" + std::to_string(n); }

std::string AcctKey(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "acct%05d", i);
  return buf;
}

int64_t ParseBalance(const Bytes& image) {
  auto rec = storage::Record::Decode(Slice(image));
  if (!rec.ok()) return 0;
  return strtoll(rec->Get("balance").c_str(), nullptr, 10);
}

}  // namespace

// ---- AtomicityOracle --------------------------------------------------------

void AtomicityOracle::RegisterIntent(uint64_t transid, std::string marker_key,
                                     std::vector<IntentTarget> targets) {
  std::lock_guard<std::mutex> lk(mu_);
  Intent& in = intents_[transid];
  in.marker_key = std::move(marker_key);
  in.targets = std::move(targets);
}

void AtomicityOracle::RecordTransfer(uint64_t transid, int from_acct,
                                     int to_acct, int64_t amount) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = intents_.find(transid);
  if (it == intents_.end()) return;
  it->second.from_acct = from_acct;
  it->second.to_acct = to_acct;
  it->second.amount = amount;
}

void AtomicityOracle::RecordOutcome(uint64_t transid, Outcome outcome) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = intents_.find(transid);
  if (it != intents_.end()) it->second.outcome = outcome;
}

uint64_t AtomicityOracle::count(Outcome o) const {
  uint64_t n = 0;
  for (const auto& [id, in] : intents_) {
    if (in.outcome == o) ++n;
  }
  return n;
}

std::vector<AtomicityOracle::Violation> AtomicityOracle::Check(
    Deployment* deploy) const {
  std::vector<Violation> out;
  for (const auto& [transid, in] : intents_) {
    std::string present_on, absent_on;
    size_t present = 0;
    for (const auto& tgt : in.targets) {
      NodeDeployment* nd = deploy->GetNode(tgt.node);
      auto& vol = nd->storage().volumes.at(tgt.volume);
      bool here =
          vol->ReadRecord(tgt.marker_file, Slice(in.marker_key)).status.ok();
      (here ? present_on : absent_on) += " " + tgt.volume;
      if (here) ++present;
    }
    switch (in.outcome) {
      case Outcome::kCommitted:
        if (present != in.targets.size()) {
          out.push_back({transid, "lost committed update: marker " +
                                      in.marker_key + " missing on" +
                                      absent_on});
        }
        break;
      case Outcome::kAborted:
        if (present != 0) {
          out.push_back({transid, "resurrected aborted update: marker " +
                                      in.marker_key + " present on" +
                                      present_on});
        }
        break;
      case Outcome::kUnknown:
        if (present != 0 && present != in.targets.size()) {
          out.push_back({transid, "atomicity violation: marker " +
                                      in.marker_key + " present on" +
                                      present_on + " but missing on" +
                                      absent_on});
        }
        break;
    }
  }
  return out;
}

// ---- ChaosClient ------------------------------------------------------------

net::Address ChaosClient::LocalTmp() const {
  return net::Address(node()->id(), "$TMP");
}

void ChaosClient::OnStart() {
  fs_ = std::make_unique<tmf::FileSystem>(this, config_.catalog);
  ScheduleNext();
}

void ChaosClient::ScheduleNext() {
  set_current_transid(0);
  txn_ = 0;
  SimDuration jitter = static_cast<SimDuration>(
      rng_.Uniform(static_cast<uint64_t>(config_.think_time) + 1));
  SetTimer(config_.think_time + jitter, [this]() { StartTxn(); });
}

void ChaosClient::StartTxn() {
  if (sim()->Now() >= config_.stop_at) return;  // storm over: go quiet
  if (config_.queue_lane) {
    StartQueueTxn();
    return;
  }
  int total = config_.nodes * config_.accounts_per_node;
  from_ = static_cast<int>(rng_.Uniform(total));
  to_ = static_cast<int>(rng_.Uniform(total - 1));
  if (to_ >= from_) ++to_;
  // Acquire locks in account order to keep deadlocks (resolved by lock
  // timeout + abort) from dominating the workload.
  if (from_ > to_) std::swap(from_, to_);
  amount_ = 1 + static_cast<int64_t>(
                    rng_.Uniform(static_cast<uint64_t>(config_.max_amount)));
  os::CallOptions opt;
  opt.timeout = Seconds(2);
  opt.retries = 2;  // BEGIN is idempotent from the oracle's view
  Call(
      LocalTmp(), tmf::kTmfBegin, {},
      [this](const Status& s, const net::Message& m) { OnBegun(s, m); }, opt);
}

void ChaosClient::OnBegun(const Status& s, const net::Message& reply) {
  if (!s.ok()) {
    ScheduleNext();
    return;
  }
  auto t = tmf::DecodeTransidPayload(Slice(reply.payload));
  if (!t.ok()) {
    ScheduleNext();
    return;
  }
  txn_ = t->Pack();
  ++started_;
  marker_key_ = "t" + std::to_string(txn_);
  targets_.clear();
  int na = 1 + from_ / config_.accounts_per_node;
  int nb = 1 + to_ / config_.accounts_per_node;
  targets_.push_back({static_cast<net::NodeId>(na), VolName(na), MarkerFile(na)});
  if (nb != na) {
    targets_.push_back(
        {static_cast<net::NodeId>(nb), VolName(nb), MarkerFile(nb)});
  }
  // Intent is on record BEFORE the first write leaves this process: if the
  // client dies mid-transaction the oracle still audits it (as unknown).
  config_.oracle->RegisterIntent(txn_, marker_key_, targets_);
  config_.oracle->RecordTransfer(txn_, from_, to_, amount_);
  set_current_transid(txn_);
  RunOps();
}

void ChaosClient::RunOps() {
  fs_->Read("acct", Slice(AcctKey(from_)), /*lock=*/true,
            [this](const Status& s, const Bytes& v) {
              if (!s.ok()) return AbortTxn();
              bal_from_ = ParseBalance(v);
              fs_->Read("acct", Slice(AcctKey(to_)), /*lock=*/true,
                        [this](const Status& s2, const Bytes& v2) {
                          if (!s2.ok()) return AbortTxn();
                          bal_to_ = ParseBalance(v2);
                          storage::Record r1;
                          r1.Set("balance", std::to_string(bal_from_ - amount_));
                          fs_->Update(
                              "acct", Slice(AcctKey(from_)), Slice(r1.Encode()),
                              [this](const Status& s3, const Bytes&) {
                                if (!s3.ok()) return AbortTxn();
                                storage::Record r2;
                                r2.Set("balance",
                                       std::to_string(bal_to_ + amount_));
                                fs_->Update(
                                    "acct", Slice(AcctKey(to_)),
                                    Slice(r2.Encode()),
                                    [this](const Status& s4, const Bytes&) {
                                      if (!s4.ok()) return AbortTxn();
                                      marker_idx_ = 0;
                                      InsertNextMarker();
                                    });
                              });
                        });
            });
}

void ChaosClient::InsertNextMarker() {
  if (marker_idx_ >= targets_.size()) {
    EndTxn();
    return;
  }
  const AtomicityOracle::IntentTarget& tgt = targets_[marker_idx_++];
  storage::Record rec;
  rec.Set("txn", marker_key_);
  fs_->Insert(tgt.marker_file, Slice(marker_key_), Slice(rec.Encode()),
              [this](const Status& s, const Bytes&) {
                if (!s.ok()) return AbortTxn();
                InsertNextMarker();
              });
}

void ChaosClient::EndTxn() {
  // No transparent retries on END: if the first reply is lost, a resend can
  // find the transaction already forgotten and read back presumed-abort for
  // a commit that actually happened. A timeout stays "unknown" instead and
  // the oracle holds it to the all-or-nothing standard.
  os::CallOptions opt;
  opt.timeout = Seconds(8);
  uint64_t transid = txn_;
  Call(LocalTmp(), tmf::kTmfEnd,
       tmf::EncodeTransidPayload(Transid::Unpack(transid)),
       [this, transid](const Status& s, const net::Message&) {
         AtomicityOracle::Outcome o =
             s.ok() ? AtomicityOracle::Outcome::kCommitted
                    : (s.IsAborted() ? AtomicityOracle::Outcome::kAborted
                                     : AtomicityOracle::Outcome::kUnknown);
         config_.oracle->RecordOutcome(transid, o);
         ScheduleNext();
       },
       opt);
}

void ChaosClient::StartQueueTxn() {
  // The queue lane is node-local, so the transfer stays between two accounts
  // of this client's own node (the marker too). The oracle does not care
  // which key identifies an intent, only that it is unique: a TMF transid
  // does not exist yet at submit time, so the client mints a synthetic id
  // with 0xFF in the cpu byte — no TMP-issued transid can collide with it.
  int n = static_cast<int>(node()->id());
  int base = (n - 1) * config_.accounts_per_node;
  from_ = base + static_cast<int>(
                     rng_.Uniform(static_cast<uint64_t>(config_.accounts_per_node)));
  to_ = base + static_cast<int>(rng_.Uniform(
                  static_cast<uint64_t>(config_.accounts_per_node - 1)));
  if (to_ >= from_) ++to_;
  amount_ = 1 + static_cast<int64_t>(
                    rng_.Uniform(static_cast<uint64_t>(config_.max_amount)));
  uint64_t oid = (static_cast<uint64_t>(n) << 48) | (0xFFull << 40) |
                 (static_cast<uint64_t>(id().pid) << 20) |
                 (++queue_seq_ & 0xFFFFF);
  ++started_;
  marker_key_ = "q" + std::to_string(oid);
  targets_.clear();
  targets_.push_back({static_cast<net::NodeId>(n), VolName(n), MarkerFile(n)});
  // Intent on record BEFORE the submit leaves this process: if the client
  // dies with its node the oracle still audits the transaction (unknown).
  config_.oracle->RegisterIntent(oid, marker_key_, targets_);
  config_.oracle->RecordTransfer(oid, from_, to_, amount_);

  tmf::QueueTxn txn;
  txn.declared = {"acct", MarkerFile(n)};
  tmf::QueueOp debit;
  debit.kind = tmf::QueueOp::Kind::kDelta;
  debit.file = "acct";
  debit.key = ToBytes(AcctKey(from_));
  debit.field = "balance";
  debit.delta = -amount_;
  tmf::QueueOp credit = debit;
  credit.key = ToBytes(AcctKey(to_));
  credit.delta = amount_;
  tmf::QueueOp marker;
  marker.kind = tmf::QueueOp::Kind::kInsert;
  marker.file = MarkerFile(n);
  marker.key = ToBytes(marker_key_);
  storage::Record rec;
  rec.Set("txn", marker_key_);
  marker.record = rec.Encode();
  txn.ops = {debit, credit, marker};

  os::CallOptions opt;
  opt.timeout = Seconds(8);
  // No transparent retries, same reasoning as EndTxn: a resend could find
  // the planner's reply cache gone after a takeover and misread the
  // outcome. A timeout stays "unknown".
  opt.retries = 0;
  Call(net::Address(node()->id(), "$QPLAN"), tmf::kTmfQueueSubmit,
       txn.Encode(),
       [this, oid](const Status& s, const net::Message&) {
         AtomicityOracle::Outcome o =
             s.ok() ? AtomicityOracle::Outcome::kCommitted
                    : ((s.IsAborted() || s.IsPlanViolation())
                           ? AtomicityOracle::Outcome::kAborted
                           : AtomicityOracle::Outcome::kUnknown);
         config_.oracle->RecordOutcome(oid, o);
         ScheduleNext();
       },
       opt);
}

void ChaosClient::AbortTxn() {
  os::CallOptions opt;
  opt.timeout = Seconds(8);
  uint64_t transid = txn_;
  Call(LocalTmp(), tmf::kTmfAbort,
       tmf::EncodeTransidPayload(Transid::Unpack(transid)),
       [this, transid](const Status& s, const net::Message&) {
         // An ok or Aborted reply means backout finished: no commit can
         // follow. Anything else (timeout, takeover) leaves it unknown.
         AtomicityOracle::Outcome o =
             (s.ok() || s.IsAborted()) ? AtomicityOracle::Outcome::kAborted
                                       : AtomicityOracle::Outcome::kUnknown;
         config_.oracle->RecordOutcome(transid, o);
         ScheduleNext();
       },
       opt);
}

// ---- Campaign runner --------------------------------------------------------

ChaosCampaignResult RunChaosCampaign(const ChaosCampaignConfig& config) {
  sim::FaultScheduleConfig scfg = config.schedule;
  scfg.nodes = config.nodes;
  scfg.cpus_per_node = 4;
  sim::FaultSchedule schedule =
      sim::FaultScheduleGenerator(scfg).Generate(config.seed);
  return ReplayChaosCampaign(config, schedule);
}

ChaosCampaignResult ReplayChaosCampaign(const ChaosCampaignConfig& config,
                                        const sim::FaultSchedule& schedule) {
  ChaosCampaignResult res;
  res.schedule = schedule;
  res.schedule_dump = schedule.Dump();
  res.node_crashes = schedule.CountOf(sim::FaultClass::kNodeCrash);

  sim::Simulation sim(config.seed, config.parallel_workers);
  net::NetworkConfig net_config;
  net_config.track_messages = config.track_messages;
  Deployment deploy(&sim, net_config);
  for (int n = 1; n <= config.nodes; ++n) {
    NodeSpec spec;
    spec.id = static_cast<net::NodeId>(n);
    spec.node_config.num_cpus = 4;
    spec.disc_config.default_lock_timeout = Millis(300);
    spec.tmp_config.auto_abort_timeout = Seconds(10);
    // In-doubt participants of a dead home must resolve themselves, or
    // their locks wedge the drain.
    spec.tmp_config.indoubt_resolve_interval = config.indoubt_resolve_interval;
    spec.tmp_config.commit_protocol = config.commit_protocol;
    spec.tmp_config.track_indoubt_hold = true;
    spec.tmp_config.track_commit_latency = true;
    if (config.commit_protocol == tmf::CommitProtocol::kPaxos) {
      if (config.paxos_fast_path) {
        // Explicit endpoint placement: `$ACCEPT.<k>` pairs round-robined
        // over the nodes, so a 3-node cluster still fields 2F+1 = 5
        // acceptors when asked. The endpoint order defines the vote-ack
        // tally bit of each acceptor.
        spec.tmp_config.commit_replication = config.commit_replication;
        spec.tmp_config.paxos_fast_path = true;
        for (int k = 0; k < config.commit_replication; ++k) {
          spec.tmp_config.acceptor_endpoints.emplace_back(
              static_cast<net::NodeId>(k % config.nodes + 1),
              "$ACCEPT." + std::to_string(k));
        }
      } else {
        const int replication =
            std::min(config.commit_replication, config.nodes);
        spec.tmp_config.commit_replication = replication;
        for (int a = 1; a <= replication; ++a) {
          spec.tmp_config.acceptor_nodes.push_back(static_cast<net::NodeId>(a));
        }
      }
    }
    spec.exec_lane = config.queue_lane ? ExecLane::kQueue : ExecLane::kLocks;
    spec.volumes = {VolumeSpec{
        VolName(n), {FileSpec{"acct"}, FileSpec{MarkerFile(n)}}, {}}};
    deploy.AddNode(spec);
  }
  deploy.LinkAll();

  storage::FileDefinition def;
  def.name = "acct";
  for (int n = 1; n < config.nodes; ++n) {
    def.partitions.AddPartition(
        ToBytes(AcctKey(n * config.accounts_per_node)),
        static_cast<net::NodeId>(n), VolName(n));
  }
  def.partitions.AddPartition({}, static_cast<net::NodeId>(config.nodes),
                              VolName(config.nodes));
  deploy.DefinePartitionedFile(def);
  for (int n = 1; n <= config.nodes; ++n) {
    deploy.DefineFile(MarkerFile(n), static_cast<net::NodeId>(n), VolName(n));
  }

  for (int n = 1; n <= config.nodes; ++n) {
    auto* vol =
        deploy.GetNode(static_cast<net::NodeId>(n))->storage().volumes
            .at(VolName(n))
            .get();
    for (int i = (n - 1) * config.accounts_per_node;
         i < n * config.accounts_per_node; ++i) {
      storage::Record rec;
      rec.Set("balance", std::to_string(config.initial_balance));
      vol->Mutate("acct", storage::MutationOp::kInsert, Slice(AcctKey(i)),
                  Slice(rec.Encode()));
    }
    vol->Flush();
  }
  res.expected_sum =
      static_cast<long long>(config.nodes) * config.accounts_per_node *
      config.initial_balance;

  sim.RunFor(Millis(10));  // let the service pairs settle
  // Archive every volume at this transaction-consistent point: the base
  // ROLLFORWARD rebuilds a crashed node from.
  for (int n = 1; n <= config.nodes; ++n) {
    deploy.GetNode(static_cast<net::NodeId>(n))->ArchiveVolumes();
  }

  AtomicityOracle oracle;
  sim::FaultInjector injector(&sim);
  const SimTime stop_at = schedule.EndTime() + Seconds(2);

  std::vector<uint64_t> client_gen(config.nodes + 1, 0);
  auto spawn_clients = [&](net::NodeId n) {
    for (int c = 0; c < config.clients_per_node; ++c) {
      ChaosClientConfig ccfg;
      ccfg.catalog = &deploy.catalog();
      ccfg.oracle = &oracle;
      ccfg.seed = config.seed * 1000003 + static_cast<uint64_t>(n) * 101 +
                  static_cast<uint64_t>(c) * 17 + client_gen[n] * 7919;
      ccfg.nodes = config.nodes;
      ccfg.accounts_per_node = config.accounts_per_node;
      ccfg.think_time = config.client_think;
      ccfg.stop_at = stop_at;
      ccfg.queue_lane = config.queue_lane;
      // Spread clients over CPUs 1..3, away from CPU 0 where recovery runs.
      deploy.GetNode(n)->node()->Spawn<ChaosClient>(1 + c % 3, ccfg);
    }
    ++client_gen[n];
  };
  for (int n = 1; n <= config.nodes; ++n) {
    spawn_clients(static_cast<net::NodeId>(n));
  }

  // ---- bind the schedule to concrete cluster actions -----------------------
  // Fault actions run on the global loop (serial phase of the parallel
  // engine), but RecoverNode's done-callback fires on the recovering node's
  // own loop — two nodes finishing recovery in the same round would race on
  // the shared campaign state without this mutex.
  std::mutex campaign_mu;
  std::set<net::NodeId> crashed;
  int recovering = 0;
  auto fault_tag = [](const sim::FaultSpec& f) {
    return std::string(sim::FaultClassName(f.fault)) + " node " +
           std::to_string(f.node);
  };
  for (const sim::FaultSpec& f : schedule.faults) {
    switch (f.fault) {
      case sim::FaultClass::kCpuFail: {
        injector.InjectAt(
            f.at, fault_tag(f) + " cpu " + std::to_string(f.unit),
            [&deploy, &crashed, &injector, f]() {
              if (crashed.count(f.node)) {
                injector.Note("suppressed cpu fail: node crashed");
                return;
              }
              deploy.GetNode(f.node)->node()->FailCpu(f.unit);
            });
        injector.InjectAt(
            f.at + f.heal_after, "reload node " + std::to_string(f.node) +
                                     " cpu " + std::to_string(f.unit),
            [&deploy, &crashed, &injector, f]() {
              if (crashed.count(f.node)) {
                injector.Note("suppressed cpu reload: node crashed");
                return;
              }
              os::Node* node = deploy.GetNode(f.node)->node();
              if (!node->CpuUp(f.unit)) node->ReloadCpu(f.unit);
            });
        break;
      }
      case sim::FaultClass::kBusCut: {
        injector.InjectAt(f.at,
                          fault_tag(f) + " bus " + std::to_string(f.unit),
                          [&deploy, &crashed, &injector, f]() {
                            if (crashed.count(f.node)) {
                              injector.Note("suppressed bus cut: node crashed");
                              return;
                            }
                            deploy.GetNode(f.node)->node()->SetBusUp(f.unit,
                                                                     false);
                          });
        injector.InjectAt(f.at + f.heal_after,
                          "restore node " + std::to_string(f.node) + " bus " +
                              std::to_string(f.unit),
                          [&deploy, &crashed, f]() {
                            if (crashed.count(f.node)) return;  // reload did it
                            deploy.GetNode(f.node)->node()->SetBusUp(f.unit,
                                                                     true);
                          });
        break;
      }
      case sim::FaultClass::kDriveDrop: {
        injector.InjectAt(
            f.at, fault_tag(f) + " drive " + std::to_string(f.unit),
            [&deploy, f]() {
              deploy.GetNode(f.node)->storage().volumes.at(VolName(f.node))
                  ->FailDrive(f.unit);
            });
        injector.InjectAt(
            f.at + f.heal_after, "revive node " + std::to_string(f.node) +
                                     " drive " + std::to_string(f.unit),
            [&deploy, f]() {
              (void)deploy.GetNode(f.node)->storage().volumes
                  .at(VolName(f.node))
                  ->ReviveDrive(f.unit);
            });
        break;
      }
      case sim::FaultClass::kLinkFlap: {
        injector.InjectAt(f.at,
                          "cut link " + std::to_string(f.node) + "-" +
                              std::to_string(f.peer),
                          [&deploy, &crashed, &injector, f]() {
                            if (crashed.count(f.node) || crashed.count(f.peer)) {
                              injector.Note("suppressed link cut: endpoint crashed");
                              return;
                            }
                            deploy.cluster().CutLink(f.node, f.peer);
                          });
        injector.InjectAt(f.at + f.heal_after,
                          "restore link " + std::to_string(f.node) + "-" +
                              std::to_string(f.peer),
                          [&deploy, &crashed, f]() {
                            if (crashed.count(f.node) || crashed.count(f.peer))
                              return;  // ReconnectNode restores it
                            deploy.cluster().RestoreLink(f.node, f.peer);
                          });
        break;
      }
      case sim::FaultClass::kPartition: {
        auto cross = [&config, f](auto&& fn) {
          for (int a = 1; a <= config.nodes; ++a) {
            for (int b = a + 1; b <= config.nodes; ++b) {
              if (((f.mask >> a) & 1u) != ((f.mask >> b) & 1u)) {
                fn(static_cast<net::NodeId>(a), static_cast<net::NodeId>(b));
              }
            }
          }
        };
        injector.InjectAt(f.at,
                          "partition mask=" + std::to_string(f.mask),
                          [&deploy, &crashed, cross]() {
                            cross([&](net::NodeId a, net::NodeId b) {
                              if (crashed.count(a) || crashed.count(b)) return;
                              deploy.cluster().CutLink(a, b);
                            });
                          });
        injector.InjectAt(f.at + f.heal_after,
                          "heal partition mask=" + std::to_string(f.mask),
                          [&deploy, &crashed, cross]() {
                            cross([&](net::NodeId a, net::NodeId b) {
                              if (crashed.count(a) || crashed.count(b)) return;
                              deploy.cluster().RestoreLink(a, b);
                            });
                          });
        break;
      }
      case sim::FaultClass::kNodeCrash: {
        injector.InjectAt(f.at, "crash node " + std::to_string(f.node),
                          [&deploy, &crashed, f]() {
                            crashed.insert(f.node);
                            deploy.CrashNode(f.node);
                          });
        injector.InjectAt(
            f.at + f.heal_after, "recover node " + std::to_string(f.node),
            [&deploy, &campaign_mu, &crashed, &recovering, &injector, &res,
             &spawn_clients, &sim, stop_at, f, &config]() {
              // In-doubt census at the instant the dead home returns: every
              // participant still blocked on it waited out the whole outage.
              for (int n = 1; n <= config.nodes; ++n) {
                if (n == f.node) continue;
                NodeDeployment* nd =
                    deploy.GetNode(static_cast<net::NodeId>(n));
                if (tmf::TmpProcess* tmp = nd->tmp()) {
                  res.indoubt_at_recovery +=
                      tmp->IndoubtParticipantsOf(f.node);
                }
              }
              ++recovering;
              deploy.RecoverNode(
                  f.node,
                  [&campaign_mu, &crashed, &recovering, &injector, &res,
                   &spawn_clients, &sim, stop_at,
                   f](const std::vector<tmf::RollforwardReport>& reports) {
                    std::lock_guard<std::mutex> lk(campaign_mu);
                    crashed.erase(f.node);
                    --recovering;
                    ++res.recoveries_completed;
                    for (const auto& r : reports) {
                      res.rollforward_negotiated += r.negotiated;
                      res.rollforward_redo_applied += r.redo_applied;
                    }
                    injector.Note("node " + std::to_string(f.node) +
                                  " recovered and back in service");
                    if (sim.Now() < stop_at) {
                      spawn_clients(f.node);
                    }
                  });
            });
        break;
      }
    }
  }

  // ---- the storm, then the drain -------------------------------------------
  sim.RunUntil(stop_at);
  const int max_spins =
      static_cast<int>(config.max_drain / Seconds(1)) + 1;
  for (int spin = 0; spin < max_spins; ++spin) {
    sim.RunFor(Seconds(1));
    if (!crashed.empty() || recovering > 0) continue;
    bool quiet = true;
    for (int n = 1; n <= config.nodes && quiet; ++n) {
      NodeDeployment* nd = deploy.GetNode(static_cast<net::NodeId>(n));
      tmf::TmpProcess* tmp = nd->tmp();
      if (tmp == nullptr || tmp->ActiveTransactionCount() != 0 ||
          tmp->PendingSafeDeliveries() != 0) {
        quiet = false;
        break;
      }
      auto* disc = nd->disc(VolName(n));
      if (disc == nullptr || disc->locks().held_count() != 0) quiet = false;
    }
    if (quiet) {
      res.quiesced = true;
      break;
    }
  }
  sim.RunFor(Seconds(2));  // settle any last timer pops

  // ---- verdicts ------------------------------------------------------------
  res.faults_fired = injector.fired();
  for (const sim::FaultEvent& e : injector.journal()) {
    res.journal.push_back("t=" + std::to_string(e.when) + " " + e.description);
  }
  if (!res.quiesced) {
    // Name what failed to drain — these lines ride along in the journal a
    // failing test prints, next to the fault sequence that caused them.
    for (int n = 1; n <= config.nodes; ++n) {
      NodeDeployment* nd = deploy.GetNode(static_cast<net::NodeId>(n));
      tmf::TmpProcess* tmp = nd->tmp();
      if (tmp == nullptr) {
        res.journal.push_back("leftover: node " + std::to_string(n) +
                              " has no TMP");
        continue;
      }
      for (const auto& e : tmp->ListTransactions()) {
        res.journal.push_back(
            "leftover: node " + std::to_string(n) + " " +
            e.transid.ToString() + " state=" +
            tmf::TxnStateName(static_cast<tmf::TxnState>(e.state)) +
            (e.is_home ? " home" : " participant of " +
                                       std::to_string(e.parent)));
      }
      if (tmp->PendingSafeDeliveries() != 0) {
        res.journal.push_back(
            "leftover: node " + std::to_string(n) + " pending_safe=" +
            std::to_string(tmp->PendingSafeDeliveries()));
      }
      auto* disc = nd->disc(VolName(n));
      if (disc != nullptr && disc->locks().held_count() != 0) {
        res.journal.push_back(
            "leftover: node " + std::to_string(n) + " held_locks=" +
            std::to_string(disc->locks().held_count()));
      }
    }
  }
  res.violations = oracle.Check(&deploy);
  res.txns_started = oracle.intents();
  res.txns_committed = oracle.count(AtomicityOracle::Outcome::kCommitted);
  res.txns_aborted = oracle.count(AtomicityOracle::Outcome::kAborted);
  res.txns_unknown = oracle.count(AtomicityOracle::Outcome::kUnknown);
  res.illegal_transitions = sim.GetStats().Counter("tmf.illegal_transitions");
  {
    sim::Stats& stats = sim.GetStats();
    res.indoubt_resolved_via_home =
        stats.Counter("tmf.indoubt_resolved_commits") +
        stats.Counter("tmf.indoubt_resolved_aborts");
    res.indoubt_blocked_on_home = stats.Counter("tmf.indoubt_blocked_on_home");
    res.indoubt_resolved_via_acceptors =
        stats.Counter("tmf.paxos_resolved_commits") +
        stats.Counter("tmf.paxos_resolved_aborts") +
        stats.Counter("recovery.paxos_resolves");
    res.recovery_max_retry_attempts =
        stats.Counter("recovery.max_retry_attempts");
    res.acceptor_duplicate_votes =
        stats.Counter("tmf.acceptor_duplicate_votes");
    if (const sim::Histogram* h = stats.FindHistogram("tmf.indoubt_hold_us")) {
      res.indoubt_hold_count = static_cast<int64_t>(h->count());
      res.indoubt_hold_p50_ms = static_cast<double>(h->Percentile(50)) / 1e3;
      res.indoubt_hold_p99_ms = static_cast<double>(h->Percentile(99)) / 1e3;
      res.indoubt_hold_max_ms = static_cast<double>(h->Max()) / 1e3;
    }
    if (const sim::Histogram* h = stats.FindHistogram("tmf.commit_latency_us")) {
      res.commit_latency_count = static_cast<int64_t>(h->count());
      res.commit_latency_p50_ms = static_cast<double>(h->Percentile(50)) / 1e3;
      res.commit_latency_p99_ms = static_cast<double>(h->Percentile(99)) / 1e3;
    }
  }
  for (int n = 1; n <= config.nodes; ++n) {
    NodeDeployment* nd = deploy.GetNode(static_cast<net::NodeId>(n));
    if (tmf::TmpProcess* tmp = nd->tmp()) {
      res.leaked_txns += tmp->ActiveTransactionCount();
      res.pending_safe += tmp->PendingSafeDeliveries();
    }
    if (auto* disc = nd->disc(VolName(n))) {
      res.leaked_locks += disc->locks().held_count();
    }
    const NodeStorage& st = nd->storage();
    res.acceptor_log_peak =
        std::max(res.acceptor_log_peak, st.acceptor_log.peak_instances);
    res.acceptor_log_final += st.acceptor_log.entries.size();
    for (const auto& [name, log] : st.acceptor_logs) {
      (void)name;
      res.acceptor_log_peak =
          std::max(res.acceptor_log_peak, log.peak_instances);
      res.acceptor_log_final += log.entries.size();
    }
    auto* vol = nd->storage().volumes.at(VolName(n)).get();
    for (int i = (n - 1) * config.accounts_per_node;
         i < n * config.accounts_per_node; ++i) {
      auto r = vol->ReadRecord("acct", Slice(AcctKey(i)));
      if (r.status.ok()) res.balance_sum += ParseBalance(r.value);
    }
  }
  if (config.track_messages) {
    uint64_t tracked = 0;
    for (const auto& [transid, count] :
         deploy.cluster().network().PerTxnMessages()) {
      (void)transid;
      tracked += count;
    }
    res.tracked_messages = tracked;
    if (res.txns_committed > 0) {
      res.msgs_per_committed_txn =
          static_cast<double>(tracked) / static_cast<double>(res.txns_committed);
    }
    res.msgs_per_tag = deploy.cluster().network().PerTagMessages();
  }

  if (res.balance_sum != res.expected_sum) {
    // Attribute the drift: recompute each account from the committed
    // transfers and name the transactions touching every account that
    // disagrees with the durable value. Unknown-outcome transactions make
    // an account legitimately ambiguous; list them so the reader can tell
    // ambiguity from corruption.
    int total = config.nodes * config.accounts_per_node;
    std::vector<long long> expect(total, config.initial_balance);
    for (const auto& [id, in] : oracle.all()) {
      if (in.outcome != AtomicityOracle::Outcome::kCommitted) continue;
      if (in.from_acct < 0) continue;
      expect[in.from_acct] -= in.amount;
      expect[in.to_acct] += in.amount;
    }
    for (int i = 0; i < total; ++i) {
      int n = 1 + i / config.accounts_per_node;
      auto r = deploy.GetNode(static_cast<net::NodeId>(n))
                   ->storage().volumes.at(VolName(n))
                   ->ReadRecord("acct", Slice(AcctKey(i)));
      long long actual = r.status.ok() ? ParseBalance(r.value) : 0;
      if (actual == expect[i]) continue;
      res.journal.push_back("drift: acct " + std::to_string(i) + " actual=" +
                            std::to_string(actual) + " committed-expected=" +
                            std::to_string(expect[i]));
      for (const auto& [id, in] : oracle.all()) {
        if (in.from_acct != i && in.to_acct != i) continue;
        const char* o = in.outcome == AtomicityOracle::Outcome::kCommitted
                            ? "committed"
                            : (in.outcome == AtomicityOracle::Outcome::kAborted
                                   ? "aborted"
                                   : "unknown");
        res.journal.push_back(
            "drift:   " + Transid::Unpack(id).ToString() + " " + o +
            (in.from_acct == i ? " debit " : " credit ") +
            std::to_string(in.amount));
      }
    }
  }
  return res;
}

}  // namespace encompass::app
