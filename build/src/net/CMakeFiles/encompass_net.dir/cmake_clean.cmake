file(REMOVE_RECURSE
  "CMakeFiles/encompass_net.dir/network.cc.o"
  "CMakeFiles/encompass_net.dir/network.cc.o.d"
  "libencompass_net.a"
  "libencompass_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encompass_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
