# Empty dependencies file for distributed_banking.
# This may be replaced when dependencies are built.
