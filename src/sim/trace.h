// Per-transaction causal tracing.
//
// A TraceContext (packed transid + causal span id) rides on every
// net::Message. The OS layer keeps the context of the event currently being
// handled and stamps a fresh span — parented on the active one — onto each
// outgoing message, so the chain of sends, timer callbacks, and replies that
// realises one transaction forms a causal tree. Subsystems append fixed-size
// TraceEvents (no strings, no allocation beyond the ring) to the simulation's
// bounded TraceLog ring; Dump(transid) renders a deterministic per-transaction
// trace for tests and EXPERIMENTS.md.
//
// Storage is sharded per event loop: a record lands in the ring of the loop
// executing the current event, stamped with that event's total-order key
// (time, origin, seq) and a per-shard ordinal. Reads merge the shards by
// (key, ordinal), which reproduces the canonical event order — the same
// order on every engine (single-threaded or parallel), because keys are
// assigned at schedule time, never by the executing thread.

#ifndef ENCOMPASS_SIM_TRACE_H_
#define ENCOMPASS_SIM_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/exec_context.h"

namespace encompass::sim {

/// Causal identity of the work a message (or handler) belongs to.
/// transid == 0 means "not associated with any transaction": such work is
/// never traced.
struct TraceContext {
  uint64_t transid = 0;  ///< packed tmf::Transid (home node + sequence)
  uint32_t span = 0;     ///< causal span id, unique per traced message

  bool active() const { return transid != 0; }
};

/// What happened. Values are stable identifiers used in test expectations;
/// append new kinds at the end.
enum class TraceEventKind : uint8_t {
  kMsgSend = 1,     ///< a=tag, b=dst node; parent=sender's active span
  kMsgDeliver = 2,  ///< a=tag; node=receiving node
  kTxnState = 3,    ///< Figure-3 transition: a=from, b=to (tmf::TxnState)
  kPhase1Start = 4,  ///< a=#audit forces requested, b=#remote children
  kPhase1Done = 5,   ///< a=1 if all votes yes, 0 otherwise
  kCommitRecord = 6,  ///< commit record forced to the MAT
  kPhase2Queued = 7,  ///< safe-delivery enqueued: a=tag, b=dst node
  kPhase2Recv = 8,    ///< phase-2 / abort record applied at a child
  kAbortStart = 9,    ///< abort decided; backout begins
  kAbortDone = 10,    ///< backout finished, txn reached kAborted
  kLockAcquire = 11,  ///< a=FNV hash of the lock key
  kLockRelease = 12,  ///< all locks of the txn released; a=#waiters granted
  kAuditForce = 13,   ///< a=#records forced in this force call
};

const char* TraceEventKindName(TraceEventKind kind);

/// One fixed-size trace record. `a` and `b` are kind-specific details as
/// documented on TraceEventKind.
struct TraceEvent {
  SimTime time = 0;
  uint64_t transid = 0;
  uint32_t span = 0;    ///< span this event belongs to
  uint32_t parent = 0;  ///< for kMsgSend: span of the sending context
  TraceEventKind kind = TraceEventKind::kMsgSend;
  uint16_t node = 0;  ///< node where the event happened
  uint32_t a = 0;
  uint32_t b = 0;

  std::string ToString() const;
};

/// Sharded bounded rings of TraceEvents. When a shard's ring is full, its
/// oldest events are overwritten (and counted in dropped()); recording is
/// O(1) and allocation-free once a ring has grown to capacity.
class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 1 << 16);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Issues the next causal span id for work happening on `node`. Span ids
  /// are `(node << 24) | per-node counter`: each node allocates from its own
  /// counter, so the ids a node hands out depend only on that node's local
  /// event order — not on how node events interleave globally. That keeps
  /// traces bit-stable across same-seed runs on any engine (single-threaded
  /// or parallel). Node ids above 255 fold into the 8 tag bits; counters
  /// have 24 bits of headroom per node.
  uint32_t NewSpan(uint16_t node) {
    if (node >= span_counters_.size()) span_counters_.resize(node + 1, 0);
    return (static_cast<uint32_t>(node & 0xff) << 24) | ++span_counters_[node];
  }
  /// Span for node-less (global) work; kept for tests and tools.
  uint32_t NewSpan() { return NewSpan(0); }

  /// Appends `e` to the executing loop's shard (shard 0 outside event
  /// execution), stamped with the running event's key.
  void Record(const TraceEvent& e);

  size_t size() const;     ///< retained events, all shards
  size_t dropped() const;  ///< overwritten events, all shards
  void Clear();

  /// All retained events for one transaction, merged across shards into
  /// canonical (event key, record order) order.
  std::vector<TraceEvent> Events(uint64_t transid) const;

  /// Every retained event across all transactions, in the same canonical
  /// order. Debugging aid for whole-run engine comparisons.
  std::vector<TraceEvent> AllEvents() const;

  /// Deterministic multi-line rendering of Events(transid).
  std::string Dump(uint64_t transid) const;

  /// Grows the shard set to `n`. Called by the engine as node loops are
  /// created; must not race with records (it runs during topology setup).
  void EnsureShards(size_t n);
  /// Pre-sizes the span counter table so NewSpan(node) never reallocates it
  /// on a worker thread.
  void EnsureNodeSpans(uint16_t node) {
    if (node >= span_counters_.size()) span_counters_.resize(node + 1, 0);
  }

 private:
  struct Rec {
    EventKey key;      // key of the event that recorded this
    uint64_t ordinal;  // per-shard record order, tie-break at equal keys
    TraceEvent e;
  };
  struct Shard {
    std::vector<Rec> ring;  // grows lazily to capacity, then wraps
    size_t head = 0;        // next overwrite position once full
    size_t dropped = 0;
    uint64_t next_ordinal = 0;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t capacity_;
  std::vector<uint32_t> span_counters_;  // per-node, see NewSpan
  bool enabled_ = true;
};

}  // namespace encompass::sim

#endif  // ENCOMPASS_SIM_TRACE_H_
