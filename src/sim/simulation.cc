#include "sim/simulation.h"

namespace encompass::sim {

bool Simulation::Step() {
  if (queue_.empty()) return false;
  SimTime when;
  auto fn = queue_.PopNext(&when);
  now_ = when;
  fn();
  return true;
}

size_t Simulation::Run(size_t max_events) {
  size_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

void Simulation::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.NextTime() <= deadline) {
    Step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace encompass::sim
